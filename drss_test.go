package streamquantiles

import "testing"

func TestDRSSPublicAPI(t *testing.T) {
	// DRSS exists for completeness; it must satisfy the same interface
	// and stay within a loose error bound (the paper excludes it from
	// headline plots for being dominated, not broken).
	s := NewDRSS(0.05, 12, DyadicConfig{Seed: 1})
	for i := 0; i < 30000; i++ {
		s.Insert(uint64(i % 4096))
	}
	if s.Count() != 30000 {
		t.Fatalf("count %d", s.Count())
	}
	med := s.Quantile(0.5)
	if med < 1500 || med > 2600 {
		t.Errorf("DRSS median %d, want ≈ 2048 (loose)", med)
	}
	for i := 0; i < 30000; i++ {
		s.Delete(uint64(i % 4096))
	}
	if s.Count() != 0 {
		t.Errorf("count %d after deleting all", s.Count())
	}
}

func TestSelectExactQuantilePublicAPI(t *testing.T) {
	data := make([]uint64, 10000)
	for i := range data {
		data[i] = uint64(i)
	}
	v, _, err := SelectExactQuantile(SliceSource(data), 0.25, 1024, 20)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2500 {
		t.Errorf("exact 0.25-quantile = %d, want 2500", v)
	}
}
