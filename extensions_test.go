package streamquantiles

import (
	"sort"
	"testing"
)

func TestGKBiasedPublicAPI(t *testing.T) {
	b := NewGKBiased(0.05)
	data := make([]uint64, 100000)
	state := uint64(3)
	for i := range data {
		state = state*6364136223846793005 + 1442695040888963407
		data[i] = state >> 40
		b.Update(data[i])
	}
	sorted := append([]uint64{}, data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Relative error: at φ the reported element's rank is within ε·φn.
	for _, phi := range []float64{0.001, 0.01, 0.1, 0.5} {
		got := b.Quantile(phi)
		rank := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= got })
		target := phi * float64(len(data))
		err := float64(rank) - target
		if err < 0 {
			err = -err
		}
		if err > 0.05*target+2 {
			t.Errorf("phi=%v: rank error %v exceeds ε·φn = %v", phi, err, 0.05*target)
		}
	}
}

func TestWindowedPublicAPI(t *testing.T) {
	w := NewWindowed(0.05, 10000, 1)
	// Old regime then new regime; window must forget the old one.
	for i := 0; i < 30000; i++ {
		w.Update(5)
	}
	for i := 0; i < 12000; i++ {
		w.Update(1000)
	}
	if med := w.Quantile(0.5); med != 1000 {
		t.Errorf("median %d, want 1000 after regime change", med)
	}
	if w.Count() < 10000 || w.Count() > 10000+w.BlockSize() {
		t.Errorf("covered count %d outside [W, W+block]", w.Count())
	}
}
