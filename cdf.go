package streamquantiles

import (
	"sync"

	"streamquantiles/internal/core"
)

// CDFPoint is one point of an approximate cumulative distribution:
// an estimated Fraction of the stream is ≤ Value.
type CDFPoint struct {
	Value    uint64
	Fraction float64
}

// cdfPhiPool recycles the φ grid between CDF calls: extraction is one
// QuantileBatch, so the grid itself is the only per-call scratch and
// repeated CDFs (dashboards polling the same resolution) allocate only
// the returned points.
var cdfPhiPool = sync.Pool{New: func() any { return new([]float64) }}

// CDF extracts a points-sized approximation of the summarized
// distribution's cumulative distribution function, the representation
// the paper motivates quantiles with (§1: quantiles characterize the
// cdf, which yields the pdf). Points are taken at evenly spaced
// fractions 1/(points+1) … points/(points+1); values are non-decreasing.
// Each point inherits the summary's rank guarantee: the true fraction of
// elements ≤ Value differs from Fraction by at most the summary's ε.
//
// The whole grid is extracted in one QuantileBatch call — a single pass
// over the summary's state when it implements core.QuantileBatcher —
// instead of one full query walk per point.
func CDF(s Summary, points int) []CDFPoint {
	if points < 1 {
		panic("streamquantiles: CDF needs at least one point")
	}
	phisp := cdfPhiPool.Get().(*[]float64)
	phis := (*phisp)[:0]
	for i := 0; i < points; i++ {
		phis = append(phis, float64(i+1)/float64(points+1))
	}
	values := core.QuantileBatch(s, phis)
	out := make([]CDFPoint, points)
	prev := uint64(0)
	for i := range out {
		v := values[i]
		if v < prev {
			v = prev // enforce monotonicity against estimator noise
		}
		out[i] = CDFPoint{Value: v, Fraction: phis[i]}
		prev = v
	}
	*phisp = phis
	cdfPhiPool.Put(phisp)
	return out
}

// Histogram returns an approximate equi-depth histogram with the given
// number of buckets: bucket i covers (Bounds[i-1], Bounds[i]] and holds
// ≈ 1/buckets of the stream. Bounds has length buckets−1 (the interior
// boundaries), as in standard equi-depth histogram constructions.
func Histogram(s Summary, buckets int) (bounds []uint64) {
	if buckets < 2 {
		panic("streamquantiles: Histogram needs at least two buckets")
	}
	pts := CDF(s, buckets-1)
	bounds = make([]uint64, len(pts))
	for i, p := range pts {
		bounds[i] = p.Value
	}
	return bounds
}
