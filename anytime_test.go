package streamquantiles

import (
	"slices"
	"testing"

	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

// TestAnytimeProperty checks the defining requirement of the streaming
// model (paper §1): "the algorithm has to be ready to stop and provide
// the results at any time". Every summary is queried at several stream
// prefixes and must satisfy its guarantee against the prefix oracle —
// not just at the end.
func TestAnytimeProperty(t *testing.T) {
	const n = 60000
	const eps = 0.02
	const bits = 20
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 7}, n)
	for i := range data {
		data[i] %= 1 << bits
	}
	checkpoints := []int{1, 10, 100, 5000, 20000, n}

	summaries := map[string]CashRegister{
		"GKAdaptive":  NewGKAdaptive(eps),
		"GKTheory":    NewGKTheory(eps),
		"GKArray":     NewGKArray(eps),
		"FastQDigest": NewQDigest(eps, bits),
		"MRL99":       NewMRL99(eps, 3),
		"Random":      NewRandom(eps, 3),
	}
	turnstiles := map[string]Turnstile{
		"DCM": NewDCM(eps, bits, DyadicConfig{Seed: 4}),
		"DCS": NewDCS(eps, bits, DyadicConfig{Seed: 4}),
	}

	next := 0
	for _, cp := range checkpoints {
		for ; next < cp; next++ {
			for _, s := range summaries {
				s.Update(data[next])
			}
			for _, s := range turnstiles {
				s.Insert(data[next])
			}
		}
		prefix := slices.Clone(data[:cp])
		oracle := exact.New(prefix)
		for name, s := range summaries {
			if s.Count() != int64(cp) {
				t.Fatalf("%s: count %d at prefix %d", name, s.Count(), cp)
			}
			maxErr, _ := oracle.EvaluateSummary(s, eps)
			if maxErr > eps {
				t.Errorf("%s at prefix %d: max error %v exceeds ε", name, cp, maxErr)
			}
		}
		for name, s := range turnstiles {
			maxErr, _ := oracle.EvaluateSummary(s, eps)
			if maxErr > eps {
				t.Errorf("%s at prefix %d: max error %v exceeds ε", name, cp, maxErr)
			}
		}
	}
}
