package streamquantiles

import (
	"streamquantiles/internal/core"
	"streamquantiles/internal/sharded"
)

// Batched ingestion. Every summary in this library implements a native
// batch path: the deterministic GK variants stage a batch into their
// buffer and sort-and-merge once, the sampling summaries (MRL99,
// Random) skip whole sampling blocks, KLL and the q-digest fill their
// level-0/element buffers by block copy, and the dyadic sketches flip
// the per-element level walk to level-major chunks with hoisted hash
// coefficients. The batch paths produce either byte-identical state or
// (for GKAdaptive and GKTheory, which compress across the batch)
// answers within the same ε guarantee.

// BatchCashRegister is a CashRegister with a native batch update path.
type BatchCashRegister = core.BatchCashRegister

// BatchTurnstile is a Turnstile with native batch insert/delete paths.
type BatchTurnstile = core.BatchTurnstile

// UpdateBatch feeds a batch through s's native batch path, falling back
// to a per-element loop for summaries without one.
func UpdateBatch(s CashRegister, xs []uint64) { core.UpdateBatch(s, xs) }

// InsertBatch adds one occurrence of every element of xs.
func InsertBatch(s Turnstile, xs []uint64) { core.InsertBatch(s, xs) }

// DeleteBatch removes one occurrence of every element of xs.
func DeleteBatch(s Turnstile, xs []uint64) { core.DeleteBatch(s, xs) }

// ShardedCashRegister partitions an insert-only stream across P
// independently locked per-shard summaries, so P writers ingest with no
// shared lock; queries combine the shards within the composed ε bound.
type ShardedCashRegister = sharded.CashRegister

// ShardedTurnstile is the turnstile counterpart, routing elements by
// value affinity so deletions reach the shard that saw the insertions.
type ShardedTurnstile = sharded.Turnstile

// NewShardedCashRegister builds a P-way sharded cash-register summary;
// fresh must return a new, identically configured empty summary per
// call (same ε — and same seed for the mergeable randomized families).
// It errors when p < 1 — invalid topologies are a caller bug surfaced
// at construction, not a panic at first update.
func NewShardedCashRegister(p int, fresh func() CashRegister) (*ShardedCashRegister, error) {
	return sharded.NewCashRegister(p, fresh)
}

// NewShardedTurnstile builds a P-way sharded turnstile summary; fresh
// must return a new, identically configured empty summary per call
// (identical seeds, so shards merge exactly at query time). It errors
// when p < 1.
func NewShardedTurnstile(p int, fresh func() Turnstile) (*ShardedTurnstile, error) {
	return sharded.NewTurnstile(p, fresh)
}

// CashWriter is a per-goroutine ingestion handle for a
// ShardedCashRegister: acquire one per writer goroutine
// (ShardedCashRegister.AcquireWriter), feed it with Update/UpdateBatch,
// and Close it when done. Buffered elements become visible to queries
// on Flush/Close; flushes that race a Reshard/Retarget re-route to the
// live topology, so no element is ever lost.
type CashWriter = sharded.CashWriter

// TurnWriter is the per-goroutine ingestion handle for a
// ShardedTurnstile (ShardedTurnstile.AcquireWriter): buffered
// Insert/Delete with insertions flushed before deletions, preserving
// the strict-turnstile model at every flush boundary.
type TurnWriter = sharded.TurnWriter

// DrainObserver brackets each per-shard drain performed by an elastic
// operation; install one with SetDrainObserver on a sharded container
// to record ingestion-stall durations (cmd/quantstress does exactly
// this in its soak report).
type DrainObserver = sharded.DrainObserver

// CheckpointObserver brackets each live shard's marshal during a
// checkpoint save — the only window a writer routed to that shard can
// stall for while the rest of the topology keeps ingesting ("stop the
// shard, not the world"). Install one with SetCheckpointObserver on a
// sharded container to record those stall durations; cmd/quantstress
// feeds them into a latency sketch and gates them with
// -slo-checkpoint-max.
type CheckpointObserver = sharded.CheckpointObserver
