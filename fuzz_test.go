package streamquantiles

import (
	"bytes"
	"slices"
	"testing"

	"streamquantiles/internal/invariant"
)

// Fuzz targets double as regression tests: `go test` runs the seed
// corpus; `go test -fuzz=FuzzX` explores further.

// FuzzGKArrayGuarantee drives GKArray with arbitrary bytes as a stream
// and checks the deterministic ε guarantee against a sorted copy.
func FuzzGKArrayGuarantee(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 250, 0, 0, 9})
	f.Add(bytes.Repeat([]byte{7}, 300))
	f.Add([]byte{255, 254, 253, 252, 251, 250})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		const eps = 0.1
		s := NewGKArray(eps)
		ck := invariant.Every(16) // deep sanitizer, active under -tags sqcheck
		data := make([]uint64, len(raw))
		for i, b := range raw {
			data[i] = uint64(b)
			s.Update(data[i])
			if err := ck.Check(s); err != nil {
				t.Fatalf("after %d updates: %v", i+1, err)
			}
		}
		if err := invariant.Check(s); err != nil {
			t.Fatal(err)
		}
		slices.Sort(data)
		n := len(data)
		for _, phi := range []float64{0.25, 0.5, 0.75} {
			got := s.Quantile(phi)
			lo, _ := slices.BinarySearch(data, got)
			hi, _ := slices.BinarySearch(data, got+1)
			target := int(phi * float64(n))
			slack := int(eps*float64(n)) + 1
			if target < lo-slack || target > hi-1+slack {
				t.Fatalf("phi=%v: reported %d has rank [%d,%d], target %d ± %d",
					phi, got, lo, hi-1, target, slack)
			}
		}
	})
}

// FuzzTurnstileDeletes interleaves inserts and strict deletes and checks
// the count plus basic query sanity.
func FuzzTurnstileDeletes(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3})
	f.Add([]byte{9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		s := NewDCS(0.1, 8, DyadicConfig{Seed: 1})
		ck := invariant.Every(16) // deep sanitizer, active under -tags sqcheck
		live := map[uint64]int{}
		var n int64
		for i, b := range raw {
			x := uint64(b)
			if i%3 == 2 && live[x] > 0 {
				s.Delete(x)
				live[x]--
				n--
			} else {
				s.Insert(x)
				live[x]++
				n++
			}
			if err := ck.Check(s); err != nil {
				t.Fatalf("after %d operations: %v", i+1, err)
			}
		}
		if err := invariant.Check(s); err != nil {
			t.Fatal(err)
		}
		if s.Count() != n {
			t.Fatalf("count %d, want %d", s.Count(), n)
		}
		if n > 0 {
			q := s.Quantile(0.5)
			if q > 255 {
				t.Fatalf("median %d outside universe", q)
			}
		}
	})
}

// FuzzCodecsNeverPanic feeds arbitrary bytes to every UnmarshalBinary:
// corrupt input must produce an error, never a panic or a hang.
func FuzzCodecsNeverPanic(f *testing.F) {
	seed := func() [][]byte {
		var blobs [][]byte
		gk := NewGKArray(0.1)
		gk.Update(5)
		b1, _ := gk.MarshalBinary()
		qd := NewQDigest(0.1, 8)
		qd.Update(5)
		b2, _ := qd.MarshalBinary()
		r := NewRandom(0.1, 1)
		r.Update(5)
		b3, _ := r.MarshalBinary()
		d := NewDCS(0.1, 8, DyadicConfig{Seed: 1})
		d.Insert(5)
		b4, _ := d.MarshalBinary()
		blobs = append(blobs, b1, b2, b3, b4)
		return blobs
	}
	for _, b := range seed() {
		f.Add(b)
		if len(b) > 4 {
			f.Add(b[:len(b)/2]) // truncated variants
		}
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var a GKArray
		_ = a.UnmarshalBinary(raw)
		var b GKAdaptive
		_ = b.UnmarshalBinary(raw)
		var c GKTheory
		_ = c.UnmarshalBinary(raw)
		var q QDigest
		_ = q.UnmarshalBinary(raw)
		var r Random
		_ = r.UnmarshalBinary(raw)
		var m MRL99
		_ = m.UnmarshalBinary(raw)
		var d DyadicSketch
		_ = d.UnmarshalBinary(raw)
		var k KLL
		_ = k.UnmarshalBinary(raw)
	})
}

// FuzzFloatKeys checks the order-preserving bijection on arbitrary bit
// patterns.
func FuzzFloatKeys(f *testing.F) {
	f.Add(uint64(0), uint64(1))
	f.Add(uint64(1<<63), uint64(1<<63|1))
	f.Fuzz(func(t *testing.T, abits, bbits uint64) {
		a := KeyFloat64(Float64Key(KeyFloat64(abits)))
		_ = a
		av, bv := KeyFloat64(abits), KeyFloat64(bbits)
		if av != av || bv != bv { // NaN inputs: mapping undefined
			return
		}
		ka, kb := Float64Key(av), Float64Key(bv)
		switch {
		case av < bv:
			if ka >= kb {
				t.Fatalf("order broken: %v < %v but keys %d ≥ %d", av, bv, ka, kb)
			}
		case av > bv:
			if ka <= kb {
				t.Fatalf("order broken: %v > %v but keys %d ≤ %d", av, bv, ka, kb)
			}
		}
		if KeyFloat64(ka) != av && av != 0 {
			t.Fatalf("round trip broken for %v", av)
		}
	})
}
