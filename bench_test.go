// Benchmarks regenerating the paper's evaluation: one target per figure
// and table (see DESIGN.md's experiment index), each wrapping the
// corresponding harness driver, plus end-to-end update-throughput
// benchmarks of every algorithm through the public API.
//
// The drivers run at laptop scale (n = 50 000 here; the paper used
// 10^7–10^10) — absolute numbers differ from the paper but the reported
// custom metrics (errors, space) preserve the comparative shapes. Run
// cmd/quantbench for larger, configurable reproductions.
package streamquantiles

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"streamquantiles/internal/harness"
	"streamquantiles/internal/streamgen"
)

func benchOpts() harness.Options {
	return harness.Options{N: 50_000, Seed: 1, Repeats: 1}
}

// reportFigure runs a harness driver once per iteration and surfaces a
// few representative measurements as custom benchmark metrics.
func reportFigure(b *testing.B, exp string) {
	b.Helper()
	var results []harness.Result
	for i := 0; i < b.N; i++ {
		results = harness.Run(exp, benchOpts())
	}
	if len(results) == 0 {
		b.Fatalf("%s produced no results", exp)
	}
	var maxErr, avgErr float64
	var space int64
	for _, r := range results {
		if r.MaxErr > maxErr {
			maxErr = r.MaxErr
		}
		avgErr += r.AvgErr
		if r.SpaceBytes > space {
			space = r.SpaceBytes
		}
	}
	b.ReportMetric(maxErr, "worst-max-err")
	b.ReportMetric(avgErr/float64(len(results)), "mean-avg-err")
	b.ReportMetric(float64(space), "max-space-bytes")
}

// Cash-register experiments (paper §4.2).

func BenchmarkFig5Error(b *testing.B) { reportFigure(b, harness.ExpFig5) }
func BenchmarkFig5Space(b *testing.B) { reportFigure(b, harness.ExpFig5) }
func BenchmarkFig5Time(b *testing.B)  { reportFigure(b, harness.ExpFig5) }

func BenchmarkFig6Universe(b *testing.B) { reportFigure(b, harness.ExpFig6) }
func BenchmarkFig7Length(b *testing.B)   { reportFigure(b, harness.ExpFig7) }
func BenchmarkFig8Order(b *testing.B)    { reportFigure(b, harness.ExpFig8) }

// Turnstile experiments (paper §4.3).

func BenchmarkTable3TuneD(b *testing.B)   { reportFigure(b, harness.ExpTable3) }
func BenchmarkTable4TuneD(b *testing.B)   { reportFigure(b, harness.ExpTable4) }
func BenchmarkFig9Eta(b *testing.B)       { reportFigure(b, harness.ExpFig9) }
func BenchmarkFig10Error(b *testing.B)    { reportFigure(b, harness.ExpFig10) }
func BenchmarkFig10Space(b *testing.B)    { reportFigure(b, harness.ExpFig10) }
func BenchmarkFig10Time(b *testing.B)     { reportFigure(b, harness.ExpFig10) }
func BenchmarkFig11Universe(b *testing.B) { reportFigure(b, harness.ExpFig11) }
func BenchmarkFig12Skew(b *testing.B)     { reportFigure(b, harness.ExpFig12) }

// Reproduction ablations (DESIGN.md).

func BenchmarkAblationGKImpl(b *testing.B)         { reportFigure(b, harness.ExpAblGK) }
func BenchmarkAblationDCSExactLevels(b *testing.B) { reportFigure(b, harness.ExpAblExact) }
func BenchmarkAblationPostFallback(b *testing.B)   { reportFigure(b, harness.ExpAblPostFB) }

// Extension experiments (DESIGN.md: beyond the paper's evaluation).

func BenchmarkExtBiased(b *testing.B) { reportFigure(b, harness.ExpExtBiased) }
func BenchmarkExtWindow(b *testing.B) { reportFigure(b, harness.ExpExtWindow) }
func BenchmarkExtKLL(b *testing.B)    { reportFigure(b, harness.ExpExtKLL) }

func BenchmarkUpdateKLL(b *testing.B)      { benchUpdates(b, NewKLL(0.001, 1)) }
func BenchmarkUpdateGKBiased(b *testing.B) { benchUpdates(b, NewGKBiased(0.001)) }

// BatchCashRegister/BatchTurnstile counterparts live next to their
// per-item versions below.

// End-to-end update throughput through the public API.

func benchUpdates(b *testing.B, s CashRegister) {
	b.Helper()
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.SetBytes(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(data[i&(1<<16-1)])
	}
	b.ReportMetric(float64(s.SpaceBytes()), "space-bytes")
}

// benchUpdatesBatch feeds the same cyclic stream through the native
// batch path in benchBatchSize-element batches; per-element cost is
// directly comparable with benchUpdates (both set 8 bytes/op).
const benchBatchSize = 4096

func benchUpdatesBatch(b *testing.B, s BatchCashRegister) {
	b.Helper()
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, benchBatchSize)
	b.SetBytes(8)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += benchBatchSize {
		take := b.N - done
		if take > benchBatchSize {
			take = benchBatchSize
		}
		s.UpdateBatch(data[:take])
	}
	b.ReportMetric(float64(s.SpaceBytes()), "space-bytes")
}

func BenchmarkUpdateGKAdaptive(b *testing.B) { benchUpdates(b, NewGKAdaptive(0.001)) }
func BenchmarkUpdateGKTheory(b *testing.B)   { benchUpdates(b, NewGKTheory(0.001)) }
func BenchmarkUpdateGKArray(b *testing.B)    { benchUpdates(b, NewGKArray(0.001)) }
func BenchmarkUpdateQDigest(b *testing.B)    { benchUpdates(b, NewQDigest(0.001, 32)) }
func BenchmarkUpdateMRL99(b *testing.B)      { benchUpdates(b, NewMRL99(0.001, 1)) }
func BenchmarkUpdateRandom(b *testing.B)     { benchUpdates(b, NewRandom(0.001, 1)) }

func BenchmarkUpdateBatchGKAdaptive(b *testing.B) { benchUpdatesBatch(b, NewGKAdaptive(0.001)) }
func BenchmarkUpdateBatchGKTheory(b *testing.B)   { benchUpdatesBatch(b, NewGKTheory(0.001)) }
func BenchmarkUpdateBatchGKArray(b *testing.B)    { benchUpdatesBatch(b, NewGKArray(0.001)) }
func BenchmarkUpdateBatchGKBiased(b *testing.B)   { benchUpdatesBatch(b, NewGKBiased(0.001)) }
func BenchmarkUpdateBatchQDigest(b *testing.B)    { benchUpdatesBatch(b, NewQDigest(0.001, 32)) }
func BenchmarkUpdateBatchMRL99(b *testing.B)      { benchUpdatesBatch(b, NewMRL99(0.001, 1)) }
func BenchmarkUpdateBatchRandom(b *testing.B)     { benchUpdatesBatch(b, NewRandom(0.001, 1)) }
func BenchmarkUpdateBatchKLL(b *testing.B)        { benchUpdatesBatch(b, NewKLL(0.001, 1)) }

func benchInserts(b *testing.B, s Turnstile) {
	b.Helper()
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.SetBytes(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(data[i&(1<<16-1)])
	}
	b.ReportMetric(float64(s.SpaceBytes()), "space-bytes")
}

func benchInsertsBatch(b *testing.B, s BatchTurnstile) {
	b.Helper()
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, benchBatchSize)
	b.SetBytes(8)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += benchBatchSize {
		take := b.N - done
		if take > benchBatchSize {
			take = benchBatchSize
		}
		s.InsertBatch(data[:take])
	}
	b.ReportMetric(float64(s.SpaceBytes()), "space-bytes")
}

func BenchmarkInsertDCM(b *testing.B) { benchInserts(b, NewDCM(0.001, 32, DyadicConfig{Seed: 1})) }
func BenchmarkInsertDCS(b *testing.B) { benchInserts(b, NewDCS(0.001, 32, DyadicConfig{Seed: 1})) }

func BenchmarkInsertBatchDCM(b *testing.B) {
	benchInsertsBatch(b, NewDCM(0.001, 32, DyadicConfig{Seed: 1}))
}
func BenchmarkInsertBatchDCS(b *testing.B) {
	benchInsertsBatch(b, NewDCS(0.001, 32, DyadicConfig{Seed: 1}))
}
func BenchmarkInsertBatchDRSS(b *testing.B) {
	benchInsertsBatch(b, NewDRSS(0.001, 32, DyadicConfig{Seed: 1}))
}

// BenchmarkShardedUpdateBatch measures the sharded write path itself
// (single goroutine — scaling across writers is cmd/quantbench -ingest
// territory).
func BenchmarkShardedUpdateBatch(b *testing.B) {
	s := mustShardedCash(b, 4, func() CashRegister { return NewGKArray(0.001) })
	benchUpdatesBatch(b, s)
}

// BenchmarkParallelIngest drives W concurrent writer handles into a
// W-shard container (one affinity shard per writer) for the buffered
// mergeable families — the multi-core scaling the sharded layer exists
// for. On a ≥4-core runner the writers=4 case should sustain ≥3x the
// writers=1 throughput; cmd/quantbench -parallel measures and gates the
// same shape against BENCH_parallel.json.
func BenchmarkParallelIngest(b *testing.B) {
	families := []struct {
		name  string
		fresh func() CashRegister
	}{
		{"kll", func() CashRegister { return NewKLL(0.001, 7) }},
		{"mrl99", func() CashRegister { return NewMRL99(0.001, 7) }},
		{"gkarray", func() CashRegister { return NewGKArray(0.001) }},
	}
	writerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		writerCounts = append(writerCounts, p)
	}
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	for _, f := range families {
		for _, wn := range writerCounts {
			b.Run(fmt.Sprintf("%s/writers=%d", f.name, wn), func(b *testing.B) {
				s := mustShardedCash(b, wn, f.fresh)
				b.SetBytes(8)
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / wn
				for w := 0; w < wn; w++ {
					n := per
					if w == 0 {
						n = b.N - per*(wn-1)
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						h := s.AcquireWriter()
						defer h.Close()
						for i := 0; i < n; i++ {
							h.Update(data[i&(1<<16-1)])
						}
					}(n)
				}
				wg.Wait()
			})
		}
	}
}

func BenchmarkQuantileGKArray(b *testing.B) {
	s := NewGKArray(0.001)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<18)
	for _, x := range data {
		s.Update(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}

func BenchmarkPostProcessDCS(b *testing.B) {
	s := NewDCS(0.01, 24, DyadicConfig{Seed: 1})
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 1}, 1<<17)
	for _, x := range data {
		s.Insert(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PostProcess(s, 0)
	}
}
