// Command quantcli summarizes a stream of numbers from stdin (one per
// line) with any of the library's algorithms and prints the requested
// quantiles — a practical end-to-end exercise of the public API.
//
// Usage:
//
//	quantgen -dist mpcat -n 1000000 | quantcli -algo gkarray -q 0.5,0.95,0.99
//	quantcli -algo dcs -bits 32 -eps 0.001 < values.txt
//	quantcli -algo random -report   # ε, n, space and default quantiles
//
// Durable ingestion runs through the checkpoint subcommands:
//
//	quantcli save -dir /tmp/ck -algo gkarray -every 100000 < values.txt
//	quantcli load -dir /tmp/ck -q 0.5,0.99      # query the last checkpoint
//	quantcli resume -dir /tmp/ck < more.txt     # continue a killed run
//
// save ingests while publishing a checkpoint every -every elements (and
// one at EOF); a run killed mid-stream loses at most the elements since
// the last published generation. resume recovers the newest valid
// checkpoint — the stored label says which algorithm to rebuild — and
// continues ingesting with the same cadence. load only queries.
//
// Negative lines prefixed with "-" in -turnstile mode are deletions.
package main

import (
	"bufio"
	"encoding"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	sq "streamquantiles"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "save":
			os.Exit(runSave(os.Args[2:], os.Stdin, os.Stdout, os.Stderr))
		case "load":
			os.Exit(runLoad(os.Args[2:], os.Stdout, os.Stderr))
		case "resume":
			os.Exit(runResume(os.Args[2:], os.Stdin, os.Stdout, os.Stderr))
		}
	}
	var (
		algo      = flag.String("algo", "gkarray", "gkadaptive, gktheory, gkarray, qdigest, mrl99, random, kll, drss, dcm, dcs")
		eps       = flag.Float64("eps", 0.01, "error parameter ε")
		bits      = flag.Int("bits", 32, "universe bits (fixed-universe algorithms)")
		seed      = flag.Uint64("seed", 1, "seed for randomized algorithms")
		qs        = flag.String("q", "0.01,0.25,0.5,0.75,0.99", "comma-separated quantile fractions")
		turnstile = flag.Bool("turnstile", false, "treat lines starting with '-' as deletions (dcm/dcs/drss only)")
		report    = flag.Bool("report", false, "also print n and space usage")
	)
	flag.Parse()

	cash, turn, err := build(*algo, *eps, *bits, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantcli: %v\n", err)
		os.Exit(2)
	}
	if *turnstile && turn == nil {
		fmt.Fprintln(os.Stderr, "quantcli: -turnstile requires a turnstile algorithm")
		os.Exit(2)
	}

	if err := process(os.Stdin, cash, turn, *turnstile); err != nil {
		fmt.Fprintf(os.Stderr, "quantcli: %v\n", err)
		os.Exit(1)
	}

	var s sq.Summary
	if turn != nil {
		s = turn
	} else {
		s = cash
	}
	if code := printResults(os.Stdout, os.Stderr, s, *algo, *eps, *qs, *report); code != 0 {
		os.Exit(code)
	}
}

// runSave is the "save" subcommand: ingest stdin with periodic durable
// checkpoints, then print quantiles.
func runSave(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("quantcli save", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algo      = fs.String("algo", "gkarray", "algorithm to run (must have a binary codec)")
		eps       = fs.Float64("eps", 0.01, "error parameter ε")
		bits      = fs.Int("bits", 32, "universe bits (fixed-universe algorithms)")
		seed      = fs.Uint64("seed", 1, "seed for randomized algorithms")
		dir       = fs.String("dir", "", "checkpoint directory (required)")
		every     = fs.Int("every", 100000, "checkpoint every N accepted elements (0 = only at EOF)")
		qs        = fs.String("q", "0.01,0.25,0.5,0.75,0.99", "comma-separated quantile fractions")
		turnstile = fs.Bool("turnstile", false, "treat lines starting with '-' as deletions")
		report    = fs.Bool("report", false, "also print n and space usage")
		par       = fs.Int("parallel", 0, "worker bound for the parallel encode/decode fan-out (sets GOMAXPROCS; 0 = leave at GOMAXPROCS)")
	)
	if fs.Parse(args) != nil {
		return 2
	}
	setParallel(*par)
	if *dir == "" {
		fmt.Fprintln(stderr, "quantcli save: -dir is required")
		return 2
	}
	cash, turn, err := build(*algo, *eps, *bits, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "quantcli save: %v\n", err)
		return 2
	}
	if *turnstile && turn == nil {
		fmt.Fprintln(stderr, "quantcli save: -turnstile requires a turnstile algorithm")
		return 2
	}
	label := strings.ToLower(*algo)
	return ingestCheckpointed(stdin, stdout, stderr, cash, turn, *turnstile, *dir, label, *every, *eps, *qs, *report)
}

// runResume is the "resume" subcommand: recover the newest valid
// checkpoint (the stored label identifies the algorithm), continue
// ingesting stdin with the same checkpoint cadence, and print quantiles.
func runResume(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("quantcli resume", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("dir", "", "checkpoint directory (required)")
		every     = fs.Int("every", 100000, "checkpoint every N accepted elements (0 = only at EOF)")
		qs        = fs.String("q", "0.01,0.25,0.5,0.75,0.99", "comma-separated quantile fractions")
		turnstile = fs.Bool("turnstile", false, "treat lines starting with '-' as deletions")
		report    = fs.Bool("report", false, "also print n and space usage")
		par       = fs.Int("parallel", 0, "worker bound for the parallel encode/decode fan-out (sets GOMAXPROCS; 0 = leave at GOMAXPROCS)")
	)
	if fs.Parse(args) != nil {
		return 2
	}
	setParallel(*par)
	if *dir == "" {
		fmt.Fprintln(stderr, "quantcli resume: -dir is required")
		return 2
	}
	cash, turn, label, code := recoverFrom(*dir, stderr)
	if code != 0 {
		return code
	}
	if *turnstile && turn == nil {
		fmt.Fprintln(stderr, "quantcli resume: -turnstile requires a turnstile checkpoint")
		return 2
	}
	return ingestCheckpointed(stdin, stdout, stderr, cash, turn, *turnstile, *dir, label, *every, 0, *qs, *report)
}

// runLoad is the "load" subcommand: recover the newest valid checkpoint
// and print quantiles without ingesting anything.
func runLoad(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("quantcli load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir    = fs.String("dir", "", "checkpoint directory (required)")
		qs     = fs.String("q", "0.01,0.25,0.5,0.75,0.99", "comma-separated quantile fractions")
		report = fs.Bool("report", false, "also print n and space usage")
	)
	if fs.Parse(args) != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "quantcli load: -dir is required")
		return 2
	}
	cash, turn, label, code := recoverFrom(*dir, stderr)
	if code != 0 {
		return code
	}
	var s sq.Summary
	if turn != nil {
		s = turn
	} else {
		s = cash
	}
	return printResults(stdout, stderr, s, label, 0, *qs, *report)
}

// setParallel pins GOMAXPROCS when -parallel is set: the checkpoint
// layer's fan-out encode/decode pools and the pipelined recovery are
// GOMAXPROCS-bounded, so this is the one knob that widens (or, set to
// 1, serializes) every parallel path at once.
func setParallel(workers int) {
	if workers > 0 {
		runtime.GOMAXPROCS(workers)
	}
}

// recoverFrom loads the newest valid checkpoint in dir, rebuilding the
// summary named by the stored label. The construction parameters are
// placeholders: every codec replaces the full state, ε and seeds
// included. Skipped generations are reported on stderr, as is the
// recovery wall time with the per-candidate decode timing the report
// carries.
func recoverFrom(dir string, stderr io.Writer) (sq.CashRegister, sq.Turnstile, string, int) {
	var gotLabel string
	start := time.Now()
	target, report, err := sq.RecoverCheckpointFunc(dir, func(label string) (encoding.BinaryUnmarshaler, error) {
		cash, turn, err := build(label, 0.01, 32, 1)
		if err != nil {
			return nil, fmt.Errorf("checkpoint label: %w", err)
		}
		gotLabel = label
		if turn != nil {
			return turn.(encoding.BinaryUnmarshaler), nil
		}
		m, ok := cash.(encoding.BinaryUnmarshaler)
		if !ok {
			return nil, fmt.Errorf("algorithm %q has no binary codec", label)
		}
		return m, nil
	})
	elapsed := time.Since(start)
	if report != nil {
		for _, skip := range report.Skipped {
			fmt.Fprintf(stderr, "quantcli: skipped checkpoint %s: %s\n", skip.File, skip.Reason)
		}
		for _, cand := range report.Candidates {
			status := "rejected"
			if cand.Loaded {
				status = "loaded"
			}
			fmt.Fprintf(stderr, "quantcli: candidate %s (generation %d): decode %v, %s\n",
				cand.File, cand.Generation, cand.Decode, status)
		}
	}
	if err != nil {
		if errors.Is(err, sq.ErrNoCheckpoint) {
			fmt.Fprintf(stderr, "quantcli: no usable checkpoint in %s\n", dir)
		} else {
			fmt.Fprintf(stderr, "quantcli: %v\n", err)
		}
		return nil, nil, "", 1
	}
	fmt.Fprintf(stderr, "quantcli: recovered generation %d in %v\n", report.Generation, elapsed)
	switch s := target.(type) {
	case sq.Turnstile:
		return nil, s, gotLabel, 0
	case sq.CashRegister:
		return s, nil, gotLabel, 0
	default:
		fmt.Fprintf(stderr, "quantcli: recovered %T is not a summary\n", target)
		return nil, nil, "", 1
	}
}

// ingestCheckpointed runs the durable ingest loop shared by save and
// resume: the summary goes behind its goroutine-safe wrapper, a
// checkpoint is published every `every` accepted elements and once more
// at EOF, and the requested quantiles are printed. A crash between
// checkpoints loses at most `every` elements; resume restarts from the
// newest published generation.
func ingestCheckpointed(stdin io.Reader, stdout, stderr io.Writer, cash sq.CashRegister, turn sq.Turnstile, turnstile bool, dir, label string, every int, eps float64, qs string, report bool) int {
	ck, err := sq.OpenCheckpointDir(dir)
	if err != nil {
		fmt.Fprintf(stderr, "quantcli: %v\n", err)
		return 1
	}
	var s sq.Summary
	var save func() error
	var saves int
	var saveWall time.Duration
	timed := func(do func() (uint64, error)) error {
		start := time.Now()
		_, err := do()
		if err == nil {
			saves++
			saveWall += time.Since(start)
		}
		return err
	}
	if turn != nil {
		w := sq.NewSafeTurnstile(turn)
		turn, s = w, w
		save = func() error { return timed(func() (uint64, error) { return w.Checkpoint(ck, label) }) }
	} else {
		w := sq.NewSafeCashRegister(cash)
		cash, s = w, w
		save = func() error { return timed(func() (uint64, error) { return w.Checkpoint(ck, label) }) }
	}
	if err := processEvery(stdin, cash, turn, turnstile, every, save); err != nil {
		fmt.Fprintf(stderr, "quantcli: %v\n", err)
		return 1
	}
	if s.Count() > 0 {
		if err := save(); err != nil {
			fmt.Fprintf(stderr, "quantcli: final checkpoint: %v\n", err)
			return 1
		}
	}
	if saves > 0 {
		fmt.Fprintf(stderr, "quantcli: %d checkpoint save(s) in %v total (%v avg)\n",
			saves, saveWall, saveWall/time.Duration(saves))
	}
	return printResults(stdout, stderr, s, label, eps, qs, report)
}

// printResults emits the report line and the requested quantiles.
func printResults(stdout, stderr io.Writer, s sq.Summary, algo string, eps float64, qs string, report bool) int {
	if s.Count() == 0 {
		fmt.Fprintln(stderr, "quantcli: empty input")
		return 1
	}
	if report {
		fmt.Fprintf(stdout, "algorithm=%s eps=%g n=%d space=%dB\n", algo, eps, s.Count(), s.SpaceBytes())
	}
	for _, field := range strings.Split(qs, ",") {
		phi, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || phi <= 0 || phi >= 1 {
			fmt.Fprintf(stderr, "quantcli: bad quantile fraction %q\n", field)
			return 2
		}
		fmt.Fprintf(stdout, "q%.4g\t%d\n", phi, s.Quantile(phi))
	}
	return 0
}

// process feeds newline-separated decimal values from r into the
// summary; in turnstile mode a leading '-' marks a deletion.
func process(r io.Reader, cash sq.CashRegister, turn sq.Turnstile, turnstile bool) error {
	return processEvery(r, cash, turn, turnstile, 0, nil)
}

// processEvery is process with a durability hook: ckpt runs after every
// `every` accepted elements (0 disables).
func processEvery(r io.Reader, cash sq.CashRegister, turn sq.Turnstile, turnstile bool, every int, ckpt func() error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line, accepted := 0, 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		del := false
		if turnstile && strings.HasPrefix(text, "-") {
			del = true
			text = text[1:]
		}
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch {
		case del:
			turn.Delete(v)
		case turn != nil:
			turn.Insert(v)
		default:
			cash.Update(v)
		}
		accepted++
		if every > 0 && accepted%every == 0 {
			if err := ckpt(); err != nil {
				return fmt.Errorf("checkpoint after %d elements: %w", accepted, err)
			}
		}
	}
	return sc.Err()
}

// build constructs the requested summary; exactly one of the returns is
// non-nil besides the error.
func build(algo string, eps float64, bits int, seed uint64) (sq.CashRegister, sq.Turnstile, error) {
	switch strings.ToLower(algo) {
	case "gkadaptive":
		return sq.NewGKAdaptive(eps), nil, nil
	case "gktheory":
		return sq.NewGKTheory(eps), nil, nil
	case "gkarray":
		return sq.NewGKArray(eps), nil, nil
	case "qdigest":
		return sq.NewQDigest(eps, bits), nil, nil
	case "mrl99":
		return sq.NewMRL99(eps, seed), nil, nil
	case "random":
		return sq.NewRandom(eps, seed), nil, nil
	case "kll":
		return sq.NewKLL(eps, seed), nil, nil
	case "dcm":
		return nil, sq.NewDCM(eps, bits, sq.DyadicConfig{Seed: seed}), nil
	case "dcs":
		return nil, sq.NewDCS(eps, bits, sq.DyadicConfig{Seed: seed}), nil
	case "drss":
		return nil, sq.NewDRSS(eps, bits, sq.DyadicConfig{Seed: seed}), nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
