// Command quantcli summarizes a stream of numbers from stdin (one per
// line) with any of the library's algorithms and prints the requested
// quantiles — a practical end-to-end exercise of the public API.
//
// Usage:
//
//	quantgen -dist mpcat -n 1000000 | quantcli -algo gkarray -q 0.5,0.95,0.99
//	quantcli -algo dcs -bits 32 -eps 0.001 < values.txt
//	quantcli -algo random -report   # ε, n, space and default quantiles
//
// Negative lines prefixed with "-" in -turnstile mode are deletions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	sq "streamquantiles"
)

func main() {
	var (
		algo      = flag.String("algo", "gkarray", "gkadaptive, gktheory, gkarray, qdigest, mrl99, random, dcm, dcs")
		eps       = flag.Float64("eps", 0.01, "error parameter ε")
		bits      = flag.Int("bits", 32, "universe bits (fixed-universe algorithms)")
		seed      = flag.Uint64("seed", 1, "seed for randomized algorithms")
		qs        = flag.String("q", "0.01,0.25,0.5,0.75,0.99", "comma-separated quantile fractions")
		turnstile = flag.Bool("turnstile", false, "treat lines starting with '-' as deletions (dcm/dcs only)")
		report    = flag.Bool("report", false, "also print n and space usage")
	)
	flag.Parse()

	cash, turn, err := build(*algo, *eps, *bits, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantcli: %v\n", err)
		os.Exit(2)
	}
	if *turnstile && turn == nil {
		fmt.Fprintln(os.Stderr, "quantcli: -turnstile requires dcm or dcs")
		os.Exit(2)
	}

	if err := process(os.Stdin, cash, turn, *turnstile); err != nil {
		fmt.Fprintf(os.Stderr, "quantcli: %v\n", err)
		os.Exit(1)
	}

	var s sq.Summary
	if turn != nil {
		s = turn
	} else {
		s = cash
	}
	if s.Count() == 0 {
		fmt.Fprintln(os.Stderr, "quantcli: empty input")
		os.Exit(1)
	}
	if *report {
		fmt.Printf("algorithm=%s eps=%g n=%d space=%dB\n", *algo, *eps, s.Count(), s.SpaceBytes())
	}
	for _, field := range strings.Split(*qs, ",") {
		phi, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || phi <= 0 || phi >= 1 {
			fmt.Fprintf(os.Stderr, "quantcli: bad quantile fraction %q\n", field)
			os.Exit(2)
		}
		fmt.Printf("q%.4g\t%d\n", phi, s.Quantile(phi))
	}
}

// process feeds newline-separated decimal values from r into the
// summary; in turnstile mode a leading '-' marks a deletion.
func process(r io.Reader, cash sq.CashRegister, turn sq.Turnstile, turnstile bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		del := false
		if turnstile && strings.HasPrefix(text, "-") {
			del = true
			text = text[1:]
		}
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		switch {
		case del:
			turn.Delete(v)
		case turn != nil:
			turn.Insert(v)
		default:
			cash.Update(v)
		}
	}
	return sc.Err()
}

// build constructs the requested summary; exactly one of the returns is
// non-nil besides the error.
func build(algo string, eps float64, bits int, seed uint64) (sq.CashRegister, sq.Turnstile, error) {
	switch strings.ToLower(algo) {
	case "gkadaptive":
		return sq.NewGKAdaptive(eps), nil, nil
	case "gktheory":
		return sq.NewGKTheory(eps), nil, nil
	case "gkarray":
		return sq.NewGKArray(eps), nil, nil
	case "qdigest":
		return sq.NewQDigest(eps, bits), nil, nil
	case "mrl99":
		return sq.NewMRL99(eps, seed), nil, nil
	case "random":
		return sq.NewRandom(eps, seed), nil, nil
	case "dcm":
		return nil, sq.NewDCM(eps, bits, sq.DyadicConfig{Seed: seed}), nil
	case "dcs":
		return nil, sq.NewDCS(eps, bits, sq.DyadicConfig{Seed: seed}), nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
