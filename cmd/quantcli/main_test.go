package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	sq "streamquantiles"
)

// TestMain doubles the test binary as the real CLI: when re-exec'd with
// QUANTCLI_BE_CLI=1 it runs main() instead of the tests, which is what
// lets TestKillNineResume kill -9 an actual quantcli process mid-ingest.
func TestMain(m *testing.M) {
	if os.Getenv("QUANTCLI_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestBuildAllAlgorithms(t *testing.T) {
	cashNames := []string{"gkadaptive", "gktheory", "gkarray", "qdigest", "mrl99", "random"}
	for _, name := range cashNames {
		cash, turn, err := build(name, 0.01, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cash == nil || turn != nil {
			t.Fatalf("%s: expected cash-register summary", name)
		}
		cash.Update(5)
		if cash.Count() != 1 {
			t.Fatalf("%s: count after update = %d", name, cash.Count())
		}
	}
	for _, name := range []string{"dcm", "dcs"} {
		cash, turn, err := build(name, 0.01, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if turn == nil || cash != nil {
			t.Fatalf("%s: expected turnstile summary", name)
		}
		turn.Insert(5)
		turn.Delete(5)
		if turn.Count() != 0 {
			t.Fatalf("%s: count after insert+delete = %d", name, turn.Count())
		}
	}
}

func TestBuildCaseInsensitive(t *testing.T) {
	if _, _, err := build("GKArray", 0.01, 16, 1); err != nil {
		t.Errorf("mixed-case name rejected: %v", err)
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, _, err := build("bogus", 0.01, 16, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestProcessCashRegister(t *testing.T) {
	cash, _, _ := build("gkarray", 0.1, 16, 1)
	in := "5\n7\n\n  9 \n"
	if err := process(strings.NewReader(in), cash, nil, false); err != nil {
		t.Fatal(err)
	}
	if cash.Count() != 3 {
		t.Fatalf("count %d, want 3", cash.Count())
	}
}

func TestProcessTurnstileDeletes(t *testing.T) {
	_, turn, _ := build("dcs", 0.1, 16, 1)
	in := "5\n7\n-5\n9\n"
	if err := process(strings.NewReader(in), nil, turn, true); err != nil {
		t.Fatal(err)
	}
	if turn.Count() != 2 {
		t.Fatalf("count %d, want 2", turn.Count())
	}
}

func TestProcessBadLine(t *testing.T) {
	cash, _, _ := build("gkarray", 0.1, 16, 1)
	if err := process(strings.NewReader("5\nxyz\n"), cash, nil, false); err == nil {
		t.Error("garbage line accepted")
	}
}

// elem is the deterministic test stream: a fixed multiplicative shuffle
// of 0..n over a 2^20 universe, so any prefix is reproducible exactly.
func elem(i int) uint64 {
	return (uint64(i) * 2654435761) % (1 << 20)
}

func feed(from, to int) string {
	var b strings.Builder
	for i := from; i < to; i++ {
		fmt.Fprintf(&b, "%d\n", elem(i))
	}
	return b.String()
}

func TestSaveLoadSubcommands(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	var out, errb bytes.Buffer
	code := runSave([]string{"-dir", dir, "-algo", "kll", "-every", "1000", "-q", "0.5", "-report"},
		strings.NewReader(feed(0, 5000)), &out, &errb)
	if code != 0 {
		t.Fatalf("save exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "n=5000") {
		t.Fatalf("save report missing count: %q", out.String())
	}
	saveQuantile := out.String()[strings.Index(out.String(), "q0.5"):]

	var lout bytes.Buffer
	errb.Reset()
	code = runLoad([]string{"-dir", dir, "-q", "0.5"}, &lout, &errb)
	if code != 0 {
		t.Fatalf("load exit %d: %s", code, errb.String())
	}
	if lout.String() != saveQuantile {
		t.Fatalf("load answered %q, save answered %q", lout.String(), saveQuantile)
	}
}

func TestResumeSubcommandContinues(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	const n = 8000
	var out, errb bytes.Buffer
	code := runSave([]string{"-dir", dir, "-algo", "gkadaptive", "-every", "1000", "-q", "0.5"},
		strings.NewReader(feed(0, n/2)), &out, &errb)
	if code != 0 {
		t.Fatalf("save exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	code = runResume([]string{"-dir", dir, "-q", "0.5"}, strings.NewReader(feed(n/2, n)), &out, &errb)
	if code != 0 {
		t.Fatalf("resume exit %d: %s", code, errb.String())
	}
	// The resumed run must answer exactly like one uninterrupted run:
	// gkadaptive is deterministic and checkpoints are exact state.
	ref, _, _ := build("gkadaptive", 0.01, 32, 1)
	if err := process(strings.NewReader(feed(0, n)), ref, nil, false); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("q0.5\t%d\n", ref.Quantile(0.5))
	if out.String() != want {
		t.Fatalf("resumed run answered %q, uninterrupted run %q", out.String(), want)
	}
}

func TestResumeTurnstileCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ck")
	var out, errb bytes.Buffer
	code := runSave([]string{"-dir", dir, "-algo", "dcs", "-turnstile", "-every", "500", "-q", "0.5"},
		strings.NewReader("5\n7\n-5\n9\n1000\n"), &out, &errb)
	if code != 0 {
		t.Fatalf("save exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	code = runResume([]string{"-dir", dir, "-turnstile", "-q", "0.5", "-report"},
		strings.NewReader("-7\n12\n"), &out, &errb)
	if code != 0 {
		t.Fatalf("resume exit %d: %s", code, errb.String())
	}
	// Save saw +5 +7 −5 +9 +1000 (n=3); resume adds −7 +12 (n=3).
	if !strings.Contains(out.String(), "n=3") {
		t.Fatalf("resumed turnstile count wrong: %q", out.String())
	}
}

func TestLoadWithoutCheckpoint(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runLoad([]string{"-dir", t.TempDir()}, &out, &errb); code != 1 {
		t.Fatalf("load from empty dir exited %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no usable checkpoint") {
		t.Fatalf("stderr %q", errb.String())
	}
}

func TestSaveRequiresDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runSave(nil, strings.NewReader(""), &out, &errb); code != 2 {
		t.Fatalf("save without -dir exited %d", code)
	}
}

func hasCheckpoint(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			return true
		}
	}
	return false
}

// TestKillNineResume is the end-to-end durability acceptance test: a
// real quantcli process is SIGKILLed mid-ingest after its first
// checkpoint lands, and a second process resumes from the published
// generation and finishes the stream. The resumed run must answer
// exactly — not approximately — like one uninterrupted run, because a
// checkpoint is the summary's exact state.
func TestKillNineResume(t *testing.T) {
	if testing.Short() {
		t.Skip("forks and kills real processes")
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	const total = 50000
	const every = 2000
	const qspec = "0.1,0.5,0.9"

	cmd := exec.Command(os.Args[0], "save", "-dir", dir, "-algo", "gkarray",
		"-eps", "0.01", "-every", fmt.Sprint(every), "-q", qspec)
	cmd.Env = append(os.Environ(), "QUANTCLI_BE_CLI=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Feed the stream in chunks until a checkpoint generation is
	// published, then kill -9: the process gets no chance to clean up.
	w := bufio.NewWriter(stdin)
	fed := 0
	for fed < total && !hasCheckpoint(dir) {
		for end := fed + 500; fed < end && fed < total; fed++ {
			fmt.Fprintf(w, "%d\n", elem(fed))
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("feeding after %d elements: %v", fed, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !hasCheckpoint(dir) {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // reap; the kill makes this an error by design
	stdin.Close()
	if fed >= total {
		t.Fatalf("stream exhausted (%d elements) before the kill", fed)
	}

	// Recover in-process to learn how far the durable state got. The
	// construction parameters are placeholders — the codec restores the
	// real ones from the checkpoint.
	probe := sq.NewGKArray(0.5)
	if _, err := sq.RecoverCheckpoint(dir, probe); err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	n0 := int(probe.Count())
	if n0 == 0 || n0%every != 0 || n0 > fed {
		t.Fatalf("recovered count %d not a checkpoint boundary within the %d fed", n0, fed)
	}
	t.Logf("killed after feeding %d, durable state holds %d", fed, n0)

	// Second incarnation: resume from the checkpoint, stream the rest.
	cmd2 := exec.Command(os.Args[0], "resume", "-dir", dir,
		"-every", fmt.Sprint(every), "-q", qspec)
	cmd2.Env = append(os.Environ(), "QUANTCLI_BE_CLI=1")
	cmd2.Stdin = strings.NewReader(feed(n0, total))
	var out, errb bytes.Buffer
	cmd2.Stdout = &out
	cmd2.Stderr = &errb
	if err := cmd2.Run(); err != nil {
		t.Fatalf("resume run: %v\nstderr: %s", err, errb.String())
	}

	// Reference: the same stream, never interrupted, in-process.
	ref, _, _ := build("gkarray", 0.01, 32, 1)
	if err := process(strings.NewReader(feed(0, total)), ref, nil, false); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if code := printResults(&want, io.Discard, ref, "gkarray", 0.01, qspec, false); code != 0 {
		t.Fatal("reference printResults failed")
	}
	if out.String() != want.String() {
		t.Fatalf("resumed answers differ from uninterrupted run:\nresumed:\n%s\nreference:\n%s", out.String(), want.String())
	}
}
