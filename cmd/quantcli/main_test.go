package main

import (
	"strings"
	"testing"
)

func TestBuildAllAlgorithms(t *testing.T) {
	cashNames := []string{"gkadaptive", "gktheory", "gkarray", "qdigest", "mrl99", "random"}
	for _, name := range cashNames {
		cash, turn, err := build(name, 0.01, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cash == nil || turn != nil {
			t.Fatalf("%s: expected cash-register summary", name)
		}
		cash.Update(5)
		if cash.Count() != 1 {
			t.Fatalf("%s: count after update = %d", name, cash.Count())
		}
	}
	for _, name := range []string{"dcm", "dcs"} {
		cash, turn, err := build(name, 0.01, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if turn == nil || cash != nil {
			t.Fatalf("%s: expected turnstile summary", name)
		}
		turn.Insert(5)
		turn.Delete(5)
		if turn.Count() != 0 {
			t.Fatalf("%s: count after insert+delete = %d", name, turn.Count())
		}
	}
}

func TestBuildCaseInsensitive(t *testing.T) {
	if _, _, err := build("GKArray", 0.01, 16, 1); err != nil {
		t.Errorf("mixed-case name rejected: %v", err)
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, _, err := build("bogus", 0.01, 16, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestProcessCashRegister(t *testing.T) {
	cash, _, _ := build("gkarray", 0.1, 16, 1)
	in := "5\n7\n\n  9 \n"
	if err := process(strings.NewReader(in), cash, nil, false); err != nil {
		t.Fatal(err)
	}
	if cash.Count() != 3 {
		t.Fatalf("count %d, want 3", cash.Count())
	}
}

func TestProcessTurnstileDeletes(t *testing.T) {
	_, turn, _ := build("dcs", 0.1, 16, 1)
	in := "5\n7\n-5\n9\n"
	if err := process(strings.NewReader(in), nil, turn, true); err != nil {
		t.Fatal(err)
	}
	if turn.Count() != 2 {
		t.Fatalf("count %d, want 2", turn.Count())
	}
}

func TestProcessBadLine(t *testing.T) {
	cash, _, _ := build("gkarray", 0.1, 16, 1)
	if err := process(strings.NewReader("5\nxyz\n"), cash, nil, false); err == nil {
		t.Error("garbage line accepted")
	}
}
