package main

import (
	"encoding"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	sq "streamquantiles"

	"streamquantiles/internal/checkpoint"
	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/faultio"
	"streamquantiles/internal/retry"
	"streamquantiles/internal/streamgen"
)

// container is the summary surface the soak verifies — both sharded
// families satisfy it.
type container interface {
	Count() int64
	Quantile(phi float64) uint64
	QuantileBatch(phis []float64) []uint64
	Rank(x uint64) int64
	RankBatch(xs []uint64) []int64
	Invariants() error
	Shards() int
	Generation() uint64
	Components() int
	EpsBudget() float64
	MarshalBinary() ([]byte, error)
}

// probePhis is the quantile grid every verification barrier checks,
// extremes included — the tails are where elasticity bugs hide.
var probePhis = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// harness owns one soak run. Writers take gate.RLock per batch and
// publish their progress before releasing it; a verification barrier
// takes gate.Lock, so the per-writer high-water marks it reads describe
// exactly the elements the container has absorbed — the ground truth
// for the oracle. Readers never take the gate: queries are part of the
// load the barrier runs under.
type harness struct {
	cfg *config
	out io.Writer

	cash *sq.ShardedCashRegister
	turn *sq.ShardedTurnstile

	gate     sync.RWMutex
	streams  [][]uint64
	inserted []atomic.Int64
	deleted  []atomic.Int64
	opsDone  atomic.Int64
	// wake nudges the coordinator after every published batch so
	// milestones fire promptly instead of on a polling cadence.
	wake chan struct{}

	// baseCount is the recovered element count of a -resume run; the
	// pre-crash stream is unknown to this process, so oracle checks are
	// replaced by self-consistency checks when it is nonzero.
	baseCount int64
	resumed   bool

	ingestLat *latSketch
	queryLat  *latSketch
	// drainLat records every per-shard drain duration during a
	// reshard/retarget, via the container's DrainObserver hook — a
	// writer blocked on a retiring shard stalls for at most one of
	// these, so the max is the ingestion-stall bound the soak asserts.
	drainLat *latSketch
	// ckptLat records every per-shard marshal duration during a
	// checkpoint save, via the container's CheckpointObserver hook — a
	// writer routed to a shard being marshalled stalls for at most one
	// of these ("stop the shard, not the world"), so the max is the
	// checkpoint-stall bound the soak asserts with -slo-checkpoint-max.
	ckptLat *latSketch
	queries atomic.Int64

	mu         sync.Mutex
	violations []string // guarded by mu

	ck *ckptDriver

	reshards  int
	retargets int
	verifies  int
}

func (h *harness) c() container {
	if h.cash != nil {
		return h.cash
	}
	return h.turn
}

func (h *harness) fail(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

func (h *harness) logf(format string, args ...any) {
	if h.cfg.verbose {
		fmt.Fprintf(h.out, "quantstress: "+format+"\n", args...)
	}
}

func (h *harness) sayf(format string, args ...any) {
	fmt.Fprintf(h.out, "quantstress: "+format+"\n", args...)
}

// latSketch dogfoods a KLL sketch as the latency recorder: observed
// durations in nanoseconds are a stream, and p50/p99 are quantile
// queries against the library itself.
type latSketch struct {
	mu  sync.Mutex
	s   *sq.KLL // guarded by mu
	n   int64   // guarded by mu
	max int64   // guarded by mu
}

func newLatSketch(seed uint64) *latSketch {
	return &latSketch{s: sq.NewKLL(0.01, seed)}
}

func (l *latSketch) observe(d time.Duration) {
	l.mu.Lock()
	l.s.Update(uint64(d))
	l.n++
	if int64(d) > l.max {
		l.max = int64(d)
	}
	l.mu.Unlock()
}

func (l *latSketch) report() (n int64, p50, p99, max time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0, 0, 0, 0
	}
	return l.n, time.Duration(l.s.Quantile(0.50)), time.Duration(l.s.Quantile(0.99)), time.Duration(l.max)
}

// cashWriter streams its slice in, batch by batch, through its own
// per-goroutine writer handle under the read side of the pause gate.
// The handle must be flushed before the high-water mark is published:
// the verification barrier's oracle counts every element up to the
// mark, so none may still sit in the writer-local buffer.
func (h *harness) cashWriter(w int) {
	stream := h.streams[w]
	hw := h.cash.AcquireWriter()
	defer hw.Close()
	for i := 0; i < len(stream); i += h.cfg.batch {
		end := i + h.cfg.batch
		if end > len(stream) {
			end = len(stream)
		}
		h.gate.RLock()
		t0 := time.Now()
		hw.UpdateBatch(stream[i:end])
		hw.Flush()
		h.ingestLat.observe(time.Since(t0))
		h.inserted[w].Store(int64(end))
		h.opsDone.Add(int64(end - i))
		h.gate.RUnlock()
		h.nudge()
	}
}

// turnWriter additionally deletes the stream prefix once its lead over
// the deletions exceeds four batches, so the live multiset at any
// barrier is exactly streams[w][deleted:inserted] — deterministic
// ground truth under the turnstile model.
func (h *harness) turnWriter(w int) {
	stream := h.streams[w]
	hw := h.turn.AcquireWriter()
	defer hw.Close()
	del := 0
	for i := 0; i < len(stream); i += h.cfg.batch {
		end := i + h.cfg.batch
		if end > len(stream) {
			end = len(stream)
		}
		h.gate.RLock()
		t0 := time.Now()
		hw.InsertBatch(stream[i:end])
		hw.Flush()
		h.ingestLat.observe(time.Since(t0))
		h.inserted[w].Store(int64(end))
		if end-del >= 4*h.cfg.batch {
			t0 = time.Now()
			hw.DeleteBatch(stream[del : del+h.cfg.batch])
			hw.Flush()
			h.ingestLat.observe(time.Since(t0))
			del += h.cfg.batch
			h.deleted[w].Store(int64(del))
		}
		h.opsDone.Add(int64(end - i))
		h.gate.RUnlock()
		h.nudge()
	}
}

// nudge wakes the coordinator without ever blocking the writer.
func (h *harness) nudge() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// reader hammers the query surface until stopped; answers are judged at
// the barriers, here we only demand the calls return and record how
// fast they do.
func (h *harness) reader(r int, stop <-chan struct{}) {
	c := h.c()
	i := r
	for {
		select {
		case <-stop:
			return
		default:
		}
		t0 := time.Now()
		if c.Count() > 0 {
			switch i % 4 {
			case 0:
				c.Quantile(probePhis[i%len(probePhis)])
			case 1:
				c.Rank(uint64(i * 2654435761))
			case 2:
				c.QuantileBatch(probePhis)
			default:
				c.RankBatch([]uint64{uint64(i), uint64(i * 31)})
			}
		}
		h.queryLat.observe(time.Since(t0))
		h.queries.Add(1)
		i++
	}
}

// groundTruth snapshots the live multiset from the quiesced per-writer
// high-water marks. Callers must hold gate.Lock.
func (h *harness) groundTruth() []uint64 {
	var total int64
	for w := range h.streams {
		total += h.inserted[w].Load() - h.deleted[w].Load()
	}
	live := make([]uint64, 0, total)
	for w := range h.streams {
		ins, del := h.inserted[w].Load(), h.deleted[w].Load()
		live = append(live, h.streams[w][del:ins]...)
	}
	return live
}

// verifyBarrier pauses ingestion and checks everything the library
// promises: structural invariants, count conservation, and — against an
// exact oracle over the ingested prefix — the composed rank-error bound
// 2·EpsBudget·n + Shards + Components for every probe quantile and
// rank. A -resume run has no oracle for the recovered prefix, so it
// checks self-consistency instead: conservation over baseCount and
// monotone quantiles.
func (h *harness) verifyBarrier(stage string) {
	h.gate.Lock()
	defer h.gate.Unlock()
	h.verifies++
	c := h.c()
	if err := c.Invariants(); err != nil {
		h.fail("%s: invariants: %v", stage, err)
	}
	live := h.groundTruth()
	n := h.baseCount + int64(len(live))
	if got := c.Count(); got != n {
		h.fail("%s: count %d, want %d (base %d + live %d)", stage, got, n, h.baseCount, len(live))
		return
	}
	if n == 0 {
		return
	}
	tol := int64(2*c.EpsBudget()*float64(n)) + int64(c.Shards()) + int64(c.Components())
	answers := c.QuantileBatch(probePhis)
	if h.resumed {
		for i := 1; i < len(answers); i++ {
			if answers[i] < answers[i-1] {
				h.fail("%s: quantiles not monotone: phi %.2f -> %d but phi %.2f -> %d",
					stage, probePhis[i-1], answers[i-1], probePhis[i], answers[i])
			}
		}
		h.logf("verify[%s]: n=%d self-consistent (resumed: no oracle)", stage, n)
		return
	}
	oracle := exact.New(live)
	var worst int64
	for i, phi := range probePhis {
		got := answers[i]
		if one := c.Quantile(phi); one != got {
			h.fail("%s: QuantileBatch(%.2f)=%d disagrees with Quantile=%d", stage, phi, got, one)
		}
		target := core.TargetRank(phi, n)
		lo, hi := oracle.RankInterval(got)
		var dist int64
		switch {
		case hi < target-tol:
			dist = (target - tol) - hi
		case lo > target+tol:
			dist = lo - (target + tol)
		}
		if dist > 0 {
			h.fail("%s: quantile phi=%.2f -> %d has rank [%d,%d], target %d exceeds tolerance %d by %d (n=%d eps=%.3f shards=%d comps=%d)",
				stage, phi, got, lo, hi, target, tol, dist, n, c.EpsBudget(), c.Shards(), c.Components())
		}
		if d := absDelta(target, lo, hi); d > worst {
			worst = d
		}
	}
	for _, phi := range []float64{0.02, 0.25, 0.5, 0.75, 0.98} {
		x := oracle.Quantile(phi)
		lo, hi := oracle.RankInterval(x)
		if got := c.Rank(x); got < lo-tol || got > hi+tol {
			h.fail("%s: rank(%d)=%d outside exact [%d,%d] ± %d", stage, x, got, lo, hi, tol)
		}
	}
	h.logf("verify[%s]: n=%d worst quantile rank error %d (tolerance %d)", stage, n, worst, tol)
}

// absDelta is the distance from target to the interval [lo, hi].
func absDelta(target, lo, hi int64) int64 {
	switch {
	case target < lo:
		return lo - target
	case target > hi:
		return target - hi
	}
	return 0
}

// event is one scheduled elastic operation, fired when opsDone crosses at.
type event struct {
	at   int64
	name string
	run  func()
}

// buildEvents spaces the reshard plan evenly across the run and slots
// the re-ε rebuild at the 60% mark.
func (h *harness) buildEvents() []event {
	cfg := h.cfg
	n := len(cfg.reshardPlan)
	if cfg.retargetEps > 0 {
		n++
	}
	var evs []event
	for i, p := range cfg.reshardPlan {
		p := p
		at := cfg.ops * int64(i+1) / int64(n+1)
		evs = append(evs, event{at: at, name: fmt.Sprintf("reshard(%d)", p), run: func() { h.doReshard(p) }})
	}
	if cfg.retargetEps > 0 {
		evs = append(evs, event{at: cfg.ops * 6 / 10, name: fmt.Sprintf("retarget(ε=%g)", cfg.retargetEps), run: h.doRetarget})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs
}

func (h *harness) doReshard(p int) {
	var err error
	if h.cash != nil {
		err = h.cash.Reshard(p)
	} else {
		err = h.turn.Reshard(p)
	}
	if err != nil {
		h.fail("reshard(%d): %v", p, err)
		return
	}
	h.reshards++
	c := h.c()
	h.sayf("resharded -> %d shards (generation %d, %d frozen components) at ops=%d",
		c.Shards(), c.Generation(), c.Components(), h.opsDone.Load())
}

// doRetarget rebuilds the cash container to the new ε budget through
// merge. The turnstile families cannot freeze components under
// deletions, so there a config-changing retarget must be REJECTED
// cleanly — the soak asserts exactly that.
func (h *harness) doRetarget() {
	cfg := h.cfg
	if h.cash != nil {
		fresh := cashFactory(cfg.algo, cfg.retargetEps, cfg.bits, cfg.seed)
		if err := h.cash.Retarget(fresh); err != nil {
			h.fail("retarget(ε=%g): %v", cfg.retargetEps, err)
			return
		}
		h.retargets++
		h.sayf("retargeted to ε=%g (budget now %.3f, %d components) at ops=%d",
			cfg.retargetEps, h.cash.EpsBudget(), h.cash.Components(), h.opsDone.Load())
		return
	}
	before := h.turn.Count()
	fresh := turnFactory(cfg.algo, cfg.retargetEps, cfg.bits, cfg.seed)
	if err := h.turn.Retarget(fresh); err == nil {
		h.fail("turnstile retarget to ε=%g was accepted; deletions make freezing unsound, it must be rejected", cfg.retargetEps)
		return
	}
	if after := h.turn.Count(); after < before {
		h.fail("rejected turnstile retarget lost data: count %d -> %d", before, after)
		return
	}
	h.retargets++
	h.sayf("turnstile retarget to ε=%g rejected cleanly (state intact) at ops=%d", cfg.retargetEps, h.opsDone.Load())
}

// coordinate fires milestones, checkpoints and mid-run barriers as
// ingestion progresses, then drains whatever is still due once the
// writers finish.
func (h *harness) coordinate(writersDone <-chan struct{}) {
	evs := h.buildEvents()
	next := 0
	nextCkpt := int64(0)
	if h.ck != nil {
		nextCkpt = h.cfg.ckptEvery
	}
	nextVerify := h.cfg.verifyEvery
	for {
		ops := h.opsDone.Load()
		for next < len(evs) && ops >= evs[next].at {
			evs[next].run()
			next++
		}
		if nextCkpt > 0 && ops >= nextCkpt {
			h.ck.save()
			nextCkpt += h.cfg.ckptEvery
		}
		if nextVerify > 0 && ops >= nextVerify && ops < h.cfg.ops {
			h.verifyBarrier(fmt.Sprintf("ops=%d", ops))
			nextVerify += h.cfg.verifyEvery
		}
		select {
		case <-writersDone:
			for ; next < len(evs); next++ {
				evs[next].run()
			}
			return
		case <-h.wake:
		}
	}
}

// ckptDriver owns the checkpoint directory for the run. With -faults it
// interposes a faultio.Injector between the checkpointer and the real
// filesystem and arms a deterministic schedule: every third save fights
// through transient write errors (retried inside the checkpoint layer's
// backoff), every fourth dies to an injected torn-write crash — after
// which the driver revives the filesystem and runs a recovery drill,
// asserting the newest surviving generation decodes to an exact
// previously-saved state, never a torn one.
type ckptDriver struct {
	h    *harness
	ck   *sq.Checkpointer
	base checkpoint.FS
	inj  *faultio.Injector

	saved   map[uint64]int64 // generation -> element count at save
	saves   int
	crashes int
	drills  int

	retr *retry.Retrier
}

func newCkptDriver(h *harness) (*ckptDriver, error) {
	d := &ckptDriver{
		h:     h,
		base:  checkpoint.OSFS{},
		saved: map[uint64]int64{},
		retr: retry.New(retry.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond},
			retry.WithSleep(func(time.Duration) {}), retry.WithSeed(h.cfg.seed)),
	}
	opts := []sq.CheckpointOption{
		checkpoint.WithJitterSeed(h.cfg.seed),
		checkpoint.WithSleep(func(time.Duration) {}),
	}
	if h.cfg.faults {
		d.inj = faultio.New(d.base)
		opts = append(opts, checkpoint.WithFS(d.inj))
	}
	ck, err := sq.OpenCheckpointDir(h.cfg.ckptDir, opts...)
	if err != nil {
		return nil, err
	}
	d.ck = ck
	return d, nil
}

// save publishes the container as the next generation, driving the
// armed fault schedule, and records the decoded element count of the
// exact bytes written so a later recovery can be checked for tearing.
func (d *ckptDriver) save() {
	h := d.h
	d.saves++
	if h.cfg.faults {
		switch {
		case d.saves%4 == 0:
			d.inj.CrashAfterBytes(64 + (d.saves*37)%512)
			h.logf("armed torn-write crash for save %d", d.saves)
		case d.saves%3 == 0:
			d.inj.FailOp(faultio.OpWrite, 1, 2)
			h.logf("armed transient write faults for save %d", d.saves)
		}
	}
	blob, err := h.c().MarshalBinary()
	if err != nil {
		h.fail("checkpoint marshal: %v", err)
		return
	}
	gen, err := d.ck.Save(h.cfg.algo, blob)
	if err != nil {
		if errors.Is(err, faultio.ErrCrashed) {
			d.crashes++
			h.sayf("save %d crashed mid-write (injected); reviving and drilling recovery", d.saves)
			d.inj.Revive()
			d.drill()
			return
		}
		h.fail("checkpoint save %d: %v", d.saves, err)
		return
	}
	count, err := decodedCount(h.cfg, blob)
	if err != nil {
		h.fail("checkpoint generation %d does not round-trip: %v", gen, err)
		return
	}
	d.saved[gen] = count
	h.logf("checkpointed generation %d (n=%d)", gen, count)
}

// drill recovers from the real filesystem after an injected crash and
// checks the result is a complete previously-published generation. The
// recovery itself runs under the extracted retry helper: a storage
// layer that just crashed may keep throwing transients for a while.
func (d *ckptDriver) drill() {
	h := d.h
	d.drills++
	cash, turn, err := buildContainers(h.cfg)
	if err != nil {
		h.fail("recovery drill: rebuild container: %v", err)
		return
	}
	var target container
	var dec encoding.BinaryUnmarshaler
	if cash != nil {
		target, dec = cash, cash
	} else {
		target, dec = turn, turn
	}
	var rep *sq.RecoveryReport
	err = d.retr.Do(func() error {
		var rerr error
		rep, rerr = sq.RecoverCheckpointFS(d.base, h.cfg.ckptDir, dec)
		return rerr
	}, checkpoint.IsTransient)
	if err != nil {
		if errors.Is(err, sq.ErrNoCheckpoint) && len(d.saved) == 0 {
			h.logf("recovery drill: nothing published yet, directory clean")
			return
		}
		h.fail("recovery drill: %v", err)
		return
	}
	want, ok := d.saved[rep.Generation]
	if !ok {
		h.fail("recovery drill loaded generation %d which was never fully published (torn?)", rep.Generation)
		return
	}
	if got := target.Count(); got != want {
		h.fail("recovery drill: generation %d decoded to %d elements, published with %d", rep.Generation, got, want)
		return
	}
	if err := target.Invariants(); err != nil {
		h.fail("recovery drill: recovered invariants: %v", err)
		return
	}
	h.sayf("recovery drill ok: generation %d, n=%d, %d shards", rep.Generation, target.Count(), target.Shards())
}

// decodedCount round-trips blob through a fresh container and returns
// its element count — the reference for crash-recovery drills.
func decodedCount(cfg *config, blob []byte) (int64, error) {
	cash, turn, err := buildContainers(cfg)
	if err != nil {
		return 0, err
	}
	if cash != nil {
		if err := cash.UnmarshalBinary(blob); err != nil {
			return 0, err
		}
		return cash.Count(), nil
	}
	if err := turn.UnmarshalBinary(blob); err != nil {
		return 0, err
	}
	return turn.Count(), nil
}

// recoverForResume loads the newest checkpoint into the run's container
// before any ingestion.
func (h *harness) recoverForResume() error {
	var rep *sq.RecoveryReport
	var err error
	if h.cash != nil {
		rep, err = sq.RecoverCheckpoint(h.cfg.ckptDir, h.cash)
	} else {
		rep, err = sq.RecoverCheckpoint(h.cfg.ckptDir, h.turn)
	}
	if err != nil {
		return err
	}
	h.resumed = true
	h.baseCount = h.c().Count()
	h.sayf("resumed from checkpoint generation %d (label %q): n=%d, %d shards, generation %d",
		rep.Generation, rep.Label, h.baseCount, h.c().Shards(), h.c().Generation())
	if len(rep.Skipped) > 0 {
		h.sayf("recovery skipped %d torn/corrupt generation(s): %s", len(rep.Skipped), rep.String())
	}
	return nil
}

// run executes one soak and returns the process exit code.
func run(cfg *config, stdout, stderr io.Writer) int {
	cash, turn, err := buildContainers(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "quantstress:", err)
		return 2
	}
	h := &harness{
		cfg:       cfg,
		out:       stdout,
		cash:      cash,
		turn:      turn,
		inserted:  make([]atomic.Int64, cfg.writers),
		deleted:   make([]atomic.Int64, cfg.writers),
		wake:      make(chan struct{}, 1),
		ingestLat: newLatSketch(cfg.seed ^ 0xa5),
		queryLat:  newLatSketch(cfg.seed ^ 0x5a),
		drainLat:  newLatSketch(cfg.seed ^ 0xd7),
		ckptLat:   newLatSketch(cfg.seed ^ 0xc4),
	}
	// Ingestion-stall telemetry: the containers bracket every per-shard
	// drain of an elastic operation through this hook (they never time
	// anything themselves); the report asserts the -slo-drain-max bound
	// over the recorded durations.
	obs := sq.DrainObserver(func(int) func() {
		t0 := time.Now()
		return func() { h.drainLat.observe(time.Since(t0)) }
	})
	// Checkpoint-stall telemetry: the fan-out marshal brackets each live
	// shard's encode (the only window a writer on that shard can stall
	// for) through the same observer shape.
	cobs := sq.CheckpointObserver(func(int) func() {
		t0 := time.Now()
		return func() { h.ckptLat.observe(time.Since(t0)) }
	})
	if cash != nil {
		cash.SetDrainObserver(obs)
		cash.SetCheckpointObserver(cobs)
	} else {
		turn.SetDrainObserver(obs)
		turn.SetCheckpointObserver(cobs)
	}
	per := int(cfg.ops) / cfg.writers
	rem := int(cfg.ops) % cfg.writers
	for w := 0; w < cfg.writers; w++ {
		g, err := generator(cfg, w)
		if err != nil {
			fmt.Fprintln(stderr, "quantstress:", err)
			return 2
		}
		n := per
		if w < rem {
			n++
		}
		h.streams = append(h.streams, streamgen.Generate(g, n))
	}
	h.sayf("algo=%s eps=%g dist=%s shards=%d writers=%d readers=%d ops=%d batch=%d seed=%d",
		cfg.algo, cfg.eps, cfg.dist, cfg.shards, cfg.writers, cfg.readers, cfg.ops, cfg.batch, cfg.seed)
	if cfg.resume {
		if err := h.recoverForResume(); err != nil {
			fmt.Fprintln(stderr, "quantstress: resume:", err)
			return 1
		}
	}
	if cfg.ckptDir != "" {
		d, err := newCkptDriver(h)
		if err != nil {
			fmt.Fprintln(stderr, "quantstress: checkpoint:", err)
			return 1
		}
		h.ck = d
	}

	stopReaders := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < cfg.readers; r++ {
		readerWG.Add(1)
		go func(r int) { defer readerWG.Done(); h.reader(r, stopReaders) }(r)
	}
	writersDone := make(chan struct{})
	var coordWG sync.WaitGroup
	coordWG.Add(1)
	go func() { defer coordWG.Done(); h.coordinate(writersDone) }()
	var writerWG sync.WaitGroup
	for w := 0; w < cfg.writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			if h.cash != nil {
				h.cashWriter(w)
			} else {
				h.turnWriter(w)
			}
		}(w)
	}
	writerWG.Wait()
	close(writersDone)
	coordWG.Wait()
	close(stopReaders)
	readerWG.Wait()

	h.verifyBarrier("final")
	if h.ck != nil {
		h.ck.save()
	}
	return h.report(stderr)
}

// report prints the run summary, applies the latency SLOs, and decides
// the exit code.
func (h *harness) report(stderr io.Writer) int {
	c := h.c()
	ckpts, crashes, drills := 0, 0, 0
	if h.ck != nil {
		ckpts, crashes, drills = h.ck.saves, h.ck.crashes, h.ck.drills
	}
	h.sayf("done: n=%d queries=%d shards=%d generation=%d components=%d eps-budget=%.3f",
		c.Count(), h.queries.Load(), c.Shards(), c.Generation(), c.Components(), c.EpsBudget())
	h.sayf("events: reshards=%d retargets=%d barriers=%d checkpoints=%d injected-crashes=%d recovery-drills=%d",
		h.reshards, h.retargets, h.verifies, ckpts, crashes, drills)
	in, ip50, ip99, imax := h.ingestLat.report()
	qn, qp50, qp99, qmax := h.queryLat.report()
	dn, dp50, dp99, dmax := h.drainLat.report()
	cn, cp50, cp99, cmax := h.ckptLat.report()
	h.sayf("ingest batches=%d p50=%v p99=%v max=%v", in, ip50, ip99, imax)
	h.sayf("queries n=%d p50=%v p99=%v max=%v", qn, qp50, qp99, qmax)
	h.sayf("shard drains n=%d p50=%v p99=%v max=%v (per-shard ingestion stall during reshard/retarget)", dn, dp50, dp99, dmax)
	h.sayf("shard marshals n=%d p50=%v p99=%v max=%v (per-shard ingestion stall during checkpoint save)", cn, cp50, cp99, cmax)
	if h.cfg.sloIngest > 0 && ip99 > h.cfg.sloIngest {
		h.fail("SLO: ingest p99 %v exceeds %v", ip99, h.cfg.sloIngest)
	}
	if h.cfg.sloQuery > 0 && qp99 > h.cfg.sloQuery {
		h.fail("SLO: query p99 %v exceeds %v", qp99, h.cfg.sloQuery)
	}
	if h.cfg.sloDrain > 0 && dmax > h.cfg.sloDrain {
		h.fail("SLO: max per-shard drain %v exceeds %v — ingestion stalled longer than the elastic protocol promises", dmax, h.cfg.sloDrain)
	}
	if h.cfg.sloCkpt > 0 && cmax > h.cfg.sloCkpt {
		h.fail("SLO: max per-shard checkpoint marshal %v exceeds %v — a save stalled a writer longer than stop-the-shard promises", cmax, h.cfg.sloCkpt)
	}
	h.mu.Lock()
	violations := h.violations
	h.mu.Unlock()
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "quantstress: VIOLATION:", v)
		}
		fmt.Fprintf(stderr, "quantstress: FAIL (%d violations)\n", len(violations))
		return 1
	}
	h.sayf("PASS")
	return 0
}
