package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMain doubles the test binary as the real soak driver: when
// re-exec'd with QUANTSTRESS_BE_CLI=1 it runs main() instead of the
// tests, which is what lets TestKillNineResume kill -9 an actual
// quantstress process mid-soak.
func TestMain(m *testing.M) {
	if os.Getenv("QUANTSTRESS_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestParseFlags(t *testing.T) {
	var errb bytes.Buffer
	cfg, err := parseFlags([]string{"-algo", "dcs", "-reshard", "7, 2,5", "-ops", "1000"}, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.algo != "dcs" || cfg.ops != 1000 {
		t.Fatalf("parsed %+v", cfg)
	}
	if len(cfg.reshardPlan) != 3 || cfg.reshardPlan[0] != 7 || cfg.reshardPlan[2] != 5 {
		t.Fatalf("reshard plan %v", cfg.reshardPlan)
	}

	for _, bad := range [][]string{
		{"-reshard", "x"},
		{"-ops", "0"},
		{"-writers", "0"},
		{"-resume"}, // requires -ckpt-dir
	} {
		if _, err := parseFlags(bad, &errb); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}

func TestBuildContainers(t *testing.T) {
	for _, algo := range []string{"kll", "gkarray", "gkadaptive", "mrl99", "random", "qdigest"} {
		cfg := &config{algo: algo, eps: 0.05, bits: 14, seed: 1, shards: 2}
		cash, turn, err := buildContainers(cfg)
		if err != nil || cash == nil || turn != nil {
			t.Errorf("%s: cash=%v turn=%v err=%v", algo, cash != nil, turn != nil, err)
		}
	}
	for _, algo := range []string{"dcs", "dcm"} {
		cfg := &config{algo: algo, eps: 0.05, bits: 14, seed: 1, shards: 2}
		cash, turn, err := buildContainers(cfg)
		if err != nil || turn == nil || cash != nil {
			t.Errorf("%s: cash=%v turn=%v err=%v", algo, cash != nil, turn != nil, err)
		}
	}
	if _, _, err := buildContainers(&config{algo: "bogus", eps: 0.05, bits: 14, shards: 2}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestGenerators(t *testing.T) {
	for _, dist := range []string{"uniform", "zipf", "sorted", "reversed", "ooo"} {
		cfg := &config{dist: dist, bits: 12, seed: 3, zipfS: 1.2, oooWindow: 16}
		if _, err := generator(cfg, 0); err != nil {
			t.Errorf("%s: %v", dist, err)
		}
	}
	if _, err := generator(&config{dist: "bogus", bits: 12}, 0); err == nil {
		t.Error("unknown distribution accepted")
	}
}

// soakCfg is a short deterministic in-process run; overrides mutate it.
func soakCfg(algo string) *config {
	return &config{
		algo: algo, eps: 0.02, bits: 12, seed: 1,
		shards: 3, writers: 2, readers: 1,
		ops: 12000, batch: 256,
		dist: "uniform", zipfS: 1.1, oooWindow: 32,
		ckptEvery: 4000, verifyEvery: 6000,
	}
}

func runSoak(t *testing.T, cfg *config) (string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(cfg, &out, &errb); code != 0 {
		t.Fatalf("soak exit %d\nstderr:\n%s", code, errb.String())
	}
	return out.String(), errb.String()
}

func TestShortSoakCashElastic(t *testing.T) {
	cfg := soakCfg("kll")
	cfg.reshardPlan = []int{5, 2}
	cfg.retargetEps = 0.04
	out, _ := runSoak(t, cfg)
	if !strings.Contains(out, "PASS") {
		t.Fatalf("no PASS in output:\n%s", out)
	}
	if !strings.Contains(out, "reshards=2 retargets=1") {
		t.Fatalf("elastic events missing:\n%s", out)
	}
}

func TestShortSoakMRLGrowReshard(t *testing.T) {
	// The historically worst shape: merge-based grow reshard on MRL99.
	cfg := soakCfg("mrl99")
	cfg.reshardPlan = []int{6}
	runSoak(t, cfg)
}

func TestShortSoakTurnstile(t *testing.T) {
	cfg := soakCfg("dcs")
	cfg.reshardPlan = []int{4}
	cfg.retargetEps = 0.04 // turnstile retarget must be rejected, not crash
	out, _ := runSoak(t, cfg)
	if !strings.Contains(out, "PASS") {
		t.Fatalf("no PASS in output:\n%s", out)
	}
}

func TestShortSoakFaults(t *testing.T) {
	cfg := soakCfg("gkarray")
	cfg.ckptDir = filepath.Join(t.TempDir(), "ck")
	cfg.faults = true
	out, _ := runSoak(t, cfg)
	if !strings.Contains(out, "checkpoints=") {
		t.Fatalf("no checkpoint events:\n%s", out)
	}
}

func hasCheckpoint(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			return true
		}
	}
	return false
}

// TestKillNineResume is the soak harness's durability acceptance test:
// a real quantstress process is SIGKILLed mid-soak after its first
// checkpoint publishes, and a -resume run recovers the durable state
// and finishes its own soak cleanly on top of it.
func TestKillNineResume(t *testing.T) {
	if testing.Short() {
		t.Skip("forks and kills real processes")
	}
	dir := filepath.Join(t.TempDir(), "ckpt")

	cmd := exec.Command(os.Args[0],
		"-algo", "kll", "-bits", "12", "-ops", "50000000", "-batch", "128",
		"-writers", "2", "-readers", "1",
		"-ckpt-dir", dir, "-ckpt-every", "3000")
	cmd.Env = append(os.Environ(), "QUANTSTRESS_BE_CLI=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !hasCheckpoint(dir) {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("no checkpoint appeared within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait() // reap; the kill makes this an error by design

	cmd2 := exec.Command(os.Args[0],
		"-resume", "-ckpt-dir", dir,
		"-algo", "kll", "-bits", "12", "-ops", "20000", "-batch", "256",
		"-writers", "2", "-readers", "1", "-ckpt-every", "8000")
	cmd2.Env = append(os.Environ(), "QUANTSTRESS_BE_CLI=1")
	var out, errb bytes.Buffer
	cmd2.Stdout = &out
	cmd2.Stderr = &errb
	if err := cmd2.Run(); err != nil {
		t.Fatalf("resume run failed: %v\nstderr:\n%s", err, errb.String())
	}
	if !strings.Contains(out.String(), "resumed from checkpoint") {
		t.Fatalf("resume marker missing:\nstdout:\n%s\nstderr:\n%s", out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("resumed soak did not pass:\n%s", out.String())
	}
}
