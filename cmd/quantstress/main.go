// Command quantstress is the elasticity soak harness: it drives mixed
// read/write traffic through a sharded summary while online reshards,
// re-ε rebuilds, checkpoint saves and injected storage faults land
// mid-stream, and continuously asserts the invariants the library
// promises under all of it:
//
//   - rank-error bounds against an exact oracle over the ingested
//     prefix: every quantile answer within
//     2·EpsBudget()·n + Shards() + Components() of its target rank;
//   - count conservation: no element lost or duplicated across any
//     topology swap, crash or recovery;
//   - deep structural invariants (Invariants()) clean at every pause;
//   - ingest/query latency SLOs, measured by dogfooding a KLL sketch
//     over the observed latencies.
//
// Traffic shapes cover the paper's stress axes: uniform, hot-key Zipf
// skew, sorted, reversed and bounded out-of-order arrival. Faults are
// deterministic (seeded schedules over the injected filesystem), so a
// failing run reproduces from its flags alone.
//
// Usage:
//
//	quantstress -algo kll -ops 200000 -reshard 7,2,5 -retarget-eps 0.02
//	quantstress -algo dcs -dist zipf -zipf-s 1.2 -ops 100000 -reshard 6
//	quantstress -algo gkarray -ckpt-dir /tmp/st -ckpt-every 20000 -faults
//	quantstress -resume -ckpt-dir /tmp/st -ops 50000   # after a kill -9
//
// A -resume run recovers the newest valid checkpoint and continues; the
// pre-crash ground truth is gone with the dead process, so verification
// degrades to invariants, self-consistency and conservation of the
// post-resume writes — exactly what a real operator can still check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	sq "streamquantiles"

	"streamquantiles/internal/streamgen"
)

// config is one soak run, fully determined by flags.
type config struct {
	algo string
	eps  float64
	bits int
	seed uint64

	shards  int
	writers int
	readers int
	ops     int64
	batch   int

	dist      string
	zipfS     float64
	oooWindow int

	reshardPlan []int
	retargetEps float64

	ckptDir   string
	ckptEvery int64
	faults    bool
	resume    bool

	verifyEvery int64
	sloIngest   time.Duration
	sloQuery    time.Duration
	sloDrain    time.Duration
	sloCkpt     time.Duration
	verbose     bool
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	os.Exit(run(cfg, os.Stdout, os.Stderr))
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("quantstress", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	var reshard string
	fs.StringVar(&cfg.algo, "algo", "kll", "kll, gkarray, gkadaptive, mrl99, random, qdigest (cash) or dcs, dcm (turnstile)")
	fs.Float64Var(&cfg.eps, "eps", 0.01, "error parameter ε")
	fs.IntVar(&cfg.bits, "bits", 16, "universe bits (stream values and fixed-universe algorithms)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "master seed: streams, fault schedule and sketches all derive from it")
	fs.IntVar(&cfg.shards, "shards", 4, "initial shard count P")
	fs.IntVar(&cfg.writers, "writers", 4, "concurrent writer goroutines")
	fs.IntVar(&cfg.readers, "readers", 2, "concurrent reader goroutines")
	fs.Int64Var(&cfg.ops, "ops", 200000, "total elements to ingest across all writers")
	fs.IntVar(&cfg.batch, "batch", 512, "elements per ingest batch")
	fs.StringVar(&cfg.dist, "dist", "uniform", "uniform, zipf, sorted, reversed, ooo")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.1, "Zipf skew exponent (dist=zipf)")
	fs.IntVar(&cfg.oooWindow, "ooo-window", 64, "out-of-order shuffle window (dist=ooo)")
	fs.StringVar(&reshard, "reshard", "", "comma-separated shard counts to swap to at evenly spaced milestones, e.g. 7,2,5")
	fs.Float64Var(&cfg.retargetEps, "retarget-eps", 0, "re-ε rebuild to this budget at the 60% milestone (0 = off)")
	fs.StringVar(&cfg.ckptDir, "ckpt-dir", "", "checkpoint directory (empty = no checkpoints)")
	fs.Int64Var(&cfg.ckptEvery, "ckpt-every", 50000, "ops between checkpoint saves")
	fs.BoolVar(&cfg.faults, "faults", false, "inject a deterministic schedule of transient EIO and torn-write crashes around checkpoint saves, with recovery drills")
	fs.BoolVar(&cfg.resume, "resume", false, "recover the newest checkpoint from -ckpt-dir before ingesting")
	fs.Int64Var(&cfg.verifyEvery, "verify-every", 0, "ops between mid-run verification barriers (0 = final only)")
	fs.DurationVar(&cfg.sloIngest, "slo-ingest-p99", 0, "fail if p99 batch-ingest latency exceeds this (0 = report only)")
	fs.DurationVar(&cfg.sloQuery, "slo-query-p99", 0, "fail if p99 query latency exceeds this (0 = report only)")
	fs.DurationVar(&cfg.sloDrain, "slo-drain-max", 0, "fail if any single shard drain during a reshard/retarget exceeds this (0 = report only)")
	fs.DurationVar(&cfg.sloCkpt, "slo-checkpoint-max", 0, "fail if any single shard marshal during a checkpoint save exceeds this (0 = report only)")
	fs.BoolVar(&cfg.verbose, "v", false, "log every elastic and checkpoint event")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if reshard != "" {
		for _, f := range strings.Split(reshard, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(stderr, "quantstress: bad -reshard entry %q\n", f)
				return nil, err
			}
			cfg.reshardPlan = append(cfg.reshardPlan, p)
		}
	}
	if cfg.writers < 1 || cfg.readers < 0 || cfg.ops < 1 || cfg.batch < 1 || cfg.shards < 1 {
		err := fmt.Errorf("quantstress: -writers, -ops, -batch and -shards must be positive")
		fmt.Fprintln(stderr, err)
		return nil, err
	}
	if cfg.resume && cfg.ckptDir == "" {
		err := fmt.Errorf("quantstress: -resume requires -ckpt-dir")
		fmt.Fprintln(stderr, err)
		return nil, err
	}
	return cfg, nil
}

// buildContainers constructs the sharded container for cfg; exactly one
// return is non-nil.
func buildContainers(cfg *config) (*sq.ShardedCashRegister, *sq.ShardedTurnstile, error) {
	cashFresh := cashFactory(cfg.algo, cfg.eps, cfg.bits, cfg.seed)
	if cashFresh != nil {
		c, err := sq.NewShardedCashRegister(cfg.shards, cashFresh)
		return c, nil, err
	}
	turnFresh := turnFactory(cfg.algo, cfg.eps, cfg.bits, cfg.seed)
	if turnFresh != nil {
		t, err := sq.NewShardedTurnstile(cfg.shards, turnFresh)
		return nil, t, err
	}
	return nil, nil, fmt.Errorf("unknown algorithm %q", cfg.algo)
}

// cashFactory returns a shard factory for the cash-register families,
// nil when algo names a turnstile (or unknown) family. Mergeable
// randomized families share one seed across shards so drains MERGE.
func cashFactory(algo string, eps float64, bits int, seed uint64) func() sq.CashRegister {
	switch strings.ToLower(algo) {
	case "kll":
		return func() sq.CashRegister { return sq.NewKLL(eps, seed) }
	case "gkarray":
		return func() sq.CashRegister { return sq.NewGKArray(eps) }
	case "gkadaptive":
		return func() sq.CashRegister { return sq.NewGKAdaptive(eps) }
	case "mrl99":
		return func() sq.CashRegister { return sq.NewMRL99(eps, seed) }
	case "random":
		return func() sq.CashRegister { return sq.NewRandom(eps, seed) }
	case "qdigest":
		return func() sq.CashRegister { return sq.NewQDigest(eps, bits) }
	}
	return nil
}

// turnFactory is the turnstile counterpart of cashFactory.
func turnFactory(algo string, eps float64, bits int, seed uint64) func() sq.Turnstile {
	switch strings.ToLower(algo) {
	case "dcs":
		return func() sq.Turnstile { return sq.NewDCS(eps, bits, sq.DyadicConfig{Seed: seed}) }
	case "dcm":
		return func() sq.Turnstile { return sq.NewDCM(eps, bits, sq.DyadicConfig{Seed: seed}) }
	}
	return nil
}

// generator builds the per-writer stream generator; each writer derives
// its own seed so the union stream is deterministic but not shared.
func generator(cfg *config, writer int) (streamgen.Generator, error) {
	seed := cfg.seed*1000003 + uint64(writer)
	base := streamgen.Uniform{Bits: cfg.bits, Seed: seed}
	switch cfg.dist {
	case "uniform":
		return base, nil
	case "zipf":
		return streamgen.Zipf{S: cfg.zipfS, Bits: cfg.bits, Seed: seed}, nil
	case "sorted":
		return streamgen.Sorted{Inner: base}, nil
	case "reversed":
		return streamgen.Reversed{Inner: base}, nil
	case "ooo":
		return streamgen.OutOfOrder{Inner: base, Window: cfg.oooWindow, Seed: seed ^ 0x00c0ffee}, nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", cfg.dist)
	}
}
