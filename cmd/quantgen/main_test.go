package main

import (
	"bufio"
	"strconv"
	"strings"
	"testing"

	"streamquantiles/internal/streamgen"
)

func TestWriteStreamFormat(t *testing.T) {
	var sb strings.Builder
	if err := writeStream(&sb, streamgen.Uniform{Bits: 16, Seed: 1}, 1000); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	for sc.Scan() {
		v, err := strconv.ParseUint(sc.Text(), 10, 64)
		if err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if v >= 1<<16 {
			t.Fatalf("value %d outside universe", v)
		}
		lines++
	}
	if lines != 1000 {
		t.Fatalf("%d lines, want 1000", lines)
	}
}

func TestWriteStreamDeterministic(t *testing.T) {
	var a, b strings.Builder
	g := streamgen.MPCATLike{Seed: 7}
	_ = writeStream(&a, g, 500)
	_ = writeStream(&b, g, 500)
	if a.String() != b.String() {
		t.Error("same seed produced different streams")
	}
}
