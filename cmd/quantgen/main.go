// Command quantgen writes a synthetic data stream to stdout (or a file),
// one decimal value per line — the workload generators of the study in a
// form consumable by quantcli or external tools.
//
// Usage:
//
//	quantgen -dist uniform -bits 32 -n 1000000 > stream.txt
//	quantgen -dist mpcat -n 87688123 -o mpcat-like.txt
//	quantgen -dist normal -sigma 0.15 -bits 24 -sorted
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"streamquantiles/internal/streamgen"
)

func main() {
	var (
		dist   = flag.String("dist", "uniform", "distribution: uniform, normal, zipf, mpcat, terrain")
		bits   = flag.Int("bits", 32, "universe bits (uniform, normal, zipf)")
		sigma  = flag.Float64("sigma", 0.15, "normal distribution std deviation")
		s      = flag.Float64("s", 1.5, "zipf exponent")
		n      = flag.Int("n", 1_000_000, "stream length")
		seed   = flag.Uint64("seed", 1, "generator seed")
		sorted = flag.Bool("sorted", false, "emit the stream in ascending order")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g streamgen.Generator
	switch *dist {
	case "uniform":
		g = streamgen.Uniform{Bits: *bits, Seed: *seed}
	case "normal":
		g = streamgen.Normal{Bits: *bits, Sigma: *sigma, Seed: *seed}
	case "zipf":
		g = streamgen.Zipf{Bits: *bits, S: *s, Seed: *seed}
	case "mpcat":
		g = streamgen.MPCATLike{Seed: *seed}
	case "terrain":
		g = streamgen.TerrainLike{Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "quantgen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	if *sorted {
		g = streamgen.Sorted{Inner: g}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quantgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := writeStream(w, g, *n); err != nil {
		fmt.Fprintf(os.Stderr, "quantgen: %v\n", err)
		os.Exit(1)
	}
}

// writeStream emits n generated values, one decimal per line.
func writeStream(w io.Writer, g streamgen.Generator, n int) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	data := streamgen.Generate(g, n)
	buf := make([]byte, 0, 24)
	for _, v := range data {
		buf = strconv.AppendUint(buf[:0], v, 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
