// The held-lock dataflow shared by SQ010 (guarded-by discipline) and
// SQ011 (unlock-path soundness). One forward pass per function over the
// CFG of cfg.go tracks, per path, which mutexes are held:
//
//	must     locks held on EVERY path reaching this point and not yet
//	         released — joined by intersection. SQ010 accepts an access
//	         when the guard is in must (or deferred: still held, release
//	         scheduled at exit).
//	may      locks possibly held and not yet released — joined by
//	         union. SQ011 reports any lock still in may at a function
//	         exit: some path out leaks it.
//	deferred locks whose release is scheduled via defer — joined by
//	         intersection. A deferred release moves the lock from
//	         must/may into deferred: held for SQ010's purposes until
//	         exit, excused from SQ011's leak check.
//
// Lock identity is the printed path of the expression the mutex is
// reached through ("c.mu", "sh.mu"): intra-function alias analysis by
// spelling, which matches how this codebase takes locks (a shard is
// always bound to a local `sh` before locking). Events:
//
//	x.Lock() / x.RLock()      acquire x (RWMutex read and write locks
//	                          share one key: either satisfies SQ010)
//	x.Unlock() / x.RUnlock()  release x
//	defer x.Unlock()          deferred release of x
//	defer c.rlock()()         `locks mu` helper: acquire c.mu now,
//	                          deferred release at exit
//	return c.mu.Unlock        the bound unlock method value transfers
//	                          release ownership to the caller: counts
//	                          as a release (safe.go's rlock pattern)
//
// Constructors (New*/new*) are exempt from SQ010: they build the
// struct before it escapes, so no lock can or need be held. Explicit
// panic(...) is an exit; deferred unlocks run on panic too, so a
// deferred lock is never reported leaked across one.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockState is the per-program-point dataflow fact. Positions remember
// the first acquire site for reporting.
type lockState struct {
	must     map[string]token.Pos
	may      map[string]token.Pos
	deferred map[string]token.Pos
}

func newLockState() *lockState {
	return &lockState{
		must:     map[string]token.Pos{},
		may:      map[string]token.Pos{},
		deferred: map[string]token.Pos{},
	}
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.must {
		c.must[k] = v
	}
	for k, v := range st.may {
		c.may[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

func (st *lockState) acquire(key string, pos token.Pos) {
	if _, ok := st.must[key]; !ok {
		st.must[key] = pos
	}
	if _, ok := st.may[key]; !ok {
		st.may[key] = pos
	}
}

func (st *lockState) release(key string) {
	delete(st.must, key)
	delete(st.may, key)
	delete(st.deferred, key)
}

func (st *lockState) deferRelease(key string, pos token.Pos) {
	delete(st.must, key)
	delete(st.may, key)
	if _, ok := st.deferred[key]; !ok {
		st.deferred[key] = pos
	}
}

func (st *lockState) held(key string) bool {
	_, m := st.must[key]
	_, d := st.deferred[key]
	return m || d
}

// joinFrom merges an incoming edge state into st (must/deferred by
// intersection, may by union) and reports whether st changed.
func (st *lockState) joinFrom(in *lockState) bool {
	changed := false
	for k := range st.must {
		if _, ok := in.must[k]; !ok {
			delete(st.must, k)
			changed = true
		}
	}
	for k := range st.deferred {
		if _, ok := in.deferred[k]; !ok {
			delete(st.deferred, k)
			changed = true
		}
	}
	for k, pos := range in.may {
		if _, ok := st.may[k]; !ok {
			st.may[k] = pos
			changed = true
		}
	}
	return changed
}

// lockFindings is the memoized result of the lock analysis of one
// package, split by reporting rule.
type lockFindings struct {
	sq010 []pendingFinding
	sq011 []pendingFinding
}

// lockAnalysis runs (once per package, memoized) the shared SQ010/SQ011
// pass. Packages with no lock calls and no annotations skip it — and
// skip type checking — entirely.
func (l *linter) lockAnalysis(p *pkgInfo) *lockFindings {
	if r, ok := l.locks[p]; ok {
		return r
	}
	r := &lockFindings{}
	l.locks[p] = r
	if !packageUsesLocks(p) {
		return r
	}
	ti := l.typed(p)
	if ti == nil {
		return r
	}
	gt := buildGuardTable(p, ti)
	r.sq010 = append(r.sq010, gt.bad...)
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fa := &funcLockAnalysis{ti: ti, gt: gt, fd: fd, out: r,
				isCtor: strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new")}
			fa.run()
		}
	}
	return r
}

// packageUsesLocks is the cheap syntactic gate: any Lock/RLock call
// token or any annotation means the typed pass is worth paying for.
func packageUsesLocks(p *pkgInfo) bool {
	found := false
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				switch n.Sel.Name {
				case "Lock", "RLock", "Unlock", "RUnlock":
					found = true
				}
			case *ast.Field:
				if guardedByField(n) != "" {
					found = true
				}
			case *ast.FuncDecl:
				if locksAnnotation(n.Doc) != "" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// funcLockAnalysis drives the fixpoint and the reporting pass over one
// function.
type funcLockAnalysis struct {
	ti     *typeInfo
	gt     *guardTable
	fd     *ast.FuncDecl
	out    *lockFindings
	isCtor bool

	reporting  bool
	seenAccess map[token.Pos]bool // SQ010 dedup per access site
	seenLeak   map[token.Pos]bool // SQ011 dedup per acquire site
}

func (fa *funcLockAnalysis) run() {
	cfg := buildCFG(fa.fd.Body)
	if cfg.broken {
		return // goto/unresolvable branch: skip rather than guess
	}
	in := map[*cfgBlock]*lockState{cfg.entry: newLockState()}
	work := []*cfgBlock{cfg.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b].clone()
		fa.transfer(b, st)
		for _, s := range b.succs {
			if cur, ok := in[s]; !ok {
				in[s] = st.clone()
				work = append(work, s)
			} else if cur.joinFrom(st) {
				work = append(work, s)
			}
		}
	}
	// Reporting pass: re-run each reachable block from its converged
	// in-state, in declaration order for deterministic output.
	fa.reporting = true
	fa.seenAccess = map[token.Pos]bool{}
	fa.seenLeak = map[token.Pos]bool{}
	for _, b := range cfg.blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		st = st.clone()
		fa.transfer(b, st)
		if b.terminal || len(b.succs) == 0 {
			fa.checkExit(b, st)
		}
	}
}

// transfer interprets one block's nodes against st, reporting SQ010
// violations when in reporting mode.
func (fa *funcLockAnalysis) transfer(b *cfgBlock, st *lockState) {
	for _, n := range b.nodes {
		fa.scanNode(n, st)
	}
}

// checkExit reports locks still possibly held when control leaves the
// function through this block.
func (fa *funcLockAnalysis) checkExit(b *cfgBlock, st *lockState) {
	for key, pos := range st.may {
		if fa.seenLeak[pos] {
			continue
		}
		fa.seenLeak[pos] = true
		fa.out.sq011 = append(fa.out.sq011, pendingFinding{pos, fmt.Sprintf(
			"%s acquired here is not released on every path out of %s: unlock before each return or defer the unlock", key, fa.fd.Name.Name)})
	}
}

func (fa *funcLockAnalysis) scanNode(n ast.Node, st *lockState) {
	switch n := n.(type) {
	case nil:
	case *ast.DeferStmt:
		fa.scanDefer(n, st)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			fa.scanExpr(r, st)
		}
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			fa.scanExpr(r, st)
		}
		for _, lhs := range n.Lhs {
			fa.scanExpr(lhs, st)
		}
	case *ast.ExprStmt:
		fa.scanExpr(n.X, st)
	case *ast.IncDecStmt:
		fa.scanExpr(n.X, st)
	case *ast.SendStmt:
		fa.scanExpr(n.Chan, st)
		fa.scanExpr(n.Value, st)
	case *ast.GoStmt:
		// The goroutine body runs under its own schedule; only the
		// call's operands evaluate here.
		for _, a := range n.Call.Args {
			fa.scanExpr(a, st)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fa.scanExpr(v, st)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		fa.scanNode(n.Stmt, st)
	case *ast.EmptyStmt:
	case ast.Expr:
		fa.scanExpr(n, st)
	case ast.Stmt:
		// A statement shape the builder emitted whole that carries no
		// lock semantics of its own; scan contained expressions
		// conservatively (skipping nested closures).
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if e, ok := m.(ast.Expr); ok {
				fa.scanExpr(e, st)
				return false
			}
			return true
		})
	}
}

// scanDefer interprets `defer` statements: deferred unlocks, the
// `defer c.rlock()()` acquire-and-release-at-exit idiom, and opaque
// deferred calls (arguments still evaluate now).
func (fa *funcLockAnalysis) scanDefer(d *ast.DeferStmt, st *lockState) {
	call := d.Call
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && len(call.Args) == 0 {
		if isUnlockName(sel.Sel.Name) && fa.isMutexExpr(sel.X) {
			st.deferRelease(lockKey(sel.X), d.Pos())
			return
		}
	}
	if inner, ok := call.Fun.(*ast.CallExpr); ok {
		if key, ok := fa.lockHelperKey(inner); ok {
			st.acquire(key, d.Pos())
			st.deferRelease(key, d.Pos())
			return
		}
	}
	for _, a := range call.Args {
		fa.scanExpr(a, st)
	}
}

// lockHelperKey recognizes a call to a `locks <mu>` annotated method
// and returns the mutex key it acquires ("c.mu" for c.rlock()).
func (fa *funcLockAnalysis) lockHelperKey(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := fa.ti.info.Uses[sel.Sel]
	if obj == nil {
		return "", false
	}
	guard, ok := fa.gt.lockFuncs[obj]
	if !ok {
		return "", false
	}
	return lockKey(sel.X) + "." + guard, true
}

func isUnlockName(name string) bool { return name == "Unlock" || name == "RUnlock" }
func isLockName(name string) bool   { return name == "Lock" || name == "RLock" }

// isMutexExpr reports whether e types as a sync mutex. Missing type
// information is treated permissively: a Lock/Unlock-shaped call on an
// unresolved receiver still counts, so partial type checking degrades
// toward more pairing coverage, not silence.
func (fa *funcLockAnalysis) isMutexExpr(e ast.Expr) bool {
	if t := fa.ti.typeOf(e); t != nil {
		return isMutexType(t)
	}
	return true
}

// lockKey renders the expression path a mutex is reached through.
func lockKey(e ast.Expr) string {
	return types.ExprString(e)
}

func (fa *funcLockAnalysis) scanExpr(e ast.Expr, st *lockState) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && len(e.Args) == 0 {
			if isLockName(sel.Sel.Name) && fa.isMutexExpr(sel.X) {
				fa.scanExpr(sel.X, st)
				st.acquire(lockKey(sel.X), e.Pos())
				return
			}
			if isUnlockName(sel.Sel.Name) && fa.isMutexExpr(sel.X) {
				fa.scanExpr(sel.X, st)
				st.release(lockKey(sel.X))
				return
			}
		}
		if key, ok := fa.lockHelperKey(e); ok {
			// A plain (non-deferred) call to a locks-annotated helper:
			// the lock is held from here; the helper hands its caller
			// the release, which this intra-procedural model cannot
			// track further — treat as scoped to the function.
			st.acquire(key, e.Pos())
			st.deferRelease(key, e.Pos())
			return
		}
		fa.scanExpr(e.Fun, st)
		for _, a := range e.Args {
			fa.scanExpr(a, st)
		}
	case *ast.SelectorExpr:
		if isUnlockName(e.Sel.Name) && fa.isMutexExpr(e.X) {
			// A bound unlock method value (`return c.mu.Unlock`):
			// release ownership transfers to whoever calls it.
			fa.scanExpr(e.X, st)
			st.release(lockKey(e.X))
			return
		}
		fa.checkAccess(e, st)
		fa.scanExpr(e.X, st)
	case *ast.FuncLit:
		// Closures run under some other lock regime; see cfg.go.
	case *ast.ParenExpr:
		fa.scanExpr(e.X, st)
	case *ast.StarExpr:
		fa.scanExpr(e.X, st)
	case *ast.UnaryExpr:
		fa.scanExpr(e.X, st)
	case *ast.BinaryExpr:
		fa.scanExpr(e.X, st)
		fa.scanExpr(e.Y, st)
	case *ast.IndexExpr:
		fa.scanExpr(e.X, st)
		fa.scanExpr(e.Index, st)
	case *ast.IndexListExpr:
		fa.scanExpr(e.X, st)
	case *ast.SliceExpr:
		fa.scanExpr(e.X, st)
		fa.scanExpr(e.Low, st)
		fa.scanExpr(e.High, st)
		fa.scanExpr(e.Max, st)
	case *ast.TypeAssertExpr:
		fa.scanExpr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fa.scanExpr(kv.Value, st)
				continue
			}
			fa.scanExpr(el, st)
		}
	case *ast.KeyValueExpr:
		fa.scanExpr(e.Value, st)
	}
}

// checkAccess reports a read/write of a guarded field without its
// mutex held (SQ010), outside constructors.
func (fa *funcLockAnalysis) checkAccess(sel *ast.SelectorExpr, st *lockState) {
	if !fa.reporting || fa.isCtor || len(fa.gt.fields) == 0 {
		return
	}
	obj := fa.ti.info.Uses[sel.Sel]
	if obj == nil {
		return
	}
	guard, ok := fa.gt.fields[obj]
	if !ok {
		return
	}
	key := lockKey(sel.X) + "." + guard
	if st.held(key) {
		return
	}
	if fa.seenAccess[sel.Pos()] {
		return
	}
	fa.seenAccess[sel.Pos()] = true
	fa.out.sq010 = append(fa.out.sq010, pendingFinding{sel.Pos(), fmt.Sprintf(
		"access of %s (guarded by %s) in %s without holding %s: take the lock before touching the field (a deferred unlock keeps it held through every exit)",
		types.ExprString(sel), key, fa.fd.Name.Name, key)})
}
