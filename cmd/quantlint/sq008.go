// SQ008 — allocation discipline in query sweeps.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// queryMethodNames are the read-side entry points of the summary
// contracts: the core.Summary query methods and the core.QuantileBatcher
// batch variants. These run per monitoring tick against large summaries,
// and the single-pass batch paths exist precisely so their cost is one
// sweep per *batch* — allocation per fraction would silently give that
// back.
var queryMethodNames = map[string]bool{
	"Quantile": true, "Quantiles": true, "QuantileBatch": true,
	"Rank": true, "RankBatch": true,
}

// checkSQ008 audits query hot paths for per-fraction allocation. Three
// shapes are flagged inside query methods of internal/* packages:
//
//   - any fmt.* call: formatting allocates and boxes per argument;
//   - make() inside a loop: in a batch method the loop is almost always
//     per fraction (or per probe), so a make there undoes the one-
//     allocation-per-batch contract;
//   - boxing conversions any(x) / (interface{})(x) inside a loop: one
//     heap escape per fraction under escape analysis' worst case.
//
// Unlike SQ007 there is no append-preallocation audit: query paths
// build result slices sized by len(phis) up front, and a make outside
// any loop is exactly that one-per-batch allocation. Only receiver
// methods are audited (free helpers like core.QuantileBatch dispatch,
// they do not sweep), and the harness is exempt as tooling.
func (l *linter) checkSQ008() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || under(p.rel, "internal/harness") {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !queryMethodNames[fd.Name.Name] {
					continue
				}
				l.auditQueryMethod(fd)
			}
		}
	}
}

// auditQueryMethod reports the SQ008 findings of one query method body.
func (l *linter) auditQueryMethod(fd *ast.FuncDecl) {
	name := fd.Name.Name
	inLoop := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			inLoop[n.Body] = true
		case *ast.RangeStmt:
			inLoop[n.Body] = true
		}
		return true
	})
	seen := map[token.Pos]bool{} // dedup: nested loop bodies overlap
	for body := range inLoop {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || seen[call.Pos()] {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make":
					seen[call.Pos()] = true
					l.report(call.Pos(), "SQ008", fmt.Sprintf(
						"make inside a loop in query path %s: allocate once per batch before the sweep, not once per fraction", name))
				case "any":
					if len(call.Args) == 1 {
						seen[call.Pos()] = true
						l.report(call.Pos(), "SQ008", fmt.Sprintf(
							"interface boxing inside a loop in query path %s: any(x) heap-allocates per fraction", name))
					}
				}
			case *ast.ParenExpr:
				if it, ok := fun.X.(*ast.InterfaceType); ok && len(it.Methods.List) == 0 && len(call.Args) == 1 {
					seen[call.Pos()] = true
					l.report(call.Pos(), "SQ008", fmt.Sprintf(
						"interface boxing inside a loop in query path %s: (interface{})(x) heap-allocates per fraction", name))
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" {
				l.report(call.Pos(), "SQ008", fmt.Sprintf(
					"fmt.%s in query path %s: formatting allocates per call — query answers are numbers, not strings", sel.Sel.Name, name))
			}
		}
		return true
	})
}
