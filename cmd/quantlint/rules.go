// The eight quantlint rules. Each is a pure-syntax check; see lint.go
// for why the linter deliberately avoids go/types.
//
//	SQ001  determinism: algorithm packages must not reach for ambient
//	       randomness or wall-clock time
//	SQ002  no ==/!= between float64 expressions
//	SQ003  panic stays out of hot paths: constructors and check*
//	       helpers only (plus the documented panic(ErrEmpty) contract)
//	SQ004  layering: internal/* never imports the harness, cmd/*, or
//	       the root package
//	SQ005  every summary type registered in quantiles.go implements
//	       Invariants() error
//	SQ006  decode paths in internal/* must not panic and must not let
//	       the encoded input size an allocation without a guard
//	SQ007  ingestion hot paths (Update/Insert/Add and their batch
//	       variants) must not allocate per item: no fmt, no make in a
//	       loop, no interface boxing, and appends only onto slices the
//	       package demonstrably preallocates with a capacity
//	SQ008  query hot paths (Quantile/Rank, Quantiles, and the batch
//	       variants) must not allocate per fraction: no fmt, and no
//	       make or interface boxing inside a loop — one allocation per
//	       batch is the contract, one per φ is the regression the
//	       batch paths exist to remove
//	SQ009  memory layout: the columnar summary packages (gk, kll, mrl,
//	       qdigest) must not declare slices of all-numeric tuple
//	       structs (array-of-structs creep), and every sync.Pool Get
//	       must have a Put on the same pool in the same function
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// isInternalPkg reports whether p is an algorithm-side package, i.e.
// lives under internal/ of its module.
func isInternalPkg(p *pkgInfo) bool {
	return p.rel == "internal" || strings.HasPrefix(p.rel, "internal/")
}

// under reports whether rel is the package prefix or below it.
func under(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}

// ---------------------------------------------------------------- SQ001

// sq001Exempt lists the internal packages allowed to touch randomness
// or time: xhash IS the repo's seeded randomness source, and harness is
// the measurement layer whose whole job is timing.
var sq001Exempt = []string{"internal/xhash", "internal/harness"}

var sq001BadImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func (l *linter) checkSQ001() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || exempt(p.rel, sq001Exempt) {
			continue
		}
		for _, f := range p.files {
			timeName := ""
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if sq001BadImports[path] {
					l.report(imp.Pos(), "SQ001", fmt.Sprintf(
						"import of %s in algorithm package %s: all randomness must flow through internal/xhash seeds (reproducibility)", path, p.rel))
				}
				if path == "time" {
					timeName = "time"
					if imp.Name != nil {
						timeName = imp.Name.Name
					}
				}
			}
			if timeName == "" || timeName == "_" || timeName == "." {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Now" {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName {
						l.report(call.Pos(), "SQ001", fmt.Sprintf(
							"time.Now() in algorithm package %s: timing belongs in internal/harness", p.rel))
					}
				}
				return true
			})
		}
	}
}

func exempt(rel string, list []string) bool {
	for _, e := range list {
		if under(rel, e) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------- SQ002

// mathFloatFuncs are math package calls whose results are float64; a
// comparison against one of these is a float comparison.
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Ceil": true, "Floor": true, "Round": true, "Trunc": true,
	"Sqrt": true, "Pow": true, "Exp": true, "Log": true, "Log2": true,
	"Log10": true, "Inf": true, "NaN": true, "Max": true, "Min": true,
	"Mod": true, "Hypot": true,
}

// checkSQ002 flags ==/!= where either side is recognizably float64.
// Without go/types, "recognizably" means: a float literal, a float64
// conversion, a math.* call, or a name that is declared float64
// somewhere in the same package (fields, params, results, vars, or :=
// from a float expression). The name heuristic can in principle
// misfire on a name used for both an int and a float in one package;
// the repo's naming (eps, phi, eta, err for floats) keeps that from
// happening in practice, and //lint:ignore covers deliberate exact
// comparisons.
func (l *linter) checkSQ002() {
	for _, p := range l.pkgs {
		set := floatNames(p)
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if exprIsFloat(be.X, set) || exprIsFloat(be.Y, set) {
					l.report(be.OpPos, "SQ002", fmt.Sprintf(
						"%s between float64 expressions: compare with a tolerance or math.Float64bits", be.Op))
				}
				return true
			})
		}
	}
}

// floatNames collects the names declared float64/float32 anywhere in
// the package.
func floatNames(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field: // struct fields, params, results
				if isFloatType(n.Type) {
					for _, name := range n.Names {
						set[name.Name] = true
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil && isFloatType(n.Type) {
					for _, name := range n.Names {
						set[name.Name] = true
					}
				} else if n.Type == nil {
					for i, v := range n.Values {
						if i < len(n.Names) && exprIsFloat(v, set) {
							set[n.Names[i].Name] = true
						}
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if exprIsFloat(rhs, set) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							set[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return set
}

func isFloatType(t ast.Expr) bool {
	id, ok := t.(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

// exprIsFloat reports whether e is recognizably a float64 expression
// given the package's float-typed names.
func exprIsFloat(e ast.Expr, set map[string]bool) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.FLOAT
	case *ast.Ident:
		return set[e.Name]
	case *ast.SelectorExpr:
		return set[e.Sel.Name]
	case *ast.ParenExpr:
		return exprIsFloat(e.X, set)
	case *ast.UnaryExpr:
		return e.Op == token.SUB && exprIsFloat(e.X, set)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return exprIsFloat(e.X, set) || exprIsFloat(e.Y, set)
		}
		return false
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name == "float64" || id.Name == "float32"
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				return id.Name == "math" && mathFloatFuncs[sel.Sel.Name]
			}
		}
	}
	return false
}

// ---------------------------------------------------------------- SQ003

// checkSQ003 keeps panic out of algorithm hot paths. A panic is allowed
// only inside New*/new*/check*/Check* functions (constructors and
// validation helpers, where the API contract documents it) or when its
// argument is the exported ErrEmpty sentinel — the documented
// empty-query contract shared by every summary. The harness is exempt:
// it is tooling, not algorithm code.
func (l *linter) checkSQ003() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || under(p.rel, "internal/harness") {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := fd.Name.Name
				if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
					strings.HasPrefix(name, "Check") || strings.HasPrefix(name, "check") {
					continue
				}
				if isDecoderFunc(name) {
					continue // decode paths are SQ006's jurisdiction
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" {
						return true
					}
					if len(call.Args) == 1 && isErrEmpty(call.Args[0]) {
						return true
					}
					l.report(call.Pos(), "SQ003", fmt.Sprintf(
						"panic in %s: hot paths must not panic — move validation into a New*/check* helper or panic(ErrEmpty)", name))
					return true
				})
			}
		}
	}
}

func isErrEmpty(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "ErrEmpty"
	case *ast.SelectorExpr:
		return e.Sel.Name == "ErrEmpty"
	}
	return false
}

// ---------------------------------------------------------------- SQ004

// checkSQ004 enforces the dependency direction: algorithm packages
// (internal/*) sit below the harness, the commands, and the public
// root package, and must never import upward.
func (l *linter) checkSQ004() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) {
			continue
		}
		mod := p.mod.path
		for _, f := range p.files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				switch {
				case path == mod:
					l.report(imp.Pos(), "SQ004", fmt.Sprintf(
						"algorithm package %s imports the root package: dependencies must point from the API surface down, never up", p.rel))
				case (path == mod+"/internal/harness" || strings.HasPrefix(path, mod+"/internal/harness/")) &&
					!under(p.rel, "internal/harness"):
					l.report(imp.Pos(), "SQ004", fmt.Sprintf(
						"algorithm package %s imports the harness: measurement tooling sits above the algorithms", p.rel))
				case path == mod+"/cmd" || strings.HasPrefix(path, mod+"/cmd/"):
					l.report(imp.Pos(), "SQ004", fmt.Sprintf(
						"algorithm package %s imports %s: cmd/ binaries are leaves of the dependency graph", p.rel, path))
				}
			}
		}
	}
}

// ---------------------------------------------------------------- SQ005

// checkSQ005 pins the sanitizer contract: every summary type aliased in
// the module root's quantiles.go into an internal package must carry an
// Invariants() error method. "Summary type" means the alias target has
// both Count and Quantile methods — interfaces, config structs and
// helper types are skipped.
func (l *linter) checkSQ005() {
	for _, p := range l.pkgs {
		if p.rel != "" {
			continue // aliases are registered only in the module root
		}
		for _, f := range p.files {
			name := l.fset.Position(f.Pos()).Filename
			if !strings.HasSuffix(name, "quantiles.go") {
				continue
			}
			l.checkRegistry(p, f)
		}
	}
}

func (l *linter) checkRegistry(root *pkgInfo, f *ast.File) {
	imports := map[string]string{} // local name -> import path
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		imports[local] = path
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Assign.IsValid() {
				continue // only aliases register implementations
			}
			sel, ok := ts.Type.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				continue
			}
			ipath, ok := imports[pkgID.Name]
			if !ok || !strings.HasPrefix(ipath, root.mod.path+"/internal/") {
				continue
			}
			target, err := l.loadByImport(root.mod, ipath)
			if err != nil || target == nil {
				continue
			}
			methods := methodSet(target, sel.Sel.Name)
			if !methods["Count"] || !methods["Quantile"] {
				continue // not a summary type
			}
			if !hasInvariantsMethod(target, sel.Sel.Name) {
				l.report(ts.Pos(), "SQ005", fmt.Sprintf(
					"summary type %s (= %s.%s) must implement Invariants() error: every registered summary carries the deep sanitizer contract", ts.Name.Name, pkgID.Name, sel.Sel.Name))
			}
		}
	}
}

// methodSet collects the names of methods declared on typeName (value
// or pointer receiver) across the package.
func methodSet(p *pkgInfo, typeName string) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if receiverTypeName(fd.Recv.List[0].Type) == typeName {
				set[fd.Name.Name] = true
			}
		}
	}
	return set
}

func receiverTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver List[K]
		return receiverTypeName(t.X)
	case *ast.IndexListExpr: // generic receiver List[K, V]
		return receiverTypeName(t.X)
	}
	return ""
}

// ---------------------------------------------------------------- SQ006

// decoderPrefixes name the decode-path functions: the BinaryUnmarshaler
// entry points, their helpers, and frame/header parsers. These are the
// only functions that ever see bytes from disk, so they carry a
// stricter contract than SQ003: no panic at all (not even ErrEmpty —
// corrupt input must surface as an error), and no allocation whose size
// the input controls without a plausibility guard.
var decoderPrefixes = []string{"Unmarshal", "unmarshal", "Decode", "decode", "Parse", "parse"}

func isDecoderFunc(name string) bool {
	for _, p := range decoderPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkSQ006 audits every decode path in internal/* packages. Two
// shapes are flagged:
//
//   - any panic call: a decoder runs on bytes read back from disk, and
//     a checkpoint that crashes the process on load is worse than no
//     checkpoint at all;
//   - a make() whose length or capacity is an identifier the function
//     never compares against anything: that identifier came from the
//     encoding, so a few hostile bytes would size an arbitrary
//     allocation. Constants, len()/cap() results (bounded by the input
//     already in memory) and guarded identifiers are fine.
//
// The guard check is syntactic — the identifier must appear in some
// comparison in the same function — so it proves attention, not
// correctness; the FuzzDecode harnesses test the actual behaviour.
func (l *linter) checkSQ006() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) {
			continue
		}
		consts := constNames(p)
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isDecoderFunc(fd.Name.Name) {
					continue
				}
				guarded := comparedNames(fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok {
						return true
					}
					switch id.Name {
					case "panic":
						l.report(call.Pos(), "SQ006", fmt.Sprintf(
							"panic in decode path %s: corrupt input must surface as an error wrapping core.ErrCorrupt, never a crash", fd.Name.Name))
					case "make":
						for _, arg := range call.Args[1:] {
							if name, ok := unboundedSize(arg, guarded, consts); !ok {
								l.report(arg.Pos(), "SQ006", fmt.Sprintf(
									"make sized by %s in decode path %s without a bounding comparison: the encoding must not control allocations unchecked", name, fd.Name.Name))
							}
						}
					}
					return true
				})
			}
		}
	}
}

// constNames collects the package's declared constant names; a make
// sized by one of these is compile-time bounded.
func constNames(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						set[name.Name] = true
					}
				}
			}
		}
	}
	return set
}

// comparedNames collects every identifier that appears inside an
// ordered comparison (<, <=, >, >=) anywhere in the body — the
// syntactic evidence that a size was range-checked before use.
func comparedNames(body *ast.BlockStmt) map[string]bool {
	set := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						set[id.Name] = true
					}
					return true
				})
			}
		}
		return true
	})
	return set
}

// unboundedSize reports whether a make() size expression escapes the
// bounding discipline, returning the offending name. Bounded shapes:
// integer literals, declared constants, len()/cap() of something
// already in memory, guarded identifiers (by leaf name for selectors),
// and arithmetic over bounded parts.
func unboundedSize(e ast.Expr, guarded, consts map[string]bool) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		return "", true
	case *ast.Ident:
		if guarded[e.Name] || consts[e.Name] {
			return "", true
		}
		return e.Name, false
	case *ast.SelectorExpr:
		if guarded[e.Sel.Name] || consts[e.Sel.Name] {
			return "", true
		}
		return e.Sel.Name, false
	case *ast.ParenExpr:
		return unboundedSize(e.X, guarded, consts)
	case *ast.BinaryExpr:
		if name, ok := unboundedSize(e.X, guarded, consts); !ok {
			return name, false
		}
		return unboundedSize(e.Y, guarded, consts)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap":
				return "", true
			case "int", "int64", "uint64", "uint", "int32", "uint32":
				if len(e.Args) == 1 {
					return unboundedSize(e.Args[0], guarded, consts)
				}
			}
		}
		return "a function result", false
	}
	return "an unrecognized expression", false
}

// ---------------------------------------------------------------- SQ007

// hotMethodNames are the per-element ingestion entry points of the
// summary contracts (core.CashRegister / core.Turnstile / the sketch
// Add interface and their batch variants). Methods with these names on
// any internal/* type are the per-item cost centers the throughput
// benchmarks measure, so they carry an allocation discipline.
var hotMethodNames = map[string]bool{
	"Update": true, "UpdateBatch": true,
	"Insert": true, "InsertBatch": true,
	"Delete": true, "DeleteBatch": true,
	"Add": true, "AddBatch": true,
}

// checkSQ007 audits ingestion hot paths for per-item allocation. Four
// shapes are flagged inside hot methods of internal/* packages:
//
//   - any fmt.* call: formatting allocates and drags an interface
//     conversion per argument;
//   - make() inside a loop: a fresh allocation per element (or per
//     chunk iteration) where a reused buffer belongs;
//   - boxing conversions any(x) / (interface{})(x): each one heap-
//     allocates under escape analysis' worst case;
//   - append onto a slice whose leaf name never appears in this
//     package with a make(..., len, cap) preallocation: growth then
//     reallocates on the hot path at unpredictable points.
//
// Like SQ006's guard check, the preallocation evidence is syntactic —
// some statement in the package must tie the appended-to name to a
// three-argument make — so it proves attention, not a bound; the
// ReportAllocs benchmarks measure the actual behaviour. The harness is
// exempt as tooling, and only receiver methods are audited: free
// functions named Add etc. are not part of the summary contracts.
func (l *linter) checkSQ007() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || under(p.rel, "internal/harness") {
			continue
		}
		prealloc := preallocatedNames(p)
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !hotMethodNames[fd.Name.Name] {
					continue
				}
				l.auditHotMethod(fd, prealloc)
			}
		}
	}
}

// auditHotMethod reports the SQ007 findings of one hot method body.
func (l *linter) auditHotMethod(fd *ast.FuncDecl, prealloc map[string]bool) {
	name := fd.Name.Name
	inLoop := map[ast.Node]bool{} // loop bodies, for the make() check
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			inLoop[n.Body] = true
		case *ast.RangeStmt:
			inLoop[n.Body] = true
		}
		return true
	})
	seenMake := map[token.Pos]bool{} // dedup: nested loop bodies overlap
	for body := range inLoop {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && !seenMake[call.Pos()] {
				seenMake[call.Pos()] = true
				l.report(call.Pos(), "SQ007", fmt.Sprintf(
					"make inside a loop in hot path %s: allocate once outside the loop and reuse the buffer", name))
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "fmt" {
				l.report(call.Pos(), "SQ007", fmt.Sprintf(
					"fmt.%s in hot path %s: formatting allocates per call — precompute messages in a constructor or drop them", fun.Sel.Name, name))
			}
		case *ast.Ident:
			switch fun.Name {
			case "any":
				if len(call.Args) == 1 {
					l.report(call.Pos(), "SQ007", fmt.Sprintf(
						"interface boxing in hot path %s: any(x) heap-allocates per element", name))
				}
			case "append":
				if len(call.Args) == 0 {
					return true
				}
				leaf := leafName(call.Args[0])
				if leaf != "" && !prealloc[leaf] {
					l.report(call.Pos(), "SQ007", fmt.Sprintf(
						"append to %s in hot path %s with no make(..., len, cap) preallocation anywhere in the package: growth reallocates mid-stream", leaf, name))
				}
			}
		case *ast.ParenExpr:
			if it, ok := fun.X.(*ast.InterfaceType); ok && len(it.Methods.List) == 0 && len(call.Args) == 1 {
				l.report(call.Pos(), "SQ007", fmt.Sprintf(
					"interface boxing in hot path %s: (interface{})(x) heap-allocates per element", name))
			}
		}
		return true
	})
}

// preallocatedNames collects every name the package ties to a
// three-argument make — via assignment, var initialization, or a
// composite-literal field — plus assignments whose right side merely
// contains such a make (append(s, make(len, cap)) and friends count:
// they show the name's elements are capacity-managed).
func preallocatedNames(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	record := func(target ast.Expr, value ast.Expr) {
		if containsCapMake(value) {
			if leaf := leafName(target); leaf != "" {
				set[leaf] = true
			}
		}
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i < len(n.Names) {
						record(n.Names[i], v)
					}
				}
			case *ast.KeyValueExpr:
				record(n.Key, n.Value)
			}
			return true
		})
	}
	return set
}

// containsCapMake reports whether e contains a make call with an
// explicit capacity argument.
func containsCapMake(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 3 {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// leafName resolves the identifier at the tail of a (possibly indexed,
// sliced, or dereferenced) selector chain: x, s.buf, pt.byShard[i] and
// (*buf) all resolve to their final field or variable name.
func leafName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return leafName(e.X)
	case *ast.SliceExpr:
		return leafName(e.X)
	case *ast.StarExpr:
		return leafName(e.X)
	case *ast.ParenExpr:
		return leafName(e.X)
	}
	return ""
}

// ---------------------------------------------------------------- SQ008

// queryMethodNames are the read-side entry points of the summary
// contracts: the core.Summary query methods and the core.QuantileBatcher
// batch variants. These run per monitoring tick against large summaries,
// and the single-pass batch paths exist precisely so their cost is one
// sweep per *batch* — allocation per fraction would silently give that
// back.
var queryMethodNames = map[string]bool{
	"Quantile": true, "Quantiles": true, "QuantileBatch": true,
	"Rank": true, "RankBatch": true,
}

// checkSQ008 audits query hot paths for per-fraction allocation. Three
// shapes are flagged inside query methods of internal/* packages:
//
//   - any fmt.* call: formatting allocates and boxes per argument;
//   - make() inside a loop: in a batch method the loop is almost always
//     per fraction (or per probe), so a make there undoes the one-
//     allocation-per-batch contract;
//   - boxing conversions any(x) / (interface{})(x) inside a loop: one
//     heap escape per fraction under escape analysis' worst case.
//
// Unlike SQ007 there is no append-preallocation audit: query paths
// build result slices sized by len(phis) up front, and a make outside
// any loop is exactly that one-per-batch allocation. Only receiver
// methods are audited (free helpers like core.QuantileBatch dispatch,
// they do not sweep), and the harness is exempt as tooling.
func (l *linter) checkSQ008() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || under(p.rel, "internal/harness") {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !queryMethodNames[fd.Name.Name] {
					continue
				}
				l.auditQueryMethod(fd)
			}
		}
	}
}

// auditQueryMethod reports the SQ008 findings of one query method body.
func (l *linter) auditQueryMethod(fd *ast.FuncDecl) {
	name := fd.Name.Name
	inLoop := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			inLoop[n.Body] = true
		case *ast.RangeStmt:
			inLoop[n.Body] = true
		}
		return true
	})
	seen := map[token.Pos]bool{} // dedup: nested loop bodies overlap
	for body := range inLoop {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || seen[call.Pos()] {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make":
					seen[call.Pos()] = true
					l.report(call.Pos(), "SQ008", fmt.Sprintf(
						"make inside a loop in query path %s: allocate once per batch before the sweep, not once per fraction", name))
				case "any":
					if len(call.Args) == 1 {
						seen[call.Pos()] = true
						l.report(call.Pos(), "SQ008", fmt.Sprintf(
							"interface boxing inside a loop in query path %s: any(x) heap-allocates per fraction", name))
					}
				}
			case *ast.ParenExpr:
				if it, ok := fun.X.(*ast.InterfaceType); ok && len(it.Methods.List) == 0 && len(call.Args) == 1 {
					seen[call.Pos()] = true
					l.report(call.Pos(), "SQ008", fmt.Sprintf(
						"interface boxing inside a loop in query path %s: (interface{})(x) heap-allocates per fraction", name))
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" {
				l.report(call.Pos(), "SQ008", fmt.Sprintf(
					"fmt.%s in query path %s: formatting allocates per call — query answers are numbers, not strings", sel.Sel.Name, name))
			}
		}
		return true
	})
}

// ---------------------------------------------------------------- SQ009

// sq009ColumnarPkgs are the summary packages whose tuple state moved to
// struct-of-arrays columns (DESIGN.md "Memory layout"): gaps/dels in
// gk.tcols, the flat level arenas of kll and mrl, the prefix-weight
// columns of qdigest. A `[]T` over an all-numeric struct reintroduces
// the interleaved layout the refactor removed, so it is flagged here
// before it can grow back.
var sq009ColumnarPkgs = []string{
	"internal/gk", "internal/kll", "internal/mrl", "internal/qdigest",
}

// sq009NumericTypes are the field types that make a struct a plain
// numeric tuple. Pointers, slices, strings or named types disqualify:
// such structs are nodes or handles, not rows of a table.
var sq009NumericTypes = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"float32": true, "float64": true, "byte": true, "rune": true, "uintptr": true,
}

// checkSQ009 enforces the memory-layout discipline in two shapes:
//
//   - in the columnar packages, any slice type `[]T` where T is a
//     package-declared struct of three or more all-numeric fields: a
//     table of ≥3 parallel numeric columns belongs in column slices
//     (8-byte strides on the one or two columns a sweep touches), not
//     in an interleaved array of structs. Two-field structs stay legal
//     — a value-weight pair (core.WeightedValue) is an exchange format,
//     not a table — as do structs holding pointers or slices;
//   - anywhere: a pool.Get() call whose pool's Put never appears in the
//     same function. Pools whose Get and Put sit in different functions
//     couple allocation lifetimes across call sites, which is how
//     double-Put and use-after-Put bugs enter; a deferred Put counts.
//     "Pool" means the receiver's leaf name contains "pool" — the
//     repo's naming convention for every sync.Pool.
func (l *linter) checkSQ009() {
	for _, p := range l.pkgs {
		if exempt(p.rel, sq009ColumnarPkgs) {
			tuples := numericTupleStructs(p)
			for _, f := range p.files {
				ast.Inspect(f, func(n ast.Node) bool {
					at, ok := n.(*ast.ArrayType)
					if !ok || at.Len != nil {
						return true
					}
					if id, ok := at.Elt.(*ast.Ident); ok && tuples[id.Name] {
						l.report(at.Pos(), "SQ009", fmt.Sprintf(
							"[]%s interleaves %s's all-numeric tuple fields: columnar packages store parallel column slices (see gk.tcols), not arrays of structs", id.Name, id.Name))
					}
					return true
				})
			}
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				l.auditPoolPairing(fd)
			}
		}
	}
}

// numericTupleStructs collects the package's struct types with three or
// more fields, all of builtin numeric type.
func numericTupleStructs(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				fields, numeric := 0, true
				for _, fl := range st.Fields.List {
					id, ok := fl.Type.(*ast.Ident)
					if !ok || !sq009NumericTypes[id.Name] {
						numeric = false
						break
					}
					if n := len(fl.Names); n > 0 {
						fields += n
					} else {
						fields++
					}
				}
				if numeric && fields >= 3 {
					set[ts.Name.Name] = true
				}
			}
		}
	}
	return set
}

// auditPoolPairing reports every pool.Get() in fd whose pool never sees
// a Put in the same body.
func (l *linter) auditPoolPairing(fd *ast.FuncDecl) {
	type get struct {
		pos  token.Pos
		leaf string
	}
	var gets []get
	puts := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		leaf := leafName(sel.X)
		if leaf == "" || !strings.Contains(strings.ToLower(leaf), "pool") {
			return true
		}
		switch sel.Sel.Name {
		case "Get":
			if len(call.Args) == 0 {
				gets = append(gets, get{call.Pos(), leaf})
			}
		case "Put":
			puts[leaf] = true
		}
		return true
	})
	for _, g := range gets {
		if !puts[g.leaf] {
			l.report(g.pos, "SQ009", fmt.Sprintf(
				"%s.Get() in %s has no %s.Put in the same function: pool lifetimes must pair up locally (a deferred Put counts) or double-Put and use-after-Put bugs creep in", g.leaf, fd.Name.Name, g.leaf))
		}
	}
}

// hasInvariantsMethod checks for the exact sanitizer signature
// `func (T) Invariants() error`.
func hasInvariantsMethod(p *pkgInfo, typeName string) bool {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 ||
				fd.Name.Name != "Invariants" ||
				receiverTypeName(fd.Recv.List[0].Type) != typeName {
				continue
			}
			if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
				continue
			}
			res := fd.Type.Results
			if res == nil || len(res.List) != 1 {
				continue
			}
			if id, ok := res.List[0].Type.(*ast.Ident); ok && id.Name == "error" {
				return true
			}
		}
	}
	return false
}
