// The rule registry and the syntactic helpers shared across rules.
// Each rule lives in its own sqNNN.go analyzer unit; they share the
// engine (lint.go), the lazy typed pass (typecheck.go), the
// intra-function CFG (cfg.go), the guarded-by annotation tables
// (guards.go) and the held-lock dataflow (locks.go).
package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// ruleInfo is one registered analyzer: its id, a one-line contract for
// `-rules`, and the pass over the loaded packages.
type ruleInfo struct {
	id  string
	doc string
	run func(*linter)
}

// ruleTable is the ordered rule catalog. SQ000 (malformed //lint:ignore
// directive) is a pseudo-rule emitted by the engine itself while
// indexing directives, so it does not appear here.
var ruleTable = []ruleInfo{
	{"SQ001", "algorithm packages must not import math/rand or crypto/rand or call time.Now(): randomness flows through internal/xhash seeds, timing through the harness", (*linter).checkSQ001},
	{"SQ002", "no ==/!= between float64 expressions: compare with a tolerance or math.Float64bits", (*linter).checkSQ002},
	{"SQ003", "panic stays out of hot paths: New*/check* helpers only, plus the documented panic(ErrEmpty) contract", (*linter).checkSQ003},
	{"SQ004", "layering: internal/* never imports the harness, cmd/*, or the root package", (*linter).checkSQ004},
	{"SQ005", "every summary type registered in quantiles.go implements Invariants() error", (*linter).checkSQ005},
	{"SQ006", "decode paths in internal/* never panic and never let the encoded input size an allocation without a bounding comparison", (*linter).checkSQ006},
	{"SQ007", "ingestion hot paths (Update/Insert/Add and batch variants) must not allocate per item: no fmt, no make in a loop, no boxing, appends only onto preallocated slices", (*linter).checkSQ007},
	{"SQ008", "query hot paths (Quantile/Rank and batch variants) must not allocate per fraction: no fmt, no make or boxing inside a loop", (*linter).checkSQ008},
	{"SQ009", "memory layout: no []T over all-numeric tuple structs in the columnar packages, and every pool.Get pairs with a Put in the same function", (*linter).checkSQ009},
	{"SQ010", "guarded-by discipline: a read or write of a field annotated `// guarded by mu` must hold that mutex (Lock/RLock dominates the access); constructors are exempt", (*linter).checkSQ010},
	{"SQ011", "unlock-path soundness: every Lock/RLock is released on all CFG paths out of the function, via defer or a post-dominating Unlock", (*linter).checkSQ011},
	{"SQ012", "eps-budget propagation: a Merge implementation must derive the result eps via max/documented additive helpers, never copy one operand's eps or a fresh literal", (*linter).checkSQ012},
	{"SQ013", "codec parity: every registered summary with MarshalBinary has UnmarshalBinary, a golden fixture under testdata/golden/, and a fuzz/crash-matrix seed", (*linter).checkSQ013},
	{"SQ014", "memory placement: structs holding mutexes or atomics stored by value in a slice in internal/sharded must carry a cache-line pad, and no package-level atomics on the write path", (*linter).checkSQ014},
	{"SQ015", "fan-out discipline: goroutine spawns in internal/sharded and internal/checkpoint bound loop fan-out by runtime.GOMAXPROCS, join every spawn on all paths out (a deferred Wait counts), and never discard a worker's error", (*linter).checkSQ015},
}

// ruleIDs reports whether id names a registered rule (or the engine's
// SQ000 directive pseudo-rule).
func knownRule(id string) bool {
	if id == "SQ000" {
		return true
	}
	for _, r := range ruleTable {
		if r.id == id {
			return true
		}
	}
	return false
}

// isInternalPkg reports whether p is an algorithm-side package, i.e.
// lives under internal/ of its module.
func isInternalPkg(p *pkgInfo) bool {
	return p.rel == "internal" || strings.HasPrefix(p.rel, "internal/")
}

// under reports whether rel is the package prefix or below it.
func under(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}

func exempt(rel string, list []string) bool {
	for _, e := range list {
		if under(rel, e) {
			return true
		}
	}
	return false
}

// methodSet collects the names of methods declared on typeName (value
// or pointer receiver) across the package.
func methodSet(p *pkgInfo, typeName string) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if receiverTypeName(fd.Recv.List[0].Type) == typeName {
				set[fd.Name.Name] = true
			}
		}
	}
	return set
}

func receiverTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver List[K]
		return receiverTypeName(t.X)
	case *ast.IndexListExpr: // generic receiver List[K, V]
		return receiverTypeName(t.X)
	}
	return ""
}

// leafName resolves the identifier at the tail of a (possibly indexed,
// sliced, or dereferenced) selector chain: x, s.buf, pt.byShard[i] and
// (*buf) all resolve to their final field or variable name.
func leafName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return leafName(e.X)
	case *ast.SliceExpr:
		return leafName(e.X)
	case *ast.StarExpr:
		return leafName(e.X)
	case *ast.ParenExpr:
		return leafName(e.X)
	}
	return ""
}

// hasInvariantsMethod checks for the exact sanitizer signature
// `func (T) Invariants() error`.
func hasInvariantsMethod(p *pkgInfo, typeName string) bool {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 ||
				fd.Name.Name != "Invariants" ||
				receiverTypeName(fd.Recv.List[0].Type) != typeName {
				continue
			}
			if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
				continue
			}
			res := fd.Type.Results
			if res == nil || len(res.List) != 1 {
				continue
			}
			if id, ok := res.List[0].Type.(*ast.Ident); ok && id.Name == "error" {
				return true
			}
		}
	}
	return false
}

// aliasReg is one `type Name = pkg.Type` registration in a module
// root's quantiles.go whose target was resolvable inside the module.
type aliasReg struct {
	name     string   // alias name in the root package
	localPkg string   // local import name of the target package
	typeName string   // type name inside the target package
	target   *pkgInfo // the target package, loaded on demand
	spec     *ast.TypeSpec
}

// registryAliases resolves the alias registrations of one root-package
// file into their internal target packages (SQ005 and SQ013 both read
// the registry this way).
func (l *linter) registryAliases(root *pkgInfo, f *ast.File) []aliasReg {
	imports := map[string]string{} // local name -> import path
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		imports[local] = path
	}
	var regs []aliasReg
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Assign.IsValid() {
				continue // only aliases register implementations
			}
			sel, ok := ts.Type.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				continue
			}
			ipath, ok := imports[pkgID.Name]
			if !ok || !strings.HasPrefix(ipath, root.mod.path+"/internal/") {
				continue
			}
			target, err := l.loadByImport(root.mod, ipath)
			if err != nil || target == nil {
				continue
			}
			regs = append(regs, aliasReg{
				name: ts.Name.Name, localPkg: pkgID.Name,
				typeName: sel.Sel.Name, target: target, spec: ts,
			})
		}
	}
	return regs
}
