// SQ005 — registry completeness: every summary registered in the root
// quantiles.go must implement Invariants() error.
package main

import (
	"fmt"
	"strings"
)

// checkSQ005 pins the sanitizer contract: every summary type aliased in
// the module root's quantiles.go into an internal package must carry an
// Invariants() error method. "Summary type" means the alias target has
// both Count and Quantile methods — interfaces, config structs and
// helper types are skipped.
func (l *linter) checkSQ005() {
	for _, p := range l.pkgs {
		if p.rel != "" {
			continue // aliases are registered only in the module root
		}
		for _, f := range p.files {
			name := l.fset.Position(f.Pos()).Filename
			if !strings.HasSuffix(name, "quantiles.go") {
				continue
			}
			for _, a := range l.registryAliases(p, f) {
				methods := methodSet(a.target, a.typeName)
				if !methods["Count"] || !methods["Quantile"] {
					continue // not a summary type
				}
				if !hasInvariantsMethod(a.target, a.typeName) {
					l.report(a.spec.Pos(), "SQ005", fmt.Sprintf(
						"summary type %s (= %s.%s) must implement Invariants() error: every registered summary carries the deep sanitizer contract", a.name, a.localPkg, a.typeName))
				}
			}
		}
	}
}
