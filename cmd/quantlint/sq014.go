// SQ014 — write-path memory placement in the sharded containers.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// sq014Pkgs are the packages whose hot write-path state is placed for
// multi-core scaling (DESIGN.md "Write-path concurrency and memory
// placement"): per-shard locks and epochs live in cache-line padded
// structs so P writers on P cores never false-share, and shared atomic
// cursors are isolated between blank pads inside a container, never
// package-level.
var sq014Pkgs = []string{"internal/sharded"}

// checkSQ014 enforces the placement discipline in two shapes:
//
//   - a package-declared struct carrying hot shared mutable fields (a
//     sync.Mutex/RWMutex or any sync/atomic type) that is stored by
//     value in a slice (`[]T` anywhere in the package) must carry a
//     blank fixed-size-array pad field (`_ [N]byte`): without one,
//     adjacent elements share cache lines and every uncontended
//     lock/atomic op still ping-pongs the neighbours' lines (see
//     cashShard and TestShardStructsPadded). Slices of pointers are
//     exempt — the elements are separate allocations;
//   - no package-level atomic variables: a file-scope atomic is shared
//     hot state every writer in the process hits with no way to pad or
//     shard it. Counters belong inside a container (isolated between
//     blank pads, like the round-robin cursor) or in per-writer
//     handles.
func (l *linter) checkSQ014() {
	for _, p := range l.pkgs {
		if !exempt(p.rel, sq014Pkgs) {
			continue
		}
		hot, padded := sq014Structs(p)
		reported := map[string]bool{}
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				at, ok := n.(*ast.ArrayType)
				if !ok {
					return true
				}
				id, ok := at.Elt.(*ast.Ident)
				if !ok || !hot[id.Name] || padded[id.Name] || reported[id.Name] {
					return true
				}
				reported[id.Name] = true
				l.report(at.Pos(), "SQ014", fmt.Sprintf(
					"%s holds hot shared mutable fields (mutex/atomic) and is stored by value in a slice without cache-line padding: adjacent elements false-share; add a blank `_ [N]byte` pad rounding the struct to a line multiple (see cashShard)", id.Name))
				return true
			})
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || vs.Type == nil || !sq014AtomicType(vs.Type) {
						continue
					}
					for _, name := range vs.Names {
						l.report(name.Pos(), "SQ014", fmt.Sprintf(
							"package-level atomic %s is shared hot state on the write path with no way to pad or shard it: move it into a container field isolated between blank pads (see the round-robin cursor) or into per-writer handles", name.Name))
					}
				}
			}
		}
	}
}

// sq014Structs classifies the package's struct types: hot (carrying a
// mutex or atomic field) and padded (carrying a blank fixed-size-array
// field).
func sq014Structs(p *pkgInfo) (hot, padded map[string]bool) {
	hot, padded = map[string]bool{}, map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, fl := range st.Fields.List {
					if sq014HotType(fl.Type) {
						hot[ts.Name.Name] = true
					}
					if at, ok := fl.Type.(*ast.ArrayType); ok && at.Len != nil &&
						len(fl.Names) == 1 && fl.Names[0].Name == "_" {
						padded[ts.Name.Name] = true
					}
				}
			}
		}
	}
	return hot, padded
}

// sq014HotType reports whether a field type is contended shared state:
// sync.Mutex/RWMutex or anything from sync/atomic (atomic.Pointer[T]
// arrives as an index expression over the selector).
func sq014HotType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.SelectorExpr:
		id, ok := t.X.(*ast.Ident)
		if !ok {
			return false
		}
		if id.Name == "sync" && (t.Sel.Name == "Mutex" || t.Sel.Name == "RWMutex") {
			return true
		}
		return id.Name == "atomic"
	case *ast.IndexExpr:
		return sq014HotType(t.X)
	}
	return false
}

// sq014AtomicType reports whether a declared variable type is a
// sync/atomic type.
func sq014AtomicType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.SelectorExpr:
		id, ok := t.X.(*ast.Ident)
		return ok && id.Name == "atomic"
	case *ast.IndexExpr:
		return sq014AtomicType(t.X)
	}
	return false
}
