// SQ002 — no ==/!= between float64 expressions.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// mathFloatFuncs are math package calls whose results are float64; a
// comparison against one of these is a float comparison.
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Ceil": true, "Floor": true, "Round": true, "Trunc": true,
	"Sqrt": true, "Pow": true, "Exp": true, "Log": true, "Log2": true,
	"Log10": true, "Inf": true, "NaN": true, "Max": true, "Min": true,
	"Mod": true, "Hypot": true,
}

// checkSQ002 flags ==/!= where either side is recognizably float64.
// Here "recognizably" means: a float literal, a float64 conversion, a
// math.* call, or a name that is declared float64 somewhere in the same
// package (fields, params, results, vars, or := from a float
// expression). The name heuristic can in principle misfire on a name
// used for both an int and a float in one package; the repo's naming
// (eps, phi, eta, err for floats) keeps that from happening in
// practice, and //lint:ignore covers deliberate exact comparisons.
// (This rule predates the typed pass and its per-package name set is
// cheap and battle-tested, so it stays syntactic.)
func (l *linter) checkSQ002() {
	for _, p := range l.pkgs {
		set := floatNames(p)
		for _, f := range p.files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if exprIsFloat(be.X, set) || exprIsFloat(be.Y, set) {
					l.report(be.OpPos, "SQ002", fmt.Sprintf(
						"%s between float64 expressions: compare with a tolerance or math.Float64bits", be.Op))
				}
				return true
			})
		}
	}
}

// floatNames collects the names declared float64/float32 anywhere in
// the package.
func floatNames(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field: // struct fields, params, results
				if isFloatType(n.Type) {
					for _, name := range n.Names {
						set[name.Name] = true
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil && isFloatType(n.Type) {
					for _, name := range n.Names {
						set[name.Name] = true
					}
				} else if n.Type == nil {
					for i, v := range n.Values {
						if i < len(n.Names) && exprIsFloat(v, set) {
							set[n.Names[i].Name] = true
						}
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if exprIsFloat(rhs, set) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							set[id.Name] = true
						}
					}
				}
			}
			return true
		})
	}
	return set
}

func isFloatType(t ast.Expr) bool {
	id, ok := t.(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

// exprIsFloat reports whether e is recognizably a float64 expression
// given the package's float-typed names.
func exprIsFloat(e ast.Expr, set map[string]bool) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.FLOAT
	case *ast.Ident:
		return set[e.Name]
	case *ast.SelectorExpr:
		return set[e.Sel.Name]
	case *ast.ParenExpr:
		return exprIsFloat(e.X, set)
	case *ast.UnaryExpr:
		return e.Op == token.SUB && exprIsFloat(e.X, set)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return exprIsFloat(e.X, set) || exprIsFloat(e.Y, set)
		}
		return false
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name == "float64" || id.Name == "float32"
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				return id.Name == "math" && mathFloatFuncs[sel.Sel.Name]
			}
		}
	}
	return false
}
