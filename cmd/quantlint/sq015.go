// SQ015 — fan-out discipline in the parallel checkpoint paths.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// sq015Pkgs are the packages that spawn goroutines on the save/recover
// path (DESIGN.md "Checkpoint parallelism"): the sharded codec's worker
// pool and the recovery prefetch pipeline. A fan-out there runs while a
// caller holds topology locks and while shard locks are taken and
// released per worker, so the discipline is strict — see fanout
// (internal/sharded/parallel.go) for the reference shape.
var sq015Pkgs = []string{"internal/sharded", "internal/checkpoint"}

// checkSQ015 audits every goroutine spawn in the scoped packages for
// three shapes:
//
//   - a `go` inside a for/range loop in a function that never consults
//     runtime.GOMAXPROCS: the spawn count then tracks the input (shard
//     count, candidate count) instead of the machine, and a 64-shard
//     save on a 1-core box would thrash 64 goroutines through one core;
//   - a spawn with no join on some path out of the function: every
//     `go` needs a WaitGroup Wait that post-dominates it, or a deferred
//     Wait — an unjoined worker can outlive the topology lock its
//     caller holds and touch freed shard state (a deferred Wait
//     anywhere in the function counts, matching RecoverObserved);
//   - `_ = f(...)` inside the spawned closure: a worker's error must
//     land in a per-index slot (or a channel) and the first failure
//     propagate after the join, never be dropped on the floor.
//
// Like SQ006, the checks are syntactic evidence of attention — the
// crash matrix and the race-mode property tests prove the behaviour.
func (l *linter) checkSQ015() {
	for _, p := range l.pkgs {
		if !exempt(p.rel, sq015Pkgs) {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				l.sq015Body(fd.Name.Name, fd.Body, false)
			}
		}
	}
}

// sq015Body audits one function-like body: the spawn sites at this
// nesting level, then each closure body as its own level (a closure
// runs under its own control flow, so its spawns are judged against its
// own joins). spawned marks a body that is itself the function of a
// `go` statement — the level where a discarded error check applies.
func (l *linter) sq015Body(fnName string, body *ast.BlockStmt, spawned bool) {
	var gos []*ast.GoStmt
	var loops []posRange
	var lits []*ast.FuncLit
	spawnedLits := map[*ast.FuncLit]bool{}
	deferredWait := false
	gomax := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, s)
			return false
		case *ast.GoStmt:
			gos = append(gos, s)
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				spawnedLits[fl] = true
			}
		case *ast.ForStmt:
			loops = append(loops, posRange{s.Body.Pos(), s.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posRange{s.Body.Pos(), s.Body.End()})
		case *ast.DeferStmt:
			if sq015IsWait(s.Call) {
				deferredWait = true
			}
		case *ast.SelectorExpr:
			if id, ok := s.X.(*ast.Ident); ok && id.Name == "runtime" && s.Sel.Name == "GOMAXPROCS" {
				gomax = true
			}
		case *ast.AssignStmt:
			if spawned && sq015BlankCall(s) {
				l.report(s.Pos(), "SQ015", fmt.Sprintf(
					"goroutine body in %s discards an error with `_ =`: record it in a per-worker slot and propagate the first failure after the join (see fanout)", fnName))
			}
		}
		return true
	})
	var cfg *funcCFG
	for _, g := range gos {
		if sq015InLoop(loops, g.Pos()) && !gomax {
			l.report(g.Pos(), "SQ015", fmt.Sprintf(
				"goroutine spawned in a loop in %s with no runtime.GOMAXPROCS bound in the function: fan-out width must track the machine's cores, not the input's size (see fanout)", fnName))
		}
		if deferredWait {
			continue // a deferred Wait joins every exit, success or panic
		}
		if cfg == nil {
			cfg = buildCFG(body)
		}
		if cfg.broken {
			continue
		}
		if !sq015Joined(cfg, g) {
			l.report(g.Pos(), "SQ015", fmt.Sprintf(
				"goroutine spawned in %s is not joined on every path out of the function: make a WaitGroup Wait post-dominate the spawn, or defer it — an unjoined worker outlives the locks its caller holds", fnName))
		}
	}
	for _, fl := range lits {
		l.sq015Body(fnName, fl.Body, spawnedLits[fl])
	}
}

// posRange is a lexical extent; contains is inclusive of the braces.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return r.lo <= p && p <= r.hi }

func sq015InLoop(loops []posRange, p token.Pos) bool {
	for _, r := range loops {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// sq015IsWait recognizes a WaitGroup-style join: any `x.Wait()` call.
func sq015IsWait(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Wait"
}

// sq015BlankCall reports an assignment that throws a call's results
// away entirely: every left-hand side blank, right-hand side a call.
func sq015BlankCall(s *ast.AssignStmt) bool {
	if s.Tok != token.ASSIGN || len(s.Rhs) != 1 {
		return false
	}
	if _, ok := s.Rhs[0].(*ast.CallExpr); !ok {
		return false
	}
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// sq015Joined walks the CFG from just past the spawn: every path to a
// function exit must pass a `.Wait()` call first. Back-edges count as
// joined — a loop's exit path is audited on its own.
func sq015Joined(cfg *funcCFG, g *ast.GoStmt) bool {
	for _, b := range cfg.blocks {
		for i, n := range b.nodes {
			if n == ast.Node(g) {
				j := &sq015join{memo: map[*cfgBlock]bool{}}
				return j.from(b, i+1)
			}
		}
	}
	// The spawn was swallowed by an opaque construct (a select arm,
	// say): fall back to requiring any Wait in the body at all.
	for _, b := range cfg.blocks {
		for _, n := range b.nodes {
			if sq015NodeWaits(n) {
				return true
			}
		}
	}
	return false
}

type sq015join struct {
	memo map[*cfgBlock]bool
}

func (j *sq015join) from(b *cfgBlock, start int) bool {
	for i := start; i < len(b.nodes); i++ {
		if sq015NodeWaits(b.nodes[i]) {
			return true
		}
	}
	if b.terminal || len(b.succs) == 0 {
		return false // a function exit reached without a join
	}
	for _, s := range b.succs {
		if !j.block(s) {
			return false
		}
	}
	return true
}

func (j *sq015join) block(b *cfgBlock) bool {
	if v, ok := j.memo[b]; ok {
		return v
	}
	j.memo[b] = true // optimistic on back-edges; the exit path decides
	v := j.from(b, 0)
	j.memo[b] = v
	return v
}

// sq015NodeWaits reports whether a CFG node contains a `.Wait()` call
// outside any nested closure.
func sq015NodeWaits(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sq015IsWait(m) {
				found = true
			}
		}
		return !found
	})
	return found
}
