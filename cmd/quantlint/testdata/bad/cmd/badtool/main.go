// Command badtool exists so the fixture has a cmd/ layer: binaries may
// import the harness freely, so this file must produce no findings.
package main

import (
	"fmt"

	"badmod/internal/harness"
)

func main() { fmt.Println(harness.Version) }
