// Package sq007 trips SQ007 four times — once per flagged shape — in
// its hot-path methods, and exercises the allowlist: appends onto the
// slices New preallocates with explicit capacities stay silent, as
// does the constructor itself.
package sq007

import "fmt"

// S is a toy summary with allocation sins on its ingestion paths.
type S struct {
	buf  []uint64
	log  []string
	rows [][]uint64
	last any
}

// New preallocates buf and rows with explicit capacities, which
// licenses the appends to them below.
func New() *S {
	return &S{
		buf:  make([]uint64, 0, 1024),
		rows: make([][]uint64, 0, 8),
	}
}

// Update commits three sins: a fmt call, an append to a slice the
// package never preallocates, and an interface boxing conversion. The
// append to the preallocated buf is fine.
func (s *S) Update(x uint64) {
	s.log = append(s.log, fmt.Sprintf("update %d", x))
	s.last = any(x)
	s.buf = append(s.buf, x)
}

// UpdateBatch commits the fourth: a fresh allocation per loop
// iteration. The append to the preallocated rows is fine.
func (s *S) UpdateBatch(xs []uint64) {
	for _, x := range xs {
		row := make([]uint64, 1)
		row[0] = x
		s.rows = append(s.rows, row)
	}
}
