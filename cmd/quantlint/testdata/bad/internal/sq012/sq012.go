// Package sq012 trips exactly SQ012, once per bad merge shape: copying
// one operand's error budget and restating it as a fresh literal.
package sq012

// Hist is a toy mergeable summary with an error budget.
type Hist struct {
	eps float64
	n   int64
}

// Merge copies the right operand's budget into the result: whichever
// operand was looser is silently misreported afterwards.
func (h *Hist) Merge(o *Hist) {
	h.n += o.n
	h.eps = o.eps
}

// MergeFresh restates the budget as a constant instead of deriving it
// from the operands.
func MergeFresh(a, b *Hist) *Hist {
	return &Hist{eps: 0.01, n: a.n + b.n}
}
