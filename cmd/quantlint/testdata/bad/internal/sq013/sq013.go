// Package sq013 trips exactly SQ013 via its registration in the root
// quantiles.go: HalfWired can marshal but not unmarshal, and has
// neither a golden fixture nor a crash-matrix seed.
package sq013

import "encoding/binary"

// HalfWired is a counter summary whose codec is wired in one direction
// only.
type HalfWired struct {
	n uint64
}

// New builds an empty HalfWired.
func New() *HalfWired { return &HalfWired{} }

// Update ingests one element.
func (h *HalfWired) Update(x uint64) { h.n++ }

// Count reports the stream length.
func (h *HalfWired) Count() uint64 { return h.n }

// Quantile answers every fraction with zero.
func (h *HalfWired) Quantile(phi float64) uint64 { return 0 }

// Invariants keeps the sanitizer contract, so SQ005 stays quiet.
func (h *HalfWired) Invariants() error { return nil }

// MarshalBinary encodes the count — with no UnmarshalBinary, golden
// fixture, or matrix entry answering for it.
func (h *HalfWired) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, h.n)
	return buf, nil
}
