// Package sq004 trips SQ004: an algorithm package importing upward —
// the root package and the harness sit above internal/.
package sq004

import (
	root "badmod"
	"badmod/internal/harness"
)

// Labels leans on layers the algorithms must not know about.
func Labels() (interface{}, string) {
	return root.Leaky{}, harness.Version
}
