// Package sq001 trips SQ001: ambient randomness and wall-clock time in
// an algorithm package.
package sq001

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// Sample breaks reproducibility three ways.
func Sample() (int, int64) {
	var b [8]byte
	crand.Read(b[:])
	seed := rand.Int()
	return seed, time.Now().UnixNano()
}
