// Package sq003 trips SQ003 exactly once: the panic in Update. The
// constructor panic and the ErrEmpty panic exercise the allowlist.
package sq003

import "errors"

// ErrEmpty is the documented empty-query sentinel.
var ErrEmpty = errors.New("sq003: empty summary")

// S is a toy summary with a panicking hot path.
type S struct {
	n int64
}

// New may panic: constructors validate their arguments.
func New(limit int64) *S {
	if limit <= 0 {
		panic("sq003: non-positive limit")
	}
	return &S{}
}

// Update panics on out-of-range input — a hot path, so SQ003 fires.
func (s *S) Update(x uint64) {
	if x > 1<<32 {
		panic("sq003: element out of range")
	}
	s.n++
}

// Quantile panics only with the ErrEmpty sentinel, which is allowed.
func (s *S) Quantile(phi float64) uint64 {
	if s.n == 0 {
		panic(ErrEmpty)
	}
	return 0
}
