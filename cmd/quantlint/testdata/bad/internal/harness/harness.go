// Package harness is the fixture's measurement layer: a valid import
// target for cmd/, but forbidden for internal/ (SQ004). It must itself
// produce no findings.
package harness

// Version identifies the fixture harness.
const Version = "fixture"
