// Package sq008 trips SQ008 four times — a fmt call in a query method
// and a make plus both boxing spellings inside per-fraction loops —
// while the one-per-batch result allocation outside any loop stays
// silent.
package sq008

import "fmt"

// S is a toy summary whose query paths allocate per fraction.
type S struct {
	vals []uint64
	last any
}

// Quantile formats a trace line per call: one allocation (and one
// boxed argument) per fraction queried.
func (s *S) Quantile(phi float64) uint64 {
	fmt.Printf("quantile(%g)\n", phi)
	return s.vals[int(phi*float64(len(s.vals)))]
}

// QuantileBatch allocates its result once up front, which is the
// contract and stays silent — but then allocates a scratch slice per
// fraction inside the sweep.
func (s *S) QuantileBatch(phis []float64) []uint64 {
	out := make([]uint64, 0, len(phis))
	for _, phi := range phis {
		scratch := make([]uint64, 1)
		scratch[0] = s.vals[int(phi*float64(len(s.vals)))]
		out = append(out, scratch[0])
	}
	return out
}

// RankBatch boxes every probe on its way through the loop, both ways.
func (s *S) RankBatch(xs []uint64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		s.last = any(x)
		s.last = (interface{})(x)
		out[i] = int64(i)
	}
	return out
}
