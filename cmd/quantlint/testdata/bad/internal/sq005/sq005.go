// Package sq005 holds a summary type missing the sanitizer contract.
// The finding fires at the registration site in the root quantiles.go.
package sq005

// Leaky looks like a summary — it has Count and Quantile — but lacks
// the Invariants() error method.
type Leaky struct {
	n int64
}

// Update counts an element.
func (l *Leaky) Update(x uint64) { l.n++ }

// Count reports the stream length.
func (l *Leaky) Count() int64 { return l.n }

// Quantile answers a constant; accuracy is not the point here.
func (l *Leaky) Quantile(phi float64) uint64 { return 0 }
