// Package sq009 trips the pool-pairing half of SQ009 exactly once:
// leak() takes a buffer from a pool and never returns it. The two
// compliant shapes — an inline Put and a deferred Put — stay silent.
package sq009

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]uint64) }}

// leak gets a pooled buffer with no Put anywhere in the function.
func leak(n int) int {
	bp := bufPool.Get().(*[]uint64)
	if cap(*bp) < n {
		*bp = make([]uint64, n)
	}
	return len(*bp)
}

// inline pairs Get with a Put at the end of the same body.
func inline(n int) int {
	bp := bufPool.Get().(*[]uint64)
	if cap(*bp) < n {
		*bp = make([]uint64, n)
	}
	m := len(*bp)
	bufPool.Put(bp)
	return m
}

// deferred pairs Get with a deferred Put, which also counts.
func deferred() int {
	bp := bufPool.Get().(*[]uint64)
	defer bufPool.Put(bp)
	return cap(*bp)
}
