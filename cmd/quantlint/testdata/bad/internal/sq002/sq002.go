// Package sq002 trips SQ002: exact equality between float64 values.
package sq002

// Summary carries a float configuration value.
type Summary struct {
	eps float64
}

// SameEps compares float fields exactly.
func (s *Summary) SameEps(o *Summary) bool {
	return s.eps == o.eps
}

// Converged compares a float parameter against a float literal.
func Converged(x float64) bool {
	return x != 0.5
}
