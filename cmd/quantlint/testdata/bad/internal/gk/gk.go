// Package gk trips the layout half of SQ009: it sits at one of the
// columnar package paths and declares a slice of an all-numeric tuple
// struct — the array-of-structs shape the SoA refactor removed. The
// two-field pair type and the struct holding a slice stay legal.
package gk

// tup is a three-column numeric tuple; []tup is the violation.
type tup struct {
	v    uint64
	g, d int64
}

// pair has only two numeric fields: a value-weight exchange pair, not a
// table, so []pair below is allowed.
type pair struct {
	v uint64
	w int64
}

// cols is the compliant layout for what []tup stores.
type cols struct {
	vals []uint64
	gaps []int64
	dels []int64
}

// S mixes one violating field with the allowed shapes.
type S struct {
	tuples []tup // SQ009: interleaved tuple rows
	pairs  []pair
	c      cols
}
