// Package sq011 trips exactly SQ011: Drain can return with its mutex
// still held. The fields are deliberately unannotated so only the
// unlock-path rule fires, not SQ010.
package sq011

import "sync"

// Gate serializes access to a counter.
type Gate struct {
	mu sync.Mutex
	n  int64
}

// Bump pairs its lock and unlock on the one straight-line path.
func (g *Gate) Bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// Drain leaks the lock on the early return: the SQ011 finding anchors
// at the Lock call.
func (g *Gate) Drain(stop bool) int64 {
	g.mu.Lock()
	if stop {
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}
