// Package sq010 trips exactly SQ010: Peek reads the guarded field with
// no lock held.
package sq010

import "sync"

// Box counts events behind a mutex.
type Box struct {
	mu sync.Mutex
	n  int64 // guarded by mu
}

// NewBox builds an empty Box (constructors are SQ010-exempt).
func NewBox() *Box { return &Box{} }

// Bump holds the lock across the mutation, as the annotation demands.
func (b *Box) Bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// Peek reads the guarded counter without the mutex: the SQ010 finding.
func (b *Box) Peek() int64 {
	return b.n
}
