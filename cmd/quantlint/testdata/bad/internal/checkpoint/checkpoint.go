// Package checkpoint trips all three shapes of SQ015: FanOut spawns
// one goroutine per input part with no runtime.GOMAXPROCS bound in
// sight, and Scatter both returns before its WaitGroup's Wait on one
// path and throws its worker's error away inside the closure. The
// joins that do exist keep the other findings from multiplying.
package checkpoint

import "sync"

// FanOut spawns per part, not per core: flagged (the join is fine).
func FanOut(parts []int) {
	var wg sync.WaitGroup
	for range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Scatter leaks its worker on the empty-input path and drops the
// worker's error: two findings.
func Scatter(xs []int) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work(xs)
	}()
	if len(xs) == 0 {
		return nil
	}
	wg.Wait()
	return nil
}

func work(xs []int) error {
	if len(xs) > 1024 {
		return nil
	}
	return nil
}
