// Package sq006 trips SQ006 twice: a panic in a decode path, and an
// allocation sized by the encoded input without any bounding
// comparison. The guarded make in unmarshalRows exercises the
// allowlist (comparison guard, len(), and a declared constant).
package sq006

const maxRows = 64

// S is a toy summary restored from a hostile byte stream.
type S struct {
	data []uint64
	rows [][]uint64
}

// UnmarshalBinary violates both halves of the decode-path contract:
// it panics on short input, and it lets two input bytes size an
// allocation that is never compared against anything.
func (s *S) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		panic("sq006: short input")
	}
	n := int(data[0])<<8 | int(data[1])
	s.data = make([]uint64, n)
	return nil
}

// unmarshalRows is clean: the row count is range-checked before it
// sizes anything, and the inner makes are constant- or len()-sized.
func (s *S) unmarshalRows(data []byte) error {
	rows := int(data[0])
	if rows > maxRows {
		rows = maxRows
	}
	s.rows = make([][]uint64, rows)
	for i := range s.rows {
		s.rows[i] = make([]uint64, maxRows, 2*len(data))
	}
	return nil
}
