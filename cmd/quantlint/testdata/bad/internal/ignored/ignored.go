// Package ignored demonstrates the //lint:ignore machinery: the two
// real findings here are suppressed and surface only under -strict,
// while the malformed directive is reported as SQ000.
package ignored

// Guard panics in a hot path, with the panic documented and waived by
// a preceding-line directive.
func Guard(x uint64) uint64 {
	if x == 0 {
		//lint:ignore SQ003 fixture: documented contract, waived for the strict-mode golden
		panic("ignored: zero")
	}
	return x - 1
}

// Exact compares floats bit-for-bit on purpose, waived by a trailing
// same-line directive.
func Exact(a, b float64) bool {
	return a == b //lint:ignore SQ002 fixture: exact comparison intended
}

// Both panics on an exact float match; one comma-list directive waives
// both rules at once — the comparison on its own line, the panic on
// the line directly below.
func Both(a, b float64) {
	if a == b { //lint:ignore SQ002,SQ003 fixture: one directive, two rules
		panic("ignored: equal")
	}
}

// Sloppy's directive names no rule and gives no reason, so the linter
// reports the directive itself.
//
//lint:ignore oops
func Sloppy() {}
