// Package sharded trips both halves of SQ014: hotShard carries a
// mutex and an atomic but no blank pad field while being stored by
// value in a slice (adjacent elements false-share cache lines), and
// ops is a package-level atomic counter every writer would contend on.
// The padded coldShard shape and the pointer slice stay silent.
package sharded

import (
	"sync"
	"sync/atomic"
)

// ops is package-level shared hot state: flagged.
var ops atomic.Uint64

// hotShard has hot shared mutable fields and no pad: []hotShard below
// makes it a finding.
type hotShard struct {
	mu    sync.Mutex
	count atomic.Int64
	buf   []uint64
}

// coldShard carries the same hot fields but pads to a line multiple,
// so slicing it is fine.
type coldShard struct {
	mu    sync.Mutex
	count atomic.Int64
	_     [112]byte
}

// registry demonstrates the flagged and the exempt container shapes:
// the value slice over the unpadded struct fires; the padded value
// slice and the pointer slice (separate allocations) do not.
type registry struct {
	hot     []hotShard
	cold    []coldShard
	pointed []*hotShard
}

// touch keeps every declaration referenced without tripping the
// hot-path rules (no Update/Insert/Add naming, no allocation in loops).
func touch(r *registry) int {
	ops.Store(uint64(len(r.hot)))
	return len(r.cold) + len(r.pointed)
}
