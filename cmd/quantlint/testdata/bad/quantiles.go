// Package badstream is the deliberately rule-violating fixture for
// quantlint's golden tests: each internal/sqNNN package trips exactly
// rule SQNNN, and this registry file trips SQ005.
package badstream

import (
	"badmod/internal/sq005"
	"badmod/internal/sq013"
)

// Leaky is a summary whose implementation forgot the sanitizer
// contract: sq005.Leaky has Count and Quantile but no Invariants.
type Leaky = sq005.Leaky

// HalfWired is registered with a one-way codec: the SQ013 findings
// anchor at its MarshalBinary declaration.
type HalfWired = sq013.HalfWired

// NewHalfWired is the constructor whose key the golden-fixture and
// matrix-seed checks derive.
func NewHalfWired() *HalfWired { return sq013.New() }
