// Package badstream is the deliberately rule-violating fixture for
// quantlint's golden tests: each internal/sqNNN package trips exactly
// rule SQNNN, and this registry file trips SQ005.
package badstream

import "badmod/internal/sq005"

// Leaky is a summary whose implementation forgot the sanitizer
// contract: sq005.Leaky has Count and Quantile but no Invariants.
type Leaky = sq005.Leaky
