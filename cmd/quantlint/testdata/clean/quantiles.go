// Package cleanstream is the rule-abiding fixture: quantlint must
// report zero findings anywhere in this module.
package cleanstream

import "cleanmod/internal/good"

// Good is a registered summary carrying the full sanitizer contract.
type Good = good.Good

// NewGood returns an empty summary.
func NewGood() *Good { return good.New() }
