// Package good is a miniature well-behaved summary: seeded-determinism
// friendly, panic-free hot paths, tolerance-based float handling, and
// the Invariants contract in place.
package good

import (
	"errors"
	"fmt"
)

// ErrEmpty is the documented empty-query sentinel.
var ErrEmpty = errors.New("good: empty summary")

// Good counts elements and remembers the last one.
type Good struct {
	n    int64
	last uint64
}

// New returns an empty summary.
func New() *Good { return &Good{} }

// Update never panics.
func (g *Good) Update(x uint64) {
	g.n++
	g.last = x
}

// Count reports the stream length.
func (g *Good) Count() int64 { return g.n }

// Quantile panics only with the ErrEmpty sentinel.
func (g *Good) Quantile(phi float64) uint64 {
	if g.n == 0 {
		panic(ErrEmpty)
	}
	return g.last
}

// Invariants implements the sanitizer contract.
func (g *Good) Invariants() error {
	if g.n < 0 {
		return fmt.Errorf("good: negative count %d", g.n)
	}
	return nil
}
