// SQ006 — decode paths must be total: no panics, no
// attacker-controlled allocation sizes.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// decoderPrefixes name the decode-path functions: the BinaryUnmarshaler
// entry points, their helpers, and frame/header parsers. These are the
// only functions that ever see bytes from disk, so they carry a
// stricter contract than SQ003: no panic at all (not even ErrEmpty —
// corrupt input must surface as an error), and no allocation whose size
// the input controls without a plausibility guard.
var decoderPrefixes = []string{"Unmarshal", "unmarshal", "Decode", "decode", "Parse", "parse"}

func isDecoderFunc(name string) bool {
	for _, p := range decoderPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkSQ006 audits every decode path in internal/* packages. Two
// shapes are flagged:
//
//   - any panic call: a decoder runs on bytes read back from disk, and
//     a checkpoint that crashes the process on load is worse than no
//     checkpoint at all;
//   - a make() whose length or capacity is an identifier the function
//     never compares against anything: that identifier came from the
//     encoding, so a few hostile bytes would size an arbitrary
//     allocation. Constants, len()/cap() results (bounded by the input
//     already in memory) and guarded identifiers are fine.
//
// The guard check is syntactic — the identifier must appear in some
// comparison in the same function — so it proves attention, not
// correctness; the FuzzDecode harnesses test the actual behaviour.
func (l *linter) checkSQ006() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) {
			continue
		}
		consts := constNames(p)
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isDecoderFunc(fd.Name.Name) {
					continue
				}
				guarded := comparedNames(fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok {
						return true
					}
					switch id.Name {
					case "panic":
						l.report(call.Pos(), "SQ006", fmt.Sprintf(
							"panic in decode path %s: corrupt input must surface as an error wrapping core.ErrCorrupt, never a crash", fd.Name.Name))
					case "make":
						for _, arg := range call.Args[1:] {
							if name, ok := unboundedSize(arg, guarded, consts); !ok {
								l.report(arg.Pos(), "SQ006", fmt.Sprintf(
									"make sized by %s in decode path %s without a bounding comparison: the encoding must not control allocations unchecked", name, fd.Name.Name))
							}
						}
					}
					return true
				})
			}
		}
	}
}

// constNames collects the package's declared constant names; a make
// sized by one of these is compile-time bounded.
func constNames(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						set[name.Name] = true
					}
				}
			}
		}
	}
	return set
}

// comparedNames collects every identifier that appears inside an
// ordered comparison (<, <=, >, >=) anywhere in the body — the
// syntactic evidence that a size was range-checked before use.
func comparedNames(body *ast.BlockStmt) map[string]bool {
	set := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						set[id.Name] = true
					}
					return true
				})
			}
		}
		return true
	})
	return set
}

// unboundedSize reports whether a make() size expression escapes the
// bounding discipline, returning the offending name. Bounded shapes:
// integer literals, declared constants, len()/cap() of something
// already in memory, guarded identifiers (by leaf name for selectors),
// and arithmetic over bounded parts.
func unboundedSize(e ast.Expr, guarded, consts map[string]bool) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		return "", true
	case *ast.Ident:
		if guarded[e.Name] || consts[e.Name] {
			return "", true
		}
		return e.Name, false
	case *ast.SelectorExpr:
		if guarded[e.Sel.Name] || consts[e.Sel.Name] {
			return "", true
		}
		return e.Sel.Name, false
	case *ast.ParenExpr:
		return unboundedSize(e.X, guarded, consts)
	case *ast.BinaryExpr:
		if name, ok := unboundedSize(e.X, guarded, consts); !ok {
			return name, false
		}
		return unboundedSize(e.Y, guarded, consts)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap":
				return "", true
			case "int", "int64", "uint64", "uint", "int32", "uint32":
				if len(e.Args) == 1 {
					return unboundedSize(e.Args[0], guarded, consts)
				}
			}
		}
		return "a function result", false
	}
	return "an unrecognized expression", false
}
