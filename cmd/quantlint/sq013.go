// SQ013 — codec parity: a summary that can marshal must be fully wired
// into the round-trip safety net.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// checkSQ013 computes, from the registry itself, the set of
// codec-bearing summaries (registered aliases whose target type has
// MarshalBinary) and checks each is fully wired:
//
//   - the target also implements UnmarshalBinary — a one-way codec
//     makes checkpoints write-only;
//   - every root constructor New<X> returning the alias has a golden
//     fixture testdata/golden/<x>.bin — without it, format drift ships
//     silently;
//   - that constructor's key appears in the matrixSummaries table of
//     the root package's tests — the fuzz and crash-recovery matrices
//     must exercise every codec, and that table is their single source
//     of truth.
//
// All findings anchor at the target's MarshalBinary declaration: the
// codec is the thing demanding the parity, and registering it is what
// created the obligation. Computing the set from the registry (not a
// hand-kept list) means adding a ninth codec summary without its
// fixtures fails `make lint` on the spot.
func (l *linter) checkSQ013() {
	for _, p := range l.pkgs {
		if p.rel != "" {
			continue // the registry and its constructors live in the module root
		}
		matrix := matrixNames(p.dir)
		for _, f := range p.files {
			fname := l.fset.Position(f.Pos()).Filename
			if !strings.HasSuffix(fname, "quantiles.go") {
				continue
			}
			codec := map[string]aliasReg{}   // codec-bearing alias name -> registration
			anchor := map[string]token.Pos{} // alias name -> MarshalBinary position
			for _, a := range l.registryAliases(p, f) {
				methods := methodSet(a.target, a.typeName)
				if !methods["MarshalBinary"] {
					continue
				}
				pos := marshalPos(a.target, a.typeName)
				if pos == token.NoPos {
					pos = a.spec.Pos() // promoted method: anchor at the registration
				}
				codec[a.name] = a
				anchor[a.name] = pos
				if !methods["UnmarshalBinary"] {
					l.report(pos, "SQ013", fmt.Sprintf(
						"summary %s (= %s.%s) implements MarshalBinary but not UnmarshalBinary: a one-way codec makes checkpoints write-only", a.name, a.localPkg, a.typeName))
				}
			}
			if len(codec) == 0 {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "New") ||
					fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
					continue
				}
				aliasName := receiverTypeName(fd.Type.Results.List[0].Type)
				a, ok := codec[aliasName]
				if !ok {
					continue
				}
				key := strings.ToLower(strings.TrimPrefix(fd.Name.Name, "New"))
				pos := anchor[aliasName]
				golden := filepath.Join(p.mod.dir, "testdata", "golden", key+".bin")
				if _, err := os.Stat(golden); err != nil {
					l.report(pos, "SQ013", fmt.Sprintf(
						"codec-bearing summary %s (constructor %s) has no golden fixture testdata/golden/%s.bin: encode one so format drift fails the round-trip tests", a.name, fd.Name.Name, key))
				}
				if !matrix[key] {
					l.report(pos, "SQ013", fmt.Sprintf(
						"codec-bearing summary %s (constructor %s) is missing from matrixSummaries: the fuzz and crash matrices must exercise every registered codec", a.name, fd.Name.Name))
				}
			}
		}
	}
}

// matrixNames parses the root package's test files for the
// matrixSummaries table and collects its name strings. Test files are
// outside the engine's package model (load skips them), so this uses a
// throwaway FileSet and tolerates absence: no tests simply means no
// names, and every codec constructor is reported unseeded.
func matrixNames(dir string) map[string]bool {
	set := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return set
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if name.Name != "matrixSummaries" || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, el := range cl.Elts {
					entry, ok := el.(*ast.CompositeLit)
					if !ok {
						continue
					}
					for j, field := range entry.Elts {
						var v ast.Expr = field
						if kv, ok := field.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); !ok || id.Name != "name" {
								continue
							}
							v = kv.Value
						} else if j != 0 {
							continue // positional: the name is the first field
						}
						if lit, ok := v.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							set[strings.Trim(lit.Value, `"`)] = true
						}
					}
				}
			}
			return true
		})
	}
	return set
}

// marshalPos finds the MarshalBinary declaration on typeName in the
// target package; the parity findings anchor there.
func marshalPos(p *pkgInfo, typeName string) token.Pos {
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv != nil && len(fd.Recv.List) == 1 &&
				fd.Name.Name == "MarshalBinary" &&
				receiverTypeName(fd.Recv.List[0].Type) == typeName {
				return fd.Pos()
			}
		}
	}
	return token.NoPos
}
