// A lightweight intra-function control-flow graph, built once per
// analyzed function and shared by the flow-sensitive rules (SQ010 and
// SQ011 run a held-lock dataflow over it; see locks.go).
//
// Blocks hold ast.Nodes in execution order: simple statements appear
// whole, control statements contribute their condition/operand
// expressions to the block that evaluates them, and the branching
// itself becomes edges. return and explicit panic(...) terminate a
// block; a reachable block with no successors falls off the end of the
// function. Closures (FuncLit) are opaque: their bodies run at some
// other time under some other lock regime, so the dataflow neither
// enters them nor models their effects. goto (absent from this
// codebase) marks the graph broken and the analysis skips the function
// rather than guess.
package main

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one straight-line run of nodes.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
	// terminal marks a block whose last node leaves the function
	// (return, or a call to the panic builtin).
	terminal bool
}

type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock
	broken bool // goto or an unresolvable labeled branch: skip analysis
}

// loopCtx is one enclosing breakable construct during construction.
type loopCtx struct {
	label string
	brk   *cfgBlock // break target
	cont  *cfgBlock // continue target; nil for switch/select
}

type cfgBuilder struct {
	cfg   *funcCFG
	cur   *cfgBlock
	loops []loopCtx
}

// buildCFG constructs the graph of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}}
	b.cur = b.newBlock()
	b.cfg.entry = b.cur
	b.stmtList(body.List)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func link(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) emit(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// terminate ends the current block (return/panic/branch) and resumes
// building into a fresh, unreachable block so trailing dead code never
// contaminates live paths.
func (b *cfgBuilder) terminate(exitsFunc bool) {
	b.cur.terminal = b.cur.terminal || exitsFunc
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// findLoop resolves a break/continue target; empty label means the
// innermost applicable context.
func (b *cfgBuilder) findLoop(label string, needCont bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if label != "" && lc.label != label {
			continue
		}
		if needCont && lc.cont == nil {
			continue
		}
		return lc
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		link(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		link(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			link(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			link(b.cur, after)
		} else {
			link(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.newBlock()
		link(b.cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		if s.Cond != nil {
			link(head, after)
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			link(post, head)
			cont = post
		}
		b.loops = append(b.loops, loopCtx{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		link(b.cur, cont)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.RangeStmt:
		b.emit(s.X) // the ranged operand is evaluated once, here
		head := b.newBlock()
		link(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		link(head, body)
		link(head, after)
		b.loops = append(b.loops, loopCtx{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		link(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Assign)
		b.caseClauses(s.Body.List, label, func(*ast.CaseClause) []ast.Node { return nil })

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, brk: after})
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			link(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			link(b.cur, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if lc := b.findLoop(lbl, false); lc != nil {
				link(b.cur, lc.brk)
			} else {
				b.cfg.broken = true
			}
			b.terminate(false)
		case token.CONTINUE:
			lbl := ""
			if s.Label != nil {
				lbl = s.Label.Name
			}
			if lc := b.findLoop(lbl, true); lc != nil {
				link(b.cur, lc.cont)
			} else {
				b.cfg.broken = true
			}
			b.terminate(false)
		case token.GOTO:
			b.cfg.broken = true
			b.terminate(false)
		case token.FALLTHROUGH:
			// handled structurally by caseClauses; nothing to emit
		}

	case *ast.ReturnStmt:
		b.emit(s)
		b.terminate(true)

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			b.terminate(true)
		}

	default:
		// Assignments, declarations, defers, go statements, sends,
		// incdec, empty statements: straight-line nodes.
		b.emit(s)
	}
}

// caseClauses wires the shared switch/type-switch shape: the head links
// to every clause (and past them when no default exists), clause bodies
// flow to the after block, and a trailing fallthrough flows into the
// next clause's body instead.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.cur
	after := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, brk: after})
	var clauses []*ast.CaseClause
	for _, cs := range list {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		blocks[i].nodes = append(blocks[i].nodes, caseNodes(cc)...)
		link(head, blocks[i])
		if len(cc.List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		link(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			link(b.cur, blocks[i+1])
		} else {
			link(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

// isPanicCall recognizes a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
