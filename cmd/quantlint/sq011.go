// SQ011 — unlock-path soundness: what is locked gets unlocked on every
// path out.
package main

// checkSQ011 reports the leaked-lock findings of the shared lock
// dataflow (locks.go): a Lock/RLock with some function exit it can
// reach while still held — no defer, no post-dominating Unlock. The
// finding anchors at the acquire site (the fix belongs there: defer the
// unlock), deduplicated across the exits that leak it. Returning the
// bound unlock method value (`return c.mu.Unlock`) transfers release
// ownership to the caller and counts as a release.
func (l *linter) checkSQ011() {
	for _, p := range l.pkgs {
		for _, f := range l.lockAnalysis(p).sq011 {
			l.report(f.pos, "SQ011", f.msg)
		}
	}
}
