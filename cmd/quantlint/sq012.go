// SQ012 — ε-budget propagation through merges.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkSQ012 audits Merge implementations in algorithm packages for the
// two ways an error budget silently goes wrong:
//
//   - the result's eps is COPIED from one operand (`out.eps = a.eps`,
//     `&T{eps: other.eps}`): when the operands ever disagree, the merged
//     summary understates its error by the difference. The merged
//     budget must be derived — max(a.eps, b.eps) for same-budget
//     merges, or a documented additive rule (core.SumEps) for sketches
//     whose guarantees add;
//   - the result's eps is a FRESH literal (`&T{eps: 0.01}`): the budget
//     is restated instead of propagated, and drifts the first time a
//     caller constructs operands with a different eps.
//
// Anything else — max/min calls, helper calls, arithmetic over both
// operands — passes: the rule forces the derivation to be explicit, not
// a particular formula. "Merge implementation" means a function or
// method whose name contains "merge" (case-insensitive) in an
// internal/* package; the harness is exempt as tooling. When type
// information is available and says the assigned field is not a float,
// the finding is vetoed (an eps-named counter is not a budget).
func (l *linter) checkSQ012() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || under(p.rel, "internal/harness") {
			continue
		}
		var ti *typeInfo
		typedOnce := false
		typeOf := func(e ast.Expr) types.Type {
			if !typedOnce {
				typedOnce = true
				ti = l.typed(p)
			}
			if ti == nil {
				return nil
			}
			return ti.typeOf(e)
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !strings.Contains(strings.ToLower(fd.Name.Name), "merge") {
					continue
				}
				l.auditMergeEps(fd, typeOf)
			}
		}
	}
}

// auditMergeEps walks one merge body for eps assignments and
// composite-literal fields whose right side copies or restates a
// budget.
func (l *linter) auditMergeEps(fd *ast.FuncDecl, typeOf func(ast.Expr) types.Type) {
	name := fd.Name.Name
	flag := func(pos token.Pos, lhs ast.Expr, rhs ast.Expr) {
		if t := typeOf(lhs); t != nil && !isFloatBasic(t) {
			return // an eps-named non-float is not an error budget
		}
		switch r := rhs.(type) {
		case *ast.SelectorExpr:
			if isEpsName(r.Sel.Name) {
				l.report(pos, "SQ012", fmt.Sprintf(
					"merge result eps copied from %s in %s: derive the merged budget (max of the operands, or a documented additive rule), never inherit one side's", types.ExprString(r), name))
			}
		case *ast.BasicLit:
			l.report(pos, "SQ012", fmt.Sprintf(
				"merge result eps set to literal %s in %s: the merged budget must be derived from the operands, not restated as a constant", r.Value, name))
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || !isEpsName(sel.Sel.Name) {
					continue
				}
				flag(n.Rhs[i].Pos(), lhs, n.Rhs[i])
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !isEpsName(key.Name) {
					continue
				}
				flag(kv.Value.Pos(), kv.Key, kv.Value)
			}
		}
		return true
	})
}

// isEpsName matches the error-budget field names (eps, epsilon,
// case-insensitive).
func isEpsName(name string) bool {
	return strings.EqualFold(name, "eps") || strings.EqualFold(name, "epsilon")
}

// isFloatBasic reports whether t's underlying type is a float.
func isFloatBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
