// SQ007 — allocation discipline in update hot paths.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// hotMethodNames are the per-element ingestion entry points of the
// summary contracts (core.CashRegister / core.Turnstile / the sketch
// Add interface and their batch variants). Methods with these names on
// any internal/* type are the per-item cost centers the throughput
// benchmarks measure, so they carry an allocation discipline.
var hotMethodNames = map[string]bool{
	"Update": true, "UpdateBatch": true,
	"Insert": true, "InsertBatch": true,
	"Delete": true, "DeleteBatch": true,
	"Add": true, "AddBatch": true,
}

// checkSQ007 audits ingestion hot paths for per-item allocation. Four
// shapes are flagged inside hot methods of internal/* packages:
//
//   - any fmt.* call: formatting allocates and drags an interface
//     conversion per argument;
//   - make() inside a loop: a fresh allocation per element (or per
//     chunk iteration) where a reused buffer belongs;
//   - boxing conversions any(x) / (interface{})(x): each one heap-
//     allocates under escape analysis' worst case;
//   - append onto a slice whose leaf name never appears in this
//     package with a make(..., len, cap) preallocation: growth then
//     reallocates on the hot path at unpredictable points.
//
// Like SQ006's guard check, the preallocation evidence is syntactic —
// some statement in the package must tie the appended-to name to a
// three-argument make — so it proves attention, not a bound; the
// ReportAllocs benchmarks measure the actual behaviour. The harness is
// exempt as tooling, and only receiver methods are audited: free
// functions named Add etc. are not part of the summary contracts.
func (l *linter) checkSQ007() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || under(p.rel, "internal/harness") {
			continue
		}
		prealloc := preallocatedNames(p)
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !hotMethodNames[fd.Name.Name] {
					continue
				}
				l.auditHotMethod(fd, prealloc)
			}
		}
	}
}

// auditHotMethod reports the SQ007 findings of one hot method body.
func (l *linter) auditHotMethod(fd *ast.FuncDecl, prealloc map[string]bool) {
	name := fd.Name.Name
	inLoop := map[ast.Node]bool{} // loop bodies, for the make() check
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			inLoop[n.Body] = true
		case *ast.RangeStmt:
			inLoop[n.Body] = true
		}
		return true
	})
	seenMake := map[token.Pos]bool{} // dedup: nested loop bodies overlap
	for body := range inLoop {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && !seenMake[call.Pos()] {
				seenMake[call.Pos()] = true
				l.report(call.Pos(), "SQ007", fmt.Sprintf(
					"make inside a loop in hot path %s: allocate once outside the loop and reuse the buffer", name))
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "fmt" {
				l.report(call.Pos(), "SQ007", fmt.Sprintf(
					"fmt.%s in hot path %s: formatting allocates per call — precompute messages in a constructor or drop them", fun.Sel.Name, name))
			}
		case *ast.Ident:
			switch fun.Name {
			case "any":
				if len(call.Args) == 1 {
					l.report(call.Pos(), "SQ007", fmt.Sprintf(
						"interface boxing in hot path %s: any(x) heap-allocates per element", name))
				}
			case "append":
				if len(call.Args) == 0 {
					return true
				}
				leaf := leafName(call.Args[0])
				if leaf != "" && !prealloc[leaf] {
					l.report(call.Pos(), "SQ007", fmt.Sprintf(
						"append to %s in hot path %s with no make(..., len, cap) preallocation anywhere in the package: growth reallocates mid-stream", leaf, name))
				}
			}
		case *ast.ParenExpr:
			if it, ok := fun.X.(*ast.InterfaceType); ok && len(it.Methods.List) == 0 && len(call.Args) == 1 {
				l.report(call.Pos(), "SQ007", fmt.Sprintf(
					"interface boxing in hot path %s: (interface{})(x) heap-allocates per element", name))
			}
		}
		return true
	})
}

// preallocatedNames collects every name the package ties to a
// three-argument make — via assignment, var initialization, or a
// composite-literal field — plus assignments whose right side merely
// contains such a make (append(s, make(len, cap)) and friends count:
// they show the name's elements are capacity-managed).
func preallocatedNames(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	record := func(target ast.Expr, value ast.Expr) {
		if containsCapMake(value) {
			if leaf := leafName(target); leaf != "" {
				set[leaf] = true
			}
		}
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i < len(n.Names) {
						record(n.Names[i], v)
					}
				}
			case *ast.KeyValueExpr:
				record(n.Key, n.Value)
			}
			return true
		})
	}
	return set
}

// containsCapMake reports whether e contains a make call with an
// explicit capacity argument.
func containsCapMake(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 3 {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
