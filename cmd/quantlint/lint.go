// Engine: package discovery, parsing, ignore directives, and finding
// bookkeeping. The rule registry lives in rules.go and each rule in its
// own sqNNN.go file.
//
// Parsing is pure go/ast + go/parser; type information (typecheck.go)
// is computed lazily, per package, only when a rule that needs it
// (the lock rules SQ010/SQ011, SQ012's float veto) actually looks at a
// package that uses locks or merges. Packages that never trip those
// gates are linted exactly as cheaply as before the typed pass existed.
package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// finding is one diagnostic. File is slash-separated and relative to
// the directory quantlint was invoked from, so output is stable across
// machines (and across golden-file runs).
type finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Rule       string `json:"rule"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func (f finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Msg)
	if f.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", f.Reason)
	}
	return s
}

// module is one go.mod scope. A single lint run may span several
// modules (the linter's own testdata trees are self-contained modules).
type module struct {
	path string // module path declared in go.mod
	dir  string // absolute directory holding go.mod
}

// pkgInfo is one parsed package directory (non-test files only).
type pkgInfo struct {
	dir   string // absolute
	rel   string // slash path relative to module root; "" for the root package
	mod   *module
	files []*ast.File
}

func (p *pkgInfo) importPath() string {
	if p.rel == "" {
		return p.mod.path
	}
	return p.mod.path + "/" + p.rel
}

// ignoreDirective is one `//lint:ignore SQxxx reason` comment. It
// suppresses findings of that rule on the same line or the line
// directly below (i.e. the directive sits on the offending line or on
// the line before it).
type ignoreDirective struct {
	rule   string
	reason string
}

type linter struct {
	base     string // invocation directory; findings are relative to it
	fset     *token.FileSet
	mods     map[string]*module // keyed by absolute module dir
	pkgs     []*pkgInfo
	byImport map[string]*pkgInfo
	ignores  map[string]map[int][]ignoreDirective // file -> line -> directives
	findings []finding

	// Lazy typed-pass state (typecheck.go, locks.go). Nothing here is
	// populated until a rule asks for a package's type information.
	types    map[*pkgInfo]*typeInfo
	checking map[*pkgInfo]bool
	locks    map[*pkgInfo]*lockFindings
	stdImp   types.Importer
}

// lint parses every package matched by the patterns and runs all rules.
// Patterns follow the go tool's shape: a directory, or dir/... for a
// recursive walk. The returned findings include suppressed ones, sorted
// by position; the caller decides what to show.
func lint(base string, patterns []string) ([]finding, error) {
	return lintOnly(base, patterns, nil)
}

// lintOnly is lint restricted to a rule subset: only the rules in
// `only` run, and only their findings (plus SQ000, the engine's own
// directive diagnostics) are returned. A nil set means every rule.
// Skipping a rule skips its work too — `-only SQ002` on a big tree
// never pays for the lock rules' typed pass.
func lintOnly(base string, patterns []string, only map[string]bool) ([]finding, error) {
	l := &linter{
		base:     base,
		fset:     token.NewFileSet(),
		mods:     map[string]*module{},
		byImport: map[string]*pkgInfo{},
		ignores:  map[string]map[int][]ignoreDirective{},
		types:    map[*pkgInfo]*typeInfo{},
		checking: map[*pkgInfo]bool{},
		locks:    map[*pkgInfo]*lockFindings{},
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := l.load(dir); err != nil {
			return nil, err
		}
	}
	for _, r := range ruleTable {
		if only == nil || only[r.id] {
			r.run(l)
		}
	}
	l.markSuppressed()
	if only != nil {
		kept := l.findings[:0]
		for _, f := range l.findings {
			if only[f.Rule] || f.Rule == "SQ000" {
				kept = append(kept, f)
			}
		}
		l.findings = kept
	}
	sort.Slice(l.findings, func(i, j int) bool {
		a, b := l.findings[i], l.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return l.findings, nil
}

// expand turns CLI patterns into a deduplicated list of directories.
// Walks skip testdata, vendor, hidden/underscore directories and nested
// modules — except when one of those is the walk root itself, which
// lets the linter be pointed straight at its own testdata trees.
func (l *linter) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.base, pat)
		}
		if fi, err := os.Stat(pat); err != nil {
			return nil, fmt.Errorf("quantlint: %v", err)
		} else if !fi.IsDir() {
			return nil, fmt.Errorf("quantlint: %s is not a directory", pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		root := pat
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != root {
				name := d.Name()
				if name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return fs.SkipDir
				}
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return fs.SkipDir // nested module: lint it explicitly or not at all
				}
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// load parses the non-test .go files of one directory into a pkgInfo
// (nil if the directory holds no Go source) and records its ignore
// directives.
func (l *linter) load(dir string) (*pkgInfo, error) {
	mod, err := l.findModule(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		l.collectIgnores(path, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(mod.dir, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	p := &pkgInfo{dir: dir, rel: filepath.ToSlash(rel), mod: mod, files: files}
	l.pkgs = append(l.pkgs, p)
	l.byImport[p.importPath()] = p
	return p, nil
}

// loadByImport returns the already-parsed package for an import path,
// loading it on demand when the lint patterns did not cover it (SQ005
// follows aliases wherever they point).
func (l *linter) loadByImport(mod *module, path string) (*pkgInfo, error) {
	if p, ok := l.byImport[path]; ok {
		return p, nil
	}
	if path != mod.path && !strings.HasPrefix(path, mod.path+"/") {
		return nil, nil
	}
	dir := filepath.Join(mod.dir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, mod.path), "/")))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, nil
	}
	return l.load(dir)
}

// findModule walks up from dir to the enclosing go.mod and parses its
// module path. Results are cached per module directory.
func (l *linter) findModule(dir string) (*module, error) {
	probe := dir
	for {
		if m, ok := l.mods[probe]; ok {
			return m, nil
		}
		gomod := filepath.Join(probe, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			path, err := modulePath(gomod)
			if err != nil {
				return nil, err
			}
			m := &module{path: path, dir: probe}
			l.mods[probe] = m
			return m, nil
		}
		parent := filepath.Dir(probe)
		if parent == probe {
			return nil, fmt.Errorf("quantlint: no go.mod found above %s", dir)
		}
		probe = parent
	}
}

func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest == "" {
				continue
			}
			if unq, err := strconv.Unquote(rest); err == nil {
				return unq, nil
			}
			return rest, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("quantlint: %s declares no module path", gomod)
}

// collectIgnores indexes the file's //lint:ignore directives by line.
// A directive must name a rule — or a comma-separated list of rules,
// `//lint:ignore SQ002,SQ003 reason` — and give a non-empty reason;
// malformed directives are themselves reported so they cannot silently
// rot. A comma list expands to one directive per rule sharing the one
// reason.
func (l *linter) collectIgnores(path string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := l.fset.Position(c.Pos())
			fields := strings.Fields(text)
			rules := []string{}
			if len(fields) >= 2 {
				for _, r := range strings.Split(fields[0], ",") {
					if strings.HasPrefix(r, "SQ") {
						rules = append(rules, r)
					} else {
						rules = nil
						break
					}
				}
			}
			if len(rules) == 0 {
				l.findings = append(l.findings, finding{
					File: l.relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
					Rule: "SQ000",
					Msg:  "malformed ignore directive: want //lint:ignore SQxxx reason",
				})
				continue
			}
			m := l.ignores[path]
			if m == nil {
				m = map[int][]ignoreDirective{}
				l.ignores[path] = m
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0]))
			for _, r := range rules {
				m[pos.Line] = append(m[pos.Line], ignoreDirective{rule: r, reason: reason})
			}
		}
	}
}

func (l *linter) relFile(abs string) string {
	rel, err := filepath.Rel(l.base, abs)
	if err != nil {
		return filepath.ToSlash(abs)
	}
	return filepath.ToSlash(rel)
}

// report records one finding at a token position.
func (l *linter) report(pos token.Pos, rule, msg string) {
	p := l.fset.Position(pos)
	l.findings = append(l.findings, finding{
		File: l.relFile(p.Filename), Line: p.Line, Col: p.Column,
		Rule: rule, Msg: msg,
	})
}

// markSuppressed matches findings against the ignore index. The
// directive may sit on the finding's own line (trailing comment) or on
// the line directly above it.
func (l *linter) markSuppressed() {
	for i := range l.findings {
		f := &l.findings[i]
		abs := filepath.Join(l.base, filepath.FromSlash(f.File))
		m := l.ignores[abs]
		if m == nil {
			continue
		}
		for _, line := range []int{f.Line, f.Line - 1} {
			for _, d := range m[line] {
				if d.rule == f.Rule {
					f.Suppressed = true
					f.Reason = d.reason
				}
			}
		}
	}
}
