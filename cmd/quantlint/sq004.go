// SQ004 — layering: internal/* never imports the harness, cmd/*, or
// the root package.
package main

import (
	"fmt"
	"strings"
)

// checkSQ004 enforces the dependency direction: algorithm packages
// (internal/*) sit below the harness, the commands, and the public
// root package, and must never import upward.
func (l *linter) checkSQ004() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) {
			continue
		}
		mod := p.mod.path
		for _, f := range p.files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				switch {
				case path == mod:
					l.report(imp.Pos(), "SQ004", fmt.Sprintf(
						"algorithm package %s imports the root package: dependencies must point from the API surface down, never up", p.rel))
				case (path == mod+"/internal/harness" || strings.HasPrefix(path, mod+"/internal/harness/")) &&
					!under(p.rel, "internal/harness"):
					l.report(imp.Pos(), "SQ004", fmt.Sprintf(
						"algorithm package %s imports the harness: measurement tooling sits above the algorithms", p.rel))
				case path == mod+"/cmd" || strings.HasPrefix(path, mod+"/cmd/"):
					l.report(imp.Pos(), "SQ004", fmt.Sprintf(
						"algorithm package %s imports %s: cmd/ binaries are leaves of the dependency graph", p.rel, path))
				}
			}
		}
	}
}
