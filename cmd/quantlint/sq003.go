// SQ003 — panic stays out of hot paths: constructors and check*
// helpers only (plus the documented panic(ErrEmpty) contract).
package main

import (
	"fmt"
	"go/ast"
	"strings"
)

// checkSQ003 keeps panic out of algorithm hot paths. A panic is allowed
// only inside New*/new*/check*/Check* functions (constructors and
// validation helpers, where the API contract documents it) or when its
// argument is the exported ErrEmpty sentinel — the documented
// empty-query contract shared by every summary. The harness is exempt:
// it is tooling, not algorithm code.
func (l *linter) checkSQ003() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || under(p.rel, "internal/harness") {
			continue
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := fd.Name.Name
				if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
					strings.HasPrefix(name, "Check") || strings.HasPrefix(name, "check") {
					continue
				}
				if isDecoderFunc(name) {
					continue // decode paths are SQ006's jurisdiction
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" {
						return true
					}
					if len(call.Args) == 1 && isErrEmpty(call.Args[0]) {
						return true
					}
					l.report(call.Pos(), "SQ003", fmt.Sprintf(
						"panic in %s: hot paths must not panic — move validation into a New*/check* helper or panic(ErrEmpty)", name))
					return true
				})
			}
		}
	}
}

func isErrEmpty(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "ErrEmpty"
	case *ast.SelectorExpr:
		return e.Sel.Name == "ErrEmpty"
	}
	return false
}
