// SQ009 — columnar layout and pool hygiene.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// sq009ColumnarPkgs are the summary packages whose tuple state moved to
// struct-of-arrays columns (DESIGN.md "Memory layout"): gaps/dels in
// gk.tcols, the flat level arenas of kll and mrl, the prefix-weight
// columns of qdigest. A `[]T` over an all-numeric struct reintroduces
// the interleaved layout the refactor removed, so it is flagged here
// before it can grow back.
var sq009ColumnarPkgs = []string{
	"internal/gk", "internal/kll", "internal/mrl", "internal/qdigest",
}

// sq009NumericTypes are the field types that make a struct a plain
// numeric tuple. Pointers, slices, strings or named types disqualify:
// such structs are nodes or handles, not rows of a table.
var sq009NumericTypes = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"float32": true, "float64": true, "byte": true, "rune": true, "uintptr": true,
}

// checkSQ009 enforces the memory-layout discipline in two shapes:
//
//   - in the columnar packages, any slice type `[]T` where T is a
//     package-declared struct of three or more all-numeric fields: a
//     table of ≥3 parallel numeric columns belongs in column slices
//     (8-byte strides on the one or two columns a sweep touches), not
//     in an interleaved array of structs. Two-field structs stay legal
//     — a value-weight pair (core.WeightedValue) is an exchange format,
//     not a table — as do structs holding pointers or slices;
//   - anywhere: a pool.Get() call whose pool's Put never appears in the
//     same function. Pools whose Get and Put sit in different functions
//     couple allocation lifetimes across call sites, which is how
//     double-Put and use-after-Put bugs enter; a deferred Put counts.
//     "Pool" means the receiver's leaf name contains "pool" — the
//     repo's naming convention for every sync.Pool.
func (l *linter) checkSQ009() {
	for _, p := range l.pkgs {
		if exempt(p.rel, sq009ColumnarPkgs) {
			tuples := numericTupleStructs(p)
			for _, f := range p.files {
				ast.Inspect(f, func(n ast.Node) bool {
					at, ok := n.(*ast.ArrayType)
					if !ok || at.Len != nil {
						return true
					}
					if id, ok := at.Elt.(*ast.Ident); ok && tuples[id.Name] {
						l.report(at.Pos(), "SQ009", fmt.Sprintf(
							"[]%s interleaves %s's all-numeric tuple fields: columnar packages store parallel column slices (see gk.tcols), not arrays of structs", id.Name, id.Name))
					}
					return true
				})
			}
		}
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				l.auditPoolPairing(fd)
			}
		}
	}
}

// numericTupleStructs collects the package's struct types with three or
// more fields, all of builtin numeric type.
func numericTupleStructs(p *pkgInfo) map[string]bool {
	set := map[string]bool{}
	for _, f := range p.files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				fields, numeric := 0, true
				for _, fl := range st.Fields.List {
					id, ok := fl.Type.(*ast.Ident)
					if !ok || !sq009NumericTypes[id.Name] {
						numeric = false
						break
					}
					if n := len(fl.Names); n > 0 {
						fields += n
					} else {
						fields++
					}
				}
				if numeric && fields >= 3 {
					set[ts.Name.Name] = true
				}
			}
		}
	}
	return set
}

// auditPoolPairing reports every pool.Get() in fd whose pool never sees
// a Put in the same body.
func (l *linter) auditPoolPairing(fd *ast.FuncDecl) {
	type get struct {
		pos  token.Pos
		leaf string
	}
	var gets []get
	puts := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		leaf := leafName(sel.X)
		if leaf == "" || !strings.Contains(strings.ToLower(leaf), "pool") {
			return true
		}
		switch sel.Sel.Name {
		case "Get":
			if len(call.Args) == 0 {
				gets = append(gets, get{call.Pos(), leaf})
			}
		case "Put":
			puts[leaf] = true
		}
		return true
	})
	for _, g := range gets {
		if !puts[g.leaf] {
			l.report(g.pos, "SQ009", fmt.Sprintf(
				"%s.Get() in %s has no %s.Put in the same function: pool lifetimes must pair up locally (a deferred Put counts) or double-Put and use-after-Put bugs creep in", g.leaf, fd.Name.Name, g.leaf))
		}
	}
}
