// SQ001 — determinism: algorithm packages must not reach for ambient
// randomness or wall-clock time.
package main

import (
	"fmt"
	"go/ast"
	"strings"
)

// sq001Exempt lists the internal packages allowed to touch randomness
// or time: xhash IS the repo's seeded randomness source, and harness is
// the measurement layer whose whole job is timing.
var sq001Exempt = []string{"internal/xhash", "internal/harness"}

var sq001BadImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func (l *linter) checkSQ001() {
	for _, p := range l.pkgs {
		if !isInternalPkg(p) || exempt(p.rel, sq001Exempt) {
			continue
		}
		for _, f := range p.files {
			timeName := ""
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if sq001BadImports[path] {
					l.report(imp.Pos(), "SQ001", fmt.Sprintf(
						"import of %s in algorithm package %s: all randomness must flow through internal/xhash seeds (reproducibility)", path, p.rel))
				}
				if path == "time" {
					timeName = "time"
					if imp.Name != nil {
						timeName = imp.Name.Name
					}
				}
			}
			if timeName == "" || timeName == "_" || timeName == "." {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Now" {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName {
						l.report(call.Pos(), "SQ001", fmt.Sprintf(
							"time.Now() in algorithm package %s: timing belongs in internal/harness", p.rel))
					}
				}
				return true
			})
		}
	}
}
