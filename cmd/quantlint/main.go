// Command quantlint is the repo's static analyzer: fourteen numbered
// rules (SQ001–SQ014) encoding the invariants this codebase relies on
// but generic linters cannot know. SQ001–SQ009 and SQ014 are
// pure-syntax passes — seeded-randomness discipline, float comparison
// hygiene, panic-free hot paths, the internal/ layering, the
// Invariants() sanitizer contract for every registered summary, the
// decode-path hardening contract (no panics, no input-sized
// allocations without a guard) behind durable checkpoint recovery, the
// allocation discipline of the ingestion and query hot paths, the
// memory-layout discipline (columnar storage in the SoA summary
// packages, same-function sync.Pool Get/Put pairing), and the
// write-path memory-placement discipline (cache-line pads on hot
// structs sliced by value in internal/sharded, no package-level
// atomics). SQ010–SQ013 are type-aware: guarded-by
// lock discipline over `// guarded by mu` field annotations, unlock-
// path soundness over an intra-function CFG, ε-budget propagation
// through Merge implementations, and codec parity (marshal implies
// unmarshal + golden fixture + fuzz/crash-matrix seed) computed from
// the registry itself. Run `quantlint -rules` for the catalog.
//
// Usage:
//
//	quantlint [-json] [-strict] [-only SQ0NN[,SQ0NN...]] [-rules] [packages...]
//
// Packages follow the go tool's pattern shape (a directory, or dir/...
// for a recursive walk); the default is ./... from the current
// directory. Findings can be suppressed in place with a trailing or
// preceding comment naming one rule or a comma list:
//
//	//lint:ignore SQ003 reason the panic is part of the documented contract
//	//lint:ignore SQ002,SQ003 reason one waiver, two rules
//
// -strict additionally prints the suppressed findings, inventorying
// every ignore in the tree; the exit status still reflects only
// unsuppressed findings, so a tree whose every finding is waived stays
// green while the waivers stay visible. -only restricts the run to the
// named rules (their analyses alone execute). -json emits the findings
// as a JSON array. Exit status: 0 when clean, 1 on unsuppressed
// findings, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	strict := flag.Bool("strict", false, "also report findings suppressed by //lint:ignore")
	only := flag.String("only", "", "comma-separated rule ids to run (e.g. SQ010,SQ011); default all")
	listRules := flag.Bool("rules", false, "print the rule catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: quantlint [-json] [-strict] [-only SQ0NN[,SQ0NN...]] [-rules] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range ruleTable {
			fmt.Printf("%s  %s\n", r.id, r.doc)
		}
		return
	}

	var onlySet map[string]bool
	if *only != "" {
		onlySet = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if !knownRule(id) {
				fmt.Fprintf(os.Stderr, "quantlint: unknown rule %q (see quantlint -rules)\n", id)
				os.Exit(2)
			}
			onlySet[id] = true
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	base, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantlint: %v\n", err)
		os.Exit(2)
	}
	all, err := lintOnly(base, patterns, onlySet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantlint: %v\n", err)
		os.Exit(2)
	}

	visible := all[:0:0]
	active := 0
	for _, f := range all {
		if !f.Suppressed {
			active++
		}
		if !f.Suppressed || *strict {
			visible = append(visible, f)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if visible == nil {
			visible = []finding{}
		}
		if err := enc.Encode(visible); err != nil {
			fmt.Fprintf(os.Stderr, "quantlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range visible {
			fmt.Println(f)
		}
	}
	if active > 0 {
		os.Exit(1)
	}
}
