// Command quantlint is the repo's static analyzer: nine numbered rules
// (SQ001–SQ009) encoding the invariants this codebase relies on but
// generic linters cannot know — seeded-randomness discipline, float
// comparison hygiene, panic-free hot paths, the internal/ layering,
// the Invariants() sanitizer contract for every registered summary,
// the decode-path hardening contract (no panics, no input-sized
// allocations without a guard) behind durable checkpoint recovery,
// the allocation discipline of the ingestion and query hot paths, and
// the memory-layout discipline (columnar storage in the SoA summary
// packages, same-function sync.Pool Get/Put pairing).
//
// Usage:
//
//	quantlint [-json] [-strict] [packages...]
//
// Packages follow the go tool's pattern shape (a directory, or dir/...
// for a recursive walk); the default is ./... from the current
// directory. Findings can be suppressed in place with a trailing or
// preceding comment:
//
//	//lint:ignore SQ003 reason the panic is part of the documented contract
//
// -strict also prints (and fails on) suppressed findings, inventorying
// every ignore in the tree. -json emits the findings as a JSON array.
// Exit status: 0 when clean, 1 on findings, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	strict := flag.Bool("strict", false, "also report findings suppressed by //lint:ignore")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: quantlint [-json] [-strict] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	base, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantlint: %v\n", err)
		os.Exit(2)
	}
	all, err := lint(base, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantlint: %v\n", err)
		os.Exit(2)
	}

	visible := all[:0:0]
	for _, f := range all {
		if !f.Suppressed || *strict {
			visible = append(visible, f)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if visible == nil {
			visible = []finding{}
		}
		if err := enc.Encode(visible); err != nil {
			fmt.Fprintf(os.Stderr, "quantlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range visible {
			fmt.Println(f)
		}
	}
	if len(visible) > 0 {
		os.Exit(1)
	}
}
