// SQ010 — guarded-by discipline: annotated fields are only touched
// under their mutex.
package main

// checkSQ010 reports the guarded-field violations of the shared lock
// dataflow (locks.go): every read or write of a field annotated
// `// guarded by mu` must sit on a path where mu's Lock or RLock
// dominates it (a deferred unlock keeps the lock held through exit).
// Malformed annotations surface here too, so a typo cannot silently
// turn the checking off. Constructors (New*/new*) are exempt: they
// build the struct before it escapes.
func (l *linter) checkSQ010() {
	for _, p := range l.pkgs {
		for _, f := range l.lockAnalysis(p).sq010 {
			l.report(f.pos, "SQ010", f.msg)
		}
	}
}
