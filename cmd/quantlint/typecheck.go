// The lazy typed pass. quantlint stayed a pure-syntax linter through
// SQ009; the lock-discipline and eps-budget rules (SQ010-SQ012) need
// to resolve selector expressions to the fields and mutexes they name,
// so the engine now carries an on-demand go/types layer:
//
//   - module-local imports resolve through the linter's own package
//     loader (the same one the rules lint), recursively type-checked;
//   - standard-library imports delegate to the stdlib source importer
//     (importer.ForCompiler(fset, "source", nil)) — no binary export
//     data, no external dependencies, works in a bare GOPATH;
//   - type checking is error-tolerant: a package that fails to fully
//     check (a fixture module, a file mid-edit) still yields partial
//     Defs/Uses/Types maps, and the typed rules degrade gracefully
//     where information is missing rather than reporting noise.
//
// Nothing is type-checked until a rule asks: packages without lock
// calls, guard annotations or merge implementations never pay for it.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/types"
	"strings"
)

// typeInfo is the memoized result of type-checking one package.
// pkg may be non-nil even when checking hit errors (partial package);
// info's maps are filled for everything that did resolve.
type typeInfo struct {
	pkg  *types.Package
	info *types.Info
}

// typeOf returns the resolved type of e, or nil.
func (ti *typeInfo) typeOf(e ast.Expr) types.Type {
	if ti == nil {
		return nil
	}
	if tv, ok := ti.info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return nil
}

// typed type-checks p once, memoized; returns nil only on an import
// cycle (the caller treats that as "no type information").
func (l *linter) typed(p *pkgInfo) *typeInfo {
	if ti, ok := l.types[p]; ok {
		return ti
	}
	if l.checking[p] {
		return nil // import cycle: give up on this edge, not the run
	}
	l.checking[p] = true
	defer delete(l.checking, p)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l, mod: p.mod},
		Error:    func(error) {}, // tolerate: partial info beats no info
	}
	pkg, _ := conf.Check(p.importPath(), l.fset, p.files, info)
	ti := &typeInfo{pkg: pkg, info: info}
	l.types[p] = ti
	return ti
}

// moduleImporter resolves one package's imports during type checking:
// module-local paths through the linter's loader, everything else
// through the shared stdlib source importer.
type moduleImporter struct {
	l   *linter
	mod *module
}

func (mi *moduleImporter) Import(path string) (pkg *types.Package, err error) {
	if path == mi.mod.path || strings.HasPrefix(path, mi.mod.path+"/") {
		p, err := mi.l.loadByImport(mi.mod, path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("quantlint: cannot resolve module-local import %q", path)
		}
		ti := mi.l.typed(p)
		if ti == nil || ti.pkg == nil {
			return nil, fmt.Errorf("quantlint: cannot type-check %q", path)
		}
		return ti.pkg, nil
	}
	// The source importer parses stdlib packages from GOROOT; guard
	// against it panicking on an exotic toolchain layout — a missing
	// import just degrades the typed rules for this package.
	defer func() {
		if r := recover(); r != nil {
			pkg, err = nil, fmt.Errorf("quantlint: importing %q: %v", path, r)
		}
	}()
	return mi.l.stdImporter().Import(path)
}

// stdImporter lazily builds the shared source importer. It must share
// the linter's FileSet so positions stay consistent.
func (l *linter) stdImporter() types.Importer {
	if l.stdImp == nil {
		l.stdImp = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.stdImp
}
