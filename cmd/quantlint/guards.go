// The guarded-by annotation table. Two annotation forms feed the lock
// rules (SQ010/SQ011):
//
//	type wrapper struct {
//		mu sync.Mutex
//		s  Summary // guarded by mu
//	}
//
// A field's trailing (or doc) comment starting `guarded by <name>`
// binds it to a sibling mutex field of the same struct: every read or
// write of the field must then hold that mutex. And a helper whose doc
// comment contains a line that is exactly `locks <name>`:
//
//	// rlock takes the strongest lock queries need ...
//	// locks mu
//	func (c *wrapper) rlock() func() { ... }
//
// declares that calling it acquires the receiver's <name> mutex and
// returns the matching unlock — `defer c.rlock()()` therefore acquires
// at the defer statement and releases at function exit.
//
// The grammar is deliberately exact-match (a comment line must start
// with "guarded by", a locks line must be the whole line) so prose
// comments cannot accidentally annotate.
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guardTable maps one package's annotated objects.
type guardTable struct {
	// fields: annotated struct field -> name of the sibling mutex field
	// guarding it.
	fields map[types.Object]string
	// lockFuncs: `locks <mu>` helpers -> mutex field name their receiver
	// acquires.
	lockFuncs map[types.Object]string
	// bad collects malformed annotations (unknown sibling, non-mutex
	// guard); they surface as SQ010 findings so typos cannot silently
	// disable checking.
	bad []pendingFinding
}

// pendingFinding is a position+message pair a memoized analysis hands
// back to its reporting rule.
type pendingFinding struct {
	pos token.Pos
	msg string
}

// guardedByField extracts the guard name from a field's comments, or "".
func guardedByField(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "guarded by ")
			if !ok {
				continue
			}
			name := strings.Fields(rest)
			if len(name) > 0 {
				return name[0]
			}
		}
	}
	return ""
}

// locksAnnotation extracts the mutex name from a `locks <mu>` doc line,
// or "". The line must consist of exactly the keyword and the name.
func locksAnnotation(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		fields := strings.Fields(text)
		if len(fields) == 2 && fields[0] == "locks" {
			return fields[1]
		}
	}
	return ""
}

// buildGuardTable scans one package's struct declarations and function
// docs for annotations, resolving names through the typed pass.
func buildGuardTable(p *pkgInfo, ti *typeInfo) *guardTable {
	gt := &guardTable{
		fields:    map[types.Object]string{},
		lockFuncs: map[types.Object]string{},
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardedByField(field)
				if guard == "" || len(field.Names) == 0 {
					continue
				}
				sibling := structFieldNamed(st, guard)
				switch {
				case sibling == nil:
					gt.bad = append(gt.bad, pendingFinding{field.Pos(), fmt.Sprintf(
						"`guarded by %s` names no sibling field in this struct: the guard must be a mutex declared alongside the guarded field", guard)})
					continue
				case !isMutexField(sibling, ti):
					gt.bad = append(gt.bad, pendingFinding{field.Pos(), fmt.Sprintf(
						"`guarded by %s` names a non-mutex field: the guard must be a sync.Mutex or sync.RWMutex", guard)})
					continue
				}
				for _, name := range field.Names {
					if obj := ti.info.Defs[name]; obj != nil {
						gt.fields[obj] = guard
					}
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			guard := locksAnnotation(fd.Doc)
			if guard == "" {
				continue
			}
			if obj := ti.info.Defs[fd.Name]; obj != nil {
				gt.lockFuncs[obj] = guard
			}
		}
	}
	return gt
}

// structFieldNamed finds the field of st declaring name.
func structFieldNamed(st *ast.StructType, name string) *ast.Field {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return f
			}
		}
	}
	return nil
}

// isMutexField reports whether the field's type is sync.Mutex or
// sync.RWMutex (typed when possible, syntactic as fallback).
func isMutexField(f *ast.Field, ti *typeInfo) bool {
	if t := ti.typeOf(f.Type); t != nil {
		return isMutexType(t)
	}
	sel, ok := f.Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
