package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current linter output")

// lintFixture runs the engine over one testdata module with findings
// reported relative to that module, exactly as the CLI would from
// inside it.
func lintFixture(t *testing.T, name string) []finding {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lint(base, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func render(fs []finding, includeSuppressed bool) string {
	var b strings.Builder
	for _, f := range fs {
		if f.Suppressed && !includeSuppressed {
			continue
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (rerun with -update to accept):\ngot:\n%swant:\n%s", path, got, want)
	}
}

// TestBadModuleGolden pins the default (unsuppressed) output over the
// deliberately rule-violating fixture module.
func TestBadModuleGolden(t *testing.T) {
	checkGolden(t, "bad.txt", render(lintFixture(t, "bad"), false))
}

// TestBadModuleStrictGolden pins the -strict output, which additionally
// inventories the findings waived by //lint:ignore directives.
func TestBadModuleStrictGolden(t *testing.T) {
	checkGolden(t, "bad_strict.txt", render(lintFixture(t, "bad"), true))
}

// TestEachRuleFiresExactlyOnce asserts the fixture's design: every
// package internal/sqNNN trips rule SQNNN and nothing else (SQ005 is
// attributed to the registration site in quantiles.go), the cmd/ and
// harness layers are silent, and every rule fires somewhere.
func TestEachRuleFiresExactlyOnce(t *testing.T) {
	fs := lintFixture(t, "bad")
	rulesByPrefix := map[string]map[string]bool{}
	for _, f := range fs {
		if f.Suppressed {
			continue
		}
		prefix := f.File
		if i := strings.LastIndex(f.File, "/"); i >= 0 {
			prefix = f.File[:i]
		}
		m := rulesByPrefix[prefix]
		if m == nil {
			m = map[string]bool{}
			rulesByPrefix[prefix] = m
		}
		m[f.Rule] = true
	}
	want := map[string]string{
		"internal/sq001":   "SQ001",
		"internal/sq002":   "SQ002",
		"internal/sq003":   "SQ003",
		"internal/sq004":   "SQ004",
		"internal/sq006":   "SQ006",
		"internal/sq007":   "SQ007",
		"internal/sq008":   "SQ008",
		"internal/sq009":   "SQ009", // the pool-pairing half
		"internal/gk":      "SQ009", // the columnar-layout half fires at a columnar path
		"internal/ignored": "SQ000", // the malformed directive
		"quantiles.go":     "SQ005",
	}
	for prefix, rule := range want {
		m := rulesByPrefix[prefix]
		if len(m) != 1 || !m[rule] {
			t.Errorf("%s: want exactly rule %s, got %v", prefix, rule, m)
		}
	}
	for prefix := range rulesByPrefix {
		if _, ok := want[prefix]; !ok {
			t.Errorf("unexpected findings outside the designed packages: %s -> %v", prefix, rulesByPrefix[prefix])
		}
	}
}

// TestSuppressionStyles verifies both directive placements — the line
// before the finding and a trailing comment on the finding's line — and
// that the reason is carried through.
func TestSuppressionStyles(t *testing.T) {
	var suppressed []finding
	for _, f := range lintFixture(t, "bad") {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("want the 2 waived findings of internal/ignored, got %d: %v", len(suppressed), suppressed)
	}
	rules := map[string]bool{}
	for _, f := range suppressed {
		rules[f.Rule] = true
		if !strings.HasPrefix(f.File, "internal/ignored/") {
			t.Errorf("suppressed finding outside internal/ignored: %v", f)
		}
		if !strings.HasPrefix(f.Reason, "fixture:") {
			t.Errorf("directive reason not carried through: %q", f.Reason)
		}
	}
	if !rules["SQ002"] || !rules["SQ003"] {
		t.Errorf("want one suppressed SQ002 (same-line) and one SQ003 (preceding line), got %v", rules)
	}
}

// TestCleanModuleIsSilent pins the zero-findings contract on the
// rule-abiding fixture.
func TestCleanModuleIsSilent(t *testing.T) {
	if fs := lintFixture(t, "clean"); len(fs) != 0 {
		t.Errorf("clean module produced findings: %s", render(fs, true))
	}
}

// TestRepoIsLintClean runs the linter over the real repository: HEAD
// must stay free of unsuppressed findings (the same gate `make lint`
// enforces).
func TestRepoIsLintClean(t *testing.T) {
	base, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lint(base, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if active := render(fs, false); active != "" {
		t.Errorf("repository is not lint-clean:\n%s", active)
	}
}
