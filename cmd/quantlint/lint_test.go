package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current linter output")

// lintFixture runs the engine over one testdata module with findings
// reported relative to that module, exactly as the CLI would from
// inside it.
func lintFixture(t *testing.T, name string) []finding {
	t.Helper()
	base, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lint(base, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func render(fs []finding, includeSuppressed bool) string {
	var b strings.Builder
	for _, f := range fs {
		if f.Suppressed && !includeSuppressed {
			continue
		}
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (rerun with -update to accept):\ngot:\n%swant:\n%s", path, got, want)
	}
}

// TestBadModuleGolden pins the default (unsuppressed) output over the
// deliberately rule-violating fixture module.
func TestBadModuleGolden(t *testing.T) {
	checkGolden(t, "bad.txt", render(lintFixture(t, "bad"), false))
}

// TestBadModuleStrictGolden pins the -strict output, which additionally
// inventories the findings waived by //lint:ignore directives.
func TestBadModuleStrictGolden(t *testing.T) {
	checkGolden(t, "bad_strict.txt", render(lintFixture(t, "bad"), true))
}

// TestEachRuleFiresExactlyOnce asserts the fixture's design: every
// package internal/sqNNN trips rule SQNNN and nothing else (SQ005 is
// attributed to the registration site in quantiles.go), the cmd/ and
// harness layers are silent, and every rule fires somewhere.
func TestEachRuleFiresExactlyOnce(t *testing.T) {
	fs := lintFixture(t, "bad")
	rulesByPrefix := map[string]map[string]bool{}
	for _, f := range fs {
		if f.Suppressed {
			continue
		}
		prefix := f.File
		if i := strings.LastIndex(f.File, "/"); i >= 0 {
			prefix = f.File[:i]
		}
		m := rulesByPrefix[prefix]
		if m == nil {
			m = map[string]bool{}
			rulesByPrefix[prefix] = m
		}
		m[f.Rule] = true
	}
	want := map[string]string{
		"internal/sq001":      "SQ001",
		"internal/sq002":      "SQ002",
		"internal/sq003":      "SQ003",
		"internal/sq004":      "SQ004",
		"internal/sq006":      "SQ006",
		"internal/sq007":      "SQ007",
		"internal/sq008":      "SQ008",
		"internal/sq009":      "SQ009", // the pool-pairing half
		"internal/sq010":      "SQ010",
		"internal/sq011":      "SQ011",
		"internal/sq012":      "SQ012",
		"internal/sq013":      "SQ013", // anchored at the target's MarshalBinary
		"internal/gk":         "SQ009", // the columnar-layout half fires at a columnar path
		"internal/sharded":    "SQ014", // the placement rule fires at its scoped path
		"internal/checkpoint": "SQ015", // the fan-out rule fires at its scoped path
		"internal/ignored":    "SQ000", // the malformed directive
		"quantiles.go":        "SQ005",
	}
	for prefix, rule := range want {
		m := rulesByPrefix[prefix]
		if len(m) != 1 || !m[rule] {
			t.Errorf("%s: want exactly rule %s, got %v", prefix, rule, m)
		}
	}
	for prefix := range rulesByPrefix {
		if _, ok := want[prefix]; !ok {
			t.Errorf("unexpected findings outside the designed packages: %s -> %v", prefix, rulesByPrefix[prefix])
		}
	}
}

// TestSuppressionStyles verifies the directive placements — the line
// before the finding, a trailing comment on the finding's line, and a
// comma list waiving two rules at once — and that the reason is carried
// through.
func TestSuppressionStyles(t *testing.T) {
	var suppressed []finding
	for _, f := range lintFixture(t, "bad") {
		if f.Suppressed {
			suppressed = append(suppressed, f)
		}
	}
	if len(suppressed) != 4 {
		t.Fatalf("want the 4 waived findings of internal/ignored, got %d: %v", len(suppressed), suppressed)
	}
	counts := map[string]int{}
	for _, f := range suppressed {
		counts[f.Rule]++
		if !strings.HasPrefix(f.File, "internal/ignored/") {
			t.Errorf("suppressed finding outside internal/ignored: %v", f)
		}
		if !strings.HasPrefix(f.Reason, "fixture:") {
			t.Errorf("directive reason not carried through: %q", f.Reason)
		}
	}
	if counts["SQ002"] != 2 || counts["SQ003"] != 2 {
		t.Errorf("want 2 suppressed SQ002 and 2 SQ003 (single directives plus the comma list), got %v", counts)
	}
}

// TestCleanModuleIsSilent pins the zero-findings contract on the
// rule-abiding fixture.
func TestCleanModuleIsSilent(t *testing.T) {
	if fs := lintFixture(t, "clean"); len(fs) != 0 {
		t.Errorf("clean module produced findings: %s", render(fs, true))
	}
}

// TestRepoIsLintClean runs the linter over the real repository: HEAD
// must stay free of unsuppressed findings (the same gate `make lint`
// enforces).
func TestRepoIsLintClean(t *testing.T) {
	base, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lint(base, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if active := render(fs, false); active != "" {
		t.Errorf("repository is not lint-clean:\n%s", active)
	}
}

// TestRuleTable pins the catalog `-rules` prints: ids are SQ001..SQ015
// in order, each with a one-line doc, and knownRule accepts exactly
// them plus the SQ000 pseudo-rule.
func TestRuleTable(t *testing.T) {
	if len(ruleTable) != 15 {
		t.Fatalf("want 15 registered rules, got %d", len(ruleTable))
	}
	for i, r := range ruleTable {
		wantID := fmt.Sprintf("SQ%03d", i+1)
		if r.id != wantID {
			t.Errorf("ruleTable[%d].id = %s, want %s", i, r.id, wantID)
		}
		if r.doc == "" || r.run == nil {
			t.Errorf("%s: missing doc or run", r.id)
		}
		if !knownRule(r.id) {
			t.Errorf("knownRule(%s) = false", r.id)
		}
	}
	if !knownRule("SQ000") {
		t.Error("knownRule(SQ000) = false: the directive pseudo-rule must be addressable")
	}
	if knownRule("SQ016") || knownRule("nonsense") {
		t.Error("knownRule accepts ids that do not exist")
	}
}

// TestOnlyFilter checks -only's contract on the bad module: restricted
// to SQ011, the output holds that rule's finding (plus SQ000, the
// engine's own directive diagnostics) and nothing else.
func TestOnlyFilter(t *testing.T) {
	base, err := filepath.Abs(filepath.Join("testdata", "bad"))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lintOnly(base, []string{"./..."}, map[string]bool{"SQ011": true})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range fs {
		counts[f.Rule]++
	}
	if counts["SQ011"] != 1 {
		t.Errorf("want exactly the one SQ011 finding, got %v", counts)
	}
	for rule := range counts {
		if rule != "SQ011" && rule != "SQ000" {
			t.Errorf("-only SQ011 leaked rule %s into the output: %v", rule, counts)
		}
	}
}

// TestNewRulesCleanOnRepo is the tree-health self-check for the typed
// rules alone: the real repository must be clean under SQ010–SQ013
// with no waivers at all (the lock, eps and codec disciplines hold
// everywhere, not just modulo ignores).
func TestNewRulesCleanOnRepo(t *testing.T) {
	base, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lintOnly(base, []string{"./..."}, map[string]bool{
		"SQ010": true, "SQ011": true, "SQ012": true, "SQ013": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := render(fs, true); out != "" {
		t.Errorf("typed rules report findings on the real tree:\n%s", out)
	}
}

// TestStrippedDeferIsCaught is the negative control for the lock
// analysis: copy the repository, delete one `defer c.mu.Unlock()` from
// safe.go, and SQ011 must report the leaked lock. If this test fails,
// the dataflow has gone blind — a green SQ011 over the real tree would
// mean nothing.
func TestStrippedDeferIsCaught(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	stripped := false
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "cmd", "testdata", ".github":
				if rel != "." {
					return filepath.SkipDir
				}
			}
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(tmp, rel), 0o755)
		}
		if !strings.HasSuffix(d.Name(), ".go") && d.Name() != "go.mod" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if rel == "safe.go" {
			const target = "defer c.mu.Unlock()"
			idx := strings.Index(string(data), target)
			if idx < 0 {
				t.Fatalf("safe.go no longer contains %q; update this test's mutation", target)
			}
			data = append(data[:idx], data[idx+len(target):]...)
			stripped = true
		}
		return os.WriteFile(filepath.Join(tmp, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stripped {
		t.Fatal("copy finished without mutating safe.go")
	}
	fs, err := lintOnly(tmp, []string{"./..."}, map[string]bool{"SQ011": true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fs {
		if f.Rule == "SQ011" && f.File == "safe.go" {
			found = true
		}
	}
	if !found {
		t.Errorf("stripping a defer unlock from safe.go produced no SQ011 finding; got: %s", render(fs, true))
	}
}
