package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamquantiles/internal/core"
	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/gk"
	"streamquantiles/internal/kll"
	"streamquantiles/internal/mrl"
	"streamquantiles/internal/ols"
	"streamquantiles/internal/qdigest"
	"streamquantiles/internal/randalg"
	"streamquantiles/internal/sharded"
	"streamquantiles/internal/snapshot"
	"streamquantiles/internal/streamgen"
)

// The query mode measures what the read path buys on this machine,
// mirroring the ingest mode's protocol: a JSON report (BENCH_query.json
// at the repo root is the committed baseline) and a -query-compare mode
// that checks only machine-portable speedup ratios, never absolute
// rates. Three ratios per summary:
//
//   - batch_speedup: one single-pass QuantileBatch over k fractions vs
//     k independent Quantile calls.
//   - cached_speedup: one round of the same k queries answered from a
//     cached query snapshot (exact for Snapshotter families, ε/2-grid
//     for the rest, one solved ols.Post for dcs+post) vs the per-φ
//     baseline.
//
// And per sharded configuration, the epoch cache's payoff: a query
// against an unchanged sharded summary (cache hit) vs a query forced to
// re-fold all shards (a write in between retires the cache).

// queryReport is the schema of BENCH_query.json.
type queryReport struct {
	N          int            `json:"n"`
	Phis       int            `json:"phis"`
	Rounds     int            `json:"rounds"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numcpu"`
	GoVersion  string         `json:"goversion"`
	Workload   string         `json:"workload"`
	Summaries  []querySummary `json:"summaries"`
	Sharded    []queryShard   `json:"sharded"`
}

// querySummary is one summary's extraction measurement: microseconds
// per full k-fraction extraction, by path.
type querySummary struct {
	Name          string  `json:"name"`
	PerPhiUs      float64 `json:"per_phi_us"`
	BatchUs       float64 `json:"batch_us"`
	BatchSpeedup  float64 `json:"batch_speedup"`
	CachedUs      float64 `json:"cached_us"`
	CachedSpeedup float64 `json:"cached_speedup"`
	CachedExact   bool    `json:"cached_exact"`
}

// queryShard is one sharded configuration's fold-cache measurement:
// microseconds per single quantile query, cold (every query preceded by
// a write, so the epoch cache misses and the shards re-fold in
// parallel) vs hot (quiet summary, cache hit).
type queryShard struct {
	Name     string  `json:"name"`
	Shards   int     `json:"p"`
	ColdUs   float64 `json:"cold_us"`
	HotUs    float64 `json:"hot_us"`
	HotSpeed float64 `json:"hot_speedup"`
}

// queryFns are the three timed paths of one roster entry, each running
// one full extraction of the given fractions.
type queryFns struct {
	perPhi      func(phis []float64)
	batch       func(phis []float64)
	cached      func(phis []float64)
	cachedExact bool
}

// summaryQueryFns builds the three paths for a plain summary. The
// cached path answers from a snapshot.Cached view built once (exact
// when the summary flattens exactly, ε/2-grid otherwise — gridEps is
// that fallback's spacing).
func summaryQueryFns(s core.Summary, gridEps float64) *queryFns {
	c := snapshot.NewCached(s, gridEps)
	return &queryFns{
		perPhi: func(phis []float64) {
			for _, phi := range phis {
				s.Quantile(phi)
			}
		},
		batch: func(phis []float64) { core.QuantileBatch(s, phis) },
		cached: func(phis []float64) {
			for _, phi := range phis {
				c.Quantile(phi)
			}
		},
		cachedExact: c.Exact(),
	}
}

// queryCases is the query-mode roster: the ingest rosters' summaries
// (identical configurations) plus dcs+post, the study's §4.3.3
// post-processed DCS — its per-φ baseline re-solves the BLUE tree per
// query, which is exactly the cost the one-solve-per-snapshot batch
// path amortizes away.
var queryCases = []struct {
	name  string
	setup func(data []uint64) *queryFns
}{
	{"gkadaptive", func(data []uint64) *queryFns { return cashFns(gk.NewAdaptive(0.001), data) }},
	{"gktheory", func(data []uint64) *queryFns { return cashFns(gk.NewTheory(0.001), data) }},
	{"gkarray", func(data []uint64) *queryFns { return cashFns(gk.NewArray(0.001), data) }},
	{"gkbiased", func(data []uint64) *queryFns { return cashFns(gk.NewBiased(0.001), data) }},
	{"qdigest", func(data []uint64) *queryFns { return cashFns(qdigest.New(0.001, 24), data) }},
	{"mrl99", func(data []uint64) *queryFns { return cashFns(mrl.New(0.001, 7), data) }},
	{"random", func(data []uint64) *queryFns { return cashFns(randalg.New(0.001, 7), data) }},
	{"kll", func(data []uint64) *queryFns { return cashFns(kll.New(0.001, 7), data) }},
	{"dcm", func(data []uint64) *queryFns {
		return turnFns(dyadic.New(dyadic.DCM, 0.005, 24, dyadic.Config{Seed: 7}), data)
	}},
	{"dcs", func(data []uint64) *queryFns {
		return turnFns(dyadic.New(dyadic.DCS, 0.005, 24, dyadic.Config{Seed: 7}), data)
	}},
	{"drss", func(data []uint64) *queryFns {
		return turnFns(dyadic.New(dyadic.DRSS, 0.005, 24, dyadic.Config{Seed: 7}), data)
	}},
	{"dcs+post", func(data []uint64) *queryFns {
		sk := dyadic.New(dyadic.DCS, 0.005, 24, dyadic.Config{Seed: 7})
		core.InsertBatch(sk, data)
		solved := ols.Process(sk, 0)
		return &queryFns{
			perPhi: func(phis []float64) {
				for _, phi := range phis {
					ols.Process(sk, 0).Quantile(phi) // the paper's per-query solve
				}
			},
			batch:       func(phis []float64) { ols.Process(sk, 0).QuantileBatch(phis) },
			cached:      func(phis []float64) { solved.QuantileBatch(phis) },
			cachedExact: true, // one Post IS the snapshot; no grid involved
		}
	}},
}

func cashFns(s core.CashRegister, data []uint64) *queryFns {
	core.UpdateBatch(s, data)
	return summaryQueryFns(s, 0.0005)
}

func turnFns(s core.Turnstile, data []uint64) *queryFns {
	core.InsertBatch(s, data)
	return summaryQueryFns(s, 0.0025)
}

// runQuery measures everything runs times, keeps the conservative
// merge (see mergeQueryReports), and writes the report. CI runs once;
// the committed baseline uses several runs so its ratios lower-bound a
// typical run and the compare tolerance absorbs machine noise instead
// of stacking on top of a lucky baseline.
func runQuery(n, k, runs int, out string) {
	if runs <= 0 {
		runs = 1
	}
	rep := measureQuery(n, k)
	for r := 1; r < runs; r++ {
		fmt.Fprintf(os.Stderr, "-- run %d/%d --\n", r+1, runs)
		rep = mergeQueryReports(rep, measureQuery(n, k))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("query: %v", err)
	}
	blob = append(blob, '\n')
	if out == "" || out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatalf("query: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

// measureQuery runs one full measurement pass.
func measureQuery(n, k int) queryReport {
	if n <= 0 {
		n = 2_000_000
	}
	if k <= 0 {
		k = 100
	}
	// Round cap, not count: measureRounds stops a trial after ~250ms, so
	// microsecond paths run tens of thousands of rounds (stable timing)
	// while the second-scale per-φ baselines run one.
	const rounds = 1 << 16
	gen := streamgen.Uniform{Bits: 24, Seed: 1}
	data := streamgen.Generate(gen, n)
	phis := make([]float64, k)
	for i := range phis {
		phis[i] = float64(i+1) / float64(k+1)
	}
	rep := queryReport{
		N:          n,
		Phis:       k,
		Rounds:     rounds,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Workload:   gen.Name(),
	}

	for _, tc := range queryCases {
		fns := tc.setup(data)
		fns.cached(phis) // warm: build the snapshot outside the timed rounds
		perPhi := measureRounds(rounds, func() { fns.perPhi(phis) })
		batch := measureRounds(rounds, func() { fns.batch(phis) })
		cached := measureRounds(rounds, func() { fns.cached(phis) })
		rep.Summaries = append(rep.Summaries, querySummary{
			Name:          tc.name,
			PerPhiUs:      us(perPhi),
			BatchUs:       us(batch),
			BatchSpeedup:  perPhi.Seconds() / batch.Seconds(),
			CachedUs:      us(cached),
			CachedSpeedup: perPhi.Seconds() / cached.Seconds(),
			CachedExact:   fns.cachedExact,
		})
		fmt.Fprintf(os.Stderr, "%-12s per-phi %10.1f us   batch %10.1f us (%5.1fx)   cached %8.1f us (%5.1fx)\n",
			tc.name, us(perPhi), us(batch), perPhi.Seconds()/batch.Seconds(),
			us(cached), perPhi.Seconds()/cached.Seconds())
	}

	// Sharded fold cache: cold = a one-element write before every query
	// retires the epoch cache, so each query re-folds all P shards (in
	// parallel); hot = quiet summary, every query reuses the fold.
	const p = 4
	for _, tc := range []struct {
		name  string
		setup func() (query func(), dirty func())
	}{
		{"sharded/gkarray", func() (func(), func()) {
			s, err := sharded.NewCashRegister(p, func() core.CashRegister { return gk.NewArray(0.001) })
			if err != nil {
				panic(err)
			}
			forBatches(data, 4096, s.UpdateBatch)
			return func() { s.Quantile(0.5) }, func() { s.Update(data[0]) }
		}},
		{"sharded/dcs", func() (func(), func()) {
			s, err := sharded.NewTurnstile(p, func() core.Turnstile {
				return dyadic.New(dyadic.DCS, 0.005, 24, dyadic.Config{Seed: 7})
			})
			if err != nil {
				panic(err)
			}
			forBatches(data, 4096, s.InsertBatch)
			return func() { s.Quantile(0.5) }, func() { s.Insert(data[0]) }
		}},
	} {
		query, dirty := tc.setup()
		query() // warm
		cold := measureRounds(rounds, func() { dirty(); query() })
		hot := measureRounds(rounds, query)
		rep.Sharded = append(rep.Sharded, queryShard{
			Name: tc.name, Shards: p,
			ColdUs: us(cold), HotUs: us(hot), HotSpeed: cold.Seconds() / hot.Seconds(),
		})
		fmt.Fprintf(os.Stderr, "%-16s P=%d  cold %10.1f us   hot %8.1f us   %6.1fx\n",
			tc.name, p, us(cold), us(hot), cold.Seconds()/hot.Seconds())
	}
	return rep
}

// mergeQueryReports folds run b into a conservatively: per row it keeps
// the *fastest* observed baseline (min per-φ / cold µs) and the
// *slowest* observed optimized path (max batch / cached / hot µs), then
// recomputes the speedups from those. The merged ratio lower-bounds
// every individual run's ratio, so a baseline built from several runs
// sets compare floors that a typical CI run clears even when one
// measurement lands on a throttled scheduler slice.
func mergeQueryReports(a, b queryReport) queryReport {
	bBy := map[string]querySummary{}
	for _, s := range b.Summaries {
		bBy[s.Name] = s
	}
	for i, s := range a.Summaries {
		o, ok := bBy[s.Name]
		if !ok {
			continue
		}
		s.PerPhiUs = min(s.PerPhiUs, o.PerPhiUs)
		s.BatchUs = max(s.BatchUs, o.BatchUs)
		s.CachedUs = max(s.CachedUs, o.CachedUs)
		s.BatchSpeedup = s.PerPhiUs / s.BatchUs
		s.CachedSpeedup = s.PerPhiUs / s.CachedUs
		a.Summaries[i] = s
	}
	bSh := map[string]queryShard{}
	for _, s := range b.Sharded {
		bSh[s.Name] = s
	}
	for i, s := range a.Sharded {
		o, ok := bSh[s.Name]
		if !ok {
			continue
		}
		s.ColdUs = min(s.ColdUs, o.ColdUs)
		s.HotUs = max(s.HotUs, o.HotUs)
		s.HotSpeed = s.ColdUs / s.HotUs
		a.Sharded[i] = s
	}
	return a
}

// measureRounds times fn and returns the per-round duration, keeping
// the fastest of three trials (same correction as measure — shared
// runners jitter, the min is the standard fix — with one more trial
// than the ingest bench because the compared quantities here are ratios
// of microsecond-scale paths, where a single throttled trial skews the
// ratio outside the compare tolerance). A trial stops early once it has
// run for ~250ms — the slow per-φ baselines (QDigest re-walks its whole
// tree per query) already dwarf timer noise in one round, and capping
// keeps the full report to seconds at n in the millions.
func measureRounds(maxRounds int, fn func()) time.Duration {
	var best time.Duration
	for r := 0; r < 3; r++ {
		start := time.Now()
		done := 0
		for i := 0; i < maxRounds; i++ {
			fn()
			done++
			if time.Since(start) > 250*time.Millisecond {
				break
			}
		}
		el := time.Since(start) / time.Duration(done)
		if r == 0 || el < best {
			best = el
		}
	}
	return best
}

func us(d time.Duration) float64 { return d.Seconds() * 1e6 }

// runQueryCompare fails (exit 1) when any speedup ratio in the new
// report regressed more than tolFrac below the baseline's. Only ratios
// are compared — absolute µs depend on the machine, but "batching buys
// k×" and "the snapshot cache buys m×" are properties of the code.
func runQueryCompare(oldPath, newPath string, tolFrac float64) {
	oldRep, err := readQuery(oldPath)
	if err != nil {
		fatalf("query-compare: %v", err)
	}
	newRep, err := readQuery(newPath)
	if err != nil {
		fatalf("query-compare: %v", err)
	}
	oldBy := map[string]querySummary{}
	for _, s := range oldRep.Summaries {
		oldBy[s.Name] = s
	}
	failed := false
	check := func(name, what string, got, base float64) {
		limit := base * (1 - tolFrac)
		status := "ok"
		if got < limit {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-12s %-9s %s %.2fx vs baseline %.2fx (floor %.2fx)\n",
			name, status, what, got, base, limit)
	}
	for _, s := range newRep.Summaries {
		o, ok := oldBy[s.Name]
		if !ok {
			fmt.Printf("%-12s NEW      batch %.2fx cached %.2fx (no baseline)\n", s.Name, s.BatchSpeedup, s.CachedSpeedup)
			continue
		}
		check(s.Name, "batch speedup ", s.BatchSpeedup, o.BatchSpeedup)
		check(s.Name, "cached speedup", s.CachedSpeedup, o.CachedSpeedup)
	}
	oldSh := map[string]queryShard{}
	for _, s := range oldRep.Sharded {
		oldSh[s.Name] = s
	}
	for _, s := range newRep.Sharded {
		o, ok := oldSh[s.Name]
		if !ok {
			fmt.Printf("%-16s NEW      hot speedup %.2fx (no baseline)\n", s.Name, s.HotSpeed)
			continue
		}
		check(s.Name, "hot speedup   ", s.HotSpeed, o.HotSpeed)
	}
	if failed {
		fatalf("query-compare: a query speedup regressed more than %.0f%%", tolFrac*100)
	}
}

func readQuery(path string) (*queryReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep queryReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
