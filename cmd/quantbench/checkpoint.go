package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"streamquantiles/internal/checkpoint"
	"streamquantiles/internal/core"
	"streamquantiles/internal/faultio"
	"streamquantiles/internal/gk"
	"streamquantiles/internal/kll"
	"streamquantiles/internal/sharded"
	"streamquantiles/internal/streamgen"
)

// The checkpoint mode measures the durability path: how fast a sharded
// container saves (per-shard fan-out marshal + framed write) and
// recovers (pipelined frame verification + fan-out decode), swept over
// worker counts P = 1/4/16/64 at a fixed 64-shard topology. Results
// land in BENCH_checkpoint.json; -checkpoint-compare gates on *scaling
// efficiency*, the same machine-portable normalization as
// -parallel-compare:
//
//	efficiency(P) = rate(P) / (rate(1) × min(P, GOMAXPROCS))
//
// On a 1-core runner min(P, GOMAXPROCS) = 1 and every P's efficiency
// measures pure fan-out overhead (should stay ≈ 1.0 — the pool runs
// inline); on a 4-core runner an efficiency floor of 0.75 at P ≥ 4
// demands ≥ 3x the sequential save and recover rate. One committed
// baseline therefore gates both machines. Efficiency is clamped at 1.0
// so cache effects cannot set floors no honest machine clears.

// checkpointReport is the schema of BENCH_checkpoint.json.
type checkpointReport struct {
	N          int             `json:"n"`
	Shards     int             `json:"shards"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	GoVersion  string          `json:"goversion"`
	Workload   string          `json:"workload"`
	Rows       []checkpointRow `json:"rows"`
}

// checkpointRow is one (summary, op, worker-count) measurement. Melems
// normalizes the wall time by the n elements the container summarizes,
// so rates are comparable across ops and containers.
type checkpointRow struct {
	Name    string  `json:"name"`
	Op      string  `json:"op"` // "save" or "recover"
	Workers int     `json:"workers"`
	Melems  float64 `json:"melems_per_s"`
	// Efficiency is Melems / (rate(1) × min(Workers, GOMAXPROCS)):
	// 1.0 is perfect scaling on this machine's cores.
	Efficiency float64 `json:"efficiency"`
}

// checkpointWorkerCounts is the sweep the issue pins: sequential plus
// three fan-out widths bracketing any plausible core count.
var checkpointWorkerCounts = []int{1, 4, 16, 64}

// checkpointShards is the fixed topology: enough parts that every
// swept worker count has parallel work available.
const checkpointShards = 64

// checkpointCases are the container rosters: one mergeable family
// (KLL) and one whose shrink freezes rank components (GKArray) — the
// two shapes the fan-out dispatches.
var checkpointCases = []struct {
	name  string
	fresh func() core.CashRegister
}{
	{"kll", func() core.CashRegister { return kll.New(0.001, 7) }},
	{"gkarray", func() core.CashRegister { return gk.NewArray(0.001) }},
}

// runCheckpoint measures everything runs times, keeps the conservative
// merge (see mergeCheckpointReports), and writes the report.
func runCheckpoint(n, runs int, out string) {
	if runs <= 0 {
		runs = 1
	}
	rep := measureCheckpoint(n)
	for r := 1; r < runs; r++ {
		fmt.Fprintf(os.Stderr, "-- run %d/%d --\n", r+1, runs)
		rep = mergeCheckpointReports(rep, measureCheckpoint(n))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("checkpoint: %v", err)
	}
	blob = append(blob, '\n')
	if out == "" || out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatalf("checkpoint: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

// measureCheckpoint runs one full save/recover sweep.
func measureCheckpoint(n int) checkpointReport {
	if n <= 0 {
		n = 2_000_000
	}
	gen := streamgen.Uniform{Bits: 24, Seed: 1}
	data := streamgen.Generate(gen, n)
	maxprocs := runtime.GOMAXPROCS(0)
	rep := checkpointReport{
		N:          n,
		Shards:     checkpointShards,
		GOMAXPROCS: maxprocs,
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Workload:   gen.Name(),
	}
	for _, tc := range checkpointCases {
		s, err := sharded.NewCashRegister(checkpointShards, tc.fresh)
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		const batch = 4096
		for lo := 0; lo < len(data); lo += batch {
			hi := min(lo+batch, len(data))
			s.UpdateBatch(data[lo:hi])
		}
		payload, err := s.MarshalBinaryWorkers(1)
		if err != nil {
			fatalf("checkpoint: %v", err)
		}

		var saveBase, recBase float64
		for _, w := range checkpointWorkerCounts {
			saveRate := melems(n, measureSave(s, w))
			recRate := melems(n, measureRecover(tc.fresh, payload, w))
			if w == 1 {
				saveBase, recBase = saveRate, recRate
			}
			cores := min(float64(w), float64(maxprocs))
			saveEff, recEff := 1.0, 1.0
			if saveBase > 0 && cores > 0 {
				saveEff = min(saveRate/(saveBase*cores), 1.0)
			}
			if recBase > 0 && cores > 0 {
				recEff = min(recRate/(recBase*cores), 1.0)
			}
			rep.Rows = append(rep.Rows,
				checkpointRow{Name: tc.name, Op: "save", Workers: w, Melems: saveRate, Efficiency: saveEff},
				checkpointRow{Name: tc.name, Op: "recover", Workers: w, Melems: recRate, Efficiency: recEff})
			fmt.Fprintf(os.Stderr, "%-10s P=%-3d save %8.2f Melem/s (eff %.2f)   recover %8.2f Melem/s (eff %.2f)\n",
				tc.name, w, saveRate, saveEff, recRate, recEff)
		}
	}
	return rep
}

// measureSave times one full durable save — fan-out marshal plus the
// framed, checksummed write — into an in-memory filesystem, so the
// measurement isolates the CPU path from device speed. Fastest of
// four — a single save is milliseconds, so extra trials are cheap and
// damp GC noise.
func measureSave(s *sharded.CashRegister, workers int) time.Duration {
	var best time.Duration
	for r := 0; r < 4; r++ {
		ck, err := checkpoint.Open("/bench", checkpoint.WithFS(faultio.NewMemFS()))
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		start := time.Now()
		blob, err := s.MarshalBinaryWorkers(workers)
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		if _, err := ck.Save("bench", blob); err != nil {
			fatalf("checkpoint: %v", err)
		}
		if el := time.Since(start); r == 0 || el < best {
			best = el
		}
	}
	return best
}

// measureRecover times one full recovery — candidate scan, pipelined
// CRC verification, fan-out decode into a fresh container. Fastest of
// four.
func measureRecover(fresh func() core.CashRegister, payload []byte, workers int) time.Duration {
	mem := faultio.NewMemFS()
	ck, err := checkpoint.Open("/bench", checkpoint.WithFS(mem))
	if err != nil {
		fatalf("checkpoint: %v", err)
	}
	if _, err := ck.Save("bench", payload); err != nil {
		fatalf("checkpoint: %v", err)
	}
	var best time.Duration
	for r := 0; r < 4; r++ {
		target, err := sharded.NewCashRegister(1, fresh)
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		start := time.Now()
		got, _, err := checkpoint.Recover(mem, "/bench", nil)
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		if err := target.UnmarshalBinaryWorkers(got, workers); err != nil {
			fatalf("checkpoint: %v", err)
		}
		if el := time.Since(start); r == 0 || el < best {
			best = el
		}
	}
	return best
}

// mergeCheckpointReports folds run b into a conservatively: per
// (name, op, workers) row it keeps the *fastest* sequential rate and
// the *slowest* fan-out rate, then recomputes efficiency from the
// merged rows — the merged efficiency lower-bounds every individual
// run's, so the committed baseline sets floors a typical CI run clears.
func mergeCheckpointReports(a, b checkpointReport) checkpointReport {
	type key struct {
		name, op string
		w        int
	}
	bBy := map[key]checkpointRow{}
	for _, r := range b.Rows {
		bBy[key{r.Name, r.Op, r.Workers}] = r
	}
	base := map[[2]string]float64{}
	for i, r := range a.Rows {
		if o, ok := bBy[key{r.Name, r.Op, r.Workers}]; ok {
			if r.Workers == 1 {
				r.Melems = max(r.Melems, o.Melems)
			} else {
				r.Melems = min(r.Melems, o.Melems)
			}
		}
		if r.Workers == 1 {
			base[[2]string{r.Name, r.Op}] = r.Melems
		}
		if p1 := base[[2]string{r.Name, r.Op}]; p1 > 0 {
			cores := min(float64(r.Workers), float64(a.GOMAXPROCS))
			r.Efficiency = min(r.Melems/(p1*cores), 1.0)
		}
		a.Rows[i] = r
	}
	return a
}

// runCheckpointCompare fails (exit 1) when any (summary, op)'s scaling
// efficiency at the highest measured worker count regressed more than
// tolFrac below the baseline's. Efficiency is normalized to the
// measuring machine's cores, so the committed baseline gates 1-core
// and many-core runners alike.
func runCheckpointCompare(oldPath, newPath string, tolFrac float64) {
	oldRep, err := readCheckpoint(oldPath)
	if err != nil {
		fatalf("checkpoint-compare: %v", err)
	}
	newRep, err := readCheckpoint(newPath)
	if err != nil {
		fatalf("checkpoint-compare: %v", err)
	}
	failed := false
	for _, k := range checkpointKeys(newRep) {
		eff, w := checkpointEffAt(newRep, k[0], k[1])
		oldEff, oldW := checkpointEffAt(oldRep, k[0], k[1])
		if oldW == 0 {
			fmt.Printf("%-10s %-8s NEW      efficiency %.2f at %d workers (no baseline)\n", k[0], k[1], eff, w)
			continue
		}
		limit := oldEff * (1 - tolFrac)
		status := "ok"
		if eff < limit {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-10s %-8s %-9s efficiency %.2f at %d workers vs baseline %.2f (floor %.2f)\n",
			k[0], k[1], status, eff, w, oldEff, limit)
	}
	if failed {
		fatalf("checkpoint-compare: save/recover scaling efficiency regressed more than %.0f%%", tolFrac*100)
	}
}

// checkpointKeys lists the distinct (name, op) pairs in report order.
func checkpointKeys(rep *checkpointReport) [][2]string {
	seen := map[[2]string]bool{}
	var keys [][2]string
	for _, r := range rep.Rows {
		k := [2]string{r.Name, r.Op}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// checkpointEffAt returns (name, op)'s efficiency at its highest
// measured worker count; workers 0 means the pair is absent.
func checkpointEffAt(rep *checkpointReport, name, op string) (eff float64, workers int) {
	for _, r := range rep.Rows {
		if r.Name == name && r.Op == op && r.Workers >= workers {
			eff, workers = r.Efficiency, r.Workers
		}
	}
	return eff, workers
}

func readCheckpoint(path string) (*checkpointReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep checkpointReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
