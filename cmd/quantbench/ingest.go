package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"streamquantiles/internal/core"
	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/gk"
	"streamquantiles/internal/kll"
	"streamquantiles/internal/mrl"
	"streamquantiles/internal/qdigest"
	"streamquantiles/internal/randalg"
	"streamquantiles/internal/sharded"
	"streamquantiles/internal/streamgen"
)

// The ingest mode measures what the batched fast paths and the sharded
// writer buy on this machine: single-thread batched-vs-per-item
// throughput for every summary, and aggregate sharded throughput at
// P ∈ {1, 2, 4, 8} with P writer goroutines. Results land in a JSON
// report (BENCH_ingest.json at the repo root is the committed
// baseline); -ingest-compare checks a fresh report against a baseline
// using only machine-portable ratios (batch speedups), never absolute
// element rates.

// ingestReport is the schema of BENCH_ingest.json.
type ingestReport struct {
	N          int             `json:"n"`
	Batch      int             `json:"batch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	GoVersion  string          `json:"goversion"`
	Workload   string          `json:"workload"`
	Summaries  []ingestSummary `json:"summaries"`
	Sharded    []ingestSharded `json:"sharded"`
}

// ingestSummary is one summary's single-thread measurement.
type ingestSummary struct {
	Name       string  `json:"name"`
	ItemMelems float64 `json:"item_melems_per_s"`
	BatchMelem float64 `json:"batch_melems_per_s"`
	Speedup    float64 `json:"batch_speedup"`
}

// ingestSharded is one (summary, P) aggregate-throughput measurement
// with P concurrent batched writers.
type ingestSharded struct {
	Name    string  `json:"name"`
	Shards  int     `json:"p"`
	Writers int     `json:"writers"`
	Melems  float64 `json:"melems_per_s"`
	Scaling float64 `json:"scaling_vs_p1"`
}

// ingestCash is the cash-register bench roster: every summary with a
// native batch path plus its configuration.
var ingestCash = []struct {
	name  string
	fresh func() core.CashRegister
}{
	{"gkadaptive", func() core.CashRegister { return gk.NewAdaptive(0.001) }},
	{"gktheory", func() core.CashRegister { return gk.NewTheory(0.001) }},
	{"gkarray", func() core.CashRegister { return gk.NewArray(0.001) }},
	{"gkbiased", func() core.CashRegister { return gk.NewBiased(0.001) }},
	{"qdigest", func() core.CashRegister { return qdigest.New(0.001, 24) }},
	{"mrl99", func() core.CashRegister { return mrl.New(0.001, 7) }},
	{"random", func() core.CashRegister { return randalg.New(0.001, 7) }},
	{"kll", func() core.CashRegister { return kll.New(0.001, 7) }},
}

// ingestTurn is the turnstile roster (insert-only workload; deletions
// ride the same AddBatch path).
var ingestTurn = []struct {
	name  string
	fresh func() core.Turnstile
}{
	{"dcm", func() core.Turnstile { return dyadic.New(dyadic.DCM, 0.005, 24, dyadic.Config{Seed: 7}) }},
	{"dcs", func() core.Turnstile { return dyadic.New(dyadic.DCS, 0.005, 24, dyadic.Config{Seed: 7}) }},
	{"drss", func() core.Turnstile { return dyadic.New(dyadic.DRSS, 0.005, 24, dyadic.Config{Seed: 7}) }},
}

// runIngest measures everything runs times, keeps the conservative
// merge (see mergeIngestReports), and writes the report. CI runs once;
// the committed baseline uses several runs so its ratios lower-bound a
// typical run and the compare tolerance absorbs machine noise instead
// of stacking on top of a lucky baseline.
func runIngest(n, batch, runs int, out string) {
	if runs <= 0 {
		runs = 1
	}
	rep := measureIngest(n, batch)
	for r := 1; r < runs; r++ {
		fmt.Fprintf(os.Stderr, "-- run %d/%d --\n", r+1, runs)
		rep = mergeIngestReports(rep, measureIngest(n, batch))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("ingest: %v", err)
	}
	blob = append(blob, '\n')
	if out == "" || out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatalf("ingest: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

// measureIngest runs one full measurement pass.
func measureIngest(n, batch int) ingestReport {
	if n <= 0 {
		n = 2_000_000
	}
	if batch <= 0 {
		batch = 4096
	}
	gen := streamgen.Uniform{Bits: 24, Seed: 1}
	data := streamgen.Generate(gen, n)
	rep := ingestReport{
		N:          n,
		Batch:      batch,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Workload:   gen.Name(),
	}

	for _, tc := range ingestCash {
		item := measure(func() {
			s := tc.fresh()
			for _, x := range data {
				s.Update(x)
			}
		})
		batched := measure(func() {
			s := tc.fresh()
			forBatches(data, batch, s.(core.BatchCashRegister).UpdateBatch)
		})
		rep.Summaries = append(rep.Summaries, summaryRow(tc.name, n, item, batched))
		fmt.Fprintf(os.Stderr, "%-12s item %8.2f Melem/s   batch %8.2f Melem/s   %.2fx\n",
			tc.name, melems(n, item), melems(n, batched), item.Seconds()/batched.Seconds())
	}
	for _, tc := range ingestTurn {
		item := measure(func() {
			s := tc.fresh()
			for _, x := range data {
				s.Insert(x)
			}
		})
		batched := measure(func() {
			s := tc.fresh()
			forBatches(data, batch, s.(core.BatchTurnstile).InsertBatch)
		})
		rep.Summaries = append(rep.Summaries, summaryRow(tc.name, n, item, batched))
		fmt.Fprintf(os.Stderr, "%-12s item %8.2f Melem/s   batch %8.2f Melem/s   %.2fx\n",
			tc.name, melems(n, item), melems(n, batched), item.Seconds()/batched.Seconds())
	}

	// Sharded scaling: P writer goroutines each feeding their slice of
	// the stream in batches. GKArray stands in for the cash-register
	// families, DCS (the study's recommended turnstile summary) for the
	// dyadic ones. Scaling beyond 1 requires cores: on a single-CPU
	// machine (see gomaxprocs in the report) P>1 only measures that the
	// lock split adds no slowdown.
	for _, tc := range []struct {
		name string
		run  func(p int) time.Duration
	}{
		{"sharded/gkarray", func(p int) time.Duration {
			s, err := sharded.NewCashRegister(p, func() core.CashRegister { return gk.NewArray(0.001) })
			if err != nil {
				panic(err)
			}
			return measureWriters(data, p, batch, s.UpdateBatch)
		}},
		{"sharded/dcs", func(p int) time.Duration {
			s, err := sharded.NewTurnstile(p, func() core.Turnstile {
				return dyadic.New(dyadic.DCS, 0.005, 24, dyadic.Config{Seed: 7})
			})
			if err != nil {
				panic(err)
			}
			return measureWriters(data, p, batch, s.InsertBatch)
		}},
	} {
		var base float64
		for _, p := range []int{1, 2, 4, 8} {
			el := tc.run(p)
			rate := melems(n, el)
			if p == 1 {
				base = rate
			}
			rep.Sharded = append(rep.Sharded, ingestSharded{
				Name: tc.name, Shards: p, Writers: p,
				Melems: rate, Scaling: rate / base,
			})
			fmt.Fprintf(os.Stderr, "%-16s P=%d  %8.2f Melem/s   %.2fx vs P=1\n", tc.name, p, rate, rate/base)
		}
	}
	return rep
}

// mergeIngestReports folds run b into a conservatively: per summary row
// it keeps the *fastest* observed per-item rate and the *slowest*
// observed batch rate, then recomputes the speedup from those. The
// merged ratio lower-bounds every individual run's ratio, so a baseline
// built from several runs sets compare floors that a typical CI run
// clears even when one measurement lands on a throttled scheduler
// slice. Sharded rows keep the slowest aggregate rate per (name, P) and
// recompute scaling from the merged P=1 row — conservative in the same
// direction.
func mergeIngestReports(a, b ingestReport) ingestReport {
	bBy := map[string]ingestSummary{}
	for _, s := range b.Summaries {
		bBy[s.Name] = s
	}
	for i, s := range a.Summaries {
		o, ok := bBy[s.Name]
		if !ok {
			continue
		}
		s.ItemMelems = max(s.ItemMelems, o.ItemMelems)
		s.BatchMelem = min(s.BatchMelem, o.BatchMelem)
		s.Speedup = s.BatchMelem / s.ItemMelems
		a.Summaries[i] = s
	}
	type shardKey struct {
		name string
		p    int
	}
	bSh := map[shardKey]ingestSharded{}
	for _, s := range b.Sharded {
		bSh[shardKey{s.Name, s.Shards}] = s
	}
	base := map[string]float64{}
	for i, s := range a.Sharded {
		if o, ok := bSh[shardKey{s.Name, s.Shards}]; ok {
			s.Melems = min(s.Melems, o.Melems)
		}
		if s.Shards == 1 {
			base[s.Name] = s.Melems
		}
		if p1 := base[s.Name]; p1 > 0 {
			s.Scaling = s.Melems / p1
		}
		a.Sharded[i] = s
	}
	return a
}

// measure times fn, keeping the fastest of two runs. One run already
// streams n elements, which dwarfs timer noise, but shared CI runners
// jitter enough that one-shot ratios drift; the min of two runs is the
// standard correction.
func measure(fn func()) time.Duration {
	var best time.Duration
	for r := 0; r < 2; r++ {
		start := time.Now()
		fn()
		if el := time.Since(start); r == 0 || el < best {
			best = el
		}
	}
	return best
}

// forBatches cuts data into fixed-size batches.
func forBatches(data []uint64, batch int, fn func([]uint64)) {
	for i := 0; i < len(data); i += batch {
		end := i + batch
		if end > len(data) {
			end = len(data)
		}
		fn(data[i:end])
	}
}

// measureWriters runs p goroutines, each batching its 1/p slice of data
// into the shared sharded summary, and times until the last finishes.
func measureWriters(data []uint64, p, batch int, fn func([]uint64)) time.Duration {
	per := len(data) / p
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < p; w++ {
		lo, hi := w*per, (w+1)*per
		if w == p-1 {
			hi = len(data)
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			forBatches(part, batch, fn)
		}(data[lo:hi])
	}
	wg.Wait()
	return time.Since(start)
}

func summaryRow(name string, n int, item, batched time.Duration) ingestSummary {
	return ingestSummary{
		Name:       name,
		ItemMelems: melems(n, item),
		BatchMelem: melems(n, batched),
		Speedup:    item.Seconds() / batched.Seconds(),
	}
}

func melems(n int, el time.Duration) float64 {
	return float64(n) / el.Seconds() / 1e6
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "quantbench: "+format+"\n", args...)
	os.Exit(1)
}

// runIngestCompare fails (exit 1) when any batch speedup in the new
// report regressed more than tolFrac below the baseline's. Only the
// speedup ratios are compared — absolute Melem/s depends on the
// machine, but "batching buys k×" is a property of the code.
func runIngestCompare(oldPath, newPath string, tolFrac float64) {
	oldRep, err := readIngest(oldPath)
	if err != nil {
		fatalf("ingest-compare: %v", err)
	}
	newRep, err := readIngest(newPath)
	if err != nil {
		fatalf("ingest-compare: %v", err)
	}
	oldBy := map[string]ingestSummary{}
	for _, s := range oldRep.Summaries {
		oldBy[s.Name] = s
	}
	failed := false
	for _, s := range newRep.Summaries {
		o, ok := oldBy[s.Name]
		if !ok {
			fmt.Printf("%-12s NEW      batch speedup %.2fx (no baseline)\n", s.Name, s.Speedup)
			continue
		}
		limit := o.Speedup * (1 - tolFrac)
		status := "ok"
		if s.Speedup < limit {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-12s %-9s batch speedup %.2fx vs baseline %.2fx (floor %.2fx)\n",
			s.Name, status, s.Speedup, o.Speedup, limit)
	}
	if failed {
		fatalf("ingest-compare: batch speedup regressed more than %.0f%%", tolFrac*100)
	}
}

func readIngest(path string) (*ingestReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep ingestReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
