package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"streamquantiles/internal/core"
	"streamquantiles/internal/sharded"
	"streamquantiles/internal/streamgen"
)

// The parallel mode measures multi-core write-path scaling through the
// per-goroutine writer handles: W writers, each with its own
// AcquireWriter handle, feed a W-shard container element-at-a-time —
// the placement the sharded layer was built for. Results land in a
// JSON report (BENCH_parallel.json at the repo root is the committed
// baseline); -parallel-compare gates on *scaling efficiency*, which is
// machine-portable where absolute Melem/s is not:
//
//	efficiency(W) = rate(W) / (rate(1) × min(W, GOMAXPROCS))
//
// Perfect scaling is 1.0 at any core count. On a single-core runner
// min(W, GOMAXPROCS) = 1, so the efficiency of every W measures pure
// handle overhead (should stay ≈ 1.0); on a 4-core runner an
// efficiency floor of 0.75 at W = 4 demands ≥ 3x the 1-writer
// throughput. One committed baseline therefore gates both machines.
//
// Recorded efficiency is clamped at 1.0: splitting a stream across W
// shards makes each per-shard summary smaller, and for families with
// superlinear compaction cost that alone can push the ratio past 1
// even without parallelism. Left unclamped, a superlinear baseline
// would set floors no honestly-scaling machine could clear.

// parallelReport is the schema of BENCH_parallel.json.
type parallelReport struct {
	N          int           `json:"n"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"numcpu"`
	GoVersion  string        `json:"goversion"`
	Workload   string        `json:"workload"`
	Rows       []parallelRow `json:"rows"`
}

// parallelRow is one (summary, writer-count) measurement.
type parallelRow struct {
	Name    string  `json:"name"`
	Writers int     `json:"writers"`
	Melems  float64 `json:"melems_per_s"`
	// Efficiency is Melems / (rate(1) × min(Writers, GOMAXPROCS)):
	// 1.0 is perfect scaling on this machine's cores.
	Efficiency float64 `json:"efficiency"`
}

// parallelWriterCounts is the sweep: 1, 2, 4 and NumCPU, deduplicated
// and sorted (on a 1–4 core machine NumCPU folds into the fixed tiers).
func parallelWriterCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var counts []int
	for w := range set {
		counts = append(counts, w)
	}
	sort.Ints(counts)
	return counts
}

// runParallel measures everything runs times, keeps the conservative
// merge (see mergeParallelReports), and writes the report.
func runParallel(n, runs int, out string) {
	if runs <= 0 {
		runs = 1
	}
	rep := measureParallel(n)
	for r := 1; r < runs; r++ {
		fmt.Fprintf(os.Stderr, "-- run %d/%d --\n", r+1, runs)
		rep = mergeParallelReports(rep, measureParallel(n))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("parallel: %v", err)
	}
	blob = append(blob, '\n')
	if out == "" || out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatalf("parallel: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
}

// measureParallel runs one full measurement pass over the eight cash
// summaries.
func measureParallel(n int) parallelReport {
	if n <= 0 {
		n = 2_000_000
	}
	gen := streamgen.Uniform{Bits: 24, Seed: 1}
	data := streamgen.Generate(gen, n)
	maxprocs := runtime.GOMAXPROCS(0)
	rep := parallelReport{
		N:          n,
		GOMAXPROCS: maxprocs,
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Workload:   gen.Name(),
	}
	counts := parallelWriterCounts()
	for _, tc := range ingestCash {
		var base float64
		for _, w := range counts {
			el := measureHandles(data, w, tc.fresh)
			rate := melems(n, el)
			if w == 1 {
				base = rate
			}
			eff := 1.0
			if cores := min(float64(w), float64(maxprocs)); base > 0 && cores > 0 {
				eff = min(rate/(base*cores), 1.0)
			}
			rep.Rows = append(rep.Rows, parallelRow{Name: tc.name, Writers: w, Melems: rate, Efficiency: eff})
			fmt.Fprintf(os.Stderr, "%-12s W=%-3d %8.2f Melem/s   eff %.2f\n", tc.name, w, rate, eff)
		}
	}
	return rep
}

// measureHandles times w writer goroutines, each driving its 1/w slice
// of data element-at-a-time through its own writer handle into a
// fresh w-shard container (slots are issued round-robin, so the w
// handles land on w distinct shards). Fastest of two runs, like
// measure().
func measureHandles(data []uint64, w int, fresh func() core.CashRegister) time.Duration {
	var best time.Duration
	for r := 0; r < 2; r++ {
		s, err := sharded.NewCashRegister(w, fresh)
		if err != nil {
			panic(err)
		}
		per := len(data) / w
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < w; i++ {
			lo, hi := i*per, (i+1)*per
			if i == w-1 {
				hi = len(data)
			}
			wg.Add(1)
			go func(part []uint64) {
				defer wg.Done()
				h := s.AcquireWriter()
				defer h.Close()
				for _, x := range part {
					h.Update(x)
				}
			}(data[lo:hi])
		}
		wg.Wait()
		if el := time.Since(start); r == 0 || el < best {
			best = el
		}
	}
	return best
}

// mergeParallelReports folds run b into a conservatively: per
// (name, writers) row it keeps the *fastest* 1-writer rate and the
// *slowest* multi-writer rate, then recomputes efficiency from the
// merged rows. The merged efficiency lower-bounds every individual
// run's, so the committed baseline sets compare floors a typical CI
// run clears.
func mergeParallelReports(a, b parallelReport) parallelReport {
	type key struct {
		name string
		w    int
	}
	bBy := map[key]parallelRow{}
	for _, r := range b.Rows {
		bBy[key{r.Name, r.Writers}] = r
	}
	base := map[string]float64{}
	for i, r := range a.Rows {
		if o, ok := bBy[key{r.Name, r.Writers}]; ok {
			if r.Writers == 1 {
				r.Melems = max(r.Melems, o.Melems)
			} else {
				r.Melems = min(r.Melems, o.Melems)
			}
		}
		if r.Writers == 1 {
			base[r.Name] = r.Melems
		}
		if p1 := base[r.Name]; p1 > 0 {
			cores := min(float64(r.Writers), float64(a.GOMAXPROCS))
			r.Efficiency = min(r.Melems/(p1*cores), 1.0)
		}
		a.Rows[i] = r
	}
	return a
}

// runParallelCompare fails (exit 1) when any summary's scaling
// efficiency at the highest measured writer count regressed more than
// tolFrac below the baseline's. Efficiency is already normalized to
// the measuring machine's cores, so a 1-core baseline still gates a
// 4-core CI runner (and vice versa): the floor is relative, the
// normalization absolute.
func runParallelCompare(oldPath, newPath string, tolFrac float64) {
	oldRep, err := readParallel(oldPath)
	if err != nil {
		fatalf("parallel-compare: %v", err)
	}
	newRep, err := readParallel(newPath)
	if err != nil {
		fatalf("parallel-compare: %v", err)
	}
	oldEff := topEfficiency(oldRep)
	failed := false
	for _, name := range reportNames(newRep) {
		eff, w := effAt(newRep, name)
		o, ok := oldEff[name]
		if !ok {
			fmt.Printf("%-12s NEW      efficiency %.2f at %d writers (no baseline)\n", name, eff, w)
			continue
		}
		limit := o * (1 - tolFrac)
		status := "ok"
		if eff < limit {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-12s %-9s efficiency %.2f at %d writers vs baseline %.2f (floor %.2f)\n",
			name, status, eff, w, o, limit)
	}
	if failed {
		fatalf("parallel-compare: scaling efficiency regressed more than %.0f%%", tolFrac*100)
	}
}

// topEfficiency maps each summary to its efficiency at the report's
// highest writer count.
func topEfficiency(rep *parallelReport) map[string]float64 {
	out := map[string]float64{}
	for _, name := range reportNames(rep) {
		out[name], _ = effAt(rep, name)
	}
	return out
}

// effAt returns name's efficiency at its highest writer count.
func effAt(rep *parallelReport, name string) (eff float64, writers int) {
	for _, r := range rep.Rows {
		if r.Name == name && r.Writers >= writers {
			eff, writers = r.Efficiency, r.Writers
		}
	}
	return eff, writers
}

func reportNames(rep *parallelReport) []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range rep.Rows {
		if !seen[r.Name] {
			seen[r.Name] = true
			names = append(names, r.Name)
		}
	}
	return names
}

func readParallel(path string) (*parallelReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep parallelReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
