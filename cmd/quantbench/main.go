// Command quantbench reproduces the paper's evaluation: it runs any (or
// all) of the experiments behind Figures 5–12 and Tables 3–4, plus the
// reproduction's own ablations, and renders the measurements as text
// tables, CSV, or the markdown report checked in as EXPERIMENTS.md.
//
// Usage:
//
//	quantbench -exp fig5                # one experiment, text table
//	quantbench -exp fig10 -n 1000000    # paper-scale stream length
//	quantbench -all -format markdown    # full report (EXPERIMENTS.md)
//	quantbench -list                    # available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"streamquantiles/internal/harness"
)

// startProfiles arms the runtime's contention profilers for whichever
// paths are set and returns the function that snapshots them to disk.
func startProfiles(mutexPath, blockPath string) func() {
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(10_000) // sample blocking beyond 10µs
	}
	return func() {
		writeProfile("mutex", mutexPath)
		writeProfile("block", blockPath)
	}
}

func writeProfile(kind, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantbench: %s profile: %v\n", kind, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(kind).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "quantbench: %s profile: %v\n", kind, err)
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s profile %s\n", kind, path)
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		n       = flag.Int("n", 0, "stream length (default 200000)")
		seed    = flag.Uint64("seed", 1, "workload/algorithm seed")
		repeats = flag.Int("repeats", 0, "seed-averaging repeats for randomized algorithms (default 3)")
		format  = flag.String("format", "table", "output format: table, csv, markdown, html")
		verify  = flag.Bool("verify", false, "run all experiments and check the paper's shape claims")

		ingest     = flag.Bool("ingest", false, "measure batched vs per-item ingestion and sharded scaling")
		ingestBat  = flag.Int("ingest-batch", 4096, "batch size for -ingest")
		ingestRuns = flag.Int("ingest-runs", 1, "measurement passes for -ingest; >1 keeps the conservative merge (baselines)")
		ingestOut  = flag.String("ingest-out", "", "write the -ingest JSON report here (default stdout)")
		ingestCmp  = flag.Bool("ingest-compare", false, "compare two ingest reports: quantbench -ingest-compare old.json new.json")
		ingestTol  = flag.Float64("ingest-tol", 0.25, "allowed fractional batch-speedup regression for -ingest-compare")

		parallel     = flag.Bool("parallel", false, "measure writer-handle scaling across writer counts (1/2/4/NumCPU)")
		parallelRuns = flag.Int("parallel-runs", 1, "measurement passes for -parallel; >1 keeps the conservative merge (baselines)")
		parallelOut  = flag.String("parallel-out", "", "write the -parallel JSON report here (default stdout)")
		parallelCmp  = flag.Bool("parallel-compare", false, "compare two parallel reports: quantbench -parallel-compare old.json new.json")
		parallelTol  = flag.Float64("parallel-tol", 0.25, "allowed fractional efficiency regression for -parallel-compare")

		ckpt     = flag.Bool("checkpoint", false, "measure sharded save/recover scaling across fan-out worker counts (1/4/16/64)")
		ckptRuns = flag.Int("checkpoint-runs", 1, "measurement passes for -checkpoint; >1 keeps the conservative merge (baselines)")
		ckptOut  = flag.String("checkpoint-out", "", "write the -checkpoint JSON report here (default stdout)")
		ckptCmp  = flag.Bool("checkpoint-compare", false, "compare two checkpoint reports: quantbench -checkpoint-compare old.json new.json")
		ckptTol  = flag.Float64("checkpoint-tol", 0.25, "allowed fractional efficiency regression for -checkpoint-compare")

		cpus         = flag.Int("cpus", 0, "pin GOMAXPROCS for the run (0 = leave as is); reports record the effective value")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile of the measurement here")
		blockProfile = flag.String("blockprofile", "", "write a blocking profile of the measurement here")

		query     = flag.Bool("query", false, "measure per-phi vs batched vs snapshot-cached quantile extraction")
		queryPhis = flag.Int("query-phis", 100, "fractions per extraction for -query")
		queryRuns = flag.Int("query-runs", 1, "measurement passes for -query; >1 keeps the conservative merge (baselines)")
		queryOut  = flag.String("query-out", "", "write the -query JSON report here (default stdout)")
		queryCmp  = flag.Bool("query-compare", false, "compare two query reports: quantbench -query-compare old.json new.json")
		queryTol  = flag.Float64("query-tol", 0.25, "allowed fractional speedup regression for -query-compare")
	)
	flag.Parse()

	if *cpus > 0 {
		runtime.GOMAXPROCS(*cpus)
	}
	// Contention observability: with a profile path set, the runtime
	// samples mutex hold-ups / blocking for the whole measurement and the
	// profile is written on the way out — the "where did the time go"
	// answer when a scaling gate regresses.
	defer startProfiles(*mutexProfile, *blockProfile)()

	if *ingest {
		runIngest(*n, *ingestBat, *ingestRuns, *ingestOut)
		return
	}
	if *parallel {
		runParallel(*n, *parallelRuns, *parallelOut)
		return
	}
	if *parallelCmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "quantbench: -parallel-compare needs two report paths: old.json new.json")
			os.Exit(2)
		}
		runParallelCompare(flag.Arg(0), flag.Arg(1), *parallelTol)
		return
	}
	if *ckpt {
		runCheckpoint(*n, *ckptRuns, *ckptOut)
		return
	}
	if *ckptCmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "quantbench: -checkpoint-compare needs two report paths: old.json new.json")
			os.Exit(2)
		}
		runCheckpointCompare(flag.Arg(0), flag.Arg(1), *ckptTol)
		return
	}
	if *ingestCmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "quantbench: -ingest-compare needs two report paths: old.json new.json")
			os.Exit(2)
		}
		runIngestCompare(flag.Arg(0), flag.Arg(1), *ingestTol)
		return
	}
	if *query {
		runQuery(*n, *queryPhis, *queryRuns, *queryOut)
		return
	}
	if *queryCmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "quantbench: -query-compare needs two report paths: old.json new.json")
			os.Exit(2)
		}
		runQueryCompare(flag.Arg(0), flag.Arg(1), *queryTol)
		return
	}

	if *list {
		titles := harness.Titles()
		for _, id := range harness.AllExperiments() {
			fmt.Printf("%-12s %s\n", id, titles[id])
		}
		return
	}

	opts := harness.Options{N: *n, Seed: *seed, Repeats: *repeats}
	if *verify {
		results := harness.Verify(opts)
		fmt.Print(harness.RenderVerify(results))
		for _, r := range results {
			if !r.OK {
				os.Exit(1)
			}
		}
		return
	}
	var exps []string
	switch {
	case *all:
		exps = harness.AllExperiments()
	case *exp != "":
		exps = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "quantbench: pass -exp <id>, -all, or -list")
		os.Exit(2)
	}

	if *format == "markdown" {
		fmt.Print(markdownHeader(opts))
	}
	var sections []harness.HTMLSection
	for _, id := range exps {
		results := harness.Run(id, opts)
		harness.SortResults(results)
		switch *format {
		case "table":
			fmt.Printf("== %s ==\n%s\n", harness.Titles()[id], harness.RenderTable(id, results))
		case "csv":
			fmt.Print(harness.RenderCSV(results))
		case "markdown":
			fmt.Print(markdownSection(id, results))
		case "html":
			sections = append(sections, harness.HTMLSection{Exp: id, Results: results})
		default:
			fmt.Fprintf(os.Stderr, "quantbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if *format == "html" {
		n := opts.N
		if n == 0 {
			n = 200000
		}
		subtitle := fmt.Sprintf("Every table and figure of the paper's §4, measured by this reproduction at n = %d (paper scale: 10^7–10^10). Regenerate: go run ./cmd/quantbench -all -format html -n <n>.", n)
		fmt.Print(harness.RenderHTMLPage(sections, subtitle))
	}
}

func markdownHeader(o harness.Options) string {
	n := o.N
	if n == 0 {
		n = 200000
	}
	args := append([]string{"quantbench"}, os.Args[1:]...)
	return fmt.Sprintf(`# EXPERIMENTS — paper vs. measured

Generated by %s.

Every table and figure of the paper's evaluation section (§4) has a
driver here. The paper ran on a 2013-era 3 GHz server with streams of
10^7–10^10 elements; this report uses n = %d (rerun with
`+"`go run ./cmd/quantbench -all -n <paper scale>`"+` for larger streams).
Absolute numbers therefore differ; the *shape* statements quoted from the
paper under each experiment are what the reproduction is expected to —
and does — preserve.

`, strings.Join(args, " "), n)
}

func markdownSection(id string, results []harness.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", harness.Titles()[id])
	fmt.Fprintf(&b, "**Paper:** %s\n\n", harness.PaperExpectations()[id])
	fmt.Fprintf(&b, "**Measured:**\n\n```\n%s```\n\n", harness.RenderTable(id, results))
	return b.String()
}
