package streamquantiles

import (
	"testing"
)

// Edge-of-domain behaviors that production users hit first.

func TestTinyUniverse(t *testing.T) {
	// bits = 1: the universe is {0, 1}.
	q := NewQDigest(0.1, 1)
	d := NewDCS(0.1, 1, DyadicConfig{Seed: 1})
	for i := 0; i < 1000; i++ {
		v := uint64(i % 2)
		q.Update(v)
		d.Insert(v)
	}
	if med := q.Quantile(0.5); med > 1 {
		t.Errorf("q-digest median %d outside universe", med)
	}
	if med := d.Quantile(0.5); med > 1 {
		t.Errorf("DCS median %d outside universe", med)
	}
	if got := d.Rank(1); got < 400 || got > 600 {
		t.Errorf("DCS Rank(1) = %d, want ≈ 500", got)
	}
}

func TestCoarseEps(t *testing.T) {
	// ε = 0.4: a legal but extreme setting; summaries stay tiny and
	// answers stay within the (huge) tolerance.
	for name, s := range map[string]CashRegister{
		"GKArray": NewGKArray(0.4),
		"Random":  NewRandom(0.4, 1),
		"MRL99":   NewMRL99(0.4, 1),
	} {
		for i := uint64(0); i < 10000; i++ {
			s.Update(i)
		}
		med := s.Quantile(0.5)
		if med > 10000 {
			t.Errorf("%s: median %d outside observed range", name, med)
		}
	}
}

func TestExtremePhis(t *testing.T) {
	s := NewGKArray(0.001)
	for i := uint64(1); i <= 100000; i++ {
		s.Update(i)
	}
	if q := s.Quantile(0.00001); q > 200 {
		t.Errorf("phi→0 quantile = %d, want near minimum", q)
	}
	if q := s.Quantile(0.99999); q < 99800 {
		t.Errorf("phi→1 quantile = %d, want near maximum", q)
	}
}

func TestMaxUniverseValue(t *testing.T) {
	// The largest representable element must round-trip through the
	// comparison-based summaries.
	s := NewGKArray(0.1)
	max := ^uint64(0)
	for i := 0; i < 100; i++ {
		s.Update(max)
		s.Update(0)
	}
	if q := s.Quantile(0.99); q != max {
		t.Errorf("0.99-quantile = %d, want max uint64", q)
	}
	if q := s.Quantile(0.01); q != 0 {
		t.Errorf("0.01-quantile = %d, want 0", q)
	}
}

func TestAlternatingInsertDeleteChurn(t *testing.T) {
	// Sustained churn: the turnstile summary must stay consistent when
	// the live set is repeatedly rebuilt.
	s := NewDCS(0.05, 12, DyadicConfig{Seed: 2})
	for round := 0; round < 20; round++ {
		for i := uint64(0); i < 2000; i++ {
			s.Insert(i % 4096)
		}
		for i := uint64(0); i < 2000; i++ {
			s.Delete(i % 4096)
		}
	}
	if s.Count() != 0 {
		t.Fatalf("count %d after balanced churn", s.Count())
	}
	for i := uint64(100); i < 200; i++ {
		s.Insert(i)
	}
	med := s.Quantile(0.5)
	if med < 100 || med >= 200 {
		t.Errorf("median %d outside the only live range [100,200)", med)
	}
}

func TestSelectExactPublicAPI(t *testing.T) {
	data := make([]uint64, 50000)
	state := uint64(5)
	for i := range data {
		state = state*6364136223846793005 + 1442695040888963407
		data[i] = state >> 32
	}
	v, stats, err := SelectExact(SliceSource(data), 25000, 2048, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Verify exactness by counting.
	var below, eq int64
	for _, x := range data {
		if x < v {
			below++
		} else if x == v {
			eq++
		}
	}
	if !(below <= 25000 && 25000 < below+eq) {
		t.Errorf("SelectExact returned %d with rank block [%d,%d), want to contain 25000",
			v, below, below+eq)
	}
	if stats.Passes < 2 {
		t.Errorf("suspicious pass count %d", stats.Passes)
	}
}
