package streamquantiles

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden SQCP v1 encodings, captured before the columnar storage
// refactor. The wire format is part of the durability contract: a
// checkpoint written by an older build must decode on every later one,
// and the in-memory representation must never leak into the bytes. The
// fixtures in testdata/golden pin that: each summary built from a fixed
// recipe must (a) marshal byte-identically to its golden file, (b)
// decode from the golden file with its deep invariants intact, and (c)
// re-marshal the decoded state back to the same bytes.
//
// Regenerate (only for a deliberate, versioned format change) with:
//
//	go test -run TestGoldenEncodings -update-golden .

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden encodings from the current codecs")

// goldenStreamLen matches the crash-matrix feed so the fixtures hold a
// mid-stream state: partially filled buffers, unflushed blocks, and a
// live RNG — the parts of the frame a layout refactor is most likely to
// disturb.
const goldenStreamLen = 5000

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".bin")
}

func TestGoldenEncodings(t *testing.T) {
	for _, ms := range matrixSummaries {
		t.Run(ms.name, func(t *testing.T) {
			s := ms.fresh()
			feedRange(s, 0, goldenStreamLen)
			blob, err := s.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}

			path := goldenPath(ms.name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden encoding (run with -update-golden only for a deliberate format change): %v", err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("encoding drifted from golden: got %d bytes, golden %d bytes", len(blob), len(want))
			}

			// Decode the pre-refactor bytes into the current
			// representation and verify it is structurally sound and
			// bytes-stable.
			dec := ms.fresh()
			if err := dec.UnmarshalBinary(want); err != nil {
				t.Fatalf("golden payload rejected: %v", err)
			}
			if err := CheckInvariants(dec); err != nil {
				t.Fatalf("decoded summary invariants: %v", err)
			}
			re, err := dec.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, want) {
				t.Fatalf("decode/re-encode not byte-identical: got %d bytes, want %d", len(re), len(want))
			}

			// The decoded summary must answer exactly like the one that
			// produced the bytes (queries may flush; both flush the same
			// buffered state).
			if dec.Count() != s.Count() {
				t.Fatalf("decoded count %d, live %d", dec.Count(), s.Count())
			}
			for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
				if a, b := dec.Quantile(phi), s.Quantile(phi); a != b {
					t.Fatalf("Quantile(%v) = %d, live summary %d", phi, a, b)
				}
			}
			for _, x := range []uint64{0, 1 << 10, 1 << 14, 1<<16 - 1} {
				if a, b := dec.Rank(x), s.Rank(x); a != b {
					t.Fatalf("Rank(%d) = %d, live summary %d", x, a, b)
				}
			}
		})
	}
}

// TestCodecRoundTripSizes is the size-sweep companion of the golden
// fixtures: at every stream length (empty included) a marshal →
// unmarshal → re-marshal cycle must be byte-stable with invariants
// intact, whatever internal layout the summary currently uses.
func TestCodecRoundTripSizes(t *testing.T) {
	sizes := []int{0, 1, 63, 64, 65, 1000, 4097}
	for _, ms := range matrixSummaries {
		for _, n := range sizes {
			s := ms.fresh()
			feedRange(s, 0, n)
			blob, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("%s/n=%d: %v", ms.name, n, err)
			}
			dec := ms.fresh()
			if err := dec.UnmarshalBinary(blob); err != nil {
				t.Fatalf("%s/n=%d: decode: %v", ms.name, n, err)
			}
			if err := CheckInvariants(dec); err != nil {
				t.Fatalf("%s/n=%d: invariants: %v", ms.name, n, err)
			}
			re, err := dec.MarshalBinary()
			if err != nil {
				t.Fatalf("%s/n=%d: %v", ms.name, n, err)
			}
			if !bytes.Equal(re, blob) {
				t.Fatalf("%s/n=%d: re-encode differs (%d vs %d bytes)", ms.name, n, len(re), len(blob))
			}
		}
	}
}
