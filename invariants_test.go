package streamquantiles

import (
	"testing"

	"streamquantiles/internal/invariant"
	"streamquantiles/internal/xhash"
)

// TestEverySummaryImplementsCheckable pins the SQ005 contract at compile
// time and at runtime: every summary type registered in quantiles.go
// satisfies invariant.Checkable and reports a sound structure when empty.
func TestEverySummaryImplementsCheckable(t *testing.T) {
	summaries := map[string]Checkable{
		"GKAdaptive":   NewGKAdaptive(0.01),
		"GKTheory":     NewGKTheory(0.01),
		"GKArray":      NewGKArray(0.01),
		"GKBiased":     NewGKBiased(0.01),
		"QDigest":      NewQDigest(0.01, 16),
		"MRL99":        NewMRL99(0.01, 1),
		"Random":       NewRandom(0.01, 1),
		"KLL":          NewKLL(0.01, 1),
		"Windowed":     NewWindowed(0.05, 1000, 1),
		"DCM":          NewDCM(0.05, 12, DyadicConfig{Seed: 1}),
		"DCS":          NewDCS(0.05, 12, DyadicConfig{Seed: 1}),
		"DRSS":         NewDRSS(0.05, 12, DyadicConfig{Seed: 1}),
		"Post(on DCS)": PostProcess(NewDCS(0.05, 12, DyadicConfig{Seed: 1}), 0),
	}
	for name, s := range summaries {
		if err := CheckInvariants(s); err != nil {
			t.Errorf("%s (empty): %v", name, err)
		}
	}
}

// TestInvariantsHoldUnderLoad streams adversarially shaped data (sorted,
// reversed, heavy duplicates, random) through every cash-register
// summary, checking the deep invariants at every power-of-two checkpoint
// and at the end.
func TestInvariantsHoldUnderLoad(t *testing.T) {
	const n = 20000
	shapes := map[string]func(i int, rng *xhash.SplitMix64) uint64{
		"sorted":   func(i int, _ *xhash.SplitMix64) uint64 { return uint64(i) },
		"reversed": func(i int, _ *xhash.SplitMix64) uint64 { return uint64(n - i) },
		"dups":     func(i int, _ *xhash.SplitMix64) uint64 { return uint64(i % 7) },
		"random":   func(_ int, rng *xhash.SplitMix64) uint64 { return rng.Uint64n(1 << 16) },
	}
	for shape, gen := range shapes {
		t.Run(shape, func(t *testing.T) {
			rng := xhash.NewSplitMix64(42)
			summaries := map[string]CashRegister{
				"GKAdaptive": NewGKAdaptive(0.01),
				"GKTheory":   NewGKTheory(0.01),
				"GKArray":    NewGKArray(0.01),
				"GKBiased":   NewGKBiased(0.01),
				"QDigest":    NewQDigest(0.01, 16),
				"MRL99":      NewMRL99(0.02, rng.Next()),
				"Random":     NewRandom(0.02, rng.Next()),
				"KLL":        NewKLL(0.02, rng.Next()),
				"Windowed":   NewWindowed(0.05, n/3, rng.Next()),
			}
			for i := 0; i < n; i++ {
				x := gen(i, rng)
				checkpoint := i&(i+1) == 0 // i+1 is a power of two
				for name, s := range summaries {
					s.Update(x)
					if !checkpoint {
						continue
					}
					if err := CheckInvariants(s.(Checkable)); err != nil {
						t.Fatalf("%s after %d updates: %v", name, i+1, err)
					}
				}
			}
			for name, s := range summaries {
				_ = s.Quantile(0.5) // queries flush/drain internal buffers
				if err := CheckInvariants(s.(Checkable)); err != nil {
					t.Errorf("%s after queries: %v", name, err)
				}
			}
		})
	}
}

// TestInvariantsHoldTurnstile drives the three dyadic sketches and the
// OLS snapshot through a strict insert/delete workload.
func TestInvariantsHoldTurnstile(t *testing.T) {
	const bits = 10
	rng := xhash.NewSplitMix64(7)
	sketches := map[string]*DyadicSketch{
		"DCM":  NewDCM(0.05, bits, DyadicConfig{Seed: 3}),
		"DCS":  NewDCS(0.05, bits, DyadicConfig{Seed: 3}),
		"DRSS": NewDRSS(0.05, bits, DyadicConfig{Seed: 3}),
	}
	live := make([]uint64, 0, 4096)
	for i := 0; i < 6000; i++ {
		if len(live) > 0 && rng.Uint64n(3) == 0 {
			j := int(rng.Uint64n(uint64(len(live))))
			x := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			for _, s := range sketches {
				s.Delete(x)
			}
		} else {
			x := rng.Uint64n(1 << bits)
			live = append(live, x)
			for _, s := range sketches {
				s.Insert(x)
			}
		}
		if i%997 == 0 {
			for name, s := range sketches {
				if err := CheckInvariants(s); err != nil {
					t.Fatalf("%s at step %d: %v", name, i, err)
				}
			}
		}
	}
	for name, s := range sketches {
		if err := CheckInvariants(s); err != nil {
			t.Errorf("%s final: %v", name, err)
		}
		p := PostProcess(s, 0)
		if err := CheckInvariants(p); err != nil {
			t.Errorf("Post over %s: %v", name, err)
		}
	}
}

// TestInvariantsHoldAcrossMerges checks the mergeable summaries: merge
// chains must preserve the deep structure, not just query accuracy.
func TestInvariantsHoldAcrossMerges(t *testing.T) {
	rng := xhash.NewSplitMix64(11)

	qd := NewQDigest(0.02, 12)
	r := NewRandom(0.05, rng.Next())
	k := NewKLL(0.05, rng.Next())
	for part := 0; part < 8; part++ {
		qd2 := NewQDigest(0.02, 12)
		r2 := NewRandom(0.05, rng.Next())
		k2 := NewKLL(0.05, rng.Next())
		m := int(1 + rng.Uint64n(3000)) // uneven parts leave partial buffers
		for i := 0; i < m; i++ {
			x := rng.Uint64n(1 << 12)
			qd2.Update(x)
			r2.Update(x)
			k2.Update(x)
		}
		qd.Merge(qd2)
		r.Merge(r2)
		k.Merge(k2)
		for name, s := range map[string]Checkable{"QDigest": qd, "Random": r, "KLL": k} {
			if err := CheckInvariants(s); err != nil {
				t.Fatalf("%s after merge %d: %v", name, part, err)
			}
		}
	}
}

// TestInvariantsDetectCorruption makes sure the sanitizer actually fires:
// a deliberately corrupted summary must report a violation. The
// corruption path goes through the codec (flip bytes of a marshaled
// digest until Invariants complains) so no test-only mutator is needed.
func TestInvariantsDetectCorruption(t *testing.T) {
	d := NewQDigest(0.05, 8)
	for i := 0; i < 1000; i++ {
		d.Update(uint64(i % 256))
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Single-bit flips keep most varints decodable; a flipped node weight
	// or count must then break weight conservation.
	found := false
	for off := 0; off < len(blob) && !found; off++ {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 1
		var d2 QDigest
		if err := d2.UnmarshalBinary(mut); err != nil {
			continue // codec rejected the corruption: also acceptable
		}
		if CheckInvariants(&d2) != nil {
			found = true
		}
	}
	if !found {
		t.Error("no byte flip produced a summary the sanitizer rejects; checks may be vacuous")
	}
}

// TestSamplerIsCheapWhenDisabled documents the untagged contract: the
// sampler must not invoke Invariants at all without -tags sqcheck.
func TestSamplerWiring(t *testing.T) {
	s := NewGKArray(0.01)
	ck := invariant.Every(8)
	for i := 0; i < 100; i++ {
		s.Update(uint64(i))
		if err := ck.Check(s); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	if invariant.Enabled {
		t.Log("sqcheck sanitizer active")
	}
}
