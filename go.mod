module streamquantiles

go 1.22
