package streamquantiles

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// Elasticity properties: online Reshard and Retarget must preserve the
// composed error contract — ≤ EpsBudget()·n for merged folds, ≤
// 2·EpsBudget()·n + Shards() + Components() for additive rank
// combination — conserve every ingested element, and keep the deep
// invariants clean, all without stopping ingestion (the concurrent
// tests run real writers through the swap and are meaningful under
// -race).

// elasticTol returns the composed rank-error tolerance for a sharded
// cash register after any sequence of elastic operations.
func elasticTol(s *ShardedCashRegister, n int) int64 {
	return int64(2*s.EpsBudget()*float64(n)) + int64(s.Shards()) + int64(s.Components())
}

func sortedCopy(data []uint64) []uint64 {
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// TestReshardMergeable drives a mergeable family through a grow and a
// shrink with ingestion between, checking conservation, generation
// accounting and the ε contract at every step. Merge drains preserve
// max ε, so no components ever freeze.
func TestReshardMergeable(t *testing.T) {
	data := batchTestData(30000)
	s := mustShardedCash(t, 4, func() CashRegister { return NewKLL(0.01, 7) })
	feedBatches(s.UpdateBatch, data[:10000])

	if err := s.Reshard(7); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 7 || s.Generation() != 1 {
		t.Fatalf("Shards=%d Generation=%d after grow", s.Shards(), s.Generation())
	}
	feedBatches(s.UpdateBatch, data[10000:20000])

	if err := s.Reshard(2); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 2 || s.Generation() != 2 {
		t.Fatalf("Shards=%d Generation=%d after shrink", s.Shards(), s.Generation())
	}
	feedBatches(s.UpdateBatch, data[20000:])

	if s.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", s.Count(), len(data))
	}
	if s.Components() != 0 {
		t.Fatalf("mergeable reshard froze %d components", s.Components())
	}
	if err := s.Invariants(); err != nil {
		t.Fatal(err)
	}
	sorted := sortedCopy(data)
	tol := elasticTol(s, len(data))
	for _, phi := range EvenPhis(0.1) {
		rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
	}
}

// TestReshardAdoption drives the GK (non-mergeable) family through a
// grow — a pure pointer adoption, no accuracy cost — and a shrink,
// which freezes the surplus shards as rank components.
func TestReshardAdoption(t *testing.T) {
	data := batchTestData(30000)
	s := mustShardedCash(t, 4, func() CashRegister { return NewGKArray(0.01) })
	feedBatches(s.UpdateBatch, data[:10000])

	if err := s.Reshard(6); err != nil {
		t.Fatal(err)
	}
	if s.Components() != 0 {
		t.Fatalf("grow froze %d components", s.Components())
	}
	feedBatches(s.UpdateBatch, data[10000:20000])

	if err := s.Reshard(2); err != nil {
		t.Fatal(err)
	}
	// All six pre-shrink shards held data, so four freeze.
	if got := s.Components(); got != 4 {
		t.Fatalf("shrink froze %d components, want 4", got)
	}
	feedBatches(s.UpdateBatch, data[20000:])

	if s.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", s.Count(), len(data))
	}
	if err := s.Invariants(); err != nil {
		t.Fatal(err)
	}
	sorted := sortedCopy(data)
	tol := elasticTol(s, len(data))
	for _, phi := range EvenPhis(0.1) {
		rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
	}
	for probe := uint64(0); probe < 1<<16; probe += 997 {
		got := s.Rank(probe)
		below := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] >= probe }))
		atOrBelow := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > probe }))
		if got < below-tol || got > atOrBelow+tol {
			t.Fatalf("Rank(%d) = %d, true interval [%d,%d], tol %d", probe, got, below, atOrBelow, tol)
		}
	}
}

// TestReshardCycleUnderConcurrentIngestion is the elasticity property
// test: a grow→shrink→grow cycle runs while writer goroutines ingest
// continuously, and afterwards the container must have conserved every
// element, kept its invariants, and stayed within the composed bound —
// 2ε·n + Shards() + Components() for the rank-combined GK family,
// the merged ε·n (checked at the same composed tolerance) for KLL.
func TestReshardCycleUnderConcurrentIngestion(t *testing.T) {
	const writers, perWriter = 6, 8000
	for _, tc := range []struct {
		name  string
		fresh func() CashRegister
	}{
		{"gkarray", func() CashRegister { return NewGKArray(0.01) }},
		{"kll", func() CashRegister { return NewKLL(0.01, 7) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := batchTestData(writers * perWriter)
			s := mustShardedCash(t, 4, tc.fresh)
			var wg sync.WaitGroup
			var ingested atomic.Int64
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(part []uint64) {
					defer wg.Done()
					feedBatches(func(xs []uint64) {
						s.UpdateBatch(xs)
						ingested.Add(int64(len(xs)))
					}, part)
				}(data[w*perWriter : (w+1)*perWriter])
			}
			// The elastic cycle runs concurrently with the writers, each
			// step gated on ingestion progress so the swaps land mid-stream.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, step := range []int{9, 3, 6} {
					for ingested.Load() < int64(writers*perWriter)/4 {
						// Spin until a quarter of the stream is in; writers
						// are still running, so this terminates.
					}
					if err := s.Reshard(step); err != nil {
						t.Errorf("Reshard(%d): %v", step, err)
						return
					}
					// Interleave queries with the swaps: the fold cache must
					// serve consistent answers mid-cycle.
					if s.Count() > 0 {
						_ = s.Quantile(0.5)
						_ = s.Rank(1 << 15)
					}
				}
			}()
			wg.Wait()
			if s.Count() != int64(len(data)) {
				t.Fatalf("count %d, want %d: the swap lost or duplicated writes", s.Count(), len(data))
			}
			if s.Shards() != 6 || s.Generation() != 3 {
				t.Fatalf("Shards=%d Generation=%d after cycle", s.Shards(), s.Generation())
			}
			if err := s.Invariants(); err != nil {
				t.Fatal(err)
			}
			sorted := sortedCopy(data)
			tol := elasticTol(s, len(data))
			for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
				rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
			}
		})
	}
}

// TestRetargetCoarser re-ε's a mergeable container to a wider budget:
// the old data is absorbed through RetargetMerge (no components), and
// the composed budget becomes the new, coarser ε.
func TestRetargetCoarser(t *testing.T) {
	data := batchTestData(30000)
	s := mustShardedCash(t, 4, func() CashRegister { return NewKLL(0.01, 7) })
	feedBatches(s.UpdateBatch, data[:15000])
	if err := s.Retarget(func() CashRegister { return NewKLL(0.05, 7) }); err != nil {
		t.Fatal(err)
	}
	if got := s.EpsBudget(); got != 0.05 {
		t.Fatalf("EpsBudget = %v, want 0.05", got)
	}
	if s.Components() != 0 {
		t.Fatalf("coarsening froze %d components, want absorption", s.Components())
	}
	feedBatches(s.UpdateBatch, data[15000:])
	if s.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", s.Count(), len(data))
	}
	if err := s.Invariants(); err != nil {
		t.Fatal(err)
	}
	sorted := sortedCopy(data)
	tol := elasticTol(s, len(data))
	for _, phi := range EvenPhis(0.1) {
		rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
	}
}

// TestRetargetFiner re-ε's to a tighter budget: absorbing would pin the
// whole sketch at the coarse ε forever, so the old data freezes as
// components keeping its own budget while new data earns the finer one.
func TestRetargetFiner(t *testing.T) {
	data := batchTestData(30000)
	s := mustShardedCash(t, 4, func() CashRegister { return NewKLL(0.05, 7) })
	feedBatches(s.UpdateBatch, data[:15000])
	if err := s.Retarget(func() CashRegister { return NewKLL(0.01, 7) }); err != nil {
		t.Fatal(err)
	}
	if got := s.Components(); got != 4 {
		t.Fatalf("refining froze %d components, want 4", got)
	}
	// The frozen data keeps its 0.05 budget; the composed max stays 0.05.
	if got := s.EpsBudget(); got != 0.05 {
		t.Fatalf("EpsBudget = %v, want 0.05", got)
	}
	feedBatches(s.UpdateBatch, data[15000:])
	if s.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", s.Count(), len(data))
	}
	if err := s.Invariants(); err != nil {
		t.Fatal(err)
	}
	sorted := sortedCopy(data)
	tol := elasticTol(s, len(data))
	for _, phi := range EvenPhis(0.1) {
		rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
	}
}

// TestRetargetGKFreezes: the GK family has no merge and no
// retarget-merge, so a re-ε freezes every populated shard.
func TestRetargetGKFreezes(t *testing.T) {
	data := batchTestData(20000)
	s := mustShardedCash(t, 4, func() CashRegister { return NewGKArray(0.02) })
	feedBatches(s.UpdateBatch, data[:10000])
	if err := s.Retarget(func() CashRegister { return NewGKArray(0.01) }); err != nil {
		t.Fatal(err)
	}
	if got := s.Components(); got != 4 {
		t.Fatalf("Components = %d, want 4", got)
	}
	if got := s.EpsBudget(); got != 0.02 {
		t.Fatalf("EpsBudget = %v, want 0.02", got)
	}
	feedBatches(s.UpdateBatch, data[10000:])
	if s.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", s.Count(), len(data))
	}
	sorted := sortedCopy(data)
	tol := elasticTol(s, len(data))
	for _, phi := range EvenPhis(0.1) {
		rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
	}
}

// TestTurnstileReshardExact: dyadic shards are linear, so a reshard
// drain is an exact merge and the resharded container must agree
// bit-for-bit with an unsharded reference — including deletions that
// arrive after the swap for elements inserted before it.
func TestTurnstileReshardExact(t *testing.T) {
	data := batchTestData(20000)
	ref := NewDCS(0.05, 16, DyadicConfig{Seed: 7})
	s := mustShardedTurn(t, 4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
	feedBatches(s.InsertBatch, data)
	for _, x := range data {
		ref.Insert(x)
	}
	if err := s.Reshard(3); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 || s.Generation() != 1 {
		t.Fatalf("Shards=%d Generation=%d", s.Shards(), s.Generation())
	}
	// Deletions routed under the new modulus must cancel against
	// insertions merged from the old one.
	feedBatches(s.DeleteBatch, data[:5000])
	for _, x := range data[:5000] {
		ref.Delete(x)
	}
	if s.Count() != ref.Count() {
		t.Fatalf("count %d, reference %d", s.Count(), ref.Count())
	}
	if err := s.Invariants(); err != nil {
		t.Fatal(err)
	}
	for _, phi := range EvenPhis(0.2) {
		if a, b := s.Quantile(phi), ref.Quantile(phi); a != b {
			t.Errorf("Quantile(%v) = %d, unsharded %d", phi, a, b)
		}
	}
	for probe := uint64(0); probe < 1<<16; probe += 1009 {
		if a, b := s.Rank(probe), ref.Rank(probe); a != b {
			t.Errorf("Rank(%d) = %d, unsharded %d", probe, a, b)
		}
	}
}

// TestTurnstileReshardNonMergeableRejected: a factory whose instances
// cannot merge (drifting seeds) must be rejected — a frozen component
// could never cancel a later deletion.
func TestTurnstileReshardNonMergeableRejected(t *testing.T) {
	var seed atomic.Uint64
	s := mustShardedTurn(t, 2, func() Turnstile {
		return NewDCS(0.05, 16, DyadicConfig{Seed: seed.Add(1)})
	})
	s.Insert(42)
	if err := s.Reshard(4); err == nil {
		t.Fatal("reshard of a non-mergeable turnstile family did not error")
	}
	if s.Shards() != 2 || s.Generation() != 0 {
		t.Fatalf("failed reshard mutated topology: Shards=%d Generation=%d", s.Shards(), s.Generation())
	}
	if s.Count() != 1 {
		t.Fatalf("count %d after rejected reshard", s.Count())
	}
}

// TestTurnstileRetarget: an identically configured factory absorbs via
// exact merge; an incompatible one must be rejected by the probe
// without touching the live topology.
func TestTurnstileRetarget(t *testing.T) {
	data := batchTestData(10000)
	s := mustShardedTurn(t, 4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
	feedBatches(s.InsertBatch, data)

	if err := s.Retarget(func() Turnstile { return NewDCS(0.01, 16, DyadicConfig{Seed: 9}) }); err == nil {
		t.Fatal("incompatible turnstile retarget did not error")
	}
	if s.Generation() != 0 || s.Count() != int64(len(data)) {
		t.Fatalf("rejected retarget mutated state: Generation=%d Count=%d", s.Generation(), s.Count())
	}

	if err := s.Retarget(func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) }); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 1 {
		t.Fatalf("Generation = %d after retarget", s.Generation())
	}
	feedBatches(s.DeleteBatch, data[:3000])
	ref := NewDCS(0.05, 16, DyadicConfig{Seed: 7})
	for _, x := range data[3000:] {
		ref.Insert(x)
	}
	if s.Count() != ref.Count() {
		t.Fatalf("count %d, reference %d", s.Count(), ref.Count())
	}
	for probe := uint64(0); probe < 1<<16; probe += 2003 {
		if a, b := s.Rank(probe), ref.Rank(probe); a != b {
			t.Errorf("Rank(%d) = %d, unsharded %d", probe, a, b)
		}
	}
}

// TestShardedCodecRoundTrip pins the container codec: a mid-life
// topology (post-shrink, with frozen components) must round-trip to a
// byte-identical re-marshal with identical answers, and the decoded
// container must keep operating (ingest, reshard) afterwards.
func TestShardedCodecRoundTrip(t *testing.T) {
	data := batchTestData(20000)
	s := mustShardedCash(t, 4, func() CashRegister { return NewGKArray(0.01) })
	feedBatches(s.UpdateBatch, data)
	if err := s.Reshard(2); err != nil { // freezes two components
		t.Fatal(err)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	rec := mustShardedCash(t, 4, func() CashRegister { return NewGKArray(0.01) })
	if err := rec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if rec.Shards() != s.Shards() || rec.Generation() != s.Generation() || rec.Components() != s.Components() {
		t.Fatalf("decoded topology Shards=%d Gen=%d Comps=%d, want %d/%d/%d",
			rec.Shards(), rec.Generation(), rec.Components(), s.Shards(), s.Generation(), s.Components())
	}
	reblob, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, reblob) {
		t.Fatalf("re-marshal differs: %d vs %d bytes", len(reblob), len(blob))
	}
	if rec.Count() != s.Count() {
		t.Fatalf("count %d, want %d", rec.Count(), s.Count())
	}
	if err := rec.Invariants(); err != nil {
		t.Fatal(err)
	}
	for _, phi := range EvenPhis(0.1) {
		if a, b := rec.Quantile(phi), s.Quantile(phi); a != b {
			t.Errorf("Quantile(%v) = %d, original %d", phi, a, b)
		}
	}
	// The decoded container stays live: more data, another reshard.
	extra := batchTestData(30000)[20000:]
	feedBatches(rec.UpdateBatch, extra)
	if err := rec.Reshard(5); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != int64(20000+len(extra)) {
		t.Fatalf("count %d after post-decode ingest", rec.Count())
	}
	if err := rec.Invariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedTurnstileCodecRoundTrip is the turnstile counterpart, and
// pins that a turnstile encoding carrying components is rejected.
func TestShardedTurnstileCodecRoundTrip(t *testing.T) {
	data := batchTestData(10000)
	s := mustShardedTurn(t, 4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
	feedBatches(s.InsertBatch, data)
	feedBatches(s.DeleteBatch, data[:2000])
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rec := mustShardedTurn(t, 2, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
	if err := rec.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if rec.Shards() != 4 {
		t.Fatalf("decoded Shards = %d, want 4", rec.Shards())
	}
	reblob, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, reblob) {
		t.Fatalf("re-marshal differs: %d vs %d bytes", len(reblob), len(blob))
	}
	if rec.Count() != s.Count() {
		t.Fatalf("count %d, want %d", rec.Count(), s.Count())
	}
	for probe := uint64(0); probe < 1<<16; probe += 2003 {
		if a, b := rec.Rank(probe), s.Rank(probe); a != b {
			t.Errorf("Rank(%d) = %d, original %d", probe, a, b)
		}
	}
}

// TestSafeRetarget covers the wrapper-level re-ε: absorption through
// RetargetMerge, rejection when no absorb path exists, and the
// capability re-probe (a retarget that lands on a Flusher must demote
// queries to exclusive locks; one that lands on a Snapshotter must
// re-arm the snapshot cache).
func TestSafeRetarget(t *testing.T) {
	data := batchTestData(20000)
	c := NewSafeCashRegister(NewKLL(0.01, 7))
	feedBatches(c.UpdateBatch, data[:10000])
	if err := c.Retarget(NewKLL(0.05, 7)); err != nil {
		t.Fatal(err)
	}
	feedBatches(c.UpdateBatch, data[10000:])
	if c.Count() != int64(len(data)) {
		t.Fatalf("count %d, want %d", c.Count(), len(data))
	}
	sorted := sortedCopy(data)
	tol := int64(2 * 0.05 * float64(len(data)))
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		rankWithinEps(t, sorted, phi, c.Quantile(phi), tol)
	}

	// GKArray has no absorb path: a live retarget must fail and leave the
	// wrapper untouched.
	g := NewSafeCashRegister(NewGKArray(0.01))
	g.Update(1)
	if err := g.Retarget(NewGKArray(0.05)); err == nil {
		t.Fatal("retarget without an absorb path did not error")
	}
	if g.Count() != 1 {
		t.Fatalf("failed retarget mutated state: count %d", g.Count())
	}

	// An empty wrapper absorbs trivially — and the capability probes must
	// track the new summary: KLL reads are shared, GKArray's flush on
	// query demands exclusive reads.
	e := NewSafeCashRegister(NewKLL(0.01, 7))
	if e.exclusiveReads.Load() {
		t.Fatal("KLL demoted to exclusive reads")
	}
	if err := e.Retarget(NewGKArray(0.01)); err != nil {
		t.Fatal(err)
	}
	if !e.exclusiveReads.Load() {
		t.Fatal("retarget onto a Flusher kept shared reads")
	}
	e.Update(7)
	if got := e.Quantile(0.5); got != 7 {
		t.Fatalf("Quantile after retarget = %d, want 7", got)
	}
}
