package streamquantiles

import (
	"testing"

	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

// These are the duplicate-atom regression tests referenced by the rank
// descent in internal/sharded/query.go: core.Summary.Rank(x) estimates
// #{y < x} — STRICTLY smaller — and a summary that counts x's own
// occurrences into Rank(x) shifts every heavy atom's rank span and
// drags quantile answers below the atom. The GK families once violated
// the contract exactly this way (a `t.v > x` scan cutoff accumulated
// x's duplicate tuples into the estimate), which surfaced as sharded
// Quantile answers stuck one value below a heavy top atom on clamped
// Zipf streams.

// atomStream is 12000 spread low values followed by 13000 copies of
// the universe maximum: an extreme version of the heavy boundary atom
// that streamgen.Zipf's universe clamp produces.
func atomStream() ([]uint64, uint64) {
	const atom = uint64(65535)
	data := make([]uint64, 0, 25000)
	for i := 0; i < 12000; i++ {
		data = append(data, uint64(i%4096))
	}
	for i := 0; i < 13000; i++ {
		data = append(data, atom)
	}
	return data, atom
}

// TestRankStrictlySmallerAtAtoms pins the Rank contract at a heavy
// duplicate atom for every cash-register family: the estimate must
// track #{y < atom}, not #{y <= atom} — the two differ by 13000 here,
// so a contract violation is unmissable at any sane ε.
func TestRankStrictlySmallerAtAtoms(t *testing.T) {
	const eps = 0.02
	data, atom := atomStream()
	oracle := exact.New(data)
	want := oracle.Rank(atom)
	tol := int64(eps * float64(len(data)))

	cash := map[string]CashRegister{
		"GKAdaptive":  NewGKAdaptive(eps),
		"GKTheory":    NewGKTheory(eps),
		"GKArray":     NewGKArray(eps),
		"FastQDigest": NewQDigest(eps, 16),
		"MRL99":       NewMRL99(eps, 7),
		"Random":      NewRandom(eps, 7),
		"KLL":         NewKLL(eps, 7),
	}
	for name, s := range cash {
		for _, x := range data {
			s.Update(x)
		}
		got := s.Rank(atom)
		if got < want-tol || got > want+tol {
			t.Errorf("%s: Rank(%d) = %d, want #{y < %d} = %d ± %d", name, atom, got, atom, want, tol)
		}
	}
}

// TestShardedQuantileAtHeavyAtom drives the heavy-atom stream through
// the sharded rank-descent query: more than half the mass sits on the
// top atom, so upper quantiles must answer the atom itself, not the
// value one below it.
func TestShardedQuantileAtHeavyAtom(t *testing.T) {
	const eps = 0.01
	data, atom := atomStream()
	for name, fresh := range map[string]func() CashRegister{
		"GKArray": func() CashRegister { return NewGKArray(eps) },
		"KLL":     func() CashRegister { return NewKLL(eps, 7) },
		"MRL99":   func() CashRegister { return NewMRL99(eps, 7) },
	} {
		c, err := NewShardedCashRegister(4, fresh)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(data); i += 500 {
			end := i + 500
			if end > len(data) {
				end = len(data)
			}
			c.UpdateBatch(data[i:end])
		}
		for _, phi := range []float64{0.6, 0.75, 0.9, 0.99} {
			if got := c.Quantile(phi); got != atom {
				t.Errorf("%s: sharded Quantile(%v) = %d, want heavy atom %d", name, phi, got, atom)
			}
		}
	}
}

// TestMRLReshardRankAccuracy pins the short-buffer COLLAPSE fix in
// internal/mrl: a merge-based grow reshard grafts partially-filled
// buffers into the target summaries, and a floor-rounded collapse
// stride used to truncate the top of the weighted sequence — a
// systematic upper-quantile underestimate of up to ~3.5·ε·n. The
// reshard position sweep reproduces the worst historical offenders.
func TestMRLReshardRankAccuracy(t *testing.T) {
	const ops, nw, batch = 60000, 4, 512
	per := ops / nw
	streams := make([][]uint64, nw)
	for w := 0; w < nw; w++ {
		streams[w] = streamgen.Generate(streamgen.Uniform{Bits: 14, Seed: 1*1000003 + uint64(w)}, per)
	}
	for _, reshardAt := range []int{512, 8192, 20480, 33072, 50176} {
		c, err := NewShardedCashRegister(4, func() CashRegister { return NewMRL99(0.01, 1) })
		if err != nil {
			t.Fatal(err)
		}
		var all []uint64
		pos := make([]int, nw)
		total, w := 0, 0
		for total < ops {
			if total >= reshardAt && c.Shards() == 4 {
				if err := c.Reshard(6); err != nil {
					t.Fatal(err)
				}
			}
			if pos[w] < per {
				end := pos[w] + batch
				if end > per {
					end = per
				}
				b := streams[w][pos[w]:end]
				c.UpdateBatch(b)
				all = append(all, b...)
				total += len(b)
				pos[w] = end
			}
			w = (w + 1) % nw
		}
		o := exact.New(all)
		tol := int64(2*0.01*float64(ops)) + int64(c.Shards())
		for _, phi := range []float64{0.75, 0.9, 0.95, 0.98} {
			x := o.Quantile(phi)
			if d := c.Rank(x) - o.Rank(x); d < -tol || d > tol {
				t.Errorf("reshardAt=%d: Rank(%d) off by %d, tolerance %d", reshardAt, x, d, tol)
			}
		}
	}
}
