package streamquantiles

import (
	"encoding"
	"fmt"
	"time"

	"streamquantiles/internal/checkpoint"
	"streamquantiles/internal/core"
	"streamquantiles/internal/invariant"
)

// Durability layer. A streaming summary cannot be rebuilt after a crash
// — the cash-register model forbids re-reading the input — so the
// summary state is checkpointed to disk instead: atomic,
// generation-numbered files framing the summaries' binary encodings
// with a versioned header and CRC32C integrity codes. Recovery scans
// newest-first and degrades gracefully past corrupt or torn
// generations, reporting what it skipped and why. See
// internal/checkpoint for the file format and internal/faultio for the
// fault-injection harness that exercises every failure mode.

// Checkpointer writes generation-numbered checkpoint files into one
// directory using the write-to-temp → fsync → rename protocol, retrying
// transient storage errors with capped exponential backoff and full
// jitter. It is not goroutine-safe; give each checkpoint directory one
// writer.
type Checkpointer = checkpoint.Checkpointer

// RecoveryReport describes what checkpoint recovery loaded and what it
// rejected (with reasons) on the way.
type RecoveryReport = checkpoint.RecoveryReport

// CheckpointFS abstracts the filesystem under the checkpoint layer;
// production code uses the real one implicitly, tests substitute the
// fault-injecting shims of internal/faultio.
type CheckpointFS = checkpoint.FS

// CheckpointOption customizes OpenCheckpointDir (retention, retry
// policy, filesystem).
type CheckpointOption = checkpoint.Option

// ErrNoCheckpoint reports that recovery found no usable generation:
// the directory is empty or everything in it failed validation.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// ErrCorrupt is wrapped by every decoding failure in the library —
// truncated input, hostile length prefixes, failed integrity checks —
// so callers can distinguish bad bytes from environmental errors with
// errors.Is.
var ErrCorrupt = core.ErrCorrupt

// OpenCheckpointDir prepares dir for checkpointing, creating it if
// needed and positioning the generation counter after any existing
// checkpoints, so a restarted process continues the sequence.
func OpenCheckpointDir(dir string, opts ...CheckpointOption) (*Checkpointer, error) {
	return checkpoint.Open(dir, opts...)
}

// SaveCheckpoint marshals s and durably publishes it as the next
// generation in ck's directory, returning the generation number. The
// label (typically the algorithm name) is stored in the header and
// surfaces again in the RecoveryReport, before any payload is decoded.
func SaveCheckpoint(ck *Checkpointer, label string, s encoding.BinaryMarshaler) (uint64, error) {
	payload, err := s.MarshalBinary()
	if err != nil {
		return 0, fmt.Errorf("streamquantiles: marshal for checkpoint: %w", err)
	}
	return ck.Save(label, payload)
}

// RecoverCheckpoint loads the newest checkpoint in dir that passes
// every validation layer — header, CRC32C integrity, decoding into
// target, and target's deep structural invariants (when it implements
// Checkable, which every summary in this library does) — and reports
// what was loaded and what was skipped. Generations failing any check
// are passed over for the next older one. On error, target's contents
// are unspecified.
func RecoverCheckpoint(dir string, target encoding.BinaryUnmarshaler) (*RecoveryReport, error) {
	return RecoverCheckpointFS(checkpoint.OSFS{}, dir, target)
}

// RecoverCheckpointFS is RecoverCheckpoint over an explicit filesystem;
// the crash-recovery tests drive it through internal/faultio shims.
func RecoverCheckpointFS(fs CheckpointFS, dir string, target encoding.BinaryUnmarshaler) (*RecoveryReport, error) {
	obs, finish := candidateTimer()
	_, report, err := checkpoint.RecoverObserved(fs, dir, func(label string, payload []byte) error {
		return decodeValidated(target, payload)
	}, obs)
	finish(report)
	return report, err
}

// candidateTimer builds the CandidateObserver that stamps each recovery
// candidate's decode wall time into the report. The internal checkpoint
// package never reads the clock (its behavior must stay deterministic
// under test schedules); timing is injected here, at the public layer,
// and surfaced through RecoveryReport.Candidates.
func candidateTimer() (checkpoint.CandidateObserver, func(*RecoveryReport)) {
	var timings []checkpoint.CandidateTiming
	obs := func(file string, gen uint64) func() {
		start := time.Now()
		timings = append(timings, checkpoint.CandidateTiming{File: file, Generation: gen})
		i := len(timings) - 1
		return func() { timings[i].Decode = time.Since(start) }
	}
	finish := func(report *RecoveryReport) {
		if report == nil {
			return
		}
		for i := range timings {
			timings[i].Loaded = report.Loaded && timings[i].File == report.File
		}
		report.Candidates = timings
	}
	return obs, finish
}

// RecoverCheckpointFunc is RecoverCheckpoint for callers that do not
// know in advance what was checkpointed: build receives the label stored
// in each candidate's header and returns a fresh decode target for it
// (or an error to reject the candidate). The successfully decoded target
// is returned. cmd/quantcli's resume path uses this to reconstruct the
// right summary type from the checkpoint alone.
func RecoverCheckpointFunc(dir string, build func(label string) (encoding.BinaryUnmarshaler, error)) (encoding.BinaryUnmarshaler, *RecoveryReport, error) {
	var got encoding.BinaryUnmarshaler
	obs, finish := candidateTimer()
	_, report, err := checkpoint.RecoverObserved(checkpoint.OSFS{}, dir, func(label string, payload []byte) error {
		target, err := build(label)
		if err != nil {
			return err
		}
		if err := decodeValidated(target, payload); err != nil {
			return err
		}
		got = target
		return nil
	}, obs)
	finish(report)
	return got, report, err
}

// decodeValidated decodes payload into target and, when the target can
// self-verify (every summary in this library can), re-checks its deep
// structural invariants: a checkpoint that decodes but violates its own
// accuracy guarantee is as unusable as one failing its CRC.
func decodeValidated(target encoding.BinaryUnmarshaler, payload []byte) error {
	if err := target.UnmarshalBinary(payload); err != nil {
		return err
	}
	if c, ok := target.(Checkable); ok {
		if err := invariant.Check(c); err != nil {
			return fmt.Errorf("decoded summary fails invariants: %w", err)
		}
	}
	return nil
}
