package streamquantiles

import (
	"sort"
	"sync"
	"testing"
)

// Writer-handle equivalence properties: a container fed through
// per-goroutine writer handles must conserve counts exactly and answer
// rank queries within the same composed ε bound as the direct
// UpdateBatch path — the handles change memory placement and locking,
// never the data. The concurrent tests run real multi-writer traffic
// (meaningful under -race), including flushes racing an online reshard.

// writerChunks splits data into w contiguous chunks, one per writer.
func writerChunks(data []uint64, w int) [][]uint64 {
	chunks := make([][]uint64, w)
	per := (len(data) + w - 1) / w
	for i := range chunks {
		lo := i * per
		hi := lo + per
		if lo > len(data) {
			lo = len(data)
		}
		if hi > len(data) {
			hi = len(data)
		}
		chunks[i] = data[lo:hi]
	}
	return chunks
}

// TestCashWriterEquivalence: for every cash family, the same stream fed
// through 4 concurrent writer handles (mixed Update/UpdateBatch) must
// conserve the count exactly, keep the shard invariants, and answer
// quantiles within the composed ε bound — the same tolerance the direct
// UpdateBatch tests use, because the handles deliver through the same
// shard paths.
func TestCashWriterEquivalence(t *testing.T) {
	data := batchTestData(30000)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, tc := range shardedCashCases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustShardedCash(t, 4, tc.fresh)
			var wg sync.WaitGroup
			for wi, chunk := range writerChunks(data, 4) {
				wg.Add(1)
				go func(wi int, chunk []uint64) {
					defer wg.Done()
					w := s.AcquireWriter()
					defer w.Close()
					// Alternate element-at-a-time and batched feeding so both
					// buffer paths (append + large-batch bypass) are exercised.
					if wi%2 == 0 {
						for _, x := range chunk {
							w.Update(x)
						}
					} else {
						feedBatches(w.UpdateBatch, chunk)
					}
				}(wi, chunk)
			}
			wg.Wait()
			if s.Count() != int64(len(data)) {
				t.Fatalf("count %d, want %d: writer handles must conserve counts exactly", s.Count(), len(data))
			}
			if err := s.Invariants(); err != nil {
				t.Fatalf("shard invariants: %v", err)
			}
			tol := int64(2 * tc.eps * float64(len(data)))
			for _, phi := range EvenPhis(0.1) {
				rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
			}
		})
	}
}

// TestTurnWriterEquivalence: turnstile writer handles buffer insertions
// and deletions separately; the net container must agree exactly with
// an unsharded sketch of the same stream for the linear dyadic families
// (identical seeds, merges are exact), despite 4 concurrent handles and
// buffered deletions lagging their insertions.
func TestTurnWriterEquivalence(t *testing.T) {
	data := batchTestData(24000)
	for _, tc := range []struct {
		name  string
		fresh func() Turnstile
	}{
		{"dcm", func() Turnstile { return NewDCM(0.05, 16, DyadicConfig{Seed: 7}) }},
		{"dcs", func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.fresh()
			for i, x := range data {
				ref.Insert(x)
				if i%3 == 0 {
					ref.Delete(x)
				}
			}
			s := mustShardedTurn(t, 4, tc.fresh)
			var wg sync.WaitGroup
			for _, chunk := range writerChunks(data, 4) {
				wg.Add(1)
				go func(chunk []uint64) {
					defer wg.Done()
					w := s.AcquireWriter()
					defer w.Close()
					for i, x := range chunk {
						w.Insert(x)
						if i%3 == 0 {
							w.Delete(x) // buffered with its insertion: ins flush first
						}
					}
				}(chunk)
			}
			wg.Wait()
			if s.Count() != ref.Count() {
				t.Fatalf("count %d, want %d", s.Count(), ref.Count())
			}
			if err := s.Invariants(); err != nil {
				t.Fatalf("shard invariants: %v", err)
			}
			for _, x := range []uint64{1 << 8, 1 << 12, 1 << 15} {
				if got, want := s.Rank(x), ref.Rank(x); got != want {
					t.Errorf("Rank(%d) = %d, want %d (linear sketches must agree exactly)", x, got, want)
				}
			}
		})
	}
}

// TestCashWriterConcurrentReshard: flushes racing online reshards must
// re-route to the live generation — count conservation is structural.
// Two reshards (grow then shrink) run mid-stream while 4 handles flush
// every writerBufLen elements.
func TestCashWriterConcurrentReshard(t *testing.T) {
	data := batchTestData(40000)
	sorted := append([]uint64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, tc := range shardedCashCases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustShardedCash(t, 4, tc.fresh)
			start := make(chan struct{})
			var wg sync.WaitGroup
			for _, chunk := range writerChunks(data, 4) {
				wg.Add(1)
				go func(chunk []uint64) {
					defer wg.Done()
					w := s.AcquireWriter()
					defer w.Close()
					<-start
					for _, x := range chunk {
						w.Update(x)
					}
				}(chunk)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := s.Reshard(6); err != nil {
					t.Errorf("Reshard(6): %v", err)
				}
				if err := s.Reshard(3); err != nil {
					t.Errorf("Reshard(3): %v", err)
				}
			}()
			close(start)
			wg.Wait()
			if s.Count() != int64(len(data)) {
				t.Fatalf("count %d, want %d after concurrent reshards", s.Count(), len(data))
			}
			if err := s.Invariants(); err != nil {
				t.Fatalf("shard invariants: %v", err)
			}
			tol := int64(2 * tc.eps * float64(len(data)))
			for _, phi := range EvenPhis(0.2) {
				rankWithinEps(t, sorted, phi, s.Quantile(phi), tol)
			}
		})
	}
}

// TestTurnWriterConcurrentReshard is the turnstile version: buffered
// inserts and deletes flushing across a routing-modulus change must
// still cancel exactly.
func TestTurnWriterConcurrentReshard(t *testing.T) {
	data := batchTestData(30000)
	s := mustShardedTurn(t, 4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
	start := make(chan struct{})
	var wg sync.WaitGroup
	var wantN int64
	for _, chunk := range writerChunks(data, 4) {
		n := int64(len(chunk)) - int64((len(chunk)+2)/3)
		wantN += n
		wg.Add(1)
		go func(chunk []uint64) {
			defer wg.Done()
			w := s.AcquireWriter()
			defer w.Close()
			<-start
			for i, x := range chunk {
				w.Insert(x)
				if i%3 == 0 {
					w.Delete(x)
				}
			}
		}(chunk)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := s.Reshard(6); err != nil {
			t.Errorf("Reshard(6): %v", err)
		}
		if err := s.Reshard(3); err != nil {
			t.Errorf("Reshard(3): %v", err)
		}
	}()
	close(start)
	wg.Wait()
	if s.Count() != wantN {
		t.Fatalf("count %d, want %d after concurrent reshards", s.Count(), wantN)
	}
	if err := s.Invariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestWriterCloseFlushes is the leak test: a handle's buffered elements
// are invisible to queries until Flush, and Close must surface every
// one of them — dropping a closed handle can never strand data.
func TestWriterCloseFlushes(t *testing.T) {
	t.Run("cash", func(t *testing.T) {
		s := mustShardedCash(t, 4, func() CashRegister { return NewKLL(0.01, 7) })
		w := s.AcquireWriter()
		for i := 0; i < 100; i++ { // under writerBufLen: nothing auto-flushes
			w.Update(uint64(i))
		}
		if got := w.Buffered(); got != 100 {
			t.Fatalf("Buffered() = %d, want 100", got)
		}
		if got := s.Count(); got != 0 {
			t.Fatalf("container count %d before flush, want 0 (buffered elements must be writer-local)", got)
		}
		w.Close()
		if got := w.Buffered(); got != 0 {
			t.Errorf("Buffered() = %d after Close, want 0", got)
		}
		if got := s.Count(); got != 100 {
			t.Errorf("container count %d after Close, want 100: Close must flush", got)
		}
	})
	t.Run("turnstile", func(t *testing.T) {
		s := mustShardedTurn(t, 4, func() Turnstile { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) })
		w := s.AcquireWriter()
		for i := 0; i < 80; i++ {
			w.Insert(uint64(i))
		}
		for i := 0; i < 30; i++ {
			w.Delete(uint64(i))
		}
		if got := w.Buffered(); got != 110 {
			t.Fatalf("Buffered() = %d, want 110", got)
		}
		if got := s.Count(); got != 0 {
			t.Fatalf("container count %d before flush, want 0", got)
		}
		w.Close()
		if got := s.Count(); got != 50 {
			t.Errorf("container count %d after Close, want 50", got)
		}
	})
}

// TestWriterLargeBatchBypass pins the direct-delivery path: a batch at
// or above writerBufLen skips the buffer copy but must still respect
// ordering with any buffered prefix.
func TestWriterLargeBatchBypass(t *testing.T) {
	s := mustShardedCash(t, 4, func() CashRegister { return NewKLL(0.01, 7) })
	w := s.AcquireWriter()
	w.Update(1) // buffered prefix
	big := make([]uint64, 5000)
	for i := range big {
		big[i] = uint64(i)
	}
	w.UpdateBatch(big)
	w.Close()
	if got, want := s.Count(), int64(1+len(big)); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
}
