package streamquantiles

import (
	"errors"
	"testing"
)

// FuzzDecodeMutated is the decoder-robustness harness: it takes a valid
// encoding (the corpus is seeded with golden encodings of every summary
// that owns a codec), applies a parameterized mutation — truncate to
// cut bytes, XOR mask into position pos — and feeds the result to every
// summary's decoder. The contract under test:
//
//   - no panic and no unbounded allocation, whatever the bytes say
//     (hostile length prefixes are the classic failure);
//   - every decode failure wraps the shared ErrCorrupt sentinel, so
//     callers can tell bad bytes from environmental errors;
//   - an input that happens to decode yields a summary that can at
//     least re-encode and answer Count without panicking.
//
// `go test` runs the seed corpus (the CI pass); `go test
// -fuzz=FuzzDecodeMutated` explores further.
func FuzzDecodeMutated(f *testing.F) {
	for _, ms := range matrixSummaries {
		s := ms.fresh()
		feedRange(s, 0, 600)
		blob, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob, uint16(0), byte(0), uint16(len(blob)))              // pristine
		f.Add(blob, uint16(len(blob)/2), byte(0x80), uint16(len(blob))) // mid-payload bit flip
		f.Add(blob, uint16(2), byte(0xFF), uint16(len(blob)))           // mangled header
		f.Add(blob, uint16(0), byte(0), uint16(len(blob)/2))            // truncation
		f.Add(blob, uint16(7), byte(0x40), uint16(len(blob)-1))         // lost tail + flip
	}
	f.Fuzz(func(t *testing.T, raw []byte, pos uint16, mask byte, cut uint16) {
		mut := append([]byte(nil), raw...)
		if int(cut) < len(mut) {
			mut = mut[:cut]
		}
		if len(mut) > 0 {
			mut[int(pos)%len(mut)] ^= mask
		}
		for _, ms := range matrixSummaries {
			target := ms.fresh()
			err := target.UnmarshalBinary(mut)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s: decode error does not wrap ErrCorrupt: %v", ms.name, err)
				}
				continue
			}
			// The mutation decoded; the resulting state need not be
			// semantically sane (a flipped counter bit is not detectable
			// without redundancy) but must stay mechanically usable.
			if _, err := target.MarshalBinary(); err != nil {
				t.Fatalf("%s: re-marshal after successful decode: %v", ms.name, err)
			}
			_ = target.Count()
		}
	})
}
