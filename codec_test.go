package streamquantiles

import (
	"encoding"
	"testing"
)

// Every summary type implements encoding.BinaryMarshaler /
// BinaryUnmarshaler; this file pins the public-API surface.

func TestPublicSerializationSurface(t *testing.T) {
	var (
		_ encoding.BinaryMarshaler   = (*GKAdaptive)(nil)
		_ encoding.BinaryUnmarshaler = (*GKAdaptive)(nil)
		_ encoding.BinaryMarshaler   = (*GKTheory)(nil)
		_ encoding.BinaryUnmarshaler = (*GKTheory)(nil)
		_ encoding.BinaryMarshaler   = (*GKArray)(nil)
		_ encoding.BinaryUnmarshaler = (*GKArray)(nil)
		_ encoding.BinaryMarshaler   = (*QDigest)(nil)
		_ encoding.BinaryUnmarshaler = (*QDigest)(nil)
		_ encoding.BinaryMarshaler   = (*MRL99)(nil)
		_ encoding.BinaryUnmarshaler = (*MRL99)(nil)
		_ encoding.BinaryMarshaler   = (*Random)(nil)
		_ encoding.BinaryUnmarshaler = (*Random)(nil)
		_ encoding.BinaryMarshaler   = (*DyadicSketch)(nil)
		_ encoding.BinaryUnmarshaler = (*DyadicSketch)(nil)
		_ encoding.BinaryMarshaler   = (*KLL)(nil)
		_ encoding.BinaryUnmarshaler = (*KLL)(nil)
	)
}

func TestCheckpointRestoreFlow(t *testing.T) {
	// The operational story: checkpoint a live summary, restart, restore,
	// keep streaming, answer queries.
	s := NewRandom(0.01, 99)
	for i := uint64(0); i < 100000; i++ {
		s.Update(i % 4096)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewRandom(0.5, 0)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100000; i++ {
		restored.Update(i % 4096)
		s.Update(i % 4096)
	}
	if restored.Quantile(0.5) != s.Quantile(0.5) {
		t.Error("restored summary diverged from uninterrupted one")
	}
}

func TestDistributedTurnstileMergeFlow(t *testing.T) {
	// Shard a turnstile stream over three same-seed DCS sketches (e.g.
	// three ingest servers), ship them as bytes, merge at a coordinator.
	cfg := DyadicConfig{Seed: 5}
	shards := make([]*DyadicSketch, 3)
	for i := range shards {
		shards[i] = NewDCS(0.02, 16, cfg)
	}
	for i := uint64(0); i < 60000; i++ {
		shards[i%3].Insert(i % 50000 % 65536)
	}

	central := NewDCS(0.02, 16, cfg)
	for _, sh := range shards {
		blob, err := sh.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var received DyadicSketch
		if err := received.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		if err := central.Merge(&received); err != nil {
			t.Fatal(err)
		}
	}
	if central.Count() != 60000 {
		t.Fatalf("merged count %d", central.Count())
	}
	whole := NewDCS(0.02, 16, cfg)
	for i := uint64(0); i < 60000; i++ {
		whole.Insert(i % 50000 % 65536)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if central.Quantile(phi) != whole.Quantile(phi) {
			t.Errorf("merged quantile(%v) differs from single-stream sketch", phi)
		}
	}
}
