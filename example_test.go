package streamquantiles_test

import (
	"fmt"

	sq "streamquantiles"
)

// The basic loop: build a summary, stream elements, extract quantiles.
func ExampleNewGKArray() {
	s := sq.NewGKArray(0.01) // deterministic ±1% rank error
	for i := uint64(1); i <= 100000; i++ {
		s.Update(i)
	}
	fmt.Println(s.Count())
	fmt.Println(s.Quantile(0.5) >= 49000 && s.Quantile(0.5) <= 51000)
	// Output:
	// 100000
	// true
}

// Randomized summaries take a seed; the same seed reproduces the same
// summary exactly.
func ExampleNewRandom() {
	a := sq.NewRandom(0.01, 7)
	b := sq.NewRandom(0.01, 7)
	for i := uint64(0); i < 50000; i++ {
		a.Update(i * 977 % 65536)
		b.Update(i * 977 % 65536)
	}
	fmt.Println(a.Quantile(0.9) == b.Quantile(0.9))
	// Output:
	// true
}

// Turnstile summaries handle deletions: summarize only what remains.
func ExampleNewDCS() {
	s := sq.NewDCS(0.01, 16, sq.DyadicConfig{Seed: 1})
	for i := uint64(0); i < 30000; i++ {
		s.Insert(i % 1000) // values 0..999
	}
	for i := uint64(0); i < 30000; i++ {
		if i%1000 >= 500 {
			s.Delete(i % 1000) // remove the top half
		}
	}
	fmt.Println(s.Count())
	fmt.Println(s.Quantile(0.99) < 520) // only 0..499 remain
	// Output:
	// 15000
	// true
}

// PostProcess sharpens a loaded DCS sketch at query time.
func ExamplePostProcess() {
	s := sq.NewDCS(0.01, 20, sq.DyadicConfig{Seed: 1})
	for i := uint64(0); i < 100000; i++ {
		s.Insert(i % 4096)
	}
	post := sq.PostProcess(s, 0) // 0 selects the paper's η = 0.1
	med := post.Quantile(0.5)
	fmt.Println(med >= 2000 && med <= 2100)
	// Output:
	// true
}

// Float64 data flows through the order-preserving key mapping.
func ExampleFloatCashRegister() {
	lat := sq.FloatCashRegister{S: sq.NewGKArray(0.005)}
	for i := 0; i < 10000; i++ {
		lat.Update(float64(i) / 100) // 0.00 … 99.99
	}
	p90 := lat.Quantile(0.9)
	fmt.Println(p90 >= 89 && p90 <= 91)
	// Output:
	// true
}

// q-digests merge: combine summaries computed on different shards.
func ExampleQDigest_Merge() {
	a := sq.NewQDigest(0.01, 16)
	b := sq.NewQDigest(0.01, 16)
	for i := uint64(0); i < 20000; i++ {
		a.Update(i % 30000 % 65536)
		b.Update((i + 20000) % 30000 % 65536)
	}
	a.Merge(b)
	fmt.Println(a.Count())
	// Output:
	// 40000
}

// KLL: the modern successor of the Random/MRL99 lineage, mergeable and
// small.
func ExampleNewKLL() {
	s := sq.NewKLL(0.01, 7)
	for i := uint64(0); i < 100000; i++ {
		s.Update(i % 10000)
	}
	med := s.Quantile(0.5)
	fmt.Println(med >= 4800 && med <= 5200)
	// Output:
	// true
}

// Sliding windows forget old data.
func ExampleNewWindowed() {
	w := sq.NewWindowed(0.05, 1000, 1)
	for i := 0; i < 5000; i++ {
		w.Update(1) // old regime
	}
	for i := 0; i < 1200; i++ {
		w.Update(100) // new regime fills the window
	}
	fmt.Println(w.Quantile(0.5))
	// Output:
	// 100
}

// Exact selection with limited memory over a re-readable source.
func ExampleSelectExact() {
	data := make([]uint64, 10001)
	for i := range data {
		data[i] = uint64(i)
	}
	v, _, _ := sq.SelectExact(sq.SliceSource(data), 5000, 1024, 20)
	fmt.Println(v)
	// Output:
	// 5000
}

// CDF extracts a whole distribution sketch in one call.
func ExampleCDF() {
	s := sq.NewGKArray(0.01)
	for i := uint64(0); i < 10000; i++ {
		s.Update(i)
	}
	pts := sq.CDF(s, 3) // quartiles
	fmt.Println(len(pts), pts[1].Fraction)
	// Output:
	// 3 0.5
}
