package streamquantiles

import (
	"errors"
	"sync"
	"testing"

	"streamquantiles/internal/checkpoint"
	"streamquantiles/internal/faultio"
)

func TestSafeCashRegisterConcurrent(t *testing.T) {
	s := NewSafeCashRegister(NewGKArray(0.01))
	var wg sync.WaitGroup
	const workers = 8
	const per = 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Update(uint64(w*per + i))
				if i%100 == 0 && s.Count() > 0 {
					_ = s.Quantile(0.5)
					_ = s.Rank(uint64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per {
		t.Fatalf("count %d, want %d", s.Count(), workers*per)
	}
	med := s.Quantile(0.5)
	want := uint64(workers * per / 2)
	slack := uint64(float64(workers*per) * 0.01)
	if med < want-slack || med > want+slack {
		t.Errorf("median %d outside %d±%d", med, want, slack)
	}
	qs := s.Quantiles([]float64{0.25, 0.75})
	if len(qs) != 2 || qs[0] > qs[1] {
		t.Errorf("Quantiles returned %v", qs)
	}
	if s.SpaceBytes() <= 0 {
		t.Error("space not positive")
	}
}

// TestSafeFlusherDetection pins the lock-mode selection: summaries that
// flush buffered work at query time must be detected and demoted to
// exclusive reads; pure-reader summaries must keep shared reads.
func TestSafeFlusherDetection(t *testing.T) {
	flushing := map[string]CashRegister{
		"GKArray":  NewGKArray(0.01),
		"GKBiased": NewGKBiased(0.01),
		"QDigest":  NewQDigest(0.01, 16),
	}
	for name, s := range flushing {
		if !NewSafeCashRegister(s).exclusiveReads.Load() {
			t.Errorf("%s flushes on query but was given shared reads", name)
		}
	}
	pure := map[string]CashRegister{
		"GKAdaptive": NewGKAdaptive(0.01),
		"GKTheory":   NewGKTheory(0.01),
		"MRL99":      NewMRL99(0.01, 1),
		"Random":     NewRandom(0.01, 1),
		"KLL":        NewKLL(0.01, 1),
		"Windowed":   NewWindowed(0.05, 1000, 1),
	}
	for name, s := range pure {
		if NewSafeCashRegister(s).exclusiveReads.Load() {
			t.Errorf("%s is a pure reader at query time but was demoted to exclusive reads", name)
		}
	}
	if NewSafeTurnstile(NewDCS(0.05, 12, DyadicConfig{Seed: 1})).exclusiveReads.Load() {
		t.Error("DCS is a pure reader at query time but was demoted to exclusive reads")
	}
}

// TestSafeConcurrentReadersAndWriter drives dedicated reader goroutines
// against a continuous writer, for both lock regimes. Under -race this
// is the proof that shared-read queries are actually sound: a summary
// that mutated during an RLocked query would be flagged immediately.
func TestSafeConcurrentReadersAndWriter(t *testing.T) {
	summaries := map[string]CashRegister{
		"KLL-sharedreads":        NewKLL(0.02, 7),  // pure reader: RLock path
		"GKArray-exclusivereads": NewGKArray(0.02), // Flusher: Lock path
	}
	for name, inner := range summaries {
		t.Run(name, func(t *testing.T) {
			s := NewSafeCashRegister(inner)
			const n = 20000
			const readers = 4
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if s.Count() == 0 {
							continue
						}
						q := s.Quantile(0.5)
						_ = s.Rank(q)
						_ = s.SpaceBytes()
						if i%64 == 0 {
							_ = s.Quantiles([]float64{0.25, 0.75})
						}
					}
				}(r)
			}
			for i := 0; i < n; i++ {
				s.Update(uint64(i))
			}
			close(stop)
			wg.Wait()
			if s.Count() != n {
				t.Fatalf("count %d, want %d", s.Count(), n)
			}
			med := s.Quantile(0.5)
			slack := uint64(float64(n) * 0.02)
			if med < n/2-slack || med > n/2+slack {
				t.Errorf("median %d outside %d±%d", med, n/2, slack)
			}
		})
	}
}

// TestSafeCheckpointWhileUpdating checkpoints a summary repeatedly while
// writers hammer it. Under -race this pins the Snapshot contract: marshal
// runs under the shared lock and must therefore be read-only. Every
// published generation must decode into a self-consistent summary whose
// count reflects some prefix of the concurrent stream.
func TestSafeCheckpointWhileUpdating(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fresh func() CashRegister
	}{
		// One pure reader (shared-lock queries) and one Flusher
		// (exclusive queries, marshals its un-flushed buffer).
		{"KLL", func() CashRegister { return NewKLL(0.02, 7) }},
		{"GKArray", func() CashRegister { return NewGKArray(0.02) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := faultio.NewMemFS()
			ck, err := checkpoint.Open("/ckpt", checkpoint.WithFS(mem), checkpoint.WithKeep(100))
			if err != nil {
				t.Fatal(err)
			}
			s := NewSafeCashRegister(tc.fresh())
			const n = 20000
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := s.Checkpoint(ck, tc.name); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for i := 0; i < n; i++ {
				s.Update(uint64(i))
			}
			close(stop)
			wg.Wait()
			if _, err := s.Checkpoint(ck, tc.name); err != nil {
				t.Fatal(err)
			}
			target := NewSafeCashRegister(tc.fresh())
			report, err := RecoverCheckpointFS(mem, "/ckpt", target)
			if err != nil {
				t.Fatal(err)
			}
			if report.Label != tc.name {
				t.Fatalf("recovered label %q, want %q", report.Label, tc.name)
			}
			if got := target.Count(); got != n {
				t.Fatalf("recovered count %d, want %d (final checkpoint)", got, n)
			}
			med := target.Quantile(0.5)
			slack := uint64(float64(n) * 0.02)
			if med < n/2-slack || med > n/2+slack {
				t.Errorf("recovered median %d outside %d±%d", med, n/2, slack)
			}
		})
	}
}

// TestSafeSnapshotRestoreRoundTrip pins Restore as the exact inverse of
// Snapshot, for both wrapper flavors.
func TestSafeSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewSafeCashRegister(NewGKAdaptive(0.01))
	for i := 0; i < 5000; i++ {
		s.Update(uint64(i))
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSafeCashRegister(NewGKAdaptive(0.5))
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.Quantile(0.5) != s.Quantile(0.5) {
		t.Fatalf("restored (count %d, median %d) differs from original (count %d, median %d)",
			restored.Count(), restored.Quantile(0.5), s.Count(), s.Quantile(0.5))
	}

	ts := NewSafeTurnstile(NewDCS(0.02, 16, DyadicConfig{Seed: 1}))
	for i := 0; i < 2000; i++ {
		ts.Insert(uint64(i % 65536))
	}
	tblob, err := ts.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	trestored := NewSafeTurnstile(NewDCS(0.02, 16, DyadicConfig{Seed: 99}))
	if err := trestored.Restore(tblob); err != nil {
		t.Fatal(err)
	}
	if trestored.Count() != ts.Count() || trestored.Quantile(0.5) != ts.Quantile(0.5) {
		t.Fatal("turnstile restore does not reproduce the original")
	}
}

// TestSafeCheckpointUnsupportedSummary pins the error path for summaries
// without codecs: a clean error, not a panic or silent no-op.
func TestSafeCheckpointUnsupportedSummary(t *testing.T) {
	s := NewSafeCashRegister(NewGKBiased(0.01))
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot on a codec-less summary did not error")
	}
	if err := s.Restore(nil); err == nil {
		t.Fatal("Restore on a codec-less summary did not error")
	}
	mem := faultio.NewMemFS()
	ck, err := checkpoint.Open("/ckpt", checkpoint.WithFS(mem))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(ck, "gkbiased"); err == nil {
		t.Fatal("Checkpoint on a codec-less summary did not error")
	}
	// Nothing may have been published.
	target := NewGKArray(0.01)
	if _, err := RecoverCheckpointFS(mem, "/ckpt", target); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("recovery after failed checkpoint: %v, want ErrNoCheckpoint", err)
	}
}

func TestSafeTurnstileConcurrent(t *testing.T) {
	s := NewSafeTurnstile(NewDCS(0.02, 16, DyadicConfig{Seed: 1}))
	var wg sync.WaitGroup
	const workers = 4
	const per = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				x := uint64((w*per + i) % 65536)
				s.Insert(x)
				if i%2 == 0 {
					s.Delete(x)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per/2 {
		t.Fatalf("count %d, want %d", s.Count(), workers*per/2)
	}
	_ = s.Quantile(0.5)
	_ = s.Rank(1000)
	if s.SpaceBytes() <= 0 {
		t.Error("space not positive")
	}
}
