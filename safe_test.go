package streamquantiles

import (
	"sync"
	"testing"
)

func TestSafeCashRegisterConcurrent(t *testing.T) {
	s := NewSafeCashRegister(NewGKArray(0.01))
	var wg sync.WaitGroup
	const workers = 8
	const per = 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Update(uint64(w*per + i))
				if i%100 == 0 && s.Count() > 0 {
					_ = s.Quantile(0.5)
					_ = s.Rank(uint64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per {
		t.Fatalf("count %d, want %d", s.Count(), workers*per)
	}
	med := s.Quantile(0.5)
	want := uint64(workers * per / 2)
	slack := uint64(float64(workers*per) * 0.01)
	if med < want-slack || med > want+slack {
		t.Errorf("median %d outside %d±%d", med, want, slack)
	}
	qs := s.Quantiles([]float64{0.25, 0.75})
	if len(qs) != 2 || qs[0] > qs[1] {
		t.Errorf("Quantiles returned %v", qs)
	}
	if s.SpaceBytes() <= 0 {
		t.Error("space not positive")
	}
}

func TestSafeTurnstileConcurrent(t *testing.T) {
	s := NewSafeTurnstile(NewDCS(0.02, 16, DyadicConfig{Seed: 1}))
	var wg sync.WaitGroup
	const workers = 4
	const per = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				x := uint64((w*per + i) % 65536)
				s.Insert(x)
				if i%2 == 0 {
					s.Delete(x)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per/2 {
		t.Fatalf("count %d, want %d", s.Count(), workers*per/2)
	}
	_ = s.Quantile(0.5)
	_ = s.Rank(1000)
	if s.SpaceBytes() <= 0 {
		t.Error("space not positive")
	}
}
