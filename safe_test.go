package streamquantiles

import (
	"sync"
	"testing"
)

func TestSafeCashRegisterConcurrent(t *testing.T) {
	s := NewSafeCashRegister(NewGKArray(0.01))
	var wg sync.WaitGroup
	const workers = 8
	const per = 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Update(uint64(w*per + i))
				if i%100 == 0 && s.Count() > 0 {
					_ = s.Quantile(0.5)
					_ = s.Rank(uint64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per {
		t.Fatalf("count %d, want %d", s.Count(), workers*per)
	}
	med := s.Quantile(0.5)
	want := uint64(workers * per / 2)
	slack := uint64(float64(workers*per) * 0.01)
	if med < want-slack || med > want+slack {
		t.Errorf("median %d outside %d±%d", med, want, slack)
	}
	qs := s.Quantiles([]float64{0.25, 0.75})
	if len(qs) != 2 || qs[0] > qs[1] {
		t.Errorf("Quantiles returned %v", qs)
	}
	if s.SpaceBytes() <= 0 {
		t.Error("space not positive")
	}
}

// TestSafeFlusherDetection pins the lock-mode selection: summaries that
// flush buffered work at query time must be detected and demoted to
// exclusive reads; pure-reader summaries must keep shared reads.
func TestSafeFlusherDetection(t *testing.T) {
	flushing := map[string]CashRegister{
		"GKArray":  NewGKArray(0.01),
		"GKBiased": NewGKBiased(0.01),
		"QDigest":  NewQDigest(0.01, 16),
	}
	for name, s := range flushing {
		if !NewSafeCashRegister(s).exclusiveReads {
			t.Errorf("%s flushes on query but was given shared reads", name)
		}
	}
	pure := map[string]CashRegister{
		"GKAdaptive": NewGKAdaptive(0.01),
		"GKTheory":   NewGKTheory(0.01),
		"MRL99":      NewMRL99(0.01, 1),
		"Random":     NewRandom(0.01, 1),
		"KLL":        NewKLL(0.01, 1),
		"Windowed":   NewWindowed(0.05, 1000, 1),
	}
	for name, s := range pure {
		if NewSafeCashRegister(s).exclusiveReads {
			t.Errorf("%s is a pure reader at query time but was demoted to exclusive reads", name)
		}
	}
	if NewSafeTurnstile(NewDCS(0.05, 12, DyadicConfig{Seed: 1})).exclusiveReads {
		t.Error("DCS is a pure reader at query time but was demoted to exclusive reads")
	}
}

// TestSafeConcurrentReadersAndWriter drives dedicated reader goroutines
// against a continuous writer, for both lock regimes. Under -race this
// is the proof that shared-read queries are actually sound: a summary
// that mutated during an RLocked query would be flagged immediately.
func TestSafeConcurrentReadersAndWriter(t *testing.T) {
	summaries := map[string]CashRegister{
		"KLL-sharedreads":        NewKLL(0.02, 7),  // pure reader: RLock path
		"GKArray-exclusivereads": NewGKArray(0.02), // Flusher: Lock path
	}
	for name, inner := range summaries {
		t.Run(name, func(t *testing.T) {
			s := NewSafeCashRegister(inner)
			const n = 20000
			const readers = 4
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if s.Count() == 0 {
							continue
						}
						q := s.Quantile(0.5)
						_ = s.Rank(q)
						_ = s.SpaceBytes()
						if i%64 == 0 {
							_ = s.Quantiles([]float64{0.25, 0.75})
						}
					}
				}(r)
			}
			for i := 0; i < n; i++ {
				s.Update(uint64(i))
			}
			close(stop)
			wg.Wait()
			if s.Count() != n {
				t.Fatalf("count %d, want %d", s.Count(), n)
			}
			med := s.Quantile(0.5)
			slack := uint64(float64(n) * 0.02)
			if med < n/2-slack || med > n/2+slack {
				t.Errorf("median %d outside %d±%d", med, n/2, slack)
			}
		})
	}
}

func TestSafeTurnstileConcurrent(t *testing.T) {
	s := NewSafeTurnstile(NewDCS(0.02, 16, DyadicConfig{Seed: 1}))
	var wg sync.WaitGroup
	const workers = 4
	const per = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				x := uint64((w*per + i) % 65536)
				s.Insert(x)
				if i%2 == 0 {
					s.Delete(x)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per/2 {
		t.Fatalf("count %d, want %d", s.Count(), workers*per/2)
	}
	_ = s.Quantile(0.5)
	_ = s.Rank(1000)
	if s.SpaceBytes() <= 0 {
		t.Error("space not positive")
	}
}
