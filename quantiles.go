// Package streamquantiles computes approximate quantiles over data
// streams in small space, reproducing the algorithm suite of
// "Quantiles over data streams: an experimental study" (SIGMOD 2013;
// extended in The VLDB Journal 25(4), 2016) by Wang, Luo, Yi and Cormode.
//
// # Models
//
// In the cash-register model elements only arrive; the summaries are
// GKAdaptive, GKTheory and GKArray (deterministic, comparison-based),
// FastQDigest (deterministic, fixed-universe, mergeable), and MRL99 and
// Random (randomized sampling). In the turnstile model elements are also
// deleted; the summaries are DCM, DCS and DRSS (randomized, fixed
// universe), with an optional OLS post-processing step (Post) that
// sharpens DCS estimates at query time.
//
// # Guarantee
//
// Every summary built with error parameter ε answers any φ-quantile with
// rank error at most εn — deterministically for the GK family and
// q-digest, with constant probability (simultaneously over all queries)
// for the randomized ones, where the observed error is in practice far
// below ε (see EXPERIMENTS.md).
//
// # Choosing an algorithm
//
// Following the study's conclusions (§4.2.6, §4.3.7): use Random when a
// fixed space budget matters and probabilistic guarantees suffice;
// GKArray for a deterministic guarantee at high throughput; FastQDigest
// when summaries must merge (sensor aggregation); and DCS+Post whenever
// the stream contains deletions.
//
// # Quick start
//
//	s := streamquantiles.NewGKArray(0.001)
//	for _, v := range latenciesMicros {
//		s.Update(v)
//	}
//	p99 := s.Quantile(0.99)
//
// All elements are uint64 keys. For float64 data use Float64Key /
// KeyFloat64, an order-preserving bijection (IEEE 754 footnote of the
// paper); for signed integers use Int64Key / KeyInt64.
package streamquantiles

import (
	"streamquantiles/internal/core"
	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/gk"
	"streamquantiles/internal/invariant"
	"streamquantiles/internal/kll"
	"streamquantiles/internal/mrl"
	"streamquantiles/internal/multipass"
	"streamquantiles/internal/ols"
	"streamquantiles/internal/qdigest"
	"streamquantiles/internal/randalg"
	"streamquantiles/internal/window"
)

// Summary is the query interface shared by every quantile summary: the
// current count n, estimated ranks, φ-quantiles, and the summary's size
// under the paper's 4-bytes-per-word accounting.
type Summary = core.Summary

// CashRegister is a Summary over an insert-only stream.
type CashRegister = core.CashRegister

// Turnstile is a Summary over a stream of insertions and deletions.
type Turnstile = core.Turnstile

// ErrEmpty is the panic value of quantile queries on empty summaries.
var ErrEmpty = core.ErrEmpty

// Checkable is implemented by every summary type in this package: the
// Invariants method re-verifies the deep structural properties the
// summary's error guarantee is proved from (GK's g+Δ ≤ ⌊2εn⌋ capacity,
// q-digest's weight conservation, KLL's exact level-weight accounting,
// the dyadic levels' additivity, …) and reports the first violation.
// Production code never needs it; tests, the sqcheck-tagged fuzz
// harnesses, and debugging sessions do. The repo linter (cmd/quantlint,
// rule SQ005) enforces that every summary type implements it.
type Checkable = invariant.Checkable

// CheckInvariants runs the deep structural self-checks of a summary and
// returns the first violation found, or nil.
func CheckInvariants(s Checkable) error { return invariant.Check(s) }

// GKAdaptive is the heuristic Greenwald–Khanna variant (heap-driven
// tuple removal): the most space-efficient deterministic summary.
type GKAdaptive = gk.Adaptive

// GKTheory is the original Greenwald–Khanna algorithm with the proven
// O((1/ε)·log(εn)) space bound.
type GKTheory = gk.Theory

// GKArray is the buffered, array-based GK variant introduced by the
// journal version of the paper: same summary, much faster updates.
type GKArray = gk.Array

// QDigest is the fixed-universe q-digest: the only deterministic
// mergeable summary in the suite.
type QDigest = qdigest.Digest

// MRL99 is the randomized Manku–Rajagopalan–Lindsay summary.
type MRL99 = mrl.MRL99

// Random is the paper's simplified randomized summary — the best
// randomized algorithm in the study, using O((1/ε)·log^1.5(1/ε)) space.
type Random = randalg.Random

// DyadicSketch is a turnstile summary over a fixed universe: one
// frequency sketch per dyadic level. Its Kind selects DCM, DCS or DRSS.
type DyadicSketch = dyadic.Sketch

// DyadicConfig tunes the per-level sketches of a DyadicSketch; the zero
// value selects the paper's defaults (d = 7, width from ε and log u).
type DyadicConfig = dyadic.Config

// Post is the OLS-corrected snapshot of a DyadicSketch (the paper's
// §3.2): build it with PostProcess after loading the stream and query it
// in place of the raw sketch for 60–80% lower error on DCS.
type Post = ols.Post

// NewGKAdaptive returns an empty GKAdaptive summary with error ε.
func NewGKAdaptive(eps float64) *GKAdaptive { return gk.NewAdaptive(eps) }

// NewGKTheory returns an empty GKTheory summary with error ε.
func NewGKTheory(eps float64) *GKTheory { return gk.NewTheory(eps) }

// NewGKArray returns an empty GKArray summary with error ε.
func NewGKArray(eps float64) *GKArray { return gk.NewArray(eps) }

// NewQDigest returns an empty q-digest with error ε over [0, 2^bits).
func NewQDigest(eps float64, bits int) *QDigest { return qdigest.New(eps, bits) }

// NewMRL99 returns an empty MRL99 summary with error ε; seed drives its
// sampling and collapse randomness (a fixed seed is fully reproducible).
func NewMRL99(eps float64, seed uint64) *MRL99 { return mrl.New(eps, seed) }

// NewRandom returns an empty Random summary with error ε; seed drives
// its sampling and merge randomness.
func NewRandom(eps float64, seed uint64) *Random { return randalg.New(eps, seed) }

// NewDCM returns an empty Dyadic Count-Min turnstile summary with error
// ε over [0, 2^bits).
func NewDCM(eps float64, bits int, cfg DyadicConfig) *DyadicSketch {
	return dyadic.New(dyadic.DCM, eps, bits, cfg)
}

// NewDCS returns an empty Dyadic Count-Sketch turnstile summary — the
// study's recommended turnstile algorithm — with error ε over [0, 2^bits).
func NewDCS(eps float64, bits int, cfg DyadicConfig) *DyadicSketch {
	return dyadic.New(dyadic.DCS, eps, bits, cfg)
}

// NewDRSS returns an empty dyadic random-subset-sum summary; provided
// for completeness, it is dominated by DCM and DCS.
func NewDRSS(eps float64, bits int, cfg DyadicConfig) *DyadicSketch {
	return dyadic.New(dyadic.DRSS, eps, bits, cfg)
}

// GKBiased answers biased (relative-rank-error) quantile queries: the
// error at the φ-quantile is at most ε·φn rather than εn, so low
// quantiles are tracked proportionally more precisely (Cormode et al.,
// PODS 2006 — one of the problem variations surveyed in the paper's
// introduction).
type GKBiased = gk.Biased

// NewGKBiased returns an empty biased-quantile summary with relative
// error parameter eps.
func NewGKBiased(eps float64) *GKBiased { return gk.NewBiased(eps) }

// Windowed answers quantile queries over the most recent W stream
// elements, forgetting older data (the sliding-window variation of
// Arasu and Manku, PODS 2004): an ε-approximate quantile over a window
// of W′ elements for some W ≤ W′ < W(1 + ε/2).
type Windowed = window.Windowed

// NewWindowed returns a sliding-window summary with error eps over the
// last w elements; seed drives its randomized sub-summaries.
func NewWindowed(eps float64, w int64, seed uint64) *Windowed {
	return window.New(eps, w, seed)
}

// PostProcess runs the OLS post-processing of §3.2 on a dyadic sketch
// and returns the corrected snapshot. eta is the truncation factor of
// the tree-extraction step; pass 0 for the paper's sweet spot η = 0.1.
func PostProcess(s *DyadicSketch, eta float64) *Post { return ols.Process(s, eta) }

// KLL is the Karnin–Lang–Liberty sketch (FOCS 2016): the optimal-space
// successor of the buffer hierarchy the paper's Random algorithm belongs
// to — included as the epilogue of the study's lineage. Mergeable.
type KLL = kll.Sketch

// NewKLL returns an empty KLL sketch with error parameter eps; seed
// drives its compaction coin flips.
func NewKLL(eps float64, seed uint64) *KLL { return kll.New(eps, seed) }

// ReplaySource is a stream that can be scanned from the start repeatedly,
// the input model of exact multipass selection (Munro–Paterson style).
type ReplaySource = multipass.Source

// SliceSource adapts an in-memory slice as a ReplaySource.
type SliceSource = multipass.SliceSource

// SelectStats reports the pass and candidate counts of an exact
// selection.
type SelectStats = multipass.Stats

// SelectExact returns the element of exact rank k using at most memory
// words of working storage and maxPasses passes over the re-readable
// source — the limited-memory exact selection of Munro and Paterson
// (1980) that opens the paper's history, realized with a GK summary as
// the per-pass filter. Memory trades against passes: Θ(n^(1/p)) words
// suffice for p passes.
func SelectExact(src ReplaySource, k int64, memory, maxPasses int) (uint64, SelectStats, error) {
	return multipass.Select(src, k, memory, maxPasses)
}

// SelectExactQuantile returns the exact φ-quantile of a re-readable
// source under the same budgets.
func SelectExactQuantile(src ReplaySource, phi float64, memory, maxPasses int) (uint64, SelectStats, error) {
	return multipass.SelectQuantile(src, phi, memory, maxPasses)
}

// Quantiles extracts one quantile per fraction. It is QuantileBatch
// under the name the package has always exported.
func Quantiles(s Summary, phis []float64) []uint64 { return core.Quantiles(s, phis) }

// QuantileBatch extracts one quantile per fraction in a single pass
// over the summary's state when it implements the batch contract
// (every summary in this package does — see README "Query path"),
// falling back to one full query walk per fraction otherwise.
func QuantileBatch(s Summary, phis []float64) []uint64 { return core.QuantileBatch(s, phis) }

// RankBatch estimates every probe's rank in one sweep, under the same
// dispatch rule as QuantileBatch.
func RankBatch(s Summary, xs []uint64) []int64 { return core.RankBatch(s, xs) }

// EvenPhis returns the fractions ε, 2ε, …, 1−ε used throughout the
// paper's evaluation protocol.
func EvenPhis(eps float64) []float64 { return core.EvenPhis(eps) }
