package streamquantiles

import "sync"

// The summaries in this library are single-writer structures, as in the
// paper's streaming model. SafeCashRegister and SafeTurnstile wrap them
// for concurrent use: updates take an exclusive lock, queries a shared
// one. For query-heavy workloads note that several summaries
// (GKArray and the dyadic sketches' Post snapshots) amortize work into
// queries, so simple mutual exclusion is the honest general contract.

// SafeCashRegister is a goroutine-safe wrapper around a CashRegister.
type SafeCashRegister struct {
	mu sync.Mutex
	s  CashRegister
}

// NewSafeCashRegister wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeCashRegister(s CashRegister) *SafeCashRegister {
	return &SafeCashRegister{s: s}
}

// Update observes one element.
func (c *SafeCashRegister) Update(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Update(x)
}

// Quantile returns an estimated φ-quantile.
func (c *SafeCashRegister) Quantile(phi float64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Quantile(phi)
}

// Quantiles extracts one quantile per fraction under a single lock
// acquisition.
func (c *SafeCashRegister) Quantiles(phis []float64) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Quantiles(c.s, phis)
}

// Rank returns the estimated rank of x.
func (c *SafeCashRegister) Rank(x uint64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Rank(x)
}

// Count reports n.
func (c *SafeCashRegister) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Count()
}

// SpaceBytes reports the summary size (wrapper overhead excluded).
func (c *SafeCashRegister) SpaceBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.SpaceBytes()
}

// SafeTurnstile is a goroutine-safe wrapper around a Turnstile summary.
type SafeTurnstile struct {
	mu sync.Mutex
	s  Turnstile
}

// NewSafeTurnstile wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeTurnstile(s Turnstile) *SafeTurnstile {
	return &SafeTurnstile{s: s}
}

// Insert adds one occurrence of x.
func (c *SafeTurnstile) Insert(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Insert(x)
}

// Delete removes one occurrence of x.
func (c *SafeTurnstile) Delete(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Delete(x)
}

// Quantile returns an estimated φ-quantile.
func (c *SafeTurnstile) Quantile(phi float64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Quantile(phi)
}

// Rank returns the estimated rank of x.
func (c *SafeTurnstile) Rank(x uint64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Rank(x)
}

// Count reports the current number of elements.
func (c *SafeTurnstile) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Count()
}

// SpaceBytes reports the summary size.
func (c *SafeTurnstile) SpaceBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.SpaceBytes()
}
