package streamquantiles

import "sync"

// The summaries in this library are single-writer structures, as in the
// paper's streaming model. SafeCashRegister and SafeTurnstile wrap them
// for concurrent use: updates take an exclusive lock, queries a shared
// one — except for summaries that amortize buffered work into their
// query methods (anything implementing Flusher: GKArray, GKBiased and
// QDigest flush pending elements when queried), where queries also
// mutate and therefore take the exclusive lock. The wrapper detects
// this once at construction, so callers get the strongest locking that
// is sound for their summary without choosing it themselves.

// Flusher is implemented by summaries whose query methods first merge
// buffered updates into the main structure. For these types a read
// lock is NOT sufficient for queries.
type Flusher interface {
	// Flush merges any buffered elements into the main structure.
	Flush()
}

// SafeCashRegister is a goroutine-safe wrapper around a CashRegister.
type SafeCashRegister struct {
	mu sync.RWMutex
	s  CashRegister
	// exclusiveReads is set when s implements Flusher: its queries
	// mutate internal state, so they need the write lock.
	exclusiveReads bool
}

// NewSafeCashRegister wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeCashRegister(s CashRegister) *SafeCashRegister {
	_, flushes := s.(Flusher)
	return &SafeCashRegister{s: s, exclusiveReads: flushes}
}

// rlock takes the strongest lock queries on the wrapped summary need
// and returns the matching unlock.
func (c *SafeCashRegister) rlock() func() {
	if c.exclusiveReads {
		c.mu.Lock()
		return c.mu.Unlock
	}
	c.mu.RLock()
	return c.mu.RUnlock
}

// Update observes one element.
func (c *SafeCashRegister) Update(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Update(x)
}

// Quantile returns an estimated φ-quantile.
func (c *SafeCashRegister) Quantile(phi float64) uint64 {
	defer c.rlock()()
	return c.s.Quantile(phi)
}

// Quantiles extracts one quantile per fraction under a single lock
// acquisition.
func (c *SafeCashRegister) Quantiles(phis []float64) []uint64 {
	defer c.rlock()()
	return Quantiles(c.s, phis)
}

// Rank returns the estimated rank of x.
func (c *SafeCashRegister) Rank(x uint64) int64 {
	defer c.rlock()()
	return c.s.Rank(x)
}

// Count reports n.
func (c *SafeCashRegister) Count() int64 {
	defer c.rlock()()
	return c.s.Count()
}

// SpaceBytes reports the summary size (wrapper overhead excluded).
func (c *SafeCashRegister) SpaceBytes() int64 {
	defer c.rlock()()
	return c.s.SpaceBytes()
}

// SafeTurnstile is a goroutine-safe wrapper around a Turnstile summary.
type SafeTurnstile struct {
	mu sync.RWMutex
	s  Turnstile
	// exclusiveReads is set when s implements Flusher; see
	// SafeCashRegister. The dyadic sketches are pure readers at query
	// time, so in practice turnstile queries run under the shared lock.
	exclusiveReads bool
}

// NewSafeTurnstile wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeTurnstile(s Turnstile) *SafeTurnstile {
	_, flushes := s.(Flusher)
	return &SafeTurnstile{s: s, exclusiveReads: flushes}
}

func (c *SafeTurnstile) rlock() func() {
	if c.exclusiveReads {
		c.mu.Lock()
		return c.mu.Unlock
	}
	c.mu.RLock()
	return c.mu.RUnlock
}

// Insert adds one occurrence of x.
func (c *SafeTurnstile) Insert(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Insert(x)
}

// Delete removes one occurrence of x.
func (c *SafeTurnstile) Delete(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Delete(x)
}

// Quantile returns an estimated φ-quantile.
func (c *SafeTurnstile) Quantile(phi float64) uint64 {
	defer c.rlock()()
	return c.s.Quantile(phi)
}

// Rank returns the estimated rank of x.
func (c *SafeTurnstile) Rank(x uint64) int64 {
	defer c.rlock()()
	return c.s.Rank(x)
}

// Count reports the current number of elements.
func (c *SafeTurnstile) Count() int64 {
	defer c.rlock()()
	return c.s.Count()
}

// SpaceBytes reports the summary size.
func (c *SafeTurnstile) SpaceBytes() int64 {
	defer c.rlock()()
	return c.s.SpaceBytes()
}
