package streamquantiles

import (
	"encoding"
	"fmt"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
	"streamquantiles/internal/snapshot"
)

// The summaries in this library are single-writer structures, as in the
// paper's streaming model. SafeCashRegister and SafeTurnstile wrap them
// for concurrent use: updates take an exclusive lock, queries a shared
// one — except for summaries that amortize buffered work into their
// query methods (anything implementing Flusher: GKArray, GKBiased and
// QDigest flush pending elements when queried), where queries also
// mutate and therefore take the exclusive lock. The wrapper detects
// this at construction — and re-detects it after a Retarget swap — so
// callers get the strongest locking that is sound for their summary
// without choosing it themselves.
//
// When the wrapped summary has an exact query flattening
// (core.Snapshotter: the GK tuple families, QDigest, and the sampling
// families), the wrappers additionally keep an epoch-cached
// QuerySnapshot: every write bumps an epoch under the exclusive lock,
// and queries between writes answer from the immutable snapshot without
// taking any lock at all — repeated queries on a quiet summary are
// wait-free binary searches. Snapshots are exact, so answers are
// byte-identical to querying the live summary; families without an
// exact flattening (the dyadic sketches, GKBiased) keep the plain
// locked path.
//
// The capability fields (exclusiveReads, snap) are atomics rather than
// plain booleans/pointers because Retarget can swap the wrapped summary
// — and with it both capabilities — while lock-free readers are
// consulting them. A reader that loads a stale capability is still
// safe: rlock re-checks under the shared lock and upgrades, and
// snapshot re-loads the cache under the query lock before rebuilding.

// Flusher is implemented by summaries whose query methods first merge
// buffered updates into the main structure. For these types a read
// lock is NOT sufficient for queries.
type Flusher interface {
	// Flush merges any buffered elements into the main structure.
	Flush()
}

// SafeCashRegister is a goroutine-safe wrapper around a CashRegister.
type SafeCashRegister struct {
	mu sync.RWMutex
	s  CashRegister // guarded by mu
	// exclusiveReads is set when s implements Flusher: its queries
	// mutate internal state, so they need the write lock.
	exclusiveReads atomic.Bool
	// snap caches an exact query snapshot between writes; non-nil only
	// when s implements core.Snapshotter.
	snap atomic.Pointer[snapshot.Cache]
}

// NewSafeCashRegister wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeCashRegister(s CashRegister) *SafeCashRegister {
	c := &SafeCashRegister{s: s}
	_, flushes := s.(Flusher)
	c.exclusiveReads.Store(flushes)
	c.snap.Store(snapshot.For(s))
	return c
}

// rlock takes the strongest lock queries on the wrapped summary need
// and returns the matching unlock. Over-locking is always sound, so the
// only care needed is the upgrade: a reader that saw shared-mode just
// before a Retarget swapped in a Flusher re-checks under the shared
// lock and upgrades.
//
// locks mu
func (c *SafeCashRegister) rlock() func() {
	if !c.exclusiveReads.Load() {
		c.mu.RLock()
		if !c.exclusiveReads.Load() {
			return c.mu.RUnlock
		}
		c.mu.RUnlock()
	}
	c.mu.Lock()
	return c.mu.Unlock
}

// snapshot returns an epoch-valid exact snapshot, building one under
// the query lock when the cached one has been retired by a write; nil
// when the summary has no exact flattening. Note a Flusher's
// AppendQuerySnapshot may flush buffered elements — that runs under the
// exclusive lock (rlock) and does not change query answers, so the
// epoch is not bumped.
func (c *SafeCashRegister) snapshot() *core.QuerySnapshot {
	sc := c.snap.Load()
	if sc == nil {
		return nil
	}
	if qs := sc.Current(); qs != nil {
		return qs
	}
	defer c.rlock()()
	sc = c.snap.Load() // Retarget may have swapped the cache meanwhile
	if sc == nil {
		return nil
	}
	if qs := sc.Current(); qs != nil {
		return qs // another reader rebuilt first
	}
	ss, ok := c.s.(core.Snapshotter)
	if !ok {
		return nil
	}
	return sc.Rebuild(ss)
}

// invalidate retires the cached snapshot; the caller holds the write
// lock.
func (c *SafeCashRegister) invalidate() {
	if sc := c.snap.Load(); sc != nil {
		sc.Invalidate()
	}
}

// Update observes one element.
func (c *SafeCashRegister) Update(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidate()
	c.s.Update(x)
}

// UpdateBatch observes a batch of elements under one lock acquisition,
// through the summary's native batch path when it has one.
func (c *SafeCashRegister) UpdateBatch(xs []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidate()
	core.UpdateBatch(c.s, xs)
}

// Retarget migrates the wrapper to a new summary — typically the same
// family at a different ε — without interrupting readers: the old
// summary's data is absorbed into fresh (a plain merge when the
// configurations match, a budget-widening RetargetMerge otherwise) and
// fresh replaces it atomically under the write lock. On error the
// wrapped summary is unchanged. Note the merged budget is
// max(ε_old, ε_new): retargeting a lone summary to a finer ε cannot
// erase the error already committed — use a sharded container when old
// data must keep its own budget separately.
func (c *SafeCashRegister) Retarget(fresh CashRegister) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := absorbSummary(fresh, c.s); err != nil {
		return err
	}
	c.s = fresh
	_, flushes := fresh.(Flusher)
	c.exclusiveReads.Store(flushes)
	c.snap.Store(snapshot.For(fresh))
	return nil
}

// absorbSummary folds old into tgt: a plain MERGE when the
// configurations match, a RetargetMerge (widening tgt's budget to
// max(ε_tgt, ε_old)) otherwise. An empty old summary absorbs trivially.
func absorbSummary(tgt, old core.Summary) error {
	if m, ok := tgt.(core.Mergeable); ok && m.MergeSummary(old) == nil {
		return nil
	}
	if r, ok := tgt.(core.Retargetable); ok && r.RetargetMerge(old) == nil {
		return nil
	}
	if old.Count() == 0 {
		return nil
	}
	return fmt.Errorf("streamquantiles: %T cannot absorb the live %T data (no merge or retarget-merge path)", tgt, old)
}

// Quantile returns an estimated φ-quantile — lock-free from the cached
// snapshot when the summary has been quiet since the last query.
func (c *SafeCashRegister) Quantile(phi float64) uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Quantile(phi)
	}
	defer c.rlock()()
	return c.s.Quantile(phi)
}

// Quantiles extracts one quantile per fraction under at most a single
// lock acquisition.
func (c *SafeCashRegister) Quantiles(phis []float64) []uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.QuantileBatch(phis)
	}
	defer c.rlock()()
	return Quantiles(c.s, phis)
}

// QuantileBatch implements core.QuantileBatcher (as Quantiles).
func (c *SafeCashRegister) QuantileBatch(phis []float64) []uint64 { return c.Quantiles(phis) }

// Rank returns the estimated rank of x.
func (c *SafeCashRegister) Rank(x uint64) int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Rank(x)
	}
	defer c.rlock()()
	return c.s.Rank(x)
}

// RankBatch implements core.QuantileBatcher.
func (c *SafeCashRegister) RankBatch(xs []uint64) []int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.RankBatch(xs)
	}
	defer c.rlock()()
	return core.RankBatch(c.s, xs)
}

// Count reports n.
func (c *SafeCashRegister) Count() int64 {
	defer c.rlock()()
	return c.s.Count()
}

// SpaceBytes reports the summary size (wrapper overhead excluded).
func (c *SafeCashRegister) SpaceBytes() int64 {
	defer c.rlock()()
	return c.s.SpaceBytes()
}

// Snapshot returns the wrapped summary's binary encoding. Marshalling
// is read-only for every summary in this library (buffered elements are
// encoded, not flushed), so the snapshot runs under the shared lock:
// writers are excluded only for the duration of the encode, never for
// disk I/O.
func (c *SafeCashRegister) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryMarshaler", c.s)
	}
	return m.MarshalBinary()
}

// Checkpoint snapshots the summary and durably publishes the snapshot
// as the next generation in ck's directory. Only the in-memory encode
// holds the summary's lock (shared, via Snapshot); the lock is released
// before CRC framing, fsync and rename — and any transient-error
// retries — so updates flow while the bytes hit disk. When the wrapped
// summary is a sharded container the encode itself is parallel and
// per-shard: each worker stops only its own shard for that shard's
// marshal, never the whole container (see ShardedCashRegister's
// MarshalBinary). Concurrent Checkpoint calls on one Checkpointer are
// not allowed — run one checkpointing goroutine per directory.
func (c *SafeCashRegister) Checkpoint(ck *Checkpointer, label string) (uint64, error) {
	blob, err := c.Snapshot()
	if err != nil {
		return 0, err
	}
	return ck.Save(label, blob)
}

// Restore replaces the wrapped summary's state from a snapshot or
// recovered checkpoint payload, under the exclusive lock.
func (c *SafeCashRegister) Restore(blob []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.s.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryUnmarshaler", c.s)
	}
	c.invalidate()
	return u.UnmarshalBinary(blob)
}

// MarshalBinary implements encoding.BinaryMarshaler (as Snapshot), so
// the wrapper slots directly into SaveCheckpoint.
func (c *SafeCashRegister) MarshalBinary() ([]byte, error) { return c.Snapshot() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler (as Restore), so
// the wrapper slots directly into RecoverCheckpoint.
func (c *SafeCashRegister) UnmarshalBinary(data []byte) error { return c.Restore(data) }

// SafeTurnstile is a goroutine-safe wrapper around a Turnstile summary.
type SafeTurnstile struct {
	mu sync.RWMutex
	s  Turnstile // guarded by mu
	// exclusiveReads is set when s implements Flusher; see
	// SafeCashRegister. The dyadic sketches are pure readers at query
	// time, so in practice turnstile queries run under the shared lock.
	exclusiveReads atomic.Bool
	// snap caches an exact query snapshot between writes; non-nil only
	// when s implements core.Snapshotter (the dyadic sketches do not —
	// their queries always take the lock).
	snap atomic.Pointer[snapshot.Cache]
}

// NewSafeTurnstile wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeTurnstile(s Turnstile) *SafeTurnstile {
	c := &SafeTurnstile{s: s}
	_, flushes := s.(Flusher)
	c.exclusiveReads.Store(flushes)
	c.snap.Store(snapshot.For(s))
	return c
}

// rlock mirrors SafeCashRegister.rlock.
//
// locks mu
func (c *SafeTurnstile) rlock() func() {
	if !c.exclusiveReads.Load() {
		c.mu.RLock()
		if !c.exclusiveReads.Load() {
			return c.mu.RUnlock
		}
		c.mu.RUnlock()
	}
	c.mu.Lock()
	return c.mu.Unlock
}

// snapshot mirrors SafeCashRegister.snapshot.
func (c *SafeTurnstile) snapshot() *core.QuerySnapshot {
	sc := c.snap.Load()
	if sc == nil {
		return nil
	}
	if qs := sc.Current(); qs != nil {
		return qs
	}
	defer c.rlock()()
	sc = c.snap.Load() // Retarget may have swapped the cache meanwhile
	if sc == nil {
		return nil
	}
	if qs := sc.Current(); qs != nil {
		return qs // another reader rebuilt first
	}
	ss, ok := c.s.(core.Snapshotter)
	if !ok {
		return nil
	}
	return sc.Rebuild(ss)
}

// invalidate retires the cached snapshot; the caller holds the write
// lock.
func (c *SafeTurnstile) invalidate() {
	if sc := c.snap.Load(); sc != nil {
		sc.Invalidate()
	}
}

// Insert adds one occurrence of x.
func (c *SafeTurnstile) Insert(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidate()
	c.s.Insert(x)
}

// Delete removes one occurrence of x.
func (c *SafeTurnstile) Delete(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidate()
	c.s.Delete(x)
}

// InsertBatch adds one occurrence of every element of xs under one lock
// acquisition, through the summary's native batch path when it has one.
func (c *SafeTurnstile) InsertBatch(xs []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidate()
	core.InsertBatch(c.s, xs)
}

// DeleteBatch removes one occurrence of every element of xs under one
// lock acquisition.
func (c *SafeTurnstile) DeleteBatch(xs []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidate()
	core.DeleteBatch(c.s, xs)
}

// Retarget migrates the wrapper to a new summary; see
// SafeCashRegister.Retarget. Turnstile retargeting additionally
// requires an absorb path (merge or retarget-merge) even when the old
// summary is momentarily empty of net counts, because a count-zero
// sketch can still hold uncancelled structure.
func (c *SafeTurnstile) Retarget(fresh Turnstile) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := absorbSummary(fresh, c.s); err != nil {
		return err
	}
	c.s = fresh
	_, flushes := fresh.(Flusher)
	c.exclusiveReads.Store(flushes)
	c.snap.Store(snapshot.For(fresh))
	return nil
}

// Quantile returns an estimated φ-quantile — lock-free from the cached
// snapshot when the summary supports one and has been quiet.
func (c *SafeTurnstile) Quantile(phi float64) uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Quantile(phi)
	}
	defer c.rlock()()
	return c.s.Quantile(phi)
}

// Quantiles extracts one quantile per fraction under at most a single
// lock acquisition.
func (c *SafeTurnstile) Quantiles(phis []float64) []uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.QuantileBatch(phis)
	}
	defer c.rlock()()
	return Quantiles(c.s, phis)
}

// QuantileBatch implements core.QuantileBatcher (as Quantiles).
func (c *SafeTurnstile) QuantileBatch(phis []float64) []uint64 { return c.Quantiles(phis) }

// Rank returns the estimated rank of x.
func (c *SafeTurnstile) Rank(x uint64) int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Rank(x)
	}
	defer c.rlock()()
	return c.s.Rank(x)
}

// RankBatch implements core.QuantileBatcher.
func (c *SafeTurnstile) RankBatch(xs []uint64) []int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.RankBatch(xs)
	}
	defer c.rlock()()
	return core.RankBatch(c.s, xs)
}

// Count reports the current number of elements.
func (c *SafeTurnstile) Count() int64 {
	defer c.rlock()()
	return c.s.Count()
}

// SpaceBytes reports the summary size.
func (c *SafeTurnstile) SpaceBytes() int64 {
	defer c.rlock()()
	return c.s.SpaceBytes()
}

// Snapshot returns the wrapped summary's binary encoding under the
// shared lock; see SafeCashRegister.Snapshot.
func (c *SafeTurnstile) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryMarshaler", c.s)
	}
	return m.MarshalBinary()
}

// Checkpoint snapshots the summary and durably publishes the snapshot;
// see SafeCashRegister.Checkpoint for the locking contract.
func (c *SafeTurnstile) Checkpoint(ck *Checkpointer, label string) (uint64, error) {
	blob, err := c.Snapshot()
	if err != nil {
		return 0, err
	}
	return ck.Save(label, blob)
}

// Restore replaces the wrapped summary's state from a snapshot or
// recovered checkpoint payload, under the exclusive lock.
func (c *SafeTurnstile) Restore(blob []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.s.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryUnmarshaler", c.s)
	}
	c.invalidate()
	return u.UnmarshalBinary(blob)
}

// MarshalBinary implements encoding.BinaryMarshaler (as Snapshot).
func (c *SafeTurnstile) MarshalBinary() ([]byte, error) { return c.Snapshot() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler (as Restore).
func (c *SafeTurnstile) UnmarshalBinary(data []byte) error { return c.Restore(data) }

// NewSafeShardedCashRegister is the concurrent-ingestion construction
// for write-heavy workloads: where the Safe wrappers serialize all
// writers behind one lock, a sharded summary gives each of P shards its
// own lock, so P writers proceed in parallel. The result is already
// goroutine-safe — there is no wrapper to add — and supports online
// Reshard/Retarget. For maximum write throughput give each ingesting
// goroutine its own handle via AcquireWriter: handles buffer locally
// and touch no shared state between flushes.
func NewSafeShardedCashRegister(p int, fresh func() CashRegister) (*ShardedCashRegister, error) {
	return NewShardedCashRegister(p, fresh)
}

// NewSafeShardedTurnstile is the turnstile counterpart of
// NewSafeShardedCashRegister.
func NewSafeShardedTurnstile(p int, fresh func() Turnstile) (*ShardedTurnstile, error) {
	return NewShardedTurnstile(p, fresh)
}
