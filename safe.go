package streamquantiles

import (
	"encoding"
	"fmt"
	"sync"

	"streamquantiles/internal/core"
	"streamquantiles/internal/snapshot"
)

// The summaries in this library are single-writer structures, as in the
// paper's streaming model. SafeCashRegister and SafeTurnstile wrap them
// for concurrent use: updates take an exclusive lock, queries a shared
// one — except for summaries that amortize buffered work into their
// query methods (anything implementing Flusher: GKArray, GKBiased and
// QDigest flush pending elements when queried), where queries also
// mutate and therefore take the exclusive lock. The wrapper detects
// this once at construction, so callers get the strongest locking that
// is sound for their summary without choosing it themselves.
//
// When the wrapped summary has an exact query flattening
// (core.Snapshotter: the GK tuple families, QDigest, and the sampling
// families), the wrappers additionally keep an epoch-cached
// QuerySnapshot: every write bumps an epoch under the exclusive lock,
// and queries between writes answer from the immutable snapshot without
// taking any lock at all — repeated queries on a quiet summary are
// wait-free binary searches. Snapshots are exact, so answers are
// byte-identical to querying the live summary; families without an
// exact flattening (the dyadic sketches, GKBiased) keep the plain
// locked path.

// Flusher is implemented by summaries whose query methods first merge
// buffered updates into the main structure. For these types a read
// lock is NOT sufficient for queries.
type Flusher interface {
	// Flush merges any buffered elements into the main structure.
	Flush()
}

// SafeCashRegister is a goroutine-safe wrapper around a CashRegister.
type SafeCashRegister struct {
	mu sync.RWMutex
	s  CashRegister // guarded by mu
	// exclusiveReads is set when s implements Flusher: its queries
	// mutate internal state, so they need the write lock.
	exclusiveReads bool
	// snap caches an exact query snapshot between writes; non-nil only
	// when s implements core.Snapshotter.
	snap *snapshot.Cache
}

// NewSafeCashRegister wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeCashRegister(s CashRegister) *SafeCashRegister {
	_, flushes := s.(Flusher)
	c := &SafeCashRegister{s: s, exclusiveReads: flushes}
	if _, ok := s.(core.Snapshotter); ok {
		c.snap = new(snapshot.Cache)
	}
	return c
}

// rlock takes the strongest lock queries on the wrapped summary need
// and returns the matching unlock.
//
// locks mu
func (c *SafeCashRegister) rlock() func() {
	if c.exclusiveReads {
		c.mu.Lock()
		return c.mu.Unlock
	}
	c.mu.RLock()
	return c.mu.RUnlock
}

// snapshot returns an epoch-valid exact snapshot, building one under
// the query lock when the cached one has been retired by a write; nil
// when the summary has no exact flattening. Note a Flusher's
// AppendQuerySnapshot may flush buffered elements — that runs under the
// exclusive lock (rlock) and does not change query answers, so the
// epoch is not bumped.
func (c *SafeCashRegister) snapshot() *core.QuerySnapshot {
	if c.snap == nil {
		return nil
	}
	if qs := c.snap.Current(); qs != nil {
		return qs
	}
	defer c.rlock()()
	if qs := c.snap.Current(); qs != nil {
		return qs // another reader rebuilt first
	}
	return c.snap.Rebuild(c.s.(core.Snapshotter))
}

// Update observes one element.
func (c *SafeCashRegister) Update(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap != nil {
		c.snap.Invalidate()
	}
	c.s.Update(x)
}

// UpdateBatch observes a batch of elements under one lock acquisition,
// through the summary's native batch path when it has one.
func (c *SafeCashRegister) UpdateBatch(xs []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap != nil {
		c.snap.Invalidate()
	}
	core.UpdateBatch(c.s, xs)
}

// Quantile returns an estimated φ-quantile — lock-free from the cached
// snapshot when the summary has been quiet since the last query.
func (c *SafeCashRegister) Quantile(phi float64) uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Quantile(phi)
	}
	defer c.rlock()()
	return c.s.Quantile(phi)
}

// Quantiles extracts one quantile per fraction under at most a single
// lock acquisition.
func (c *SafeCashRegister) Quantiles(phis []float64) []uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.QuantileBatch(phis)
	}
	defer c.rlock()()
	return Quantiles(c.s, phis)
}

// QuantileBatch implements core.QuantileBatcher (as Quantiles).
func (c *SafeCashRegister) QuantileBatch(phis []float64) []uint64 { return c.Quantiles(phis) }

// Rank returns the estimated rank of x.
func (c *SafeCashRegister) Rank(x uint64) int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Rank(x)
	}
	defer c.rlock()()
	return c.s.Rank(x)
}

// RankBatch implements core.QuantileBatcher.
func (c *SafeCashRegister) RankBatch(xs []uint64) []int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.RankBatch(xs)
	}
	defer c.rlock()()
	return core.RankBatch(c.s, xs)
}

// Count reports n.
func (c *SafeCashRegister) Count() int64 {
	defer c.rlock()()
	return c.s.Count()
}

// SpaceBytes reports the summary size (wrapper overhead excluded).
func (c *SafeCashRegister) SpaceBytes() int64 {
	defer c.rlock()()
	return c.s.SpaceBytes()
}

// Snapshot returns the wrapped summary's binary encoding. Marshalling
// is read-only for every summary in this library (buffered elements are
// encoded, not flushed), so the snapshot runs under the shared lock:
// writers are excluded only for the duration of the encode, never for
// disk I/O.
func (c *SafeCashRegister) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryMarshaler", c.s)
	}
	return m.MarshalBinary()
}

// Checkpoint snapshots the summary and durably publishes the snapshot
// as the next generation in ck's directory. Only the in-memory encode
// holds the summary's lock; the fsync-and-rename protocol (and any
// transient-error retries) run with updates flowing. Concurrent
// Checkpoint calls on one Checkpointer are not allowed — run one
// checkpointing goroutine per directory.
func (c *SafeCashRegister) Checkpoint(ck *Checkpointer, label string) (uint64, error) {
	blob, err := c.Snapshot()
	if err != nil {
		return 0, err
	}
	return ck.Save(label, blob)
}

// Restore replaces the wrapped summary's state from a snapshot or
// recovered checkpoint payload, under the exclusive lock.
func (c *SafeCashRegister) Restore(blob []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.s.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryUnmarshaler", c.s)
	}
	if c.snap != nil {
		c.snap.Invalidate()
	}
	return u.UnmarshalBinary(blob)
}

// MarshalBinary implements encoding.BinaryMarshaler (as Snapshot), so
// the wrapper slots directly into SaveCheckpoint.
func (c *SafeCashRegister) MarshalBinary() ([]byte, error) { return c.Snapshot() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler (as Restore), so
// the wrapper slots directly into RecoverCheckpoint.
func (c *SafeCashRegister) UnmarshalBinary(data []byte) error { return c.Restore(data) }

// SafeTurnstile is a goroutine-safe wrapper around a Turnstile summary.
type SafeTurnstile struct {
	mu sync.RWMutex
	s  Turnstile // guarded by mu
	// exclusiveReads is set when s implements Flusher; see
	// SafeCashRegister. The dyadic sketches are pure readers at query
	// time, so in practice turnstile queries run under the shared lock.
	exclusiveReads bool
	// snap caches an exact query snapshot between writes; non-nil only
	// when s implements core.Snapshotter (the dyadic sketches do not —
	// their queries always take the lock).
	snap *snapshot.Cache
}

// NewSafeTurnstile wraps s. The wrapped summary must not be used
// directly afterwards.
func NewSafeTurnstile(s Turnstile) *SafeTurnstile {
	_, flushes := s.(Flusher)
	c := &SafeTurnstile{s: s, exclusiveReads: flushes}
	if _, ok := s.(core.Snapshotter); ok {
		c.snap = new(snapshot.Cache)
	}
	return c
}

// rlock mirrors SafeCashRegister.rlock.
//
// locks mu
func (c *SafeTurnstile) rlock() func() {
	if c.exclusiveReads {
		c.mu.Lock()
		return c.mu.Unlock
	}
	c.mu.RLock()
	return c.mu.RUnlock
}

// snapshot mirrors SafeCashRegister.snapshot.
func (c *SafeTurnstile) snapshot() *core.QuerySnapshot {
	if c.snap == nil {
		return nil
	}
	if qs := c.snap.Current(); qs != nil {
		return qs
	}
	defer c.rlock()()
	if qs := c.snap.Current(); qs != nil {
		return qs // another reader rebuilt first
	}
	return c.snap.Rebuild(c.s.(core.Snapshotter))
}

// Insert adds one occurrence of x.
func (c *SafeTurnstile) Insert(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap != nil {
		c.snap.Invalidate()
	}
	c.s.Insert(x)
}

// Delete removes one occurrence of x.
func (c *SafeTurnstile) Delete(x uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap != nil {
		c.snap.Invalidate()
	}
	c.s.Delete(x)
}

// InsertBatch adds one occurrence of every element of xs under one lock
// acquisition, through the summary's native batch path when it has one.
func (c *SafeTurnstile) InsertBatch(xs []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap != nil {
		c.snap.Invalidate()
	}
	core.InsertBatch(c.s, xs)
}

// DeleteBatch removes one occurrence of every element of xs under one
// lock acquisition.
func (c *SafeTurnstile) DeleteBatch(xs []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap != nil {
		c.snap.Invalidate()
	}
	core.DeleteBatch(c.s, xs)
}

// Quantile returns an estimated φ-quantile — lock-free from the cached
// snapshot when the summary supports one and has been quiet.
func (c *SafeTurnstile) Quantile(phi float64) uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Quantile(phi)
	}
	defer c.rlock()()
	return c.s.Quantile(phi)
}

// Quantiles extracts one quantile per fraction under at most a single
// lock acquisition.
func (c *SafeTurnstile) Quantiles(phis []float64) []uint64 {
	if qs := c.snapshot(); qs != nil {
		return qs.QuantileBatch(phis)
	}
	defer c.rlock()()
	return Quantiles(c.s, phis)
}

// QuantileBatch implements core.QuantileBatcher (as Quantiles).
func (c *SafeTurnstile) QuantileBatch(phis []float64) []uint64 { return c.Quantiles(phis) }

// Rank returns the estimated rank of x.
func (c *SafeTurnstile) Rank(x uint64) int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.Rank(x)
	}
	defer c.rlock()()
	return c.s.Rank(x)
}

// RankBatch implements core.QuantileBatcher.
func (c *SafeTurnstile) RankBatch(xs []uint64) []int64 {
	if qs := c.snapshot(); qs != nil {
		return qs.RankBatch(xs)
	}
	defer c.rlock()()
	return core.RankBatch(c.s, xs)
}

// Count reports the current number of elements.
func (c *SafeTurnstile) Count() int64 {
	defer c.rlock()()
	return c.s.Count()
}

// SpaceBytes reports the summary size.
func (c *SafeTurnstile) SpaceBytes() int64 {
	defer c.rlock()()
	return c.s.SpaceBytes()
}

// Snapshot returns the wrapped summary's binary encoding under the
// shared lock; see SafeCashRegister.Snapshot.
func (c *SafeTurnstile) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryMarshaler", c.s)
	}
	return m.MarshalBinary()
}

// Checkpoint snapshots the summary and durably publishes the snapshot;
// see SafeCashRegister.Checkpoint for the locking contract.
func (c *SafeTurnstile) Checkpoint(ck *Checkpointer, label string) (uint64, error) {
	blob, err := c.Snapshot()
	if err != nil {
		return 0, err
	}
	return ck.Save(label, blob)
}

// Restore replaces the wrapped summary's state from a snapshot or
// recovered checkpoint payload, under the exclusive lock.
func (c *SafeTurnstile) Restore(blob []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	u, ok := c.s.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("streamquantiles: %T does not implement encoding.BinaryUnmarshaler", c.s)
	}
	if c.snap != nil {
		c.snap.Invalidate()
	}
	return u.UnmarshalBinary(blob)
}

// MarshalBinary implements encoding.BinaryMarshaler (as Snapshot).
func (c *SafeTurnstile) MarshalBinary() ([]byte, error) { return c.Snapshot() }

// UnmarshalBinary implements encoding.BinaryUnmarshaler (as Restore).
func (c *SafeTurnstile) UnmarshalBinary(data []byte) error { return c.Restore(data) }

// NewSafeShardedCashRegister is the concurrent-ingestion construction
// for write-heavy workloads: where the Safe wrappers serialize all
// writers behind one lock, a sharded summary gives each of P shards its
// own lock, so P writers proceed in parallel. The result is already
// goroutine-safe — there is no wrapper to add.
func NewSafeShardedCashRegister(p int, fresh func() CashRegister) *ShardedCashRegister {
	return NewShardedCashRegister(p, fresh)
}

// NewSafeShardedTurnstile is the turnstile counterpart of
// NewSafeShardedCashRegister.
func NewSafeShardedTurnstile(p int, fresh func() Turnstile) *ShardedTurnstile {
	return NewShardedTurnstile(p, fresh)
}
