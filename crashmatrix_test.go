package streamquantiles

import (
	"bytes"
	"encoding"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamquantiles/internal/checkpoint"
	"streamquantiles/internal/faultio"
)

// The crash-recovery matrix: every summary with a binary codec ×
// every injected storage fault class. The property under test is the
// durability contract end to end — after any single fault, recovery
// returns a generation whose decoded summary is byte-identical in state
// (re-marshals to the exact recovered payload) and answers Rank and
// Quantile exactly like a reference decoded from the same payload,
// with its deep structural invariants intact.

// checkpointable is the method set the matrix needs from a summary.
type checkpointable interface {
	Summary
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
	Checkable
}

// matrixSummaries lists every registered summary that owns a codec —
// exactly the set RecoverCheckpointFunc can rebuild.
var matrixSummaries = []struct {
	name  string
	fresh func() checkpointable
}{
	{"gkadaptive", func() checkpointable { return NewGKAdaptive(0.01) }},
	{"gktheory", func() checkpointable { return NewGKTheory(0.01) }},
	{"gkarray", func() checkpointable { return NewGKArray(0.01) }},
	{"qdigest", func() checkpointable { return NewQDigest(0.01, 16) }},
	{"mrl99", func() checkpointable { return NewMRL99(0.01, 7) }},
	{"random", func() checkpointable { return NewRandom(0.01, 7) }},
	{"kll", func() checkpointable { return NewKLL(0.01, 7) }},
	{"dcm", func() checkpointable { return NewDCM(0.05, 16, DyadicConfig{Seed: 7}) }},
	{"dcs", func() checkpointable { return NewDCS(0.05, 16, DyadicConfig{Seed: 7}) }},
	{"drss", func() checkpointable { return NewDRSS(0.05, 16, DyadicConfig{Seed: 7}) }},
}

// feedRange streams deterministic elements [from, to) into s through
// whichever update interface it exposes.
func feedRange(s Summary, from, to int) {
	for i := from; i < to; i++ {
		x := (uint64(i) * 2654435761) % (1 << 16)
		switch u := s.(type) {
		case CashRegister:
			u.Update(x)
		case Turnstile:
			u.Insert(x)
		}
	}
}

// faultClasses are the storage failure scenarios. Each receives the
// pristine MemFS already holding generation 0 (payload blob0) and the
// would-be generation 1 payload blob1; it injects its fault around the
// second save and returns the payload recovery must yield plus the
// filesystem recovery must run through.
var faultClasses = []struct {
	name string
	run  func(t *testing.T, mem *faultio.MemFS, dir, label string, blob0, blob1 []byte) (want []byte, rfs checkpoint.FS)
}{
	{"tornwrite", func(t *testing.T, mem *faultio.MemFS, dir, label string, blob0, blob1 []byte) ([]byte, checkpoint.FS) {
		// The process dies mid-way through writing generation 1's temp
		// file: the tear lands inside the payload, the rename never
		// happens, generation 0 must survive untouched.
		inj := faultio.New(mem).CrashAfterBytes(40 + len(blob1)/2)
		ck, err := checkpoint.Open(dir, checkpoint.WithFS(inj))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ck.Save(label, blob1); !errors.Is(err, faultio.ErrCrashed) {
			t.Fatalf("torn save returned %v, want ErrCrashed", err)
		}
		return blob0, mem
	}},
	{"bitflip", func(t *testing.T, mem *faultio.MemFS, dir, label string, blob0, blob1 []byte) ([]byte, checkpoint.FS) {
		// Generation 1 publishes cleanly, then rots at rest: a single
		// flipped payload bit must fail the CRC and push recovery back
		// to generation 0.
		ck, err := checkpoint.Open(dir, checkpoint.WithFS(mem))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ck.Save(label, blob1); err != nil {
			t.Fatal(err)
		}
		names, err := mem.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		newest := names[len(names)-1]
		if err := mem.FlipBit(filepath.Join(dir, newest), 30+len(blob1)/3, 0x04); err != nil {
			t.Fatal(err)
		}
		return blob0, mem
	}},
	{"shortread", func(t *testing.T, mem *faultio.MemFS, dir, label string, blob0, blob1 []byte) ([]byte, checkpoint.FS) {
		// Generation 1 is intact but the read path delivers it in tiny
		// fragments; recovery must reassemble it exactly.
		ck, err := checkpoint.Open(dir, checkpoint.WithFS(mem))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ck.Save(label, blob1); err != nil {
			t.Fatal(err)
		}
		return blob1, faultio.New(mem).ShortReads(7)
	}},
	{"transientEIO", func(t *testing.T, mem *faultio.MemFS, dir, label string, blob0, blob1 []byte) ([]byte, checkpoint.FS) {
		// The first two writes of generation 1 fail with retryable EIO;
		// the capped-backoff retry loop must land it anyway.
		inj := faultio.New(mem).FailOp(faultio.OpWrite, 1, 2)
		ck, err := checkpoint.Open(dir, checkpoint.WithFS(inj),
			checkpoint.WithSleep(func(time.Duration) {}),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ck.Save(label, blob1); err != nil {
			t.Fatalf("transient faults not retried away: %v", err)
		}
		return blob1, mem
	}},
}

// shardedMatrixCases are the elastic-container rows of the crash
// matrix: a checkpoint taken before an online reshard (generation 0)
// and one taken after it (generation 1), with the post-reshard payload
// carrying the swapped topology — including frozen rank components for
// the GK shrink. Recovery after any fault must land on one complete
// generation or the other, never a torn hybrid.
var shardedMatrixCases = []struct {
	name    string
	fresh   func(t *testing.T) *ShardedCashRegister
	reshard int
}{
	{"sharded-kll-grow", func(t *testing.T) *ShardedCashRegister {
		return mustShardedCash(t, 4, func() CashRegister { return NewKLL(0.01, 7) })
	}, 7},
	{"sharded-gkarray-shrink", func(t *testing.T) *ShardedCashRegister {
		return mustShardedCash(t, 4, func() CashRegister { return NewGKArray(0.01) })
	}, 2},
}

func TestCrashRecoveryMidReshard(t *testing.T) {
	const dir = "/ckpt"
	for _, ms := range shardedMatrixCases {
		for _, fc := range faultClasses {
			t.Run(ms.name+"/"+fc.name, func(t *testing.T) {
				// Generation 0: the pre-reshard topology.
				s := ms.fresh(t)
				feedRange(s, 0, 3000)
				blob0, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				// The reshard swaps the topology mid-stream; generation 1's
				// payload carries the new shard set (and, for the shrink,
				// the frozen components).
				if err := s.Reshard(ms.reshard); err != nil {
					t.Fatal(err)
				}
				feedRange(s, 3000, 5000)
				blob1, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}

				mem := faultio.NewMemFS()
				ck, err := checkpoint.Open(dir, checkpoint.WithFS(mem))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ck.Save(ms.name, blob0); err != nil {
					t.Fatal(err)
				}

				want, rfs := fc.run(t, mem, dir, ms.name, blob0, blob1)

				rec := ms.fresh(t)
				report, err := RecoverCheckpointFS(rfs, dir, rec)
				if err != nil {
					t.Fatalf("recovery: %v (report %v)", err, report)
				}
				got, err := rec.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("recovered state re-marshals to %d bytes differing from the %d-byte checkpoint payload: recovery produced a torn topology", len(got), len(want))
				}
				if err := rec.Invariants(); err != nil {
					t.Fatalf("recovered container invariants: %v", err)
				}

				// The recovered topology is exactly one of the two
				// generations, verified against a reference decode.
				ref := ms.fresh(t)
				if err := ref.UnmarshalBinary(want); err != nil {
					t.Fatal(err)
				}
				if rec.Shards() != ref.Shards() || rec.Generation() != ref.Generation() || rec.Components() != ref.Components() {
					t.Fatalf("recovered topology Shards=%d Gen=%d Comps=%d, reference %d/%d/%d",
						rec.Shards(), rec.Generation(), rec.Components(), ref.Shards(), ref.Generation(), ref.Components())
				}
				wantPost := bytes.Equal(want, blob1)
				if post := rec.Generation() == 1; post != wantPost {
					t.Fatalf("recovered generation %d does not match the surviving payload", rec.Generation())
				}
				if rec.Count() != ref.Count() {
					t.Fatalf("count %d vs reference %d", rec.Count(), ref.Count())
				}
				for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
					if a, b := rec.Quantile(phi), ref.Quantile(phi); a != b {
						t.Fatalf("Quantile(%v) = %d, reference %d", phi, a, b)
					}
				}
				for _, x := range []uint64{0, 1 << 10, 1 << 14, 1<<16 - 1} {
					if a, b := rec.Rank(x), ref.Rank(x); a != b {
						t.Fatalf("Rank(%d) = %d, reference %d", x, a, b)
					}
				}
			})
		}
	}
}

func TestCrashRecoveryMatrix(t *testing.T) {
	const dir = "/ckpt"
	for _, ms := range matrixSummaries {
		for _, fc := range faultClasses {
			t.Run(ms.name+"/"+fc.name, func(t *testing.T) {
				// Two stream epochs → two checkpoint payloads.
				s := ms.fresh()
				feedRange(s, 0, 3000)
				blob0, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				feedRange(s, 3000, 5000)
				blob1, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}

				mem := faultio.NewMemFS()
				ck, err := checkpoint.Open(dir, checkpoint.WithFS(mem))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ck.Save(ms.name, blob0); err != nil {
					t.Fatal(err)
				}

				want, rfs := fc.run(t, mem, dir, ms.name, blob0, blob1)

				rec := ms.fresh()
				report, err := RecoverCheckpointFS(rfs, dir, rec)
				if err != nil {
					t.Fatalf("recovery: %v (report %v)", err, report)
				}
				if report.Label != ms.name {
					t.Fatalf("recovered label %q", report.Label)
				}

				// Byte-identical state: re-marshalling the recovered
				// summary must reproduce the expected payload exactly.
				// (Query before re-marshal would flush buffered types.)
				got, err := rec.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("recovered state re-marshals to %d bytes differing from the %d-byte checkpoint payload", len(got), len(want))
				}
				if err := CheckInvariants(rec); err != nil {
					t.Fatalf("recovered summary invariants: %v", err)
				}

				// Query-exactness against a reference decoded from the
				// same payload.
				ref := ms.fresh()
				if err := ref.UnmarshalBinary(want); err != nil {
					t.Fatal(err)
				}
				if rec.Count() != ref.Count() {
					t.Fatalf("count %d vs reference %d", rec.Count(), ref.Count())
				}
				for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
					if a, b := rec.Quantile(phi), ref.Quantile(phi); a != b {
						t.Fatalf("Quantile(%v) = %d, reference %d", phi, a, b)
					}
				}
				for _, x := range []uint64{0, 1 << 10, 1 << 14, 1<<16 - 1} {
					if a, b := rec.Rank(x), ref.Rank(x); a != b {
						t.Fatalf("Rank(%d) = %d, reference %d", x, a, b)
					}
				}

				// The fallback classes must have reported what they
				// skipped; the clean-read classes must not.
				switch fc.name {
				case "tornwrite":
					if report.Generation != 0 {
						t.Fatalf("recovered generation %d, want 0", report.Generation)
					}
				case "bitflip":
					if report.Generation != 0 || len(report.Skipped) != 1 {
						t.Fatalf("report %+v", report)
					}
					if !strings.Contains(report.Skipped[0].Reason, "CRC") {
						t.Fatalf("skip reason %q does not mention CRC", report.Skipped[0].Reason)
					}
				default:
					if report.Generation != 1 || len(report.Skipped) != 0 {
						t.Fatalf("report %+v", report)
					}
				}
			})
		}
	}
}
