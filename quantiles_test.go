package streamquantiles

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

// TestEveryAlgorithmEndToEnd is the package's integration test: every
// constructor, one workload, the ε guarantee.
func TestEveryAlgorithmEndToEnd(t *testing.T) {
	const n = 30000
	const eps = 0.02
	const bits = 20
	data := streamgen.Generate(streamgen.Uniform{Bits: bits, Seed: 1}, n)
	oracle := exact.New(data)

	cash := map[string]CashRegister{
		"GKAdaptive":  NewGKAdaptive(eps),
		"GKTheory":    NewGKTheory(eps),
		"GKArray":     NewGKArray(eps),
		"FastQDigest": NewQDigest(eps, bits),
		"MRL99":       NewMRL99(eps, 7),
		"Random":      NewRandom(eps, 7),
	}
	for name, s := range cash {
		for _, x := range data {
			s.Update(x)
		}
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("%s: max error %v exceeds ε", name, maxErr)
		}
		if s.Count() != n {
			t.Errorf("%s: count %d", name, s.Count())
		}
		if s.SpaceBytes() <= 0 {
			t.Errorf("%s: non-positive space", name)
		}
	}

	turn := map[string]Turnstile{
		"DCM": NewDCM(eps, bits, DyadicConfig{Seed: 2}),
		"DCS": NewDCS(eps, bits, DyadicConfig{Seed: 2}),
	}
	for name, s := range turn {
		for _, x := range data {
			s.Insert(x)
		}
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("%s: max error %v exceeds ε", name, maxErr)
		}
	}

	// Post on DCS.
	dcs := NewDCS(eps, bits, DyadicConfig{Seed: 3})
	for _, x := range data {
		dcs.Insert(x)
	}
	post := PostProcess(dcs, 0)
	maxErr, _ := oracle.EvaluateSummary(post, eps)
	if maxErr > eps {
		t.Errorf("Post: max error %v exceeds ε", maxErr)
	}
}

func TestTurnstileDeleteFlow(t *testing.T) {
	const eps = 0.02
	s := NewDCS(eps, 16, DyadicConfig{Seed: 4})
	for i := uint64(0); i < 10000; i++ {
		s.Insert(i % 4096)
	}
	for i := uint64(0); i < 5000; i++ {
		s.Delete(i % 4096)
	}
	if s.Count() != 5000 {
		t.Fatalf("count %d after deletes", s.Count())
	}
	_ = s.Quantile(0.5) // must not panic
}

func TestFloat64KeyOrderPreserving(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -1, -1e-300, math.Copysign(0, -1),
		0, 1e-300, 1, 3.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := Float64Key(vals[i-1]), Float64Key(vals[i])
		if a >= b && vals[i-1] != vals[i] {
			// −0 and +0 compare equal as floats; keys may differ.
			if vals[i-1] == 0 && vals[i] == 0 {
				continue
			}
			t.Errorf("key order broken: %v → %d, %v → %d", vals[i-1], a, vals[i], b)
		}
	}
}

func TestFloat64KeyRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		back := KeyFloat64(Float64Key(v))
		return back == v || (v == 0 && back == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFloat64KeyOrderProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := Float64Key(a), Float64Key(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestInt64KeyOrderAndRoundTrip(t *testing.T) {
	vals := []int64{math.MinInt64, -1e15, -1, 0, 1, 1e15, math.MaxInt64}
	for i := 1; i < len(vals); i++ {
		if Int64Key(vals[i-1]) >= Int64Key(vals[i]) {
			t.Errorf("int key order broken at %d", vals[i])
		}
	}
	for _, v := range vals {
		if KeyInt64(Int64Key(v)) != v {
			t.Errorf("int key round trip broken for %d", v)
		}
	}
}

func TestFloatCashRegister(t *testing.T) {
	fs := FloatCashRegister{S: NewGKArray(0.01)}
	data := make([]float64, 10000)
	rng := uint64(12345)
	for i := range data {
		rng = rng*6364136223846793005 + 1442695040888963407
		data[i] = float64(int64(rng)) / 1e12 // mixed signs
		fs.Update(data[i])
	}
	sort.Float64s(data)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got := fs.Quantile(phi)
		want := data[int(phi*float64(len(data)))]
		// ε = 0.01 → rank error ≤ 100 positions.
		lo := data[int(phi*float64(len(data)))-150]
		hi := data[int(phi*float64(len(data)))+150]
		if got < lo || got > hi {
			t.Errorf("float quantile(%v) = %v outside [%v, %v] around %v", phi, got, lo, hi, want)
		}
	}
	if fs.Count() != 10000 || fs.SpaceBytes() <= 0 {
		t.Error("float adapter bookkeeping broken")
	}
}

func TestFloatNaNPanics(t *testing.T) {
	fs := FloatCashRegister{S: NewGKArray(0.1)}
	defer func() {
		if recover() == nil {
			t.Error("Update(NaN) did not panic")
		}
	}()
	fs.Update(math.NaN())
}

func TestEvenPhisExported(t *testing.T) {
	if got := len(EvenPhis(0.1)); got != 9 {
		t.Errorf("EvenPhis(0.1) has %d entries", got)
	}
}

func TestQuantilesExported(t *testing.T) {
	s := NewGKArray(0.05)
	for i := uint64(0); i < 1000; i++ {
		s.Update(i)
	}
	qs := Quantiles(s, []float64{0.25, 0.5, 0.75})
	if len(qs) != 3 || qs[0] > qs[1] || qs[1] > qs[2] {
		t.Errorf("Quantiles returned %v", qs)
	}
}

func TestQDigestMergeThroughPublicAPI(t *testing.T) {
	a := NewQDigest(0.02, 16)
	b := NewQDigest(0.02, 16)
	for i := uint64(0); i < 5000; i++ {
		a.Update(i % 100)
		b.Update(50000 % 65536)
	}
	a.Merge(b)
	if a.Count() != 10000 {
		t.Errorf("merged count %d", a.Count())
	}
}
