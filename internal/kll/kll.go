// Package kll implements the KLL sketch (Karnin, Lang, Liberty: "Optimal
// quantile approximation in streams", FOCS 2016) — the successor of the
// buffer-hierarchy line this paper's Random algorithm belongs to, and the
// design that its experimental findings fed into (see the study's
// influence on later sketch work, e.g. Apache DataSketches).
//
// Where Random keeps b equal-sized buffers, KLL lets capacities decay
// geometrically with height: level h (0 = rawest) holds up to
// k·c^(depth−1−h) elements of weight 2^h, for a decay c ∈ (0.5, 1).
// A full level is "compacted": its elements are sorted and either the
// odd or the even ranked half survives to the level above, with a fair
// coin — the same unbiased halving as Random's merge, applied to a
// whole level. Total space is k/(1−c) + O(log(n/k)) elements — the
// log^0.5(1/ε) factor of Random drops away — and all quantiles are
// ε-accurate with constant probability for k = O((1/ε)·√log(1/ε))…
// in practice k ≈ 4/ε matches the all-quantiles evaluation standard of
// this suite while retaining ~3× fewer elements than Random.
//
// The implementation is single-threaded, deterministic per seed, and
// mergeable (the property the DataSketches ecosystem builds on).
package kll

import (
	"fmt"
	"math"
	"slices"

	"streamquantiles/internal/core"
	"streamquantiles/internal/xhash"
)

// decay is the capacity decay rate c; 2/3 is the value recommended by
// the KLL authors.
const decay = 2.0 / 3.0

// minLevelCap is the smallest capacity of any level.
const minLevelCap = 8

// Sketch is a KLL quantile sketch.
type Sketch struct {
	eps float64
	k   int // capacity of the highest (most recent) level
	n   int64

	// levels[h] holds the elements of weight 2^h, kept sorted lazily
	// (sorted on compaction and on query).
	levels [][]uint64
	rng    *xhash.SplitMix64
}

// New returns an empty KLL sketch with error parameter eps, seeded
// deterministically.
func New(eps float64, seed uint64) *Sketch {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("kll: error parameter %v outside (0, 1)", eps))
	}
	// k = 4/ε makes every quantile simultaneously ε-accurate with high
	// probability (the per-query analysis needs ~1.5/ε; the union bound
	// over the 1/ε evaluation grid costs the rest), matching the
	// evaluation standard used for the paper's algorithms.
	k := int(math.Ceil(4 / eps))
	if k < 2*minLevelCap {
		k = 2 * minLevelCap
	}
	return &Sketch{
		eps:    eps,
		k:      k,
		levels: [][]uint64{make([]uint64, 0, k)},
		rng:    xhash.NewSplitMix64(seed),
	}
}

// Eps returns the error parameter.
func (s *Sketch) Eps() float64 { return s.eps }

// K returns the top-level capacity parameter.
func (s *Sketch) K() int { return s.k }

// Count implements core.Summary.
func (s *Sketch) Count() int64 { return s.n }

// Depth returns the number of levels currently in use.
func (s *Sketch) Depth() int { return len(s.levels) }

// capacity returns the allowed size of level h given the current depth:
// the top level gets k, and capacities decay by c per level downward.
func (s *Sketch) capacity(h int) int {
	depth := len(s.levels)
	c := float64(s.k) * math.Pow(decay, float64(depth-1-h))
	if c < minLevelCap {
		return minLevelCap
	}
	return int(math.Ceil(c))
}

// Update implements core.CashRegister.
func (s *Sketch) Update(x uint64) {
	s.n++
	s.levels[0] = append(s.levels[0], x)
	if len(s.levels[0]) >= s.capacity(0) {
		s.compress()
	}
}

// compress restores all level capacities by compacting the lowest
// over-full level, cascading upward as needed.
func (s *Sketch) compress() {
	for h := 0; h < len(s.levels); h++ {
		if len(s.levels[h]) < s.capacity(h) {
			continue
		}
		if h+1 == len(s.levels) {
			s.levels = append(s.levels, make([]uint64, 0, s.k))
		}
		s.compact(h)
	}
}

// compact halves level h into level h+1: sort, then keep either the odd
// or the even ranked elements with equal probability. The survivors'
// weight doubles implicitly (they move one level up). An odd leftover
// element stays at level h, preserving total weight exactly.
func (s *Sketch) compact(h int) {
	lvl := s.levels[h]
	slices.Sort(lvl)
	keepOdd := s.rng.Bool()

	pairs := len(lvl) / 2
	var leftover []uint64
	if len(lvl)%2 == 1 {
		// Keep the last element at this level so weight is conserved.
		leftover = lvl[len(lvl)-1:]
	}
	up := s.levels[h+1]
	for i := 0; i < pairs; i++ {
		if keepOdd {
			up = append(up, lvl[2*i+1])
		} else {
			up = append(up, lvl[2*i])
		}
	}
	s.levels[h+1] = up
	s.levels[h] = append(s.levels[h][:0], leftover...)
}

// samples gathers all retained elements with their weights, sorted.
func (s *Sketch) samples() []core.WeightedValue {
	var out []core.WeightedValue
	for h, lvl := range s.levels {
		w := int64(1) << h
		for _, v := range lvl {
			out = append(out, core.WeightedValue{V: v, W: w})
		}
	}
	core.SortWeighted(out)
	return out
}

// Rank implements core.Summary.
func (s *Sketch) Rank(x uint64) int64 {
	return core.WeightedRank(s.samples(), x)
}

// Quantile implements core.Summary.
func (s *Sketch) Quantile(phi float64) uint64 {
	if s.n == 0 {
		panic(core.ErrEmpty)
	}
	return core.WeightedQuantile(s.samples(), phi)
}

// QuantileBatch implements core.QuantileBatcher.
func (s *Sketch) QuantileBatch(phis []float64) []uint64 {
	if s.n == 0 {
		panic(core.ErrEmpty)
	}
	return core.WeightedQuantiles(s.samples(), phis)
}

// RankBatch implements core.QuantileBatcher.
func (s *Sketch) RankBatch(xs []uint64) []int64 {
	return core.WeightedRanks(s.samples(), xs)
}

// AppendQuerySnapshot implements core.Snapshotter.
func (s *Sketch) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	core.AppendWeightedSnapshot(qs, s.samples())
}

// checkCompatible validates a merge partner: both sketches must have
// been built with bit-identical eps (exact comparison is the intent, so
// it goes through Float64bits).
func (s *Sketch) checkCompatible(other *Sketch) {
	if math.Float64bits(other.eps) != math.Float64bits(s.eps) {
		panic("kll: merging sketches with different eps")
	}
}

// Merge folds other into s: levels concatenate weight-for-weight and
// over-full levels compact. Both sketches must share eps.
func (s *Sketch) Merge(other *Sketch) {
	s.checkCompatible(other)
	for h, lvl := range other.levels {
		for len(s.levels) <= h {
			s.levels = append(s.levels, nil)
		}
		s.levels[h] = append(s.levels[h], lvl...)
	}
	s.n += other.n
	s.compress()
}

// SpaceBytes implements core.Summary: retained elements at capacity plus
// per-level slice headers and scalars.
func (s *Sketch) SpaceBytes() int64 {
	var words int64
	for h := range s.levels {
		c := cap(s.levels[h])
		if c < len(s.levels[h]) {
			c = len(s.levels[h])
		}
		words += int64(c) + 2
	}
	return (words + 8) * core.WordBytes
}

// RetainedElements reports the total number of stored elements — the
// quantity KLL minimizes. Test/observability hook.
func (s *Sketch) RetainedElements() int {
	t := 0
	for _, lvl := range s.levels {
		t += len(lvl)
	}
	return t
}
