// Package kll implements the KLL sketch (Karnin, Lang, Liberty: "Optimal
// quantile approximation in streams", FOCS 2016) — the successor of the
// buffer-hierarchy line this paper's Random algorithm belongs to, and the
// design that its experimental findings fed into (see the study's
// influence on later sketch work, e.g. Apache DataSketches).
//
// Where Random keeps b equal-sized buffers, KLL lets capacities decay
// geometrically with height: level h (0 = rawest) holds up to
// k·c^(depth−1−h) elements of weight 2^h, for a decay c ∈ (0.5, 1).
// A full level is "compacted": its elements are sorted and either the
// odd or the even ranked half survives to the level above, with a fair
// coin — the same unbiased halving as Random's merge, applied to a
// whole level. Total space is k/(1−c) + O(log(n/k)) elements — the
// log^0.5(1/ε) factor of Random drops away — and all quantiles are
// ε-accurate with constant probability for k = O((1/ε)·√log(1/ε))…
// in practice k ≈ 4/ε matches the all-quantiles evaluation standard of
// this suite while retaining ~3× fewer elements than Random.
//
// The implementation is single-threaded, deterministic per seed, and
// mergeable (the property the DataSketches ecosystem builds on).
package kll

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"streamquantiles/internal/core"
	"streamquantiles/internal/xhash"
)

// decay is the capacity decay rate c; 2/3 is the value recommended by
// the KLL authors.
const decay = 2.0 / 3.0

// minLevelCap is the smallest capacity of any level.
const minLevelCap = 8

// Sketch is a KLL quantile sketch.
type Sketch struct {
	eps float64
	k   int // capacity of the highest (most recent) level
	n   int64

	// Every retained element lives in one flat arena, highest level
	// first so that level 0 sits at the end and per-item ingestion is a
	// plain append. bounds[h] is the end offset of level h
	// (bounds[depth] = 0, bounds[0] = len(arena)); level h — elements of
	// weight 2^h, kept sorted lazily (sorted on compaction and on
	// query) — occupies arena[bounds[h+1]:bounds[h]].
	arena  []uint64
	bounds []int
	rng    *xhash.SplitMix64
}

// New returns an empty KLL sketch with error parameter eps, seeded
// deterministically.
func New(eps float64, seed uint64) *Sketch {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("kll: error parameter %v outside (0, 1)", eps))
	}
	// k = 4/ε makes every quantile simultaneously ε-accurate with high
	// probability (the per-query analysis needs ~1.5/ε; the union bound
	// over the 1/ε evaluation grid costs the rest), matching the
	// evaluation standard used for the paper's algorithms.
	k := int(math.Ceil(4 / eps))
	if k < 2*minLevelCap {
		k = 2 * minLevelCap
	}
	return &Sketch{
		eps:    eps,
		k:      k,
		arena:  make([]uint64, 0, k),
		bounds: []int{0, 0},
		rng:    xhash.NewSplitMix64(seed),
	}
}

// Eps returns the error parameter.
func (s *Sketch) Eps() float64 { return s.eps }

// K returns the top-level capacity parameter.
func (s *Sketch) K() int { return s.k }

// Count implements core.Summary.
func (s *Sketch) Count() int64 { return s.n }

// Depth returns the number of levels currently in use.
func (s *Sketch) Depth() int { return len(s.bounds) - 1 }

// level returns the elements of weight 2^h as a view into the arena.
func (s *Sketch) level(h int) []uint64 {
	return s.arena[s.bounds[h+1]:s.bounds[h]]
}

// levelLen returns len(level(h)) without materializing the view.
func (s *Sketch) levelLen(h int) int { return s.bounds[h] - s.bounds[h+1] }

// capacity returns the allowed size of level h given the current depth:
// the top level gets k, and capacities decay by c per level downward.
func (s *Sketch) capacity(h int) int {
	depth := s.Depth()
	c := float64(s.k) * math.Pow(decay, float64(depth-1-h))
	if c < minLevelCap {
		return minLevelCap
	}
	return int(math.Ceil(c))
}

// Update implements core.CashRegister.
func (s *Sketch) Update(x uint64) {
	s.n++
	s.arena = append(s.arena, x)
	s.bounds[0] = len(s.arena)
	if s.levelLen(0) >= s.capacity(0) {
		s.compress()
	}
}

// compress restores all level capacities by compacting the lowest
// over-full level, cascading upward as needed. The capacity check runs
// before the depth can grow, so the compaction (and coin-flip) schedule
// is identical to the per-level-slice formulation.
func (s *Sketch) compress() {
	for h := 0; h < s.Depth(); h++ {
		if s.levelLen(h) < s.capacity(h) {
			continue
		}
		if h+1 == s.Depth() {
			// A new, empty top level occupies zero words at the front of
			// the arena; no data moves.
			s.bounds = append(s.bounds, 0)
		}
		s.compact(h)
	}
}

// compact halves level h into level h+1: sort, then keep either the odd
// or the even ranked elements with equal probability. The survivors'
// weight doubles implicitly (they move one level up). An odd leftover
// element stays at level h, preserving total weight exactly.
//
// In the flat arena the survivors are compacted to the front of level
// h's window (forward-safe: survivor i comes from index 2i+off ≥ i) and
// donated to level h+1 by advancing the shared boundary — level h+1
// ends exactly where level h begins, so this appends them in ascending
// order without moving a single element of the levels above. Only the
// levels below h slide left to close the gap.
func (s *Sketch) compact(h int) {
	lvl := s.level(h)
	slices.Sort(lvl)
	keepOdd := s.rng.Bool()

	pairs := len(lvl) / 2
	off := 0
	if keepOdd {
		off = 1
	}
	for i := 0; i < pairs; i++ {
		lvl[i] = lvl[2*i+off]
	}
	if len(lvl)%2 == 1 {
		// Keep the last element at this level so weight is conserved.
		lvl[pairs] = lvl[len(lvl)-1]
	}
	s.bounds[h+1] += pairs
	copy(s.arena[s.bounds[h]-pairs:], s.arena[s.bounds[h]:s.bounds[0]])
	for j := h; j >= 0; j-- {
		s.bounds[j] -= pairs
	}
	s.arena = s.arena[:s.bounds[0]]
}

// samplePool recycles the weighted-sample scratch built on every query.
// Queries may run concurrently (read-locked shards), so the scratch
// cannot live on the Sketch.
var samplePool = sync.Pool{New: func() any { return new([]core.WeightedValue) }}

// appendSamples gathers all retained elements with their weights into
// dst, sorted.
func (s *Sketch) appendSamples(dst []core.WeightedValue) []core.WeightedValue {
	for h := 0; h < s.Depth(); h++ {
		w := int64(1) << h
		for _, v := range s.level(h) {
			dst = append(dst, core.WeightedValue{V: v, W: w})
		}
	}
	core.SortWeighted(dst)
	return dst
}

// Rank implements core.Summary.
func (s *Sketch) Rank(x uint64) int64 {
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := s.appendSamples((*sp)[:0])
	r := core.WeightedRank(sm, x)
	*sp = sm
	samplePool.Put(sp)
	return r
}

// Quantile implements core.Summary.
func (s *Sketch) Quantile(phi float64) uint64 {
	if s.n == 0 {
		panic(core.ErrEmpty)
	}
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := s.appendSamples((*sp)[:0])
	q := core.WeightedQuantile(sm, phi)
	*sp = sm
	samplePool.Put(sp)
	return q
}

// QuantileBatch implements core.QuantileBatcher.
func (s *Sketch) QuantileBatch(phis []float64) []uint64 {
	if s.n == 0 {
		panic(core.ErrEmpty)
	}
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := s.appendSamples((*sp)[:0])
	out := core.WeightedQuantiles(sm, phis)
	*sp = sm
	samplePool.Put(sp)
	return out
}

// RankBatch implements core.QuantileBatcher.
func (s *Sketch) RankBatch(xs []uint64) []int64 {
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := s.appendSamples((*sp)[:0])
	out := core.WeightedRanks(sm, xs)
	*sp = sm
	samplePool.Put(sp)
	return out
}

// AppendQuerySnapshot implements core.Snapshotter.
func (s *Sketch) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	sp := samplePool.Get().(*[]core.WeightedValue)
	sm := s.appendSamples((*sp)[:0])
	core.AppendWeightedSnapshot(qs, sm)
	*sp = sm
	samplePool.Put(sp)
}

// checkCompatible validates a merge partner: both sketches must have
// been built with bit-identical eps (exact comparison is the intent, so
// it goes through Float64bits).
func (s *Sketch) checkCompatible(other *Sketch) {
	if math.Float64bits(other.eps) != math.Float64bits(s.eps) {
		panic("kll: merging sketches with different eps")
	}
}

// Merge folds other into s: levels concatenate weight-for-weight and
// over-full levels compact. Both sketches must share eps. The merged
// arena is rebuilt top level first, each level holding s's elements
// followed by other's — the concatenation order of the slice
// formulation, so restore-and-merge stays deterministic.
func (s *Sketch) Merge(other *Sketch) {
	s.checkCompatible(other)
	s.mergeLevels(other)
}

// mergeLevels is Merge without the compatibility check: the level
// concatenation itself is budget-agnostic (RetargetMerge reuses it
// after widening eps).
func (s *Sketch) mergeLevels(other *Sketch) {
	depth := s.Depth()
	if d := other.Depth(); d > depth {
		depth = d
	}
	merged := make([]uint64, 0, len(s.arena)+len(other.arena))
	nb := make([]int, depth+1)
	for h := depth - 1; h >= 0; h-- {
		if h < s.Depth() {
			merged = append(merged, s.level(h)...)
		}
		if h < other.Depth() {
			merged = append(merged, other.level(h)...)
		}
		nb[h] = len(merged)
	}
	s.arena, s.bounds = merged, nb
	s.n += other.n
	s.compress()
}

// SpaceBytes implements core.Summary: the arena at capacity plus the
// level bounds and scalars.
func (s *Sketch) SpaceBytes() int64 {
	words := int64(cap(s.arena)) + int64(len(s.bounds)) + 8
	return words * core.WordBytes
}

// RetainedElements reports the total number of stored elements — the
// quantity KLL minimizes. Test/observability hook.
func (s *Sketch) RetainedElements() int { return len(s.arena) }
