package kll

import (
	"fmt"
	"math"

	"streamquantiles/internal/core"
)

// UpdateBatch implements core.BatchCashRegister: level 0 is filled by
// whole-chunk copies up to its capacity, compacting between chunks.
// Level-0 capacity only changes when the depth does (inside compress),
// and the compaction coin flips happen at exactly the same fill points,
// so the resulting state is byte-identical to per-item Update.
func (s *Sketch) UpdateBatch(xs []uint64) {
	for len(xs) > 0 {
		room := s.capacity(0) - s.levelLen(0)
		if room <= 0 {
			s.compress()
			continue
		}
		take := room
		if take > len(xs) {
			take = len(xs)
		}
		s.arena = append(s.arena, xs[:take]...)
		s.bounds[0] = len(s.arena)
		s.n += int64(take)
		xs = xs[take:]
		if s.levelLen(0) >= s.capacity(0) {
			s.compress()
		}
	}
}

// MergeSummary implements core.Mergeable. It leaves other unchanged.
func (s *Sketch) MergeSummary(other core.Summary) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("kll: cannot merge a %T", other)
	}
	if math.Float64bits(o.eps) != math.Float64bits(s.eps) {
		return fmt.Errorf("kll: cannot merge sketches with eps %v and %v", s.eps, o.eps)
	}
	s.Merge(o)
	return nil
}

// RetargetMerge implements core.Retargetable: it folds other in while
// widening the receiver's budget to max(eps, other eps). The top-level
// capacity k is recomputed from the widened eps before the levels
// concatenate — the codec derives k from eps on decode, so leaving a
// stale k would make a retargeted sketch diverge from its own
// round-trip. Compaction then shrinks the retained set to the coarser
// budget's footprint.
func (s *Sketch) RetargetMerge(other core.Summary) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("kll: cannot merge a %T", other)
	}
	if o.eps > s.eps {
		s.eps = math.Max(s.eps, o.eps)
		k := int(math.Ceil(4 / s.eps))
		if k < 2*minLevelCap {
			k = 2 * minLevelCap
		}
		s.k = k
	}
	s.mergeLevels(o)
	return nil
}
