package kll

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

func TestCodecRoundTripContinuesIdentically(t *testing.T) {
	head := streamgen.Generate(streamgen.MPCATLike{Seed: 20}, 30000)
	tail := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 21}, 30000)

	straight := New(0.01, 42)
	feed(straight, head)
	feed(straight, tail)

	stopped := New(0.01, 42)
	feed(stopped, head)
	blob, err := stopped.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0.5, 0)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	feed(restored, tail)

	if restored.Count() != straight.Count() {
		t.Fatalf("count %d vs %d", restored.Count(), straight.Count())
	}
	for _, phi := range core.EvenPhis(0.05) {
		if restored.Quantile(phi) != straight.Quantile(phi) {
			t.Fatalf("quantile(%v) diverged after restore", phi)
		}
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	s := New(0.05, 1)
	feed(s, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 22}, 5000))
	blob, _ := s.MarshalBinary()
	for cut := 0; cut < len(blob); cut += 5 {
		var b Sketch
		if err := b.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated input of %d bytes", cut)
		}
	}
}

func TestCodecWeightMismatchRejected(t *testing.T) {
	s := New(0.05, 2)
	feed(s, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 23}, 1000))
	s.n += 5 // corrupt the count before encoding
	blob, _ := s.MarshalBinary()
	var b Sketch
	if err := b.UnmarshalBinary(blob); err == nil {
		t.Error("accepted weight/count mismatch")
	}
}
