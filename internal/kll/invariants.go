package kll

import "fmt"

// Invariants implements invariant.Checkable. KLL's compaction conserves
// weight exactly — a compacted pair of weight-2^h elements becomes one
// weight-2^(h+1) element and an odd leftover stays put — so the sketch
// must always satisfy the exact level-weight accounting
//
//	Σ_h 2^h·|levels[h]| == n,
//
// the property that makes the estimator unbiased. The shallow shape
// checks guard the accounting from overflow and corruption.
func (s *Sketch) Invariants() error {
	if s.n < 0 {
		return fmt.Errorf("kll: negative count %d", s.n)
	}
	if s.k < 2*minLevelCap {
		return fmt.Errorf("kll: capacity parameter k = %d below minimum %d", s.k, 2*minLevelCap)
	}
	if s.Depth() < 1 {
		return fmt.Errorf("kll: no levels allocated")
	}
	if s.Depth() > 62 {
		return fmt.Errorf("kll: %d levels would overflow the weight accounting", s.Depth())
	}
	if s.bounds[s.Depth()] != 0 || s.bounds[0] != len(s.arena) {
		return fmt.Errorf("kll: arena bounds [%d..%d] do not span the arena of %d elements",
			s.bounds[s.Depth()], s.bounds[0], len(s.arena))
	}
	var total int64
	for h := 0; h < s.Depth(); h++ {
		if s.levelLen(h) < 0 {
			return fmt.Errorf("kll: level %d has negative extent %d", h, s.levelLen(h))
		}
		total += int64(s.levelLen(h)) << h
	}
	if total != s.n {
		return fmt.Errorf("kll: level-weight accounting broken: Σ 2^h·|level h| = %d, want n = %d",
			total, s.n)
	}
	return nil
}
