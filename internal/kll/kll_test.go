package kll

import (
	"math"
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

func feed(s *Sketch, data []uint64) {
	for _, x := range data {
		s.Update(x)
	}
}

func TestErrorWithinEpsAcrossSeeds(t *testing.T) {
	const n = 50000
	const eps = 0.02
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 1}, n)
	oracle := exact.New(data)
	for seed := uint64(1); seed <= 10; seed++ {
		s := New(eps, seed)
		feed(s, data)
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("seed %d: max error %v exceeds ε", seed, maxErr)
		}
	}
}

func TestErrorAcrossWorkloads(t *testing.T) {
	const n = 40000
	const eps = 0.02
	for _, gen := range []streamgen.Generator{
		streamgen.Normal{Bits: 20, Sigma: 0.05, Seed: 2},
		streamgen.Sorted{Inner: streamgen.Uniform{Bits: 24, Seed: 3}},
		streamgen.MPCATLike{Seed: 4},
	} {
		data := streamgen.Generate(gen, n)
		oracle := exact.New(data)
		s := New(eps, 5)
		feed(s, data)
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("%s: max error %v exceeds ε", gen.Name(), maxErr)
		}
	}
}

func TestWeightConservation(t *testing.T) {
	s := New(0.01, 6)
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 7}, 100000)
	for i, x := range data {
		s.Update(x)
		if (i+1)%10000 == 0 {
			var w int64
			for h := 0; h < s.Depth(); h++ {
				w += int64(s.levelLen(h)) << h
			}
			if w != int64(i+1) {
				t.Fatalf("total weight %d != n %d", w, i+1)
			}
		}
	}
}

func TestSpaceBeatsRandomAtSmallEps(t *testing.T) {
	// KLL's design goal: fewer retained elements than the Random-style
	// equal-buffer hierarchy at equal ε.
	const eps = 0.001
	const n = 2_000_000
	kll := New(eps, 8)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 9}, n)
	feed(kll, data)
	// Random stores b·s = (h+1)·(1/ε)·√h elements; KLL ≈ 3k = 4.5/ε.
	h := math.Ceil(math.Log2(1 / eps))
	randomElems := (h + 1) * math.Sqrt(h) / eps
	if got := float64(kll.RetainedElements()); got > randomElems/2 {
		t.Errorf("KLL retained %v elements, want well below Random's %v", got, randomElems)
	}
	// And the accuracy must hold.
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(kll, eps)
	if maxErr > eps {
		t.Errorf("max error %v exceeds ε", maxErr)
	}
}

func TestUnbiasedRank(t *testing.T) {
	const n = 30000
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 10}, n)
	oracle := exact.New(data)
	probe := uint64(1) << 19
	want := float64(oracle.Rank(probe))
	var sum float64
	const runs = 40
	for seed := uint64(0); seed < runs; seed++ {
		s := New(0.05, seed)
		feed(s, data)
		sum += float64(s.Rank(probe))
	}
	if mean := sum / runs; math.Abs(mean-want) > 0.01*float64(n) {
		t.Errorf("mean rank %v vs true %v: biased", mean, want)
	}
}

func TestMergeAccuracy(t *testing.T) {
	const n = 30000
	const eps = 0.02
	dataA := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 11}, n)
	dataB := streamgen.Generate(streamgen.Normal{Bits: 24, Sigma: 0.1, Seed: 12}, n)
	a := New(eps, 13)
	b := New(eps, 14)
	feed(a, dataA)
	feed(b, dataB)
	a.Merge(b)
	if a.Count() != 2*n {
		t.Fatalf("merged count %d", a.Count())
	}
	all := append(append([]uint64{}, dataA...), dataB...)
	oracle := exact.New(all)
	maxErr, _ := oracle.EvaluateSummary(a, eps)
	if maxErr > 2*eps {
		t.Errorf("merged max error %v exceeds 2ε", maxErr)
	}
}

func TestMergeEpsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge did not panic")
		}
	}()
	New(0.01, 1).Merge(New(0.02, 1))
}

func TestBatchMatchesSingle(t *testing.T) {
	s := New(0.01, 15)
	feed(s, streamgen.Generate(streamgen.MPCATLike{Seed: 16}, 30000))
	phis := append(core.EvenPhis(0.05), 0.001, 0.999)
	batch := s.QuantileBatch(phis)
	for i, phi := range phis {
		if got := s.Quantile(phi); got != batch[i] {
			t.Errorf("phi=%v: single %d batch %d", phi, got, batch[i])
		}
	}
}

func TestSmallStreamExactAndPanics(t *testing.T) {
	s := New(0.05, 17)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty Quantile did not panic")
			}
		}()
		s.Quantile(0.5)
	}()
	for i := uint64(1); i <= 20; i++ {
		s.Update(i)
	}
	if got := s.Rank(11); got != 10 {
		t.Errorf("Rank(11) = %d, want 10 (exact regime)", got)
	}
	if q := s.Quantile(0.5); q < 9 || q > 12 {
		t.Errorf("median %d", q)
	}
}

func TestBadEpsPanics(t *testing.T) {
	for _, eps := range []float64{0, 1, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", eps)
				}
			}()
			New(eps, 1)
		}()
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 18}, 30000)
	a := New(0.01, 42)
	b := New(0.01, 42)
	feed(a, data)
	feed(b, data)
	for _, phi := range core.EvenPhis(0.1) {
		if a.Quantile(phi) != b.Quantile(phi) {
			t.Fatal("same seed, different answers")
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	s := New(0.001, 1)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(data[i&(1<<16-1)])
	}
}
