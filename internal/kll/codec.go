package kll

import (
	"math"

	"streamquantiles/internal/core"
)

const codecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler: parameters, levels,
// and the RNG state, so restore-and-continue matches never stopping.
func (s *Sketch) MarshalBinary() ([]byte, error) { return s.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler: the same bytes as
// MarshalBinary, appended onto dst so pooled buffers can be reused.
func (s *Sketch) AppendBinary(dst []byte) ([]byte, error) {
	e := core.EncoderFrom(dst)
	e.U64(codecVersion)
	e.F64(s.eps)
	e.I64(s.n)
	e.U64(s.rng.State())
	e.U64(uint64(s.Depth()))
	for h := 0; h < s.Depth(); h++ {
		e.U64s(s.level(h))
	}
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	dec := core.NewDecoder(data)
	if v := dec.U64(); v != codecVersion && dec.Err() == nil {
		return core.Corruptf("kll: unsupported encoding version %d", v)
	}
	eps := dec.F64()
	n := dec.I64()
	rngState := dec.U64()
	depth := dec.Len()
	if err := dec.Err(); err != nil {
		return err
	}
	// Positive-form comparisons so NaN (which fails every comparison) is
	// rejected rather than slipping through to New's panic; the footprint
	// bound keeps New's pre-allocated level of k = ⌈4/ε⌉ elements (which
	// a tiny hostile encoding would otherwise control) plausible.
	if !(eps > 0 && eps < 1) || n < 0 || depth < 1 || depth > 64 {
		return core.Corruptf("kll: implausible encoded parameters eps=%v n=%d depth=%d", eps, n, depth)
	}
	if !(math.Ceil(4/eps) <= 1<<22) {
		return core.Corruptf("kll: implausible eps %v: level capacity beyond any runnable sketch", eps)
	}
	ns := New(eps, 0)
	ns.n = n
	ns.rng.Restore(rngState)
	// The encoding stores levels lowest first; the arena wants them
	// highest first, so stage the decoded views before assembling.
	lvls := make([][]uint64, depth)
	var weight int64
	total := 0
	for h := 0; h < depth; h++ {
		lvl := dec.U64s()
		if dec.Err() != nil {
			return dec.Err()
		}
		weight += int64(len(lvl)) << h
		total += len(lvl)
		lvls[h] = lvl
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("kll: %d trailing bytes", dec.Remaining())
	}
	if weight != n {
		return core.Corruptf("kll: encoded weight %d does not match n %d", weight, n)
	}
	// Every stored element carries weight ≥ 1, so the element count is
	// bounded by the (already validated) total weight — and the arena
	// allocation below by the stream length the encoder claimed.
	if int64(total) > n {
		return core.Corruptf("kll: %d stored elements exceed encoded weight %d", total, n)
	}
	ns.arena = make([]uint64, 0, total)
	ns.bounds = make([]int, depth+1)
	for h := depth - 1; h >= 0; h-- {
		ns.arena = append(ns.arena, lvls[h]...)
		ns.bounds[h] = len(ns.arena)
	}
	*s = *ns
	return nil
}
