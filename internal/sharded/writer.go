package sharded

// Per-goroutine writer handles.
//
// The handle-less write path (Update/UpdateBatch) is safe for any number
// of goroutines but routes through shared hot state: every cash-register
// write bumps the round-robin cursor, and small batches pay one shard
// lock acquisition per call. A Writer moves that cost off the shared
// path entirely: each handle owns an affinity slot (assigned once, at
// acquire) and a writer-local buffer, and touches the container only
// when the buffer fills — one shard-lock acquisition per writerBufLen
// elements, zero shared atomics in steady state. P writers on P cores
// land on P distinct shards (slots are issued round-robin at acquire),
// so the handles scale with the shard count instead of serializing on
// the cursor's cache line.
//
// Handles are NOT safe for concurrent use — one goroutine per handle.
// Flushes go through the same deliver/scatter paths as the handle-less
// API, so a flush that lands on a shard retired by a concurrent
// Reshard/Retarget re-routes against the live generation: count
// conservation is structural, not best-effort. Buffered elements are
// invisible to queries until Flush (or a buffer-full auto-flush); Close
// flushes, so a closed writer never strands data.

// writerBufLen is the writer-local buffer capacity: large enough to
// amortize the shard lock and feed the summaries' native batch kernels,
// small enough (8 KiB of uint64s) to stay cache-resident per writer.
const writerBufLen = 1024

// CashWriter is a per-goroutine ingestion handle for a CashRegister;
// see AcquireWriter.
type CashWriter struct {
	c    *CashRegister
	slot uint64
	buf  []uint64
}

// AcquireWriter returns a new ingestion handle bound to this container.
// Slots are issued round-robin, so the first P handles land on P
// distinct shards. The handle must be used by one goroutine at a time
// and Closed (or Flushed) before its buffered elements are expected to
// be visible to queries.
func (c *CashRegister) AcquireWriter() *CashWriter {
	return &CashWriter{c: c, slot: c.wslot.Add(1) - 1, buf: make([]uint64, 0, writerBufLen)}
}

// Update buffers one element, flushing to the affinity shard when the
// buffer fills.
func (w *CashWriter) Update(x uint64) {
	w.buf = append(w.buf, x)
	if len(w.buf) >= writerBufLen {
		w.Flush()
	}
}

// UpdateBatch buffers xs, flushing as the buffer fills. A batch already
// at or above the buffer size skips the copy and is delivered directly
// (after flushing any buffered prefix, preserving arrival order).
func (w *CashWriter) UpdateBatch(xs []uint64) {
	for len(xs) > 0 {
		if len(w.buf) == 0 && len(xs) >= writerBufLen {
			w.c.deliver(w.slot, xs)
			return
		}
		n := writerBufLen - len(w.buf)
		if n > len(xs) {
			n = len(xs)
		}
		w.buf = append(w.buf, xs[:n]...)
		xs = xs[n:]
		if len(w.buf) >= writerBufLen {
			w.Flush()
		}
	}
}

// Flush delivers the buffered elements to the writer's affinity shard
// in the live generation (re-routing if that shard retired mid-flush)
// and resets the buffer. The summaries copy what they keep, so the
// buffer is reused across flushes without aliasing.
func (w *CashWriter) Flush() {
	if len(w.buf) == 0 {
		return
	}
	w.c.deliver(w.slot, w.buf)
	w.buf = w.buf[:0]
}

// Buffered returns the number of elements accumulated since the last
// flush — useful for leak tests and harness accounting.
func (w *CashWriter) Buffered() int { return len(w.buf) }

// Close flushes any buffered elements and releases the buffer. Using
// the handle after Close is tolerated (writes re-buffer and still
// land); Close exists so no element can be stranded in a dropped
// handle's buffer.
func (w *CashWriter) Close() {
	w.Flush()
	w.buf = nil
}

// TurnWriter is the per-goroutine ingestion handle for a Turnstile; see
// Turnstile.AcquireWriter. Turnstile routing is by value affinity, so
// the handle has no slot — it buffers insertions and deletions
// separately and scatters each through the container's value-affinity
// batch path on flush.
type TurnWriter struct {
	t    *Turnstile
	ins  []uint64
	dels []uint64
	pt   partition // private scatter scratch; skips the pool round-trip
}

// AcquireWriter returns a new turnstile ingestion handle. One goroutine
// per handle; Close (or Flush) before expecting the buffered operations
// to be visible to queries.
func (t *Turnstile) AcquireWriter() *TurnWriter {
	return &TurnWriter{
		t:    t,
		ins:  make([]uint64, 0, writerBufLen),
		dels: make([]uint64, 0, writerBufLen),
	}
}

// Insert buffers one insertion, flushing when the buffer fills.
func (w *TurnWriter) Insert(x uint64) {
	w.ins = append(w.ins, x)
	if len(w.ins) >= writerBufLen {
		w.Flush()
	}
}

// Delete buffers one deletion, flushing when the buffer fills.
func (w *TurnWriter) Delete(x uint64) {
	w.dels = append(w.dels, x)
	if len(w.dels) >= writerBufLen {
		w.Flush()
	}
}

// InsertBatch buffers xs as insertions, flushing as the buffer fills;
// batches at or above the buffer size scatter directly.
func (w *TurnWriter) InsertBatch(xs []uint64) { w.addBatch(&w.ins, xs, 1) }

// DeleteBatch buffers xs as deletions, flushing as the buffer fills;
// batches at or above the buffer size scatter directly.
func (w *TurnWriter) DeleteBatch(xs []uint64) { w.addBatch(&w.dels, xs, -1) }

func (w *TurnWriter) addBatch(buf *[]uint64, xs []uint64, delta int64) {
	for len(xs) > 0 {
		if len(*buf) == 0 && len(xs) >= writerBufLen {
			if delta > 0 {
				// Direct insert scatters must not overtake buffered ones;
				// an empty insert buffer guarantees that. Buffered deletes
				// may lag — delaying a deletion never violates strictness.
				w.t.scatter(&w.pt, xs, delta)
				return
			}
			// A direct delete scatter must not overtake buffered inserts
			// (the deletions could transiently outrun their insertions on
			// a shard), so drain the insert buffer first.
			w.Flush()
			w.t.scatter(&w.pt, xs, delta)
			return
		}
		n := writerBufLen - len(*buf)
		if n > len(xs) {
			n = len(xs)
		}
		*buf = append(*buf, xs[:n]...)
		xs = xs[n:]
		if len(*buf) >= writerBufLen {
			w.Flush()
		}
	}
}

// Flush scatters the buffered insertions, then the buffered deletions.
// Insertions go first so that an insert/delete pair of a fresh element
// buffered together never leaves a shard transiently negative — the
// flush boundary preserves the strict-turnstile model.
func (w *TurnWriter) Flush() {
	if len(w.ins) > 0 {
		w.t.scatter(&w.pt, w.ins, 1)
		w.ins = w.ins[:0]
	}
	if len(w.dels) > 0 {
		w.t.scatter(&w.pt, w.dels, -1)
		w.dels = w.dels[:0]
	}
}

// Buffered returns the number of operations (insertions plus deletions)
// accumulated since the last flush.
func (w *TurnWriter) Buffered() int { return len(w.ins) + len(w.dels) }

// Close flushes and releases the buffers; see CashWriter.Close.
func (w *TurnWriter) Close() {
	w.Flush()
	w.ins, w.dels = nil, nil
	w.pt.byShard = nil
}
