package sharded

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// Elastic operations: online re-sharding and re-ε rebuild.
//
// Both follow the same epoch-swap protocol:
//
//  1. Take the topology write lock — queries that fold or aggregate
//     wait, writers do not (they hold no topology lock).
//  2. Build the successor generation and publish it with one atomic
//     store. From this instant every new write routes to the new shard
//     set.
//  3. Retire each old shard under its own mutex (set the flag, take the
//     summary). A writer blocked on that mutex wakes, sees the flag,
//     and re-routes — ingestion is stalled at most for one shard's
//     drain, never for the whole operation.
//  4. Drain the taken summaries into the successor: MERGE for mergeable
//     families, adoption (pointer move) for the GK family on reshard,
//     RetargetMerge for budget-widening re-ε, and freezing into a
//     query-time rank component when nothing else preserves the data.
//
// ε-budget accounting: a MERGE preserves max(ε₁, ε₂) (the mergeable-
// summary rule the SQ012 lint polices), RetargetMerge widens the
// receiver to that same max, and a frozen component keeps its own ε and
// contributes its own ±εᵢnᵢ to the additive rank combination. EpsBudget
// reports the max over the live factory and all frozen components, so
// the composed error of any query is ≤ 2·EpsBudget()·n + Components()
// for rank-combined families and ≤ EpsBudget()·n for merged ones.

// retiredComp is a summary frozen by an elastic operation: it no longer
// receives writes and participates in queries by additive rank. The
// snapshot is built eagerly at freeze time when the family supports it,
// making later queries lock-free; otherwise queries lock the component
// (GKBiased's reads flush internally, so they mutate).
type retiredComp struct {
	mu  sync.Mutex
	s   core.Summary // guarded by mu
	qs  *core.QuerySnapshot
	n   int64
	eps float64 // the component's own error budget; 0 when unknown
}

// newRetiredComp freezes s. The caller must be the only owner of s (it
// was taken from a retired shard under that shard's mutex).
func newRetiredComp(s core.Summary) *retiredComp {
	c := &retiredComp{s: s, n: s.Count()}
	if ss, ok := s.(core.Snapshotter); ok {
		c.qs = core.BuildQuerySnapshot(ss)
	}
	if er, ok := s.(epsReporter); ok {
		c.eps = er.Eps()
	}
	return c
}

func (c *retiredComp) rank(x uint64) int64 {
	if c.qs != nil {
		return c.qs.Rank(x)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Rank(x)
}

func (c *retiredComp) spaceBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.SpaceBytes()
}

func (c *retiredComp) invariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ic, ok := c.s.(invariantChecker)
	if !ok {
		return nil
	}
	return ic.Invariants()
}

// retiredSet collects a container's frozen components. comps is only
// mutated under the container's topology write lock and only read under
// its read lock; ver is bumped on every mutation so the lock-free query
// cache can validate without the lock.
type retiredSet struct {
	ver   atomic.Uint64
	comps []*retiredComp
}

func (r *retiredSet) add(c *retiredComp) {
	r.comps = append(r.comps, c)
	r.ver.Add(1)
}

func (r *retiredSet) count() int64 {
	var n int64
	for _, c := range r.comps {
		n += c.n
	}
	return n
}

func (r *retiredSet) rank(x uint64) int64 {
	var n int64
	for _, c := range r.comps {
		n += c.rank(x)
	}
	return n
}

func (r *retiredSet) addRanks(dst []int64, xs []uint64) {
	for _, c := range r.comps {
		for i, x := range xs {
			dst[i] += c.rank(x)
		}
	}
}

func (r *retiredSet) spaceBytes() int64 {
	var b int64
	for _, c := range r.comps {
		b += c.spaceBytes()
	}
	return b
}

func (r *retiredSet) invariants() error {
	for i, c := range r.comps {
		if err := c.invariants(); err != nil {
			return fmt.Errorf("sharded: retired component %d: %w", i, err)
		}
	}
	return nil
}

// A DrainObserver brackets each per-shard drain performed by an elastic
// operation (Reshard, Retarget): it is called with the retiring shard's
// index when the drain starts and the returned func when it completes.
// The containers never time anything themselves — a harness that wants
// stall telemetry supplies the clock (cmd/quantstress records drain
// durations this way and asserts a bound in its soak report). The
// observer runs under the topology write lock, so it must not call back
// into the container.
type DrainObserver func(shard int) (done func())

// SetDrainObserver installs obs (nil removes it). Safe to call
// concurrently with elastic operations: the pointer is swapped
// atomically and each drain loads it once per shard.
func (c *CashRegister) SetDrainObserver(obs DrainObserver) {
	if obs == nil {
		c.drainObs.Store(nil)
		return
	}
	c.drainObs.Store(&obs)
}

// SetDrainObserver installs obs (nil removes it); see the CashRegister
// counterpart.
func (t *Turnstile) SetDrainObserver(obs DrainObserver) {
	if obs == nil {
		t.drainObs.Store(nil)
		return
	}
	t.drainObs.Store(&obs)
}

func (c *CashRegister) drainStart(i int) func() {
	if p := c.drainObs.Load(); p != nil {
		if done := (*p)(i); done != nil {
			return done
		}
	}
	return func() {}
}

func (t *Turnstile) drainStart(i int) func() {
	if p := t.drainObs.Load(); p != nil {
		if done := (*p)(i); done != nil {
			return done
		}
	}
	return func() {}
}

// retireCashShard marks the shard retired under its own mutex and takes
// its summary; a writer blocked on the mutex wakes to the flag and
// re-routes.
func retireCashShard(sh *cashShard) core.CashRegister {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.s
	sh.retired = true
	sh.s = nil
	sh.epoch.Add(1)
	return s
}

// retireTurnShard is the turnstile counterpart of retireCashShard.
func retireTurnShard(sh *turnShard) core.Turnstile {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s := sh.s
	sh.retired = true
	sh.s = nil
	sh.epoch.Add(1)
	return s
}

// finerThan reports whether tgt's error budget is strictly tighter than
// old's, when both report one.
func finerThan(tgt, old core.Summary) bool {
	te, ok1 := tgt.(epsReporter)
	oe, ok2 := old.(epsReporter)
	return ok1 && ok2 && te.Eps() < oe.Eps()
}

// absorb folds old into tgt when that preserves both budgets' meaning:
// a plain MERGE when the configurations match, a RetargetMerge
// (widening tgt to max(ε_tgt, ε_old)) when tgt's budget is not finer.
// It reports false when the data must be frozen instead — merging a
// coarse old summary into a finer target would silently pin the whole
// sketch at the old ε forever; freezing lets new data earn the finer
// budget while the old data keeps its own.
func absorb(tgt, old core.Summary) bool {
	if m, ok := tgt.(core.Mergeable); ok && m.MergeSummary(old) == nil {
		return true
	}
	if finerThan(tgt, old) {
		return false
	}
	if r, ok := tgt.(core.Retargetable); ok && r.RetargetMerge(old) == nil {
		return true
	}
	return false
}

// ------------------------------------------------------- cash register

// Reshard grows or shrinks the shard count to p without stopping
// ingestion. Mergeable families drain every retired shard into the new
// shard set through MERGE; the GK family adopts the first min(P_old, p)
// summaries in place (a pointer move — no accuracy cost) and freezes
// any surplus as rank components, so a shrink adds at most
// P_old − p components to the additive bound.
func (c *CashRegister) Reshard(p int) error {
	if err := checkShards(p); err != nil {
		return err
	}
	c.topo.Lock()
	defer c.topo.Unlock()
	old := c.gen.Load()
	if p == len(old.shards) {
		return nil
	}
	if old.caps.mergeable {
		c.reshardByMerge(old, p)
	} else {
		c.reshardByAdoption(old, p)
	}
	c.q.invalidate()
	return nil
}

// reshardByMerge publishes a fresh successor first (writers re-route
// immediately), then drains each retired shard into a successor shard.
func (c *CashRegister) reshardByMerge(old *cashGen, p int) {
	next := newCashGen(old.id+1, p, old.fresh, old.caps)
	c.gen.Store(next)
	for i := range old.shards {
		done := c.drainStart(i)
		s := retireCashShard(&old.shards[i])
		if s.Count() > 0 {
			dst := &next.shards[i%p]
			dst.mu.Lock()
			dst.epoch.Add(1)
			err := dst.s.(core.Mergeable).MergeSummary(s)
			dst.mu.Unlock()
			if err != nil {
				// The factory probed mergeable, so this cannot happen unless
				// the factory misbehaves; freeze rather than lose the data.
				c.ret.add(newRetiredComp(s))
			}
		}
		done()
	}
}

// reshardByAdoption moves the first min(P_old, p) summaries into the
// successor unchanged and freezes the surplus. The successor is built
// before it is published, so writers spin (seeing retired flags under
// the old generation) only for the duration of the pointer moves.
func (c *CashRegister) reshardByAdoption(old *cashGen, p int) {
	next := &cashGen{id: old.id + 1, shards: make([]cashShard, p), fresh: old.fresh, caps: old.caps, eps: old.eps}
	keep := len(old.shards)
	if p < keep {
		keep = p
	}
	for i := 0; i < keep; i++ {
		done := c.drainStart(i)
		sh := &next.shards[i]
		sh.mu.Lock()
		sh.s = retireCashShard(&old.shards[i])
		sh.mu.Unlock()
		done()
	}
	for i := keep; i < p; i++ {
		sh := &next.shards[i]
		sh.mu.Lock()
		sh.s = old.fresh()
		sh.mu.Unlock()
	}
	for i := keep; i < len(old.shards); i++ {
		done := c.drainStart(i)
		if s := retireCashShard(&old.shards[i]); s.Count() > 0 {
			c.ret.add(newRetiredComp(s))
		}
		done()
	}
	c.gen.Store(next)
}

// Retarget migrates the container to a new factory — typically the same
// family at a different ε — without stopping ingestion. New writes land
// in fresh summaries at the new budget immediately; each retired
// shard's data is absorbed into its successor when that preserves the
// budget semantics (see absorb) and frozen as a rank component
// otherwise. The shard count is preserved.
func (c *CashRegister) Retarget(fresh func() core.CashRegister) error {
	c.topo.Lock()
	defer c.topo.Unlock()
	old := c.gen.Load()
	caps := probeCaps(func() core.Summary { return fresh() })
	next := newCashGen(old.id+1, len(old.shards), fresh, caps)
	c.gen.Store(next)
	for i := range old.shards {
		done := c.drainStart(i)
		s := retireCashShard(&old.shards[i])
		if s.Count() > 0 {
			dst := &next.shards[i]
			dst.mu.Lock()
			dst.epoch.Add(1)
			absorbed := absorb(dst.s, s)
			dst.mu.Unlock()
			if !absorbed {
				c.ret.add(newRetiredComp(s))
			}
		}
		done()
	}
	c.q.invalidate()
	return nil
}

// Components returns the number of frozen retired components currently
// contributing to queries by additive rank.
func (c *CashRegister) Components() int {
	c.topo.RLock()
	defer c.topo.RUnlock()
	return len(c.ret.comps)
}

// EpsBudget reports the composed error budget: the max over the live
// factory's ε and every frozen component's ε (0 when the family does
// not report one). Rank-combined queries err by at most
// 2·EpsBudget()·n + Shards() + Components(); merged folds by at most
// EpsBudget()·n.
func (c *CashRegister) EpsBudget() float64 {
	c.topo.RLock()
	defer c.topo.RUnlock()
	eps := c.gen.Load().eps
	for _, comp := range c.ret.comps {
		eps = math.Max(eps, comp.eps)
	}
	return eps
}

// ------------------------------------------------------------ turnstile

// Reshard grows or shrinks the shard count to p without stopping
// ingestion. Only mergeable families can reshard under deletions: the
// re-routed deletions of an element must cancel against its re-merged
// insertions, which the linear sketches guarantee exactly; a frozen
// component could never be decremented again, so non-mergeable
// turnstile families are rejected.
func (t *Turnstile) Reshard(p int) error {
	if err := checkShards(p); err != nil {
		return err
	}
	t.topo.Lock()
	defer t.topo.Unlock()
	old := t.gen.Load()
	if p == len(old.shards) {
		return nil
	}
	if !old.caps.mergeable {
		return fmt.Errorf("sharded: cannot reshard a non-mergeable turnstile family: re-routed deletions must cancel against re-merged insertions")
	}
	next := newTurnGen(old.id+1, p, old.fresh, old.caps)
	t.gen.Store(next)
	for i := range old.shards {
		done := t.drainStart(i)
		s := retireTurnShard(&old.shards[i])
		dst := &next.shards[i%p]
		dst.mu.Lock()
		dst.epoch.Add(1)
		err := dst.s.(core.Mergeable).MergeSummary(s)
		dst.mu.Unlock()
		done()
		if err != nil {
			t.q.invalidate()
			return fmt.Errorf("sharded: reshard drain merge: %w", err)
		}
	}
	t.q.invalidate()
	return nil
}

// Retarget migrates the turnstile container to a new factory. Freezing
// is not an option under deletions, so the operation is gated on a
// probe: the new configuration must absorb the old one (merge or
// retarget-merge) on throwaway instances, or the call fails without
// touching the live topology.
func (t *Turnstile) Retarget(fresh func() core.Turnstile) error {
	t.topo.Lock()
	defer t.topo.Unlock()
	old := t.gen.Load()
	if !absorb(fresh(), old.fresh()) {
		return fmt.Errorf("sharded: turnstile retarget: the new configuration cannot absorb the old (no merge or retarget-merge path), and deletions rule out freezing")
	}
	caps := probeCaps(func() core.Summary { return fresh() })
	next := newTurnGen(old.id+1, len(old.shards), fresh, caps)
	t.gen.Store(next)
	for i := range old.shards {
		done := t.drainStart(i)
		s := retireTurnShard(&old.shards[i])
		dst := &next.shards[i]
		dst.mu.Lock()
		dst.epoch.Add(1)
		ok := absorb(dst.s, s)
		dst.mu.Unlock()
		done()
		if !ok {
			t.q.invalidate()
			return fmt.Errorf("sharded: turnstile retarget: shard %d absorb failed after a successful probe", i)
		}
	}
	t.q.invalidate()
	return nil
}

// Components returns 0: turnstile containers never freeze components.
func (t *Turnstile) Components() int { return 0 }

// EpsBudget reports the live factory's ε (0 when the family does not
// report one); turnstile drains are exact merges, so no wider budget
// ever accumulates.
func (t *Turnstile) EpsBudget() float64 { return t.gen.Load().eps }
