package sharded

import (
	"sync"

	"streamquantiles/internal/core"
)

// turnShard is the turnstile counterpart of cashShard.
type turnShard struct {
	mu sync.Mutex
	s  core.Turnstile
}

// Turnstile partitions a strict-turnstile stream across P per-shard
// summaries. Routing is by value affinity — mix(x) mod P — so an
// element's deletions always reach the shard that saw its insertions
// and every shard individually remains a valid strict-turnstile stream.
// All methods are safe for concurrent use.
type Turnstile struct {
	shards []turnShard
	fresh  func() core.Turnstile

	// parts pools per-call partition scratch: batch routing scatters the
	// input into per-shard sub-batches without allocating per call.
	parts sync.Pool
}

// partition is the pooled scatter scratch of one in-flight batch call.
type partition struct {
	byShard [][]uint64
}

// NewTurnstile builds a P-way sharded turnstile summary; fresh must
// return a new empty summary per call, all identically configured
// (including seeds, so shards can merge at query time).
func NewTurnstile(p int, fresh func() core.Turnstile) *Turnstile {
	checkShards(p)
	t := &Turnstile{shards: make([]turnShard, p), fresh: fresh}
	for i := range t.shards {
		t.shards[i].s = fresh()
	}
	t.parts.New = func() any {
		pt := &partition{byShard: make([][]uint64, p)}
		for i := range pt.byShard {
			pt.byShard[i] = make([]uint64, 0, 512)
		}
		return pt
	}
	return t
}

// Shards returns P.
func (t *Turnstile) Shards() int { return len(t.shards) }

// shardOf routes an element by value affinity.
func (t *Turnstile) shardOf(x uint64) *turnShard {
	return &t.shards[mix(x)%uint64(len(t.shards))]
}

// Insert implements core.Turnstile.
func (t *Turnstile) Insert(x uint64) {
	sh := t.shardOf(x)
	sh.mu.Lock()
	sh.s.Insert(x)
	sh.mu.Unlock()
}

// Delete implements core.Turnstile.
func (t *Turnstile) Delete(x uint64) {
	sh := t.shardOf(x)
	sh.mu.Lock()
	sh.s.Delete(x)
	sh.mu.Unlock()
}

// InsertBatch implements core.BatchTurnstile.
func (t *Turnstile) InsertBatch(xs []uint64) { t.AddBatch(xs, 1) }

// DeleteBatch implements core.BatchTurnstile.
func (t *Turnstile) DeleteBatch(xs []uint64) { t.AddBatch(xs, -1) }

// AddBatch implements core.BatchTurnstile: one scatter pass partitions
// the batch by value affinity, then each non-empty sub-batch flows
// through its shard's native batch path under one lock acquisition.
func (t *Turnstile) AddBatch(xs []uint64, delta int64) {
	if len(xs) == 0 {
		return
	}
	pt := t.parts.Get().(*partition)
	for i := range pt.byShard {
		pt.byShard[i] = pt.byShard[i][:0]
	}
	p := uint64(len(t.shards))
	for _, x := range xs {
		si := mix(x) % p
		pt.byShard[si] = append(pt.byShard[si], x)
	}
	for i := range t.shards {
		sub := pt.byShard[i]
		if len(sub) == 0 {
			continue
		}
		sh := &t.shards[i]
		sh.mu.Lock()
		addBatch(sh.s, sub, delta)
		sh.mu.Unlock()
	}
	t.parts.Put(pt)
}

// addBatch applies a weighted batch through the summary's native path,
// falling back to |delta| rounds of per-element calls.
func addBatch(s core.Turnstile, xs []uint64, delta int64) {
	if bt, ok := s.(core.BatchTurnstile); ok {
		bt.AddBatch(xs, delta)
		return
	}
	rounds, ins := delta, true
	if rounds < 0 {
		rounds, ins = -rounds, false
	}
	for ; rounds > 0; rounds-- {
		for _, x := range xs {
			if ins {
				s.Insert(x)
			} else {
				s.Delete(x)
			}
		}
	}
}

// Count implements core.Summary.
func (t *Turnstile) Count() int64 {
	var n int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += sh.s.Count()
		sh.mu.Unlock()
	}
	return n
}

// Rank implements core.Summary: merged-summary estimate when the family
// merges (exact for the linear dyadic sketches — identical to an
// unsharded sketch of the whole stream), summed per-shard estimates
// otherwise.
func (t *Turnstile) Rank(x uint64) int64 {
	if s := t.combined(); s != nil {
		return s.Rank(x)
	}
	return t.summedRank(x)
}

// summedRank is the additive estimate over all shards.
func (t *Turnstile) summedRank(x uint64) int64 {
	var r int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		r += sh.s.Rank(x)
		sh.mu.Unlock()
	}
	return r
}

// combined merges every shard into one fresh summary when the family
// supports it (the dyadic sketches are linear, so identically seeded
// shards merge exactly), nil otherwise.
func (t *Turnstile) combined() core.Turnstile {
	fresh := t.fresh()
	m, ok := fresh.(core.Mergeable)
	if !ok {
		return nil
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		err := m.MergeSummary(sh.s)
		sh.mu.Unlock()
		if err != nil {
			return nil
		}
	}
	return fresh
}

// Quantile implements core.Summary within the composed ε bound.
func (t *Turnstile) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if s := t.combined(); s != nil {
		return s.Quantile(phi)
	}
	return rankQuantile(t.Count(), t.summedRank, phi)
}

// BatchQuantiles implements core.BatchQuantiler.
func (t *Turnstile) BatchQuantiles(phis []float64) []uint64 {
	for _, phi := range phis {
		core.CheckPhi(phi)
	}
	if s := t.combined(); s != nil {
		return core.Quantiles(s, phis)
	}
	n := t.Count()
	out := make([]uint64, len(phis))
	for i, phi := range phis {
		out[i] = rankQuantile(n, t.summedRank, phi)
	}
	return out
}

// SpaceBytes implements core.Summary: the sum over shards.
func (t *Turnstile) SpaceBytes() int64 {
	var b int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		b += sh.s.SpaceBytes()
		sh.mu.Unlock()
	}
	return b
}

// Invariants implements the sanitizer contract by deep-checking every
// shard that supports it.
func (t *Turnstile) Invariants() error {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		err := checkShardInvariants(i, sh.s)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
