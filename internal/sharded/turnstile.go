package sharded

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// turnShard is the turnstile counterpart of cashShard, padded to the
// same cacheLine multiple so adjacent shards never false-share.
type turnShard struct {
	mu      sync.Mutex
	s       core.Turnstile // guarded by mu
	retired bool           // guarded by mu
	epoch   atomic.Uint64
	_       [cacheLine - 40]byte
}

// turnGen is one immutable turnstile shard topology (see cashGen).
//
// Generation 0 routes by value affinity, so every shard individually
// obeys the strict turnstile model. After a Reshard the routing modulus
// changes: an element's pre-reshard insertions were merged into one
// shard while its post-reshard deletions route by the new modulus, so a
// single shard's stream may go negative even though the whole container
// never does. Post-reshard generations therefore answer invariant
// checks through the merged fold (exact for the linear sketches), not
// per shard — see Invariants.
type turnGen struct {
	id     uint64
	shards []turnShard
	fresh  func() core.Turnstile
	caps   foldCaps
	eps    float64 // factory's reported error budget; 0 when unknown
}

func newTurnGen(id uint64, p int, fresh func() core.Turnstile, caps foldCaps) *turnGen {
	g := &turnGen{id: id, shards: make([]turnShard, p), fresh: fresh, caps: caps}
	for i := range g.shards {
		g.shards[i].s = fresh()
	}
	if er, ok := g.shards[0].s.(epsReporter); ok {
		g.eps = er.Eps()
	}
	return g
}

// genSet implementation (see query.go).
func (g *turnGen) numShards() int          { return len(g.shards) }
func (g *turnGen) shardEpoch(i int) uint64 { return g.shards[i].epoch.Load() }
func (g *turnGen) freshSummary() core.Summary {
	return g.fresh()
}
func (g *turnGen) genID() uint64          { return g.id }
func (g *turnGen) capabilities() foldCaps { return g.caps }

func (g *turnGen) withShard(i int, fn func(s core.Summary)) uint64 {
	sh := &g.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.s)
	return sh.epoch.Load()
}

// Turnstile partitions a strict-turnstile stream across P per-shard
// summaries. Routing is by value affinity — mix(x) mod P — so an
// element's deletions always reach the shard that saw its insertions.
// All methods are safe for concurrent use, including Reshard/Retarget.
type Turnstile struct {
	// topo is the topology lock; see CashRegister.topo.
	topo sync.RWMutex
	gen  atomic.Pointer[turnGen]
	q    queryCache

	// parts pools per-call partition scratch: batch routing scatters the
	// input into per-shard sub-batches without allocating per call.
	// Writer handles carry their own partition instead, so their flushes
	// skip even the pool round-trip.
	parts sync.Pool

	// drainObs, when set, brackets each retired shard's drain during an
	// elastic operation (see SetDrainObserver).
	drainObs atomic.Pointer[DrainObserver]

	// ckptObs, when set, brackets each live shard's marshal during a
	// checkpoint save (see SetCheckpointObserver).
	ckptObs atomic.Pointer[CheckpointObserver]
}

// partition is the pooled scatter scratch of one in-flight batch call.
type partition struct {
	byShard [][]uint64
}

// resize adapts the scratch to the current generation's shard count
// and resets every sub-batch.
func (pt *partition) resize(p int) {
	for len(pt.byShard) < p {
		pt.byShard = append(pt.byShard, nil)
	}
	pt.byShard = pt.byShard[:p]
	for i := range pt.byShard {
		pt.byShard[i] = pt.byShard[i][:0]
	}
}

// NewTurnstile builds a P-way sharded turnstile summary; fresh must
// return a new empty summary per call, all identically configured
// (including seeds, so shards can merge at query time). An invalid
// shard count surfaces as an error, not a panic.
func NewTurnstile(p int, fresh func() core.Turnstile) (*Turnstile, error) {
	if err := checkShards(p); err != nil {
		return nil, err
	}
	t := &Turnstile{}
	caps := probeCaps(func() core.Summary { return fresh() })
	t.gen.Store(newTurnGen(0, p, fresh, caps))
	t.parts.New = func() any { return &partition{} }
	return t, nil
}

// Shards returns the current shard count P.
func (t *Turnstile) Shards() int { return len(t.gen.Load().shards) }

// Generation returns the topology generation: 0 at construction,
// bumped by every Reshard/Retarget/decode.
func (t *Turnstile) Generation() uint64 { return t.gen.Load().id }

// Mergeable reports whether queries fold the shards into one merged
// summary, probed once per factory — a factory drawing random dyadic
// seeds is detected here instead of failing inside every query.
func (t *Turnstile) Mergeable() bool { return t.gen.Load().caps.mergeable }

// elasticSet implementation (see query.go). A turnstile never freezes
// retired components: deletions must cancel against the insertions'
// counts, so every drain is a merge (Reshard rejects non-mergeable
// families).
func (t *Turnstile) currentGen() genSet           { return t.gen.Load() }
func (t *Turnstile) retiredVer() uint64           { return 0 }
func (t *Turnstile) retiredComps() []*retiredComp { return nil }

// topoRLock takes the topology read lock and hands the caller the
// matching unlock; see CashRegister.topoRLock.
//
// locks topo
func (t *Turnstile) topoRLock() func() {
	t.topo.RLock()
	return t.topo.RUnlock
}

// Insert implements core.Turnstile. A shard caught mid-retire re-routes
// against the successor generation.
func (t *Turnstile) Insert(x uint64) {
	h := mix(x)
	for {
		g := t.gen.Load()
		sh := &g.shards[h%uint64(len(g.shards))]
		sh.mu.Lock()
		if sh.retired {
			sh.mu.Unlock()
			runtime.Gosched()
			continue
		}
		sh.epoch.Add(1)
		sh.s.Insert(x)
		sh.mu.Unlock()
		return
	}
}

// Delete implements core.Turnstile.
func (t *Turnstile) Delete(x uint64) {
	h := mix(x)
	for {
		g := t.gen.Load()
		sh := &g.shards[h%uint64(len(g.shards))]
		sh.mu.Lock()
		if sh.retired {
			sh.mu.Unlock()
			runtime.Gosched()
			continue
		}
		sh.epoch.Add(1)
		sh.s.Delete(x)
		sh.mu.Unlock()
		return
	}
}

// InsertBatch implements core.BatchTurnstile.
func (t *Turnstile) InsertBatch(xs []uint64) { t.AddBatch(xs, 1) }

// DeleteBatch implements core.BatchTurnstile.
func (t *Turnstile) DeleteBatch(xs []uint64) { t.AddBatch(xs, -1) }

// AddBatch implements core.BatchTurnstile: one scatter pass partitions
// the batch by value affinity, then each non-empty sub-batch flows
// through its shard's native batch path under one lock acquisition.
// Elements whose shard retired mid-call re-scatter against the
// successor generation (its routing modulus differs), so no element is
// lost across a reshard.
func (t *Turnstile) AddBatch(xs []uint64, delta int64) {
	if len(xs) == 0 {
		return
	}
	pt := t.parts.Get().(*partition)
	t.scatter(pt, xs, delta)
	t.parts.Put(pt)
}

// scatter drives addBatchOnce to completion: elements whose shard
// retired mid-call re-route against the successor generation until the
// whole batch has landed. Writer handles call it with their private
// partition scratch; AddBatch with a pooled one.
func (t *Turnstile) scatter(pt *partition, xs []uint64, delta int64) {
	for len(xs) > 0 {
		left := t.addBatchOnce(pt, xs, delta)
		if len(left) > 0 {
			runtime.Gosched() // a reshard is draining; re-route on its successor
		}
		xs = left
	}
}

// addBatchOnce routes xs over the current generation and returns the
// elements whose shard retired mid-call. The leftover slice is a fresh
// allocation — it only exists while a reshard is in flight, never in
// steady-state ingestion.
func (t *Turnstile) addBatchOnce(pt *partition, xs []uint64, delta int64) []uint64 {
	g := t.gen.Load()
	p := uint64(len(g.shards))
	pt.resize(int(p))
	for _, x := range xs {
		si := mix(x) % p
		pt.byShard[si] = append(pt.byShard[si], x)
	}
	var leftover []uint64
	for i := range g.shards {
		sub := pt.byShard[i]
		if len(sub) == 0 {
			continue
		}
		sh := &g.shards[i]
		sh.mu.Lock()
		if sh.retired {
			sh.mu.Unlock()
			leftover = append(leftover, sub...)
			continue
		}
		sh.epoch.Add(1)
		addBatch(sh.s, sub, delta)
		sh.mu.Unlock()
	}
	return leftover
}

// addBatch applies a weighted batch through the summary's native path,
// falling back to |delta| rounds of per-element calls.
func addBatch(s core.Turnstile, xs []uint64, delta int64) {
	if bt, ok := s.(core.BatchTurnstile); ok {
		bt.AddBatch(xs, delta)
		return
	}
	rounds, ins := delta, true
	if rounds < 0 {
		rounds, ins = -rounds, false
	}
	for ; rounds > 0; rounds-- {
		for _, x := range xs {
			if ins {
				s.Insert(x)
			} else {
				s.Delete(x)
			}
		}
	}
}

// Count implements core.Summary.
func (t *Turnstile) Count() int64 {
	t.topo.RLock()
	defer t.topo.RUnlock()
	return t.countLocked()
}

// countLocked sums the shard counts; the caller holds the topology
// read lock.
func (t *Turnstile) countLocked() int64 {
	g := t.gen.Load()
	var n int64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		n += sh.s.Count()
		sh.mu.Unlock()
	}
	return n
}

// Rank implements core.Summary: (cached) merged-summary estimate when
// the family merges (exact for the linear dyadic sketches — identical
// to an unsharded sketch of the whole stream), summed per-shard
// estimates otherwise.
func (t *Turnstile) Rank(x uint64) int64 {
	if e := t.q.entry(t); e != nil {
		return e.rank(x)
	}
	t.topo.RLock()
	defer t.topo.RUnlock()
	return t.summedRankLocked(x)
}

// RankBatch implements core.QuantileBatcher.
func (t *Turnstile) RankBatch(xs []uint64) []int64 {
	if e := t.q.entry(t); e != nil {
		return e.rankBatch(xs)
	}
	t.topo.RLock()
	defer t.topo.RUnlock()
	return t.summedRankBatchLocked(xs)
}

// summedRankLocked is the additive estimate over the live shards; the
// caller holds the topology read lock.
func (t *Turnstile) summedRankLocked(x uint64) int64 {
	g := t.gen.Load()
	var r int64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		r += sh.s.Rank(x)
		sh.mu.Unlock()
	}
	return r
}

// summedRankBatchLocked is the batch form of summedRankLocked: one lock
// acquisition and one native RankBatch sweep per shard for the whole
// probe set.
func (t *Turnstile) summedRankBatchLocked(xs []uint64) []int64 {
	g := t.gen.Load()
	out := make([]int64, len(xs))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		rs := core.RankBatch(sh.s, xs)
		sh.mu.Unlock()
		for j, r := range rs {
			out[j] += r
		}
	}
	return out
}

// Quantile implements core.Summary within the composed ε bound.
func (t *Turnstile) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if e := t.q.entry(t); e != nil {
		return e.quantile(phi)
	}
	t.topo.RLock()
	defer t.topo.RUnlock()
	return rankQuantile(t.countLocked(), t.summedRankLocked, phi)
}

// QuantileBatch implements core.QuantileBatcher.
func (t *Turnstile) QuantileBatch(phis []float64) []uint64 {
	for _, phi := range phis {
		core.CheckPhi(phi)
	}
	if e := t.q.entry(t); e != nil {
		return e.quantileBatch(phis)
	}
	t.topo.RLock()
	defer t.topo.RUnlock()
	return rankQuantileBatch(t.countLocked(), t.summedRankBatchLocked, phis)
}

// SpaceBytes implements core.Summary: the sum over shards.
func (t *Turnstile) SpaceBytes() int64 {
	t.topo.RLock()
	defer t.topo.RUnlock()
	g := t.gen.Load()
	var b int64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		b += sh.s.SpaceBytes()
		sh.mu.Unlock()
	}
	return b
}

// Invariants implements the sanitizer contract. Generation 0 routing
// keeps every shard a valid strict-turnstile summary, so shards are
// deep-checked individually. After a reshard only the whole container
// is strict (see turnGen), so later generations check the merged fold
// instead — for the linear sketches the fold is exactly the unsharded
// sketch of the whole stream, so the check has full strength.
func (t *Turnstile) Invariants() error {
	t.topo.RLock()
	defer t.topo.RUnlock()
	g := t.gen.Load()
	if g.id == 0 {
		for i := range g.shards {
			sh := &g.shards[i]
			sh.mu.Lock()
			err := checkShardInvariants(i, sh.s)
			sh.mu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	}
	sum, _, err := mergedFold(g)
	if err != nil {
		return fmt.Errorf("sharded: post-reshard invariant fold: %w", err)
	}
	if ic, ok := sum.(invariantChecker); ok {
		if err := ic.Invariants(); err != nil {
			return fmt.Errorf("sharded: merged fold (generation %d): %w", g.id, err)
		}
	}
	return nil
}
