package sharded

import (
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// turnShard is the turnstile counterpart of cashShard.
type turnShard struct {
	mu    sync.Mutex
	s     core.Turnstile // guarded by mu
	epoch atomic.Uint64
}

// Turnstile partitions a strict-turnstile stream across P per-shard
// summaries. Routing is by value affinity — mix(x) mod P — so an
// element's deletions always reach the shard that saw its insertions
// and every shard individually remains a valid strict-turnstile stream.
// All methods are safe for concurrent use.
type Turnstile struct {
	shards []turnShard
	fresh  func() core.Turnstile
	q      queryCache

	// parts pools per-call partition scratch: batch routing scatters the
	// input into per-shard sub-batches without allocating per call.
	parts sync.Pool
}

// partition is the pooled scatter scratch of one in-flight batch call.
type partition struct {
	byShard [][]uint64
}

// NewTurnstile builds a P-way sharded turnstile summary; fresh must
// return a new empty summary per call, all identically configured
// (including seeds, so shards can merge at query time).
func NewTurnstile(p int, fresh func() core.Turnstile) *Turnstile {
	checkShards(p)
	t := &Turnstile{shards: make([]turnShard, p), fresh: fresh}
	for i := range t.shards {
		t.shards[i].s = fresh()
	}
	t.parts.New = func() any {
		pt := &partition{byShard: make([][]uint64, p)}
		for i := range pt.byShard {
			pt.byShard[i] = make([]uint64, 0, 512)
		}
		return pt
	}
	t.q.init(t)
	return t
}

// Shards returns P.
func (t *Turnstile) Shards() int { return len(t.shards) }

// Mergeable reports whether queries fold the shards into one merged
// summary, probed once at construction — a factory drawing random
// dyadic seeds is detected here instead of failing inside every query.
func (t *Turnstile) Mergeable() bool { return t.q.mergeable }

// shardSet implementation (see query.go).
func (t *Turnstile) numShards() int             { return len(t.shards) }
func (t *Turnstile) shardEpoch(i int) uint64    { return t.shards[i].epoch.Load() }
func (t *Turnstile) freshSummary() core.Summary { return t.fresh() }

func (t *Turnstile) withShard(i int, fn func(s core.Summary)) uint64 {
	sh := &t.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.s)
	return sh.epoch.Load()
}

// shardOf routes an element by value affinity.
func (t *Turnstile) shardOf(x uint64) *turnShard {
	return &t.shards[mix(x)%uint64(len(t.shards))]
}

// Insert implements core.Turnstile.
func (t *Turnstile) Insert(x uint64) {
	sh := t.shardOf(x)
	sh.mu.Lock()
	sh.epoch.Add(1)
	sh.s.Insert(x)
	sh.mu.Unlock()
}

// Delete implements core.Turnstile.
func (t *Turnstile) Delete(x uint64) {
	sh := t.shardOf(x)
	sh.mu.Lock()
	sh.epoch.Add(1)
	sh.s.Delete(x)
	sh.mu.Unlock()
}

// InsertBatch implements core.BatchTurnstile.
func (t *Turnstile) InsertBatch(xs []uint64) { t.AddBatch(xs, 1) }

// DeleteBatch implements core.BatchTurnstile.
func (t *Turnstile) DeleteBatch(xs []uint64) { t.AddBatch(xs, -1) }

// AddBatch implements core.BatchTurnstile: one scatter pass partitions
// the batch by value affinity, then each non-empty sub-batch flows
// through its shard's native batch path under one lock acquisition.
func (t *Turnstile) AddBatch(xs []uint64, delta int64) {
	if len(xs) == 0 {
		return
	}
	pt := t.parts.Get().(*partition)
	for i := range pt.byShard {
		pt.byShard[i] = pt.byShard[i][:0]
	}
	p := uint64(len(t.shards))
	for _, x := range xs {
		si := mix(x) % p
		pt.byShard[si] = append(pt.byShard[si], x)
	}
	for i := range t.shards {
		sub := pt.byShard[i]
		if len(sub) == 0 {
			continue
		}
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.epoch.Add(1)
		addBatch(sh.s, sub, delta)
		sh.mu.Unlock()
	}
	t.parts.Put(pt)
}

// addBatch applies a weighted batch through the summary's native path,
// falling back to |delta| rounds of per-element calls.
func addBatch(s core.Turnstile, xs []uint64, delta int64) {
	if bt, ok := s.(core.BatchTurnstile); ok {
		bt.AddBatch(xs, delta)
		return
	}
	rounds, ins := delta, true
	if rounds < 0 {
		rounds, ins = -rounds, false
	}
	for ; rounds > 0; rounds-- {
		for _, x := range xs {
			if ins {
				s.Insert(x)
			} else {
				s.Delete(x)
			}
		}
	}
}

// Count implements core.Summary.
func (t *Turnstile) Count() int64 {
	var n int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += sh.s.Count()
		sh.mu.Unlock()
	}
	return n
}

// Rank implements core.Summary: (cached) merged-summary estimate when
// the family merges (exact for the linear dyadic sketches — identical
// to an unsharded sketch of the whole stream), summed per-shard
// estimates otherwise.
func (t *Turnstile) Rank(x uint64) int64 {
	if e := t.q.entry(t); e != nil {
		return e.rank(x)
	}
	return t.summedRank(x)
}

// RankBatch implements core.QuantileBatcher.
func (t *Turnstile) RankBatch(xs []uint64) []int64 {
	if e := t.q.entry(t); e != nil {
		return e.rankBatch(xs)
	}
	return t.summedRankBatch(xs)
}

// summedRank is the additive estimate over the live shards.
func (t *Turnstile) summedRank(x uint64) int64 {
	var r int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		r += sh.s.Rank(x)
		sh.mu.Unlock()
	}
	return r
}

// summedRankBatch is the batch form of summedRank: one lock acquisition
// and one native RankBatch sweep per shard for the whole probe set.
func (t *Turnstile) summedRankBatch(xs []uint64) []int64 {
	out := make([]int64, len(xs))
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		rs := core.RankBatch(sh.s, xs)
		sh.mu.Unlock()
		for j, r := range rs {
			out[j] += r
		}
	}
	return out
}

// Quantile implements core.Summary within the composed ε bound.
func (t *Turnstile) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if e := t.q.entry(t); e != nil {
		return e.quantile(phi)
	}
	return rankQuantile(t.Count(), t.summedRank, phi)
}

// QuantileBatch implements core.QuantileBatcher.
func (t *Turnstile) QuantileBatch(phis []float64) []uint64 {
	for _, phi := range phis {
		core.CheckPhi(phi)
	}
	if e := t.q.entry(t); e != nil {
		return e.quantileBatch(phis)
	}
	return rankQuantileBatch(t.Count(), t.summedRankBatch, phis)
}

// SpaceBytes implements core.Summary: the sum over shards.
func (t *Turnstile) SpaceBytes() int64 {
	var b int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		b += sh.s.SpaceBytes()
		sh.mu.Unlock()
	}
	return b
}

// Invariants implements the sanitizer contract by deep-checking every
// shard that supports it.
func (t *Turnstile) Invariants() error {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		err := checkShardInvariants(i, sh.s)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
