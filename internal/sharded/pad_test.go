package sharded

import (
	"testing"
	"unsafe"
)

// TestShardStructsPadded pins the hand-computed blank pads in cashShard
// and turnShard: the live fields must fit the assumed 40 bytes so each
// struct is exactly one cacheLine, and a generation's []T therefore
// never places two shards' hot fields on the same line. If a field is
// added the pad constant must be recomputed — this test is the tripwire.
func TestShardStructsPadded(t *testing.T) {
	if s := unsafe.Sizeof(cashShard{}); s != cacheLine {
		t.Errorf("cashShard is %d bytes, want exactly cacheLine (%d); recompute the blank pad", s, cacheLine)
	}
	if s := unsafe.Sizeof(turnShard{}); s != cacheLine {
		t.Errorf("turnShard is %d bytes, want exactly cacheLine (%d); recompute the blank pad", s, cacheLine)
	}
}

// TestRoundRobinCursorIsolated pins the blank lines around the legacy
// round-robin cursor: no other CashRegister field may land within a
// cacheLine of it, or handle-less writers would false-share with the
// topology fields the query path reads. (Go only word-aligns the struct
// itself, so the guarantee is blank space on both sides of rr, not an
// absolute line boundary.)
func TestRoundRobinCursorIsolated(t *testing.T) {
	var c CashRegister
	off := unsafe.Offsetof(c.rr)
	if before := unsafe.Offsetof(c.q) + unsafe.Sizeof(c.q); off-before < cacheLine {
		t.Errorf("only %d blank bytes before rr, want >= cacheLine (%d)", off-before, cacheLine)
	}
	if next := unsafe.Offsetof(c.wslot); next-off-unsafe.Sizeof(c.rr) < cacheLine-8 {
		t.Errorf("only %d blank bytes after rr, want >= %d", next-off-unsafe.Sizeof(c.rr), cacheLine-8)
	}
}
