package sharded

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// Query-side machinery shared by CashRegister and Turnstile.
//
// The old query path re-probed mergeability and re-folded all P shards
// sequentially on every call. Both costs are gone:
//
//   - Mergeability (the family implements core.Mergeable AND the
//     factory produces merge-compatible instances — identical configs
//     and seeds) is probed once per factory against two throwaway
//     instances and cached on the generation; a factory drawing random
//     seeds is detected up front instead of failing inside every query.
//   - Each shard carries a write epoch, bumped under its lock before
//     every mutation. The combined artifact (merged summary or
//     per-shard snapshots) is cached together with the generation id,
//     the retired-component version, and the epoch vector observed
//     while each shard was read; a later query revalidates all three
//     lock-free and reuses the artifact when nothing changed — repeated
//     queries on a quiet sharded summary never fold anything and never
//     touch the topology lock.
//   - A rebuild folds the shards by a parallel tree-merge: one worker
//     per shard merges that shard into its own fresh summary (holding
//     only that shard's lock), then the P partials reduce pairwise in
//     ⌈log₂P⌉ parallel rounds. Rebuilds run under the topology read
//     lock, so a fold never observes a half-drained reshard.
//
// Accuracy of the non-mergeable (GK) combination, via cached exact
// per-shard snapshots: the summed estimate R̂(x) = Σᵢ R̂ᵢ(x) differs
// from the true combined rank by at most Σᵢ(2εᵢnᵢ + 1) ≤ 2εn + parts —
// each shard's midpoint estimator is uncertain by the ⌊2εᵢnᵢ⌋ capacity
// of the gap a probe falls into, plus one for its −1 bias; parts counts
// live shards plus the components frozen by elastic operations. The
// bitwise descent (rankQuantile) inverts R̂ within the same bound. The
// snapshots are exact flattenings, so this path returns byte-identical
// answers to folding the live shards while quiescent.

// foldCaps records what query artifacts a factory's summaries support,
// probed once per factory (construction, Retarget, decode).
type foldCaps struct {
	// mergeable: the factory's summaries fold into one via
	// core.Mergeable. snapAll: they flatten exactly via
	// core.Snapshotter.
	mergeable bool
	snapAll   bool
}

// probeCaps probes a factory against two throwaway instances, so the
// probe merge cannot perturb live shards.
func probeCaps(fresh func() core.Summary) foldCaps {
	a, b := fresh(), fresh()
	var caps foldCaps
	if m, ok := a.(core.Mergeable); ok {
		caps.mergeable = m.MergeSummary(b) == nil
	}
	_, caps.snapAll = a.(core.Snapshotter)
	return caps
}

// epsReporter is implemented by summaries that expose their error
// budget; elastic operations use it to compare budgets across a
// Retarget and to report the composed budget (EpsBudget).
type epsReporter interface{ Eps() float64 }

// queryCache holds the epoch-keyed combined artifact.
type queryCache struct {
	mu  sync.Mutex // serializes rebuilds
	cur atomic.Pointer[combinedEntry]
}

// invalidate drops the cached fold. Elastic operations call it under
// the topology write lock; readers that raced past the generation swap
// are still safe because validFor rechecks the generation id.
func (q *queryCache) invalidate() { q.cur.Store(nil) }

// shardSet abstracts a shard array for the fold machinery.
type shardSet interface {
	numShards() int
	// shardEpoch loads shard i's write epoch without taking its lock.
	shardEpoch(i int) uint64
	// withShard runs fn under shard i's lock and returns the epoch
	// observed while holding it.
	withShard(i int, fn func(s core.Summary)) uint64
	freshSummary() core.Summary
}

// genSet is a shardSet that knows its generation identity and fold
// capabilities — implemented by cashGen and turnGen.
type genSet interface {
	shardSet
	genID() uint64
	capabilities() foldCaps
}

// elasticSet is the container view the query cache folds: the current
// generation plus the frozen components and the topology lock.
type elasticSet interface {
	currentGen() genSet
	retiredVer() uint64
	retiredComps() []*retiredComp
	// topoRLock takes the topology read lock and returns the unlock.
	topoRLock() func()
}

// combinedEntry is one cached fold of the whole container. Exactly one
// of the three live-shard artifact shapes is populated:
//
//   - qs: exact snapshot of the merged summary (mergeable Snapshotter
//     families — KLL, MRL99, Random, QDigest). Queries never touch the
//     merged summary itself, which matters for QDigest, whose queries
//     flush.
//   - sum: the merged summary, queried directly (mergeable
//     non-Snapshotter families — the dyadic sketches, whose queries are
//     pure reads).
//   - snaps: one exact snapshot per shard (non-mergeable Snapshotter
//     families — the GK tuple summaries), combined by additive rank.
//
// comps carries the frozen retired components captured at fold time;
// when present, ranks add their contribution and quantiles go through
// the rank descent over the combined estimate.
//
// All artifacts are immutable once built, so queries are lock-free.
// For the same reason a retired entry is never recycled into a pool:
// a reader that loaded it just before the epoch bump may still be
// mid-query, so its arrays must stay untouched until the GC reclaims
// them. Pooling on this path is confined to per-call descent scratch
// (descentPool, rankBufPool), which never escapes its function.
type combinedEntry struct {
	genID  uint64   // topology generation at fold time
	retVer uint64   // retired-component version at fold time
	epochs []uint64 // per-shard write epoch at fold time
	n      int64    // combined count at fold time (components included)
	qs     *core.QuerySnapshot
	sum    core.Summary
	snaps  []*core.QuerySnapshot
	comps  []*retiredComp
}

// entry returns a fold of the container valid for its current topology
// and epochs, rebuilding at most once per write generation; nil when
// the family supports neither folding shape (GKBiased) and the caller
// must fold the live shards itself.
func (q *queryCache) entry(set elasticSet) *combinedEntry {
	if e := q.cur.Load(); e != nil && e.validFor(set) {
		return e
	}
	defer set.topoRLock()()
	q.mu.Lock()
	defer q.mu.Unlock()
	if e := q.cur.Load(); e != nil && e.validFor(set) {
		return e // another query rebuilt first
	}
	g := set.currentGen()
	caps := g.capabilities()
	if !caps.mergeable && !caps.snapAll {
		return nil
	}
	var e *combinedEntry
	if caps.mergeable {
		e = rebuildCombined(g)
	}
	if e == nil && caps.snapAll {
		e = rebuildSnaps(g)
	}
	if e == nil {
		return nil
	}
	e.genID = g.genID()
	e.retVer = set.retiredVer()
	if comps := set.retiredComps(); len(comps) > 0 {
		e.comps = comps
		for _, c := range comps {
			e.n += c.n
		}
	}
	q.cur.Store(e)
	return e
}

// validFor reports whether nothing observable changed since the fold:
// same topology generation, same retired components, and no shard
// written. The epoch vector is per-shard consistent (each entry was
// read under its shard's lock at the moment that shard was folded), so
// a full match means the fold equals one performed now. Generations are
// immutable, so a matching genID guarantees the epoch vector indexes
// the same shard array it was built from.
func (e *combinedEntry) validFor(set elasticSet) bool {
	g := set.currentGen()
	if g.genID() != e.genID || set.retiredVer() != e.retVer {
		return false
	}
	for i, ep := range e.epochs {
		if g.shardEpoch(i) != ep {
			return false
		}
	}
	return true
}

// mergedFold folds all shards of g into one fresh summary by parallel
// tree-merge.
func mergedFold(g shardSet) (core.Summary, []uint64, error) {
	p := g.numShards()
	epochs := make([]uint64, p)
	parts := make([]core.Summary, p)
	var failed atomic.Bool
	forShards(p, func(i int) {
		m := g.freshSummary()
		mg, ok := m.(core.Mergeable)
		if !ok {
			failed.Store(true)
			return
		}
		var err error
		epochs[i] = g.withShard(i, func(s core.Summary) { err = mg.MergeSummary(s) })
		if err != nil {
			failed.Store(true)
			return
		}
		parts[i] = m
	})
	if failed.Load() || !mergeTree(parts) {
		return nil, nil, fmt.Errorf("sharded: shard fold merge failed")
	}
	return parts[0], epochs, nil
}

// rebuildCombined folds all shards into one merged summary; nil when
// any merge fails.
func rebuildCombined(g shardSet) *combinedEntry {
	sum, epochs, err := mergedFold(g)
	if err != nil {
		return nil
	}
	e := &combinedEntry{epochs: epochs, n: sum.Count(), sum: sum}
	if ss, ok := sum.(core.Snapshotter); ok {
		e.qs = core.BuildQuerySnapshot(ss)
		e.sum = nil // answer only from the immutable snapshot
	}
	return e
}

// mergeTree pairwise-reduces parts into parts[0]: round r merges
// partials 2ʳ apart, every pair in parallel.
func mergeTree(parts []core.Summary) bool {
	var failed atomic.Bool
	for stride := 1; stride < len(parts); stride *= 2 {
		var dsts []int
		for i := 0; i+stride < len(parts); i += 2 * stride {
			dsts = append(dsts, i)
		}
		forShards(len(dsts), func(j int) {
			i := dsts[j]
			if parts[i].(core.Mergeable).MergeSummary(parts[i+stride]) != nil {
				failed.Store(true)
			}
		})
		if failed.Load() {
			return false
		}
	}
	return true
}

// rebuildSnaps flattens every shard into an exact snapshot, in
// parallel, each under its own shard lock.
func rebuildSnaps(g shardSet) *combinedEntry {
	p := g.numShards()
	e := &combinedEntry{epochs: make([]uint64, p), snaps: make([]*core.QuerySnapshot, p)}
	ns := make([]int64, p)
	var failed atomic.Bool
	forShards(p, func(i int) {
		e.epochs[i] = g.withShard(i, func(s core.Summary) {
			ss, ok := s.(core.Snapshotter)
			if !ok {
				failed.Store(true)
				return
			}
			ns[i] = s.Count()
			e.snaps[i] = core.BuildQuerySnapshot(ss)
		})
	})
	if failed.Load() {
		return nil
	}
	for _, n := range ns {
		e.n += n
	}
	return e
}

// baseRank answers a combined rank query from the live-shard artifact.
func (e *combinedEntry) baseRank(x uint64) int64 {
	if e.qs != nil {
		return e.qs.Rank(x)
	}
	if e.sum != nil {
		return e.sum.Rank(x)
	}
	var r int64
	for _, qs := range e.snaps {
		r += qs.Rank(x)
	}
	return r
}

// rank answers a combined rank query from the fold, frozen components
// included.
func (e *combinedEntry) rank(x uint64) int64 {
	r := e.baseRank(x)
	for _, c := range e.comps {
		r += c.rank(x)
	}
	return r
}

// rankBatch answers a batch of combined rank queries from the fold.
func (e *combinedEntry) rankBatch(xs []uint64) []int64 {
	if len(e.comps) == 0 {
		if e.qs != nil {
			return e.qs.RankBatch(xs)
		}
		if e.sum != nil {
			return core.RankBatch(e.sum, xs)
		}
	}
	return e.appendRankBatch(make([]int64, 0, len(xs)), xs)
}

// appendRankBatch sums the fold's ranks (components included) into dst
// (reusing its capacity), for callers on the zero-allocation descent
// path.
func (e *combinedEntry) appendRankBatch(dst []int64, xs []uint64) []int64 {
	for range xs {
		dst = append(dst, 0)
	}
	if e.qs != nil || e.sum != nil {
		for i, x := range xs {
			dst[i] += e.baseRank(x)
		}
	} else {
		for _, qs := range e.snaps {
			for i, x := range xs {
				dst[i] += qs.Rank(x)
			}
		}
	}
	for _, c := range e.comps {
		for i, x := range xs {
			dst[i] += c.rank(x)
		}
	}
	return dst
}

// quantile answers a combined quantile query from the fold. With frozen
// components in play the artifact only covers the live shards, so the
// answer comes from the rank descent over the combined estimate.
func (e *combinedEntry) quantile(phi float64) uint64 {
	if len(e.comps) == 0 {
		if e.qs != nil {
			return e.qs.Quantile(phi)
		}
		if e.sum != nil {
			return e.sum.Quantile(phi)
		}
	}
	return rankQuantile(e.n, e.rank, phi)
}

// quantileBatch answers a batch of combined quantile queries from the
// fold.
func (e *combinedEntry) quantileBatch(phis []float64) []uint64 {
	if len(e.comps) == 0 {
		if e.qs != nil {
			return e.qs.QuantileBatch(phis)
		}
		if e.sum != nil {
			return core.QuantileBatch(e.sum, phis)
		}
	}
	// The descent probes rankBatch once per bit level; routing the
	// probes through one pooled buffer turns 64 per-level allocations
	// into zero. The buffer never escapes: appendRankBatch's result is
	// consumed inside rankQuantileBatch before the next probe.
	bp := rankBufPool.Get().(*[]int64)
	buf := *bp
	out := rankQuantileBatch(e.n, func(xs []uint64) []int64 {
		buf = e.appendRankBatch(buf[:0], xs)
		return buf
	}, phis)
	*bp = buf
	rankBufPool.Put(bp)
	return out
}

// rankBufPool recycles the descent's per-level rank buffer across
// quantileBatch calls (Get and Put in the same function — see lint rule
// SQ009).
var rankBufPool = sync.Pool{New: func() any { return new([]int64) }}

// rankQuantile inverts a summed rank estimate by a bitwise descent: the
// largest v with R(v) ≤ target. Under the core contract R(v) estimates
// #{y < v}, so a value v occupies the rank span [R(v), R(v+1)) and the
// descent lands on the value whose span holds the target — including a
// heavy duplicate atom, whose span absorbs every target inside it. R
// tracks the true (monotone) combined rank within the summed per-shard
// estimate error E, so the result's rank interval intersects
// [target−E, target+E] — for the GK family E ≤ Σᵢ(2εᵢnᵢ+1) ≤ 2εn +
// parts, and in practice far tighter. The descent is only as sound as
// the contract: a summary that counts x's own occurrences into Rank(x)
// shifts every atom's span and drags the answer below it (the
// duplicate-atom regression tests pin this).
func rankQuantile(n int64, rank func(uint64) int64, phi float64) uint64 {
	if n <= 0 {
		panic(core.ErrEmpty)
	}
	target := core.TargetRank(phi, n)
	var v uint64
	for bit := 63; bit >= 0; bit-- {
		cand := v | uint64(1)<<bit
		// Accept the bit iff rank(cand) <= target, branch-free: ranks
		// and targets are in [0, n], so the difference cannot overflow
		// and its sign bit after the -1 is exactly the comparison.
		keep := uint64((rank(cand) - target - 1) >> 63)
		v |= (uint64(1) << bit) & keep
	}
	return v
}

// rankQuantileBatch runs k descents in lockstep — one rankBatch probe
// set per bit level instead of one rank probe per (query, level) — so a
// batch over live shards costs 64 lock sweeps total rather than 64 per
// fraction. Each query's probe sequence is exactly its solo descent, so
// results are byte-identical to per-φ rankQuantile.
func rankQuantileBatch(n int64, rankBatch func([]uint64) []int64, phis []float64) []uint64 {
	if n <= 0 {
		panic(core.ErrEmpty)
	}
	k := len(phis)
	sp := descentPool.Get().(*descentScratch)
	targets, cands := sp.targets, sp.cands
	if cap(targets) < k {
		targets = make([]int64, k)
	}
	if cap(cands) < k {
		cands = make([]uint64, k)
	}
	targets, cands = targets[:k], cands[:k]
	for i, phi := range phis {
		targets[i] = core.TargetRank(phi, n)
	}
	vs := make([]uint64, k) // escapes: this is the result
	for bit := 63; bit >= 0; bit-- {
		for i, v := range vs {
			cands[i] = v | uint64(1)<<bit
		}
		rs := rankBatch(cands)
		for i := range vs {
			// Same branch-free accept as rankQuantile's solo descent.
			keep := uint64((rs[i] - targets[i] - 1) >> 63)
			vs[i] |= (cands[i] ^ vs[i]) & keep
		}
	}
	sp.targets, sp.cands = targets, cands
	descentPool.Put(sp)
	return vs
}

// descentScratch holds rankQuantileBatch's per-call probe arrays; the
// pool keeps repeated batch extractions allocation-free apart from the
// returned values.
type descentScratch struct {
	targets []int64
	cands   []uint64
}

var descentPool = sync.Pool{New: func() any { return new(descentScratch) }}

// forShards runs fn(0 … p−1) on a worker pool bounded by the machine
// size; the calling goroutine participates.
func forShards(p int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > p {
		workers = p
	}
	if workers <= 1 {
		for i := 0; i < p; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= p {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
