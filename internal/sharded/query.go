package sharded

import (
	"runtime"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// Query-side machinery shared by CashRegister and Turnstile.
//
// The old query path re-probed mergeability and re-folded all P shards
// sequentially on every call. Both costs are gone:
//
//   - Mergeability (the family implements core.Mergeable AND the
//     factory produces merge-compatible instances — identical configs
//     and seeds) is probed once at construction against two throwaway
//     instances and cached; a factory drawing random seeds is detected
//     up front instead of failing inside every query.
//   - Each shard carries a write epoch, bumped under its lock before
//     every mutation. The combined artifact (merged summary or
//     per-shard snapshots) is cached together with the epoch vector
//     observed while each shard was read; a later query revalidates by
//     comparing the live epochs and reuses the artifact lock-free when
//     no shard has been written — repeated queries on a quiet sharded
//     summary never fold anything.
//   - A rebuild folds the shards by a parallel tree-merge: one worker
//     per shard merges that shard into its own fresh summary (holding
//     only that shard's lock), then the P partials reduce pairwise in
//     ⌈log₂P⌉ parallel rounds.
//
// Accuracy of the non-mergeable (GK) combination, now via cached exact
// per-shard snapshots: the summed estimate R̂(x) = Σᵢ R̂ᵢ(x) differs
// from the true combined rank by at most Σᵢ(2εᵢnᵢ + 1) ≤ 2εn + P —
// each shard's midpoint estimator is uncertain by the ⌊2εᵢnᵢ⌋ capacity
// of the gap a probe falls into, plus one for its −1 bias. The bitwise
// descent (rankQuantile) inverts R̂ within the same bound, so a sharded
// GK quantile's rank error is ≤ 2εn + P, versus εn unsharded. The
// snapshots are exact flattenings, so this path returns byte-identical
// answers to folding the live shards while quiescent.

// queryCache holds the construction-time capability probe and the
// epoch-keyed combined artifact.
type queryCache struct {
	// mergeable: the factory's summaries fold into one via
	// core.Mergeable. snapAll: they flatten exactly via
	// core.Snapshotter. Both fixed at construction.
	mergeable bool
	snapAll   bool

	mu  sync.Mutex // serializes rebuilds
	cur atomic.Pointer[combinedEntry]
}

// shardSet abstracts the two shard containers for the shared machinery.
type shardSet interface {
	numShards() int
	// shardEpoch loads shard i's write epoch without taking its lock.
	shardEpoch(i int) uint64
	// withShard runs fn under shard i's lock and returns the epoch
	// observed while holding it.
	withShard(i int, fn func(s core.Summary)) uint64
	freshSummary() core.Summary
}

// init probes the factory once. The two instances are throwaways, so
// the probe merge cannot perturb live shards.
func (q *queryCache) init(set shardSet) {
	a, b := set.freshSummary(), set.freshSummary()
	if m, ok := a.(core.Mergeable); ok {
		q.mergeable = m.MergeSummary(b) == nil
	}
	_, q.snapAll = a.(core.Snapshotter)
}

// combinedEntry is one cached fold of all shards. Exactly one of the
// three artifact shapes is populated:
//
//   - qs: exact snapshot of the merged summary (mergeable Snapshotter
//     families — KLL, MRL99, Random, QDigest). Queries never touch the
//     merged summary itself, which matters for QDigest, whose queries
//     flush.
//   - sum: the merged summary, queried directly (mergeable
//     non-Snapshotter families — the dyadic sketches, whose queries are
//     pure reads).
//   - snaps: one exact snapshot per shard (non-mergeable Snapshotter
//     families — the GK tuple summaries), combined by additive rank.
//
// All artifacts are immutable once built, so queries are lock-free.
// For the same reason a retired entry is never recycled into a pool:
// a reader that loaded it just before the epoch bump may still be
// mid-query, so its arrays must stay untouched until the GC reclaims
// them. Pooling on this path is confined to per-call descent scratch
// (descentPool, rankBufPool), which never escapes its function.
type combinedEntry struct {
	epochs []uint64 // per-shard write epoch at fold time
	n      int64    // combined count at fold time
	qs     *core.QuerySnapshot
	sum    core.Summary
	snaps  []*core.QuerySnapshot
}

// entry returns a fold of the shards valid for their current epochs,
// rebuilding at most once per write generation; nil when the family
// supports neither folding shape (GKBiased) and the caller must fold
// the live shards.
func (q *queryCache) entry(set shardSet) *combinedEntry {
	if !q.mergeable && !q.snapAll {
		return nil
	}
	if e := q.cur.Load(); e != nil && e.valid(set) {
		return e
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if e := q.cur.Load(); e != nil && e.valid(set) {
		return e // another query rebuilt first
	}
	var e *combinedEntry
	if q.mergeable {
		e = rebuildCombined(set)
	}
	if e == nil && q.snapAll {
		e = rebuildSnaps(set)
	}
	if e == nil {
		return nil
	}
	q.cur.Store(e)
	return e
}

// valid reports whether no shard has been written since the fold. The
// epoch vector is per-shard consistent (each entry was read under its
// shard's lock at the moment that shard was folded), so a matching
// vector means every shard's contribution is still current — the fold
// equals one performed now.
func (e *combinedEntry) valid(set shardSet) bool {
	for i, ep := range e.epochs {
		if set.shardEpoch(i) != ep {
			return false
		}
	}
	return true
}

// rebuildCombined folds all shards into one merged summary by parallel
// tree-merge; nil when any merge fails.
func rebuildCombined(set shardSet) *combinedEntry {
	p := set.numShards()
	epochs := make([]uint64, p)
	parts := make([]core.Summary, p)
	var failed atomic.Bool
	forShards(p, func(i int) {
		m := set.freshSummary()
		mg, ok := m.(core.Mergeable)
		if !ok {
			failed.Store(true)
			return
		}
		var err error
		epochs[i] = set.withShard(i, func(s core.Summary) { err = mg.MergeSummary(s) })
		if err != nil {
			failed.Store(true)
			return
		}
		parts[i] = m
	})
	if failed.Load() || !mergeTree(parts) {
		return nil
	}
	sum := parts[0]
	e := &combinedEntry{epochs: epochs, n: sum.Count(), sum: sum}
	if ss, ok := sum.(core.Snapshotter); ok {
		e.qs = core.BuildQuerySnapshot(ss)
		e.sum = nil // answer only from the immutable snapshot
	}
	return e
}

// mergeTree pairwise-reduces parts into parts[0]: round r merges
// partials 2ʳ apart, every pair in parallel.
func mergeTree(parts []core.Summary) bool {
	var failed atomic.Bool
	for stride := 1; stride < len(parts); stride *= 2 {
		var dsts []int
		for i := 0; i+stride < len(parts); i += 2 * stride {
			dsts = append(dsts, i)
		}
		forShards(len(dsts), func(j int) {
			i := dsts[j]
			if parts[i].(core.Mergeable).MergeSummary(parts[i+stride]) != nil {
				failed.Store(true)
			}
		})
		if failed.Load() {
			return false
		}
	}
	return true
}

// rebuildSnaps flattens every shard into an exact snapshot, in
// parallel, each under its own shard lock.
func rebuildSnaps(set shardSet) *combinedEntry {
	p := set.numShards()
	e := &combinedEntry{epochs: make([]uint64, p), snaps: make([]*core.QuerySnapshot, p)}
	ns := make([]int64, p)
	var failed atomic.Bool
	forShards(p, func(i int) {
		e.epochs[i] = set.withShard(i, func(s core.Summary) {
			ss, ok := s.(core.Snapshotter)
			if !ok {
				failed.Store(true)
				return
			}
			ns[i] = s.Count()
			e.snaps[i] = core.BuildQuerySnapshot(ss)
		})
	})
	if failed.Load() {
		return nil
	}
	for _, n := range ns {
		e.n += n
	}
	return e
}

// rank answers a combined rank query from the fold.
func (e *combinedEntry) rank(x uint64) int64 {
	if e.qs != nil {
		return e.qs.Rank(x)
	}
	if e.sum != nil {
		return e.sum.Rank(x)
	}
	var r int64
	for _, qs := range e.snaps {
		r += qs.Rank(x)
	}
	return r
}

// rankBatch answers a batch of combined rank queries from the fold.
func (e *combinedEntry) rankBatch(xs []uint64) []int64 {
	if e.qs != nil {
		return e.qs.RankBatch(xs)
	}
	if e.sum != nil {
		return core.RankBatch(e.sum, xs)
	}
	return e.appendRankBatch(make([]int64, 0, len(xs)), xs)
}

// appendRankBatch sums the per-shard snapshot ranks into dst (reusing
// its capacity), for callers on the zero-allocation descent path.
func (e *combinedEntry) appendRankBatch(dst []int64, xs []uint64) []int64 {
	for range xs {
		dst = append(dst, 0)
	}
	for _, qs := range e.snaps {
		for i, x := range xs {
			dst[i] += qs.Rank(x)
		}
	}
	return dst
}

// quantile answers a combined quantile query from the fold.
func (e *combinedEntry) quantile(phi float64) uint64 {
	if e.qs != nil {
		return e.qs.Quantile(phi)
	}
	if e.sum != nil {
		return e.sum.Quantile(phi)
	}
	return rankQuantile(e.n, e.rank, phi)
}

// quantileBatch answers a batch of combined quantile queries from the
// fold.
func (e *combinedEntry) quantileBatch(phis []float64) []uint64 {
	if e.qs != nil {
		return e.qs.QuantileBatch(phis)
	}
	if e.sum != nil {
		return core.QuantileBatch(e.sum, phis)
	}
	// The descent probes rankBatch once per bit level; routing the
	// probes through one pooled buffer turns 64 per-level allocations
	// into zero. The buffer never escapes: appendRankBatch's result is
	// consumed inside rankQuantileBatch before the next probe.
	bp := rankBufPool.Get().(*[]int64)
	buf := *bp
	out := rankQuantileBatch(e.n, func(xs []uint64) []int64 {
		buf = e.appendRankBatch(buf[:0], xs)
		return buf
	}, phis)
	*bp = buf
	rankBufPool.Put(bp)
	return out
}

// rankBufPool recycles the descent's per-level rank buffer across
// quantileBatch calls (Get and Put in the same function — see lint rule
// SQ009).
var rankBufPool = sync.Pool{New: func() any { return new([]int64) }}

// rankQuantile inverts a summed rank estimate by a bitwise descent: the
// largest v with R(v) ≤ target. R tracks the true (monotone) combined
// rank within the summed per-shard estimate error E, and every value
// above the result was excluded by a probe whose estimate exceeded the
// target, so the result's rank interval intersects [target−E, target+E]
// — for the GK family E ≤ Σᵢ(2εᵢnᵢ+1) ≤ 2εn + P, and in practice far
// tighter.
func rankQuantile(n int64, rank func(uint64) int64, phi float64) uint64 {
	if n <= 0 {
		panic(core.ErrEmpty)
	}
	target := core.TargetRank(phi, n)
	var v uint64
	for bit := 63; bit >= 0; bit-- {
		cand := v | uint64(1)<<bit
		// Accept the bit iff rank(cand) <= target, branch-free: ranks
		// and targets are in [0, n], so the difference cannot overflow
		// and its sign bit after the -1 is exactly the comparison.
		keep := uint64((rank(cand) - target - 1) >> 63)
		v |= (uint64(1) << bit) & keep
	}
	return v
}

// rankQuantileBatch runs k descents in lockstep — one rankBatch probe
// set per bit level instead of one rank probe per (query, level) — so a
// batch over live shards costs 64 lock sweeps total rather than 64 per
// fraction. Each query's probe sequence is exactly its solo descent, so
// results are byte-identical to per-φ rankQuantile.
func rankQuantileBatch(n int64, rankBatch func([]uint64) []int64, phis []float64) []uint64 {
	if n <= 0 {
		panic(core.ErrEmpty)
	}
	k := len(phis)
	sp := descentPool.Get().(*descentScratch)
	targets, cands := sp.targets, sp.cands
	if cap(targets) < k {
		targets = make([]int64, k)
	}
	if cap(cands) < k {
		cands = make([]uint64, k)
	}
	targets, cands = targets[:k], cands[:k]
	for i, phi := range phis {
		targets[i] = core.TargetRank(phi, n)
	}
	vs := make([]uint64, k) // escapes: this is the result
	for bit := 63; bit >= 0; bit-- {
		for i, v := range vs {
			cands[i] = v | uint64(1)<<bit
		}
		rs := rankBatch(cands)
		for i := range vs {
			// Same branch-free accept as rankQuantile's solo descent.
			keep := uint64((rs[i] - targets[i] - 1) >> 63)
			vs[i] |= (cands[i] ^ vs[i]) & keep
		}
	}
	sp.targets, sp.cands = targets, cands
	descentPool.Put(sp)
	return vs
}

// descentScratch holds rankQuantileBatch's per-call probe arrays; the
// pool keeps repeated batch extractions allocation-free apart from the
// returned values.
type descentScratch struct {
	targets []int64
	cands   []uint64
}

var descentPool = sync.Pool{New: func() any { return new(descentScratch) }}

// forShards runs fn(0 … p−1) on a worker pool bounded by the machine
// size; the calling goroutine participates.
func forShards(p int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > p {
		workers = p
	}
	if workers <= 1 {
		for i := 0; i < p; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= p {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
