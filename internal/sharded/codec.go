package sharded

import (
	"encoding"
	"fmt"

	"streamquantiles/internal/core"
)

// Binary codec for the sharded containers, so the checkpoint layer can
// persist a whole sharded summary — including mid-reshard state: the
// generation id, every live shard, and every frozen component travel in
// one frame. Marshal runs under the topology read lock, so a checkpoint
// taken concurrently with a Reshard/Retarget observes either the
// complete pre-swap or the complete post-swap topology, never a torn
// hybrid (the crash matrix pins this).
//
// Layout (core.Encoder varints):
//
//	U64 codec version (1)
//	U64 generation id
//	U64 P, then P × Blob (per-shard summary encoding)
//	U64 component count, then count × Blob (frozen component encodings)
//
// Both directions fan the per-summary work out to a GOMAXPROCS-bounded
// worker pool (see fanout): each encode worker holds only its own
// shard's lock for the duration of that shard's marshal — stop the
// shard, not the world — and writes into a pooled buffer; the frames
// are then assembled in shard order into one exactly-sized output, so
// the bytes are identical to the sequential version-1 encoding and the
// committed goldens gate that. Decode splits the length-prefixed
// sub-blobs in one cheap sequential scan, then decodes them into
// per-worker fresh() summaries concurrently.
//
// Decoding builds summaries through the container's own factory and
// feeds each blob to its UnmarshalBinary — the per-summary codecs are
// self-describing (ε, seeds, k travel in the blob), so a decoded shard
// or component restores the exact configuration it was saved with even
// when the live factory has since been retargeted.
const shardedCodecVersion = 1

// maxDecodedShards bounds the shard and component counts a decoder will
// allocate for, far above any sane topology: hostile length prefixes
// must not translate into huge allocations (the SQ006 contract).
const maxDecodedShards = 1 << 16

// MarshalBinary implements encoding.BinaryMarshaler with a
// GOMAXPROCS-wide worker pool.
func (c *CashRegister) MarshalBinary() ([]byte, error) {
	return c.MarshalBinaryWorkers(0)
}

// MarshalBinaryWorkers is MarshalBinary with an explicit worker bound:
// 0 (or anything ≥ GOMAXPROCS) uses GOMAXPROCS workers, 1 marshals
// sequentially. The bytes are identical for every worker count.
func (c *CashRegister) MarshalBinaryWorkers(workers int) ([]byte, error) {
	c.topo.RLock()
	defer c.topo.RUnlock()
	g := c.gen.Load()
	nShards := len(g.shards)
	comps := c.ret.comps
	parts := nShards + len(comps)
	blobs := make([][]byte, parts)
	bufs := make([]*[]byte, parts)
	for i := range bufs {
		bufs[i] = core.EncodeBufPool.Get().(*[]byte)
	}
	defer func() {
		for _, b := range bufs {
			core.EncodeBufPool.Put(b)
		}
	}()
	err := fanout(parts, workers, func(i int) error {
		var blob []byte
		var err error
		if i < nShards {
			sh := &g.shards[i]
			done := c.ckptStart(i)
			sh.mu.Lock()
			blob, err = marshalSummaryInto(sh.s, (*bufs[i])[:0])
			sh.mu.Unlock()
			done()
			if err != nil {
				return fmt.Errorf("sharded: marshal shard %d: %w", i, err)
			}
		} else {
			comp := comps[i-nShards]
			comp.mu.Lock()
			blob, err = marshalSummaryInto(comp.s, (*bufs[i])[:0])
			comp.mu.Unlock()
			if err != nil {
				return fmt.Errorf("sharded: marshal component %d: %w", i-nShards, err)
			}
		}
		*bufs[i] = blob // keep the grown buffer for the pool
		blobs[i] = blob
		return nil
	})
	if err != nil {
		return nil, err
	}
	return assembleSharded(g.id, nShards, blobs), nil
}

// assembleSharded concatenates the per-summary blobs into the
// version-1 frame, in shard order, with one exactly-sized allocation.
func assembleSharded(genID uint64, nShards int, blobs [][]byte) []byte {
	nComps := len(blobs) - nShards
	need := core.UvarintLen(shardedCodecVersion) + core.UvarintLen(genID) +
		core.UvarintLen(uint64(nShards)) + core.UvarintLen(uint64(nComps))
	for _, b := range blobs {
		need += core.UvarintLen(uint64(len(b))) + len(b)
	}
	e := core.EncoderFrom(make([]byte, 0, need))
	e.U64(shardedCodecVersion)
	e.U64(genID)
	e.U64(uint64(nShards))
	for _, b := range blobs[:nShards] {
		e.Blob(b)
	}
	e.U64(uint64(nComps))
	for _, b := range blobs[nShards:] {
		e.Blob(b)
	}
	return e.Bytes()
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler: it replaces
// the container's entire state (topology generation, shards, frozen
// components) with the decoded one, keeping the current factory and its
// probed capabilities.
func (c *CashRegister) UnmarshalBinary(data []byte) error {
	return c.UnmarshalBinaryWorkers(data, 0)
}

// UnmarshalBinaryWorkers is UnmarshalBinary with an explicit worker
// bound; see MarshalBinaryWorkers.
func (c *CashRegister) UnmarshalBinaryWorkers(data []byte, workers int) error {
	c.topo.Lock()
	defer c.topo.Unlock()
	cur := c.gen.Load()
	d := core.NewDecoder(data)
	id, p, err := decodeShardedHeader(d)
	if err != nil {
		return err
	}
	shardBlobs := make([][]byte, p)
	for i := range shardBlobs {
		shardBlobs[i] = d.Blob()
		if err := d.Err(); err != nil {
			return fmt.Errorf("sharded: decode shard %d: %w", i, err)
		}
	}
	nComps := d.U64()
	if nComps > maxDecodedShards {
		return core.Corruptf("sharded: component count %d implausible", nComps)
	}
	compBlobs := make([][]byte, nComps)
	for i := range compBlobs {
		compBlobs[i] = d.Blob()
		if err := d.Err(); err != nil {
			return fmt.Errorf("sharded: decode component %d: %w", i, err)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return core.Corruptf("sharded: %d trailing bytes", d.Remaining())
	}
	next := &cashGen{id: id, shards: make([]cashShard, p), fresh: cur.fresh, caps: cur.caps, eps: cur.eps}
	comps := make([]*retiredComp, len(compBlobs))
	err = fanout(p+len(compBlobs), workers, func(i int) error {
		s := cur.fresh()
		if i < p {
			if err := unmarshalSummary(s, shardBlobs[i]); err != nil {
				return fmt.Errorf("sharded: decode shard %d: %w", i, err)
			}
			sh := &next.shards[i]
			sh.mu.Lock()
			sh.s = s
			sh.mu.Unlock()
			return nil
		}
		j := i - p
		if err := unmarshalSummary(s, compBlobs[j]); err != nil {
			return fmt.Errorf("sharded: decode component %d: %w", j, err)
		}
		comps[j] = newRetiredComp(s)
		return nil
	})
	if err != nil {
		return err
	}
	c.gen.Store(next)
	c.ret.comps = comps
	c.ret.ver.Add(1)
	c.q.invalidate()
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler with a
// GOMAXPROCS-wide worker pool.
func (t *Turnstile) MarshalBinary() ([]byte, error) {
	return t.MarshalBinaryWorkers(0)
}

// MarshalBinaryWorkers is MarshalBinary with an explicit worker bound;
// see the CashRegister variant.
func (t *Turnstile) MarshalBinaryWorkers(workers int) ([]byte, error) {
	t.topo.RLock()
	defer t.topo.RUnlock()
	g := t.gen.Load()
	nShards := len(g.shards)
	blobs := make([][]byte, nShards)
	bufs := make([]*[]byte, nShards)
	for i := range bufs {
		bufs[i] = core.EncodeBufPool.Get().(*[]byte)
	}
	defer func() {
		for _, b := range bufs {
			core.EncodeBufPool.Put(b)
		}
	}()
	err := fanout(nShards, workers, func(i int) error {
		sh := &g.shards[i]
		done := t.ckptStart(i)
		sh.mu.Lock()
		blob, err := marshalSummaryInto(sh.s, (*bufs[i])[:0])
		sh.mu.Unlock()
		done()
		if err != nil {
			return fmt.Errorf("sharded: marshal shard %d: %w", i, err)
		}
		*bufs[i] = blob
		blobs[i] = blob
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Turnstile containers never freeze components, so the trailing
	// component count is always zero.
	return assembleSharded(g.id, nShards, blobs), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Turnstile) UnmarshalBinary(data []byte) error {
	return t.UnmarshalBinaryWorkers(data, 0)
}

// UnmarshalBinaryWorkers is UnmarshalBinary with an explicit worker
// bound; see the CashRegister variant.
func (t *Turnstile) UnmarshalBinaryWorkers(data []byte, workers int) error {
	t.topo.Lock()
	defer t.topo.Unlock()
	cur := t.gen.Load()
	d := core.NewDecoder(data)
	id, p, err := decodeShardedHeader(d)
	if err != nil {
		return err
	}
	if p > maxDecodedShards {
		return core.Corruptf("sharded: shard count %d implausible", p)
	}
	shardBlobs := make([][]byte, p)
	for i := range shardBlobs {
		shardBlobs[i] = d.Blob()
		if err := d.Err(); err != nil {
			return fmt.Errorf("sharded: decode shard %d: %w", i, err)
		}
	}
	if n := d.U64(); n != 0 && d.Err() == nil {
		return core.Corruptf("sharded: turnstile encoding carries %d components", n)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return core.Corruptf("sharded: %d trailing bytes", d.Remaining())
	}
	next := &turnGen{id: id, shards: make([]turnShard, p), fresh: cur.fresh, caps: cur.caps, eps: cur.eps}
	err = fanout(p, workers, func(i int) error {
		s := cur.fresh()
		if err := unmarshalSummary(s, shardBlobs[i]); err != nil {
			return fmt.Errorf("sharded: decode shard %d: %w", i, err)
		}
		sh := &next.shards[i]
		sh.mu.Lock()
		sh.s = s
		sh.mu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	t.gen.Store(next)
	t.q.invalidate()
	return nil
}

// decodeShardedHeader reads and validates the common header.
func decodeShardedHeader(d *core.Decoder) (id uint64, p int, err error) {
	if v := d.U64(); v != shardedCodecVersion {
		if derr := d.Err(); derr != nil {
			return 0, 0, derr
		}
		return 0, 0, core.Corruptf("sharded: unsupported codec version %d", v)
	}
	id = d.U64()
	np := d.U64()
	if err := d.Err(); err != nil {
		return 0, 0, err
	}
	if np < 1 || np > maxDecodedShards {
		return 0, 0, core.Corruptf("sharded: shard count %d implausible", np)
	}
	return id, int(np), nil
}

// marshalSummaryInto encodes one shard or component summary, appending
// into dst (typically a pooled buffer) when the summary supports the
// append contract.
func marshalSummaryInto(s any, dst []byte) ([]byte, error) {
	if am, ok := s.(core.AppendMarshaler); ok {
		return am.AppendBinary(dst)
	}
	m, ok := s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("summary %T has no binary encoding", s)
	}
	return m.MarshalBinary()
}

// unmarshalSummary decodes one blob into a fresh factory summary.
func unmarshalSummary(s any, blob []byte) error {
	u, ok := s.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("summary %T has no binary decoding", s)
	}
	return u.UnmarshalBinary(blob)
}
