package sharded

import (
	"encoding"
	"fmt"

	"streamquantiles/internal/core"
)

// Binary codec for the sharded containers, so the checkpoint layer can
// persist a whole sharded summary — including mid-reshard state: the
// generation id, every live shard, and every frozen component travel in
// one frame. Marshal runs under the topology read lock, so a checkpoint
// taken concurrently with a Reshard/Retarget observes either the
// complete pre-swap or the complete post-swap topology, never a torn
// hybrid (the crash matrix pins this).
//
// Layout (core.Encoder varints):
//
//	U64 codec version (1)
//	U64 generation id
//	U64 P, then P × Blob (per-shard summary encoding)
//	U64 component count, then count × Blob (frozen component encodings)
//
// Decoding builds summaries through the container's own factory and
// feeds each blob to its UnmarshalBinary — the per-summary codecs are
// self-describing (ε, seeds, k travel in the blob), so a decoded shard
// or component restores the exact configuration it was saved with even
// when the live factory has since been retargeted.
const shardedCodecVersion = 1

// maxDecodedShards bounds the shard and component counts a decoder will
// allocate for, far above any sane topology: hostile length prefixes
// must not translate into huge allocations (the SQ006 contract).
const maxDecodedShards = 1 << 16

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *CashRegister) MarshalBinary() ([]byte, error) {
	c.topo.RLock()
	defer c.topo.RUnlock()
	g := c.gen.Load()
	var e core.Encoder
	e.U64(shardedCodecVersion)
	e.U64(g.id)
	e.U64(uint64(len(g.shards)))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		blob, err := marshalSummary(sh.s)
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("sharded: marshal shard %d: %w", i, err)
		}
		e.Blob(blob)
	}
	e.U64(uint64(len(c.ret.comps)))
	for i, comp := range c.ret.comps {
		comp.mu.Lock()
		blob, err := marshalSummary(comp.s)
		comp.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("sharded: marshal component %d: %w", i, err)
		}
		e.Blob(blob)
	}
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler: it replaces
// the container's entire state (topology generation, shards, frozen
// components) with the decoded one, keeping the current factory and its
// probed capabilities.
func (c *CashRegister) UnmarshalBinary(data []byte) error {
	c.topo.Lock()
	defer c.topo.Unlock()
	cur := c.gen.Load()
	d := core.NewDecoder(data)
	id, p, err := decodeShardedHeader(d)
	if err != nil {
		return err
	}
	if p > maxDecodedShards {
		return core.Corruptf("sharded: shard count %d implausible", p)
	}
	next := &cashGen{id: id, shards: make([]cashShard, p), fresh: cur.fresh, caps: cur.caps, eps: cur.eps}
	for i := range next.shards {
		s := cur.fresh()
		if err := unmarshalSummary(s, d.Blob(), d); err != nil {
			return fmt.Errorf("sharded: decode shard %d: %w", i, err)
		}
		sh := &next.shards[i]
		sh.mu.Lock()
		sh.s = s
		sh.mu.Unlock()
	}
	nComps := d.U64()
	if nComps > maxDecodedShards {
		return core.Corruptf("sharded: component count %d implausible", nComps)
	}
	comps := make([]*retiredComp, 0, nComps)
	for i := uint64(0); i < nComps; i++ {
		s := cur.fresh()
		if err := unmarshalSummary(s, d.Blob(), d); err != nil {
			return fmt.Errorf("sharded: decode component %d: %w", i, err)
		}
		comps = append(comps, newRetiredComp(s))
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return core.Corruptf("sharded: %d trailing bytes", d.Remaining())
	}
	c.gen.Store(next)
	c.ret.comps = comps
	c.ret.ver.Add(1)
	c.q.invalidate()
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Turnstile) MarshalBinary() ([]byte, error) {
	t.topo.RLock()
	defer t.topo.RUnlock()
	g := t.gen.Load()
	var e core.Encoder
	e.U64(shardedCodecVersion)
	e.U64(g.id)
	e.U64(uint64(len(g.shards)))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		blob, err := marshalSummary(sh.s)
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("sharded: marshal shard %d: %w", i, err)
		}
		e.Blob(blob)
	}
	e.U64(0) // turnstile containers never freeze components
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Turnstile) UnmarshalBinary(data []byte) error {
	t.topo.Lock()
	defer t.topo.Unlock()
	cur := t.gen.Load()
	d := core.NewDecoder(data)
	id, p, err := decodeShardedHeader(d)
	if err != nil {
		return err
	}
	if p > maxDecodedShards {
		return core.Corruptf("sharded: shard count %d implausible", p)
	}
	next := &turnGen{id: id, shards: make([]turnShard, p), fresh: cur.fresh, caps: cur.caps, eps: cur.eps}
	for i := range next.shards {
		s := cur.fresh()
		if err := unmarshalSummary(s, d.Blob(), d); err != nil {
			return fmt.Errorf("sharded: decode shard %d: %w", i, err)
		}
		sh := &next.shards[i]
		sh.mu.Lock()
		sh.s = s
		sh.mu.Unlock()
	}
	if n := d.U64(); n != 0 {
		return core.Corruptf("sharded: turnstile encoding carries %d components", n)
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return core.Corruptf("sharded: %d trailing bytes", d.Remaining())
	}
	t.gen.Store(next)
	t.q.invalidate()
	return nil
}

// decodeShardedHeader reads and validates the common header.
func decodeShardedHeader(d *core.Decoder) (id uint64, p int, err error) {
	if v := d.U64(); v != shardedCodecVersion {
		if derr := d.Err(); derr != nil {
			return 0, 0, derr
		}
		return 0, 0, core.Corruptf("sharded: unsupported codec version %d", v)
	}
	id = d.U64()
	np := d.U64()
	if err := d.Err(); err != nil {
		return 0, 0, err
	}
	if np < 1 || np > maxDecodedShards {
		return 0, 0, core.Corruptf("sharded: shard count %d implausible", np)
	}
	return id, int(np), nil
}

// marshalSummary encodes one shard or component summary.
func marshalSummary(s any) ([]byte, error) {
	m, ok := s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("summary %T has no binary encoding", s)
	}
	return m.MarshalBinary()
}

// unmarshalSummary decodes one blob into a fresh factory summary.
func unmarshalSummary(s any, blob []byte, d *core.Decoder) error {
	if err := d.Err(); err != nil {
		return err
	}
	u, ok := s.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("summary %T has no binary decoding", s)
	}
	return u.UnmarshalBinary(blob)
}
