// Parallel fan-out for the sharded codec: the worker pool that lets
// MarshalBinary and UnmarshalBinary dispatch per-shard work across
// cores, and the checkpoint observer that makes each shard's marshal
// stall visible to harnesses. The pool shape matches forShards
// (query.go): GOMAXPROCS-bounded, work-stealing over an atomic cursor,
// calling goroutine participating, every spawned goroutine joined
// before return.
package sharded

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// fanout runs fn(0 … n−1) on a worker pool of min(workers, GOMAXPROCS,
// n) goroutines; workers ≤ 0 means GOMAXPROCS. Unlike forShards it
// collects errors: every index runs to completion (a failed shard does
// not cancel its siblings — each holds its own lock for a bounded,
// small amount of work), all spawned goroutines are joined on every
// path, and the error at the lowest index wins, so the result is
// deterministic regardless of scheduling and identical to what a
// sequential left-to-right loop would report.
func fanout(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := runtime.GOMAXPROCS(0)
	if workers > 0 && workers < w {
		w = workers
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 1; g < w; g++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// A CheckpointObserver brackets each live shard's marshal during a
// checkpoint save: obs(shard) is called just before the shard's lock is
// taken and the returned done just after it is released — the window a
// writer routed to that shard can stall for. The containers never read
// the clock themselves; harnesses (cmd/quantstress) supply timing by
// closing over it, mirroring DrainObserver.
type CheckpointObserver func(shard int) (done func())

// SetCheckpointObserver installs obs (nil removes it). Safe to call
// concurrently with saves; a save in flight may complete with the
// previous observer.
func (c *CashRegister) SetCheckpointObserver(obs CheckpointObserver) {
	if obs == nil {
		c.ckptObs.Store(nil)
		return
	}
	c.ckptObs.Store(&obs)
}

// SetCheckpointObserver installs obs (nil removes it); see the
// CashRegister variant.
func (t *Turnstile) SetCheckpointObserver(obs CheckpointObserver) {
	if obs == nil {
		t.ckptObs.Store(nil)
		return
	}
	t.ckptObs.Store(&obs)
}

func (c *CashRegister) ckptStart(i int) func() {
	if p := c.ckptObs.Load(); p != nil {
		if done := (*p)(i); done != nil {
			return done
		}
	}
	return func() {}
}

func (t *Turnstile) ckptStart(i int) func() {
	if p := t.ckptObs.Load(); p != nil {
		if done := (*p)(i); done != nil {
			return done
		}
	}
	return func() {}
}
