// Package sharded scales ingestion across cores by partitioning a
// stream over P independent per-shard summaries, each behind its own
// mutex — there is no global lock anywhere on the write path, so P
// writers on P cores ingest with no coherence traffic beyond their own
// shard.
//
// Correctness rests on the summaries' stream-order insensitivity:
//
//   - Cash-register summaries: any partition of an insert-only stream
//     is itself a valid insert-only stream, so each shard is a valid
//     summary of its share and batches route round-robin.
//   - Turnstile summaries: elements route by value affinity (a mixed
//     hash of the element), so an element's deletions always land on
//     the shard that saw its insertions and every shard individually
//     stays in the strict turnstile model.
//
// Queries combine the shards within the composed error bound
// Σ εᵢnᵢ ≤ εn: summaries implementing core.Mergeable (the dyadic
// linear sketches, KLL, q-digest, MRL99, Random) fold into one
// fresh summary which answers directly; the rest (the GK family)
// combine by additive rank estimation — the summed per-shard rank
// estimate tracks the true combined rank everywhere within the summed
// estimate errors (at most 2εn + P for GK's midpoint estimator, far
// less in practice), and a 64-bit bitwise descent over the value domain
// inverts it.
//
// The fold itself is cached and parallel: mergeability is probed once
// at construction, every shard carries a write epoch, and the combined
// artifact (merged summary or exact per-shard snapshots) is reused
// lock-free across queries until some shard is written again — see
// query.go.
package sharded

import (
	"fmt"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// checkShards validates the shard count, shared by both constructors.
func checkShards(p int) {
	if p < 1 {
		panic(fmt.Sprintf("sharded: shard count %d < 1", p))
	}
}

// mix is the SplitMix64 finalizer: a bijective mix that spreads
// value-affinity routing evenly across shards even for clustered keys.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// invariantChecker is implemented by every registered summary (the
// quantlint SQ005 contract); shards that provide it are deep-checked by
// Invariants.
type invariantChecker interface{ Invariants() error }

// ---------------------------------------------------------------- cash

// cashShard pads each summary's lock onto its own state; shards are
// only ever touched under their own mutex. epoch counts writes: bumped
// under mu before every mutation, loadable without it (see query.go).
type cashShard struct {
	mu    sync.Mutex
	s     core.CashRegister // guarded by mu
	epoch atomic.Uint64
}

// CashRegister partitions an insert-only stream across P per-shard
// summaries produced by a factory. All methods are safe for concurrent
// use.
type CashRegister struct {
	shards []cashShard
	fresh  func() core.CashRegister
	rr     atomic.Uint64
	q      queryCache
}

// NewCashRegister builds a P-way sharded summary; fresh must return a
// new empty summary per call, all identically configured.
func NewCashRegister(p int, fresh func() core.CashRegister) *CashRegister {
	checkShards(p)
	c := &CashRegister{shards: make([]cashShard, p), fresh: fresh}
	for i := range c.shards {
		c.shards[i].s = fresh()
	}
	c.q.init(c)
	return c
}

// Shards returns P.
func (c *CashRegister) Shards() int { return len(c.shards) }

// Mergeable reports whether queries fold the shards into one merged
// summary (the family merges and the factory's instances are
// merge-compatible), probed once at construction.
func (c *CashRegister) Mergeable() bool { return c.q.mergeable }

// shardSet implementation (see query.go).
func (c *CashRegister) numShards() int             { return len(c.shards) }
func (c *CashRegister) shardEpoch(i int) uint64    { return c.shards[i].epoch.Load() }
func (c *CashRegister) freshSummary() core.Summary { return c.fresh() }

func (c *CashRegister) withShard(i int, fn func(s core.Summary)) uint64 {
	sh := &c.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.s)
	return sh.epoch.Load()
}

// Update implements core.CashRegister: the element lands on the next
// shard in round-robin order.
func (c *CashRegister) Update(x uint64) {
	sh := &c.shards[(c.rr.Add(1)-1)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.epoch.Add(1)
	sh.s.Update(x)
	sh.mu.Unlock()
}

// UpdateBatch implements core.BatchCashRegister: the whole batch lands
// on one shard (round-robin across calls) under a single lock
// acquisition, through the shard's native batch path when it has one.
func (c *CashRegister) UpdateBatch(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	sh := &c.shards[(c.rr.Add(1)-1)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.epoch.Add(1)
	core.UpdateBatch(sh.s, xs)
	sh.mu.Unlock()
}

// UpdateBatchAffinity routes the whole batch to the shard owning key —
// for callers that partition work upstream (per user, per series) and
// want same-key batches to share a shard.
func (c *CashRegister) UpdateBatchAffinity(key uint64, xs []uint64) {
	if len(xs) == 0 {
		return
	}
	sh := &c.shards[mix(key)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.epoch.Add(1)
	core.UpdateBatch(sh.s, xs)
	sh.mu.Unlock()
}

// Count implements core.Summary.
func (c *CashRegister) Count() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.s.Count()
		sh.mu.Unlock()
	}
	return n
}

// Rank implements core.Summary. Mergeable families answer from the
// (cached) merged summary — for the linear sketches, exactly the
// unsharded estimate. Otherwise ranks are additive across a partition:
// the estimate is the sum of per-shard estimates and its error the sum
// of per-shard estimate errors — for the GK family, whose midpoint
// estimator is uncertain by up to the ⌊2εᵢnᵢ⌋ capacity of the gap a
// probe falls into plus its −1 bias, Σᵢ(2εᵢnᵢ+1) ≤ 2εn + P.
func (c *CashRegister) Rank(x uint64) int64 {
	if e := c.q.entry(c); e != nil {
		return e.rank(x)
	}
	return c.summedRank(x)
}

// RankBatch implements core.QuantileBatcher.
func (c *CashRegister) RankBatch(xs []uint64) []int64 {
	if e := c.q.entry(c); e != nil {
		return e.rankBatch(xs)
	}
	return c.summedRankBatch(xs)
}

// summedRank is the additive estimate over the live shards.
func (c *CashRegister) summedRank(x uint64) int64 {
	var r int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		r += sh.s.Rank(x)
		sh.mu.Unlock()
	}
	return r
}

// summedRankBatch is the batch form of summedRank: one lock acquisition
// and one native RankBatch sweep per shard for the whole probe set.
func (c *CashRegister) summedRankBatch(xs []uint64) []int64 {
	out := make([]int64, len(xs))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		rs := core.RankBatch(sh.s, xs)
		sh.mu.Unlock()
		for j, r := range rs {
			out[j] += r
		}
	}
	return out
}

// Quantile implements core.Summary within the composed ε bound.
func (c *CashRegister) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if e := c.q.entry(c); e != nil {
		return e.quantile(phi)
	}
	return rankQuantile(c.Count(), c.summedRank, phi)
}

// QuantileBatch implements core.QuantileBatcher: one cached fold (or
// one lockstep rank-descent over all fractions) answers the whole
// batch.
func (c *CashRegister) QuantileBatch(phis []float64) []uint64 {
	for _, phi := range phis {
		core.CheckPhi(phi)
	}
	if e := c.q.entry(c); e != nil {
		return e.quantileBatch(phis)
	}
	return rankQuantileBatch(c.Count(), c.summedRankBatch, phis)
}

// SpaceBytes implements core.Summary: the sum over shards.
func (c *CashRegister) SpaceBytes() int64 {
	var b int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		b += sh.s.SpaceBytes()
		sh.mu.Unlock()
	}
	return b
}

// Invariants implements the sanitizer contract by deep-checking every
// shard that supports it.
func (c *CashRegister) Invariants() error {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		err := checkShardInvariants(i, sh.s)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func checkShardInvariants(i int, s any) error {
	ic, ok := s.(invariantChecker)
	if !ok {
		return nil
	}
	if err := ic.Invariants(); err != nil {
		return fmt.Errorf("sharded: shard %d: %w", i, err)
	}
	return nil
}
