// Package sharded scales ingestion across cores by partitioning a
// stream over P independent per-shard summaries, each behind its own
// mutex — there is no global lock anywhere on the write path, so P
// writers on P cores ingest with no coherence traffic beyond their own
// shard.
//
// Correctness rests on the summaries' stream-order insensitivity:
//
//   - Cash-register summaries: any partition of an insert-only stream
//     is itself a valid insert-only stream, so each shard is a valid
//     summary of its share and batches route round-robin.
//   - Turnstile summaries: elements route by value affinity (a mixed
//     hash of the element), so an element's deletions always land on
//     the shard that saw its insertions and every shard individually
//     stays in the strict turnstile model.
//
// Queries combine the shards within the composed error bound
// Σ εᵢnᵢ ≤ εn: summaries implementing core.Mergeable (the dyadic
// linear sketches, KLL, q-digest, MRL99, Random) fold into one
// fresh summary which answers directly; the rest (the GK family)
// combine by additive rank estimation — the summed per-shard rank
// estimate tracks the true combined rank everywhere within the summed
// estimate errors (at most 2εn for GK's midpoint estimator, far less in
// practice), and a 64-bit bitwise descent over the value domain
// inverts it.
package sharded

import (
	"fmt"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// checkShards validates the shard count, shared by both constructors.
func checkShards(p int) {
	if p < 1 {
		panic(fmt.Sprintf("sharded: shard count %d < 1", p))
	}
}

// mix is the SplitMix64 finalizer: a bijective mix that spreads
// value-affinity routing evenly across shards even for clustered keys.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// invariantChecker is implemented by every registered summary (the
// quantlint SQ005 contract); shards that provide it are deep-checked by
// Invariants.
type invariantChecker interface{ Invariants() error }

// ---------------------------------------------------------------- cash

// cashShard pads each summary's lock onto its own state; shards are
// only ever touched under their own mutex.
type cashShard struct {
	mu sync.Mutex
	s  core.CashRegister
}

// CashRegister partitions an insert-only stream across P per-shard
// summaries produced by a factory. All methods are safe for concurrent
// use.
type CashRegister struct {
	shards []cashShard
	fresh  func() core.CashRegister
	rr     atomic.Uint64
}

// NewCashRegister builds a P-way sharded summary; fresh must return a
// new empty summary per call, all identically configured.
func NewCashRegister(p int, fresh func() core.CashRegister) *CashRegister {
	checkShards(p)
	c := &CashRegister{shards: make([]cashShard, p), fresh: fresh}
	for i := range c.shards {
		c.shards[i].s = fresh()
	}
	return c
}

// Shards returns P.
func (c *CashRegister) Shards() int { return len(c.shards) }

// Update implements core.CashRegister: the element lands on the next
// shard in round-robin order.
func (c *CashRegister) Update(x uint64) {
	sh := &c.shards[(c.rr.Add(1)-1)%uint64(len(c.shards))]
	sh.mu.Lock()
	sh.s.Update(x)
	sh.mu.Unlock()
}

// UpdateBatch implements core.BatchCashRegister: the whole batch lands
// on one shard (round-robin across calls) under a single lock
// acquisition, through the shard's native batch path when it has one.
func (c *CashRegister) UpdateBatch(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	sh := &c.shards[(c.rr.Add(1)-1)%uint64(len(c.shards))]
	sh.mu.Lock()
	core.UpdateBatch(sh.s, xs)
	sh.mu.Unlock()
}

// UpdateBatchAffinity routes the whole batch to the shard owning key —
// for callers that partition work upstream (per user, per series) and
// want same-key batches to share a shard.
func (c *CashRegister) UpdateBatchAffinity(key uint64, xs []uint64) {
	if len(xs) == 0 {
		return
	}
	sh := &c.shards[mix(key)%uint64(len(c.shards))]
	sh.mu.Lock()
	core.UpdateBatch(sh.s, xs)
	sh.mu.Unlock()
}

// Count implements core.Summary.
func (c *CashRegister) Count() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.s.Count()
		sh.mu.Unlock()
	}
	return n
}

// Rank implements core.Summary. Mergeable families answer from the
// merged summary (for the linear sketches, exactly the unsharded
// estimate). Otherwise ranks are additive across a partition: the
// estimate is the sum of per-shard estimates and its error the sum of
// per-shard estimate errors — for the GK family, whose midpoint
// estimator is uncertain by up to the ⌊2εᵢnᵢ⌋ capacity of the gap a
// probe falls into, Σᵢ 2εᵢnᵢ ≤ 2εn.
func (c *CashRegister) Rank(x uint64) int64 {
	if s := c.combined(); s != nil {
		return s.Rank(x)
	}
	return c.summedRank(x)
}

// summedRank is the additive estimate over all shards.
func (c *CashRegister) summedRank(x uint64) int64 {
	var r int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		r += sh.s.Rank(x)
		sh.mu.Unlock()
	}
	return r
}

// combined merges every shard into one fresh summary when the family
// supports it, returning nil otherwise (the caller falls back to rank
// combination).
func (c *CashRegister) combined() core.CashRegister {
	fresh := c.fresh()
	m, ok := fresh.(core.Mergeable)
	if !ok {
		return nil
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		err := m.MergeSummary(sh.s)
		sh.mu.Unlock()
		if err != nil {
			return nil
		}
	}
	return fresh
}

// Quantile implements core.Summary within the composed ε bound.
func (c *CashRegister) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if s := c.combined(); s != nil {
		return s.Quantile(phi)
	}
	return rankQuantile(c.Count(), c.summedRank, phi)
}

// BatchQuantiles implements core.BatchQuantiler: one merge (or one
// rank-descent per fraction) answers the whole batch.
func (c *CashRegister) BatchQuantiles(phis []float64) []uint64 {
	for _, phi := range phis {
		core.CheckPhi(phi)
	}
	if s := c.combined(); s != nil {
		return core.Quantiles(s, phis)
	}
	n := c.Count()
	out := make([]uint64, len(phis))
	for i, phi := range phis {
		out[i] = rankQuantile(n, c.summedRank, phi)
	}
	return out
}

// SpaceBytes implements core.Summary: the sum over shards.
func (c *CashRegister) SpaceBytes() int64 {
	var b int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		b += sh.s.SpaceBytes()
		sh.mu.Unlock()
	}
	return b
}

// Invariants implements the sanitizer contract by deep-checking every
// shard that supports it.
func (c *CashRegister) Invariants() error {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		err := checkShardInvariants(i, sh.s)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func checkShardInvariants(i int, s any) error {
	ic, ok := s.(invariantChecker)
	if !ok {
		return nil
	}
	if err := ic.Invariants(); err != nil {
		return fmt.Errorf("sharded: shard %d: %w", i, err)
	}
	return nil
}

// rankQuantile inverts a summed rank estimate by a bitwise descent: the
// largest v with R(v) ≤ target. R tracks the true (monotone) combined
// rank within the summed per-shard estimate error E, and every value
// above the result was excluded by a probe whose estimate exceeded the
// target, so the result's rank interval intersects [target−E, target+E]
// — for the GK family E ≤ Σᵢ 2εᵢnᵢ ≤ 2εn, and in practice far tighter.
func rankQuantile(n int64, rank func(uint64) int64, phi float64) uint64 {
	if n <= 0 {
		panic(core.ErrEmpty)
	}
	target := core.TargetRank(phi, n)
	var v uint64
	for bit := 63; bit >= 0; bit-- {
		if cand := v | uint64(1)<<bit; rank(cand) <= target {
			v = cand
		}
	}
	return v
}
