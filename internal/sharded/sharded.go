// Package sharded scales ingestion across cores by partitioning a
// stream over P independent per-shard summaries, each behind its own
// mutex — there is no global lock anywhere on the write path, so P
// writers on P cores ingest with no coherence traffic beyond their own
// shard.
//
// Correctness rests on the summaries' stream-order insensitivity:
//
//   - Cash-register summaries: any partition of an insert-only stream
//     is itself a valid insert-only stream, so each shard is a valid
//     summary of its share and batches route round-robin.
//   - Turnstile summaries: elements route by value affinity (a mixed
//     hash of the element), so an element's deletions always land on
//     the shard that saw its insertions and every shard individually
//     stays in the strict turnstile model.
//
// Queries combine the shards within the composed error bound
// Σ εᵢnᵢ ≤ εn: summaries implementing core.Mergeable (the dyadic
// linear sketches, KLL, q-digest, MRL99, Random) fold into one
// fresh summary which answers directly; the rest (the GK family)
// combine by additive rank estimation — the summed per-shard rank
// estimate tracks the true combined rank everywhere within the summed
// estimate errors (at most 2εn + P for GK's midpoint estimator, far
// less in practice), and a 64-bit bitwise descent over the value domain
// inverts it.
//
// The fold itself is cached and parallel: mergeability is probed once
// per factory, every shard carries a write epoch, and the combined
// artifact (merged summary or exact per-shard snapshots) is reused
// lock-free across queries until some shard is written again — see
// query.go.
//
// # Elasticity
//
// The shard topology is no longer fixed at construction: Reshard
// grows or shrinks P and Retarget migrates the container to a new
// factory (typically a new ε) — both online, without stopping
// ingestion. The topology lives in an immutable generation value
// behind an atomic pointer; an elastic operation builds the successor
// generation, swaps the pointer, and drains the retired shards into it
// (by MERGE for mergeable families, by adoption or by freezing the
// summary as a query-time rank component for the GK family). Writers
// never take a global lock: a writer that catches a shard mid-retire
// simply re-routes against the successor generation, so ingestion is
// blocked at most for one shard drain. Queries that must see a stable
// topology (fold rebuilds, aggregates, the codec) take a read lock
// that elastic operations hold exclusively — see elastic.go and
// DESIGN.md "Elasticity".
package sharded

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"streamquantiles/internal/core"
)

// checkShards validates a shard count, shared by constructors and
// Reshard.
func checkShards(p int) error {
	if p < 1 {
		return fmt.Errorf("sharded: shard count %d < 1", p)
	}
	return nil
}

// mix is the SplitMix64 finalizer: a bijective mix that spreads
// value-affinity routing evenly across shards even for clustered keys.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// invariantChecker is implemented by every registered summary (the
// quantlint SQ005 contract); shards that provide it are deep-checked by
// Invariants.
type invariantChecker interface{ Invariants() error }

// cacheLine is the placement granularity for hot shared state: 128
// bytes — two 64-byte lines — so the spatial prefetcher's paired line
// loads cannot re-introduce false sharing between neighbours either.
// Shard structs living in a generation's []cashShard/[]turnShard pad to
// a multiple of it (the SQ014 lint holds the discipline, a Sizeof test
// pins the arithmetic): without the padding, shard i's lock word and
// shard i+1's summary header share a line, and P writers on P cores
// ping that line between caches on every update even though they never
// touch each other's shard.
const cacheLine = 128

// ---------------------------------------------------------------- cash

// cashShard pads each summary's lock onto its own state; shards are
// only ever touched under their own mutex. epoch counts writes: bumped
// under mu before every mutation, loadable without it (see query.go).
type cashShard struct {
	mu      sync.Mutex
	s       core.CashRegister // guarded by mu
	retired bool              // guarded by mu
	epoch   atomic.Uint64
	// The live fields above occupy 40 bytes on 64-bit; the blank tail
	// rounds the struct up to cacheLine so adjacent shards in the
	// generation slice never share a line (TestShardStructsPadded).
	_ [cacheLine - 40]byte
}

// cashGen is one immutable shard topology: the shard array, the factory
// that populated it, and the factory's probed fold capabilities. A
// generation's fields never change after publication; elastic
// operations build a successor and swap the container's pointer.
type cashGen struct {
	id     uint64
	shards []cashShard
	fresh  func() core.CashRegister
	caps   foldCaps
	eps    float64 // factory's reported error budget; 0 when unknown
}

func newCashGen(id uint64, p int, fresh func() core.CashRegister, caps foldCaps) *cashGen {
	g := &cashGen{id: id, shards: make([]cashShard, p), fresh: fresh, caps: caps}
	for i := range g.shards {
		g.shards[i].s = fresh()
	}
	if er, ok := g.shards[0].s.(epsReporter); ok {
		g.eps = er.Eps()
	}
	return g
}

// genSet implementation (see query.go).
func (g *cashGen) numShards() int          { return len(g.shards) }
func (g *cashGen) shardEpoch(i int) uint64 { return g.shards[i].epoch.Load() }
func (g *cashGen) freshSummary() core.Summary {
	return g.fresh()
}
func (g *cashGen) genID() uint64          { return g.id }
func (g *cashGen) capabilities() foldCaps { return g.caps }

func (g *cashGen) withShard(i int, fn func(s core.Summary)) uint64 {
	sh := &g.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.s)
	return sh.epoch.Load()
}

// CashRegister partitions an insert-only stream across P per-shard
// summaries produced by a factory. All methods are safe for concurrent
// use, including the elastic operations in elastic.go.
type CashRegister struct {
	// topo is the topology lock: queries that need a stable shard set
	// (fold rebuilds, aggregates, the codec) hold it shared; Reshard,
	// Retarget and UnmarshalBinary hold it exclusively. Writers never
	// touch it — they re-route on the retired flag instead.
	topo sync.RWMutex
	gen  atomic.Pointer[cashGen]
	ret  retiredSet
	q    queryCache

	// rr is the round-robin routing cursor of the handle-less write
	// path (Update/UpdateBatch with no Writer). It is the one piece of
	// shared mutable write-path state left, so it sits alone between two
	// blank cache lines: every handle-less write bumps it, and without
	// the isolation those bumps would keep invalidating the line holding
	// gen — which every writer loads per call and every flush re-loads.
	// Writer handles never touch it (each flushes to its own affinity
	// slot), which is what makes them scale.
	_  [cacheLine]byte
	rr atomic.Uint64
	_  [cacheLine - 8]byte

	// wslot hands out writer-handle affinity slots; bumped once per
	// AcquireWriter, never on the per-element path.
	wslot atomic.Uint64

	// drainObs, when set, brackets each retired shard's drain during an
	// elastic operation (see SetDrainObserver).
	drainObs atomic.Pointer[DrainObserver]

	// ckptObs, when set, brackets each live shard's marshal during a
	// checkpoint save (see SetCheckpointObserver).
	ckptObs atomic.Pointer[CheckpointObserver]
}

// NewCashRegister builds a P-way sharded summary; fresh must return a
// new empty summary per call, all identically configured. An invalid
// shard count surfaces as an error, not a panic.
func NewCashRegister(p int, fresh func() core.CashRegister) (*CashRegister, error) {
	if err := checkShards(p); err != nil {
		return nil, err
	}
	c := &CashRegister{}
	caps := probeCaps(func() core.Summary { return fresh() })
	c.gen.Store(newCashGen(0, p, fresh, caps))
	return c, nil
}

// Shards returns the current shard count P.
func (c *CashRegister) Shards() int { return len(c.gen.Load().shards) }

// Generation returns the topology generation: 0 at construction,
// bumped by every Reshard/Retarget/decode.
func (c *CashRegister) Generation() uint64 { return c.gen.Load().id }

// Mergeable reports whether queries fold the shards into one merged
// summary (the family merges and the factory's instances are
// merge-compatible), probed once per factory.
func (c *CashRegister) Mergeable() bool { return c.gen.Load().caps.mergeable }

// elasticSet implementation (see query.go).
func (c *CashRegister) currentGen() genSet           { return c.gen.Load() }
func (c *CashRegister) retiredVer() uint64           { return c.ret.ver.Load() }
func (c *CashRegister) retiredComps() []*retiredComp { return c.ret.comps }

// topoRLock takes the topology read lock and hands the caller the
// matching unlock — the fold rebuild in query.go holds it for the
// duration of the rebuild via `defer set.topoRLock()()`.
//
// locks topo
func (c *CashRegister) topoRLock() func() {
	c.topo.RLock()
	return c.topo.RUnlock
}

// Update implements core.CashRegister: the element lands on the next
// shard in round-robin order. A shard caught mid-retire re-routes
// against the successor generation, so the retry loop runs at most for
// the duration of one topology swap.
func (c *CashRegister) Update(x uint64) {
	i := c.rr.Add(1) - 1
	for {
		g := c.gen.Load()
		sh := &g.shards[i%uint64(len(g.shards))]
		sh.mu.Lock()
		if sh.retired {
			sh.mu.Unlock()
			runtime.Gosched()
			continue
		}
		sh.epoch.Add(1)
		sh.s.Update(x)
		sh.mu.Unlock()
		return
	}
}

// UpdateBatch implements core.BatchCashRegister: the whole batch lands
// on one shard (round-robin across calls) under a single lock
// acquisition, through the shard's native batch path when it has one.
func (c *CashRegister) UpdateBatch(xs []uint64) {
	if len(xs) == 0 {
		return
	}
	c.deliver(c.rr.Add(1)-1, xs)
}

// UpdateBatchAffinity routes the whole batch to the shard owning key —
// for callers that partition work upstream (per user, per series) and
// want same-key batches to share a shard.
func (c *CashRegister) UpdateBatchAffinity(key uint64, xs []uint64) {
	if len(xs) == 0 {
		return
	}
	c.deliver(mix(key), xs)
}

// deliver lands one batch on the shard owning slot in the live
// generation, under a single lock acquisition and through the shard's
// native batch path. A shard caught mid-retire re-routes against the
// successor generation — the slice is applied exactly once, on a live
// shard, so count conservation across a reshard is structural. The
// batch is consumed before deliver returns (summaries copy what they
// keep), so callers may reuse the backing array — writer handles do.
func (c *CashRegister) deliver(slot uint64, xs []uint64) {
	for {
		g := c.gen.Load()
		sh := &g.shards[slot%uint64(len(g.shards))]
		sh.mu.Lock()
		if sh.retired {
			sh.mu.Unlock()
			runtime.Gosched()
			continue
		}
		sh.epoch.Add(1)
		core.UpdateBatch(sh.s, xs)
		sh.mu.Unlock()
		return
	}
}

// Count implements core.Summary: live shards plus frozen components.
func (c *CashRegister) Count() int64 {
	c.topo.RLock()
	defer c.topo.RUnlock()
	return c.countLocked()
}

// countLocked sums the shard and component counts; the caller holds the
// topology read lock.
func (c *CashRegister) countLocked() int64 {
	g := c.gen.Load()
	var n int64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		n += sh.s.Count()
		sh.mu.Unlock()
	}
	return n + c.ret.count()
}

// Rank implements core.Summary. Mergeable families answer from the
// (cached) merged summary — for the linear sketches, exactly the
// unsharded estimate. Otherwise ranks are additive across a partition:
// the estimate is the sum of per-shard estimates and its error the sum
// of per-shard estimate errors — for the GK family, whose midpoint
// estimator is uncertain by up to the ⌊2εᵢnᵢ⌋ capacity of the gap a
// probe falls into plus its −1 bias, Σᵢ(2εᵢnᵢ+1) ≤ 2εn + parts, where
// parts counts live shards plus frozen components (Components).
func (c *CashRegister) Rank(x uint64) int64 {
	if e := c.q.entry(c); e != nil {
		return e.rank(x)
	}
	c.topo.RLock()
	defer c.topo.RUnlock()
	return c.summedRankLocked(x)
}

// RankBatch implements core.QuantileBatcher.
func (c *CashRegister) RankBatch(xs []uint64) []int64 {
	if e := c.q.entry(c); e != nil {
		return e.rankBatch(xs)
	}
	c.topo.RLock()
	defer c.topo.RUnlock()
	return c.summedRankBatchLocked(xs)
}

// summedRankLocked is the additive estimate over the live shards and
// frozen components; the caller holds the topology read lock.
func (c *CashRegister) summedRankLocked(x uint64) int64 {
	g := c.gen.Load()
	var r int64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		r += sh.s.Rank(x)
		sh.mu.Unlock()
	}
	return r + c.ret.rank(x)
}

// summedRankBatchLocked is the batch form of summedRankLocked: one lock
// acquisition and one native RankBatch sweep per shard for the whole
// probe set.
func (c *CashRegister) summedRankBatchLocked(xs []uint64) []int64 {
	g := c.gen.Load()
	out := make([]int64, len(xs))
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		rs := core.RankBatch(sh.s, xs)
		sh.mu.Unlock()
		for j, r := range rs {
			out[j] += r
		}
	}
	c.ret.addRanks(out, xs)
	return out
}

// Quantile implements core.Summary within the composed ε bound.
func (c *CashRegister) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if e := c.q.entry(c); e != nil {
		return e.quantile(phi)
	}
	c.topo.RLock()
	defer c.topo.RUnlock()
	return rankQuantile(c.countLocked(), c.summedRankLocked, phi)
}

// QuantileBatch implements core.QuantileBatcher: one cached fold (or
// one lockstep rank-descent over all fractions) answers the whole
// batch.
func (c *CashRegister) QuantileBatch(phis []float64) []uint64 {
	for _, phi := range phis {
		core.CheckPhi(phi)
	}
	if e := c.q.entry(c); e != nil {
		return e.quantileBatch(phis)
	}
	c.topo.RLock()
	defer c.topo.RUnlock()
	return rankQuantileBatch(c.countLocked(), c.summedRankBatchLocked, phis)
}

// SpaceBytes implements core.Summary: the sum over shards and frozen
// components.
func (c *CashRegister) SpaceBytes() int64 {
	c.topo.RLock()
	defer c.topo.RUnlock()
	g := c.gen.Load()
	var b int64
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		b += sh.s.SpaceBytes()
		sh.mu.Unlock()
	}
	return b + c.ret.spaceBytes()
}

// Invariants implements the sanitizer contract by deep-checking every
// shard and frozen component that supports it.
func (c *CashRegister) Invariants() error {
	c.topo.RLock()
	defer c.topo.RUnlock()
	g := c.gen.Load()
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		err := checkShardInvariants(i, sh.s)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return c.ret.invariants()
}

func checkShardInvariants(i int, s any) error {
	ic, ok := s.(invariantChecker)
	if !ok {
		return nil
	}
	if err := ic.Invariants(); err != nil {
		return fmt.Errorf("sharded: shard %d: %w", i, err)
	}
	return nil
}
