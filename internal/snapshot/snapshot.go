// Package snapshot provides epoch-guarded caching of flattened query
// snapshots (core.QuerySnapshot): a write-epoch counter is bumped by
// the owning wrapper on every mutation, and readers reuse a previously
// built snapshot only while its epoch still matches — so repeated
// queries between writes are lock-free O(log s) binary searches, and
// the first query after a write rebuilds.
//
// The protocol (see DESIGN.md "Query snapshots"):
//
//   - The owner calls Invalidate() while holding its write lock, before
//     mutating the summary.
//   - A reader calls Current(); a non-nil result is immutable and safe
//     to query without any lock.
//   - On nil, the reader takes the owner's query lock (shared for pure
//     readers, exclusive for Flusher summaries), re-checks Current()
//     (another reader may have rebuilt first), and otherwise calls
//     Rebuild.
//
// Correctness of the lock-free fast path: Store records the epoch
// observed before the snapshot was built, while the builder held a lock
// that excludes writers — so epoch E's snapshot reflects every write
// that completed before E. A reader that loads the entry and then sees
// the live epoch still equal to the entry's has a guarantee that no
// write *completed* in between (completed writes bump the counter under
// the write lock first, and Go atomics are sequentially consistent); a
// write still in flight has not yet mutated anything the snapshot
// depends on, and serializing the query before it is linearizable.
package snapshot

import (
	"sync/atomic"

	"streamquantiles/internal/core"
)

// Cache pairs a write-epoch counter with the snapshot built at some
// epoch. The zero value is ready to use.
type Cache struct {
	epoch atomic.Uint64
	cur   atomic.Pointer[entry]
}

type entry struct {
	epoch uint64
	qs    *core.QuerySnapshot
}

// Invalidate bumps the write epoch, retiring any cached snapshot. The
// owner must call it under its write lock, before mutating the summary.
func (c *Cache) Invalidate() { c.epoch.Add(1) }

// Epoch returns the current write epoch.
func (c *Cache) Epoch() uint64 { return c.epoch.Load() }

// Current returns the cached snapshot when it is still valid for the
// current epoch, or nil when a write has retired it. The returned
// snapshot is immutable; no lock is needed to query it.
func (c *Cache) Current() *core.QuerySnapshot {
	e := c.cur.Load()
	if e == nil || e.epoch != c.epoch.Load() {
		return nil
	}
	return e.qs
}

// Rebuild materializes a fresh snapshot of s and caches it under the
// current epoch. The caller must hold a lock that excludes writers for
// the duration of the call (the shared query lock suffices; Flusher
// summaries need the exclusive lock, as for any query). Concurrent
// Rebuild calls under a shared lock are safe: they build identical
// snapshots and the last Store wins.
//
// The retired snapshot is deliberately NOT recycled into the new build
// (no AppendQuerySnapshot over the old arrays, no pool): readers that
// loaded it lock-free just before the epoch bump may still be mid
// binary search, so its arrays must stay immutable until the GC
// reclaims them. Capacity reuse is only sound where a single goroutine
// owns the snapshot — see Cached.
func (c *Cache) Rebuild(s core.Snapshotter) *core.QuerySnapshot {
	epoch := c.Epoch()
	qs := core.BuildQuerySnapshot(s)
	c.cur.Store(&entry{epoch: epoch, qs: qs})
	return qs
}

// For returns a fresh Cache when s supports exact snapshots
// (core.Snapshotter), nil otherwise — the capability probe the Safe
// wrappers run at construction and again after a Retarget swap.
func For(s core.Summary) *Cache {
	if _, ok := s.(core.Snapshotter); ok {
		return new(Cache)
	}
	return nil
}

// BuildGrid materializes an approximate snapshot of an arbitrary
// summary by probing it on the even φ-grid of spacing gridEps: the
// families without an exact flattening (the dyadic sketches, whose
// per-level state cannot collapse into one sorted array, and GKBiased,
// whose extraction bound depends on the queried rank) can still trade
// freshness for O(log(1/gridEps)) repeated queries. Answers carry the
// summary's ε plus at most gridEps·n additional rank error — callers
// choose gridEps accordingly (ε/2 halves are the usual choice). Unlike
// the exact snapshots the Safe wrappers build, grid snapshots are
// opt-in: they change answers, so nothing routes through them
// implicitly.
func BuildGrid(s core.Summary, gridEps float64) *core.QuerySnapshot {
	qs := new(core.QuerySnapshot)
	AppendGrid(qs, s, gridEps)
	return qs
}

// AppendGrid overwrites qs with a grid snapshot of s (see BuildGrid),
// reusing qs's slice capacity. Callers own the single-writer protocol:
// qs must not be visible to concurrent readers during the rebuild.
func AppendGrid(qs *core.QuerySnapshot, s core.Summary, gridEps float64) {
	core.CheckEps(gridEps)
	qs.Reset()
	n := s.Count()
	qs.N = n
	if n <= 0 {
		return
	}
	phis := core.EvenPhis(gridEps)
	vals := core.QuantileBatch(s, phis)
	for i, v := range vals {
		key := core.TargetRank(phis[i], n)
		// Quantile rule: answer the first grid point whose target rank
		// reaches the queried target (key+1 > t ⇔ key ≥ t).
		qs.QVals = append(qs.QVals, v)
		qs.QKeys = append(qs.QKeys, key+1)
		// Rank rule: the target rank of the largest grid value < x.
		qs.RVals = append(qs.RVals, v)
		qs.RRanks = append(qs.RRanks, key)
	}
	qs.RStrict = true
}

// Cached is a single-goroutine caching view of a summary for
// query-heavy loops (benchmarks, batch report generation): it builds a
// snapshot on first query — exact when the summary implements
// core.Snapshotter, grid-based otherwise — and reuses it until the
// caller signals a write with Invalidate. For concurrent use, wrap the
// summary in a Safe* wrapper instead, which drives a Cache under its
// own locks.
// Being single-goroutine is also what lets Cached recycle: Invalidate
// only marks the snapshot stale, and the next query rebuilds *into the
// same QuerySnapshot*, reusing its column capacity — the allocation-free
// invalidate/rebuild cycle the Cache type must forgo (its retired
// snapshots may still be read lock-free).
type Cached struct {
	s       core.Summary
	gridEps float64
	qs      *core.QuerySnapshot
	stale   bool
}

// NewCached wraps s. gridEps bounds the extra rank error accepted for
// summaries without an exact flattening; it is unused when s implements
// core.Snapshotter.
func NewCached(s core.Summary, gridEps float64) *Cached {
	core.CheckEps(gridEps)
	return &Cached{s: s, gridEps: gridEps}
}

// Exact reports whether the cached snapshot reproduces the summary's
// answers bit for bit.
func (c *Cached) Exact() bool {
	_, ok := c.s.(core.Snapshotter)
	return ok
}

// Invalidate marks the snapshot stale; the next query rebuilds in
// place, reusing the retired snapshot's capacity.
func (c *Cached) Invalidate() { c.stale = true }

func (c *Cached) snapshot() *core.QuerySnapshot {
	if c.qs == nil {
		c.qs = new(core.QuerySnapshot)
		c.stale = true
	}
	if c.stale {
		if ss, ok := c.s.(core.Snapshotter); ok {
			ss.AppendQuerySnapshot(c.qs)
		} else {
			AppendGrid(c.qs, c.s, c.gridEps)
		}
		c.stale = false
	}
	return c.qs
}

// Quantile answers from the snapshot.
func (c *Cached) Quantile(phi float64) uint64 { return c.snapshot().Quantile(phi) }

// QuantileBatch answers from the snapshot.
func (c *Cached) QuantileBatch(phis []float64) []uint64 { return c.snapshot().QuantileBatch(phis) }

// Rank answers from the snapshot.
func (c *Cached) Rank(x uint64) int64 { return c.snapshot().Rank(x) }

// Count reports the live summary's count (snapshot N is the quantile
// target base, which for the sampling families is the total sample
// weight, not n).
func (c *Cached) Count() int64 { return c.s.Count() }
