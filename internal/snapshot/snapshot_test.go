package snapshot

import (
	"testing"

	"streamquantiles/internal/core"
)

// exactList is a toy summary over sorted distinct unit-weight values
// with exact answers, implementing both core.Summary and
// core.Snapshotter so every cache path can be pinned against ground
// truth. builds counts snapshot materializations; onBuild (optional)
// runs inside AppendQuerySnapshot, letting tests interleave a
// "concurrent" write mid-rebuild.
type exactList struct {
	vals    []uint64
	builds  int
	onBuild func()
}

func (e *exactList) Count() int64      { return int64(len(e.vals)) }
func (e *exactList) SpaceBytes() int64 { return int64(len(e.vals)) * 8 }

func (e *exactList) Rank(x uint64) int64 {
	var r int64
	for _, v := range e.vals {
		if v < x {
			r++
		}
	}
	return r
}

func (e *exactList) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if len(e.vals) == 0 {
		panic(core.ErrEmpty)
	}
	return e.vals[core.TargetRank(phi, int64(len(e.vals)))]
}

func (e *exactList) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	e.builds++
	if e.onBuild != nil {
		e.onBuild()
	}
	qs.Reset() // the Snapshotter contract: overwrite, reusing capacity
	n := int64(len(e.vals))
	qs.N = n
	for i, v := range e.vals {
		// Quantile rule: first QKeys[i] > target, so key i+1 answers
		// exactly target rank i. Rank rule (RStrict): largest RVals[i] < x
		// carries rank i+1, the count of values strictly below x.
		qs.QVals = append(qs.QVals, v)
		qs.QKeys = append(qs.QKeys, int64(i)+1)
		qs.RVals = append(qs.RVals, v)
		qs.RRanks = append(qs.RRanks, int64(i)+1)
	}
	qs.RStrict = true
}

func ramp(n int) []uint64 {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) * 10
	}
	return vals
}

// TestCacheProtocol walks the epoch protocol: empty cache misses, a
// rebuild serves until the next Invalidate, and queries between writes
// never rebuild.
func TestCacheProtocol(t *testing.T) {
	s := &exactList{vals: ramp(1000)}
	var c Cache
	if c.Current() != nil {
		t.Fatal("empty cache returned a snapshot")
	}
	qs := c.Rebuild(s)
	if qs == nil || s.builds != 1 {
		t.Fatalf("Rebuild built %d snapshots, want 1", s.builds)
	}
	if got := c.Current(); got != qs {
		t.Fatalf("Current() = %p after rebuild, want the rebuilt snapshot %p", got, qs)
	}
	for _, phi := range core.EvenPhis(0.1) {
		if got, want := qs.Quantile(phi), s.Quantile(phi); got != want {
			t.Errorf("snapshot Quantile(%v) = %d, exact %d", phi, got, want)
		}
	}
	for x := uint64(0); x < 10000; x += 7 {
		if got, want := qs.Rank(x), s.Rank(x); got != want {
			t.Errorf("snapshot Rank(%d) = %d, exact %d", x, got, want)
		}
	}
	if c.Current() != qs || s.builds != 1 {
		t.Fatal("repeated Current() calls must not rebuild")
	}
	before := c.Epoch()
	c.Invalidate()
	if c.Epoch() != before+1 {
		t.Fatalf("Invalidate bumped epoch to %d, want %d", c.Epoch(), before+1)
	}
	if c.Current() != nil {
		t.Fatal("Current() served a snapshot retired by Invalidate")
	}
	if c.Rebuild(s) == nil || s.builds != 2 {
		t.Fatalf("post-invalidate Rebuild built %d snapshots, want 2", s.builds)
	}
	if c.Current() == nil {
		t.Fatal("Current() nil after re-rebuild")
	}
}

// TestCacheRebuildRace pins the ordering argument: a write that lands
// while a rebuild is in flight (epoch bump between the epoch read and
// the store) must leave the stored entry invalid — the next reader
// rebuilds instead of serving the torn snapshot.
func TestCacheRebuildRace(t *testing.T) {
	var c Cache
	s := &exactList{vals: ramp(100)}
	s.onBuild = func() { c.Invalidate() } // "concurrent" write mid-build
	if qs := c.Rebuild(s); qs == nil {
		t.Fatal("Rebuild returned nil")
	}
	if c.Current() != nil {
		t.Fatal("Current() served a snapshot whose build a write overlapped")
	}
	s.onBuild = nil
	c.Rebuild(s)
	if c.Current() == nil {
		t.Fatal("clean rebuild after the race must serve again")
	}
}

// gridOnly hides the Snapshotter method so NewCached takes the grid
// path.
type gridOnly struct{ *exactList }

func (g gridOnly) AppendQuerySnapshot() {} // different signature: not a core.Snapshotter

// TestBuildGridRankError pins the grid fallback's documented bound:
// answers carry at most gridEps·n extra rank error, and the Cached
// wrapper reports exactness correctly for both kinds of summary.
func TestBuildGridRankError(t *testing.T) {
	s := &exactList{vals: ramp(2000)}
	n := float64(len(s.vals))
	gridEps := 0.01
	slack := int64(gridEps*n) + 1

	exact := NewCached(s, gridEps)
	if !exact.Exact() {
		t.Fatal("Snapshotter summary must cache exactly")
	}
	g := gridOnly{s}
	if _, ok := any(g).(core.Snapshotter); ok {
		t.Fatal("gridOnly must not implement core.Snapshotter")
	}
	grid := NewCached(g, gridEps)
	if grid.Exact() {
		t.Fatal("non-Snapshotter summary cannot cache exactly")
	}
	for _, phi := range core.EvenPhis(0.05) {
		want := s.Quantile(phi)
		if got := exact.Quantile(phi); got != want {
			t.Errorf("exact cached Quantile(%v) = %d, want %d", phi, got, want)
		}
		got := grid.Quantile(phi)
		// Rank distance between the grid answer and the exact answer.
		if d := s.Rank(got) - s.Rank(want); d > slack || d < -slack {
			t.Errorf("grid Quantile(%v) = %d is %d ranks from exact %d, want within %d", phi, got, d, want, slack)
		}
	}
	for x := uint64(0); x < 20000; x += 97 {
		want := s.Rank(x)
		if got := exact.Rank(x); got != want {
			t.Errorf("exact cached Rank(%d) = %d, want %d", x, got, want)
		}
		if got := grid.Rank(x); got-want > slack || want-got > slack {
			t.Errorf("grid Rank(%d) = %d, exact %d: off by more than %d", x, got, want, slack)
		}
	}
}

// BenchmarkCacheRebuild measures the concurrent Cache's rebuild path,
// which must allocate a fresh snapshot every time (retired snapshots
// may still be read lock-free, so their arrays cannot be reused).
func BenchmarkCacheRebuild(b *testing.B) {
	const n = 1 << 14
	s := &exactList{vals: ramp(n)}
	var c Cache
	b.SetBytes(n * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Invalidate()
		c.Rebuild(s)
	}
}

// BenchmarkCachedRebuild measures the single-goroutine Cached wrapper's
// invalidate/rebuild cycle, which rebuilds into the same QuerySnapshot:
// after warm-up the columns are at capacity and the steady state is
// allocation-free.
func BenchmarkCachedRebuild(b *testing.B) {
	const n = 1 << 14
	s := &exactList{vals: ramp(n)}
	c := NewCached(s, 0.01)
	c.Quantile(0.5) // warm the snapshot columns to capacity
	b.SetBytes(n * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Invalidate()
		c.Quantile(0.5)
	}
}

// TestCachedInvalidate pins the manual invalidation contract: queries
// reuse one snapshot until Invalidate, then rebuild against the
// summary's current state.
func TestCachedInvalidate(t *testing.T) {
	s := &exactList{vals: ramp(100)}
	c := NewCached(s, 0.01)
	before := c.Quantile(0.5)
	if s.builds != 1 {
		t.Fatalf("first query built %d snapshots, want 1", s.builds)
	}
	c.Quantile(0.9)
	c.Rank(500)
	c.QuantileBatch(core.EvenPhis(0.25))
	if s.builds != 1 {
		t.Fatalf("quiet queries rebuilt: %d builds", s.builds)
	}
	s.vals = ramp(1000) // mutate, then signal
	if got := c.Quantile(0.5); got != before {
		t.Fatalf("pre-invalidate query saw new state: %d", got)
	}
	c.Invalidate()
	if got, want := c.Quantile(0.5), s.Quantile(0.5); got != want {
		t.Fatalf("post-invalidate Quantile(0.5) = %d, want %d", got, want)
	}
	if s.builds != 2 {
		t.Fatalf("invalidate+query built %d snapshots total, want 2", s.builds)
	}
	if got, want := c.Count(), int64(1000); got != want {
		t.Fatalf("Count() = %d must read the live summary, want %d", got, want)
	}
}
