package harness

import (
	"time"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/gk"
	"streamquantiles/internal/kll"
	"streamquantiles/internal/streamgen"
	"streamquantiles/internal/window"
)

// Extension experiments: problem variations the paper's introduction
// surveys (biased quantiles, sliding windows) that this reproduction
// implements beyond the paper's own evaluation.
const (
	ExpExtBiased = "ext-biased"
	ExpExtWindow = "ext-window"
	ExpExtKLL    = "ext-kll"
)

// updatable is the slice of core.CashRegister the extension drivers need.
type updatable interface {
	Update(x uint64)
	Quantile(phi float64) uint64
	SpaceBytes() int64
}

// ExtBiased compares the biased summary against a uniform GK summary at
// the same ε across query fractions: the biased structure must be
// proportionally sharper at low φ for comparable space.
func ExtBiased(o Options) []Result {
	data, oracle := makeData(streamgen.Uniform{Bits: 24, Seed: o.Seed}, o.n())
	const eps = 0.05
	phis := []float64{0.0001, 0.001, 0.01, 0.1, 0.5}

	algos := []struct {
		name string
		s    updatable
	}{
		{"GKBiased", gk.NewBiased(eps)},
		{"GKArray", gk.NewArray(eps)},
	}

	var results []Result
	for _, a := range algos {
		start := time.Now()
		for _, x := range data {
			a.s.Update(x)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(data))
		for _, phi := range phis {
			if phi*float64(o.n()) < 2 {
				continue
			}
			got := a.s.Quantile(phi)
			absErr := oracle.QuantileError(got, phi)
			results = append(results, Result{
				Experiment: ExpExtBiased, Algo: a.name, Workload: "uniform(u=2^24)",
				N: int64(o.n()), Eps: eps, Phi: phi,
				SpaceBytes: a.s.SpaceBytes(), UpdateNs: ns,
				MaxErr: absErr,       // absolute rank error / n
				AvgErr: absErr / phi, // error relative to the target rank
			})
		}
	}
	return results
}

// ExtKLL pits the KLL sketch against Random and MRL99 — the lineage the
// study's findings fed into — across the ε sweep on the headline
// workload.
func ExtKLL(o Options) []Result {
	data, oracle := makeData(streamgen.MPCATLike{Seed: o.Seed}, o.n())
	algos := []CashBuilder{
		CashAlgo("MRL99"),
		CashAlgo("Random"),
		{Name: "KLL", New: func(eps float64, _ int, seed uint64) core.CashRegister {
			return kll.New(eps, seed)
		}},
	}
	var results []Result
	for _, eps := range cashEpsSweep(o.n()) {
		for _, a := range algos {
			m := average(true, o.repeats(), o.Seed, func(seed uint64) measured {
				return runCash(a, eps, 24, seed, data, oracle)
			})
			results = append(results, Result{
				Experiment: ExpExtKLL, Algo: a.Name, Workload: "mpcat-like",
				N: int64(o.n()), Eps: eps, Bits: 24,
				SpaceBytes: m.space, UpdateNs: m.updateNs,
				MaxErr: m.maxErr, AvgErr: m.avgErr,
			})
		}
	}
	return results
}

// ExtWindow measures the sliding-window summary against the exact
// content of its covered window after a distribution shift, across
// window sizes.
func ExtWindow(o Options) []Result {
	const eps = 0.02
	n := o.n()
	data := make([]uint64, 2*n)
	streamgen.Normal{Bits: 24, Sigma: 0.1, Seed: o.Seed}.Fill(data[:n])
	streamgen.MPCATLike{Seed: o.Seed + 1}.Fill(data[n:])

	var results []Result
	for _, wlen := range []int64{int64(n) / 8, int64(n) / 2} {
		if wlen < 100 {
			continue
		}
		w := window.New(eps, wlen, o.Seed)
		start := time.Now()
		for _, x := range data {
			w.Update(x)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(len(data))
		covered := w.Count()
		oracle := exact.New(data[int64(len(data))-covered:])
		phis := core.EvenPhis(eps)
		maxE, avgE := oracle.Evaluate(w.Quantiles(phis), phis)
		results = append(results, Result{
			Experiment: ExpExtWindow, Algo: "Windowed(Random)",
			Workload: "normal→mpcat shift", N: wlen, Eps: eps,
			SpaceBytes: w.SpaceBytes(), UpdateNs: ns,
			MaxErr: maxE, AvgErr: avgE,
		})
	}
	return results
}
