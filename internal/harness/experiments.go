package harness

import (
	"fmt"

	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/ols"
	"streamquantiles/internal/streamgen"
)

// Experiment identifiers, one per paper table/figure plus the ablations.
const (
	ExpFig5      = "fig5"  // cash register: ε vs error, space, time (5a–5f)
	ExpFig6      = "fig6"  // q-digest vs universe size (6a–6b)
	ExpFig7      = "fig7"  // varying stream length (7a–7b)
	ExpFig8      = "fig8"  // random vs sorted order (8)
	ExpTable3    = "tab3"  // tuning d, average error
	ExpTable4    = "tab4"  // tuning d, maximum error
	ExpFig9      = "fig9"  // Post: η tradeoff
	ExpFig10     = "fig10" // turnstile: ε vs error, space, time (10a–10e)
	ExpFig11     = "fig11" // turnstile vs universe size (11a–11b)
	ExpFig12     = "fig12" // turnstile vs skewness (12a–12b)
	ExpAblGK     = "abl-gk"
	ExpAblExact  = "abl-exact"
	ExpAblPostFB = "abl-postfb"
)

// AllExperiments lists every driver in report order.
func AllExperiments() []string {
	return []string{
		ExpFig5, ExpFig6, ExpFig7, ExpFig8,
		ExpTable3, ExpTable4, ExpFig9, ExpFig10, ExpFig11, ExpFig12,
		ExpAblGK, ExpAblExact, ExpAblPostFB,
		ExpExtBiased, ExpExtWindow, ExpExtKLL,
	}
}

// Run dispatches an experiment by identifier.
func Run(exp string, o Options) []Result {
	switch exp {
	case ExpFig5:
		return Fig5(o)
	case ExpFig6:
		return Fig6(o)
	case ExpFig7:
		return Fig7(o)
	case ExpFig8:
		return Fig8(o)
	case ExpTable3, ExpTable4:
		return Table3And4(o)
	case ExpFig9:
		return Fig9(o)
	case ExpFig10:
		return Fig10(o)
	case ExpFig11:
		return Fig11(o)
	case ExpFig12:
		return Fig12(o)
	case ExpAblGK:
		return AblationGKImpl(o)
	case ExpAblExact:
		return AblationExactLevels(o)
	case ExpAblPostFB:
		return AblationPostFallback(o)
	case ExpExtBiased:
		return ExtBiased(o)
	case ExpExtWindow:
		return ExtWindow(o)
	case ExpExtKLL:
		return ExtKLL(o)
	default:
		panic(fmt.Sprintf("harness: unknown experiment %q", exp))
	}
}

// cashEpsSweep is the ε grid of the cash-register experiments; the paper
// sweeps 10^-6…10^-2 at n up to 10^8, scaled here to stay meaningful at
// the default n (εn must remain ≫ 1).
func cashEpsSweep(n int) []float64 {
	sweep := []float64{0.05, 0.01, 0.002, 0.0005, 0.0001}
	var out []float64
	for _, e := range sweep {
		if e*float64(n) >= 10 {
			out = append(out, e)
		}
	}
	return out
}

// Fig5 measures every cash-register algorithm on the MPCAT-like workload
// across the ε sweep: the data behind Figures 5a–5f (ε vs actual errors,
// error–space, error–time, space–time).
func Fig5(o Options) []Result {
	data, oracle := makeData(streamgen.MPCATLike{Seed: o.Seed}, o.n())
	var results []Result
	for _, eps := range cashEpsSweep(o.n()) {
		for _, algo := range CashAlgos() {
			m := average(IsRandomized(algo.Name), o.repeats(), o.Seed,
				func(seed uint64) measured {
					return runCash(algo, eps, 24, seed, data, oracle)
				})
			results = append(results, Result{
				Experiment: ExpFig5, Algo: algo.Name, Workload: "mpcat-like",
				N: int64(o.n()), Eps: eps, Bits: 24,
				SpaceBytes: m.space, UpdateNs: m.updateNs,
				MaxErr: m.maxErr, AvgErr: m.avgErr,
			})
		}
	}
	return results
}

// Fig6 varies the universe size on normally distributed data and pits
// FastQDigest against the best deterministic and randomized
// comparison-based algorithms (which are unaffected by u): Figures 6a–6b.
func Fig6(o Options) []Result {
	var results []Result
	for _, bits := range []int{16, 24, 32} {
		data, oracle := makeData(streamgen.Normal{Bits: bits, Sigma: 0.15, Seed: o.Seed}, o.n())
		for _, name := range []string{"FastQDigest", "GKAdaptive", "Random"} {
			algo := CashAlgo(name)
			for _, eps := range []float64{0.01, 0.001} {
				if eps*float64(o.n()) < 10 {
					continue
				}
				m := average(IsRandomized(name), o.repeats(), o.Seed,
					func(seed uint64) measured {
						return runCash(algo, eps, bits, seed, data, oracle)
					})
				results = append(results, Result{
					Experiment: ExpFig6, Algo: name,
					Workload: fmt.Sprintf("normal(σ=0.15,u=2^%d)", bits),
					N:        int64(o.n()), Eps: eps, Bits: bits,
					SpaceBytes: m.space, UpdateNs: m.updateNs,
					MaxErr: m.maxErr, AvgErr: m.avgErr,
				})
			}
		}
	}
	return results
}

// Fig7 varies the stream length on uniform data with u = 2^32 and a
// fixed ε, recording time and space: Figures 7a–7b. The paper sweeps
// 10^7–10^10; the sweep here is o.n()/16 … o.n() (same decade span at
// laptop scale).
func Fig7(o Options) []Result {
	var results []Result
	eps := 0.001
	for eps*float64(o.n())/16 < 10 && eps < 0.2 {
		eps *= 5 // keep εn meaningful at small test scales
	}
	for _, n := range []int{o.n() / 16, o.n() / 4, o.n()} {
		if n < 64 {
			continue
		}
		data, oracle := makeData(streamgen.Uniform{Bits: 32, Seed: o.Seed}, n)
		for _, algo := range CashAlgos() {
			m := average(IsRandomized(algo.Name), o.repeats(), o.Seed,
				func(seed uint64) measured {
					return runCash(algo, eps, 32, seed, data, oracle)
				})
			results = append(results, Result{
				Experiment: ExpFig7, Algo: algo.Name, Workload: "uniform(u=2^32)",
				N: int64(n), Eps: eps, Bits: 32,
				SpaceBytes: m.space, UpdateNs: m.updateNs,
				MaxErr: m.maxErr, AvgErr: m.avgErr,
			})
		}
	}
	return results
}

// Fig8 compares random against sorted arrival order on uniform data:
// Figure 8. Sorted order is the adversarial case for the GK family.
func Fig8(o Options) []Result {
	var results []Result
	gens := []streamgen.Generator{
		streamgen.Uniform{Bits: 32, Seed: o.Seed},
		streamgen.Sorted{Inner: streamgen.Uniform{Bits: 32, Seed: o.Seed}},
	}
	orders := []string{"random", "sorted"}
	eps := 0.001
	if eps*float64(o.n()) < 10 {
		eps = 0.01
	}
	for gi, g := range gens {
		data, oracle := makeData(g, o.n())
		for _, algo := range CashAlgos() {
			m := average(IsRandomized(algo.Name), o.repeats(), o.Seed,
				func(seed uint64) measured {
					return runCash(algo, eps, 32, seed, data, oracle)
				})
			results = append(results, Result{
				Experiment: ExpFig8, Algo: algo.Name, Workload: orders[gi],
				N: int64(o.n()), Eps: eps, Bits: 32,
				SpaceBytes: m.space, UpdateNs: m.updateNs,
				MaxErr: m.maxErr, AvgErr: m.avgErr,
			})
		}
	}
	return results
}

// Table3And4 tunes the Count-Sketch depth d for DCS on uniform data with
// u = 2^32, reporting average (Table 3) and maximum (Table 4) errors for
// each (per-level sketch size, d) cell.
func Table3And4(o Options) []Result {
	data, oracle := makeData(streamgen.Uniform{Bits: 32, Seed: o.Seed}, o.n())
	var results []Result
	for _, kb := range []int{64, 128, 256, 512, 1024} {
		counters := kb * 1024 / 4 // 4-byte counters per level
		for _, d := range []int{3, 5, 7, 9, 11, 13} {
			w := counters / d
			if w < 1 {
				continue
			}
			m := average(true, o.repeats(), o.Seed, func(seed uint64) measured {
				cfg := dyadic.Config{Width: w, Depth: d, Seed: seed}
				return runTurn(TurnBuilder{Name: "DCS", Kind: dyadic.DCS}, 0.001, 32, cfg, data, oracle)
			})
			results = append(results, Result{
				Experiment: ExpTable3, Algo: "DCS", Workload: "uniform(u=2^32)",
				N: int64(o.n()), Bits: 32, D: d, SketchKB: kb,
				SpaceBytes: m.space, UpdateNs: m.updateNs,
				MaxErr: m.maxErr, AvgErr: m.avgErr,
			})
		}
	}
	return results
}

// Fig9 sweeps the truncation factor η of the post-processing for several
// ε, reporting the tree size relative to the DCS sketch and the error
// relative to raw DCS: Figure 9.
func Fig9(o Options) []Result {
	data, oracle := makeData(streamgen.MPCATLike{Seed: o.Seed}, o.n())
	var results []Result
	for _, eps := range []float64{0.1, 0.01, 0.001} {
		if eps*float64(o.n()) < 10 {
			continue
		}
		for _, eta := range []float64{1, 0.5, 0.2, 0.1, 0.05, 0.02} {
			var treeRel, errRel, postAvg float64
			reps := o.repeats()
			for r := 0; r < reps; r++ {
				seed := o.Seed + uint64(r)*7919
				s := dyadic.New(dyadic.DCS, eps, 24, dyadic.Config{Seed: seed})
				for _, x := range data {
					s.Insert(x)
				}
				_, rawAvg := oracle.EvaluateSummary(s, eps)
				p := ols.Process(s, eta)
				_, pAvg := oracle.EvaluateSummary(p, eps)
				counters := float64(s.SpaceBytes()) / 4
				treeRel += float64(p.TreeNodes()) / counters
				if rawAvg > 0 {
					errRel += pAvg / rawAvg
				} else {
					errRel += 1
				}
				postAvg += pAvg
			}
			results = append(results, Result{
				Experiment: ExpFig9, Algo: "Post", Workload: "mpcat-like",
				N: int64(o.n()), Eps: eps, Bits: 24, Eta: eta,
				AvgErr:  postAvg / float64(reps),
				TreeRel: treeRel / float64(reps),
				ErrRel:  errRel / float64(reps),
			})
		}
	}
	return results
}

// turnEpsSweep is the ε grid of the turnstile experiments.
func turnEpsSweep(n int) []float64 {
	sweep := []float64{0.05, 0.01, 0.002}
	var out []float64
	for _, e := range sweep {
		if e*float64(n) >= 10 {
			out = append(out, e)
		}
	}
	return out
}

// Fig10 measures DCM, DCS and Post on the MPCAT-like workload across the
// ε sweep: the data behind Figures 10a–10e.
func Fig10(o Options) []Result {
	data, oracle := makeData(streamgen.MPCATLike{Seed: o.Seed}, o.n())
	return turnSweep(ExpFig10, "mpcat-like", 24, data, oracle, o)
}

// Fig11 varies the universe size on normal data (σ = 0.15): Figures
// 11a–11b.
func Fig11(o Options) []Result {
	var results []Result
	for _, bits := range []int{16, 32} {
		data, oracle := makeData(streamgen.Normal{Bits: bits, Sigma: 0.15, Seed: o.Seed}, o.n())
		results = append(results,
			turnSweep(ExpFig11, fmt.Sprintf("normal(σ=0.15,u=2^%d)", bits), bits, data, oracle, o)...)
	}
	return results
}

// Fig12 varies the skew of normal data (σ = 0.05 vs 0.25) over u = 2^24:
// Figures 12a–12b.
func Fig12(o Options) []Result {
	var results []Result
	for _, sigma := range []float64{0.05, 0.25} {
		data, oracle := makeData(streamgen.Normal{Bits: 24, Sigma: sigma, Seed: o.Seed}, o.n())
		rs := turnSweep(ExpFig12, fmt.Sprintf("normal(σ=%g,u=2^24)", sigma), 24, data, oracle, o)
		for i := range rs {
			rs[i].Sigma = sigma
		}
		results = append(results, rs...)
	}
	return results
}

func turnSweep(exp, workload string, bits int, data []uint64, oracle *exact.Oracle, o Options) []Result {
	var results []Result
	for _, eps := range turnEpsSweep(o.n()) {
		for _, algo := range TurnAlgos() {
			algo := algo
			m := average(true, o.repeats(), o.Seed, func(seed uint64) measured {
				return runTurn(algo, eps, bits, dyadic.Config{Seed: seed}, data, oracle)
			})
			results = append(results, Result{
				Experiment: exp, Algo: algo.Name, Workload: workload,
				N: int64(len(data)), Eps: eps, Bits: bits,
				SpaceBytes: m.space, UpdateNs: m.updateNs,
				MaxErr: m.maxErr, AvgErr: m.avgErr,
			})
		}
	}
	return results
}

// AblationGKImpl isolates the data-structure choice inside the GK
// summary (tree+heap vs buffered array) at small ε, where cache effects
// dominate — the mechanism behind Figure 5f.
func AblationGKImpl(o Options) []Result {
	data, oracle := makeData(streamgen.Uniform{Bits: 32, Seed: o.Seed}, o.n())
	var results []Result
	for _, name := range []string{"GKAdaptive", "GKArray"} {
		algo := CashAlgo(name)
		for _, eps := range cashEpsSweep(o.n()) {
			m := runCash(algo, eps, 32, o.Seed, data, oracle)
			results = append(results, Result{
				Experiment: ExpAblGK, Algo: name, Workload: "uniform(u=2^32)",
				N: int64(o.n()), Eps: eps, Bits: 32,
				SpaceBytes: m.space, UpdateNs: m.updateNs,
				MaxErr: m.maxErr, AvgErr: m.avgErr,
			})
		}
	}
	return results
}

// AblationExactLevels quantifies the value of keeping exact counts on
// the shallow dyadic levels instead of sketching everything.
func AblationExactLevels(o Options) []Result {
	data, oracle := makeData(streamgen.MPCATLike{Seed: o.Seed}, o.n())
	var results []Result
	for _, noExact := range []bool{false, true} {
		label := "exact-levels"
		if noExact {
			label = "all-sketched"
		}
		m := average(true, o.repeats(), o.Seed, func(seed uint64) measured {
			cfg := dyadic.Config{Seed: seed, NoExactLevels: noExact}
			return runTurn(TurnBuilder{Name: "DCS", Kind: dyadic.DCS}, 0.01, 24, cfg, data, oracle)
		})
		results = append(results, Result{
			Experiment: ExpAblExact, Algo: "DCS", Workload: label,
			N: int64(o.n()), Eps: 0.01, Bits: 24,
			SpaceBytes: m.space, UpdateNs: m.updateNs,
			MaxErr: m.maxErr, AvgErr: m.avgErr,
		})
	}
	return results
}

// AblationPostFallback compares Post's raw-sketch fallback for intervals
// outside the truncated tree against treating them as zero.
func AblationPostFallback(o Options) []Result {
	data, oracle := makeData(streamgen.MPCATLike{Seed: o.Seed}, o.n())
	var results []Result
	const eps = 0.01
	for _, noFB := range []bool{false, true} {
		label := "raw-fallback"
		if noFB {
			label = "zero-fallback"
		}
		var maxE, avgE float64
		reps := o.repeats()
		for r := 0; r < reps; r++ {
			seed := o.Seed + uint64(r)*7919
			s := dyadic.New(dyadic.DCS, eps, 24, dyadic.Config{Seed: seed})
			for _, x := range data {
				s.Insert(x)
			}
			var p *ols.Post
			if noFB {
				p = ols.ProcessNoFallback(s, ols.DefaultEta)
			} else {
				p = ols.Process(s, ols.DefaultEta)
			}
			mE, aE := oracle.EvaluateSummary(p, eps)
			maxE += mE
			avgE += aE
		}
		results = append(results, Result{
			Experiment: ExpAblPostFB, Algo: "Post", Workload: label,
			N: int64(o.n()), Eps: eps, Bits: 24,
			MaxErr: maxE / float64(reps), AvgErr: avgE / float64(reps),
		})
	}
	return results
}
