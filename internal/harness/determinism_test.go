package harness

import "testing"

// TestExperimentsDeterministic: the reproducibility contract — the same
// Options produce identical measurement tables (timing columns aside).
func TestExperimentsDeterministic(t *testing.T) {
	opts := Options{N: 8000, Seed: 77, Repeats: 1}
	for _, exp := range []string{ExpFig5, ExpFig10, ExpFig9} {
		a := Run(exp, opts)
		b := Run(exp, opts)
		if len(a) != len(b) {
			t.Fatalf("%s: run sizes differ", exp)
		}
		for i := range a {
			x, y := a[i], b[i]
			if x.Algo != y.Algo || x.Eps != y.Eps || x.MaxErr != y.MaxErr ||
				x.AvgErr != y.AvgErr || x.SpaceBytes != y.SpaceBytes ||
				x.TreeRel != y.TreeRel || x.ErrRel != y.ErrRel {
				t.Errorf("%s row %d: %+v vs %+v", exp, i, x, y)
			}
		}
	}
}

// TestSeedChangesResults: different seeds must actually change the
// randomized measurements (guards against a silently ignored seed).
func TestSeedChangesResults(t *testing.T) {
	a := Run(ExpFig10, Options{N: 8000, Seed: 1, Repeats: 1})
	b := Run(ExpFig10, Options{N: 8000, Seed: 2, Repeats: 1})
	same := true
	for i := range a {
		if a[i].MaxErr != b[i].MaxErr || a[i].AvgErr != b[i].AvgErr {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical randomized measurements")
	}
}
