package harness

import "testing"

func TestExtBiasedShape(t *testing.T) {
	results := ExtBiased(Options{N: 50000, Seed: 21, Repeats: 1})
	rel := map[string]map[float64]float64{}
	for _, r := range results {
		if rel[r.Algo] == nil {
			rel[r.Algo] = map[float64]float64{}
		}
		rel[r.Algo][r.Phi] = r.AvgErr // error relative to target rank
	}
	// The biased summary's relative error must stay bounded at low φ…
	for phi, e := range rel["GKBiased"] {
		if e > 0.2 {
			t.Errorf("GKBiased err/phi at phi=%g is %v; relative guarantee broken", phi, e)
		}
	}
	// …and must beat the uniform summary at the lowest φ measured.
	lowest := 1.0
	for phi := range rel["GKBiased"] {
		if phi < lowest {
			lowest = phi
		}
	}
	if rel["GKBiased"][lowest] >= rel["GKArray"][lowest] && rel["GKArray"][lowest] > 0 {
		t.Errorf("at phi=%g biased (%v) not sharper than uniform (%v)",
			lowest, rel["GKBiased"][lowest], rel["GKArray"][lowest])
	}
}

func TestExtWindowShape(t *testing.T) {
	results := ExtWindow(Options{N: 40000, Seed: 22, Repeats: 1})
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if r.MaxErr > r.Eps {
			t.Errorf("window %d: max error %v exceeds ε=%v", r.N, r.MaxErr, r.Eps)
		}
		if r.SpaceBytes <= 0 || r.UpdateNs <= 0 {
			t.Errorf("window %d: non-positive measurements", r.N)
		}
	}
}
