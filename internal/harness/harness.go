// Package harness drives the experimental study: it runs every algorithm
// over the paper's workloads, takes the five measurements of §4.1.2
// (space, update time, ε, actual maximum error, actual average error),
// and renders the tables and figure series of the evaluation section.
//
// Every figure and table of the paper has one driver here (Fig5 … Fig12,
// Table3And4) plus three ablations the reproduction adds; the drivers are
// invoked both by cmd/quantbench and by the testing.B benchmarks in the
// repository root. All runs are deterministic given Options.Seed.
package harness

import (
	"fmt"
	"time"

	"streamquantiles/internal/core"
	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/gk"
	"streamquantiles/internal/mrl"
	"streamquantiles/internal/ols"
	"streamquantiles/internal/qdigest"
	"streamquantiles/internal/randalg"
	"streamquantiles/internal/streamgen"
)

// Result is one measured (algorithm, workload, parameters) point.
type Result struct {
	Experiment string
	Algo       string
	Workload   string
	N          int64
	Eps        float64
	Bits       int     // universe bits, when swept
	Sigma      float64 // normal σ, when swept
	D          int     // sketch depth, when swept
	Eta        float64 // Post truncation factor, when swept
	SketchKB   int     // per-level sketch size, when swept
	Phi        float64 // query fraction, when swept (extension experiments)

	SpaceBytes int64   // maximum over the stream
	UpdateNs   float64 // mean wall-clock time per element
	MaxErr     float64 // Kolmogorov–Smirnov divergence
	AvgErr     float64
	TreeRel    float64 // Fig9: |T̂| relative to sketch counters
	ErrRel     float64 // Fig9: Post error relative to raw DCS
}

// Options control workload scale. The paper streams 10^7–10^10 elements;
// the defaults here are laptop-scale and every driver honors N.
type Options struct {
	// N is the stream length; 0 selects 200 000.
	N int
	// Seed derives all workload and algorithm randomness.
	Seed uint64
	// Repeats averages randomized algorithms over this many seeds
	// (the paper uses 100); 0 selects 3.
	Repeats int
}

func (o Options) n() int {
	if o.N <= 0 {
		return 200_000
	}
	return o.N
}

func (o Options) repeats() int {
	if o.Repeats <= 0 {
		return 3
	}
	return o.Repeats
}

// spacePollEvery is the update interval between SpaceBytes samples when
// tracking an algorithm's maximum footprint.
const spacePollEvery = 1024

// CashBuilder constructs a cash-register summary for a given error
// parameter, universe size and seed.
type CashBuilder struct {
	Name string
	New  func(eps float64, bits int, seed uint64) core.CashRegister
}

// CashAlgos returns the six cash-register algorithms of the study.
func CashAlgos() []CashBuilder {
	return []CashBuilder{
		{"GKAdaptive", func(eps float64, _ int, _ uint64) core.CashRegister { return gk.NewAdaptive(eps) }},
		{"GKTheory", func(eps float64, _ int, _ uint64) core.CashRegister { return gk.NewTheory(eps) }},
		{"GKArray", func(eps float64, _ int, _ uint64) core.CashRegister { return gk.NewArray(eps) }},
		{"FastQDigest", func(eps float64, bits int, _ uint64) core.CashRegister { return qdigest.New(eps, bits) }},
		{"MRL99", func(eps float64, _ int, seed uint64) core.CashRegister { return mrl.New(eps, seed) }},
		{"Random", func(eps float64, _ int, seed uint64) core.CashRegister { return randalg.New(eps, seed) }},
	}
}

// CashAlgo returns one builder by name.
func CashAlgo(name string) CashBuilder {
	for _, a := range CashAlgos() {
		if a.Name == name {
			return a
		}
	}
	panic(fmt.Sprintf("harness: unknown cash-register algorithm %q", name))
}

// IsRandomized reports whether the named algorithm needs seed averaging.
func IsRandomized(name string) bool {
	switch name {
	case "MRL99", "Random", "DCM", "DCS", "Post", "DRSS":
		return true
	}
	return false
}

// TurnBuilder constructs a turnstile summary; Post wraps the summary at
// query time.
type TurnBuilder struct {
	Name string
	Kind dyadic.Kind
	Post bool
}

// TurnAlgos returns the turnstile algorithms of §4.3: DCM, DCS, and DCS
// with post-processing.
func TurnAlgos() []TurnBuilder {
	return []TurnBuilder{
		{Name: "DCM", Kind: dyadic.DCM},
		{Name: "DCS", Kind: dyadic.DCS},
		{Name: "Post", Kind: dyadic.DCS, Post: true},
	}
}

// measured bundles the raw measurements of one streaming run.
type measured struct {
	space    int64
	updateNs float64
	maxErr   float64
	avgErr   float64
}

// runCash streams data into a fresh summary and takes all measurements.
func runCash(b CashBuilder, eps float64, bits int, seed uint64,
	data []uint64, oracle *exact.Oracle) measured {
	s := b.New(eps, bits, seed)
	start := time.Now()
	var space int64
	for i, x := range data {
		s.Update(x)
		if i%spacePollEvery == 0 {
			if sp := s.SpaceBytes(); sp > space {
				space = sp
			}
		}
	}
	elapsed := time.Since(start)
	if sp := s.SpaceBytes(); sp > space {
		space = sp
	}
	maxE, avgE := oracle.EvaluateSummary(s, eps)
	return measured{
		space:    space,
		updateNs: float64(elapsed.Nanoseconds()) / float64(len(data)),
		maxErr:   maxE,
		avgErr:   avgE,
	}
}

// runTurn streams data (insert-only: the algorithms behave identically
// with deletions, §4.3) into a dyadic sketch, optionally post-processes,
// and measures.
func runTurn(b TurnBuilder, eps float64, bits int, cfg dyadic.Config,
	data []uint64, oracle *exact.Oracle) measured {
	s := dyadic.New(b.Kind, eps, bits, cfg)
	start := time.Now()
	for _, x := range data {
		s.Insert(x)
	}
	elapsed := time.Since(start)
	var q core.Summary = s
	if b.Post {
		q = ols.Process(s, ols.DefaultEta)
	}
	maxE, avgE := oracle.EvaluateSummary(q, eps)
	return measured{
		space:    s.SpaceBytes(),
		updateNs: float64(elapsed.Nanoseconds()) / float64(len(data)),
		maxErr:   maxE,
		avgErr:   avgE,
	}
}

// average runs fn over `repeats` seeds and averages the measurements;
// deterministic algorithms run once.
func average(randomized bool, repeats int, seed uint64, fn func(seed uint64) measured) measured {
	if !randomized {
		return fn(seed)
	}
	var acc measured
	for r := 0; r < repeats; r++ {
		m := fn(seed + uint64(r)*7919)
		acc.space += m.space
		acc.updateNs += m.updateNs
		acc.maxErr += m.maxErr
		acc.avgErr += m.avgErr
	}
	f := float64(repeats)
	return measured{
		space:    acc.space / int64(repeats),
		updateNs: acc.updateNs / f,
		maxErr:   acc.maxErr / f,
		avgErr:   acc.avgErr / f,
	}
}

// makeData generates a workload and its ground-truth oracle.
func makeData(g streamgen.Generator, n int) ([]uint64, *exact.Oracle) {
	data := streamgen.Generate(g, n)
	return data, exact.New(data)
}
