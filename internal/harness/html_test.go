package harness

import (
	"strings"
	"testing"
)

func TestRenderHTMLPage(t *testing.T) {
	results := Fig5(Options{N: 10000, Seed: 1, Repeats: 1})
	SortResults(results)
	page := RenderHTMLPage([]HTMLSection{{Exp: ExpFig5, Results: results}}, "test run")
	for _, want := range []string{
		"<!DOCTYPE html>", "GKArray", "Figures 5a–5f", "test run", "</html>",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Every result is one table row.
	if got := strings.Count(page, "<tr>") - 1; got != len(results) {
		t.Errorf("%d rows for %d results", got, len(results))
	}
}

func TestRenderHTMLEscapes(t *testing.T) {
	rs := []Result{{Experiment: ExpFig5, Algo: "<script>", Workload: "w"}}
	page := RenderHTMLPage([]HTMLSection{{Exp: ExpFig5, Results: rs}}, "s")
	if strings.Contains(page, "<script>") {
		t.Error("unescaped HTML in output")
	}
}
