package harness

import (
	"fmt"
	"html"
	"strings"
)

// RenderHTMLPage assembles a self-contained results page from a set of
// experiment runs — the reproduction's stand-in for the interactive
// results site the paper pointed readers to (quantiles.github.com).
// sections preserves insertion order: each entry is (experiment id,
// results).
type HTMLSection struct {
	Exp     string
	Results []Result
}

// RenderHTMLPage renders the full page.
func RenderHTMLPage(sections []HTMLSection, subtitle string) string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Quantiles over data streams — reproduction results</title>
<style>
 body { font: 15px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #1a1a1a; }
 h1 { font-size: 1.5rem; }
 h2 { font-size: 1.1rem; margin-top: 2.5rem; border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
 p.paper { color: #444; background: #f6f6f6; padding: .6rem .8rem; border-left: 3px solid #888; }
 table { border-collapse: collapse; margin: .8rem 0; }
 th, td { padding: .25rem .7rem; text-align: right; font-variant-numeric: tabular-nums; }
 th { background: #f0f0f0; }
 td:first-child, th:first-child { text-align: left; }
 tr:nth-child(even) td { background: #fafafa; }
</style>
</head>
<body>
<h1>Quantiles over data streams: an experimental study — reproduction results</h1>
`)
	fmt.Fprintf(&b, "<p>%s</p>\n", html.EscapeString(subtitle))
	titles := Titles()
	expectations := PaperExpectations()
	for _, sec := range sections {
		fmt.Fprintf(&b, "<h2 id=%q>%s</h2>\n", html.EscapeString(sec.Exp),
			html.EscapeString(titles[sec.Exp]))
		fmt.Fprintf(&b, "<p class=\"paper\"><strong>Paper:</strong> %s</p>\n",
			html.EscapeString(expectations[sec.Exp]))
		b.WriteString(renderHTMLTable(sec.Exp, sec.Results))
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

func renderHTMLTable(exp string, results []Result) string {
	cols := columnsFor(exp)
	var b strings.Builder
	b.WriteString("<table>\n<tr>")
	for _, c := range cols {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(c.head))
	}
	b.WriteString("</tr>\n")
	for _, r := range results {
		b.WriteString("<tr>")
		for _, c := range cols {
			fmt.Fprintf(&b, "<td>%s</td>", html.EscapeString(c.get(r)))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	return b.String()
}
