package harness

import (
	"fmt"
	"math"
	"strings"
)

// feq is bit-exact float64 equality, for matching result rows against
// the exact configuration values they were recorded with. Results carry
// configured parameters (ε, η, σ) verbatim, so tolerance comparison
// would be wrong here — 0.01 must not match 0.05-derived values.
func feq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// Claim is one qualitative statement from the paper's evaluation,
// checked programmatically against a fresh set of measurements.
type Claim struct {
	ID        string
	Statement string // the paper's claim, paraphrased
	Check     func(byExp map[string][]Result) (ok bool, detail string)
}

// VerifyResult is the outcome of checking one claim.
type VerifyResult struct {
	Claim  Claim
	OK     bool
	Detail string
}

// sortFloats orders a small float slice ascending.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// runAll measures every experiment once for claim checking.
func runAll(o Options) map[string][]Result {
	byExp := map[string][]Result{}
	for _, exp := range AllExperiments() {
		byExp[exp] = Run(exp, o)
	}
	return byExp
}

// find returns the first result matching the predicate, or false.
func find(rs []Result, pred func(Result) bool) (Result, bool) {
	for _, r := range rs {
		if pred(r) {
			return r, true
		}
	}
	return Result{}, false
}

// Claims returns the paper's checkable shape claims.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "deterministic-eps",
			Statement: "§4.2.1: deterministic algorithms never exceed the ε guarantee",
			Check: func(m map[string][]Result) (bool, string) {
				for _, r := range m[ExpFig5] {
					if !IsRandomized(r.Algo) && r.MaxErr > r.Eps {
						return false, fmt.Sprintf("%s at ε=%g has max error %.4g", r.Algo, r.Eps, r.MaxErr)
					}
				}
				return true, "all deterministic max errors ≤ ε"
			},
		},
		{
			ID:        "deterministic-avg-band",
			Statement: "§4.2.1: deterministic average errors fall well below ε (≈ ε/4…2ε/3)",
			Check: func(m map[string][]Result) (bool, string) {
				for _, r := range m[ExpFig5] {
					if !IsRandomized(r.Algo) && r.Algo != "FastQDigest" && r.AvgErr > 0.9*r.Eps {
						return false, fmt.Sprintf("%s at ε=%g has avg error %.4g", r.Algo, r.Eps, r.AvgErr)
					}
				}
				return true, "deterministic averages below 0.9ε"
			},
		},
		{
			ID:        "randomized-below-eps",
			Statement: "§4.2.1: MRL99 and Random observed errors are much smaller than ε",
			Check: func(m map[string][]Result) (bool, string) {
				for _, r := range m[ExpFig5] {
					if (r.Algo == "MRL99" || r.Algo == "Random") && r.MaxErr > r.Eps {
						return false, fmt.Sprintf("%s at ε=%g has max error %.4g", r.Algo, r.Eps, r.MaxErr)
					}
				}
				return true, "randomized max errors below ε throughout"
			},
		},
		{
			ID:        "qdigest-most-space",
			Statement: "§4.2.2: FastQDigest uses the largest space among cash-register algorithms",
			Check: func(m map[string][]Result) (bool, string) {
				// Checked at the two largest ε of the sweep: at tiny εn the
				// pre-allocated buffers of MRL99/Random are an artifact of
				// running far below paper scale.
				epsSeen := map[float64]bool{}
				for _, r := range m[ExpFig5] {
					epsSeen[r.Eps] = true
				}
				var top []float64
				for e := range epsSeen {
					top = append(top, e)
				}
				sortFloats(top)
				if len(top) > 2 {
					top = top[len(top)-2:]
				}
				for _, eps := range top {
					var worst Result
					for _, r := range m[ExpFig5] {
						if feq(r.Eps, eps) && r.SpaceBytes > worst.SpaceBytes {
							worst = r
						}
					}
					if worst.Algo != "FastQDigest" {
						return false, fmt.Sprintf("at ε=%g the largest summary is %s", eps, worst.Algo)
					}
				}
				return true, "FastQDigest largest at the checked ε values"
			},
		},
		{
			ID:        "gkarray-faster-than-gkadaptive",
			Statement: "§2.1.2/§4.2.3: GKArray updates much faster than GKAdaptive at small ε",
			Check: func(m map[string][]Result) (bool, string) {
				var minEps float64 = 1
				for _, r := range m[ExpFig5] {
					if r.Eps < minEps {
						minEps = r.Eps
					}
				}
				arr, ok1 := find(m[ExpFig5], func(r Result) bool { return r.Algo == "GKArray" && feq(r.Eps, minEps) })
				ada, ok2 := find(m[ExpFig5], func(r Result) bool { return r.Algo == "GKAdaptive" && feq(r.Eps, minEps) })
				if !ok1 || !ok2 {
					return false, "missing rows"
				}
				if arr.UpdateNs*2 > ada.UpdateNs {
					return false, fmt.Sprintf("GKArray %.0fns vs GKAdaptive %.0fns at ε=%g",
						arr.UpdateNs, ada.UpdateNs, minEps)
				}
				return true, fmt.Sprintf("GKArray %.0fns vs GKAdaptive %.0fns at ε=%g",
					arr.UpdateNs, ada.UpdateNs, minEps)
			},
		},
		{
			ID:        "qdigest-universe-sensitivity",
			Statement: "§4.2.4: q-digest grows with log u while the comparison-based algorithms do not",
			Check: func(m map[string][]Result) (bool, string) {
				small, ok1 := find(m[ExpFig6], func(r Result) bool { return r.Algo == "FastQDigest" && r.Bits == 16 && feq(r.Eps, 0.01) })
				large, ok2 := find(m[ExpFig6], func(r Result) bool { return r.Algo == "FastQDigest" && r.Bits == 32 && feq(r.Eps, 0.01) })
				gkS, ok3 := find(m[ExpFig6], func(r Result) bool { return r.Algo == "GKAdaptive" && r.Bits == 16 && feq(r.Eps, 0.01) })
				gkL, ok4 := find(m[ExpFig6], func(r Result) bool { return r.Algo == "GKAdaptive" && r.Bits == 32 && feq(r.Eps, 0.01) })
				if !ok1 || !ok2 || !ok3 || !ok4 {
					return false, "missing rows"
				}
				if large.SpaceBytes <= small.SpaceBytes {
					return false, "q-digest did not grow with u"
				}
				ratio := float64(gkL.SpaceBytes) / float64(gkS.SpaceBytes)
				if ratio > 1.5 || ratio < 0.67 {
					return false, fmt.Sprintf("GKAdaptive space changed %0.2fx with u", ratio)
				}
				return true, fmt.Sprintf("q-digest %s→%s, GK ~flat", fmtBytes(small.SpaceBytes), fmtBytes(large.SpaceBytes))
			},
		},
		{
			ID:        "flat-in-n",
			Statement: "§4.2.5: update time and space are essentially flat in stream length",
			Check: func(m map[string][]Result) (bool, string) {
				byAlgo := map[string][]Result{}
				for _, r := range m[ExpFig7] {
					byAlgo[r.Algo] = append(byAlgo[r.Algo], r)
				}
				for algo, rs := range byAlgo {
					if len(rs) < 3 {
						continue
					}
					mid, last := rs[len(rs)-2], rs[len(rs)-1]
					if float64(last.SpaceBytes) > 4*float64(mid.SpaceBytes) {
						return false, fmt.Sprintf("%s space grew %s→%s over a 4× n step",
							algo, fmtBytes(mid.SpaceBytes), fmtBytes(last.SpaceBytes))
					}
				}
				return true, "space within 4× across a 4× n step for every algorithm"
			},
		},
		{
			ID:        "sorted-order-hurts-gk",
			Statement: "§4.2.5/Fig 8: sorted arrival order inflates GK summaries; Random is untouched",
			Check: func(m map[string][]Result) (bool, string) {
				gkR, ok1 := find(m[ExpFig8], func(r Result) bool { return r.Algo == "GKAdaptive" && r.Workload == "random" })
				gkS, ok2 := find(m[ExpFig8], func(r Result) bool { return r.Algo == "GKAdaptive" && r.Workload == "sorted" })
				rndR, ok3 := find(m[ExpFig8], func(r Result) bool { return r.Algo == "Random" && r.Workload == "random" })
				rndS, ok4 := find(m[ExpFig8], func(r Result) bool { return r.Algo == "Random" && r.Workload == "sorted" })
				if !ok1 || !ok2 || !ok3 || !ok4 {
					return false, "missing rows"
				}
				if gkS.SpaceBytes <= gkR.SpaceBytes {
					return false, "sorted order did not inflate GKAdaptive"
				}
				if rndS.SpaceBytes != rndR.SpaceBytes {
					return false, "Random space changed with order"
				}
				return true, fmt.Sprintf("GKAdaptive %s→%s; Random unchanged",
					fmtBytes(gkR.SpaceBytes), fmtBytes(gkS.SpaceBytes))
			},
		},
		{
			ID:        "d7-good",
			Statement: "§4.3.1/Tables 3–4: d = 7 is at or near the best depth for DCS",
			Check: func(m map[string][]Result) (bool, string) {
				// For the largest sketch size, d=7's average error must be
				// within 2× of the best depth.
				maxKB := 0
				for _, r := range m[ExpTable3] {
					if r.SketchKB > maxKB {
						maxKB = r.SketchKB
					}
				}
				best := Result{AvgErr: 1}
				var d7 Result
				for _, r := range m[ExpTable3] {
					if r.SketchKB != maxKB {
						continue
					}
					if r.AvgErr < best.AvgErr {
						best = r
					}
					if r.D == 7 {
						d7 = r
					}
				}
				if d7.AvgErr > 2*best.AvgErr {
					return false, fmt.Sprintf("d=7 err %.4g vs best d=%d err %.4g", d7.AvgErr, best.D, best.AvgErr)
				}
				return true, fmt.Sprintf("d=7 err %.4g, best (d=%d) %.4g at %dKB", d7.AvgErr, best.D, best.AvgErr, maxKB)
			},
		},
		{
			ID:        "eta-tradeoff",
			Statement: "§4.3.1/Fig 9: shrinking η grows the tree and reduces error monotonically-ish",
			Check: func(m map[string][]Result) (bool, string) {
				byEps := map[float64][]Result{}
				for _, r := range m[ExpFig9] {
					byEps[r.Eps] = append(byEps[r.Eps], r)
				}
				for eps, rs := range byEps {
					first, last := rs[0], rs[len(rs)-1] // sorted η descending
					if last.TreeRel <= first.TreeRel {
						return false, fmt.Sprintf("ε=%g: tree did not grow as η shrank", eps)
					}
					if last.ErrRel > first.ErrRel+0.05 {
						return false, fmt.Sprintf("ε=%g: error ratio rose as η shrank", eps)
					}
				}
				return true, "tree grows and error ratio falls as η shrinks, for every ε"
			},
		},
		{
			ID:        "post-beats-dcs",
			Statement: "§4.3.3: post-processing reduces DCS error at no extra streaming cost",
			Check: func(m map[string][]Result) (bool, string) {
				for _, eps := range []float64{0.05, 0.01} {
					dcs, ok1 := find(m[ExpFig10], func(r Result) bool { return r.Algo == "DCS" && feq(r.Eps, eps) })
					post, ok2 := find(m[ExpFig10], func(r Result) bool { return r.Algo == "Post" && feq(r.Eps, eps) })
					if !ok1 || !ok2 {
						continue
					}
					if post.AvgErr > dcs.AvgErr {
						return false, fmt.Sprintf("ε=%g: Post %.4g vs DCS %.4g", eps, post.AvgErr, dcs.AvgErr)
					}
					if post.SpaceBytes != dcs.SpaceBytes {
						return false, "Post changed streaming space"
					}
				}
				return true, "Post average error ≤ DCS at equal space"
			},
		},
		{
			ID:        "dcs-smaller-than-dcm",
			Statement: "§4.3.3: DCS needs far less space than DCM for comparable error",
			Check: func(m map[string][]Result) (bool, string) {
				dcm, ok1 := find(m[ExpFig10], func(r Result) bool { return r.Algo == "DCM" && feq(r.Eps, 0.01) })
				dcs, ok2 := find(m[ExpFig10], func(r Result) bool { return r.Algo == "DCS" && feq(r.Eps, 0.01) })
				if !ok1 || !ok2 {
					return false, "missing rows"
				}
				if float64(dcs.SpaceBytes) > 0.5*float64(dcm.SpaceBytes) {
					return false, fmt.Sprintf("DCS %s vs DCM %s", fmtBytes(dcs.SpaceBytes), fmtBytes(dcm.SpaceBytes))
				}
				return true, fmt.Sprintf("DCS %s vs DCM %s at ε=0.01",
					fmtBytes(dcs.SpaceBytes), fmtBytes(dcm.SpaceBytes))
			},
		},
		{
			ID:        "turnstile-costlier",
			Statement: "§4.3.4: the turnstile model costs roughly an order of magnitude more than cash-register",
			Check: func(m map[string][]Result) (bool, string) {
				cash, ok1 := find(m[ExpFig5], func(r Result) bool { return r.Algo == "Random" && feq(r.Eps, 0.01) })
				turn, ok2 := find(m[ExpFig10], func(r Result) bool { return r.Algo == "DCS" && feq(r.Eps, 0.01) })
				if !ok1 || !ok2 {
					return false, "missing rows"
				}
				if turn.UpdateNs < 5*cash.UpdateNs || turn.SpaceBytes < 5*cash.SpaceBytes {
					return false, fmt.Sprintf("turnstile %.0fns/%s vs cash %.0fns/%s",
						turn.UpdateNs, fmtBytes(turn.SpaceBytes), cash.UpdateNs, fmtBytes(cash.SpaceBytes))
				}
				return true, fmt.Sprintf("DCS %.0fns/%s vs Random %.0fns/%s",
					turn.UpdateNs, fmtBytes(turn.SpaceBytes), cash.UpdateNs, fmtBytes(cash.SpaceBytes))
			},
		},
		{
			ID:        "smaller-universe-better",
			Statement: "§4.3.5/Fig 11: smaller universes make the turnstile algorithms smaller and more accurate",
			Check: func(m map[string][]Result) (bool, string) {
				s16, ok1 := find(m[ExpFig11], func(r Result) bool { return r.Algo == "DCS" && r.Bits == 16 && feq(r.Eps, 0.01) })
				s32, ok2 := find(m[ExpFig11], func(r Result) bool { return r.Algo == "DCS" && r.Bits == 32 && feq(r.Eps, 0.01) })
				if !ok1 || !ok2 {
					return false, "missing rows"
				}
				// Space and speed must improve; accuracy must be comparable
				// or better (the exact error ordering at small n depends on
				// the ε-derived widths, which differ with log u).
				if s16.SpaceBytes >= s32.SpaceBytes || s16.UpdateNs >= s32.UpdateNs ||
					s16.AvgErr > 2.5*s32.AvgErr+1e-9 {
					return false, fmt.Sprintf("2^16: %s %.0fns err %.4g; 2^32: %s %.0fns err %.4g",
						fmtBytes(s16.SpaceBytes), s16.UpdateNs, s16.AvgErr,
						fmtBytes(s32.SpaceBytes), s32.UpdateNs, s32.AvgErr)
				}
				return true, fmt.Sprintf("2^16: %s err %.4g vs 2^32: %s err %.4g",
					fmtBytes(s16.SpaceBytes), s16.AvgErr, fmtBytes(s32.SpaceBytes), s32.AvgErr)
			},
		},
		{
			ID:        "skew-hurts-dcs-more",
			Statement: "§4.3.6/Fig 12: less skew (larger σ) improves DCS noticeably, DCM barely",
			Check: func(m map[string][]Result) (bool, string) {
				skewed, ok1 := find(m[ExpFig12], func(r Result) bool { return r.Algo == "DCS" && feq(r.Sigma, 0.05) && feq(r.Eps, 0.01) })
				flat, ok2 := find(m[ExpFig12], func(r Result) bool { return r.Algo == "DCS" && feq(r.Sigma, 0.25) && feq(r.Eps, 0.01) })
				if !ok1 || !ok2 {
					return false, "missing rows"
				}
				if flat.AvgErr > skewed.AvgErr {
					return false, fmt.Sprintf("DCS err σ=0.25 %.4g vs σ=0.05 %.4g", flat.AvgErr, skewed.AvgErr)
				}
				return true, fmt.Sprintf("DCS err σ=0.05 %.4g → σ=0.25 %.4g", skewed.AvgErr, flat.AvgErr)
			},
		},
	}
}

// Verify runs every experiment once and checks all claims.
func Verify(o Options) []VerifyResult {
	byExp := runAll(o)
	var out []VerifyResult
	for _, c := range Claims() {
		ok, detail := c.Check(byExp)
		out = append(out, VerifyResult{Claim: c, OK: ok, Detail: detail})
	}
	return out
}

// RenderVerify formats verification outcomes for the terminal.
func RenderVerify(rs []VerifyResult) string {
	var b strings.Builder
	pass := 0
	for _, r := range rs {
		status := "PASS"
		if r.OK {
			pass++
		} else {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-28s %s\n       measured: %s\n",
			status, r.Claim.ID, r.Claim.Statement, r.Detail)
	}
	fmt.Fprintf(&b, "\n%d/%d of the paper's shape claims reproduced\n", pass, len(rs))
	return b.String()
}
