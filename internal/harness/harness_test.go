package harness

import (
	"strings"
	"testing"
)

// tiny returns fast options for tests.
func tiny() Options { return Options{N: 20000, Seed: 1, Repeats: 1} }

func TestFig5ShapesHold(t *testing.T) {
	results := Fig5(tiny())
	if len(results) == 0 {
		t.Fatal("no results")
	}
	byAlgo := map[string][]Result{}
	for _, r := range results {
		byAlgo[r.Algo] = append(byAlgo[r.Algo], r)
		// The ε guarantee must hold for deterministic algorithms.
		if !IsRandomized(r.Algo) && r.MaxErr > r.Eps {
			t.Errorf("%s at eps=%g: max error %v exceeds ε", r.Algo, r.Eps, r.MaxErr)
		}
		if r.SpaceBytes <= 0 || r.UpdateNs <= 0 {
			t.Errorf("%s: non-positive measurements", r.Algo)
		}
	}
	if len(byAlgo) != 6 {
		t.Errorf("expected 6 cash-register algorithms, got %d", len(byAlgo))
	}
	// Paper shape: FastQDigest uses the most space at small ε.
	var qd, rnd Result
	for _, r := range results {
		if r.Eps == 0.002 {
			switch r.Algo {
			case "FastQDigest":
				qd = r
			case "Random":
				rnd = r
			}
		}
	}
	if qd.SpaceBytes <= rnd.SpaceBytes {
		t.Errorf("expected FastQDigest (%d B) above Random (%d B) at eps=0.002",
			qd.SpaceBytes, rnd.SpaceBytes)
	}
}

func TestFig7TimeFlatInN(t *testing.T) {
	results := Fig7(Options{N: 64000, Seed: 2, Repeats: 1})
	// For each algorithm, update time must not grow dramatically with n.
	byAlgo := map[string][]Result{}
	for _, r := range results {
		byAlgo[r.Algo] = append(byAlgo[r.Algo], r)
	}
	for algo, rs := range byAlgo {
		if len(rs) < 3 {
			continue
		}
		// Compare the two largest lengths: the smallest point sits below
		// the amortization scale of the batched algorithms. The threshold
		// is deliberately loose — absolute per-update times are tens of
		// nanoseconds and wall-clock measurement is noisy on loaded
		// machines; the test guards against gross blowups only (the real
		// flatness claim is checked at report scale by quantbench).
		mid, last := rs[len(rs)-2], rs[len(rs)-1]
		if last.UpdateNs > 25*mid.UpdateNs {
			t.Errorf("%s: update time grew %vx from n=%d to n=%d",
				algo, last.UpdateNs/mid.UpdateNs, mid.N, last.N)
		}
	}
}

func TestFig8SortedHurtsGKSpace(t *testing.T) {
	results := Fig8(Options{N: 50000, Seed: 3, Repeats: 1})
	space := map[string]map[string]int64{}
	for _, r := range results {
		if space[r.Algo] == nil {
			space[r.Algo] = map[string]int64{}
		}
		space[r.Algo][r.Workload] = r.SpaceBytes
	}
	// Sorted order must not *shrink* GKAdaptive's summary, and Random's
	// pre-allocated space must be identical.
	if space["Random"]["random"] != space["Random"]["sorted"] {
		t.Errorf("Random space differs across orders: %v", space["Random"])
	}
	if space["GKAdaptive"]["sorted"] < space["GKAdaptive"]["random"] {
		t.Errorf("GKAdaptive sorted space %d below random %d — unexpected direction",
			space["GKAdaptive"]["sorted"], space["GKAdaptive"]["random"])
	}
}

func TestTable3DErrorShrinksWithSize(t *testing.T) {
	results := Table3And4(Options{N: 50000, Seed: 4, Repeats: 1})
	// For fixed d, average error must shrink as the sketch grows.
	byD := map[int][]Result{}
	for _, r := range results {
		byD[r.D] = append(byD[r.D], r)
	}
	for d, rs := range byD {
		if len(rs) < 2 {
			continue
		}
		first, last := rs[0], rs[len(rs)-1]
		if last.AvgErr > first.AvgErr*1.5 {
			t.Errorf("d=%d: avg error rose from %v (%dKB) to %v (%dKB)",
				d, first.AvgErr, first.SketchKB, last.AvgErr, last.SketchKB)
		}
	}
}

func TestFig9EtaMonotoneTree(t *testing.T) {
	results := Fig9(Options{N: 30000, Seed: 5, Repeats: 1})
	// For each eps, smaller η ⇒ larger relative tree.
	byEps := map[float64][]Result{}
	for _, r := range results {
		byEps[r.Eps] = append(byEps[r.Eps], r)
	}
	for eps, rs := range byEps {
		for i := 1; i < len(rs); i++ {
			if rs[i].Eta < rs[i-1].Eta && rs[i].TreeRel < rs[i-1].TreeRel*0.5 {
				t.Errorf("eps=%g: tree size fell sharply as η shrank (%v→%v)",
					eps, rs[i-1].TreeRel, rs[i].TreeRel)
			}
		}
	}
}

func TestFig10PostBeatsDCS(t *testing.T) {
	results := Fig10(Options{N: 40000, Seed: 6, Repeats: 2})
	avg := map[string]map[float64]float64{}
	for _, r := range results {
		if avg[r.Algo] == nil {
			avg[r.Algo] = map[float64]float64{}
		}
		avg[r.Algo][r.Eps] = r.AvgErr
	}
	for eps, dcs := range avg["DCS"] {
		post := avg["Post"][eps]
		if post > dcs {
			t.Errorf("eps=%g: Post avg error %v above DCS %v", eps, post, dcs)
		}
	}
}

func TestFig11SmallerUniverseSmaller(t *testing.T) {
	results := Fig11(Options{N: 30000, Seed: 7, Repeats: 1})
	space := map[int]int64{}
	for _, r := range results {
		if r.Algo == "DCS" && r.Eps == 0.01 {
			space[r.Bits] = r.SpaceBytes
		}
	}
	if space[16] >= space[32] {
		t.Errorf("DCS space u=2^16 (%d) not below u=2^32 (%d)", space[16], space[32])
	}
}

func TestAblationsRun(t *testing.T) {
	for _, exp := range []string{ExpAblGK, ExpAblExact, ExpAblPostFB} {
		rs := Run(exp, tiny())
		if len(rs) == 0 {
			t.Errorf("%s produced no results", exp)
		}
	}
}

func TestRunDispatchesEverything(t *testing.T) {
	for _, exp := range AllExperiments() {
		rs := Run(exp, Options{N: 5000, Seed: 8, Repeats: 1})
		if len(rs) == 0 {
			t.Errorf("experiment %s returned no results", exp)
		}
		if Titles()[exp] == "" {
			t.Errorf("experiment %s has no title", exp)
		}
		if PaperExpectations()[exp] == "" {
			t.Errorf("experiment %s has no paper expectation", exp)
		}
	}
}

func TestRunUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run(bogus) did not panic")
		}
	}()
	Run("bogus", tiny())
}

func TestRenderTable(t *testing.T) {
	results := Fig5(Options{N: 10000, Seed: 9, Repeats: 1})
	SortResults(results)
	out := RenderTable(ExpFig5, results)
	if !strings.Contains(out, "algorithm") || !strings.Contains(out, "GKArray") {
		t.Errorf("table missing expected content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(results)+2 {
		t.Errorf("table has %d lines for %d results", len(lines), len(results))
	}
}

func TestRenderCSV(t *testing.T) {
	results := []Result{{
		Experiment: ExpFig5, Algo: "X", Workload: "w", N: 10, Eps: 0.1,
		SpaceBytes: 100, UpdateNs: 5.5, MaxErr: 0.01, AvgErr: 0.005,
	}}
	out := RenderCSV(results)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "fig5,X,w,10,0.1") {
		t.Errorf("CSV row malformed: %s", lines[1])
	}
	if len(strings.Split(lines[0], ",")) != len(strings.Split(lines[1], ",")) {
		t.Error("CSV header/row column mismatch")
	}
}

func TestSortResultsStable(t *testing.T) {
	rs := []Result{
		{Experiment: "b", Eps: 0.1, Algo: "z"},
		{Experiment: "a", Eps: 0.1, Algo: "b"},
		{Experiment: "a", Eps: 0.5, Algo: "a"},
		{Experiment: "a", Eps: 0.1, Algo: "a"},
	}
	SortResults(rs)
	if rs[0].Experiment != "a" || rs[0].Eps != 0.5 {
		t.Errorf("sort order wrong: %+v", rs[0])
	}
	if rs[1].Algo != "a" || rs[2].Algo != "b" {
		t.Error("algo tiebreak wrong")
	}
}

func TestCashAlgoLookup(t *testing.T) {
	if CashAlgo("Random").Name != "Random" {
		t.Error("lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown algo did not panic")
		}
	}()
	CashAlgo("nope")
}
