package harness

import (
	"fmt"
	"sort"
	"strings"
)

// column describes one rendered column of a result table.
type column struct {
	head string
	get  func(r Result) string
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtErr(e float64) string { return fmt.Sprintf("%.3g", e) }

// columnsFor picks the relevant columns per experiment.
func columnsFor(exp string) []column {
	algo := column{"algorithm", func(r Result) string { return r.Algo }}
	work := column{"workload", func(r Result) string { return r.Workload }}
	n := column{"n", func(r Result) string { return fmt.Sprintf("%d", r.N) }}
	eps := column{"eps", func(r Result) string { return fmt.Sprintf("%g", r.Eps) }}
	space := column{"space", func(r Result) string { return fmtBytes(r.SpaceBytes) }}
	tm := column{"ns/update", func(r Result) string { return fmt.Sprintf("%.0f", r.UpdateNs) }}
	maxe := column{"max-err", func(r Result) string { return fmtErr(r.MaxErr) }}
	avge := column{"avg-err", func(r Result) string { return fmtErr(r.AvgErr) }}

	switch exp {
	case ExpFig6, ExpFig11:
		bits := column{"log(u)", func(r Result) string { return fmt.Sprintf("%d", r.Bits) }}
		return []column{algo, bits, eps, space, tm, maxe, avge}
	case ExpFig7:
		return []column{algo, n, eps, space, tm, maxe, avge}
	case ExpFig8:
		order := column{"order", func(r Result) string { return r.Workload }}
		return []column{algo, order, eps, space, tm, maxe, avge}
	case ExpTable3, ExpTable4:
		kb := column{"sketchKB", func(r Result) string { return fmt.Sprintf("%d", r.SketchKB) }}
		d := column{"d", func(r Result) string { return fmt.Sprintf("%d", r.D) }}
		return []column{kb, d, maxe, avge}
	case ExpFig9:
		eta := column{"eta", func(r Result) string { return fmt.Sprintf("%g", r.Eta) }}
		rel := column{"tree/sketch", func(r Result) string { return fmt.Sprintf("%.3f", r.TreeRel) }}
		erel := column{"err/rawDCS", func(r Result) string { return fmt.Sprintf("%.2f", r.ErrRel) }}
		return []column{eps, eta, rel, erel, avge}
	case ExpFig12:
		sig := column{"sigma", func(r Result) string { return fmt.Sprintf("%g", r.Sigma) }}
		return []column{algo, sig, eps, space, tm, maxe, avge}
	case ExpAblExact, ExpAblPostFB:
		return []column{algo, work, eps, space, tm, maxe, avge}
	case ExpExtBiased:
		phi := column{"phi", func(r Result) string { return fmt.Sprintf("%g", r.Phi) }}
		abs := column{"abs-err", func(r Result) string { return fmtErr(r.MaxErr) }}
		rel := column{"err/phi", func(r Result) string { return fmtErr(r.AvgErr) }}
		return []column{algo, phi, eps, space, abs, rel}
	case ExpExtWindow:
		wcol := column{"window", func(r Result) string { return fmt.Sprintf("%d", r.N) }}
		return []column{algo, wcol, eps, space, tm, maxe, avge}
	default:
		return []column{algo, eps, space, tm, maxe, avge}
	}
}

// RenderTable formats results as an aligned text table.
func RenderTable(exp string, results []Result) string {
	cols := columnsFor(exp)
	rows := make([][]string, 0, len(results)+1)
	head := make([]string, len(cols))
	for i, c := range cols {
		head[i] = c.head
	}
	rows = append(rows, head)
	for _, r := range results {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = c.get(r)
		}
		rows = append(rows, row)
	}

	width := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", width[i]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				b.WriteString(strings.Repeat("-", width[i]) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderCSV formats results as CSV with a fixed full schema.
func RenderCSV(results []Result) string {
	var b strings.Builder
	b.WriteString("experiment,algorithm,workload,n,eps,bits,sigma,d,eta,sketch_kb,phi,space_bytes,update_ns,max_err,avg_err,tree_rel,err_rel\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%g,%d,%g,%d,%g,%d,%g,%d,%.2f,%.6g,%.6g,%.4f,%.4f\n",
			r.Experiment, r.Algo, r.Workload, r.N, r.Eps, r.Bits, r.Sigma,
			r.D, r.Eta, r.SketchKB, r.Phi, r.SpaceBytes, r.UpdateNs, r.MaxErr, r.AvgErr,
			r.TreeRel, r.ErrRel)
	}
	return b.String()
}

// Titles maps experiment ids to human-readable descriptions.
func Titles() map[string]string {
	return map[string]string{
		ExpFig5:      "Figures 5a–5f — cash-register algorithms on MPCAT-like data: ε vs actual error, error–space, error–time, space–time",
		ExpFig6:      "Figures 6a–6b — FastQDigest vs universe size (normal data), against GKAdaptive and Random",
		ExpFig7:      "Figures 7a–7b — varying stream length (uniform, u=2^32)",
		ExpFig8:      "Figure 8 — random vs sorted arrival order (uniform, u=2^32)",
		ExpTable3:    "Table 3 — tuning d for DCS, average error (uniform, u=2^32)",
		ExpTable4:    "Table 4 — tuning d for DCS, maximum error (same runs as Table 3)",
		ExpFig9:      "Figure 9 — Post: truncation factor η vs tree size and error reduction",
		ExpFig10:     "Figures 10a–10e — turnstile algorithms on MPCAT-like data",
		ExpFig11:     "Figures 11a–11b — turnstile algorithms vs universe size (normal σ=0.15)",
		ExpFig12:     "Figures 12a–12b — turnstile algorithms vs skewness (normal σ=0.05, 0.25)",
		ExpAblGK:     "Ablation — GK implementation: tree+heap (GKAdaptive) vs buffered array (GKArray)",
		ExpAblExact:  "Ablation — DCS with vs without exact top levels",
		ExpAblPostFB: "Ablation — Post fallback for intervals outside the truncated tree",
		ExpExtBiased: "Extension — biased (relative-error) quantiles vs the uniform GK summary",
		ExpExtWindow: "Extension — sliding-window quantiles over a distribution shift",
		ExpExtKLL:    "Epilogue — KLL (2016) against the study's randomized algorithms",
	}
}

// PaperExpectations states, per experiment, the qualitative shape the
// paper reports; the generated report pairs them with measured numbers.
func PaperExpectations() map[string]string {
	return map[string]string{
		ExpFig5: "Deterministic algorithms never exceed ε (average ≈ ε/4…2ε/3); " +
			"MRL99/Random observed errors are far below ε. MRL99 and Random need the " +
			"least space, GK variants close behind, FastQDigest the most. GKAdaptive and " +
			"FastQDigest slow down sharply once their structures outgrow cache; " +
			"GKArray, MRL99 and Random stay fast (sort+merge only).",
		ExpFig6: "FastQDigest improves with smaller universes and is competitive only " +
			"around log u = 16 at very small ε; GKAdaptive and Random are unaffected by u.",
		ExpFig7: "Update time and space are essentially flat in n for all algorithms; " +
			"Random's per-element time *decreases* as sampling kicks in.",
		ExpFig8: "Sorted order inflates the GK variants' summaries relative to random " +
			"order, while the sampling algorithms are order-insensitive in space; " +
			"all algorithms keep the ε guarantee.",
		ExpTable3: "d = 7 is the best depth for average error across sketch sizes; " +
			"error shrinks roughly linearly as the per-level sketch grows.",
		ExpTable4: "Maximum error favors slightly deeper sketches, but d = 7 remains " +
			"a good choice.",
		ExpFig9: "η = 0.1 is the sweet spot: smaller η inflates the tree with little " +
			"extra error reduction; Post reduces DCS error to roughly 20–40%.",
		ExpFig10: "Actual max error ≈ ε/10. DCS needs ≈ 1/10 the space of DCM at equal " +
			"error; Post cuts DCS error by a further 60–80% at no streaming cost. " +
			"Turnstile costs ≈ an order of magnitude more than cash-register.",
		ExpFig11: "A smaller universe makes the turnstile algorithms smaller, faster " +
			"and more accurate; at u = 2^16 the structures store exact counts.",
		ExpFig12: "Less skew (larger σ) improves accuracy; strongly for DCS/Post " +
			"(Count-Sketch error tracks F₂), weakly for DCM.",
		ExpAblGK: "The array implementation dominates at small ε where the tree+heap " +
			"version leaves cache (the journal version's motivation for GKArray).",
		ExpAblExact: "Exact top levels cost nothing and remove the sketch noise of the " +
			"shallow levels; disabling them hurts accuracy at equal size.",
		ExpAblPostFB: "Replacing the raw-sketch fallback with zeros degrades accuracy: " +
			"the truncated tree alone under-counts pruned regions.",
		ExpExtBiased: "Not part of the paper's evaluation (the variation is surveyed in " +
			"its §1): the biased summary keeps the error proportional to the target " +
			"rank — err/φ stays bounded as φ → 0, where the uniform summary's " +
			"relative error blows up.",
		ExpExtWindow: "Not part of the paper's evaluation (the variation is surveyed in " +
			"its §1): after the shift the window answers within ε of the exact " +
			"content of the covered window, at space independent of stream length.",
		ExpExtKLL: "Post-dates the paper: KLL is the optimal-space successor of the " +
			"Random/MRL99 buffer hierarchy (the line of work the study fed). Expect " +
			"comparable error at a fraction of the space and similar update cost.",
	}
}

// SortResults orders results for stable rendering.
func SortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if !feq(a.Eps, b.Eps) {
			return a.Eps > b.Eps
		}
		if a.Bits != b.Bits {
			return a.Bits < b.Bits
		}
		if a.SketchKB != b.SketchKB {
			return a.SketchKB < b.SketchKB
		}
		if a.D != b.D {
			return a.D < b.D
		}
		if !feq(a.Eta, b.Eta) {
			return a.Eta > b.Eta
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Algo < b.Algo
	})
}
