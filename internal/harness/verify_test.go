package harness

import "testing"

// TestVerifyClaimsPass is the reproduction's acceptance test: every
// checkable shape claim of the paper must hold on a fresh run.
func TestVerifyClaimsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("verify runs every experiment")
	}
	results := Verify(Options{N: 60000, Seed: 5, Repeats: 2})
	for _, r := range results {
		if !r.OK {
			t.Errorf("[FAIL] %s — %s\n  measured: %s", r.Claim.ID, r.Claim.Statement, r.Detail)
		}
	}
	if len(results) < 12 {
		t.Errorf("only %d claims checked", len(results))
	}
}

func TestRenderVerify(t *testing.T) {
	out := RenderVerify([]VerifyResult{
		{Claim: Claim{ID: "x", Statement: "s"}, OK: true, Detail: "d"},
		{Claim: Claim{ID: "y", Statement: "t"}, OK: false, Detail: "e"},
	})
	for _, want := range []string{"[PASS] x", "[FAIL] y", "1/2"} {
		if !containsStr(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexStr(s, sub) >= 0)
}

func indexStr(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
