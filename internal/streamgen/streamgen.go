// Package streamgen generates the input streams for the experimental
// study: the synthetic workloads from the paper's §4 (uniform and normal
// distributions over configurable universes, in random or sorted order)
// and deterministic substitutes for the two real data sets that cannot be
// redistributed with this repository.
//
// Substitutions (documented in DESIGN.md):
//
//   - MPCATLike stands in for MPCAT-OBS (minor-planet right ascensions,
//     universe [0, 8 639 999]): a multimodal mixture over the same
//     universe, emitted as a concatenation of short ascending "observation
//     sessions" so the stream is globally random yet locally sorted —
//     the ordering trait the paper calls out.
//   - TerrainLike stands in for the Neuse River LIDAR elevations: a
//     bounded, spatially correlated random walk (smooth values, scan-line
//     order).
//
// All generators are deterministic given their seed.
package streamgen

import (
	"fmt"
	"math"
	"slices"

	"streamquantiles/internal/xhash"
)

// Generator produces a deterministic stream of universe elements.
type Generator interface {
	// Name identifies the workload in reports, e.g. "uniform(u=2^32)".
	Name() string
	// UniverseBits is ⌈log₂ u⌉ for the values produced.
	UniverseBits() int
	// Fill writes len(dst) stream elements in stream order.
	Fill(dst []uint64)
}

// Generate is a convenience wrapper allocating the stream slice.
func Generate(g Generator, n int) []uint64 {
	dst := make([]uint64, n)
	g.Fill(dst)
	return dst
}

// Uniform draws i.i.d. values uniform on [0, 2^Bits).
type Uniform struct {
	Bits int
	Seed uint64
}

// Name implements Generator.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(u=2^%d)", u.Bits) }

// UniverseBits implements Generator.
func (u Uniform) UniverseBits() int { return u.Bits }

// Fill implements Generator.
func (u Uniform) Fill(dst []uint64) {
	checkBits(u.Bits)
	rng := xhash.NewSplitMix64(u.Seed)
	mask := universeMax(u.Bits)
	for i := range dst {
		dst[i] = rng.Next() & mask
	}
}

// Normal draws i.i.d. values from a normal distribution with the given
// standard deviation on the normalized domain [0, 1] (mean 0.5), scaled to
// the universe [0, 2^Bits) and clamped at the boundaries. This matches the
// paper's synthetic "normal distribution with σ = 0.05 … 0.25" data sets.
type Normal struct {
	Bits  int
	Sigma float64
	Seed  uint64
}

// Name implements Generator.
func (g Normal) Name() string { return fmt.Sprintf("normal(σ=%g,u=2^%d)", g.Sigma, g.Bits) }

// UniverseBits implements Generator.
func (g Normal) UniverseBits() int { return g.Bits }

// Fill implements Generator.
func (g Normal) Fill(dst []uint64) {
	checkBits(g.Bits)
	rng := xhash.NewSplitMix64(g.Seed)
	scale := float64(universeMax(g.Bits))
	for i := range dst {
		v := 0.5 + g.Sigma*gauss(rng)
		dst[i] = clampScale(v, scale)
	}
}

// Zipf draws i.i.d. values from a Zipf distribution with exponent S > 1
// over the universe [0, 2^Bits), using inverse-CDF sampling on a truncated
// support of the most frequent ranks. It provides the heavily skewed
// workload used in the skewness ablations.
type Zipf struct {
	Bits int
	S    float64 // exponent, must be > 1
	Seed uint64
}

// Name implements Generator.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(s=%g,u=2^%d)", z.S, z.Bits) }

// UniverseBits implements Generator.
func (z Zipf) UniverseBits() int { return z.Bits }

// Fill implements Generator.
func (z Zipf) Fill(dst []uint64) {
	checkBits(z.Bits)
	if z.S <= 1 {
		//lint:ignore SQ003 generator config contract: Zipf is a value type with no constructor to validate in
		panic("streamgen: Zipf exponent must be > 1")
	}
	rng := xhash.NewSplitMix64(z.Seed)
	max := universeMax(z.Bits)
	// Inverse CDF of the continuous Pareto proxy: rank ≈ (1-U)^(-1/(s-1)).
	inv := -1.0 / (z.S - 1)
	for i := range dst {
		u := rng.Float64()
		r := math.Pow(1-u, inv) - 1
		if r < 0 {
			r = 0
		}
		v := uint64(r)
		if v > max {
			v = max
		}
		dst[i] = v
	}
}

// Sorted wraps a generator and emits its stream in ascending order —
// the adversarial arrival order of the paper's Figure 8.
type Sorted struct {
	Inner Generator
}

// Name implements Generator.
func (s Sorted) Name() string { return s.Inner.Name() + "+sorted" }

// UniverseBits implements Generator.
func (s Sorted) UniverseBits() int { return s.Inner.UniverseBits() }

// Fill implements Generator.
func (s Sorted) Fill(dst []uint64) {
	s.Inner.Fill(dst)
	slices.Sort(dst)
}

// Reversed wraps a generator and emits its stream in descending order.
type Reversed struct {
	Inner Generator
}

// Name implements Generator.
func (r Reversed) Name() string { return r.Inner.Name() + "+reversed" }

// UniverseBits implements Generator.
func (r Reversed) UniverseBits() int { return r.Inner.UniverseBits() }

// Fill implements Generator.
func (r Reversed) Fill(dst []uint64) {
	r.Inner.Fill(dst)
	slices.Sort(dst)
	slices.Reverse(dst)
}

// OutOfOrder wraps a generator and perturbs its arrival order with a
// bounded sliding-window shuffle: element i is swapped with a uniformly
// chosen element at most Window positions ahead. Displacements are thus
// bounded by Window — the "slightly out of order" arrival regime of
// network-delivered streams, sitting between the paper's random and
// sorted extremes (apply it over Sorted for nearly-sorted input).
type OutOfOrder struct {
	Inner Generator
	// Window bounds how far an element can be displaced; 0 means 64.
	Window int
	Seed   uint64
}

// Name implements Generator.
func (o OutOfOrder) Name() string {
	return fmt.Sprintf("%s+ooo(w=%d)", o.Inner.Name(), o.window())
}

// UniverseBits implements Generator.
func (o OutOfOrder) UniverseBits() int { return o.Inner.UniverseBits() }

func (o OutOfOrder) window() int {
	if o.Window <= 0 {
		return 64
	}
	return o.Window
}

// Fill implements Generator.
func (o OutOfOrder) Fill(dst []uint64) {
	o.Inner.Fill(dst)
	rng := xhash.NewSplitMix64(o.Seed)
	w := uint64(o.window())
	for i := range dst {
		span := uint64(len(dst) - i)
		if span > w+1 {
			span = w + 1
		}
		j := i + int(rng.Uint64n(span))
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// MPCATUniverse is the value range of the MPCAT-OBS right-ascension field:
// integers in [0, 8 639 999], i.e. log u ≈ 24.
const MPCATUniverse = 8_640_000

// MPCATLike is the substitute for the MPCAT-OBS observation archive.
// Values follow a fixed mixture of Gaussians over the right-ascension
// universe (multimodal, cf. paper Fig. 4); the stream is a concatenation
// of ascending "observation sessions" with geometrically distributed
// lengths, so values appear globally random but locally ordered.
type MPCATLike struct {
	Seed uint64
	// MeanSessionLen is the average sorted-run length; 0 means 64.
	MeanSessionLen int
}

// Name implements Generator.
func (m MPCATLike) Name() string { return "mpcat-like(u=8.64e6)" }

// UniverseBits implements Generator.
func (m MPCATLike) UniverseBits() int { return 24 }

// mixture components over normalized [0,1]: weight, mean, sigma.
// Chosen to resemble the right-ascension histogram of the paper's
// Fig. 4: strongly peaked observation clusters (observatories track
// whatever is visible, concentrating on narrow bands) over a diffuse
// background.
var mpcatMix = [...]struct{ w, mu, sigma float64 }{
	{0.30, 0.18, 0.025},
	{0.25, 0.55, 0.045},
	{0.20, 0.82, 0.018},
	{0.10, 0.40, 0.060},
	{0.15, 0.50, 0.280}, // diffuse background across the universe
}

// Fill implements Generator.
func (m MPCATLike) Fill(dst []uint64) {
	rng := xhash.NewSplitMix64(m.Seed)
	mean := m.MeanSessionLen
	if mean <= 0 {
		mean = 64
	}
	i := 0
	session := make([]uint64, 0, 4*mean)
	for i < len(dst) {
		// Geometric session length with the configured mean, ≥ 1.
		slen := 1
		for slen < 4*mean && rng.Float64() > 1/float64(mean) {
			slen++
		}
		if slen > len(dst)-i {
			slen = len(dst) - i
		}
		session = session[:0]
		for j := 0; j < slen; j++ {
			session = append(session, mpcatValue(rng))
		}
		// Observatories trace objects with increasing right ascension
		// within a session: emit the session sorted.
		slices.Sort(session)
		copy(dst[i:], session)
		i += slen
	}
}

func mpcatValue(rng *xhash.SplitMix64) uint64 {
	u := rng.Float64()
	for _, c := range mpcatMix {
		if u < c.w {
			v := c.mu + c.sigma*gauss(rng)
			return clampScale(v, MPCATUniverse-1)
		}
		u -= c.w
	}
	// Numerical tail: fall back to the last component.
	c := mpcatMix[len(mpcatMix)-1]
	return clampScale(c.mu+c.sigma*gauss(rng), MPCATUniverse-1)
}

// TerrainLike is the substitute for the Neuse River Basin LIDAR data set:
// a mean-reverting bounded random walk producing smooth, spatially
// correlated elevation values over a 2^20 universe.
type TerrainLike struct {
	Seed uint64
}

// Name implements Generator.
func (g TerrainLike) Name() string { return "terrain-like(u=2^20)" }

// UniverseBits implements Generator.
func (g TerrainLike) UniverseBits() int { return 20 }

// Fill implements Generator.
func (g TerrainLike) Fill(dst []uint64) {
	rng := xhash.NewSplitMix64(g.Seed)
	const bits = 20
	scale := float64(universeMax(bits))
	x := 0.3 // normalized elevation
	for i := range dst {
		// Ornstein–Uhlenbeck style step: revert to 0.4, diffuse slowly.
		x += 0.001*(0.4-x) + 0.01*gauss(rng)
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		dst[i] = clampScale(x, scale)
	}
}

// gauss returns a standard normal deviate via the Box–Muller transform.
func gauss(rng *xhash.SplitMix64) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func clampScale(v, scale float64) uint64 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return uint64(scale)
	}
	return uint64(v * scale)
}

func universeMax(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

func checkBits(bits int) {
	if bits < 1 || bits > 64 {
		panic(fmt.Sprintf("streamgen: universe bits %d outside [1, 64]", bits))
	}
}
