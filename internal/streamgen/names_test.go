package streamgen

import (
	"strings"
	"testing"
)

func TestUniverseBitsReported(t *testing.T) {
	cases := []struct {
		g    Generator
		want int
	}{
		{Uniform{Bits: 16}, 16},
		{Normal{Bits: 24, Sigma: 0.1}, 24},
		{Zipf{Bits: 20, S: 1.5}, 20},
		{MPCATLike{}, 24},
		{TerrainLike{}, 20},
		{Sorted{Inner: Uniform{Bits: 12}}, 12},
		{Reversed{Inner: Uniform{Bits: 12}}, 12},
	}
	for _, c := range cases {
		if got := c.g.UniverseBits(); got != c.want {
			t.Errorf("%s: UniverseBits = %d, want %d", c.g.Name(), got, c.want)
		}
	}
}

func TestWrapperNames(t *testing.T) {
	if !strings.HasSuffix(Sorted{Inner: Uniform{Bits: 8}}.Name(), "+sorted") {
		t.Error("Sorted name lacks suffix")
	}
	if !strings.HasSuffix(Reversed{Inner: Uniform{Bits: 8}}.Name(), "+reversed") {
		t.Error("Reversed name lacks suffix")
	}
	if (TerrainLike{}).Name() == "" || (MPCATLike{}).Name() == "" {
		t.Error("empty generator names")
	}
}
