package streamgen

import (
	"math"
	"slices"
	"testing"
)

func TestUniformRangeAndDeterminism(t *testing.T) {
	g := Uniform{Bits: 16, Seed: 1}
	a := Generate(g, 10000)
	b := Generate(g, 10000)
	for i := range a {
		if a[i] >= 1<<16 {
			t.Fatalf("value %d outside universe 2^16", a[i])
		}
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestUniformMean(t *testing.T) {
	g := Uniform{Bits: 20, Seed: 2}
	data := Generate(g, 100000)
	sum := 0.0
	for _, v := range data {
		sum += float64(v)
	}
	mean := sum / float64(len(data))
	want := float64(uint64(1)<<20) / 2
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("uniform mean %v, want ≈ %v", mean, want)
	}
}

func TestNormalConcentration(t *testing.T) {
	g := Normal{Bits: 24, Sigma: 0.05, Seed: 3}
	data := Generate(g, 100000)
	scale := float64(uint64(1)<<24 - 1)
	within := 0
	for _, v := range data {
		x := float64(v) / scale
		if math.Abs(x-0.5) < 3*0.05 {
			within++
		}
	}
	// 3σ should capture ≈ 99.7%.
	if frac := float64(within) / float64(len(data)); frac < 0.99 {
		t.Errorf("only %v within 3σ of mean", frac)
	}
}

func TestNormalSkewControls(t *testing.T) {
	wide := Generate(Normal{Bits: 24, Sigma: 0.25, Seed: 4}, 50000)
	narrow := Generate(Normal{Bits: 24, Sigma: 0.05, Seed: 4}, 50000)
	if stddev(wide) <= stddev(narrow) {
		t.Error("σ=0.25 data not wider than σ=0.05 data")
	}
}

func stddev(data []uint64) float64 {
	mean := 0.0
	for _, v := range data {
		mean += float64(v)
	}
	mean /= float64(len(data))
	ss := 0.0
	for _, v := range data {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(data)))
}

func TestZipfSkew(t *testing.T) {
	g := Zipf{Bits: 20, S: 1.5, Seed: 5}
	data := Generate(g, 100000)
	zeros := 0
	for _, v := range data {
		if v >= 1<<20 {
			t.Fatalf("zipf value %d outside universe", v)
		}
		if v == 0 {
			zeros++
		}
	}
	// With s=1.5 the most frequent value dominates.
	if zeros < len(data)/10 {
		t.Errorf("zipf head too light: %d zeros of %d", zeros, len(data))
	}
}

func TestZipfPanicsOnBadS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Zipf with s<=1 did not panic")
		}
	}()
	Generate(Zipf{Bits: 10, S: 1.0, Seed: 1}, 10)
}

func TestSortedWrapper(t *testing.T) {
	g := Sorted{Inner: Uniform{Bits: 24, Seed: 6}}
	data := Generate(g, 5000)
	if !slices.IsSorted(data) {
		t.Fatal("Sorted generator output not sorted")
	}
	// Same multiset as inner.
	inner := Generate(Uniform{Bits: 24, Seed: 6}, 5000)
	slices.Sort(inner)
	if !slices.Equal(data, inner) {
		t.Fatal("Sorted changed the multiset")
	}
}

func TestReversedWrapper(t *testing.T) {
	g := Reversed{Inner: Uniform{Bits: 24, Seed: 7}}
	data := Generate(g, 5000)
	for i := 1; i < len(data); i++ {
		if data[i] > data[i-1] {
			t.Fatal("Reversed output not descending")
		}
	}
}

func TestMPCATLikeUniverse(t *testing.T) {
	g := MPCATLike{Seed: 8}
	data := Generate(g, 50000)
	for _, v := range data {
		if v >= MPCATUniverse {
			t.Fatalf("value %d outside MPCAT universe", v)
		}
	}
}

func TestMPCATLikeLocallySorted(t *testing.T) {
	// The stream should contain many ascending runs much longer than a
	// random permutation would produce (mean run length ≈ 2 for random).
	g := MPCATLike{Seed: 9, MeanSessionLen: 64}
	data := Generate(g, 100000)
	runs := 1
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			runs++
		}
	}
	meanRun := float64(len(data)) / float64(runs)
	if meanRun < 10 {
		t.Errorf("mean ascending run %v too short for session-ordered data", meanRun)
	}
}

func TestMPCATLikeGloballyMixed(t *testing.T) {
	// Despite local sortedness the whole stream must not be sorted.
	g := MPCATLike{Seed: 10}
	data := Generate(g, 100000)
	if slices.IsSorted(data) {
		t.Fatal("MPCAT-like stream is globally sorted; sessions not mixing")
	}
}

func TestMPCATLikeMultimodal(t *testing.T) {
	// Histogram over 10 buckets should be far from uniform.
	g := MPCATLike{Seed: 11}
	data := Generate(g, 200000)
	var buckets [10]int
	for _, v := range data {
		buckets[v*10/MPCATUniverse]++
	}
	min, max := buckets[0], buckets[0]
	for _, c := range buckets[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) < 2*float64(min)+1 {
		t.Errorf("distribution looks uniform: buckets %v", buckets)
	}
}

func TestTerrainLikeSmooth(t *testing.T) {
	g := TerrainLike{Seed: 12}
	data := Generate(g, 100000)
	maxStep := uint64(0)
	for i := 1; i < len(data); i++ {
		d := data[i] - data[i-1]
		if data[i] < data[i-1] {
			d = data[i-1] - data[i]
		}
		if d > maxStep {
			maxStep = d
		}
	}
	// Steps are ~1% of a 2^20 universe, far below full range.
	if maxStep > 1<<17 {
		t.Errorf("terrain step %d too large for a smooth walk", maxStep)
	}
	for _, v := range data {
		if v >= 1<<20 {
			t.Fatalf("terrain value %d outside 2^20 universe", v)
		}
	}
}

func TestFillExactLength(t *testing.T) {
	for _, g := range []Generator{
		Uniform{Bits: 16, Seed: 1},
		Normal{Bits: 16, Sigma: 0.1, Seed: 1},
		Zipf{Bits: 16, S: 1.3, Seed: 1},
		MPCATLike{Seed: 1},
		TerrainLike{Seed: 1},
		Sorted{Inner: Uniform{Bits: 16, Seed: 1}},
	} {
		for _, n := range []int{0, 1, 7, 1000} {
			dst := make([]uint64, n)
			g.Fill(dst)
		}
	}
}

func TestNamesDistinct(t *testing.T) {
	gens := []Generator{
		Uniform{Bits: 16}, Uniform{Bits: 32},
		Normal{Bits: 24, Sigma: 0.15}, Normal{Bits: 24, Sigma: 0.05},
		MPCATLike{}, TerrainLike{},
		Sorted{Inner: Uniform{Bits: 16}},
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if seen[g.Name()] {
			t.Errorf("duplicate generator name %q", g.Name())
		}
		seen[g.Name()] = true
	}
}

func TestCheckBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bits=0 did not panic")
		}
	}()
	Generate(Uniform{Bits: 0, Seed: 1}, 1)
}

func BenchmarkUniformFill(b *testing.B) {
	g := Uniform{Bits: 32, Seed: 1}
	dst := make([]uint64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Fill(dst)
	}
	b.SetBytes(int64(len(dst) * 8))
}

func BenchmarkMPCATFill(b *testing.B) {
	g := MPCATLike{Seed: 1}
	dst := make([]uint64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Fill(dst)
	}
	b.SetBytes(int64(len(dst) * 8))
}
