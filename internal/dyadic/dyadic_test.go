package dyadic

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

func kinds() []Kind { return []Kind{DCM, DCS, DRSS} }

func feed(s *Sketch, data []uint64) {
	for _, x := range data {
		s.Insert(x)
	}
}

func TestKindString(t *testing.T) {
	if DCM.String() != "DCM" || DCS.String() != "DCS" || DRSS.String() != "DRSS" {
		t.Error("Kind names wrong")
	}
}

func TestInsertOnlyAccuracy(t *testing.T) {
	const n = 30000
	const eps = 0.02
	data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 1}, n)
	oracle := exact.New(data)
	for _, k := range kinds() {
		s := New(k, eps, 16, Config{Seed: 7})
		feed(s, data)
		maxErr, avgErr := oracle.EvaluateSummary(s, eps)
		// The paper observes actual max error around ε/10 for DCM/DCS; be
		// conservative and only require the ε guarantee itself (DRSS is
		// known weaker: allow 3ε).
		lim := eps
		if k == DRSS {
			lim = 3 * eps
		}
		if maxErr > lim {
			t.Errorf("%v: max error %v exceeds %v", k, maxErr, lim)
		}
		if avgErr > maxErr {
			t.Errorf("%v: avg %v > max %v", k, avgErr, maxErr)
		}
	}
}

func TestDeletionsMatchRemainder(t *testing.T) {
	// Insert two batches, delete one: estimates must reflect only the
	// survivors — the defining turnstile property (§4.3).
	const n = 20000
	const eps = 0.02
	keep := streamgen.Generate(streamgen.Normal{Bits: 16, Sigma: 0.1, Seed: 2}, n)
	gone := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 3}, n)
	for _, k := range kinds() {
		s := New(k, eps, 16, Config{Seed: 8})
		feed(s, keep)
		feed(s, gone)
		for _, x := range gone {
			s.Delete(x)
		}
		if s.Count() != int64(n) {
			t.Fatalf("%v: count %d after deletions, want %d", k, s.Count(), n)
		}
		oracle := exact.New(keep)
		lim := eps
		if k == DRSS {
			lim = 3 * eps
		}
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > lim {
			t.Errorf("%v: post-deletion max error %v exceeds %v", k, maxErr, lim)
		}
	}
}

func TestExactLevelsUsedForSmallUniverse(t *testing.T) {
	// With u = 2^10 and a w·d budget above 1024 counters, every level
	// fits, so all levels must be exact and error must be zero.
	const eps = 0.005
	s := New(DCS, eps, 10, Config{Seed: 9})
	for l := 0; l <= 10; l++ {
		if !s.LevelExact(l) {
			t.Errorf("level %d not exact despite tiny universe", l)
		}
	}
	data := streamgen.Generate(streamgen.Uniform{Bits: 10, Seed: 10}, 20000)
	feed(s, data)
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(s, eps)
	if maxErr != 0 {
		t.Errorf("exact-level sketch has nonzero error %v", maxErr)
	}
}

func TestLargeUniverseMixesLevels(t *testing.T) {
	s := New(DCS, 0.001, 32, Config{Seed: 11})
	if s.LevelExact(0) {
		t.Error("level 0 of a 2^32 universe should be sketched")
	}
	if !s.LevelExact(31) && !s.LevelExact(30) {
		t.Error("top levels should be exact")
	}
	if !s.LevelExact(32) {
		t.Error("root is always exact")
	}
}

func TestRankDecomposition(t *testing.T) {
	// On an all-exact sketch, Rank must equal the true rank exactly.
	s := New(DCM, 0.05, 8, Config{Seed: 12})
	counts := make([]int64, 256)
	data := streamgen.Generate(streamgen.Uniform{Bits: 8, Seed: 13}, 5000)
	for _, x := range data {
		s.Insert(x)
		counts[x]++
	}
	var cum int64
	for x := uint64(0); x < 256; x++ {
		if got := s.Rank(x); got != cum {
			t.Fatalf("Rank(%d) = %d, want %d", x, got, cum)
		}
		cum += counts[x]
	}
	if got := s.Rank(1 << 20); got != 5000 {
		t.Errorf("Rank beyond universe = %d, want n", got)
	}
}

func TestQuantileDescentExact(t *testing.T) {
	s := New(DCM, 0.05, 8, Config{Seed: 14})
	data := make([]uint64, 1000)
	for i := range data {
		data[i] = uint64(i % 256)
		s.Insert(data[i])
	}
	oracle := exact.New(data)
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		got := s.Quantile(phi)
		// All levels are exact here, so the descent must land on a value
		// with zero observed error.
		if e := oracle.QuantileError(got, phi); e != 0 {
			t.Errorf("Quantile(%v) = %d with error %v, want exact", phi, got, e)
		}
	}
}

func TestSpaceOrdering(t *testing.T) {
	// DCM's default width is √log u larger than DCS's: the space gap the
	// paper reports in Figure 10c.
	dcm := New(DCM, 0.01, 24, Config{Seed: 15})
	dcs := New(DCS, 0.01, 24, Config{Seed: 15})
	if dcs.SpaceBytes() >= dcm.SpaceBytes() {
		t.Errorf("DCS space %d not below DCM space %d", dcs.SpaceBytes(), dcm.SpaceBytes())
	}
}

func TestSmallerUniverseSmallerAndBetter(t *testing.T) {
	// Figure 11: a smaller universe means fewer levels, less space.
	const eps = 0.01
	small := New(DCS, eps, 16, Config{Seed: 16})
	large := New(DCS, eps, 32, Config{Seed: 16})
	if small.SpaceBytes() >= large.SpaceBytes() {
		t.Errorf("space(2^16)=%d not below space(2^32)=%d",
			small.SpaceBytes(), large.SpaceBytes())
	}
}

func TestCountGoesNegativePanicFree(t *testing.T) {
	// The strict model forbids it, but the sketch itself must not crash;
	// Quantile on a non-positive count panics cleanly instead.
	s := New(DCS, 0.1, 16, Config{Seed: 17})
	s.Insert(5)
	s.Delete(5)
	s.Delete(5) // model violation
	defer func() {
		if recover() == nil {
			t.Error("Quantile with non-positive count did not panic")
		}
	}()
	s.Quantile(0.5)
}

func TestOutOfUniversePanics(t *testing.T) {
	s := New(DCM, 0.1, 8, Config{Seed: 18})
	defer func() {
		if recover() == nil {
			t.Error("Insert(256) did not panic")
		}
	}()
	s.Insert(256)
}

func TestBadParamsPanic(t *testing.T) {
	for _, c := range []struct {
		eps  float64
		bits int
	}{{0, 16}, {1, 16}, {0.1, 0}, {0.1, 63}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(DCS, %v, %d) did not panic", c.eps, c.bits)
				}
			}()
			New(DCS, c.eps, c.bits, Config{})
		}()
	}
}

func TestConfigOverrides(t *testing.T) {
	s := New(DCS, 0.01, 24, Config{Width: 333, Depth: 5, Seed: 19})
	if s.Width() != 333 || s.Depth() != 5 {
		t.Errorf("config not honored: w=%d d=%d", s.Width(), s.Depth())
	}
	def := New(DCS, 0.01, 24, Config{Seed: 19})
	if def.Depth() != 7 {
		t.Errorf("default depth = %d, want 7", def.Depth())
	}
}

func TestLevelVarianceZeroForExact(t *testing.T) {
	s := New(DCS, 0.01, 24, Config{Seed: 20})
	feed(s, streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 21}, 10000))
	for l := 0; l <= 24; l++ {
		v := s.LevelVariance(l)
		if s.LevelExact(l) && v != 0 {
			t.Errorf("exact level %d variance %v, want 0", l, v)
		}
		if !s.LevelExact(l) && v <= 0 {
			t.Errorf("sketched level %d variance %v, want > 0", l, v)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 22}, 20000)
	a := New(DCS, 0.01, 24, Config{Seed: 42})
	b := New(DCS, 0.01, 24, Config{Seed: 42})
	feed(a, data)
	feed(b, data)
	for _, phi := range core.EvenPhis(0.1) {
		if a.Quantile(phi) != b.Quantile(phi) {
			t.Fatal("same seed produced different quantiles")
		}
	}
}

func TestMPCATUniverseAccuracy(t *testing.T) {
	// The headline turnstile workload: 24-bit MPCAT-like data.
	const n = 40000
	const eps = 0.01
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 23}, n)
	oracle := exact.New(data)
	for _, k := range []Kind{DCM, DCS} {
		s := New(k, eps, 24, Config{Seed: 24})
		feed(s, data)
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("%v on MPCAT-like: max error %v exceeds ε", k, maxErr)
		}
	}
}

func BenchmarkDCSInsert(b *testing.B) {
	s := New(DCS, 0.001, 32, Config{Seed: 1})
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(data[i&(1<<16-1)])
	}
}

func BenchmarkDCMInsert(b *testing.B) {
	s := New(DCM, 0.001, 32, Config{Seed: 1})
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(data[i&(1<<16-1)])
	}
}

func BenchmarkDCSQuantile(b *testing.B) {
	s := New(DCS, 0.001, 32, Config{Seed: 1})
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<17)
	for _, x := range data {
		s.Insert(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.5)
	}
}
