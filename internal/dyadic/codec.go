package dyadic

import (
	"fmt"

	"streamquantiles/internal/core"
	"streamquantiles/internal/freqsketch"
)

// The dyadic summaries are linear — every level is either an exact
// counter array or a linear sketch — so same-configuration instances
// merge by addition, and a summary serializes as its configuration plus
// per-level state. Hash functions are reconstructed from the stored
// seed, exactly as at construction time.

const dyadicCodecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) { return s.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler: the same bytes as
// MarshalBinary, appended onto dst so pooled buffers can be reused.
func (s *Sketch) AppendBinary(dst []byte) ([]byte, error) {
	e := core.EncoderFrom(dst)
	e.U64(dyadicCodecVersion)
	e.U64(uint64(s.kind))
	e.U64(uint64(s.bits))
	e.F64(s.eps)
	e.U64(uint64(s.w))
	e.U64(uint64(s.d))
	e.U64(s.cfg.Seed)
	e.Bool(s.cfg.NoExactLevels)
	e.I64(s.n)
	for l := range s.lvls {
		if s.lvls[l].exact != nil {
			e.Bool(true)
			e.I64s(s.lvls[l].exact)
			continue
		}
		e.Bool(false)
		blob, err := s.lvls[l].sk.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("dyadic: level %d: %w", l, err)
		}
		e.Blob(blob)
	}
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state. The encoding must have been produced by the same
// library version's MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	dec := core.NewDecoder(data)
	if v := dec.U64(); v != dyadicCodecVersion && dec.Err() == nil {
		return core.Corruptf("dyadic: unsupported encoding version %d", v)
	}
	kind := Kind(dec.U64())
	bits := int(dec.U64())
	eps := dec.F64()
	w := int(dec.U64())
	d := int(dec.U64())
	seed := dec.U64()
	noExact := dec.Bool()
	n := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	// Positive-form comparisons so NaN (which fails every comparison)
	// is rejected rather than slipping through to New's panic.
	if bits < 1 || bits > 62 || !(eps > 0 && eps < 1) {
		return core.Corruptf("dyadic: implausible encoded parameters bits=%d eps=%v", bits, eps)
	}
	// New panics on nonsense configurations and eagerly allocates up to
	// bits levels of w×d counters, so hostile encodings must be rejected
	// here: an unknown kind or oversized dimensions never reach the
	// constructor. The per-level product bound keeps the constructor's
	// allocation (which a tiny hostile encoding would otherwise control)
	// within the footprint of any sketch this library can actually run.
	if kind != DCM && kind != DCS && kind != DRSS {
		return core.Corruptf("dyadic: unknown sketch kind %d", int(kind))
	}
	if w < 1 || w > 1<<24 || d < 1 || d > 256 || int64(w)*int64(d) > 1<<22 {
		return core.Corruptf("dyadic: implausible sketch dimensions w=%d d=%d", w, d)
	}

	ns := New(kind, eps, bits, Config{Width: w, Depth: d, Seed: seed, NoExactLevels: noExact})
	ns.n = n
	for l := 0; l < bits; l++ {
		isExact := dec.Bool()
		if dec.Err() != nil {
			return dec.Err()
		}
		if isExact != (ns.lvls[l].exact != nil) {
			return core.Corruptf("dyadic: level %d exactness mismatch in encoding", l)
		}
		if isExact {
			vals := dec.I64s()
			if dec.Err() != nil {
				return dec.Err()
			}
			if len(vals) != len(ns.lvls[l].exact) {
				return core.Corruptf("dyadic: level %d has %d exact counters, want %d",
					l, len(vals), len(ns.lvls[l].exact))
			}
			copy(ns.lvls[l].exact, vals)
			continue
		}
		blob := dec.Blob()
		if dec.Err() != nil {
			return dec.Err()
		}
		if err := ns.lvls[l].sk.(interface{ UnmarshalBinary([]byte) error }).UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("dyadic: level %d: %w", l, err)
		}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("dyadic: %d trailing bytes", dec.Remaining())
	}
	*s = *ns
	return nil
}

// Merge adds other into s. Both summaries must have been built with the
// same kind, universe, dimensions and seed, so their levels share hash
// functions; merging then reduces to adding counters level-wise. The
// result summarizes the union of both streams — the distributed
// aggregation pattern of linear sketches.
func (s *Sketch) Merge(other *Sketch) error {
	if s.kind != other.kind || s.bits != other.bits || s.w != other.w ||
		s.d != other.d || s.cfg.Seed != other.cfg.Seed ||
		s.cfg.NoExactLevels != other.cfg.NoExactLevels {
		return fmt.Errorf("dyadic: cannot merge differently configured sketches")
	}
	for l := range s.lvls {
		if s.lvls[l].exact != nil {
			for i, v := range other.lvls[l].exact {
				s.lvls[l].exact[i] += v
			}
			continue
		}
		var err error
		switch a := s.lvls[l].sk.(type) {
		case *freqsketch.CountMin:
			err = a.Merge(other.lvls[l].sk.(*freqsketch.CountMin))
		case *freqsketch.CountSketch:
			err = a.Merge(other.lvls[l].sk.(*freqsketch.CountSketch))
		case *freqsketch.RSS:
			err = a.Merge(other.lvls[l].sk.(*freqsketch.RSS))
		default:
			err = fmt.Errorf("dyadic: unmergeable level sketch %T", s.lvls[l].sk)
		}
		if err != nil {
			return fmt.Errorf("dyadic: level %d: %w", l, err)
		}
	}
	s.n += other.n
	return nil
}
