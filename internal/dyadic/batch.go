package dyadic

import (
	"fmt"

	"streamquantiles/internal/core"
)

// batchChunk is the number of elements shifted per level pass; the
// shifted-interval buffer lives on the stack so SpaceBytes keeps the
// paper's accounting.
const batchChunk = 4096

// InsertBatch implements core.BatchTurnstile.
func (s *Sketch) InsertBatch(xs []uint64) { s.AddBatch(xs, 1) }

// DeleteBatch implements core.BatchTurnstile.
func (s *Sketch) DeleteBatch(xs []uint64) { s.AddBatch(xs, -1) }

// AddBatch implements core.BatchTurnstile: every element of xs receives
// the signed weight delta. The per-item path walks all levels per
// element; the batch path flips the nest to level-major per chunk, so
// the level bookkeeping (exact-vs-sketch dispatch, interval shift) runs
// once per chunk and the per-level sketches see whole slices (their own
// AddBatch hoists hash coefficients and keeps counter scatter
// row-local). The sketches are linear, so the reordering yields
// byte-identical counters.
func (s *Sketch) AddBatch(xs []uint64, delta int64) {
	for _, x := range xs {
		s.checkElement(x)
	}
	s.n += delta * int64(len(xs))
	var sh [batchChunk]uint64
	for len(xs) > 0 {
		m := len(xs)
		if m > batchChunk {
			m = batchChunk
		}
		chunk := xs[:m]
		for l := 0; l < s.bits; l++ {
			ivs := chunk
			if l > 0 {
				for i, x := range chunk {
					sh[i] = x >> l
				}
				ivs = sh[:m]
			}
			if s.lvls[l].exact != nil {
				ex := s.lvls[l].exact
				for _, iv := range ivs {
					ex[iv] += delta
				}
			} else {
				s.lvls[l].sk.AddBatch(ivs, delta)
			}
		}
		xs = xs[m:]
	}
}

// MergeSummary implements core.Mergeable. It leaves other unchanged.
func (s *Sketch) MergeSummary(other core.Summary) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("dyadic: cannot merge a %T", other)
	}
	return s.Merge(o)
}
