// Package dyadic implements the turnstile quantile algorithms of the
// paper's §3: a dyadic decomposition of the fixed universe [0, 2^bits)
// with one frequency-estimation sketch per level. Instantiating the
// per-level sketch with Count-Min yields DCM (Cormode & Muthukrishnan),
// with Count-Sketch yields DCS (the paper's new variant, with the
// improved O((1/ε)·log^1.5 u·log^1.5(log u/ε)) bound), and with the
// random subset-sum sketch yields DRSS (Gilbert et al.).
//
// Level l partitions the universe into intervals of length 2^l; an
// element x maps to interval x>>l. The rank of x is recovered by
// decomposing [0, x) into at most one dyadic interval per level and
// summing their estimated frequencies; a φ-quantile is found by
// descending the dyadic tree, choosing at each node the child whose
// estimated mass brackets the remaining target (§1.2.2, §3).
//
// Following §3, a level whose reduced universe is no larger than the
// sketch's own counter array keeps exact frequencies instead of a sketch
// — exact levels cost no accuracy and less space.
package dyadic

import (
	"fmt"
	"math"

	"streamquantiles/internal/core"
	"streamquantiles/internal/freqsketch"
)

// Kind selects the per-level frequency sketch.
type Kind int

// The three instantiations compared in the paper.
const (
	DCM  Kind = iota // Dyadic Count-Min
	DCS              // Dyadic Count-Sketch
	DRSS             // Dyadic random subset sum
)

// String returns the paper's name for the algorithm.
func (k Kind) String() string {
	switch k {
	case DCM:
		return "DCM"
	case DCS:
		return "DCS"
	case DRSS:
		return "DRSS"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// level is one stratum of the dyadic structure: either an exact counter
// array (for small reduced universes) or a sketch.
type level struct {
	exact []int64
	sk    freqsketch.Sketch
}

// Sketch is a turnstile quantile summary over [0, 2^bits).
type Sketch struct {
	kind Kind
	bits int
	eps  float64
	w, d int
	cfg  Config
	n    int64
	lvls []level // lvls[l] summarizes universe [0, 2^(bits-l)) of intervals
}

// Config carries the tunable parameters of the dyadic algorithms.
// Zero values select the paper's defaults.
type Config struct {
	// Width is the sketch width w; 0 derives it from Eps per §4.3.1:
	// w = (1/ε)·log₂u for DCM, w = √(log₂u)/ε for DCS and DRSS.
	Width int
	// Depth is the number of sketch rows d; 0 selects 7, the value the
	// paper's Tables 3–4 identify as best.
	Depth int
	// Seed drives all hash randomness.
	Seed uint64
	// NoExactLevels forces a sketch on every level even when the reduced
	// universe would fit exactly. Only used by the ablation benchmarks;
	// the paper's algorithms always use exact levels (§3).
	NoExactLevels bool
}

// New returns an empty turnstile summary of the given kind with error
// parameter eps over the universe [0, 2^bits).
func New(kind Kind, eps float64, bits int, cfg Config) *Sketch {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("dyadic: error parameter %v outside (0, 1)", eps))
	}
	if bits < 1 || bits > 62 {
		panic(fmt.Sprintf("dyadic: universe bits %d outside [1, 62]", bits))
	}
	d := cfg.Depth
	if d == 0 {
		d = 7
	}
	w := cfg.Width
	if w == 0 {
		switch kind {
		case DCM:
			w = int(math.Ceil(float64(bits) / eps))
		default:
			w = int(math.Ceil(math.Sqrt(float64(bits)) / eps))
		}
	}
	if w < 1 || d < 1 {
		panic(fmt.Sprintf("dyadic: invalid sketch dimensions w=%d d=%d", w, d))
	}

	s := &Sketch{kind: kind, bits: bits, eps: eps, w: w, d: d, cfg: cfg}
	sketchCounters := int64(w) * int64(d)
	for l := 0; l < bits; l++ {
		reduced := int64(1) << (bits - l)
		if reduced <= sketchCounters && !cfg.NoExactLevels {
			s.lvls = append(s.lvls, level{exact: make([]int64, reduced)})
			continue
		}
		var sk freqsketch.Sketch
		seed := cfg.Seed*1000003 + uint64(l)
		switch kind {
		case DCM:
			sk = freqsketch.NewCountMin(w, d, seed)
		case DCS:
			sk = freqsketch.NewCountSketch(w, d, seed)
		case DRSS:
			sk = freqsketch.NewRSS(w, d, seed)
		default:
			panic(fmt.Sprintf("dyadic: unknown kind %d", int(kind)))
		}
		s.lvls = append(s.lvls, level{sk: sk})
	}
	return s
}

// Kind returns the algorithm variant.
func (s *Sketch) Kind() Kind { return s.kind }

// Eps returns the error parameter.
func (s *Sketch) Eps() float64 { return s.eps }

// UniverseBits returns log₂ u.
func (s *Sketch) UniverseBits() int { return s.bits }

// Width returns the per-level sketch width w.
func (s *Sketch) Width() int { return s.w }

// Depth returns the per-level sketch depth d.
func (s *Sketch) Depth() int { return s.d }

// Count implements core.Summary: insertions minus deletions.
func (s *Sketch) Count() int64 { return s.n }

// Insert implements core.Turnstile.
func (s *Sketch) Insert(x uint64) { s.update(x, 1) }

// Delete implements core.Turnstile. Deleting an element that was never
// inserted violates the strict turnstile model and voids the guarantees.
func (s *Sketch) Delete(x uint64) { s.update(x, -1) }

// checkElement validates that x fits the sketch's fixed universe, the
// documented contract of Insert and Delete.
func (s *Sketch) checkElement(x uint64) {
	if x >= uint64(1)<<s.bits {
		panic(fmt.Sprintf("dyadic: element %d outside universe [0, 2^%d)", x, s.bits))
	}
}

func (s *Sketch) update(x uint64, delta int64) {
	s.checkElement(x)
	s.n += delta
	for l := 0; l < s.bits; l++ {
		iv := x >> l
		if s.lvls[l].exact != nil {
			s.lvls[l].exact[iv] += delta
		} else {
			s.lvls[l].sk.Add(iv, delta)
		}
	}
}

// checkLevel validates a dyadic level index against [0, bits].
func (s *Sketch) checkLevel(l int) {
	if l < 0 || l > s.bits {
		panic(fmt.Sprintf("dyadic: level %d outside [0, %d]", l, s.bits))
	}
}

// EstimateInterval returns the estimated number of current elements in
// the dyadic interval [iv·2^l, (iv+1)·2^l). Level bits (the whole
// universe) returns the exact count n.
func (s *Sketch) EstimateInterval(l int, iv uint64) int64 {
	if l == s.bits {
		return s.n
	}
	s.checkLevel(l)
	if s.lvls[l].exact != nil {
		return s.lvls[l].exact[iv]
	}
	return s.lvls[l].sk.Estimate(iv)
}

// LevelExact reports whether level l stores exact frequencies. Level
// bits (the root) is always exact.
func (s *Sketch) LevelExact(l int) bool {
	return l == s.bits || s.lvls[l].exact != nil
}

// LevelVariance returns the empirical variance estimate of level l's
// estimator (0 for exact levels), consumed by the OLS post-processing.
func (s *Sketch) LevelVariance(l int) float64 {
	if s.LevelExact(l) {
		return 0
	}
	return s.lvls[l].sk.VarianceEstimate()
}

// Rank implements core.Summary: decompose [0, x) into one dyadic
// interval per set bit of x and sum the estimates.
func (s *Sketch) Rank(x uint64) int64 {
	if x >= uint64(1)<<s.bits {
		return s.n
	}
	var r int64
	for l := 0; l < s.bits; l++ {
		if x>>l&1 == 1 {
			r += s.EstimateInterval(l, x>>l-1)
		}
	}
	return r
}

// Quantile implements core.Summary: descend the dyadic tree from the
// root, at each node comparing the remaining target rank against the
// estimated mass of the left child. Estimates are clamped to [0, rem] so
// the unbiased (possibly negative) DCS estimates cannot derail the walk.
func (s *Sketch) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if s.n <= 0 {
		panic(core.ErrEmpty)
	}
	target := float64(core.TargetRank(phi, s.n))
	var iv uint64 // current interval index at level l+1 (starts at root)
	for l := s.bits - 1; l >= 0; l-- {
		left := iv << 1
		c := float64(s.EstimateInterval(l, left))
		if c < 0 {
			c = 0
		}
		if target < c {
			iv = left
		} else {
			target -= c
			iv = left + 1
		}
	}
	return iv
}

// SpaceBytes implements core.Summary: exact arrays and sketches of every
// level plus scalar state.
func (s *Sketch) SpaceBytes() int64 {
	var bytes int64
	for _, lv := range s.lvls {
		if lv.exact != nil {
			bytes += int64(len(lv.exact)) * core.WordBytes
		} else {
			bytes += lv.sk.SpaceBytes()
		}
	}
	return bytes + 8*core.WordBytes
}
