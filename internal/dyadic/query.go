package dyadic

import (
	"sort"

	"streamquantiles/internal/core"
)

// Batched queries: k quantiles are answered by one shared top-down
// descent of the dyadic tree instead of k independent descents. The
// fractions are sorted once; at every level the frontier of query
// intervals is non-decreasing (children of ordered nodes stay ordered,
// and within one node the smaller target goes left), so the distinct
// left-child intervals form one short sorted list whose estimates are
// fetched with a single EstimateBatch call per level — sibling
// Count-Min/Count-Sketch row lookups batch together and each row's hash
// coefficients load once. The per-query arithmetic (float64 target,
// clamp-to-zero, subtract-left-mass) is exactly the per-φ descent, so
// results are byte-identical to Quantile.

// QuantileBatch implements core.QuantileBatcher.
func (s *Sketch) QuantileBatch(phis []float64) []uint64 {
	if s.n <= 0 {
		panic(core.ErrEmpty)
	}
	k := len(phis)
	order := make([]int, k)
	for i := range order {
		core.CheckPhi(phis[i])
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return phis[order[a]] < phis[order[b]] })

	targets := make([]float64, k)
	ivs := make([]uint64, k) // frontier: interval index per query, sorted
	for j, idx := range order {
		targets[j] = float64(core.TargetRank(phis[idx], s.n))
	}
	qIvs := make([]uint64, 0, k)
	qEst := make([]int64, k)
	for l := s.bits - 1; l >= 0; l-- {
		// Distinct left children of the (sorted) frontier.
		qIvs = qIvs[:0]
		for j := range ivs {
			left := ivs[j] << 1
			if len(qIvs) == 0 || qIvs[len(qIvs)-1] != left {
				qIvs = append(qIvs, left)
			}
		}
		est := qEst[:len(qIvs)]
		if lv := s.lvls[l]; lv.exact != nil {
			for p, iv := range qIvs {
				est[p] = lv.exact[iv]
			}
		} else {
			lv.sk.EstimateBatch(qIvs, est)
		}
		p := 0
		for j := range ivs {
			left := ivs[j] << 1
			for qIvs[p] != left {
				p++
			}
			c := float64(est[p])
			if c < 0 {
				c = 0
			}
			if targets[j] < c {
				ivs[j] = left
			} else {
				targets[j] -= c
				ivs[j] = left + 1
			}
		}
	}
	out := make([]uint64, k)
	for j, idx := range order {
		out[idx] = ivs[j]
	}
	return out
}

// RankBatch implements core.QuantileBatcher: the prefix decomposition
// [0, x) = one dyadic interval per set bit of x is evaluated level-major
// — one EstimateBatch per level over every query with that bit set —
// accumulating in ascending level order exactly as the per-x Rank.
func (s *Sketch) RankBatch(xs []uint64) []int64 {
	out := make([]int64, len(xs))
	limit := uint64(1) << s.bits
	for i, x := range xs {
		if x >= limit {
			out[i] = s.n
		}
	}
	idxs := make([]int, 0, len(xs))
	qIvs := make([]uint64, 0, len(xs))
	qEst := make([]int64, len(xs))
	for l := 0; l < s.bits; l++ {
		idxs, qIvs = idxs[:0], qIvs[:0]
		for i, x := range xs {
			if x < limit && x>>l&1 == 1 {
				idxs = append(idxs, i)
				qIvs = append(qIvs, x>>l-1)
			}
		}
		if len(qIvs) == 0 {
			continue
		}
		est := qEst[:len(qIvs)]
		if lv := s.lvls[l]; lv.exact != nil {
			for p, iv := range qIvs {
				est[p] = lv.exact[iv]
			}
		} else {
			lv.sk.EstimateBatch(qIvs, est)
		}
		for p, i := range idxs {
			out[i] += est[p]
		}
	}
	return out
}
