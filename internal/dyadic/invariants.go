package dyadic

import "fmt"

// Invariants implements invariant.Checkable: the per-level consistency of
// the dyadic decomposition. Sketched levels are randomized estimators and
// cannot be audited without the stream, but every exact level stores true
// frequencies, and those admit strong checks — the same additivity
// (parent count = sum of child counts) that the OLS post-processing step
// exploits as its constraint system:
//
//   - The structure has one stratum per level of the decomposition.
//   - Exact levels are non-negative everywhere (a negative count means
//     the strict turnstile model was violated by deleting an element
//     that was never inserted, which voids every guarantee).
//   - Each exact level's counts sum to n.
//   - Adjacent exact levels are additive: the count of a parent interval
//     equals the sum of its two children's counts.
func (s *Sketch) Invariants() error {
	if len(s.lvls) != s.bits {
		return fmt.Errorf("dyadic: %d levels, want one per universe bit = %d", len(s.lvls), s.bits)
	}
	if s.w < 1 || s.d < 1 {
		return fmt.Errorf("dyadic: invalid sketch dimensions w=%d d=%d", s.w, s.d)
	}
	for l := 0; l < s.bits; l++ {
		exact := s.lvls[l].exact
		if exact == nil {
			continue
		}
		if len(exact) != 1<<(s.bits-l) {
			return fmt.Errorf("dyadic: exact level %d has %d intervals, want %d",
				l, len(exact), 1<<(s.bits-l))
		}
		var sum int64
		for iv, c := range exact {
			if c < 0 {
				return fmt.Errorf("dyadic: exact level %d interval %d has negative count %d (strict turnstile violated)",
					l, iv, c)
			}
			sum += c
		}
		if sum != s.n {
			return fmt.Errorf("dyadic: exact level %d sums to %d, want n = %d", l, sum, s.n)
		}
		if l+1 < s.bits && s.lvls[l+1].exact != nil {
			parent := s.lvls[l+1].exact
			for iv := range parent {
				if got := exact[2*iv] + exact[2*iv+1]; parent[iv] != got {
					return fmt.Errorf("dyadic: additivity broken at level %d interval %d: parent %d, children sum %d",
						l+1, iv, parent[iv], got)
				}
			}
		}
	}
	return nil
}
