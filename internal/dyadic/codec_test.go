package dyadic

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

func TestCodecRoundTripAllKinds(t *testing.T) {
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 100}, 20000)
	for _, k := range kinds() {
		s := New(k, 0.02, 24, Config{Seed: 5})
		feed(s, data)
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%v: marshal: %v", k, err)
		}
		var restored Sketch
		if err := restored.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%v: unmarshal: %v", k, err)
		}
		if restored.Count() != s.Count() || restored.Kind() != k ||
			restored.Width() != s.Width() || restored.Depth() != s.Depth() {
			t.Fatalf("%v: parameters not restored", k)
		}
		for _, phi := range core.EvenPhis(0.1) {
			if restored.Quantile(phi) != s.Quantile(phi) {
				t.Fatalf("%v: quantile(%v) differs after round trip", k, phi)
			}
		}
		// The restored sketch must keep working: delete everything.
		for _, x := range data {
			restored.Delete(x)
		}
		if restored.Count() != 0 {
			t.Fatalf("%v: count %d after deleting all", k, restored.Count())
		}
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	// Two same-seed sketches over different streams merged must answer
	// like one sketch over the concatenation — exactly, since merging
	// linear sketches is counter addition.
	dataA := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 101}, 15000)
	dataB := streamgen.Generate(streamgen.Normal{Bits: 20, Sigma: 0.2, Seed: 102}, 15000)
	for _, k := range kinds() {
		a := New(k, 0.02, 20, Config{Seed: 6})
		b := New(k, 0.02, 20, Config{Seed: 6})
		whole := New(k, 0.02, 20, Config{Seed: 6})
		feed(a, dataA)
		feed(b, dataB)
		feed(whole, dataA)
		feed(whole, dataB)
		if err := a.Merge(b); err != nil {
			t.Fatalf("%v: merge: %v", k, err)
		}
		if a.Count() != whole.Count() {
			t.Fatalf("%v: merged count %d vs %d", k, a.Count(), whole.Count())
		}
		for _, phi := range core.EvenPhis(0.1) {
			if a.Quantile(phi) != whole.Quantile(phi) {
				t.Fatalf("%v: merged quantile(%v) differs from whole-stream", k, phi)
			}
		}
	}
}

func TestMergeAccuracy(t *testing.T) {
	// Merged summary must still meet the ε guarantee on the union.
	dataA := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 103}, 20000)
	dataB := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 104}, 20000)
	a := New(DCS, 0.02, 16, Config{Seed: 7})
	b := New(DCS, 0.02, 16, Config{Seed: 7})
	feed(a, dataA)
	feed(b, dataB)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	union := append(append([]uint64{}, dataA...), dataB...)
	oracle := exact.New(union)
	maxErr, _ := oracle.EvaluateSummary(a, 0.02)
	if maxErr > 0.02 {
		t.Errorf("merged DCS max error %v exceeds ε", maxErr)
	}
}

func TestMergeMismatchRejected(t *testing.T) {
	a := New(DCS, 0.02, 16, Config{Seed: 8})
	cases := []*Sketch{
		New(DCM, 0.02, 16, Config{Seed: 8}), // kind
		New(DCS, 0.02, 18, Config{Seed: 8}), // universe
		New(DCS, 0.02, 16, Config{Seed: 9}), // seed → different hashes
		New(DCS, 0.05, 16, Config{Seed: 8}), // eps → different width
	}
	for i, other := range cases {
		if err := a.Merge(other); err == nil {
			t.Errorf("case %d: mismatched merge accepted", i)
		}
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	s := New(DCS, 0.05, 16, Config{Seed: 10})
	feed(s, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 105}, 3000))
	blob, _ := s.MarshalBinary()
	for cut := 0; cut < len(blob); cut += 97 {
		var b Sketch
		if err := b.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated input of %d bytes", cut)
		}
	}
}
