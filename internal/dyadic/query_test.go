package dyadic

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

// TestQuantileBatchMatchesPerPhi pins the shared-descent batch to the
// per-φ walk bit for bit, for all three sketch kinds, with deletions in
// the stream and an unsorted φ list with duplicates.
func TestQuantileBatchMatchesPerPhi(t *testing.T) {
	phis := []float64{0.5, 0.01, 0.99, 0.25, 0.5, 0.75, 0.101, 0.9}
	for _, kind := range []Kind{DCM, DCS, DRSS} {
		s := New(kind, 0.02, 16, Config{Seed: 11})
		data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 3}, 20000)
		for _, x := range data {
			s.Insert(x)
		}
		for _, x := range data[:5000] {
			s.Delete(x)
		}
		batch := s.QuantileBatch(phis)
		for i, phi := range phis {
			if want := s.Quantile(phi); batch[i] != want {
				t.Errorf("%v: QuantileBatch[%d] (phi=%v) = %d, Quantile = %d", kind, i, phi, batch[i], want)
			}
		}
	}
}

// TestRankBatchMatchesPerX pins the level-major batched rank to the
// per-x decomposition, including out-of-universe queries.
func TestRankBatchMatchesPerX(t *testing.T) {
	for _, kind := range []Kind{DCM, DCS, DRSS} {
		s := New(kind, 0.02, 16, Config{Seed: 5})
		data := streamgen.Generate(streamgen.Zipf{Bits: 16, S: 1.1, Seed: 9}, 20000)
		for _, x := range data {
			s.Insert(x)
		}
		xs := append([]uint64{0, 1, 1 << 15, 1<<16 - 1, 1 << 16, 1 << 20}, data[:64]...)
		batch := s.RankBatch(xs)
		for i, x := range xs {
			if want := s.Rank(x); batch[i] != want {
				t.Errorf("%v: RankBatch[%d] (x=%d) = %d, Rank = %d", kind, i, x, batch[i], want)
			}
		}
	}
}

// TestQuantileBatchSingletonAndEmpty covers the edge shapes of the batch
// descent.
func TestQuantileBatchSingletonAndEmpty(t *testing.T) {
	s := New(DCS, 0.05, 12, Config{Seed: 1})
	for i := uint64(0); i < 3000; i++ {
		s.Insert(i % (1 << 12))
	}
	if got := s.QuantileBatch(nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	one := s.QuantileBatch([]float64{0.5})
	if want := s.Quantile(0.5); one[0] != want {
		t.Errorf("singleton batch = %d, Quantile = %d", one[0], want)
	}
	var _ core.QuantileBatcher = s // interface satisfaction
}
