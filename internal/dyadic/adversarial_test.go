package dyadic

import (
	"testing"

	"streamquantiles/internal/exact"
)

// Adversarial mass placements and churn for the dyadic sketches.

func TestMassSplitAcrossRootChildren(t *testing.T) {
	// Equal mass just below and just above the universe midpoint: every
	// level must cooperate for correct ranks near the median.
	const bits = 20
	const eps = 0.01
	for _, k := range []Kind{DCM, DCS} {
		s := New(k, eps, bits, Config{Seed: 1})
		var data []uint64
		for i := 0; i < 20000; i++ {
			lo := uint64(1<<19 - 1 - uint64(i%64))
			hi := uint64(1<<19 + uint64(i%64))
			s.Insert(lo)
			s.Insert(hi)
			data = append(data, lo, hi)
		}
		oracle := exact.New(data)
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > eps {
			t.Errorf("%v: midpoint-split max error %v", k, maxErr)
		}
	}
}

func TestChurnedDistributionShift(t *testing.T) {
	// Insert distribution A, then replace it element-for-element with
	// distribution B through deletes; the sketch must track B exactly as
	// if A never existed (linearity).
	const bits = 16
	const eps = 0.02
	fresh := New(DCS, eps, bits, Config{Seed: 2})
	churned := New(DCS, eps, bits, Config{Seed: 2})

	var b []uint64
	for i := 0; i < 30000; i++ {
		a := uint64(i%1024) << 6 // distribution A: multiples of 64
		bv := uint64(40000 + i%20000)
		if bv >= 1<<bits {
			bv = 1<<bits - 1
		}
		churned.Insert(a)
		churned.Insert(bv)
		churned.Delete(a)
		fresh.Insert(bv)
		b = append(b, bv)
	}
	if churned.Count() != fresh.Count() {
		t.Fatalf("counts differ: %d vs %d", churned.Count(), fresh.Count())
	}
	// Linearity: identical sketches, so identical answers.
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if churned.Quantile(phi) != fresh.Quantile(phi) {
			t.Errorf("phi=%v: churned %d vs fresh %d — linearity broken",
				phi, churned.Quantile(phi), fresh.Quantile(phi))
		}
	}
	oracle := exact.New(b)
	maxErr, _ := oracle.EvaluateSummary(churned, eps)
	if maxErr > eps {
		t.Errorf("churned max error %v", maxErr)
	}
}

func TestHeavySingleValueWithBackground(t *testing.T) {
	const bits = 16
	const eps = 0.02
	s := New(DCS, eps, bits, Config{Seed: 3})
	var data []uint64
	for i := 0; i < 50000; i++ {
		s.Insert(7777)
		data = append(data, 7777)
		if i%10 == 0 {
			v := uint64(i % (1 << bits))
			s.Insert(v)
			data = append(data, v)
		}
	}
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(s, eps)
	if maxErr > eps {
		t.Errorf("heavy-hitter max error %v", maxErr)
	}
	// The median must be the heavy value itself.
	if med := s.Quantile(0.5); med != 7777 {
		t.Errorf("median %d, want 7777", med)
	}
}
