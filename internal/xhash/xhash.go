// Package xhash provides the randomness substrate shared by the sketching
// algorithms: a fast deterministic seeded generator (SplitMix64) and
// k-wise independent hash families built from polynomial hashing over the
// Mersenne prime field GF(2^61 − 1).
//
// The Count-Min sketch requires pairwise (2-wise) independent bucket
// hashes; the Count-Sketch additionally requires 4-wise independent sign
// hashes (Charikar, Chen, Farach-Colton 2002). Polynomials of degree k−1
// with uniformly random coefficients over a prime field are the textbook
// construction for k-wise independence.
package xhash

import "math/bits"

// MersennePrime61 is 2^61 − 1, the field modulus used by the polynomial
// hash families in this package.
const MersennePrime61 = (1 << 61) - 1

// SplitMix64 is a tiny, fast, well-distributed 64-bit generator.
// It is the only source of randomness in the library, so a fixed seed
// reproduces every experiment bit-for-bit.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator with the given seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// State returns the generator's current internal state, for
// serialization.
func (s *SplitMix64) State() uint64 { return s.state }

// Restore sets the internal state, inverting State.
func (s *SplitMix64) Restore(state uint64) { s.state = state }

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		//lint:ignore SQ003 documented argument contract of the RNG primitive, mirroring math/rand
		panic("xhash: Intn with non-positive bound")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	if n == 0 {
		//lint:ignore SQ003 documented argument contract of the RNG primitive, mirroring math/rand
		panic("xhash: Uint64n with zero bound")
	}
	// Fast path: multiply-shift with rejection to remove modulo bias.
	for {
		v := s.Next()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Bool returns a fair coin flip.
func (s *SplitMix64) Bool() bool {
	return s.Next()&1 == 1
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (s *SplitMix64) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Mod61 reduces a 64-bit value modulo 2^61 − 1 to the canonical
// representative in [0, 2^61 − 1), provided x < 7·2^61 (any value a
// LazyMulFold chain of up to three steps can produce, and in particular
// any uint64 below 2^63.8). The fused sketch kernels hoist it out of
// their row loops.
func Mod61(x uint64) uint64 { return mod61(x) }

// mod61 reduces a 64-bit value modulo 2^61 − 1.
func mod61(x uint64) uint64 {
	x = (x & MersennePrime61) + (x >> 61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// MulMod61 computes a*b mod 2^61 − 1 for a, b < 2^61.
//
// The 128-bit product hi·2^64 + lo is reduced using 2^61 ≡ 1 (mod p):
// the product equals (hi<<3 | lo>>61)·2^61 + (lo & p), so it is congruent
// to (hi<<3 | lo>>61) + (lo & p).
func MulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	fold := hi<<3 | lo>>61
	return mod61(fold + (lo & MersennePrime61))
}

// AddMod61 computes a+b mod 2^61 − 1 for a, b < 2^61.
func AddMod61(a, b uint64) uint64 {
	return mod61(a + b)
}

// Poly is a polynomial hash over GF(2^61 − 1). A polynomial with k
// uniformly random coefficients gives a k-wise independent family on the
// domain [0, 2^61 − 1).
type Poly struct {
	coef []uint64 // coef[0] + coef[1]·x + coef[2]·x² + …
}

// NewPoly draws a degree-(k−1) polynomial with k coefficients from rng.
// The leading coefficient is forced non-zero so the polynomial has full
// degree. k must be at least 1.
func NewPoly(rng *SplitMix64, k int) *Poly {
	if k < 1 {
		panic("xhash: polynomial needs at least one coefficient")
	}
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = rng.Uint64n(MersennePrime61)
	}
	for coef[k-1] == 0 {
		coef[k-1] = rng.Uint64n(MersennePrime61)
	}
	return &Poly{coef: coef}
}

// Eval evaluates the polynomial at x (reduced into the field first) using
// Horner's rule. The result lies in [0, 2^61 − 1).
func (p *Poly) Eval(x uint64) uint64 {
	x = mod61(x)
	acc := p.coef[len(p.coef)-1]
	for i := len(p.coef) - 2; i >= 0; i-- {
		acc = AddMod61(MulMod61(acc, x), p.coef[i])
	}
	return acc
}

// EvalSlice evaluates the polynomial at every element of xs, writing the
// results into dst (which must be at least as long as xs). The hot sketch
// update loops use it to hoist the coefficient loads out of the per-item
// loop; the degree-2 and degree-4 families used by the sketches get
// straight-line Horner bodies.
// The straight-line bodies use lazy reduction: each Horner step leaves
// the accumulator partially reduced (< 2^61 + 8 after lazyMulStep, then
// < 2^62 after adding a canonical coefficient), and only the final
// store reduces to the canonical representative — the same value Eval
// computes, with the per-step compare-and-subtract and the AddMod61
// reductions gone.
// The straight-line bodies are additionally unrolled four elements per
// iteration: one Horner chain is serial in its multiplies, so a
// one-element loop leaves the multiplier idle for most of each chain's
// latency, while four independent chains in flight run it at
// throughput. The tail loop computes the identical per-element body.
func (p *Poly) EvalSlice(dst, xs []uint64) {
	_ = dst[:len(xs)]
	switch len(p.coef) {
	case 2:
		c0, c1 := p.coef[0], p.coef[1]
		i := 0
		for ; i+3 < len(xs); i += 4 {
			v0, v1 := mod61(xs[i]), mod61(xs[i+1])
			v2, v3 := mod61(xs[i+2]), mod61(xs[i+3])
			dst[i] = mod61(lazyMulFold(c1, v0) + c0)
			dst[i+1] = mod61(lazyMulFold(c1, v1) + c0)
			dst[i+2] = mod61(lazyMulFold(c1, v2) + c0)
			dst[i+3] = mod61(lazyMulFold(c1, v3) + c0)
		}
		for ; i < len(xs); i++ {
			dst[i] = mod61(lazyMulFold(c1, mod61(xs[i])) + c0)
		}
	case 4:
		c0, c1, c2, c3 := p.coef[0], p.coef[1], p.coef[2], p.coef[3]
		i := 0
		for ; i+3 < len(xs); i += 4 {
			v0, v1 := mod61(xs[i]), mod61(xs[i+1])
			v2, v3 := mod61(xs[i+2]), mod61(xs[i+3])
			s0 := lazyMulFold(c3, v0) + c2
			s1 := lazyMulFold(c3, v1) + c2
			s2 := lazyMulFold(c3, v2) + c2
			s3 := lazyMulFold(c3, v3) + c2
			s0 = lazyMulFold(s0, v0) + c1
			s1 = lazyMulFold(s1, v1) + c1
			s2 = lazyMulFold(s2, v2) + c1
			s3 = lazyMulFold(s3, v3) + c1
			dst[i] = mod61(lazyMulFold(s0, v0) + c0)
			dst[i+1] = mod61(lazyMulFold(s1, v1) + c0)
			dst[i+2] = mod61(lazyMulFold(s2, v2) + c0)
			dst[i+3] = mod61(lazyMulFold(s3, v3) + c0)
		}
		for ; i < len(xs); i++ {
			v := mod61(xs[i])
			acc := lazyMulFold(c3, v) + c2
			acc = lazyMulFold(acc, v) + c1
			dst[i] = mod61(lazyMulFold(acc, v) + c0)
		}
	default:
		for i, x := range xs {
			dst[i] = p.Eval(x)
		}
	}
}

// EvalPairSlice evaluates two polynomials of equal degree at every
// element of xs in a single pass, writing p's values into dst0 and q's
// into dst1. The two Horner chains are interleaved in the loop body, so
// two independent 64×64 multiply chains are in flight per iteration —
// the multiplier's latency is paid once, not twice — and x is reduced
// into the field once for both. Values are identical to EvalSlice run
// on each polynomial separately; degree pairs other than the sketch
// families' 2 and 4 fall back to exactly that.
func EvalPairSlice(p, q *Poly, dst0, dst1, xs []uint64) {
	_ = dst0[:len(xs)]
	_ = dst1[:len(xs)]
	if len(p.coef) != len(q.coef) {
		p.EvalSlice(dst0, xs)
		q.EvalSlice(dst1, xs)
		return
	}
	switch len(p.coef) {
	case 2:
		a0, a1 := p.coef[0], p.coef[1]
		b0, b1 := q.coef[0], q.coef[1]
		i := 0
		for ; i+1 < len(xs); i += 2 {
			v0, v1 := mod61(xs[i]), mod61(xs[i+1])
			dst0[i] = mod61(lazyMulFold(a1, v0) + a0)
			dst1[i] = mod61(lazyMulFold(b1, v0) + b0)
			dst0[i+1] = mod61(lazyMulFold(a1, v1) + a0)
			dst1[i+1] = mod61(lazyMulFold(b1, v1) + b0)
		}
		for ; i < len(xs); i++ {
			v := mod61(xs[i])
			dst0[i] = mod61(lazyMulFold(a1, v) + a0)
			dst1[i] = mod61(lazyMulFold(b1, v) + b0)
		}
	case 4:
		// Two rows × two elements = four independent multiply chains in
		// flight, enough to keep the 64×64 multiplier at throughput.
		a0, a1, a2, a3 := p.coef[0], p.coef[1], p.coef[2], p.coef[3]
		b0, b1, b2, b3 := q.coef[0], q.coef[1], q.coef[2], q.coef[3]
		i := 0
		for ; i+1 < len(xs); i += 2 {
			v0, v1 := mod61(xs[i]), mod61(xs[i+1])
			s0 := lazyMulFold(a3, v0) + a2
			t0 := lazyMulFold(b3, v0) + b2
			s1 := lazyMulFold(a3, v1) + a2
			t1 := lazyMulFold(b3, v1) + b2
			s0 = lazyMulFold(s0, v0) + a1
			t0 = lazyMulFold(t0, v0) + b1
			s1 = lazyMulFold(s1, v1) + a1
			t1 = lazyMulFold(t1, v1) + b1
			dst0[i] = mod61(lazyMulFold(s0, v0) + a0)
			dst1[i] = mod61(lazyMulFold(t0, v0) + b0)
			dst0[i+1] = mod61(lazyMulFold(s1, v1) + a0)
			dst1[i+1] = mod61(lazyMulFold(t1, v1) + b0)
		}
		for ; i < len(xs); i++ {
			v := mod61(xs[i])
			s := lazyMulFold(a3, v) + a2
			t := lazyMulFold(b3, v) + b2
			s = lazyMulFold(s, v) + a1
			t = lazyMulFold(t, v) + b1
			dst0[i] = mod61(lazyMulFold(s, v) + a0)
			dst1[i] = mod61(lazyMulFold(t, v) + b0)
		}
	default:
		p.EvalSlice(dst0, xs)
		q.EvalSlice(dst1, xs)
	}
}

// lazyMulStep computes a representative of a·b (mod 2^61 − 1) without
// the final compare-and-subtract, for a < 2^62 and b < 2^61. The
// 128-bit product folds as in MulMod61 (fold < 2^63 + 2^61 + 8 here),
// and one shift-and-add pass brings the result under 2^61 + 8 — small
// enough that adding a canonical coefficient keeps the next step's
// precondition, and that a final mod61 lands on the canonical value.
func lazyMulStep(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	fold := (hi<<3 | lo>>61) + (lo & MersennePrime61)
	return (fold & MersennePrime61) + (fold >> 61)
}

// lazyMulFold is the fully lazy multiply step: one fold, no
// re-normalization at all. The fold ⌊a·b/2^61⌋ + (a·b mod 2^61) is
// congruent to a·b (mod 2^61 − 1) and bounded by a + 2^61, so a Horner
// chain that starts from a canonical coefficient and adds a canonical
// coefficient after each step grows by at most 2^62 per step: after the
// three steps of the degree-4 family the accumulator is below 7·2^61 =
// 2^64 − 2^61, which both keeps this function's uint64 arithmetic
// overflow-free (fold ≤ a + 2^61 − 2 requires a ≤ 2^64 − 2^61) and
// lets the closing mod61 reach the canonical representative with its
// single compare-and-subtract (x < 7·2^61 ⇒ (x & p) + (x >> 61) <
// p + 7). b must be canonical (< 2^61). Three fewer ALU ops per step
// than lazyMulStep on the hottest path in the tree.
func lazyMulFold(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return (hi<<3 | lo>>61) + (lo & MersennePrime61)
}

// LazyMulFold exposes lazyMulFold to the fused sketch kernels in
// internal/freqsketch, which inline whole Horner chains (see the bounds
// in lazyMulFold's comment: chains of up to three steps from canonical
// coefficients stay below 7·2^61, and Mod61 closes them).
func LazyMulFold(a, b uint64) uint64 { return lazyMulFold(a, b) }

// Coefs returns the polynomial's coefficients (canonical, ascending
// degree). Callers must treat the slice as read-only; the fused sketch
// kernels use it to hoist coefficient loads into registers.
func (p *Poly) Coefs() []uint64 { return p.coef }

// Degree returns the number of coefficients (the independence order k).
func (p *Poly) Degree() int { return len(p.coef) }

// SpaceWords reports the number of 4-byte accounting words attributed to
// the polynomial's stored coefficients (each 64-bit coefficient counts as
// two words).
func (p *Poly) SpaceWords() int64 { return int64(2 * len(p.coef)) }

// Bucket is a k-wise independent hash into w buckets.
type Bucket struct {
	poly *Poly
	w    uint64
}

// NewBucket builds a k-wise independent bucket hash onto [0, w).
func NewBucket(rng *SplitMix64, k int, w int) *Bucket {
	if w <= 0 {
		panic("xhash: bucket hash needs a positive width")
	}
	return &Bucket{poly: NewPoly(rng, k), w: uint64(w)}
}

// Hash maps x to a bucket in [0, w).
func (b *Bucket) Hash(x uint64) int {
	return int(b.poly.Eval(x) % b.w)
}

// HashSlice maps every element of xs to its bucket, writing the results
// into dst (which must be at least as long as xs). The bucket reduction
// uses ReduceMod instead of a hardware division per element — same
// values, a fraction of the latency.
func (b *Bucket) HashSlice(dst, xs []uint64) {
	b.poly.EvalSlice(dst, xs)
	w := b.w
	m := Reciprocal(w)
	for i := range xs {
		dst[i] = ReduceMod(dst[i], w, m)
	}
}

// HashPairSlice maps every element of xs to its bucket under both b and
// c (which must share their width), writing the results into dst0 and
// dst1. The polynomial evaluations interleave via EvalPairSlice and the
// bucket reductions share one reciprocal; values are identical to two
// HashSlice calls.
func HashPairSlice(b, c *Bucket, dst0, dst1, xs []uint64) {
	if b.w != c.w {
		b.HashSlice(dst0, xs)
		c.HashSlice(dst1, xs)
		return
	}
	EvalPairSlice(b.poly, c.poly, dst0, dst1, xs)
	w := b.w
	m := Reciprocal(w)
	for i := range xs {
		dst0[i] = ReduceMod(dst0[i], w, m)
		dst1[i] = ReduceMod(dst1[i], w, m)
	}
}

// Reciprocal precomputes ⌊(2^64−1)/w⌋ for ReduceMod.
func Reciprocal(w uint64) uint64 { return ^uint64(0) / w }

// ReduceMod computes x % w exactly for x < 2^63, given m = Reciprocal(w),
// with two multiplies and a conditional subtract in place of a hardware
// division (Granlund–Montgomery reciprocal division). The quotient
// estimate ⌊xm/2^64⌋ is q or q−1: m ≥ 2^64/w − 2, so xm/2^64 ≥
// x/w − 2x/2^64 > x/w − 1.
func ReduceMod(x, w, m uint64) uint64 {
	q, _ := bits.Mul64(x, m)
	r := x - q*w
	if r >= w {
		r -= w
	}
	return r
}

// Width returns w.
func (b *Bucket) Width() int { return int(b.w) }

// HashPoly returns the underlying polynomial, for fused kernels that
// evaluate and bucket-reduce in one loop. Read-only.
func (b *Bucket) HashPoly() *Poly { return b.poly }

// SpaceWords accounts for the coefficients plus the stored width.
func (b *Bucket) SpaceWords() int64 { return b.poly.SpaceWords() + 1 }

// Sign is a 4-wise independent hash onto {−1, +1}, as required by the
// Count-Sketch analysis.
type Sign struct {
	poly *Poly
}

// NewSign builds a 4-wise independent sign hash.
func NewSign(rng *SplitMix64) *Sign {
	return &Sign{poly: NewPoly(rng, 4)}
}

// Hash maps x to −1 or +1 with equal probability.
func (s *Sign) Hash(x uint64) int64 {
	// The low bit of a field element produced by a 4-wise independent
	// polynomial is itself 4-wise independent and (up to O(2^-61) bias)
	// uniform on {0, 1}.
	if s.poly.Eval(x)&1 == 1 {
		return 1
	}
	return -1
}

// SpaceWords accounts for the stored coefficients.
func (s *Sign) SpaceWords() int64 { return s.poly.SpaceWords() }
