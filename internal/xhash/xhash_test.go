package xhash

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestSplitMix64SeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 1234567 (first outputs of
	// the canonical Vigna implementation).
	s := NewSplitMix64(1234567)
	got := s.Next()
	// Cross-check against an independent recomputation of the algorithm.
	z := uint64(1234567) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z = z ^ (z >> 31)
	if got != z {
		t.Fatalf("Next() = %#x, want %#x", got, z)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSplitMix64(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ≈ 0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	s := NewSplitMix64(3)
	const buckets = 10
	const n = 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 4*math.Sqrt(n/buckets) {
			t.Errorf("bucket %d count %d deviates from %d", b, c, n/buckets)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	s := NewSplitMix64(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestUint64nBounds(t *testing.T) {
	s := NewSplitMix64(5)
	for _, bound := range []uint64{1, 2, 3, 17, 1 << 40, math.MaxUint64} {
		for i := 0; i < 1000; i++ {
			if v := s.Uint64n(bound); v >= bound {
				t.Fatalf("Uint64n(%d) = %d out of range", bound, v)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSplitMix64(11)
	out := make([]int, 100)
	s.Perm(out)
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestMulMod61AgainstBig(t *testing.T) {
	s := NewSplitMix64(1)
	p := new(big.Int).SetUint64(MersennePrime61)
	for i := 0; i < 5000; i++ {
		a := s.Uint64n(MersennePrime61)
		b := s.Uint64n(MersennePrime61)
		got := MulMod61(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("MulMod61(%d, %d) = %d, want %d", a, b, got, want.Uint64())
		}
	}
}

func TestMulMod61EdgeCases(t *testing.T) {
	max := uint64(MersennePrime61 - 1)
	p := new(big.Int).SetUint64(MersennePrime61)
	for _, c := range [][2]uint64{{0, 0}, {0, max}, {max, max}, {1, max}, {max, 1}, {2, max}} {
		got := MulMod61(c[0], c[1])
		want := new(big.Int).Mul(new(big.Int).SetUint64(c[0]), new(big.Int).SetUint64(c[1]))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("MulMod61(%d, %d) = %d, want %d", c[0], c[1], got, want.Uint64())
		}
	}
}

func TestAddMod61(t *testing.T) {
	if got := AddMod61(MersennePrime61-1, 1); got != 0 {
		t.Errorf("AddMod61(p-1, 1) = %d, want 0", got)
	}
	if got := AddMod61(3, 4); got != 7 {
		t.Errorf("AddMod61(3, 4) = %d, want 7", got)
	}
}

func TestPolyEvalMatchesNaive(t *testing.T) {
	rng := NewSplitMix64(77)
	poly := NewPoly(rng, 4)
	p := new(big.Int).SetUint64(MersennePrime61)
	s := NewSplitMix64(78)
	for i := 0; i < 200; i++ {
		x := s.Uint64n(MersennePrime61)
		got := poly.Eval(x)
		want := big.NewInt(0)
		xi := big.NewInt(1)
		bx := new(big.Int).SetUint64(x)
		for _, c := range poly.coef {
			term := new(big.Int).Mul(new(big.Int).SetUint64(c), xi)
			want.Add(want, term)
			want.Mod(want, p)
			xi.Mul(xi, bx)
			xi.Mod(xi, p)
		}
		if got != want.Uint64() {
			t.Fatalf("Eval(%d) = %d, want %d", x, got, want.Uint64())
		}
	}
}

func TestPolyDeterministicPerSeed(t *testing.T) {
	a := NewPoly(NewSplitMix64(5), 2)
	b := NewPoly(NewSplitMix64(5), 2)
	for x := uint64(0); x < 100; x++ {
		if a.Eval(x) != b.Eval(x) {
			t.Fatal("same-seed polynomials disagree")
		}
	}
}

func TestNewPolyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoly(rng, 0) did not panic")
		}
	}()
	NewPoly(NewSplitMix64(1), 0)
}

func TestBucketRange(t *testing.T) {
	rng := NewSplitMix64(13)
	b := NewBucket(rng, 2, 37)
	for x := uint64(0); x < 10000; x++ {
		h := b.Hash(x)
		if h < 0 || h >= 37 {
			t.Fatalf("Hash(%d) = %d outside [0, 37)", x, h)
		}
	}
}

func TestBucketApproxUniform(t *testing.T) {
	rng := NewSplitMix64(17)
	const w = 16
	b := NewBucket(rng, 2, w)
	var counts [w]int
	const n = 64000
	for x := uint64(0); x < n; x++ {
		counts[b.Hash(x)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/w) > 6*math.Sqrt(n/w) {
			t.Errorf("bucket %d count %d far from %d", i, c, n/w)
		}
	}
}

func TestSignBalance(t *testing.T) {
	rng := NewSplitMix64(23)
	s := NewSign(rng)
	sum := int64(0)
	const n = 100000
	for x := uint64(0); x < n; x++ {
		v := s.Hash(x)
		if v != 1 && v != -1 {
			t.Fatalf("Sign.Hash(%d) = %d", x, v)
		}
		sum += v
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(n) {
		t.Errorf("sign sum %d too far from 0", sum)
	}
}

func TestSignPairwiseProductsBalance(t *testing.T) {
	// 4-wise independence implies E[g(x)g(y)] = 0 for x != y; check the
	// empirical product average over many pairs is near zero.
	rng := NewSplitMix64(29)
	s := NewSign(rng)
	sum := int64(0)
	const n = 50000
	for x := uint64(0); x < n; x++ {
		sum += s.Hash(x) * s.Hash(x+1000003)
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(n) {
		t.Errorf("pair product sum %d too far from 0", sum)
	}
}

func TestMod61Property(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		p := new(big.Int).SetUint64(MersennePrime61)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return MulMod61(a, b) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSpaceWords(t *testing.T) {
	rng := NewSplitMix64(31)
	p := NewPoly(rng, 4)
	if p.SpaceWords() != 8 {
		t.Errorf("Poly(4).SpaceWords() = %d, want 8", p.SpaceWords())
	}
	b := NewBucket(rng, 2, 10)
	if b.SpaceWords() != 5 {
		t.Errorf("Bucket(2).SpaceWords() = %d, want 5", b.SpaceWords())
	}
	s := NewSign(rng)
	if s.SpaceWords() != 8 {
		t.Errorf("Sign.SpaceWords() = %d, want 8", s.SpaceWords())
	}
}

func BenchmarkSplitMix64(b *testing.B) {
	s := NewSplitMix64(1)
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}

func BenchmarkMulMod61(b *testing.B) {
	x := uint64(0x123456789abcdef)
	for i := 0; i < b.N; i++ {
		x = MulMod61(x, 0xfedcba987654321)
	}
	sinkU64 = x
}

func BenchmarkPoly4Eval(b *testing.B) {
	p := NewPoly(NewSplitMix64(1), 4)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= p.Eval(uint64(i))
	}
	sinkU64 = acc
}

var sinkU64 uint64

func TestEvalPairSliceMatchesEval(t *testing.T) {
	rng := NewSplitMix64(77)
	xs := []uint64{0, 1, 2, MersennePrime61 - 1, MersennePrime61, ^uint64(0)}
	for i := 0; i < 64; i++ {
		xs = append(xs, rng.Next())
	}
	for _, degs := range [][2]int{{2, 2}, {4, 4}, {3, 3}, {2, 4}, {4, 2}} {
		p := NewPoly(rng, degs[0])
		q := NewPoly(rng, degs[1])
		dst0 := make([]uint64, len(xs))
		dst1 := make([]uint64, len(xs))
		EvalPairSlice(p, q, dst0, dst1, xs)
		for j, x := range xs {
			if dst0[j] != p.Eval(x) {
				t.Fatalf("degrees %v: dst0[%d] = %d, want Eval = %d", degs, j, dst0[j], p.Eval(x))
			}
			if dst1[j] != q.Eval(x) {
				t.Fatalf("degrees %v: dst1[%d] = %d, want Eval = %d", degs, j, dst1[j], q.Eval(x))
			}
		}
	}
}

func TestHashPairSliceMatchesHash(t *testing.T) {
	rng := NewSplitMix64(78)
	xs := make([]uint64, 100)
	for i := range xs {
		xs[i] = rng.Next()
	}
	for _, widths := range [][2]int{{97, 97}, {1, 1}, {64, 64}, {97, 101}} {
		b := NewBucket(rng, 2, widths[0])
		c := NewBucket(rng, 2, widths[1])
		dst0 := make([]uint64, len(xs))
		dst1 := make([]uint64, len(xs))
		HashPairSlice(b, c, dst0, dst1, xs)
		for j, x := range xs {
			if int(dst0[j]) != b.Hash(x) || int(dst1[j]) != c.Hash(x) {
				t.Fatalf("widths %v: pair hash (%d, %d) != (%d, %d) at %d",
					widths, dst0[j], dst1[j], b.Hash(x), c.Hash(x), j)
			}
		}
	}
}
