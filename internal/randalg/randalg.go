// Package randalg implements Random, the paper's simplified randomized
// quantile summary (§2.2) — the new variant the study finds to be the
// best randomized algorithm overall.
//
// With h = ⌈log₂(1/ε)⌉, the algorithm keeps b = h+1 buffers of
// s = ⌈(1/ε)·√log₂(1/ε)⌉ elements each, for O((1/ε)·log^1.5(1/ε)) space
// total. A buffer at level l holds s elements sampled one-per-2^l from a
// stretch of 2^l·s stream elements; the active level grows as
// l = max{0, ⌈log₂(n/(s·2^(h−1)))⌉} so early data is kept exactly and
// later data is sampled more sparsely. When every buffer is full, two
// buffers at the lowest occupied level merge: their elements are unioned
// in sorted order and either the odd or the even positions survive, each
// with probability 1/2, yielding one buffer at the next level. Both the
// sampling and the merging are unbiased, and the paper's Hoeffding
// argument shows all quantiles are ε-correct with constant probability.
package randalg

import (
	"fmt"
	"math"
	"slices"

	"streamquantiles/internal/core"
	"streamquantiles/internal/xhash"
)

// buffer is one of the b sample buffers.
type buffer struct {
	level int
	data  []uint64 // sorted once full
	full  bool
}

// Random is the randomized sample-based summary. It is safe for
// sequential use only.
type Random struct {
	eps     float64
	h       int
	s       int
	n       int64
	compact bool // lazy buffer allocation (NewCompact)

	bufs []*buffer
	cur  *buffer // buffer currently being filled, nil between buffers

	// Per-block sampling state for the buffer being filled: each block of
	// 2^level consecutive elements contributes the element at a uniformly
	// chosen offset.
	blockSize int64
	blockPos  int64
	pickAt    int64
	candidate uint64

	rng *xhash.SplitMix64
}

// New returns an empty Random summary with error parameter eps in (0, 1),
// seeded deterministically from seed. Buffers are pre-allocated, so the
// footprint is fixed by ε alone — the behavior the paper measures
// (§4.2.5: "the buffers are pre-allocated according to ε").
func New(eps float64, seed uint64) *Random {
	return newRandom(eps, seed, false)
}

// NewCompact is New with lazy buffer allocation: buffers grow as data
// arrives, so short streams cost proportional space instead of the full
// ε-determined footprint. The algorithm and its guarantees are
// identical; only SpaceBytes differs. Used by the sliding-window
// summary, whose blocks summarize bounded stretches.
func NewCompact(eps float64, seed uint64) *Random {
	return newRandom(eps, seed, true)
}

// sizeParams computes h = ⌈log₂(1/ε)⌉ (floored at 1) and s = ⌈√h/ε⌉ in
// floating point, so callers — the codec in particular — can veto an
// implausible footprint before any allocation happens. (Converting an
// out-of-range float to int is undefined in Go, so the check must run
// on the float values.)
func sizeParams(eps float64) (hf, sf float64) {
	hf = math.Ceil(math.Log2(1 / eps))
	if hf < 1 {
		hf = 1
	}
	return hf, math.Ceil(math.Sqrt(hf) / eps)
}

func newRandom(eps float64, seed uint64, compact bool) *Random {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("randalg: error parameter %v outside (0, 1)", eps))
	}
	hf, sf := sizeParams(eps)
	h, s := int(hf), int(sf)
	r := &Random{
		eps:     eps,
		h:       h,
		s:       s,
		compact: compact,
		bufs:    make([]*buffer, 0, h+1),
		rng:     xhash.NewSplitMix64(seed),
	}
	for i := 0; i < h+1; i++ {
		b := &buffer{}
		if !compact {
			b.data = make([]uint64, 0, s)
		}
		r.bufs = append(r.bufs, b)
	}
	return r
}

// Eps returns the error parameter.
func (r *Random) Eps() float64 { return r.eps }

// BufferCount returns b = h+1.
func (r *Random) BufferCount() int { return len(r.bufs) }

// BufferSize returns s.
func (r *Random) BufferSize() int { return r.s }

// Count implements core.Summary.
func (r *Random) Count() int64 { return r.n }

// activeLevel computes l = max{0, ⌈log₂(n/(s·2^(h−1)))⌉} for the current n.
func (r *Random) activeLevel() int {
	den := float64(r.s) * math.Pow(2, float64(r.h-1))
	l := int(math.Ceil(math.Log2(float64(r.n+1) / den)))
	if l < 0 {
		l = 0
	}
	return l
}

// Update implements core.CashRegister.
func (r *Random) Update(x uint64) {
	r.n++
	if r.cur == nil {
		r.startBuffer()
	}

	// One uniformly positioned sample per block of 2^level elements.
	if r.blockPos == r.pickAt {
		r.candidate = x
	}
	r.blockPos++
	if r.blockPos == r.blockSize {
		r.cur.data = append(r.cur.data, r.candidate)
		r.blockPos = 0
		r.pickAt = int64(r.rng.Uint64n(uint64(r.blockSize)))
		if len(r.cur.data) == r.s {
			r.finishBuffer()
		}
	}
}

// startBuffer claims an empty buffer (merging to create one if necessary)
// and initializes its sampling state at the current active level.
func (r *Random) startBuffer() {
	b := r.emptyBuffer()
	if b == nil {
		r.mergeLowest()
		b = r.emptyBuffer()
	}
	b.level = r.activeLevel()
	r.cur = b
	r.blockSize = int64(1) << b.level
	r.blockPos = 0
	r.pickAt = int64(r.rng.Uint64n(uint64(r.blockSize)))
}

func (r *Random) emptyBuffer() *buffer {
	for _, b := range r.bufs {
		if !b.full && b != r.cur {
			return b
		}
	}
	return nil
}

func (r *Random) finishBuffer() {
	slices.Sort(r.cur.data)
	r.cur.full = true
	r.cur = nil
}

// mergeLowest merges the two full buffers with the lowest levels into one
// buffer, freeing one slot. When the lowest occupied level holds at least
// two buffers this is exactly the paper's rule; in the rare state where
// every full buffer sits at a distinct level, the lower of the two is
// first promoted — each element kept with probability 1/2 and the level
// incremented, an unbiased re-sampling — until the levels match.
func (r *Random) mergeLowest() {
	a, b := r.selectMergePair()
	if a == nil || b == nil {
		//lint:ignore SQ003 corruption guard: mergeLowest only runs with all buffers full, so this is unreachable
		panic("randalg: mergeLowest with fewer than two full buffers")
	}
	for a.level < b.level {
		promote(a, r.rng)
	}
	mergeInto(a, b, r.rng)
}

// selectMergePair returns two full buffers at the lowest level holding at
// least two of them. If every full buffer sits at a distinct level (a
// rare state possible after Merge), it falls back to the two lowest
// levels; the caller promotes the lower buffer to equalize.
func (r *Random) selectMergePair() (a, b *buffer) {
	var full []*buffer
	for _, x := range r.bufs {
		if x.full {
			full = append(full, x)
		}
	}
	slices.SortStableFunc(full, func(p, q *buffer) int { return p.level - q.level })
	for i := 0; i+1 < len(full); i++ {
		if full[i].level == full[i+1].level {
			return full[i+1], full[i] // same level: order irrelevant
		}
	}
	if len(full) >= 2 {
		return full[0], full[1] // distinct levels: promote full[0] up
	}
	return nil, nil
}

// promote raises a buffer one level by keeping each element with
// probability 1/2; the per-element weight doubles, so the buffer remains
// an unbiased sample of its stretch of the stream.
func promote(b *buffer, rng *xhash.SplitMix64) {
	out := b.data[:0]
	for _, v := range b.data {
		if rng.Bool() {
			out = append(out, v)
		}
	}
	b.data = out
	b.level++
}

// mergeInto merges b into a: union in sorted order, keep odd or even
// positions with equal probability, result at level max(level)+1. b is
// emptied.
func mergeInto(a, b *buffer, rng *xhash.SplitMix64) {
	merged := make([]uint64, 0, len(a.data)+len(b.data))
	i, j := 0, 0
	for i < len(a.data) && j < len(b.data) {
		if a.data[i] <= b.data[j] {
			merged = append(merged, a.data[i])
			i++
		} else {
			merged = append(merged, b.data[j])
			j++
		}
	}
	merged = append(merged, a.data[i:]...)
	merged = append(merged, b.data[j:]...)

	start := 0
	if rng.Bool() {
		start = 1
	}
	out := a.data[:0]
	for k := start; k < len(merged); k += 2 {
		out = append(out, merged[k])
	}
	lv := a.level
	if b.level > lv {
		lv = b.level
	}
	a.data = out
	a.level = lv + 1
	a.full = true

	b.data = b.data[:0]
	b.full = false
	b.level = 0
}

// Clone returns a deep copy of the summary, including the RNG state, so
// the copy can be merged or advanced without disturbing the original.
func (r *Random) Clone() *Random {
	c := &Random{
		eps:       r.eps,
		h:         r.h,
		s:         r.s,
		compact:   r.compact,
		n:         r.n,
		blockSize: r.blockSize,
		blockPos:  r.blockPos,
		pickAt:    r.pickAt,
		candidate: r.candidate,
		rng:       xhash.NewSplitMix64(0),
	}
	c.rng.Restore(r.rng.State())
	for _, b := range r.bufs {
		nb := &buffer{level: b.level, full: b.full}
		capWant := cap(b.data)
		if !r.compact && capWant < r.s {
			capWant = r.s
		}
		nb.data = make([]uint64, len(b.data), capWant)
		copy(nb.data, b.data)
		c.bufs = append(c.bufs, nb)
		if b == r.cur {
			c.cur = nb
		}
	}
	return c
}

// samples collects every retained element with its weight 2^level,
// including the partially filled buffer, sorted by value.
func (r *Random) samples() []core.WeightedValue {
	var out []core.WeightedValue
	for _, b := range r.bufs {
		if len(b.data) == 0 {
			continue
		}
		w := int64(1) << b.level
		for _, v := range b.data {
			out = append(out, core.WeightedValue{V: v, W: w})
		}
	}
	core.SortWeighted(out)
	return out
}

// Rank implements core.Summary: r̂(x) = Σ_X 2^l(X)·|{v ∈ X : v < x}|.
func (r *Random) Rank(x uint64) int64 {
	return core.WeightedRank(r.samples(), x)
}

// Quantile implements core.Summary.
func (r *Random) Quantile(phi float64) uint64 {
	if r.n == 0 {
		panic(core.ErrEmpty)
	}
	return core.WeightedQuantile(r.samples(), phi)
}

// QuantileBatch implements core.QuantileBatcher: the retained samples are
// collected and sorted once for the whole batch.
func (r *Random) QuantileBatch(phis []float64) []uint64 {
	if r.n == 0 {
		panic(core.ErrEmpty)
	}
	return core.WeightedQuantiles(r.samples(), phis)
}

// RankBatch implements core.QuantileBatcher.
func (r *Random) RankBatch(xs []uint64) []int64 {
	return core.WeightedRanks(r.samples(), xs)
}

// AppendQuerySnapshot implements core.Snapshotter.
func (r *Random) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	core.AppendWeightedSnapshot(qs, r.samples())
}

// Merge folds other into r, preserving the one-pass guarantees in the
// mergeable-summary sense (the algorithm is inspired by the mergeable
// summaries of Agarwal et al.): buffer sets are combined and the lowest
// levels merged pairwise until the configured number of buffers remains.
// Both summaries must have the same eps.
// checkCompatible validates a merge partner: both summaries must have
// been built with bit-identical eps (exact comparison is the intent, so
// it goes through Float64bits).
func (r *Random) checkCompatible(other *Random) {
	if math.Float64bits(other.eps) != math.Float64bits(r.eps) {
		panic("randalg: merging summaries with different eps")
	}
}

func (r *Random) Merge(other *Random) {
	r.checkCompatible(other)
	// Close out partially filled buffers; their samples are already
	// weighted by their level.
	if r.cur != nil && len(r.cur.data) > 0 {
		r.finishPartial(r.cur)
	}
	r.cur = nil
	if other.cur != nil && len(other.cur.data) > 0 {
		other.finishPartial(other.cur)
	}
	other.cur = nil

	for _, b := range other.bufs {
		if b.full {
			nb := &buffer{level: b.level, data: slices.Clone(b.data), full: true}
			r.bufs = append(r.bufs, nb)
		}
	}
	r.n += other.n

	for r.fullCount() > r.h+1 {
		r.mergeLowest()
		r.compactSlots()
	}
}

func (r *Random) finishPartial(b *buffer) {
	slices.Sort(b.data)
	b.full = true
}

func (r *Random) fullCount() int {
	c := 0
	for _, b := range r.bufs {
		if b.full {
			c++
		}
	}
	return c
}

// compactSlots drops surplus empty slots beyond the configured b.
func (r *Random) compactSlots() {
	if len(r.bufs) <= r.h+1 {
		return
	}
	kept := r.bufs[:0]
	empties := 0
	for _, b := range r.bufs {
		if b.full {
			kept = append(kept, b)
		} else if empties == 0 && len(kept) < r.h+1 {
			kept = append(kept, b)
			empties++
		}
	}
	for len(kept) < r.h+1 {
		kept = append(kept, &buffer{data: make([]uint64, 0, r.s)})
	}
	r.bufs = kept
}

// SpaceBytes implements core.Summary: each buffer is charged its
// capacity (the full s for pre-allocated summaries, the grown capacity
// for compact ones) plus level/flag words, plus scalar state.
func (r *Random) SpaceBytes() int64 {
	var words int64
	for _, b := range r.bufs {
		c := cap(b.data)
		if !r.compact && c < r.s {
			c = r.s
		}
		words += int64(c) + 2
	}
	words += 10
	return words * core.WordBytes
}
