package randalg

import (
	"math"
	"testing"

	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
	"streamquantiles/internal/xhash"
)

// TestManyWayMergeTree merges 32 shard summaries pairwise up a tree and
// checks accuracy on the union — the mergeable-summary usage pattern.
func TestManyWayMergeTree(t *testing.T) {
	const shards = 32
	const per = 10000
	const eps = 0.02
	var all []uint64
	var sums []*Random
	for i := 0; i < shards; i++ {
		data := streamgen.Generate(streamgen.Normal{
			Bits: 20, Sigma: 0.05 + 0.01*float64(i%5), Seed: uint64(100 + i),
		}, per)
		all = append(all, data...)
		s := New(eps, uint64(200+i))
		feed(s, data)
		sums = append(sums, s)
	}
	for len(sums) > 1 {
		var next []*Random
		for i := 0; i+1 < len(sums); i += 2 {
			sums[i].Merge(sums[i+1])
			next = append(next, sums[i])
		}
		sums = next
	}
	root := sums[0]
	if root.Count() != shards*per {
		t.Fatalf("merged count %d", root.Count())
	}
	oracle := exact.New(all)
	maxErr, _ := oracle.EvaluateSummary(root, eps)
	// 5 merge generations: allow 3ε.
	if maxErr > 3*eps {
		t.Errorf("tree-merged max error %v exceeds 3ε", maxErr)
	}
}

// TestSamplingVarianceShrinksWithS verifies the space/accuracy knob: a
// smaller ε (bigger s) must reduce the observed error distribution's
// spread across seeds.
func TestSamplingVarianceShrinksWithS(t *testing.T) {
	const n = 60000
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 1}, n)
	oracle := exact.New(data)
	spread := func(eps float64) float64 {
		var errs []float64
		for seed := uint64(0); seed < 12; seed++ {
			s := New(eps, seed)
			feed(s, data)
			m, _ := oracle.EvaluateSummary(s, 0.05)
			errs = append(errs, m)
		}
		var mean, ss float64
		for _, e := range errs {
			mean += e
		}
		mean /= float64(len(errs))
		for _, e := range errs {
			ss += (e - mean) * (e - mean)
		}
		return math.Sqrt(ss / float64(len(errs)))
	}
	coarse, fine := spread(0.05), spread(0.005)
	if fine >= coarse {
		t.Errorf("error spread did not shrink with s: %v (ε=0.05) vs %v (ε=0.005)",
			coarse, fine)
	}
}

// TestMergeCommutative checks A∪B ≈ B∪A in distribution: both orders
// answer within ε of the union's truth (not bit-identical — merge
// consumes randomness — but both valid).
func TestMergeCommutative(t *testing.T) {
	const eps = 0.02
	dataA := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 31}, 20000)
	dataB := streamgen.Generate(streamgen.Zipf{Bits: 20, S: 1.5, Seed: 32}, 20000)
	union := append(append([]uint64{}, dataA...), dataB...)
	oracle := exact.New(union)

	mk := func(data []uint64, seed uint64) *Random {
		s := New(eps, seed)
		feed(s, data)
		return s
	}
	ab := mk(dataA, 41)
	ab.Merge(mk(dataB, 42))
	ba := mk(dataB, 43)
	ba.Merge(mk(dataA, 44))
	for _, s := range []*Random{ab, ba} {
		if s.Count() != int64(len(union)) {
			t.Fatalf("count %d", s.Count())
		}
		maxErr, _ := oracle.EvaluateSummary(s, eps)
		if maxErr > 2*eps {
			t.Errorf("merge order produced max error %v", maxErr)
		}
	}
}

// TestLevelWeightsSumToN: the invariant behind the rank estimator.
func TestLevelWeightsSumToN(t *testing.T) {
	s := New(0.01, 51)
	rng := xhash.NewSplitMix64(52)
	for i := 0; i < 300000; i++ {
		s.Update(rng.Next())
		if i%50000 == 0 {
			var w int64
			for _, b := range s.bufs {
				w += int64(len(b.data)) << b.level
			}
			// In-progress sampling block: up to blockSize−1 elements are
			// observed but not yet represented.
			drift := int64(s.blockPos)
			if got := w + drift; got != s.n {
				t.Fatalf("weight %d + in-block %d != n %d", w, drift, s.n)
			}
		}
	}
}
