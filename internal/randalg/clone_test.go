package randalg

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

func TestCloneIndependent(t *testing.T) {
	orig := New(0.02, 5)
	feed(orig, streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 6}, 40000))
	clone := orig.Clone()

	// Clone answers identically…
	for _, phi := range core.EvenPhis(0.1) {
		if clone.Quantile(phi) != orig.Quantile(phi) {
			t.Fatal("clone answers differently")
		}
	}
	// …and diverging the clone leaves the original untouched.
	before := orig.Quantile(0.5)
	feed(clone, streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 7}, 40000))
	if orig.Quantile(0.5) != before {
		t.Error("updating the clone mutated the original")
	}
	if clone.Count() != 80000 || orig.Count() != 40000 {
		t.Errorf("counts wrong: clone %d orig %d", clone.Count(), orig.Count())
	}
}

func TestCloneContinuesLikeOriginal(t *testing.T) {
	// Clone carries the RNG state: advancing clone and original with the
	// same suffix keeps them identical.
	a := New(0.02, 9)
	feed(a, streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 10}, 30000))
	b := a.Clone()
	tail := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 11}, 30000)
	feed(a, tail)
	feed(b, tail)
	for _, phi := range core.EvenPhis(0.1) {
		if a.Quantile(phi) != b.Quantile(phi) {
			t.Fatal("clone diverged under identical suffix")
		}
	}
}

func TestMergeOfClonesDoublesWeight(t *testing.T) {
	a := New(0.05, 12)
	feed(a, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 13}, 20000))
	b := a.Clone()
	a.Merge(b)
	if a.Count() != 40000 {
		t.Errorf("merged count %d", a.Count())
	}
	// Quantiles of the doubled multiset match the original distribution.
	orig := New(0.05, 12)
	feed(orig, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 13}, 20000))
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		got, want := a.Quantile(phi), orig.Quantile(phi)
		diff := int64(got) - int64(want)
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.1*float64(1<<16) {
			t.Errorf("self-merged quantile(%v) %d far from %d", phi, got, want)
		}
	}
}
