package randalg

import "streamquantiles/internal/core"

const codecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler: the complete
// mid-stream state — buffers, the in-progress buffer's sampling block,
// and the RNG — so a restored summary continues the stream bit-for-bit
// identically to one that never stopped.
func (r *Random) MarshalBinary() ([]byte, error) { return r.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler: the same bytes as
// MarshalBinary, appended onto dst so pooled buffers can be reused.
func (r *Random) AppendBinary(dst []byte) ([]byte, error) {
	e := core.EncoderFrom(dst)
	e.U64(codecVersion)
	e.F64(r.eps)
	e.I64(r.n)
	e.U64(r.rng.State())

	e.U64(uint64(len(r.bufs)))
	curIdx := -1
	for i, b := range r.bufs {
		if b == r.cur {
			curIdx = i
		}
		e.U64(uint64(b.level))
		e.Bool(b.full)
		e.U64s(b.data)
	}
	e.I64(int64(curIdx))
	e.I64(r.blockSize)
	e.I64(r.blockPos)
	e.I64(r.pickAt)
	e.U64(r.candidate)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state.
func (r *Random) UnmarshalBinary(data []byte) error {
	dec := core.NewDecoder(data)
	if v := dec.U64(); v != codecVersion && dec.Err() == nil {
		return core.Corruptf("randalg: unsupported encoding version %d", v)
	}
	eps := dec.F64()
	n := dec.I64()
	rngState := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	// Positive-form comparisons so NaN (which fails every comparison)
	// is rejected rather than slipping through to New's panic.
	if !(eps > 0 && eps < 1) || n < 0 {
		return core.Corruptf("randalg: implausible encoded parameters eps=%v n=%d", eps, n)
	}
	// Buffers are pre-allocated from ε alone, so a hostile ε (a denormal
	// survives the range check above) could demand an absurd footprint
	// from a few dozen input bytes. Veto before any allocation.
	// Positive form again so a non-finite footprint (1/eps overflowing
	// to +Inf for denormal eps) cannot compare its way past the veto.
	if hf, sf := sizeParams(eps); !((hf+1)*sf <= 1<<22) {
		return core.Corruptf("randalg: implausible eps %v: footprint %.0f elements", eps, (hf+1)*sf)
	}

	nr := New(eps, 0)
	nr.n = n
	nr.rng.Restore(rngState)
	count := dec.Len()
	if dec.Err() == nil && count > 4*len(nr.bufs)+16 {
		return core.Corruptf("randalg: implausible buffer count %d", count)
	}
	nr.bufs = nr.bufs[:0]
	for i := 0; i < count && dec.Err() == nil; i++ {
		b := &buffer{
			level: int(dec.U64()),
			full:  dec.Bool(),
			data:  dec.U64s(),
		}
		if cap(b.data) < nr.s {
			grown := make([]uint64, len(b.data), nr.s)
			copy(grown, b.data)
			b.data = grown
		}
		nr.bufs = append(nr.bufs, b)
	}
	curIdx := int(dec.I64())
	nr.blockSize = dec.I64()
	nr.blockPos = dec.I64()
	nr.pickAt = dec.I64()
	nr.candidate = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("randalg: %d trailing bytes", dec.Remaining())
	}
	if curIdx >= len(nr.bufs) {
		return core.Corruptf("randalg: current-buffer index %d out of range", curIdx)
	}
	if curIdx >= 0 {
		nr.cur = nr.bufs[curIdx]
	}
	*r = *nr
	return nil
}
