package randalg

import (
	"fmt"
	"slices"
)

// Invariants implements invariant.Checkable: the buffer-hierarchy
// structure the Hoeffding argument for Random's guarantee rests on.
//
//   - Every buffer holds at most s elements at a sane level.
//   - Full buffers are sorted (the k-way merge and the query path both
//     assume it).
//   - At most h+1 buffers are full (the configured hierarchy size; Merge
//     restores this bound before returning).
//   - The per-block sampling state of the buffer being filled is
//     coherent: block size is 2^level and both cursor and pick position
//     lie inside the block.
//   - Weight accounting: the retained weighted samples Σ 2^level·|B|
//     track n. Promotion and odd-length merges conserve weight only in
//     expectation (each is an unbiased halving), so the check is a
//     gross-corruption bound rather than an equality: pure streaming
//     keeps Σ ≤ n exactly, and the random drift Merge can introduce
//     stays far inside the 4(n+1) ceiling enforced here.
func (r *Random) Invariants() error {
	if r.n < 0 {
		return fmt.Errorf("randalg: negative count %d", r.n)
	}
	if len(r.bufs) < r.h+1 {
		return fmt.Errorf("randalg: %d buffer slots, want at least h+1 = %d", len(r.bufs), r.h+1)
	}
	var total int64
	full := 0
	curSeen := false
	for i, b := range r.bufs {
		if len(b.data) > r.s {
			return fmt.Errorf("randalg: buffer %d holds %d > s = %d elements", i, len(b.data), r.s)
		}
		if b.level < 0 || b.level > 62 {
			return fmt.Errorf("randalg: buffer %d at impossible level %d", i, b.level)
		}
		if b.full {
			full++
			if !slices.IsSorted(b.data) {
				return fmt.Errorf("randalg: full buffer %d is not sorted", i)
			}
		}
		if b == r.cur {
			curSeen = true
			if b.full {
				return fmt.Errorf("randalg: buffer being filled is marked full")
			}
		}
		total += int64(len(b.data)) << b.level
	}
	if full > r.h+1 {
		return fmt.Errorf("randalg: %d full buffers exceed hierarchy size h+1 = %d", full, r.h+1)
	}
	if r.cur != nil {
		if !curSeen {
			return fmt.Errorf("randalg: current buffer is not one of the %d slots", len(r.bufs))
		}
		if r.blockSize != int64(1)<<r.cur.level {
			return fmt.Errorf("randalg: block size %d does not match level %d", r.blockSize, r.cur.level)
		}
		if r.blockPos < 0 || r.blockPos >= r.blockSize {
			return fmt.Errorf("randalg: block position %d outside [0, %d)", r.blockPos, r.blockSize)
		}
		if r.pickAt < 0 || r.pickAt >= r.blockSize {
			return fmt.Errorf("randalg: sample position %d outside [0, %d)", r.pickAt, r.blockSize)
		}
	}
	if total > 4*(r.n+1) {
		return fmt.Errorf("randalg: retained weight %d far exceeds stream length %d", total, r.n)
	}
	return nil
}
