package randalg

import (
	"math"
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

func feed(r *Random, data []uint64) {
	for _, x := range data {
		r.Update(x)
	}
}

func TestParameters(t *testing.T) {
	r := New(0.01, 1)
	// h = ceil(log2(100)) = 7, b = 8, s = ceil(sqrt(7)*100) = 265.
	if r.BufferCount() != 8 {
		t.Errorf("b = %d, want 8", r.BufferCount())
	}
	if r.BufferSize() != 265 {
		t.Errorf("s = %d, want 265", r.BufferSize())
	}
}

func TestErrorWithinEpsAcrossSeeds(t *testing.T) {
	const n = 50000
	const eps = 0.02
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 99}, n)
	oracle := exact.New(data)
	for seed := uint64(1); seed <= 10; seed++ {
		r := New(eps, seed)
		feed(r, data)
		maxErr, avgErr := oracle.EvaluateSummary(r, eps)
		if maxErr > eps {
			t.Errorf("seed %d: max error %v exceeds ε=%v", seed, maxErr, eps)
		}
		if avgErr > maxErr {
			t.Errorf("seed %d: avg %v > max %v", seed, avgErr, maxErr)
		}
	}
}

func TestErrorOnSkewAndOrder(t *testing.T) {
	const n = 40000
	const eps = 0.02
	for _, gen := range []streamgen.Generator{
		streamgen.Normal{Bits: 20, Sigma: 0.05, Seed: 3},
		streamgen.Sorted{Inner: streamgen.Uniform{Bits: 24, Seed: 4}},
		streamgen.MPCATLike{Seed: 5},
	} {
		data := streamgen.Generate(gen, n)
		oracle := exact.New(data)
		r := New(eps, 7)
		feed(r, data)
		maxErr, _ := oracle.EvaluateSummary(r, eps)
		if maxErr > eps {
			t.Errorf("%s: max error %v exceeds ε", gen.Name(), maxErr)
		}
	}
}

func TestSmallStreamIsExact(t *testing.T) {
	// While n ≤ s·2^(h−1) the active level is 0: no sampling, and with no
	// merges yet the summary holds the stream exactly.
	r := New(0.05, 2)
	for i := uint64(1); i <= 100; i++ {
		r.Update(i)
	}
	if q := r.Quantile(0.5); q < 45 || q > 55 {
		t.Errorf("median of 1..100 = %d", q)
	}
	if got := r.Rank(51); got != 50 {
		t.Errorf("Rank(51) = %d, want 50 (exact regime)", got)
	}
}

func TestCountTracksStream(t *testing.T) {
	r := New(0.05, 3)
	for i := 0; i < 12345; i++ {
		r.Update(uint64(i))
	}
	if r.Count() != 12345 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestSpaceConstantInN(t *testing.T) {
	// "The space used by Random is constant, because the buffers are
	// pre-allocated according to ε" (paper §4.2.5).
	const eps = 0.01
	small := New(eps, 4)
	large := New(eps, 4)
	feed(small, streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 5}, 10000))
	feed(large, streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 6}, 200000))
	if small.SpaceBytes() != large.SpaceBytes() {
		t.Errorf("space changed with n: %d vs %d", small.SpaceBytes(), large.SpaceBytes())
	}
}

func TestSpaceMatchesTheory(t *testing.T) {
	const eps = 0.001
	r := New(eps, 1)
	// b·s words ≈ (1/ε)·log2(1/ε)^1.5
	want := float64(r.BufferCount()*r.BufferSize()) * core.WordBytes
	got := float64(r.SpaceBytes())
	if got < want || got > 1.1*want {
		t.Errorf("space %v not within [1, 1.1]× of b·s bound %v", got, want)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 7}, 30000)
	a := New(0.01, 42)
	b := New(0.01, 42)
	feed(a, data)
	feed(b, data)
	for _, phi := range core.EvenPhis(0.1) {
		if a.Quantile(phi) != b.Quantile(phi) {
			t.Fatal("same seed produced different quantiles")
		}
	}
}

func TestUnbiasedRank(t *testing.T) {
	// Averaged over seeds, the estimated rank should center on the truth.
	const n = 30000
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 8}, n)
	oracle := exact.New(data)
	probe := uint64(1) << 19
	want := float64(oracle.Rank(probe))
	var sum float64
	const runs = 40
	for seed := uint64(0); seed < runs; seed++ {
		r := New(0.05, seed)
		feed(r, data)
		sum += float64(r.Rank(probe))
	}
	mean := sum / runs
	if math.Abs(mean-want) > 0.01*float64(n) {
		t.Errorf("mean estimated rank %v vs true %v: bias too large", mean, want)
	}
}

func TestMergeTwoStreams(t *testing.T) {
	const n = 30000
	const eps = 0.02
	dataA := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 9}, n)
	dataB := streamgen.Generate(streamgen.Normal{Bits: 24, Sigma: 0.1, Seed: 10}, n)
	a := New(eps, 11)
	b := New(eps, 12)
	feed(a, dataA)
	feed(b, dataB)
	a.Merge(b)
	if a.Count() != 2*n {
		t.Fatalf("merged count %d", a.Count())
	}
	all := append(append([]uint64{}, dataA...), dataB...)
	oracle := exact.New(all)
	maxErr, _ := oracle.EvaluateSummary(a, eps)
	if maxErr > 2*eps {
		t.Errorf("merged max error %v exceeds 2ε", maxErr)
	}
}

func TestMergeEpsMismatchPanics(t *testing.T) {
	a := New(0.01, 1)
	b := New(0.02, 1)
	defer func() {
		if recover() == nil {
			t.Error("Merge with different eps did not panic")
		}
	}()
	a.Merge(b)
}

func TestEmptyQuantilePanics(t *testing.T) {
	r := New(0.1, 1)
	defer func() {
		if recover() == nil {
			t.Error("Quantile on empty summary did not panic")
		}
	}()
	r.Quantile(0.5)
}

func TestBadEpsPanics(t *testing.T) {
	for _, eps := range []float64{0, 1, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", eps)
				}
			}()
			New(eps, 1)
		}()
	}
}

func TestLongStreamLevelsRise(t *testing.T) {
	// After many elements the active level must exceed 0 (sampling is on)
	// and accuracy must persist.
	const eps = 0.05
	r := New(eps, 13)
	const n = 400000
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 14}, n)
	feed(r, data)
	if r.activeLevel() == 0 {
		t.Error("active level still 0 after long stream; sampling never engaged")
	}
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(r, eps)
	if maxErr > eps {
		t.Errorf("long-stream max error %v exceeds ε", maxErr)
	}
}

func TestPromoteUnbiased(t *testing.T) {
	// Promotion halves the buffer in expectation and doubles its level.
	rngSeeds := []uint64{1, 2, 3, 4, 5}
	var totalKept int
	for _, seed := range rngSeeds {
		b := &buffer{level: 2, data: make([]uint64, 1000)}
		for i := range b.data {
			b.data[i] = uint64(i)
		}
		r := New(0.5, seed)
		promote(b, r.rng)
		if b.level != 3 {
			t.Fatalf("promote level = %d, want 3", b.level)
		}
		totalKept += len(b.data)
	}
	mean := float64(totalKept) / float64(len(rngSeeds))
	if mean < 400 || mean > 600 {
		t.Errorf("promotion kept %v on average, want ≈ 500", mean)
	}
}

func BenchmarkUpdate(b *testing.B) {
	r := New(0.001, 1)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Update(data[i&(1<<16-1)])
	}
}
