package randalg

import (
	"fmt"
	"math"

	"streamquantiles/internal/core"
)

// UpdateBatch implements core.BatchCashRegister by skipping whole
// sampling blocks: per-item Update touches each element only to compare
// blockPos against pickAt, so a batch can advance the block cursor by
// whole chunks, read the one sampled candidate by offset, and consume
// the RNG only at block completions and buffer starts — exactly the
// per-item draw sequence. The resulting state is byte-identical to
// per-item Update.
func (r *Random) UpdateBatch(xs []uint64) {
	i := 0
	for i < len(xs) {
		counted := 0
		if r.cur == nil {
			// startBuffer reads n (the active-level schedule), so count
			// the element that opens the buffer before calling it.
			r.n++
			r.startBuffer()
			counted = 1
		}
		take := int(r.blockSize - r.blockPos)
		if take > len(xs)-i {
			take = len(xs) - i
		}
		r.n += int64(take - counted)
		if off := r.pickAt - r.blockPos; off >= 0 && off < int64(take) {
			r.candidate = xs[i+int(off)]
		}
		r.blockPos += int64(take)
		i += take
		if r.blockPos == r.blockSize {
			r.cur.data = append(r.cur.data, r.candidate)
			r.blockPos = 0
			r.pickAt = int64(r.rng.Uint64n(uint64(r.blockSize)))
			if len(r.cur.data) == r.s {
				r.finishBuffer()
			}
		}
	}
}

// MergeSummary implements core.Mergeable. Merge closes the partial
// buffer of its argument, so the argument is cloned first and other is
// left untouched.
func (r *Random) MergeSummary(other core.Summary) error {
	o, ok := other.(*Random)
	if !ok {
		return fmt.Errorf("randalg: cannot merge a %T", other)
	}
	if math.Float64bits(o.eps) != math.Float64bits(r.eps) {
		return fmt.Errorf("randalg: cannot merge summaries with eps %v and %v", r.eps, o.eps)
	}
	r.Merge(o.Clone())
	return nil
}
