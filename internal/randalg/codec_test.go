package randalg

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/streamgen"
)

func TestCodecRoundTripContinuesIdentically(t *testing.T) {
	// The strongest possible property for a randomized summary: stopping,
	// serializing, restoring, and continuing must be bit-identical to
	// never stopping, because the RNG state travels with the summary.
	head := streamgen.Generate(streamgen.MPCATLike{Seed: 70}, 30000)
	tail := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 71}, 30000)

	straight := New(0.01, 42)
	feed(straight, head)
	feed(straight, tail)

	stopped := New(0.01, 42)
	feed(stopped, head)
	blob, err := stopped.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0.5, 0)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	feed(restored, tail)

	if restored.Count() != straight.Count() {
		t.Fatalf("count %d vs %d", restored.Count(), straight.Count())
	}
	for _, phi := range core.EvenPhis(0.05) {
		a, b := restored.Quantile(phi), straight.Quantile(phi)
		if a != b {
			t.Fatalf("quantile(%v): restored %d vs straight %d", phi, a, b)
		}
	}
	if restored.SpaceBytes() != straight.SpaceBytes() {
		t.Errorf("space %d vs %d", restored.SpaceBytes(), straight.SpaceBytes())
	}
}

func TestCodecMidBufferState(t *testing.T) {
	// Marshal in the middle of a sampling block and verify the partial
	// candidate state survives.
	r := New(0.05, 7)
	for i := uint64(0); i < 100_123; i++ { // odd count: mid-block
		r.Update(i)
	}
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0.5, 0)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.blockPos != r.blockPos || restored.pickAt != r.pickAt ||
		restored.candidate != r.candidate || restored.blockSize != r.blockSize {
		t.Error("sampling block state not preserved")
	}
	if (restored.cur == nil) != (r.cur == nil) {
		t.Error("current-buffer presence not preserved")
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	r := New(0.05, 1)
	feed(r, streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 72}, 5000))
	blob, _ := r.MarshalBinary()
	for cut := 0; cut < len(blob); cut += 7 {
		var b Random
		if err := b.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated input of %d bytes", cut)
		}
	}
}

func TestCodecEmptySummary(t *testing.T) {
	r := New(0.1, 3)
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(0.5, 0)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != 0 {
		t.Errorf("restored empty summary has count %d", restored.Count())
	}
	restored.Update(5)
	if q := restored.Quantile(0.5); q != 5 {
		t.Errorf("restored summary broken: quantile = %d", q)
	}
}
