package window

import "fmt"

// Invariants implements invariant.Checkable: the block bookkeeping the
// sliding-window error argument depends on, plus a cascade into the deep
// checks of every live block's Random sub-summary.
//
//   - Sealed blocks hold exactly blockSize elements and end at
//     consecutive blockSize-aligned stream positions ≤ pos.
//   - No fully expired block survives (every sealed block's end lies
//     inside the window).
//   - The covered element count stays inside the documented envelope
//     min(pos, W) ≤ n ≤ W + blockSize − 1, the ±one-block quantization
//     that contributes the εW/2 half of the error budget.
func (w *Windowed) Invariants() error {
	if w.blockSize < 1 {
		return fmt.Errorf("window: block size %d < 1", w.blockSize)
	}
	if w.pos < 0 {
		return fmt.Errorf("window: negative stream position %d", w.pos)
	}
	cutoff := w.pos - w.window
	var n int64
	prevEnd := int64(-1)
	for i, b := range w.blocks {
		c := b.summary.Count()
		if c != w.blockSize {
			return fmt.Errorf("window: sealed block %d holds %d elements, want %d", i, c, w.blockSize)
		}
		if b.end <= cutoff {
			return fmt.Errorf("window: block %d (end %d) expired at position %d but survives", i, b.end, w.pos)
		}
		if b.end > w.pos {
			return fmt.Errorf("window: block %d ends at %d, beyond stream position %d", i, b.end, w.pos)
		}
		if prevEnd >= 0 && b.end != prevEnd+w.blockSize {
			return fmt.Errorf("window: block %d ends at %d, want contiguous %d", i, b.end, prevEnd+w.blockSize)
		}
		prevEnd = b.end
		if err := b.summary.Invariants(); err != nil {
			return fmt.Errorf("window: block %d: %w", i, err)
		}
		n += c
	}
	if w.cur != nil {
		c := w.cur.summary.Count()
		if c >= w.blockSize {
			return fmt.Errorf("window: open block holds %d elements, want < %d", c, w.blockSize)
		}
		if err := w.cur.summary.Invariants(); err != nil {
			return fmt.Errorf("window: open block: %w", err)
		}
		n += c
	}
	min := w.pos
	if w.window < min {
		min = w.window
	}
	if n < min || n > w.window+w.blockSize-1 {
		return fmt.Errorf("window: covered count %d outside envelope [%d, %d]",
			n, min, w.window+w.blockSize-1)
	}
	return nil
}
