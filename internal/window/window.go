// Package window provides sliding-window quantiles: the summary answers
// φ-quantile queries over (approximately) the most recent W stream
// elements, forgetting older data — the extension of the quantile
// problem studied by Arasu and Manku (PODS 2004), which the paper's
// introduction lists among the problem's variations.
//
// The construction is block-based: the window splits into blocks of
// ⌈εW/2⌉ consecutive elements, each summarized by a mergeable Random
// summary with error ε/2; expired blocks are dropped whole. A query
// merges clones of the live block summaries and answers from the merged
// summary. Two error sources add up: the sub-summaries contribute ε/2
// relative rank error, and window expiry is quantized to whole blocks,
// contributing at most one block = εW/2 elements. The result is an
// ε-approximate quantile over a window of W′ elements for some
// W ≤ W′ < W + εW/2.
//
// Space is the sum of ~2/ε block summaries. A block stores at most
// min(εW/2, O((1/ε)·log^1.5(1/ε))) words — short blocks are held exactly
// (lazy allocation), long ones compress — so the total is
// min(W, O(ε⁻²·polylog)) words: real compression appears once
// εW/2 exceeds a block summary's exact regime. Arasu and Manku's
// multi-resolution scheme shaves a further 1/ε factor; this simpler
// construction favors clarity and reuses the mergeable Random summary.
package window

import (
	"fmt"
	"math"

	"streamquantiles/internal/core"
	"streamquantiles/internal/randalg"
)

// block is one sealed (or in-progress) stretch of the stream.
type block struct {
	end     int64 // stream position one past the block's last element
	summary *randalg.Random
}

// Windowed summarizes the most recent W elements of a stream.
type Windowed struct {
	eps       float64
	window    int64
	blockSize int64
	seed      uint64
	pos       int64 // total elements observed
	blocks    []*block
	cur       *block
}

// New returns a sliding-window summary with error parameter eps over a
// window of the most recent w elements.
func New(eps float64, w int64, seed uint64) *Windowed {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("window: error parameter %v outside (0, 1)", eps))
	}
	if w < 2 {
		panic(fmt.Sprintf("window: window size %d too small", w))
	}
	bs := int64(math.Ceil(eps * float64(w) / 2))
	if bs < 1 {
		bs = 1
	}
	// At most ⌈W/bs⌉+1 blocks are ever live (expiry drops whole blocks),
	// so the slice never regrows inside Update.
	return &Windowed{
		eps: eps, window: w, blockSize: bs, seed: seed,
		blocks: make([]*block, 0, w/bs+2),
	}
}

// Eps returns the error parameter.
func (w *Windowed) Eps() float64 { return w.eps }

// Window returns the configured window length W.
func (w *Windowed) Window() int64 { return w.window }

// BlockSize returns the expiry granularity ⌈εW/2⌉.
func (w *Windowed) BlockSize() int64 { return w.blockSize }

// Update observes one stream element.
func (w *Windowed) Update(x uint64) {
	if w.cur == nil {
		w.seed++
		w.cur = &block{summary: randalg.NewCompact(w.eps/2, w.seed)}
	}
	w.cur.summary.Update(x)
	w.pos++
	if w.cur.summary.Count() == int64(w.blockSize) {
		w.cur.end = w.pos
		w.blocks = append(w.blocks, w.cur)
		w.cur = nil
	}
	w.expire()
}

// expire drops blocks that lie entirely outside the window.
func (w *Windowed) expire() {
	cutoff := w.pos - w.window
	i := 0
	for i < len(w.blocks) && w.blocks[i].end <= cutoff {
		i++
	}
	if i > 0 {
		w.blocks = append(w.blocks[:0], w.blocks[i:]...)
	}
}

// Count reports the number of elements currently covered: at least
// min(pos, W), at most W + blockSize − 1.
func (w *Windowed) Count() int64 {
	var n int64
	for _, b := range w.blocks {
		n += b.summary.Count()
	}
	if w.cur != nil {
		n += w.cur.summary.Count()
	}
	return n
}

// merged builds a one-shot summary of the live window by merging clones
// of the block summaries.
func (w *Windowed) merged() *randalg.Random {
	var acc *randalg.Random
	fold := func(b *block) {
		if b == nil || b.summary.Count() == 0 {
			return
		}
		if acc == nil {
			acc = b.summary.Clone()
			return
		}
		acc.Merge(b.summary.Clone())
	}
	for _, b := range w.blocks {
		fold(b)
	}
	fold(w.cur)
	return acc
}

// Quantile returns an estimated φ-quantile over the live window.
func (w *Windowed) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	m := w.merged()
	if m == nil {
		panic(core.ErrEmpty)
	}
	return m.Quantile(phi)
}

// Quantiles extracts a batch of fractions from one merged view.
func (w *Windowed) Quantiles(phis []float64) []uint64 {
	return w.QuantileBatch(phis)
}

// QuantileBatch implements core.QuantileBatcher: one merged view answers
// the whole batch.
func (w *Windowed) QuantileBatch(phis []float64) []uint64 {
	m := w.merged()
	if m == nil {
		panic(core.ErrEmpty)
	}
	return m.QuantileBatch(phis)
}

// RankBatch implements core.QuantileBatcher.
func (w *Windowed) RankBatch(xs []uint64) []int64 {
	m := w.merged()
	if m == nil {
		return make([]int64, len(xs))
	}
	return m.RankBatch(xs)
}

// AppendQuerySnapshot implements core.Snapshotter by flattening the
// one-shot merged view — the expensive per-query merge is exactly what
// an epoch-cached snapshot amortizes away for this summary.
func (w *Windowed) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	m := w.merged()
	if m == nil {
		qs.Reset()
		return
	}
	m.AppendQuerySnapshot(qs)
}

// Rank returns the estimated number of live elements smaller than x.
func (w *Windowed) Rank(x uint64) int64 {
	m := w.merged()
	if m == nil {
		return 0
	}
	return m.Rank(x)
}

// SpaceBytes reports the footprint: every live block summary plus
// bookkeeping.
func (w *Windowed) SpaceBytes() int64 {
	var bytes int64
	for _, b := range w.blocks {
		bytes += b.summary.SpaceBytes() + 2*core.WordBytes
	}
	if w.cur != nil {
		bytes += w.cur.summary.SpaceBytes() + 2*core.WordBytes
	}
	return bytes + 8*core.WordBytes
}

// BlockCount reports the number of live blocks (test/observability hook).
func (w *Windowed) BlockCount() int {
	n := len(w.blocks)
	if w.cur != nil {
		n++
	}
	return n
}
