package window

import (
	"testing"

	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

func TestWindowTracksRecentData(t *testing.T) {
	// Phase 1 streams small values, phase 2 large ones; after phase 2 has
	// filled the window, the median must be a large value — old data
	// forgotten.
	const W = 20000
	w := New(0.02, W, 1)
	for i := 0; i < 3*W; i++ {
		w.Update(uint64(1000 + i%500))
	}
	for i := 0; i < W+W/10; i++ {
		w.Update(uint64(1_000_000 + i%500))
	}
	med := w.Quantile(0.5)
	if med < 1_000_000 {
		t.Errorf("median %d still reflects expired data", med)
	}
}

func TestWindowAccuracyAgainstExactWindow(t *testing.T) {
	const W = 30000
	const eps = 0.02
	const n = 100000
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 2}, n)
	w := New(eps, W, 3)
	for _, x := range data {
		w.Update(x)
	}
	// Exact content of the worst-case covered window: between the last W
	// and W + blockSize elements. Evaluate against the covered span.
	covered := w.Count()
	oracle := exact.New(data[int64(n)-covered:])
	maxErr, _ := oracle.EvaluateSummary(windowAdapter{w}, eps)
	if maxErr > eps {
		t.Errorf("window max error %v exceeds ε=%v", maxErr, eps)
	}
}

// windowAdapter exposes Windowed as a core.Summary for the oracle.
type windowAdapter struct{ w *Windowed }

func (a windowAdapter) Count() int64                { return a.w.Count() }
func (a windowAdapter) Rank(x uint64) int64         { return a.w.Rank(x) }
func (a windowAdapter) Quantile(phi float64) uint64 { return a.w.Quantile(phi) }
func (a windowAdapter) SpaceBytes() int64           { return a.w.SpaceBytes() }

func TestWindowCountBounds(t *testing.T) {
	const W = 10000
	w := New(0.05, W, 4)
	for i := 0; i < 50000; i++ {
		w.Update(uint64(i))
		c := w.Count()
		limit := int64(W) + w.BlockSize()
		if c > limit {
			t.Fatalf("count %d exceeds W + blockSize = %d", c, limit)
		}
		if i >= W && c < int64(W)-w.BlockSize() {
			t.Fatalf("count %d fell below W − blockSize after warm-up", c)
		}
	}
}

func TestWindowBlockCountBounded(t *testing.T) {
	const W = 20000
	const eps = 0.05
	w := New(eps, W, 5)
	for i := 0; i < 10*W; i++ {
		w.Update(uint64(i))
	}
	// ≈ 2/ε blocks cover the window, plus the in-progress one.
	limit := int(2/eps) + 2
	if bc := w.BlockCount(); bc > limit {
		t.Errorf("%d live blocks, want ≤ %d", bc, limit)
	}
}

func TestWindowSmallStreams(t *testing.T) {
	w := New(0.1, 1000, 6)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile on empty window did not panic")
			}
		}()
		w.Quantile(0.5)
	}()
	w.Update(42)
	if q := w.Quantile(0.5); q != 42 {
		t.Errorf("single-element window quantile = %d", q)
	}
	if w.Count() != 1 {
		t.Errorf("count = %d", w.Count())
	}
}

func TestWindowQuantilesBatch(t *testing.T) {
	w := New(0.05, 5000, 7)
	for i := 0; i < 20000; i++ {
		w.Update(uint64(i % 1000))
	}
	qs := w.Quantiles([]float64{0.25, 0.5, 0.75})
	if len(qs) != 3 || qs[0] > qs[1] || qs[1] > qs[2] {
		t.Errorf("batch quantiles %v not monotone", qs)
	}
}

func TestWindowQueriesDoNotMutate(t *testing.T) {
	// Queries merge clones; the live blocks must remain untouched.
	w := New(0.05, 10000, 8)
	for i := 0; i < 30000; i++ {
		w.Update(uint64(i))
	}
	before := w.Quantile(0.5)
	for i := 0; i < 50; i++ {
		_ = w.Quantile(0.5)
		_ = w.Rank(15000)
	}
	if after := w.Quantile(0.5); after != before {
		t.Errorf("repeated queries changed the answer: %d → %d", before, after)
	}
}

func TestWindowBadParamsPanic(t *testing.T) {
	for _, c := range []struct {
		eps float64
		w   int64
	}{{0, 100}, {1, 100}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v, %d) did not panic", c.eps, c.w)
				}
			}()
			New(c.eps, c.w, 1)
		}()
	}
}

func TestWindowSpaceBounded(t *testing.T) {
	// Footprint must not grow with stream length, only with W and ε.
	w := New(0.02, 20000, 9)
	var after1, after10 int64
	for i := 0; i < 200000; i++ {
		w.Update(uint64(i))
		if i == 20000 {
			after1 = w.SpaceBytes()
		}
	}
	after10 = w.SpaceBytes()
	if after10 > after1*2 {
		t.Errorf("space grew with stream length: %d → %d", after1, after10)
	}
}

func BenchmarkWindowUpdate(b *testing.B) {
	w := New(0.01, 100000, 1)
	for i := 0; i < b.N; i++ {
		w.Update(uint64(i & 0xffff))
	}
}

func BenchmarkWindowQuantile(b *testing.B) {
	w := New(0.01, 100000, 1)
	for i := 0; i < 200000; i++ {
		w.Update(uint64(i & 0xffff))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Quantile(0.5)
	}
}
