package ols

import (
	"testing"

	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

// The query-path tests for the tree-walk Rank/Quantile implementation.

func loadedSketch(seed uint64, n int) (*dyadic.Sketch, []uint64) {
	data := streamgen.Generate(streamgen.MPCATLike{Seed: seed}, n)
	s := dyadic.New(dyadic.DCS, 0.01, 24, dyadic.Config{Seed: seed + 1})
	for _, x := range data {
		s.Insert(x)
	}
	return s, data
}

func TestPostRankMonotone(t *testing.T) {
	s, _ := loadedSketch(41, 30000)
	p := Process(s, DefaultEta)
	prev := int64(-1 << 62)
	for x := uint64(0); x < 1<<24; x += 1 << 18 {
		r := p.Rank(x)
		if r < prev {
			t.Fatalf("Post.Rank not monotone at %d: %d < %d", x, r, prev)
		}
		prev = r
	}
}

func TestPostRankEndpoints(t *testing.T) {
	s, _ := loadedSketch(42, 20000)
	p := Process(s, DefaultEta)
	if r := p.Rank(0); r != 0 {
		t.Errorf("Rank(0) = %d, want 0", r)
	}
	if r := p.Rank(1 << 30); r != p.Count() {
		t.Errorf("Rank(beyond universe) = %d, want %d", r, p.Count())
	}
}

func TestPostRankTracksExact(t *testing.T) {
	s, data := loadedSketch(43, 40000)
	p := Process(s, DefaultEta)
	oracle := exact.New(data)
	n := float64(len(data))
	for x := uint64(1 << 20); x < 1<<24; x += 1 << 20 {
		got := float64(p.Rank(x))
		want := float64(oracle.Rank(x))
		if diff := got - want; diff > 0.02*n || diff < -0.02*n {
			t.Errorf("Rank(%d) = %v, exact %v (off > 2%%)", x, got, want)
		}
	}
}

func TestPostRankAtLeastAsGoodAsRaw(t *testing.T) {
	// Across many probes, the corrected ranks must not be worse on
	// average than the raw sketch's.
	s, data := loadedSketch(44, 40000)
	p := Process(s, DefaultEta)
	oracle := exact.New(data)
	var rawSum, postSum float64
	for x := uint64(1 << 18); x < 1<<24; x += 1 << 18 {
		want := float64(oracle.Rank(x))
		rd := float64(s.Rank(x)) - want
		pd := float64(p.Rank(x)) - want
		rawSum += rd * rd
		postSum += pd * pd
	}
	if postSum > rawSum {
		t.Errorf("Post rank MSE %v exceeds raw %v", postSum, rawSum)
	}
}

func TestPostQuantileMonotone(t *testing.T) {
	s, _ := loadedSketch(45, 30000)
	p := Process(s, DefaultEta)
	prev := uint64(0)
	for phi := 0.02; phi < 1; phi += 0.02 {
		q := p.Quantile(phi)
		if q < prev {
			t.Fatalf("Post quantiles not monotone at phi=%v: %d < %d", phi, q, prev)
		}
		prev = q
	}
}

func TestPostSnapshotSemantics(t *testing.T) {
	// A Post built before further inserts answers from its snapshot count.
	s, _ := loadedSketch(46, 10000)
	p := Process(s, DefaultEta)
	before := p.Count()
	for i := 0; i < 5000; i++ {
		s.Insert(uint64(i % 1024))
	}
	if p.Count() != before {
		t.Errorf("snapshot count changed: %d → %d", before, p.Count())
	}
	// A fresh Process sees the new stream.
	p2 := Process(s, DefaultEta)
	if p2.Count() != before+5000 {
		t.Errorf("fresh Post count = %d, want %d", p2.Count(), before+5000)
	}
}

func TestProcessEtaValidation(t *testing.T) {
	s, _ := loadedSketch(47, 1000)
	p := Process(s, 0) // 0 → default
	if p.Eta() != DefaultEta {
		t.Errorf("eta = %v, want default %v", p.Eta(), DefaultEta)
	}
}
