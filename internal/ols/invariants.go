package ols

import (
	"fmt"
	"math"
)

// additivityTol is the relative tolerance for the BLUE additivity checks:
// the solver works in float64 over counts up to n, so residuals are
// rounding noise, orders of magnitude below one element.
const additivityTol = 1e-6

// Invariants implements invariant.Checkable for the OLS-corrected
// snapshot. Post is a derived structure, so its deep checks audit the
// solver's defining properties rather than stream state:
//
//   - The snapshot is not stale: the underlying sketch still has the
//     count captured at Process time (Post must be discarded when the
//     sketch changes).
//   - The corrected table covers exactly the truncated tree.
//   - The root's corrected count is the exact n.
//   - Additivity: the BLUE estimate of every expanded node equals the
//     sum of its children's — the constraint system the least-squares
//     solve enforces, and the reason corrected queries accumulate no
//     per-level noise.
func (p *Post) Invariants() error {
	if p.n != p.sk.Count() {
		return fmt.Errorf("ols: stale snapshot: built at n = %d, sketch now at %d", p.n, p.sk.Count())
	}
	if math.IsNaN(p.eta) || p.eta <= 0 {
		return fmt.Errorf("ols: invalid truncation factor %v", p.eta)
	}
	if len(p.corrected) != p.treeNodes {
		return fmt.Errorf("ols: corrected table has %d entries, want one per tree node = %d",
			len(p.corrected), p.treeNodes)
	}
	if p.treeNodes == 0 {
		return nil
	}
	root, ok := p.corrected[1]
	if !ok {
		return fmt.Errorf("ols: truncated tree has no root entry")
	}
	if math.Abs(root-float64(p.n)) > additivityTol*math.Max(1, math.Abs(float64(p.n))) {
		return fmt.Errorf("ols: root corrected count %v, want exact n = %d", root, p.n)
	}
	for id, x := range p.corrected {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("ols: node %d has non-finite corrected count %v", id, x)
		}
		left, lok := p.corrected[2*id]
		right, rok := p.corrected[2*id+1]
		if lok != rok {
			return fmt.Errorf("ols: node %d expanded only one child (tree not full binary)", id)
		}
		if !lok {
			continue
		}
		sum := left + right
		if math.Abs(x-sum) > additivityTol*math.Max(1, math.Abs(x)) {
			return fmt.Errorf("ols: additivity broken at node %d: corrected %v, children sum %v", id, x, sum)
		}
	}
	return nil
}
