package ols

import (
	"fmt"
	"math"

	"streamquantiles/internal/core"
	"streamquantiles/internal/dyadic"
)

// DefaultEta is the truncation-threshold factor η the paper identifies as
// the sweet spot between tree size and error reduction (Figure 9).
const DefaultEta = 0.1

// Post is the OLS-corrected view of a dyadic sketch at one instant. It is
// a query-time snapshot: build it after the stream (or whenever improved
// estimates are wanted) and discard it when the sketch changes. Rank and
// quantile queries consult the corrected node counts where the truncated
// tree has them and fall back to the raw sketch estimates elsewhere —
// pruned intervals hold less than η·ε·n mass, so the fallback costs at
// most the tolerated error.
type Post struct {
	sk         *dyadic.Sketch
	eta        float64
	n          int64
	corrected  map[uint64]float64 // heap node id → BLUE count
	treeNodes  int
	noFallback bool
}

// Process extracts the truncated tree from sk and solves the BLUE system
// on each estimate subtree. eta ≤ 0 selects DefaultEta. It runs in time
// linear in the truncated tree size, O((1/ε)·log u) in expectation.
// checkEta rejects an unusable truncation factor; the eta ≤ 0 default
// substitution happens before this runs.
func checkEta(eta float64) {
	if math.IsNaN(eta) {
		panic("ols: eta is NaN")
	}
}

func Process(sk *dyadic.Sketch, eta float64) *Post {
	if eta <= 0 {
		eta = DefaultEta
	}
	checkEta(eta)
	p := &Post{
		sk:        sk,
		eta:       eta,
		n:         sk.Count(),
		corrected: make(map[uint64]float64),
	}
	p.build()
	return p
}

// ProcessNoFallback is Process with the raw-sketch fallback disabled:
// intervals outside the truncated tree count as zero. Exists for the
// ablation benchmark quantifying the value of the fallback; regular
// callers want Process.
func ProcessNoFallback(sk *dyadic.Sketch, eta float64) *Post {
	p := Process(sk, eta)
	p.noFallback = true
	return p
}

// Eta returns the truncation factor in use.
func (p *Post) Eta() float64 { return p.eta }

// TreeNodes reports |T̂|, the number of truncated-tree nodes.
func (p *Post) TreeNodes() int { return p.treeNodes }

// Count implements core.Summary (the count at snapshot time).
func (p *Post) Count() int64 { return p.n }

// build descends from the root, keeping every visited node. A node is
// expanded — both children visited, so the tree stays full binary and the
// additivity constraints well formed — while its estimate exceeds
// η·ε·n. BLUE subtrees hang off the deepest exactly-counted nodes.
func (p *Post) build() {
	bits := p.sk.UniverseBits()
	threshold := p.eta * p.sk.Eps() * float64(p.n)
	root := p.visit(bits, 0, threshold)
	if root == nil {
		return
	}
	p.solveFrom(root, bits, 0)
	p.collect(root, bits, 0)
}

// visit builds the truncated-tree node for interval iv at level l and
// recurses while the estimate clears the threshold.
func (p *Post) visit(l int, iv uint64, threshold float64) *node {
	est := float64(p.sk.EstimateInterval(l, iv))
	v := &node{y: est, sigma2: p.levelSigma2(l)}
	p.treeNodes++
	if l > 0 && est > threshold {
		v.left = p.visit(l-1, 2*iv, threshold)
		v.right = p.visit(l-1, 2*iv+1, threshold)
	}
	return v
}

// levelSigma2 returns the variance attributed to level-l estimates, with
// a floor so the solver never divides by zero on a degenerate sketch.
func (p *Post) levelSigma2(l int) float64 {
	if p.sk.LevelExact(l) {
		return 0
	}
	v := p.sk.LevelVariance(l)
	if v < 1e-9 {
		v = 1e-9
	}
	return v
}

// solveFrom walks the tree; each maximal exact node whose children carry
// estimates becomes the root of one BLUE system. Children of estimate
// nodes are solved transitively by their enclosing system.
func (p *Post) solveFrom(v *node, l int, iv uint64) {
	//lint:ignore SQ002 sigma2 == 0 is an assigned exact-node sentinel, never a computed value
	if v.sigma2 == 0 {
		v.xstar = v.y
		if v.isLeaf() {
			return
		}
		//lint:ignore SQ002 sigma2 == 0 is an assigned exact-node sentinel, never a computed value
		if v.left.sigma2 == 0 {
			// Children still exact: recurse to find deeper system roots.
			p.solveFrom(v.left, l-1, 2*iv)
			p.solveFrom(v.right, l-1, 2*iv+1)
			return
		}
		solveSubtree(v)
		return
	}
	// Estimate nodes are always handled by an ancestor's system; getting
	// here means the tree shape is inconsistent.
	//lint:ignore SQ003 corruption guard: the root is always exact, so this is unreachable
	panic(fmt.Sprintf("ols: estimate node at level %d interval %d has no exact ancestor", l, iv))
}

// collect stores the solved counts keyed by heap id: the root of the
// dyadic structure is id 1 and node (l, iv) has id (1 << (bits−l)) | iv.
func (p *Post) collect(v *node, l int, iv uint64) {
	bits := p.sk.UniverseBits()
	id := uint64(1)<<(bits-l) | iv
	p.corrected[id] = v.xstar
	if !v.isLeaf() {
		p.collect(v.left, l-1, 2*iv)
		p.collect(v.right, l-1, 2*iv+1)
	}
}

// lookup returns the corrected count for interval (l, iv) and whether
// the truncated tree holds it.
func (p *Post) lookup(l int, iv uint64) (float64, bool) {
	bits := p.sk.UniverseBits()
	x, ok := p.corrected[uint64(1)<<(bits-l)|iv]
	return x, ok
}

// Rank implements core.Summary. Queries are answered from the truncated
// tree alone: descending the path to x, every left sibling contributes
// its *corrected* count, so no raw per-level noise accumulates — the
// property behind the 60–80% error reduction of §4.3.3. Only once the
// path leaves T̂ (inside an interval holding < η·ε·n mass) is the
// remainder approximated, by raw estimates clamped to the leaf's
// corrected mass (or by linear interpolation under ProcessNoFallback).
func (p *Post) Rank(x uint64) int64 {
	bits := p.sk.UniverseBits()
	if x >= uint64(1)<<bits {
		return p.n
	}
	var r float64
	l, iv := bits, uint64(0)
	for l > 0 {
		if _, ok := p.lookup(l-1, 2*iv); !ok {
			break // children pruned: (l, iv) is a leaf of T̂
		}
		l--
		iv *= 2
		if x>>uint(l)&1 == 1 {
			left, _ := p.lookup(l, iv)
			if left > 0 {
				r += left
			}
			iv++
		}
	}
	if l > 0 {
		r += p.withinLeaf(l, iv, x)
	}
	return int64(math.Round(r))
}

// withinLeaf estimates the number of elements in leaf (l, iv) that are
// smaller than x (which lies inside the leaf's interval), clamped to the
// leaf's corrected mass.
func (p *Post) withinLeaf(l int, iv uint64, x uint64) float64 {
	mass, _ := p.lookup(l, iv)
	if mass <= 0 {
		return 0
	}
	lo := iv << uint(l)
	var part float64
	if p.noFallback {
		// Ablation variant: linear interpolation within the leaf.
		part = mass * float64(x-lo) / float64(uint64(1)<<uint(l))
	} else {
		// The dyadic decomposition of [lo, x) lies entirely inside the
		// leaf; sum its raw estimates.
		for lev := 0; lev < l; lev++ {
			if x>>uint(lev)&1 == 1 {
				if e := float64(p.sk.EstimateInterval(lev, x>>uint(lev)-1)); e > 0 {
					part += e
				}
			}
		}
	}
	if part > mass {
		part = mass
	}
	return part
}

// Quantile implements core.Summary: descend the truncated tree by
// corrected child masses; inside a pruned leaf (mass below η·ε·n)
// continue with raw estimates, which can cost at most the tolerated
// slack.
func (p *Post) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if p.n <= 0 {
		panic(core.ErrEmpty)
	}
	bits := p.sk.UniverseBits()
	target := float64(core.TargetRank(phi, p.n))
	l, iv := bits, uint64(0)
	for l > 0 {
		left, ok := p.lookup(l-1, 2*iv)
		if !ok {
			break // leaf of T̂: finish with raw estimates below
		}
		l--
		iv *= 2
		if left < 0 {
			left = 0
		}
		if target >= left {
			target -= left
			iv++
		}
	}
	for l > 0 {
		l--
		iv *= 2
		c := float64(p.sk.EstimateInterval(l, iv))
		if c < 0 {
			c = 0
		}
		if target >= c {
			target -= c
			iv++
		}
	}
	return iv
}

// SpaceBytes implements core.Summary: the underlying sketch plus the
// corrected-count table (id and value, three words per entry under the
// accounting convention, matching the paper's observation that the
// post-processing adds only O((1/ε)·log u) transient space).
func (p *Post) SpaceBytes() int64 {
	return p.sk.SpaceBytes() + int64(len(p.corrected))*3*core.WordBytes
}
