package ols

import (
	"math"
	"testing"
)

// Solver invariances the paper relies on (§3.2.4).

// TestVarianceScaleInvariance: "our algorithm is not affected if all the
// σ²'s are reduced by the same factor" — the property that justifies
// using a single row's variance estimate.
func TestVarianceScaleInvariance(t *testing.T) {
	build := func(scale float64) []*node {
		mk := func(y float64) *node { return &node{y: y, sigma2: 2 * scale} }
		n4, n8, n9, n6, n7 := mk(4), mk(7), mk(6), mk(5), mk(3)
		n5 := mk(8)
		n5.left, n5.right = n8, n9
		n2 := mk(8)
		n2.left, n2.right = n4, n5
		n3 := mk(7)
		n3.left, n3.right = n6, n7
		r := &node{y: 15, sigma2: 0, left: n2, right: n3}
		solveSubtree(r)
		return []*node{r, n2, n3, n4, n5, n6, n7, n8, n9}
	}
	a := build(1)
	b := build(1000)
	for i := range a {
		if math.Abs(a[i].xstar-b[i].xstar) > 1e-9 {
			t.Fatalf("node %d: x* changed under variance scaling: %v vs %v",
				i, a[i].xstar, b[i].xstar)
		}
	}
}

// TestMirrorSymmetry: swapping every left/right pair must mirror the
// solution exactly.
func TestMirrorSymmetry(t *testing.T) {
	mk := func(y float64) *node { return &node{y: y, sigma2: 3} }
	build := func(mirror bool) (*node, *node, *node) {
		l, r := mk(10), mk(4)
		root := &node{y: 16, sigma2: 0}
		if mirror {
			root.left, root.right = r, l
		} else {
			root.left, root.right = l, r
		}
		solveSubtree(root)
		return root, l, r
	}
	_, l1, r1 := build(false)
	_, l2, r2 := build(true)
	if l1.xstar != l2.xstar || r1.xstar != r2.xstar {
		t.Errorf("mirroring changed the solution: (%v,%v) vs (%v,%v)",
			l1.xstar, r1.xstar, l2.xstar, r2.xstar)
	}
}

// TestConsistentObservationsFixedPoint: if the estimates already satisfy
// the tree constraints exactly, BLUE must return them unchanged.
func TestConsistentObservationsFixedPoint(t *testing.T) {
	mk := func(y float64) *node { return &node{y: y, sigma2: 5} }
	n4, n5, n6, n7 := mk(1), mk(2), mk(3), mk(4)
	n2 := mk(3) // = n4 + n5
	n2.left, n2.right = n4, n5
	n3 := mk(7) // = n6 + n7
	n3.left, n3.right = n6, n7
	r := &node{y: 10, sigma2: 0, left: n2, right: n3}
	solveSubtree(r)
	for _, v := range []*node{n2, n3, n4, n5, n6, n7} {
		if math.Abs(v.xstar-v.y) > 1e-9 {
			t.Errorf("consistent input moved: y=%v x*=%v", v.y, v.xstar)
		}
	}
}

// TestHeteroskedasticWeighting: a noisier child should move more toward
// the constraint than a precise one.
func TestHeteroskedasticWeighting(t *testing.T) {
	precise := &node{y: 10, sigma2: 0.01}
	noisy := &node{y: 20, sigma2: 100}
	r := &node{y: 20, sigma2: 0, left: precise, right: noisy} // children must sum to 20
	solveSubtree(r)
	// The 10-unit inconsistency should be absorbed almost entirely by the
	// noisy child.
	if math.Abs(precise.xstar-10) > 0.2 {
		t.Errorf("precise child moved to %v", precise.xstar)
	}
	if math.Abs(noisy.xstar-10) > 0.2 { // 20 − 10 (absorbs the slack)
		t.Errorf("noisy child at %v, want ≈ 10", noisy.xstar)
	}
	if math.Abs(precise.xstar+noisy.xstar-20) > 1e-9 {
		t.Error("children do not sum to the exact root")
	}
}
