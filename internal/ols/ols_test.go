package ols

import (
	"math"
	"testing"

	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
)

// buildFigure3 reconstructs the worked example of the paper's §3.2.3
// (Figure 3 / Table 2): root 1 with exact count 15, σ² = 2 everywhere
// else, and estimates consistent with the published Z column:
//
//	     1(15)
//	    /     \
//	  2(8)    3(7)
//	  /  \    /  \
//	4(4) 5(8) 6(5) 7(3)
//	     /  \
//	   8(7) 9(6)
func buildFigure3() (r, n2, n3, n4, n5, n6, n7, n8, n9 *node) {
	mk := func(y float64) *node { return &node{y: y, sigma2: 2} }
	n4, n8, n9, n6, n7 = mk(4), mk(7), mk(6), mk(5), mk(3)
	n5 = mk(8)
	n5.left, n5.right = n8, n9
	n2 = mk(8)
	n2.left, n2.right = n4, n5
	n3 = mk(7)
	n3.left, n3.right = n6, n7
	r = &node{y: 15, sigma2: 0, left: n2, right: n3}
	return
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestTable2Weights(t *testing.T) {
	r, n2, n3, n4, n5, n6, n7, n8, n9 := buildFigure3()
	solveSubtree(r)
	// λ column of Table 2.
	approx(t, "λ1", r.lambda, 1, 1e-12)
	approx(t, "λ2", n2.lambda, 15.0/31, 1e-9)
	approx(t, "λ3", n3.lambda, 16.0/31, 1e-9)
	approx(t, "λ4", n4.lambda, 9.0/31, 1e-9)
	approx(t, "λ5", n5.lambda, 6.0/31, 1e-9)
	approx(t, "λ6", n6.lambda, 8.0/31, 1e-9)
	approx(t, "λ7", n7.lambda, 8.0/31, 1e-9)
	approx(t, "λ8", n8.lambda, 3.0/31, 1e-9)
	approx(t, "λ9", n9.lambda, 3.0/31, 1e-9)
	// π column.
	approx(t, "π2", n2.pi, 12.0/31, 1e-9)
	approx(t, "π3", n3.pi, 12.0/31, 1e-9)
	approx(t, "π4", n4.pi, 9.0/62, 1e-9)
	approx(t, "π5", n5.pi, 9.0/62, 1e-9)
	approx(t, "π6", n6.pi, 4.0/31, 1e-9)
	approx(t, "π7", n7.pi, 4.0/31, 1e-9)
	approx(t, "π8", n8.pi, 3.0/62, 1e-9)
	approx(t, "π9", n9.pi, 3.0/62, 1e-9)
}

func TestTable2ZAndX(t *testing.T) {
	r, n2, n3, n4, n5, n6, n7, n8, n9 := buildFigure3()
	solveSubtree(r)
	// Z column (computed with Z_v = Σ_{w≺v} Z_w; see package comment).
	approx(t, "Z1", r.z, 419.0/62, 1e-9)
	approx(t, "Z2", n2.z, 243.0/62, 1e-9)
	approx(t, "Z3", n3.z, 88.0/31, 1e-9)
	approx(t, "Z4", n4.z, 54.0/31, 1e-9)
	approx(t, "Z5", n5.z, 135.0/62, 1e-9)
	approx(t, "Z6", n6.z, 48.0/31, 1e-9)
	approx(t, "Z7", n7.z, 40.0/31, 1e-9)
	approx(t, "Z8", n8.z, 69.0/62, 1e-9)
	approx(t, "Z9", n9.z, 33.0/31, 1e-9)
	// x* column (Table 2 prints 2 decimals).
	approx(t, "x*1", r.xstar, 15, 1e-9)
	approx(t, "x*2", n2.xstar, 8.94, 0.01)
	approx(t, "x*3", n3.xstar, 6.06, 0.01)
	approx(t, "x*4", n4.xstar, 1.16, 0.01)
	approx(t, "x*5", n5.xstar, 7.77, 0.01)
	approx(t, "x*6", n6.xstar, 4.04, 0.01)
	approx(t, "x*7", n7.xstar, 2.03, 0.01)
	approx(t, "x*8", n8.xstar, 4.38, 0.01)
	approx(t, "x*9", n9.xstar, 3.38, 0.01)
	// F column spot checks: F_v = Σ_{anc(v)\r} x*_w/σ_w².
	approx(t, "F2", n2.f, 4.47, 0.01)
	approx(t, "F3", n3.f, 3.03, 0.01)
	approx(t, "F5", n5.f, 8.36, 0.01)
}

func TestBlueAdditivity(t *testing.T) {
	// The BLUE solution must satisfy the tree constraints exactly:
	// x*_v = x*_left + x*_right at every internal node.
	r, n2, n3, _, n5, _, _, _, _ := buildFigure3()
	solveSubtree(r)
	for _, v := range []*node{r, n2, n3, n5} {
		if math.Abs(v.xstar-(v.left.xstar+v.right.xstar)) > 1e-9 {
			t.Errorf("additivity violated: %v != %v + %v",
				v.xstar, v.left.xstar, v.right.xstar)
		}
	}
}

func TestBlueReducesVariance(t *testing.T) {
	// Monte Carlo check of the §3.2 motivation: on a fixed truth with
	// i.i.d. noise, the BLUE estimate of a node must have lower empirical
	// MSE than the raw estimate.
	truth := map[string]float64{"r": 16, "2": 10, "3": 6, "4": 4, "5": 6, "6": 5, "7": 1}
	const sigma2 = 4.0
	const runs = 3000
	var rawSE, blueSE float64
	rng := newTestRNG(123)
	for run := 0; run < runs; run++ {
		noise := func(mu float64) float64 { return mu + rng.gauss()*math.Sqrt(sigma2) }
		n4 := &node{y: noise(truth["4"]), sigma2: sigma2}
		n5 := &node{y: noise(truth["5"]), sigma2: sigma2}
		n6 := &node{y: noise(truth["6"]), sigma2: sigma2}
		n7 := &node{y: noise(truth["7"]), sigma2: sigma2}
		n2 := &node{y: noise(truth["2"]), sigma2: sigma2, left: n4, right: n5}
		n3 := &node{y: noise(truth["3"]), sigma2: sigma2, left: n6, right: n7}
		r := &node{y: truth["r"], sigma2: 0, left: n2, right: n3}
		raw := n2.y
		solveSubtree(r)
		rawSE += (raw - truth["2"]) * (raw - truth["2"])
		blueSE += (n2.xstar - truth["2"]) * (n2.xstar - truth["2"])
	}
	if blueSE >= rawSE {
		t.Errorf("BLUE MSE %v not below raw MSE %v", blueSE/runs, rawSE/runs)
	}
	// §3.2's toy example promises Var(Y'_2) = (7/12)σ² on the full
	// binary tree; our tree differs slightly, but a ≥25%% reduction must
	// show.
	if blueSE > 0.8*rawSE {
		t.Errorf("BLUE variance reduction too small: %v vs %v", blueSE/runs, rawSE/runs)
	}
}

// minimal gaussian RNG for the Monte Carlo test.
type testRNG struct{ state uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{state: seed} }

func (r *testRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *testRNG) gauss() float64 {
	u1 := r.float()
	for u1 == 0 {
		u1 = r.float()
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*r.float())
}

func TestPostImprovesDCS(t *testing.T) {
	// The headline claim (§4.3.3): post-processing reduces DCS error —
	// by 60–80% in the paper; we require a strict improvement on both
	// error metrics for a fixed seed.
	const n = 40000
	const eps = 0.01
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 31}, n)
	oracle := exact.New(data)
	s := dyadic.New(dyadic.DCS, eps, 24, Config31())
	for _, x := range data {
		s.Insert(x)
	}
	rawMax, rawAvg := oracle.EvaluateSummary(s, eps)
	p := Process(s, DefaultEta)
	postMax, postAvg := oracle.EvaluateSummary(p, eps)
	if postAvg >= rawAvg {
		t.Errorf("Post avg error %v not below DCS %v", postAvg, rawAvg)
	}
	if postMax > rawMax*1.2 {
		t.Errorf("Post max error %v much worse than DCS %v", postMax, rawMax)
	}
}

// Config31 pins the sketch configuration of the improvement test.
func Config31() dyadic.Config { return dyadic.Config{Seed: 31} }

func TestPostOnExactSketchIsExact(t *testing.T) {
	// With every level exact there is nothing to correct: Post must agree
	// with the sketch (and the truth) exactly.
	const eps = 0.005
	s := dyadic.New(dyadic.DCS, eps, 10, Config31())
	data := streamgen.Generate(streamgen.Uniform{Bits: 10, Seed: 32}, 20000)
	for _, x := range data {
		s.Insert(x)
	}
	p := Process(s, DefaultEta)
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(p, eps)
	if maxErr != 0 {
		t.Errorf("Post on exact sketch has error %v", maxErr)
	}
}

func TestTruncatedTreeSize(t *testing.T) {
	// Appendix A.1: E[|T̂|] = O((1/ε)·log u). Check a generous constant.
	const n = 50000
	const eps = 0.01
	s := dyadic.New(dyadic.DCS, eps, 24, dyadic.Config{Seed: 33})
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 34}, n)
	for _, x := range data {
		s.Insert(x)
	}
	p := Process(s, DefaultEta)
	bound := int(20.0 / (DefaultEta * eps) * 24)
	if p.TreeNodes() > bound {
		t.Errorf("|T̂| = %d exceeds O((1/(ηε))·log u) bound %d", p.TreeNodes(), bound)
	}
	if p.TreeNodes() < 24 {
		t.Errorf("|T̂| = %d suspiciously small", p.TreeNodes())
	}
}

func TestEtaTradeoff(t *testing.T) {
	// Figure 9's mechanism: smaller η ⇒ larger tree.
	const n = 30000
	const eps = 0.01
	s := dyadic.New(dyadic.DCS, eps, 24, dyadic.Config{Seed: 35})
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 36}, n)
	for _, x := range data {
		s.Insert(x)
	}
	big := Process(s, 0.01)
	small := Process(s, 1.0)
	if big.TreeNodes() <= small.TreeNodes() {
		t.Errorf("η=0.01 tree (%d) not larger than η=1.0 tree (%d)",
			big.TreeNodes(), small.TreeNodes())
	}
}

func TestPostCountAndSpace(t *testing.T) {
	s := dyadic.New(dyadic.DCS, 0.02, 16, dyadic.Config{Seed: 37})
	for i := uint64(0); i < 1000; i++ {
		s.Insert(i % 100)
	}
	p := Process(s, DefaultEta)
	if p.Count() != 1000 {
		t.Errorf("Count = %d", p.Count())
	}
	if p.SpaceBytes() < s.SpaceBytes() {
		t.Error("Post space must include the sketch")
	}
}

func TestPostWorksOnDCM(t *testing.T) {
	// Post is defined for any dyadic sketch; on DCM it must not degrade
	// accuracy catastrophically (the estimates are biased, so gains are
	// not guaranteed — the paper applies it to DCS).
	const n = 30000
	const eps = 0.02
	data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 38}, n)
	s := dyadic.New(dyadic.DCM, eps, 16, dyadic.Config{Seed: 39})
	for _, x := range data {
		s.Insert(x)
	}
	p := Process(s, DefaultEta)
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(p, eps)
	if maxErr > 2*eps {
		t.Errorf("Post-on-DCM max error %v exceeds 2ε", maxErr)
	}
}

func BenchmarkProcess(b *testing.B) {
	s := dyadic.New(dyadic.DCS, 0.01, 24, dyadic.Config{Seed: 1})
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 2}, 100000)
	for _, x := range data {
		s.Insert(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Process(s, DefaultEta)
	}
}
