package ols

import (
	"sort"

	"streamquantiles/internal/core"
)

// Batched queries. Post is already a query-time snapshot: building it
// runs the BLUE solve exactly once, so a QuantileBatch call amortizes
// the O((1/ε)·log u) Process step across the whole φ list — the paper's
// per-query "re-solve the tree" cost (§4.3.3) becomes once per
// snapshot. The batch descent itself walks the truncated tree in
// lockstep over the sorted fractions: the frontier of query intervals
// is non-decreasing, so consecutive queries share their corrected-count
// lookups. Per-query arithmetic matches Quantile exactly, so results
// are byte-identical.

// QuantileBatch implements core.QuantileBatcher.
func (p *Post) QuantileBatch(phis []float64) []uint64 {
	if p.n <= 0 {
		panic(core.ErrEmpty)
	}
	k := len(phis)
	order := make([]int, k)
	for i := range order {
		core.CheckPhi(phis[i])
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return phis[order[a]] < phis[order[b]] })

	bits := p.sk.UniverseBits()
	targets := make([]float64, k)
	ivs := make([]uint64, k)
	leafLvl := make([]int, k) // level at which the query left T̂ (0 = descended fully)
	for j, idx := range order {
		targets[j] = float64(core.TargetRank(phis[idx], p.n))
		leafLvl[j] = -1 // still descending
	}
	for lvl := bits; lvl > 0; lvl-- {
		// One corrected-count lookup per distinct frontier node: the
		// frontier is sorted, so consecutive queries reuse the last one.
		var (
			haveMemo bool
			memoIv   uint64
			memoVal  float64
			memoOK   bool
		)
		for j := range ivs {
			if leafLvl[j] >= 0 {
				continue
			}
			if !haveMemo || ivs[j] != memoIv {
				memoIv = ivs[j]
				memoVal, memoOK = p.lookup(lvl-1, 2*memoIv)
				haveMemo = true
			}
			if !memoOK {
				leafLvl[j] = lvl // leaf of T̂: finish with raw estimates
				continue
			}
			lmass := memoVal
			ivs[j] *= 2
			if lmass < 0 {
				lmass = 0
			}
			if targets[j] >= lmass {
				targets[j] -= lmass
				ivs[j]++
			}
		}
	}
	out := make([]uint64, k)
	for j, idx := range order {
		iv, target := ivs[j], targets[j]
		for l := leafLvl[j]; l > 0; l-- {
			iv *= 2
			c := float64(p.sk.EstimateInterval(l-1, iv))
			if c < 0 {
				c = 0
			}
			if target >= c {
				target -= c
				iv++
			}
		}
		out[idx] = iv
	}
	return out
}

// RankBatch implements core.QuantileBatcher. The per-x tree walk is
// already cheap next to the BLUE solve; the batch win is that the solve
// ran once, at Process time, for the whole batch.
func (p *Post) RankBatch(xs []uint64) []int64 {
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = p.Rank(x)
	}
	return out
}
