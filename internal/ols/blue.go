// Package ols implements Post, the paper's OLS post-processing step for
// the dyadic turnstile sketches (§3.2): the per-level frequency estimates
// of a dyadic structure are not independent — a parent's true count is
// the sum of its children's — and exploiting those additivity constraints
// through ordinary least squares yields the best linear unbiased
// estimator (BLUE) of every node count, reducing the observed error of
// DCS by 60–80% in the paper's experiments.
//
// The pipeline is:
//
//  1. Extract a truncated binary tree T̂ from the sketch by descending
//     from the root and pruning every interval whose estimate is below
//     η·ε·n (§3.2.2). E[|T̂|] = O((1/ε)·log u) (Appendix A.1).
//  2. Split T̂ into subtrees rooted at exactly-counted nodes — an exact
//     node shields its subtree from the rest (§3.2.3).
//  3. Solve each subtree in three linear-time traversals using the
//     weight system (2) and the auxiliary quantities Z, F, Δ of
//     Lemma 2. (The published recurrence Z_v = Σ_{w≺v} λ_w Z_w is a
//     typo: reproducing the paper's own worked example, Table 2,
//     requires Z_v = Σ_{w≺v} Z_w, which is what this package computes;
//     the tests pin the full Table 2.)
package ols

// node is one vertex of a BLUE subtree. The root has sigma2 == 0 (its
// count is exact); all other nodes carry a sketch estimate y and the
// variance sigma2 of their level's estimator.
type node struct {
	y      float64
	sigma2 float64
	left   *node
	right  *node

	// Solver state.
	lambda float64 // weight λ_v
	alpha  float64 // λ_v / λ_parent(v)
	beta   float64 // π_v / λ_v
	pi     float64 // π_v = Σ_{w ∈ lpath(v)} λ_w/σ_w²
	zp     float64 // Z'_v = Σ_{z ∈ anc(v)\r} y_z/σ_z²
	z      float64 // Z_v
	f      float64 // F_v
	xstar  float64 // the BLUE x*_v
}

func (n *node) isLeaf() bool { return n.left == nil }

// solveSubtree computes the BLUE x* for every node of the subtree rooted
// at r, whose own count y_r is exact. Runs in O(|subtree|).
func solveSubtree(r *node) {
	r.xstar = r.y
	if r.isLeaf() {
		return
	}

	// Pass 1 (bottom-up): β and the child fractions α from system (2).
	computeBeta(r)

	// Pass 2 (top-down): λ from the α fractions (λ_r = 1), then π.
	r.lambda = 1
	propagateLambda(r)

	// Pass 3 (top-down): Z' — note anc(v) excludes the subtree root.
	r.zp = 0
	propagateZPrime(r)

	// Pass 4 (bottom-up): Z from the leaves (Z_w = λ_w·Z'_w).
	computeZ(r)

	// Δ = (Z_r − y_r·π_s)/λ_r with s a child of r (π is equal on both).
	delta := (r.z - r.y*r.left.pi) / r.lambda

	// Pass 5 (top-down): F and x*.
	r.f = 0
	propagateX(r, delta)
}

// computeBeta runs bottom-up. For a leaf w: β_w = 1/σ_w². For an internal
// node v with children u₁, u₂ (both with β known), the two equations at v
//
//	λ_v = λ_{u₁} + λ_{u₂},   π_{u₁} = π_{u₂}  (i.e. β_{u₁}λ_{u₁} = β_{u₂}λ_{u₂})
//
// give λ_{uᵢ} = α_{uᵢ}·λ_v with α_{u₁} = β_{u₂}/(β_{u₁}+β_{u₂}) and
// symmetrically, and π_v = π_{u₁} + λ_v/σ_v² = β_v·λ_v with
// β_v = β_{u₁}β_{u₂}/(β_{u₁}+β_{u₂}) + 1/σ_v². The subtree root uses
// σ_r² = 0 conceptually; its β is never needed (the Lagrange limit η→∞
// handled via Δ takes its place).
func computeBeta(v *node) {
	if v.isLeaf() {
		v.beta = 1 / v.sigma2
		return
	}
	computeBeta(v.left)
	computeBeta(v.right)
	b1, b2 := v.left.beta, v.right.beta
	v.left.alpha = b2 / (b1 + b2)
	v.right.alpha = b1 / (b1 + b2)
	harmonic := b1 * b2 / (b1 + b2)
	if v.sigma2 > 0 {
		v.beta = harmonic + 1/v.sigma2
	} else {
		v.beta = harmonic // subtree root: no own-estimate term
	}
}

func propagateLambda(v *node) {
	v.pi = v.beta * v.lambda
	if v.isLeaf() {
		return
	}
	v.left.lambda = v.left.alpha * v.lambda
	v.right.lambda = v.right.alpha * v.lambda
	propagateLambda(v.left)
	propagateLambda(v.right)
}

func propagateZPrime(v *node) {
	if v.isLeaf() {
		return
	}
	for _, c := range [2]*node{v.left, v.right} {
		c.zp = v.zp + c.y/c.sigma2
		propagateZPrime(c)
	}
}

func computeZ(v *node) float64 {
	if v.isLeaf() {
		v.z = v.lambda * v.zp
		return v.z
	}
	v.z = computeZ(v.left) + computeZ(v.right)
	return v.z
}

func propagateX(v *node, delta float64) {
	if v.isLeaf() {
		return
	}
	for _, c := range [2]*node{v.left, v.right} {
		c.xstar = (c.z - c.lambda*v.f - c.lambda*delta) / c.pi
		c.f = v.f + c.xstar/c.sigma2
		propagateX(c, delta)
	}
}
