package ols

import (
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/dyadic"
	"streamquantiles/internal/streamgen"
)

// TestPostQuantileBatchMatchesPerPhi pins the lockstep batch descent to
// the per-φ corrected walk bit for bit, across sketch kinds and both
// fallback modes.
func TestPostQuantileBatchMatchesPerPhi(t *testing.T) {
	phis := []float64{0.5, 0.01, 0.99, 0.25, 0.5, 0.625, 0.101}
	for _, kind := range []dyadic.Kind{dyadic.DCM, dyadic.DCS} {
		sk := dyadic.New(kind, 0.02, 16, dyadic.Config{Seed: 17})
		data := streamgen.Generate(streamgen.Uniform{Bits: 16, Seed: 4}, 30000)
		for _, x := range data {
			sk.Insert(x)
		}
		for _, p := range []*Post{Process(sk, 0), ProcessNoFallback(sk, 0)} {
			batch := p.QuantileBatch(phis)
			for i, phi := range phis {
				if want := p.Quantile(phi); batch[i] != want {
					t.Errorf("%v: QuantileBatch[%d] (phi=%v) = %d, Quantile = %d", kind, i, phi, batch[i], want)
				}
			}
			ranks := p.RankBatch(data[:32])
			for i, x := range data[:32] {
				if want := p.Rank(x); ranks[i] != want {
					t.Errorf("%v: RankBatch[%d] (x=%d) = %d, Rank = %d", kind, i, x, ranks[i], want)
				}
			}
		}
	}
	var _ core.QuantileBatcher = (*Post)(nil)
}
