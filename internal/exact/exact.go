// Package exact provides the ground-truth oracle used to evaluate every
// approximate summary: exact ranks and quantiles computed from a sorted
// copy of the data, and the paper's two error metrics.
//
// Error semantics follow §4.1.2 of the paper: the rank of an element that
// appears multiple times is an interval (the block of positions its copies
// occupy); the observed error of a reported φ-quantile is the distance
// from ⌊φn⌋ to the closer interval endpoint, or zero if ⌊φn⌋ falls inside
// the interval, normalized by n. The maximum over the extracted quantiles
// is the Kolmogorov–Smirnov divergence between the true CDF and the
// reported one; the average tracks the total-variation distance.
package exact

import (
	"math"
	"slices"

	"streamquantiles/internal/core"
)

// Oracle answers exact rank and quantile queries over a static multiset.
type Oracle struct {
	sorted []uint64
}

// New builds an oracle from a copy of data. The input is left untouched.
func New(data []uint64) *Oracle {
	s := make([]uint64, len(data))
	copy(s, data)
	slices.Sort(s)
	return &Oracle{sorted: s}
}

// NewFromSorted adopts an already-sorted slice without copying. The caller
// must not modify it afterwards.
func NewFromSorted(sorted []uint64) *Oracle {
	if !slices.IsSorted(sorted) {
		panic("exact: NewFromSorted input is not sorted")
	}
	return &Oracle{sorted: sorted}
}

// N reports the number of elements.
func (o *Oracle) N() int64 { return int64(len(o.sorted)) }

// Rank returns the exact rank of x: the number of elements < x.
func (o *Oracle) Rank(x uint64) int64 {
	lo, _ := slices.BinarySearch(o.sorted, x)
	return int64(lo)
}

// RankInterval returns the inclusive interval of rank positions occupied
// by x. For an element that occurs c ≥ 1 times the interval is
// [#<x, #<x + c − 1]; for an absent element both endpoints equal #<x.
func (o *Oracle) RankInterval(x uint64) (lo, hi int64) {
	l, _ := slices.BinarySearch(o.sorted, x)
	r, _ := slices.BinarySearch(o.sorted, x+1)
	if x == math.MaxUint64 {
		r = len(o.sorted)
	}
	lo = int64(l)
	hi = int64(r) - 1
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Quantile returns the exact φ-quantile: the element of rank ⌊φn⌋.
func (o *Oracle) Quantile(phi float64) uint64 {
	core.CheckPhi(phi)
	if len(o.sorted) == 0 {
		panic(core.ErrEmpty)
	}
	return o.sorted[core.TargetRank(phi, o.N())]
}

// QuantileError returns the normalized observed error of reporting got as
// the φ-quantile, using interval rank semantics.
func (o *Oracle) QuantileError(got uint64, phi float64) float64 {
	n := o.N()
	if n == 0 {
		panic(core.ErrEmpty)
	}
	target := core.TargetRank(phi, n)
	lo, hi := o.RankInterval(got)
	switch {
	case target < lo:
		return float64(lo-target) / float64(n)
	case target > hi:
		return float64(target-hi) / float64(n)
	default:
		return 0
	}
}

// Evaluate scores a batch of reported quantiles against the oracle and
// returns the maximum (Kolmogorov–Smirnov) and average observed errors.
// got[i] must be the summary's answer for phis[i].
func (o *Oracle) Evaluate(got []uint64, phis []float64) (maxErr, avgErr float64) {
	if len(got) != len(phis) {
		//lint:ignore SQ003 caller bug, not stream state: the oracle cannot recover a meaningful answer
		panic("exact: Evaluate length mismatch")
	}
	if len(got) == 0 {
		return 0, 0
	}
	sum := 0.0
	for i := range got {
		e := o.QuantileError(got[i], phis[i])
		if e > maxErr {
			maxErr = e
		}
		sum += e
	}
	return maxErr, sum / float64(len(got))
}

// EvaluateSummary extracts the 1/ε−1 evenly spaced quantiles from s and
// scores them, the exact protocol of the paper's experiments.
func (o *Oracle) EvaluateSummary(s core.Summary, eps float64) (maxErr, avgErr float64) {
	phis := core.EvenPhis(eps)
	return o.Evaluate(core.Quantiles(s, phis), phis)
}
