package exact

import (
	"testing"
	"testing/quick"

	"streamquantiles/internal/core"
	"streamquantiles/internal/xhash"
)

func TestRankBasics(t *testing.T) {
	o := New([]uint64{5, 1, 3, 3, 9})
	cases := []struct {
		x    uint64
		want int64
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {5, 3}, {6, 4}, {9, 4}, {10, 5},
	}
	for _, c := range cases {
		if got := o.Rank(c.x); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestRankIntervalDuplicates(t *testing.T) {
	o := New([]uint64{3, 3, 3, 7})
	lo, hi := o.RankInterval(3)
	if lo != 0 || hi != 2 {
		t.Errorf("RankInterval(3) = [%d,%d], want [0,2]", lo, hi)
	}
	lo, hi = o.RankInterval(7)
	if lo != 3 || hi != 3 {
		t.Errorf("RankInterval(7) = [%d,%d], want [3,3]", lo, hi)
	}
	// Absent element: degenerate interval at #<x.
	lo, hi = o.RankInterval(5)
	if lo != 3 || hi != 3 {
		t.Errorf("RankInterval(5) = [%d,%d], want [3,3]", lo, hi)
	}
	lo, hi = o.RankInterval(100)
	if lo != 4 || hi != 4 {
		t.Errorf("RankInterval(100) = [%d,%d], want [4,4]", lo, hi)
	}
}

func TestQuantileExact(t *testing.T) {
	data := make([]uint64, 100)
	for i := range data {
		data[i] = uint64(i)
	}
	o := New(data)
	if q := o.Quantile(0.5); q != 50 {
		t.Errorf("median = %d, want 50", q)
	}
	if q := o.Quantile(0.01); q != 1 {
		t.Errorf("0.01-quantile = %d, want 1", q)
	}
	if q := o.Quantile(0.99); q != 99 {
		t.Errorf("0.99-quantile = %d, want 99", q)
	}
}

func TestQuantileErrorZeroForTruth(t *testing.T) {
	rng := xhash.NewSplitMix64(1)
	data := make([]uint64, 1000)
	for i := range data {
		data[i] = rng.Uint64n(500) // plenty of duplicates
	}
	o := New(data)
	for _, phi := range core.EvenPhis(0.05) {
		if e := o.QuantileError(o.Quantile(phi), phi); e != 0 {
			t.Errorf("exact quantile for phi=%v scored error %v", phi, e)
		}
	}
}

func TestQuantileErrorDistance(t *testing.T) {
	data := make([]uint64, 100)
	for i := range data {
		data[i] = uint64(i)
	}
	o := New(data)
	// Reporting 60 for the median: rank interval [60,60], target 50 → 0.10.
	if e := o.QuantileError(60, 0.5); e != 0.10 {
		t.Errorf("error = %v, want 0.10", e)
	}
	// Reporting 40: target 50 > hi 40 → 0.10.
	if e := o.QuantileError(40, 0.5); e != 0.10 {
		t.Errorf("error = %v, want 0.10", e)
	}
}

func TestQuantileErrorInsideDuplicateBlock(t *testing.T) {
	// 100 copies of 7: every φ-quantile is 7 with zero error.
	data := make([]uint64, 100)
	for i := range data {
		data[i] = 7
	}
	o := New(data)
	for _, phi := range []float64{0.01, 0.5, 0.99} {
		if e := o.QuantileError(7, phi); e != 0 {
			t.Errorf("error for phi=%v = %v, want 0", phi, e)
		}
	}
}

func TestEvaluate(t *testing.T) {
	data := make([]uint64, 100)
	for i := range data {
		data[i] = uint64(i)
	}
	o := New(data)
	phis := []float64{0.25, 0.5, 0.75}
	got := []uint64{25, 55, 75} // middle one off by 5 ranks
	maxErr, avgErr := o.Evaluate(got, phis)
	if maxErr != 0.05 {
		t.Errorf("maxErr = %v, want 0.05", maxErr)
	}
	want := 0.05 / 3
	if diff := avgErr - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("avgErr = %v, want %v", avgErr, want)
	}
}

func TestEvaluateMismatch(t *testing.T) {
	o := New([]uint64{1})
	defer func() {
		if recover() == nil {
			t.Error("Evaluate with mismatched lengths did not panic")
		}
	}()
	o.Evaluate([]uint64{1, 2}, []float64{0.5})
}

func TestNewFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFromSorted accepted unsorted input")
		}
	}()
	NewFromSorted([]uint64{3, 1, 2})
}

func TestMaxUint64Boundary(t *testing.T) {
	o := New([]uint64{1, ^uint64(0), ^uint64(0)})
	lo, hi := o.RankInterval(^uint64(0))
	if lo != 1 || hi != 2 {
		t.Errorf("RankInterval(max) = [%d,%d], want [1,2]", lo, hi)
	}
}

func TestRankMonotoneProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		o := New(raw)
		prev := int64(-1)
		for probe := uint64(0); probe < 200; probe += 7 {
			r := o.Rank(probe)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileIsAlwaysAMember(t *testing.T) {
	f := func(raw []uint64, phiBits uint16) bool {
		if len(raw) == 0 {
			return true
		}
		phi := float64(phiBits%999+1) / 1000
		o := New(raw)
		q := o.Quantile(phi)
		for _, v := range raw {
			if v == q {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
