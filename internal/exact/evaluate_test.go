package exact

import (
	"testing"

	"streamquantiles/internal/core"
)

// perfectSummary answers from the oracle itself, so EvaluateSummary must
// report zero error for it.
type perfectSummary struct{ o *Oracle }

func (p perfectSummary) Count() int64                { return p.o.N() }
func (p perfectSummary) Rank(x uint64) int64         { return p.o.Rank(x) }
func (p perfectSummary) Quantile(phi float64) uint64 { return p.o.Quantile(phi) }
func (p perfectSummary) SpaceBytes() int64           { return 0 }

func TestEvaluateSummaryPerfect(t *testing.T) {
	data := make([]uint64, 1000)
	for i := range data {
		data[i] = uint64(i * 37 % 500)
	}
	o := New(data)
	maxE, avgE := o.EvaluateSummary(perfectSummary{o}, 0.01)
	if maxE != 0 || avgE != 0 {
		t.Errorf("perfect summary scored max=%v avg=%v", maxE, avgE)
	}
}

// offsetSummary shifts every answer by a fixed rank offset.
type offsetSummary struct {
	o      *Oracle
	offset int64
}

func (p offsetSummary) Count() int64        { return p.o.N() }
func (p offsetSummary) Rank(x uint64) int64 { return p.o.Rank(x) }
func (p offsetSummary) Quantile(phi float64) uint64 {
	r := core.TargetRank(phi, p.o.N()) + p.offset
	r = core.ClampRank(r, p.o.N()-1)
	return p.o.sorted[r]
}
func (p offsetSummary) SpaceBytes() int64 { return 0 }

func TestEvaluateSummaryOffset(t *testing.T) {
	data := make([]uint64, 10000)
	for i := range data {
		data[i] = uint64(i) // distinct: rank offset = value offset
	}
	o := New(data)
	maxE, avgE := o.EvaluateSummary(offsetSummary{o: o, offset: 50}, 0.1)
	// Offset of 50 ranks in 10000 elements = 0.005 error at every phi
	// (except near the top where clamping shrinks it).
	if maxE < 0.004 || maxE > 0.006 {
		t.Errorf("maxErr = %v, want ≈ 0.005", maxE)
	}
	if avgE <= 0 || avgE > maxE {
		t.Errorf("avgErr = %v out of range", avgE)
	}
}
