package skiplist

import (
	"testing"

	"streamquantiles/internal/xhash"
)

// TestStressChurn exercises long interleavings of inserts and removals
// with many duplicate keys — the workload GK summaries generate — and
// validates full structural integrity afterwards.
func TestStressChurn(t *testing.T) {
	l := New[uint64, int](1)
	rng := xhash.NewSplitMix64(2)
	var nodes []*Node[uint64, int]
	const ops = 200000
	for op := 0; op < ops; op++ {
		if len(nodes) == 0 || rng.Float64() < 0.55 {
			nodes = append(nodes, l.Insert(rng.Uint64n(64), op)) // heavy duplication
		} else {
			i := rng.Intn(len(nodes))
			l.Remove(nodes[i])
			nodes[i] = nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
		}
	}
	if l.Len() != len(nodes) {
		t.Fatalf("Len %d, want %d", l.Len(), len(nodes))
	}
	// Full order scan and prev-pointer integrity.
	count := 0
	var prev *Node[uint64, int]
	for n := l.First(); n != nil; n = n.Next() {
		if prev != nil {
			if n.Key < prev.Key {
				t.Fatal("order violated")
			}
			if l.Prev(n) != prev {
				t.Fatal("prev pointer violated")
			}
		} else if l.Prev(n) != nil {
			t.Fatal("first node has a predecessor")
		}
		prev = n
		count++
	}
	if count != len(nodes) {
		t.Fatalf("scan found %d nodes, want %d", count, len(nodes))
	}
	// Last() agrees with the scan.
	if l.Last() != prev {
		t.Fatal("Last() disagrees with scan")
	}
}

func TestLastEmptyAndSingle(t *testing.T) {
	l := New[uint64, int](3)
	if l.Last() != nil {
		t.Error("Last of empty list not nil")
	}
	n := l.Insert(5, 0)
	if l.Last() != n {
		t.Error("Last of singleton wrong")
	}
	l.Remove(n)
	if l.Last() != nil {
		t.Error("Last after removal not nil")
	}
}

func TestTowerDeterminism(t *testing.T) {
	// Same seed ⇒ identical tower shapes ⇒ identical PointerWords.
	mk := func() int64 {
		l := New[uint64, int](9)
		for i := uint64(0); i < 1000; i++ {
			l.Insert(i*7%513, int(i))
		}
		return l.PointerWords()
	}
	if mk() != mk() {
		t.Error("same-seed lists have different tower footprints")
	}
}
