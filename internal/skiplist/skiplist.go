// Package skiplist implements an ordered list with O(log n) successor
// search, used as the tuple index of the GK quantile summaries
// (GKTheory and GKAdaptive both "maintain a binary search tree on top of
// L"; a skip list plays that role here with better cache behaviour and a
// simpler removal protocol for arbitrary nodes).
//
// The list is keyed by an ordered key type and allows duplicate keys.
// New nodes with a key equal to existing ones are inserted after them, so
// insertion order is preserved among equals — exactly the "insert right
// before the successor" rule of the GK algorithm.
package skiplist

import (
	"cmp"

	"streamquantiles/internal/xhash"
)

const maxLevel = 32

// Node is an element of the list. The payload V is stored by value.
type Node[K cmp.Ordered, V any] struct {
	Key   K
	Value V

	next []*Node[K, V]
	prev *Node[K, V] // base-level predecessor (head sentinel for the first node)
}

// Next returns the following node in key order, or nil at the end.
func (n *Node[K, V]) Next() *Node[K, V] { return n.next[0] }

// List is an ordered skip list. The zero value is not usable; call New.
type List[K cmp.Ordered, V any] struct {
	head  *Node[K, V] // sentinel; head.next[l] is the first node on level l
	level int         // highest level currently in use
	size  int
	rng   *xhash.SplitMix64
	ptrs  int64 // total forward pointers allocated, for space accounting
}

// New returns an empty list whose tower heights are drawn from the given
// seed, so a fixed seed makes the structure fully deterministic.
func New[K cmp.Ordered, V any](seed uint64) *List[K, V] {
	return &List[K, V]{
		head: &Node[K, V]{next: make([]*Node[K, V], maxLevel)},
		rng:  xhash.NewSplitMix64(seed),
	}
}

// Len reports the number of nodes.
func (l *List[K, V]) Len() int { return l.size }

// First returns the smallest node, or nil if the list is empty.
func (l *List[K, V]) First() *Node[K, V] { return l.head.next[0] }

// Last returns the largest node in O(log n), or nil if the list is empty.
func (l *List[K, V]) Last() *Node[K, V] {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil {
			x = x.next[lv]
		}
	}
	if x == l.head {
		return nil
	}
	return x
}

// randomLevel draws a tower height with P(height ≥ h) = 2^−(h−1).
func (l *List[K, V]) randomLevel() int {
	h := 1
	for h < maxLevel && l.rng.Next()&1 == 1 {
		h++
	}
	return h
}

// findPreds fills preds with, per level, the last node whose key is < key
// (treating the head sentinel as smaller than everything). After the call,
// preds[0].next[0] is the first node with key ≥ key.
func (l *List[K, V]) findPreds(key K, preds *[maxLevel]*Node[K, V]) {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && x.next[lv].Key < key {
			x = x.next[lv]
		}
		preds[lv] = x
	}
	for lv := l.level; lv < maxLevel; lv++ {
		preds[lv] = l.head
	}
}

// Successor returns the smallest node whose key is strictly greater than
// key, or nil if there is none.
func (l *List[K, V]) Successor(key K) *Node[K, V] {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && x.next[lv].Key <= key {
			x = x.next[lv]
		}
	}
	return x.next[0]
}

// Floor returns the largest node whose key is ≤ key, or nil if all keys
// are greater.
func (l *List[K, V]) Floor(key K) *Node[K, V] {
	x := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && x.next[lv].Key <= key {
			x = x.next[lv]
		}
	}
	if x == l.head {
		return nil
	}
	return x
}

// Insert adds a node with the given key and value, after any existing
// nodes with an equal key, and returns it.
func (l *List[K, V]) Insert(key K, value V) *Node[K, V] {
	h := l.randomLevel()
	n := &Node[K, V]{Key: key, Value: value, next: make([]*Node[K, V], h)}
	if h > l.level {
		l.level = h
	}

	// Insert after duplicates: walk with ≤ on every level.
	x := l.head
	var preds [maxLevel]*Node[K, V]
	for lv := l.level - 1; lv >= 0; lv-- {
		for x.next[lv] != nil && x.next[lv].Key <= key {
			x = x.next[lv]
		}
		preds[lv] = x
	}

	for lv := 0; lv < h; lv++ {
		n.next[lv] = preds[lv].next[lv]
		preds[lv].next[lv] = n
	}
	n.prev = preds[0]
	if n.next[0] != nil {
		n.next[0].prev = n
	}
	l.size++
	l.ptrs += int64(h) + 1 // forward tower + prev pointer
	return n
}

// Remove unlinks the given node from the list. The node must currently be
// a member; removing a foreign node corrupts nothing but is a no-op for
// levels where it is not linked and panics if it cannot be located at the
// base level.
func (l *List[K, V]) Remove(n *Node[K, V]) {
	var preds [maxLevel]*Node[K, V]
	l.findPreds(n.Key, &preds)

	for lv := len(n.next) - 1; lv >= 0; lv-- {
		x := preds[lv]
		for x.next[lv] != nil && x.next[lv] != n && x.next[lv].Key == n.Key {
			x = x.next[lv]
		}
		if x.next[lv] == n {
			x.next[lv] = n.next[lv]
		}
	}
	if n.next[0] != nil {
		n.next[0].prev = n.prev
	}
	if n.prev != nil && n.prev.next[0] == n {
		// Defensive: base-level unlink must have happened above.
		//lint:ignore SQ003 corruption guard: continuing with a half-unlinked node would corrupt the list silently
		panic("skiplist: Remove could not unlink node at base level")
	}
	l.size--
	l.ptrs -= int64(len(n.next)) + 1
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	n.next = nil
	n.prev = nil
}

// Prev returns the node before n, or nil if n is the first node.
func (l *List[K, V]) Prev(n *Node[K, V]) *Node[K, V] {
	if n.prev == l.head {
		return nil
	}
	return n.prev
}

// PointerWords reports the number of 4-byte pointer words attributed to
// the index structure (forward towers and prev pointers), used by the GK
// summaries' space accounting.
func (l *List[K, V]) PointerWords() int64 { return l.ptrs }

// Arena is a reusable slab allocator for list nodes and their forward
// towers, for callers that rebuild a list of roughly stable size over
// and over (the GK batch paths). The owner calls Reset once the
// previous list built from the arena is dead; the chunks are then
// recycled in place, so a steady-state rebuild allocates nothing.
// Chunks are never reallocated — only appended — so pointers into them
// stay valid until Reset.
type Arena[K cmp.Ordered, V any] struct {
	nodes  [][]Node[K, V]  // chunk i is used up to len(nodes[i])
	towers [][]*Node[K, V] // forward-pointer slabs, carved per tower
	nc, tc int             // active chunk indices
}

// arenaChunk is the node count per slab chunk; tower chunks hold twice
// as many pointers (the expected tower total is 2 per node).
const arenaChunk = 256

// Reset recycles every chunk. The caller must guarantee no list built
// from this arena is referenced anymore.
func (a *Arena[K, V]) Reset() {
	for i := range a.nodes {
		a.nodes[i] = a.nodes[i][:0]
	}
	for i := range a.towers {
		a.towers[i] = a.towers[i][:0]
	}
	a.nc, a.tc = 0, 0
}

// node returns a zeroed node from the slab, growing by one chunk when
// the active one fills.
func (a *Arena[K, V]) node() *Node[K, V] {
	for a.nc < len(a.nodes) && len(a.nodes[a.nc]) == cap(a.nodes[a.nc]) {
		a.nc++
	}
	if a.nc == len(a.nodes) {
		a.nodes = append(a.nodes, make([]Node[K, V], 0, arenaChunk))
	}
	c := a.nodes[a.nc][:len(a.nodes[a.nc])+1]
	a.nodes[a.nc] = c
	n := &c[len(c)-1]
	*n = Node[K, V]{} // clear recycled state
	return n
}

// tower returns a zeroed capacity-capped pointer slice of length h
// carved from the slab. A chunk whose remainder is smaller than h is
// skipped until Reset (h ≤ maxLevel ≪ chunk size, so waste is tiny).
func (a *Arena[K, V]) tower(h int) []*Node[K, V] {
	for a.tc < len(a.towers) && cap(a.towers[a.tc])-len(a.towers[a.tc]) < h {
		a.tc++
	}
	if a.tc == len(a.towers) {
		size := 2 * arenaChunk
		if h > size {
			size = h
		}
		a.towers = append(a.towers, make([]*Node[K, V], 0, size))
	}
	c := a.towers[a.tc]
	base := len(c)
	a.towers[a.tc] = c[:base+h]
	tw := c[base : base+h : base+h]
	for i := range tw {
		tw[i] = nil
	}
	return tw
}

// Builder assembles a list from keys fed in nondecreasing order in O(1)
// amortized time per node — no searches. The GK batch paths use it to
// rebuild their tuple index after a sort+merge pass: rebuilding L nodes
// costs O(L) instead of the O(L log L) of repeated Insert calls.
type Builder[K cmp.Ordered, V any] struct {
	list  *List[K, V]
	arena *Arena[K, V]          // optional node/tower slab source
	tails [maxLevel]*Node[K, V] // last node linked on each level
}

// NewBuilder starts building an empty list with the given tower seed.
func NewBuilder[K cmp.Ordered, V any](seed uint64) *Builder[K, V] {
	return NewBuilderArena[K, V](seed, nil)
}

// NewBuilderArena starts building an empty list whose nodes and towers
// are drawn from the given arena (heap-allocated when arena is nil).
// The caller owns the arena's lifecycle: the built list is valid until
// the arena's next Reset.
func NewBuilderArena[K cmp.Ordered, V any](seed uint64, arena *Arena[K, V]) *Builder[K, V] {
	b := &Builder[K, V]{list: New[K, V](seed), arena: arena}
	for lv := range b.tails {
		b.tails[lv] = b.list.head
	}
	return b
}

// Append links a node with the given key after everything appended so
// far and returns it. Keys must arrive in nondecreasing order.
func (b *Builder[K, V]) Append(key K, value V) *Node[K, V] {
	l := b.list
	if b.tails[0] != l.head && key < b.tails[0].Key {
		//lint:ignore SQ003 corruption guard: an out-of-order append would silently break every subsequent search
		panic("skiplist: Builder.Append out of order")
	}
	h := l.randomLevel()
	var n *Node[K, V]
	if b.arena != nil {
		n = b.arena.node()
		n.Key, n.Value = key, value
		n.next, n.prev = b.arena.tower(h), b.tails[0]
	} else {
		n = &Node[K, V]{Key: key, Value: value, next: make([]*Node[K, V], h), prev: b.tails[0]}
	}
	if h > l.level {
		l.level = h
	}
	for lv := 0; lv < h; lv++ {
		b.tails[lv].next[lv] = n
		b.tails[lv] = n
	}
	l.size++
	l.ptrs += int64(h) + 1
	return n
}

// Finish returns the built list. The builder must not be used afterwards.
func (b *Builder[K, V]) Finish() *List[K, V] { return b.list }
