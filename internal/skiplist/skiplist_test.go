package skiplist

import (
	"sort"
	"testing"
	"testing/quick"

	"streamquantiles/internal/xhash"
)

func collect(l *List[uint64, int]) []uint64 {
	var out []uint64
	for n := l.First(); n != nil; n = n.Next() {
		out = append(out, n.Key)
	}
	return out
}

func TestInsertKeepsOrder(t *testing.T) {
	l := New[uint64, int](1)
	rng := xhash.NewSplitMix64(2)
	for i := 0; i < 2000; i++ {
		l.Insert(rng.Uint64n(500), i)
	}
	keys := collect(l)
	if len(keys) != 2000 {
		t.Fatalf("len = %d, want 2000", len(keys))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted after random inserts")
	}
	if l.Len() != 2000 {
		t.Fatalf("Len() = %d", l.Len())
	}
}

func TestDuplicatesInsertAfter(t *testing.T) {
	l := New[uint64, int](1)
	a := l.Insert(5, 1)
	b := l.Insert(5, 2)
	c := l.Insert(5, 3)
	vals := []int{}
	for n := l.First(); n != nil; n = n.Next() {
		vals = append(vals, n.Value)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("duplicate order = %v, want %v", vals, want)
		}
	}
	_ = a
	_ = b
	_ = c
}

func TestSuccessor(t *testing.T) {
	l := New[uint64, int](3)
	for _, k := range []uint64{10, 20, 20, 30} {
		l.Insert(k, 0)
	}
	cases := []struct {
		key  uint64
		want uint64
		nil_ bool
	}{
		{5, 10, false},
		{10, 20, false},
		{15, 20, false},
		{20, 30, false},
		{29, 30, false},
		{30, 0, true},
		{100, 0, true},
	}
	for _, c := range cases {
		got := l.Successor(c.key)
		if c.nil_ {
			if got != nil {
				t.Errorf("Successor(%d) = %d, want nil", c.key, got.Key)
			}
			continue
		}
		if got == nil || got.Key != c.want {
			t.Errorf("Successor(%d) = %v, want %d", c.key, got, c.want)
		}
	}
}

func TestFloor(t *testing.T) {
	l := New[uint64, int](3)
	for _, k := range []uint64{10, 20, 30} {
		l.Insert(k, 0)
	}
	if got := l.Floor(5); got != nil {
		t.Errorf("Floor(5) = %v, want nil", got.Key)
	}
	if got := l.Floor(10); got == nil || got.Key != 10 {
		t.Errorf("Floor(10) wrong: %v", got)
	}
	if got := l.Floor(25); got == nil || got.Key != 20 {
		t.Errorf("Floor(25) wrong: %v", got)
	}
	if got := l.Floor(99); got == nil || got.Key != 30 {
		t.Errorf("Floor(99) wrong: %v", got)
	}
}

func TestRemoveMiddleFirstLast(t *testing.T) {
	l := New[uint64, int](5)
	var nodes []*Node[uint64, int]
	for _, k := range []uint64{1, 2, 3, 4, 5} {
		nodes = append(nodes, l.Insert(k, int(k)))
	}
	l.Remove(nodes[2]) // middle
	l.Remove(nodes[0]) // first
	l.Remove(nodes[4]) // last
	got := collect(l)
	want := []uint64{2, 4}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("after removals: %v, want %v", got, want)
	}
	if l.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", l.Len())
	}
}

func TestRemoveAmongDuplicates(t *testing.T) {
	l := New[uint64, int](7)
	a := l.Insert(5, 1)
	b := l.Insert(5, 2)
	c := l.Insert(5, 3)
	l.Remove(b)
	vals := []int{}
	for n := l.First(); n != nil; n = n.Next() {
		vals = append(vals, n.Value)
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("after removing middle duplicate: %v", vals)
	}
	l.Remove(a)
	l.Remove(c)
	if l.Len() != 0 || l.First() != nil {
		t.Fatal("list not empty after removing all")
	}
}

func TestPrev(t *testing.T) {
	l := New[uint64, int](9)
	a := l.Insert(1, 0)
	b := l.Insert(2, 0)
	if l.Prev(a) != nil {
		t.Error("Prev(first) should be nil")
	}
	if l.Prev(b) != a {
		t.Error("Prev(second) should be first")
	}
}

func TestPrevPointersAfterRemove(t *testing.T) {
	l := New[uint64, int](11)
	a := l.Insert(1, 0)
	b := l.Insert(2, 0)
	c := l.Insert(3, 0)
	l.Remove(b)
	if l.Prev(c) != a {
		t.Error("Prev skips removed node")
	}
	_ = a
}

func TestPointerWordsNonNegative(t *testing.T) {
	l := New[uint64, int](13)
	var nodes []*Node[uint64, int]
	for i := 0; i < 100; i++ {
		nodes = append(nodes, l.Insert(uint64(i), i))
	}
	if l.PointerWords() <= 0 {
		t.Fatal("PointerWords should be positive with 100 nodes")
	}
	for _, n := range nodes {
		l.Remove(n)
	}
	if l.PointerWords() != 0 {
		t.Fatalf("PointerWords = %d after removing everything, want 0", l.PointerWords())
	}
}

// TestAgainstReferenceModel drives the list and a sorted-slice model with
// the same random operations and checks they agree.
func TestAgainstReferenceModel(t *testing.T) {
	l := New[uint64, int](17)
	rng := xhash.NewSplitMix64(18)
	type entry struct {
		key  uint64
		node *Node[uint64, int]
	}
	var model []entry
	for op := 0; op < 5000; op++ {
		if len(model) == 0 || rng.Float64() < 0.6 {
			k := rng.Uint64n(200)
			n := l.Insert(k, op)
			// insert after equals in the model
			pos := sort.Search(len(model), func(i int) bool { return model[i].key > k })
			model = append(model, entry{})
			copy(model[pos+1:], model[pos:])
			model[pos] = entry{key: k, node: n}
		} else {
			i := rng.Intn(len(model))
			l.Remove(model[i].node)
			model = append(model[:i], model[i+1:]...)
		}
	}
	keys := collect(l)
	if len(keys) != len(model) {
		t.Fatalf("size mismatch: list %d model %d", len(keys), len(model))
	}
	for i := range keys {
		if keys[i] != model[i].key {
			t.Fatalf("order mismatch at %d: %d vs %d", i, keys[i], model[i].key)
		}
	}
	// successor agreement on a sample of probes
	for probe := uint64(0); probe < 200; probe += 3 {
		got := l.Successor(probe)
		var want *entry
		for i := range model {
			if model[i].key > probe {
				want = &model[i]
				break
			}
		}
		switch {
		case got == nil && want == nil:
		case got == nil || want == nil:
			t.Fatalf("Successor(%d): got %v want %v", probe, got, want)
		case got.Key != want.key:
			t.Fatalf("Successor(%d): got %d want %d", probe, got.Key, want.key)
		}
	}
}

func TestQuickOrderInvariant(t *testing.T) {
	f := func(keys []uint64) bool {
		l := New[uint64, int](23)
		for i, k := range keys {
			l.Insert(k%1000, i)
		}
		got := collect(l)
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) &&
			l.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	l := New[uint64, int](1)
	rng := xhash.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(rng.Next(), i)
	}
}

func BenchmarkSuccessor(b *testing.B) {
	l := New[uint64, int](1)
	rng := xhash.NewSplitMix64(2)
	for i := 0; i < 100000; i++ {
		l.Insert(rng.Next(), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Successor(rng.Next())
	}
}
