// Package faultio is a deterministic fault-injecting filesystem shim
// for crash-recovery testing. It wraps any checkpoint.FS (usually the
// package's own MemFS) and injects the storage failure modes real
// sketch deployments meet:
//
//   - torn writes: the process crashes after the k-th byte of a write
//     reached the disk; every later operation fails (the process is
//     gone) — CrashAfterBytes
//   - bit flips and acknowledged-but-lost tails: corruption at rest,
//     applied directly on MemFS (FlipBit, Truncate)
//   - short reads: Read returns fewer bytes than requested, exposing
//     readers that assume one call fills the buffer — ShortReads
//   - transient EIO: the n-th operation of a kind fails with an error
//     marked Transient() — recoverable by the checkpoint layer's
//     capped-backoff retries — FailOp
//
// Every fault is parameterized explicitly (byte offsets, operation
// ordinals), so a test matrix driven by a seeded RNG is exactly
// reproducible from its seed.
package faultio

import (
	"errors"
	"fmt"
	"sync"

	"streamquantiles/internal/checkpoint"
)

// Op identifies a filesystem operation class for fault targeting.
type Op int

// The injectable operation classes.
const (
	OpCreate Op = iota
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpReadDir
	OpSyncDir
)

var opNames = [...]string{"create", "open", "read", "write", "sync", "close", "rename", "remove", "readdir", "syncdir"}

// String returns the operation's name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ErrCrashed is returned by every operation after an injected crash
// point: the simulated process is dead. It is NOT transient — retrying
// cannot help within the crashed "process"; recovery happens in the
// next incarnation.
var ErrCrashed = errors.New("faultio: injected crash")

// transientError marks an injected failure as retryable via the
// Transient() bool interface the checkpoint layer probes for.
type transientError struct{ op Op }

func (e *transientError) Error() string {
	return fmt.Sprintf("faultio: injected transient EIO on %s", e.op)
}

// Transient reports that retrying may succeed.
func (e *transientError) Transient() bool { return true }

// Injector wraps an inner checkpoint.FS with programmed faults. The
// zero fault set is a transparent pass-through. Counters are shared
// across all files opened through the injector, so "the 3rd write"
// means the 3rd write the process issues, wherever it lands.
type Injector struct {
	inner checkpoint.FS

	mu        sync.Mutex
	written   int  // cumulative bytes successfully written
	crashAt   int  // crash once written reaches this; <0 disables
	crashed   bool // set after the crash point is hit
	shortRead int  // max bytes per Read; 0 disables

	opCount  map[Op]int    // operations seen so far, per class
	failOn   map[Op][2]int // op -> [first ordinal, count] to fail
	failWith map[Op]error  // op -> error to return
}

// New wraps inner with no faults armed.
func New(inner checkpoint.FS) *Injector {
	return &Injector{
		inner:    inner,
		crashAt:  -1,
		opCount:  map[Op]int{},
		failOn:   map[Op][2]int{},
		failWith: map[Op]error{},
	}
}

// CrashAfterBytes arms a torn-write crash: the write that would push
// cumulative written bytes past k stores only the prefix up to k and
// fails with ErrCrashed, as does every subsequent operation. The inner
// filesystem keeps whatever had been written — exactly what a real
// crash leaves behind.
func (in *Injector) CrashAfterBytes(k int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = k
	return in
}

// ShortReads caps every Read at max bytes per call, so the stream
// arrives in deterministic fragments.
func (in *Injector) ShortReads(max int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if max < 1 {
		max = 1
	}
	in.shortRead = max
	return in
}

// FailOp arms count consecutive transient EIO failures starting at the
// nth (1-based) operation of the given class.
func (in *Injector) FailOp(op Op, nth, count int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failOn[op] = [2]int{nth, count}
	in.failWith[op] = &transientError{op: op}
	return in
}

// Revive clears the crashed state — the "process" restarts against the
// same underlying filesystem, which is exactly the recovery scenario.
func (in *Injector) Revive() *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashed = false
	in.crashAt = -1
	return in
}

// before accounts one operation and returns the injected error, if any.
func (in *Injector) before(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.opCount[op]++
	if window, ok := in.failOn[op]; ok {
		n := in.opCount[op]
		if n >= window[0] && n < window[0]+window[1] {
			return in.failWith[op]
		}
	}
	return nil
}

// MkdirAll implements checkpoint.FS (never injected: directory creation
// happens once at open, before any interesting fault window).
func (in *Injector) MkdirAll(dir string) error { return in.inner.MkdirAll(dir) }

// Create implements checkpoint.FS.
func (in *Injector) Create(name string) (checkpoint.File, error) {
	if err := in.before(OpCreate); err != nil {
		return nil, err
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

// Open implements checkpoint.FS.
func (in *Injector) Open(name string) (checkpoint.File, error) {
	if err := in.before(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

// Rename implements checkpoint.FS.
func (in *Injector) Rename(oldname, newname string) error {
	if err := in.before(OpRename); err != nil {
		return err
	}
	return in.inner.Rename(oldname, newname)
}

// Remove implements checkpoint.FS.
func (in *Injector) Remove(name string) error {
	if err := in.before(OpRemove); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

// ReadDir implements checkpoint.FS.
func (in *Injector) ReadDir(dir string) ([]string, error) {
	if err := in.before(OpReadDir); err != nil {
		return nil, err
	}
	return in.inner.ReadDir(dir)
}

// SyncDir implements checkpoint.FS.
func (in *Injector) SyncDir(dir string) error {
	if err := in.before(OpSyncDir); err != nil {
		return err
	}
	return in.inner.SyncDir(dir)
}

// faultFile threads file operations back through the injector.
type faultFile struct {
	in *Injector
	f  checkpoint.File
}

// Read implements io.Reader with injected short reads.
func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.in.before(OpRead); err != nil {
		return 0, err
	}
	f.in.mu.Lock()
	max := f.in.shortRead
	f.in.mu.Unlock()
	if max > 0 && len(p) > max {
		p = p[:max]
	}
	return f.f.Read(p)
}

// Write implements io.Writer with the torn-write crash point.
func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.in.before(OpWrite); err != nil {
		return 0, err
	}
	f.in.mu.Lock()
	crashAt := f.in.crashAt
	written := f.in.written
	f.in.mu.Unlock()
	if crashAt >= 0 && written+len(p) > crashAt {
		keep := crashAt - written
		if keep > 0 {
			if n, err := f.f.Write(p[:keep]); err != nil {
				return n, err
			}
		}
		f.in.mu.Lock()
		f.in.written = crashAt
		f.in.crashed = true
		f.in.mu.Unlock()
		return keep, ErrCrashed
	}
	n, err := f.f.Write(p)
	f.in.mu.Lock()
	f.in.written += n
	f.in.mu.Unlock()
	return n, err
}

// Sync implements checkpoint.File.
func (f *faultFile) Sync() error {
	if err := f.in.before(OpSync); err != nil {
		return err
	}
	return f.f.Sync()
}

// Close implements checkpoint.File. Close is never injected: even a
// dying process loses its descriptors, so modeling close failure adds
// noise without a matching real-world recovery behavior.
func (f *faultFile) Close() error { return f.f.Close() }
