package faultio

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"

	"streamquantiles/internal/checkpoint"
)

// MemFS is an in-memory checkpoint.FS: the substrate the fault injector
// wraps, so crash-recovery tests run hermetically and fast. It models a
// disk that persists writes immediately (Sync is a no-op); the injector
// layered on top decides which bytes "made it" before a crash.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string][]byte{}, dirs: map[string]bool{"/": true, ".": true}}
}

// MkdirAll implements checkpoint.FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := filepath.Clean(dir); ; d = filepath.Dir(d) {
		m.dirs[d] = true
		if parent := filepath.Dir(d); parent == d {
			break
		}
	}
	return nil
}

// Create implements checkpoint.FS.
func (m *MemFS) Create(name string) (checkpoint.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if !m.dirs[filepath.Dir(name)] {
		return nil, fmt.Errorf("faultio: create %s: no such directory", name)
	}
	m.files[name] = nil
	return &memFile{fs: m, name: name, writable: true}, nil
}

// Open implements checkpoint.FS.
func (m *MemFS) Open(name string) (checkpoint.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("faultio: open %s: no such file", name)
	}
	snapshot := append([]byte(nil), data...)
	return &memFile{fs: m, name: name, data: snapshot}, nil
}

// Rename implements checkpoint.FS; like POSIX rename it atomically
// replaces the target.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	data, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("faultio: rename %s: no such file", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = data
	return nil
}

// Remove implements checkpoint.FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("faultio: remove %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// ReadDir implements checkpoint.FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	if !m.dirs[dir] {
		return nil, fmt.Errorf("faultio: readdir %s: no such directory", dir)
	}
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements checkpoint.FS.
func (m *MemFS) SyncDir(string) error { return nil }

// ReadFile returns a copy of a file's current content; tests use it to
// inspect and golden-compare checkpoint files.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[filepath.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("faultio: read %s: no such file", name)
	}
	return append([]byte(nil), data...), nil
}

// FlipBit flips one bit of a stored file — corruption at rest, the
// classic silent disk fault a checksum must catch.
func (m *MemFS) FlipBit(name string, byteIdx int, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	data, ok := m.files[name]
	if !ok {
		return fmt.Errorf("faultio: flip %s: no such file", name)
	}
	if byteIdx < 0 || byteIdx >= len(data) {
		return fmt.Errorf("faultio: flip %s: offset %d outside %d-byte file", name, byteIdx, len(data))
	}
	data[byteIdx] ^= mask
	return nil
}

// Truncate cuts a stored file to n bytes — a torn write the disk
// acknowledged anyway (lost tail after power failure).
func (m *MemFS) Truncate(name string, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	data, ok := m.files[name]
	if !ok {
		return fmt.Errorf("faultio: truncate %s: no such file", name)
	}
	if n < 0 || n > len(data) {
		return fmt.Errorf("faultio: truncate %s: length %d outside %d-byte file", name, n, len(data))
	}
	m.files[name] = data[:n]
	return nil
}

// memFile is one open handle. Writes land in the MemFS immediately
// (matching a page cache that the no-op Sync "flushes"); reads serve a
// snapshot taken at Open.
type memFile struct {
	fs       *MemFS
	name     string
	data     []byte // read snapshot
	pos      int
	writable bool
	closed   bool
}

// Read implements io.Reader over the open-time snapshot.
func (f *memFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("faultio: read %s: file closed", f.name)
	}
	if f.pos >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.pos:])
	f.pos += n
	return n, nil
}

// Write implements io.Writer, appending to the stored file.
func (f *memFile) Write(p []byte) (int, error) {
	if f.closed || !f.writable {
		return 0, fmt.Errorf("faultio: write %s: file closed or read-only", f.name)
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

// Sync implements checkpoint.File; MemFS persists eagerly.
func (f *memFile) Sync() error {
	if f.closed {
		return fmt.Errorf("faultio: sync %s: file closed", f.name)
	}
	return nil
}

// Close implements checkpoint.File.
func (f *memFile) Close() error {
	if f.closed {
		return fmt.Errorf("faultio: close %s: already closed", f.name)
	}
	f.closed = true
	return nil
}
