package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestMemFSCreateWriteOpenRead(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/a/b/file")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello "))
	f.Write([]byte("world"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/a/b/file")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read %q, %v", data, err)
	}
}

func TestMemFSOpenSnapshotsContent(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("/file")
	f.Write([]byte("before"))
	r, _ := fs.Open("/file")
	f.Write([]byte(" after"))
	data, _ := io.ReadAll(r)
	if string(data) != "before" {
		t.Fatalf("reader saw writes after open: %q", data)
	}
}

func TestMemFSRenameReplacesTarget(t *testing.T) {
	fs := NewMemFS()
	a, _ := fs.Create("/a")
	a.Write([]byte("new"))
	b, _ := fs.Create("/b")
	b.Write([]byte("old"))
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/b")
	if string(data) != "new" {
		t.Fatalf("target after rename: %q", data)
	}
	if _, err := fs.Open("/a"); err == nil {
		t.Fatal("source still present after rename")
	}
}

func TestMemFSReadDirAndErrors(t *testing.T) {
	fs := NewMemFS()
	fs.MkdirAll("/d")
	fs.Create("/d/b")
	fs.Create("/d/a")
	names, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v", names)
	}
	if _, err := fs.ReadDir("/missing"); err == nil {
		t.Fatal("missing directory listed")
	}
	if _, err := fs.Open("/missing/file"); err == nil {
		t.Fatal("missing file opened")
	}
	if err := fs.Remove("/missing/file"); err == nil {
		t.Fatal("missing file removed")
	}
}

func TestFlipBitAndTruncate(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("/file")
	f.Write([]byte{0xFF, 0x00})
	if err := fs.FlipBit("/file", 1, 0x80); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/file")
	if !bytes.Equal(data, []byte{0xFF, 0x80}) {
		t.Fatalf("after flip: %v", data)
	}
	if err := fs.FlipBit("/file", 9, 1); err == nil {
		t.Fatal("out-of-range flip accepted")
	}
	if err := fs.Truncate("/file", 1); err != nil {
		t.Fatal(err)
	}
	data, _ = fs.ReadFile("/file")
	if !bytes.Equal(data, []byte{0xFF}) {
		t.Fatalf("after truncate: %v", data)
	}
}

func TestInjectorCrashAfterBytesTearsExactly(t *testing.T) {
	mem := NewMemFS()
	inj := New(mem).CrashAfterBytes(4)
	f, err := inj.Create("/file")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write returned (%d, %v), want (4, ErrCrashed)", n, err)
	}
	data, _ := mem.ReadFile("/file")
	if string(data) != "abcd" {
		t.Fatalf("file holds %q after torn write at 4", data)
	}
	// The process is dead: everything fails from here.
	if _, err := inj.Open("/file"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v", err)
	}
	if err := inj.Rename("/file", "/x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
	// Revive simulates the next process incarnation.
	inj.Revive()
	if _, err := inj.Open("/file"); err != nil {
		t.Fatalf("open after revive: %v", err)
	}
}

func TestInjectorCrashSpansMultipleWrites(t *testing.T) {
	mem := NewMemFS()
	inj := New(mem).CrashAfterBytes(6)
	f, _ := inj.Create("/file")
	if _, err := f.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("efgh")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second write: %v", err)
	}
	data, _ := mem.ReadFile("/file")
	if string(data) != "abcdef" {
		t.Fatalf("file holds %q, want cumulative prefix abcdef", data)
	}
}

func TestInjectorShortReads(t *testing.T) {
	mem := NewMemFS()
	f, _ := mem.Create("/file")
	f.Write([]byte("0123456789"))
	inj := New(mem).ShortReads(3)
	r, err := inj.Open("/file")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	if n != 3 || err != nil {
		t.Fatalf("short read returned (%d, %v), want (3, nil)", n, err)
	}
	rest, err := io.ReadAll(r)
	if err != nil || string(buf[:n])+string(rest) != "0123456789" {
		t.Fatalf("reassembled %q, %v", string(buf[:n])+string(rest), err)
	}
}

func TestInjectorFailOpWindowIsTransient(t *testing.T) {
	mem := NewMemFS()
	inj := New(mem).FailOp(OpRename, 2, 2)
	mem.Create("/a")
	if err := inj.Rename("/a", "/b"); err != nil {
		t.Fatalf("rename 1: %v", err)
	}
	for i := 0; i < 2; i++ {
		err := inj.Rename("/b", "/c")
		if err == nil {
			t.Fatalf("rename %d succeeded inside fault window", 2+i)
		}
		var tr interface{ Transient() bool }
		if !errors.As(err, &tr) || !tr.Transient() {
			t.Fatalf("injected error not transient: %v", err)
		}
	}
	if err := inj.Rename("/b", "/c"); err != nil {
		t.Fatalf("rename after window: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpSyncDir.String() != "syncdir" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op renders empty")
	}
}
