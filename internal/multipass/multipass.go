// Package multipass implements exact selection with limited memory over
// a re-readable input, in the spirit of Munro and Paterson ("Selection
// and sorting with limited storage", TCS 1980) — the historical starting
// point of the paper: exact selection with p passes needs Θ(n^(1/p))
// memory, and the first pass of their algorithm is the earliest
// streaming quantile summary.
//
// Each pass runs an ε-approximate summary (GKArray) over the elements
// still inside the candidate interval, then narrows the interval around
// the target rank. The candidate population shrinks by ~2εm per pass, so
// with memory for an ε summary the pass count is O(log n / log(1/ε)) —
// the classic memory/passes tradeoff in a practical form. The final pass
// collects the survivors exactly.
package multipass

import (
	"errors"
	"fmt"
	"slices"

	"streamquantiles/internal/gk"
)

// ErrTooManyPasses is returned when the interval stops shrinking within
// the pass budget — in practice only when the memory budget is tiny.
var ErrTooManyPasses = errors.New("multipass: pass budget exhausted")

// Source replays a stream from the beginning on demand. Implementations
// must yield the identical sequence on every call.
type Source interface {
	// Scan calls fn for every stream element in order.
	Scan(fn func(x uint64))
}

// SliceSource adapts an in-memory slice (the common test and example
// case; production callers wrap files or re-runnable queries).
type SliceSource []uint64

// Scan implements Source.
func (s SliceSource) Scan(fn func(x uint64)) {
	for _, x := range s {
		fn(x)
	}
}

// Stats reports how a Select call spent its budget.
type Stats struct {
	Passes     int
	Candidates int64 // candidate-set size before the final pass
}

// Select returns the element of exact rank k (0-based, by the paper's
// rank convention: k elements are strictly smaller, ties broken as in a
// stable sort of the multiset) using at most memory words of working
// storage and at most maxPasses passes over src.
func Select(src Source, k int64, memory int, maxPasses int) (uint64, Stats, error) {
	if memory < 64 {
		return 0, Stats{}, fmt.Errorf("multipass: memory budget %d too small", memory)
	}
	if maxPasses < 2 {
		return 0, Stats{}, fmt.Errorf("multipass: need at least 2 passes, got %d", maxPasses)
	}

	// ε chosen so a GK summary fits the word budget: the summary uses
	// ~3 words/tuple and empirically ≤ (4/ε)·words at laptop scales.
	eps := 8.0 / float64(memory)
	if eps >= 0.25 {
		eps = 0.25
	}

	lo, hi := uint64(0), ^uint64(0) // candidate interval, inclusive
	var stats Stats

	for pass := 1; pass <= maxPasses; pass++ {
		stats.Passes = pass
		// One pass: count elements below lo, summarize those in [lo, hi].
		var below, inside, total int64
		s := gk.NewArray(eps)
		src.Scan(func(x uint64) {
			total++
			switch {
			case x < lo:
				below++
			case x <= hi:
				inside++
				s.Update(x)
			}
		})
		if k < below || k >= below+inside {
			return 0, stats, fmt.Errorf("multipass: rank %d left the candidate interval (below=%d inside=%d)", k, below, inside)
		}
		stats.Candidates = inside

		if inside <= int64(memory) {
			// Final pass: collect survivors exactly.
			buf := make([]uint64, 0, inside)
			src.Scan(func(x uint64) {
				if x >= lo && x <= hi {
					buf = append(buf, x)
				}
			})
			stats.Passes++
			slices.Sort(buf)
			return buf[k-below], stats, nil
		}

		// Narrow [lo, hi] using the summary: the target has rank
		// k − below among the inside elements; elements of summary rank
		// below (k−below) − εm or above (k−below) + εm cannot be it.
		target := k - below
		phiLo := (float64(target) - 2*eps*float64(inside)) / float64(inside)
		phiHi := (float64(target) + 2*eps*float64(inside)) / float64(inside)
		newLo, newHi := lo, hi
		if phiLo > 0 {
			newLo = s.Quantile(clampPhi(phiLo))
		}
		if phiHi < 1 {
			newHi = s.Quantile(clampPhi(phiHi))
		}
		if newLo > lo || newHi < hi {
			lo, hi = maxU(lo, newLo), minU(hi, newHi)
			continue
		}
		// No progress: a block of duplicates wider than the summary's
		// resolution straddles the target. Take the summary's candidate
		// as a pivot and verify it exactly in one pass — either it is the
		// answer, or the interval shrinks past its duplicate block.
		pivot := s.Quantile(clampPhi(float64(target) / float64(inside)))
		var lt, eq int64
		src.Scan(func(x uint64) {
			switch {
			case x < pivot:
				lt++
			case x == pivot:
				eq++
			}
		})
		stats.Passes++
		switch {
		case k >= lt && k < lt+eq:
			return pivot, stats, nil
		case k < lt:
			hi = pivot - 1 // pivot > lo, else lt ≤ below ≤ k
		default:
			lo = pivot + 1 // pivot < hi, else k < lt+eq
		}
	}
	return 0, stats, ErrTooManyPasses
}

// SelectQuantile returns the exact φ-quantile (rank ⌊φn⌋); n is
// discovered in the first pass.
func SelectQuantile(src Source, phi float64, memory int, maxPasses int) (uint64, Stats, error) {
	if phi <= 0 || phi >= 1 {
		return 0, Stats{}, fmt.Errorf("multipass: quantile fraction %v outside (0, 1)", phi)
	}
	var n int64
	src.Scan(func(uint64) { n++ })
	if n == 0 {
		return 0, Stats{}, errors.New("multipass: empty source")
	}
	k := int64(phi * float64(n))
	if k >= n {
		k = n - 1
	}
	v, st, err := Select(src, k, memory, maxPasses)
	st.Passes++ // account the counting pass
	return v, st, err
}

func clampPhi(phi float64) float64 {
	const edge = 1e-9
	if phi < edge {
		return edge
	}
	if phi > 1-edge {
		return 1 - edge
	}
	return phi
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
