package multipass

import (
	"slices"
	"testing"

	"streamquantiles/internal/streamgen"
)

func TestSelectExact(t *testing.T) {
	const n = 200000
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, n)
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	src := SliceSource(data)

	for _, k := range []int64{0, 1, n / 4, n / 2, 3 * n / 4, n - 2, n - 1} {
		got, stats, err := Select(src, k, 4096, 20)
		if err != nil {
			t.Fatalf("k=%d: %v (stats %+v)", k, err, stats)
		}
		if got != sorted[k] {
			t.Errorf("k=%d: got %d, want %d", k, got, sorted[k])
		}
	}
}

func TestSelectMemoryPassTradeoff(t *testing.T) {
	// Less memory must still succeed, with more passes.
	const n = 100000
	data := streamgen.Generate(streamgen.MPCATLike{Seed: 2}, n)
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	src := SliceSource(data)

	big, bigStats, err := Select(src, n/2, 16384, 30)
	if err != nil {
		t.Fatal(err)
	}
	small, smallStats, err := Select(src, n/2, 512, 30)
	if err != nil {
		t.Fatal(err)
	}
	if big != sorted[n/2] || small != sorted[n/2] {
		t.Fatalf("medians %d/%d, want %d", big, small, sorted[n/2])
	}
	if smallStats.Passes < bigStats.Passes {
		t.Errorf("smaller memory used fewer passes (%d) than larger (%d)",
			smallStats.Passes, bigStats.Passes)
	}
	if bigStats.Passes > 6 {
		t.Errorf("large-memory selection took %d passes", bigStats.Passes)
	}
}

func TestSelectDuplicateHeavy(t *testing.T) {
	data := make([]uint64, 50000)
	for i := range data {
		data[i] = uint64(i % 5)
	}
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	src := SliceSource(data)
	for _, k := range []int64{0, 10000, 25000, 49999} {
		got, _, err := Select(src, k, 1024, 20)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got != sorted[k] {
			t.Errorf("k=%d: got %d, want %d", k, got, sorted[k])
		}
	}
}

func TestSelectSortedInput(t *testing.T) {
	data := make([]uint64, 100000)
	for i := range data {
		data[i] = uint64(i) * 3
	}
	src := SliceSource(data)
	got, _, err := Select(src, 77777, 2048, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77777*3 {
		t.Errorf("got %d, want %d", got, 77777*3)
	}
}

func TestSelectQuantile(t *testing.T) {
	const n = 80000
	data := streamgen.Generate(streamgen.Normal{Bits: 24, Sigma: 0.2, Seed: 3}, n)
	sorted := slices.Clone(data)
	slices.Sort(sorted)
	src := SliceSource(data)
	for _, phi := range []float64{0.01, 0.5, 0.99} {
		got, _, err := SelectQuantile(src, phi, 4096, 20)
		if err != nil {
			t.Fatalf("phi=%v: %v", phi, err)
		}
		want := sorted[int(phi*float64(n))]
		if got != want {
			t.Errorf("phi=%v: got %d, want %d", phi, got, want)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	src := SliceSource{1, 2, 3}
	if _, _, err := Select(src, 1, 8, 20); err == nil {
		t.Error("tiny memory budget accepted")
	}
	if _, _, err := Select(src, 1, 1024, 1); err == nil {
		t.Error("single-pass budget accepted")
	}
	if _, _, err := SelectQuantile(src, 1.5, 1024, 20); err == nil {
		t.Error("bad phi accepted")
	}
	if _, _, err := SelectQuantile(SliceSource{}, 0.5, 1024, 20); err == nil {
		t.Error("empty source accepted")
	}
}

func BenchmarkSelectMedian(b *testing.B) {
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<17)
	src := SliceSource(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = Select(src, 1<<16, 4096, 20)
	}
}
