package freqsketch

import (
	"testing"

	"streamquantiles/internal/xhash"
)

type codecSketch interface {
	Sketch
	MarshalBinary() ([]byte, error)
	UnmarshalBinary([]byte) error
}

func codecAll(w, d int, seed uint64) map[string]codecSketch {
	return map[string]codecSketch{
		"CountMin":    NewCountMin(w, d, seed),
		"CountSketch": NewCountSketch(w, d, seed),
		"RSS":         NewRSS(w, d, seed),
	}
}

func load(s Sketch, seed uint64, n int) {
	rng := xhash.NewSplitMix64(seed)
	for i := 0; i < n; i++ {
		s.Add(rng.Uint64n(5000), 1)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for name, s := range codecAll(256, 5, 11) {
		load(s, 12, 20000)
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		restored := codecAll(1, 1, 0)[name]
		if err := restored.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		for x := uint64(0); x < 5000; x += 13 {
			if restored.Estimate(x) != s.Estimate(x) {
				t.Fatalf("%s: estimate(%d) differs after round trip", name, x)
			}
		}
		if restored.SpaceBytes() != s.SpaceBytes() {
			t.Errorf("%s: space differs after round trip", name)
		}
	}
}

func TestCodecKindMismatchRejected(t *testing.T) {
	cm := NewCountMin(16, 3, 1)
	blob, _ := cm.MarshalBinary()
	var cs CountSketch
	if err := cs.UnmarshalBinary(blob); err == nil {
		t.Error("CountSketch accepted a CountMin encoding")
	}
	var r RSS
	if err := r.UnmarshalBinary(blob); err == nil {
		t.Error("RSS accepted a CountMin encoding")
	}
}

func TestCodecTruncationRejected(t *testing.T) {
	cs := NewCountSketch(64, 3, 2)
	load(cs, 3, 1000)
	blob, _ := cs.MarshalBinary()
	for cut := 0; cut < len(blob); cut += 11 {
		var b CountSketch
		if err := b.UnmarshalBinary(blob[:cut]); err == nil {
			t.Fatalf("accepted truncated input of %d bytes", cut)
		}
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	for name := range codecAll(128, 5, 21) {
		a := codecAll(128, 5, 21)[name]
		b := codecAll(128, 5, 21)[name]
		whole := codecAll(128, 5, 21)[name]
		load(a, 30, 10000)
		load(b, 31, 10000)
		load(whole, 30, 10000)
		load(whole, 31, 10000)
		var err error
		switch x := a.(type) {
		case *CountMin:
			err = x.Merge(b.(*CountMin))
		case *CountSketch:
			err = x.Merge(b.(*CountSketch))
		case *RSS:
			err = x.Merge(b.(*RSS))
		}
		if err != nil {
			t.Fatalf("%s: merge: %v", name, err)
		}
		for x := uint64(0); x < 5000; x += 31 {
			if a.Estimate(x) != whole.Estimate(x) {
				t.Fatalf("%s: merged estimate(%d) differs from whole-stream", name, x)
			}
		}
	}
}

func TestMergeSeedMismatchRejected(t *testing.T) {
	a := NewCountMin(64, 3, 1)
	b := NewCountMin(64, 3, 2)
	if err := a.Merge(b); err == nil {
		t.Error("CountMin merged across seeds")
	}
	c := NewCountSketch(64, 3, 1)
	d := NewCountSketch(64, 5, 1)
	if err := c.Merge(d); err == nil {
		t.Error("CountSketch merged across depths")
	}
	e := NewRSS(64, 3, 1)
	f := NewRSS(32, 3, 1)
	if err := e.Merge(f); err == nil {
		t.Error("RSS merged across widths")
	}
}
