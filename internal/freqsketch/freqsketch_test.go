package freqsketch

import (
	"math"
	"testing"

	"streamquantiles/internal/xhash"
)

// sketches under test, built per (w, d, seed).
func all(w, d int, seed uint64) map[string]Sketch {
	return map[string]Sketch{
		"CountMin":    NewCountMin(w, d, seed),
		"CountSketch": NewCountSketch(w, d, seed),
		"RSS":         NewRSS(w, d, seed),
	}
}

func TestExactOnSparseInput(t *testing.T) {
	// With few distinct elements and a wide sketch, collisions are
	// unlikely and every estimate should be near-exact.
	for name, s := range all(4096, 5, 1) {
		s.Add(10, 7)
		s.Add(20, 3)
		s.Add(10, 2)
		if got := s.Estimate(10); got != 9 {
			t.Errorf("%s: Estimate(10) = %d, want 9", name, got)
		}
		if got := s.Estimate(20); got != 3 {
			t.Errorf("%s: Estimate(20) = %d, want 3", name, got)
		}
		if got := s.Estimate(99); got > 1 || got < -1 {
			t.Errorf("%s: Estimate(absent) = %d, want ≈ 0", name, got)
		}
	}
}

func TestDeletionsCancel(t *testing.T) {
	for name, s := range all(2048, 5, 2) {
		for i := uint64(0); i < 100; i++ {
			s.Add(i, 5)
		}
		for i := uint64(0); i < 100; i++ {
			s.Add(i, -5)
		}
		for i := uint64(0); i < 100; i += 7 {
			if got := s.Estimate(i); got != 0 {
				t.Errorf("%s: residual estimate %d after full deletion", name, got)
			}
		}
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	// In the strict turnstile model min-over-rows is an upper bound.
	cm := NewCountMin(64, 5, 3)
	rng := xhash.NewSplitMix64(4)
	truth := map[uint64]int64{}
	for i := 0; i < 20000; i++ {
		x := rng.Uint64n(1000)
		cm.Add(x, 1)
		truth[x]++
	}
	for x, f := range truth {
		if got := cm.Estimate(x); got < f {
			t.Fatalf("CountMin underestimated f(%d): %d < %d", x, got, f)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// Error ≤ e·n/w with probability ≥ 1−e^−d for each element.
	const w, n = 512, 100000
	cm := NewCountMin(w, 5, 5)
	rng := xhash.NewSplitMix64(6)
	truth := map[uint64]int64{}
	for i := 0; i < n; i++ {
		x := rng.Uint64n(5000)
		cm.Add(x, 1)
		truth[x]++
	}
	bound := int64(3 * n / w)
	bad := 0
	for x, f := range truth {
		if cm.Estimate(x)-f > bound {
			bad++
		}
	}
	if bad > len(truth)/100 {
		t.Errorf("%d/%d elements exceed the CM error bound", bad, len(truth))
	}
}

func TestCountSketchUnbiased(t *testing.T) {
	// Average the estimate of one element across many seeds; it must
	// center on the true frequency (Count-Min, by contrast, is biased up).
	const w, n = 64, 20000
	const target = uint64(42)
	var sum float64
	const runs = 60
	for seed := uint64(0); seed < runs; seed++ {
		cs := NewCountSketch(w, 1, seed)
		rng := xhash.NewSplitMix64(1000)
		for i := 0; i < n; i++ {
			cs.Add(rng.Uint64n(2000), 1)
		}
		cs.Add(target, 50)
		sum += float64(cs.Estimate(target))
	}
	mean := sum / runs
	// True frequency ≈ 50 + n/2000 = 60.
	rng := xhash.NewSplitMix64(1000)
	truth := int64(50)
	for i := 0; i < n; i++ {
		if rng.Uint64n(2000) == target {
			truth++
		}
	}
	if math.Abs(mean-float64(truth)) > 40 {
		t.Errorf("CountSketch mean estimate %v too far from truth %d", mean, truth)
	}
}

func TestRSSUnbiased(t *testing.T) {
	const w, n = 64, 20000
	const target = uint64(42)
	var sum float64
	const runs = 80
	rngData := xhash.NewSplitMix64(1000)
	data := make([]uint64, n)
	for i := range data {
		data[i] = rngData.Uint64n(2000)
	}
	var truth int64 = 50
	for _, x := range data {
		if x == target {
			truth++
		}
	}
	for seed := uint64(0); seed < runs; seed++ {
		r := NewRSS(w, 1, seed)
		for _, x := range data {
			r.Add(x, 1)
		}
		r.Add(target, 50)
		sum += float64(r.Estimate(target))
	}
	mean := sum / runs
	if math.Abs(mean-float64(truth)) > 60 {
		t.Errorf("RSS mean estimate %v too far from truth %d", mean, truth)
	}
}

func TestCountSketchMedianBeatsOneRow(t *testing.T) {
	// More rows must not hurt: compare absolute error of d=1 vs d=7 on a
	// fixed workload, averaged over elements.
	const w, n = 128, 50000
	rng := xhash.NewSplitMix64(7)
	data := make([]uint64, n)
	truth := map[uint64]int64{}
	for i := range data {
		data[i] = rng.Uint64n(3000)
		truth[data[i]]++
	}
	errFor := func(d int) float64 {
		cs := NewCountSketch(w, d, 77)
		for _, x := range data {
			cs.Add(x, 1)
		}
		var sum float64
		for x, f := range truth {
			sum += math.Abs(float64(cs.Estimate(x) - f))
		}
		return sum / float64(len(truth))
	}
	e1, e7 := errFor(1), errFor(7)
	if e7 > e1 {
		t.Errorf("median over 7 rows (err %v) worse than single row (err %v)", e7, e1)
	}
}

func TestVarianceEstimatePositiveAndScales(t *testing.T) {
	for name, s := range all(256, 3, 8) {
		if v := s.VarianceEstimate(); v != 0 {
			t.Errorf("%s: empty sketch variance %v, want 0", name, v)
		}
		for i := uint64(0); i < 1000; i++ {
			s.Add(i, 10)
		}
		if v := s.VarianceEstimate(); v <= 0 {
			t.Errorf("%s: loaded sketch variance %v, want > 0", name, v)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	for name := range all(64, 3, 9) {
		a := all(64, 3, 9)[name]
		b := all(64, 3, 9)[name]
		for i := uint64(0); i < 1000; i++ {
			a.Add(i%100, 1)
			b.Add(i%100, 1)
		}
		for i := uint64(0); i < 100; i++ {
			if a.Estimate(i) != b.Estimate(i) {
				t.Errorf("%s: same seed, different estimates", name)
				break
			}
		}
	}
}

func TestSpaceBytesScalesWithDims(t *testing.T) {
	for name := range all(64, 3, 1) {
		small := all(64, 3, 1)[name]
		big := all(256, 7, 1)[name]
		if small.SpaceBytes() >= big.SpaceBytes() {
			t.Errorf("%s: space does not grow with dimensions", name)
		}
	}
}

func TestBadDimsPanic(t *testing.T) {
	for _, c := range [][2]int{{0, 3}, {3, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v did not panic", c)
				}
			}()
			NewCountMin(c[0], c[1], 1)
		}()
	}
}

func TestMedianInPlace(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2}, // even: lower-mid average (2+3)/2
		{[]int64{9, 9, 9, 1, 1}, 9},
		{[]int64{-5, 0, 5}, 0},
	}
	for _, c := range cases {
		in := append([]int64{}, c.in...)
		if got := medianInPlace(in); got != c.want {
			t.Errorf("median(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm := NewCountMin(1024, 7, 1)
	for i := 0; i < b.N; i++ {
		cm.Add(uint64(i), 1)
	}
}

func BenchmarkCountSketchAdd(b *testing.B) {
	cs := NewCountSketch(1024, 7, 1)
	for i := 0; i < b.N; i++ {
		cs.Add(uint64(i), 1)
	}
}

func BenchmarkCountSketchEstimate(b *testing.B) {
	cs := NewCountSketch(1024, 7, 1)
	for i := 0; i < 100000; i++ {
		cs.Add(uint64(i%1000), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cs.Estimate(uint64(i % 1000))
	}
}

func BenchmarkCountSketchAddBatch(b *testing.B) {
	cs := NewCountSketch(980, 7, 42)
	xs := make([]uint64, 4096)
	rng := xhash.NewSplitMix64(1)
	for i := range xs {
		xs[i] = rng.Next() >> 40
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.AddBatch(xs, 1)
	}
}
