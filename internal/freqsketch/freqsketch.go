// Package freqsketch implements the turnstile frequency-estimation
// sketches that instantiate the dyadic quantile algorithms of the paper's
// §3: the Count-Min sketch (Cormode & Muthukrishnan 2005), the
// Count-Sketch (Charikar, Chen & Farach-Colton 2002), and — for
// completeness — the random subset-sum sketch (Gilbert et al. 2002),
// which the paper implements but excludes from the headline plots because
// it is dominated by the other two.
//
// All sketches are linear: they support Add(x, ±1) in any order and their
// estimates depend only on the current frequency vector, which is why the
// dyadic quantile algorithms built on them handle deletions for free.
package freqsketch

import (
	"fmt"

	"streamquantiles/internal/core"
	"streamquantiles/internal/xhash"
)

// Sketch is a linear frequency estimator over a fixed universe.
type Sketch interface {
	// Add applies a signed frequency update to element x.
	Add(x uint64, delta int64)
	// AddBatch applies the same signed update to every element of xs,
	// equivalent to calling Add per element but row-major: each row's
	// hash coefficients load once per chunk and its counter scatter
	// stays within one row at a time (see batch.go).
	AddBatch(xs []uint64, delta int64)
	// Estimate returns the estimated current frequency of x.
	Estimate(x uint64) int64
	// EstimateBatch writes the estimated frequency of every element of
	// xs into out (len(out) must equal len(xs)), row-major: each row's
	// hash coefficients load once for the whole batch. Results are
	// identical to calling Estimate per element. Like Estimate it is
	// safe for concurrent use with other estimate calls.
	EstimateBatch(xs []uint64, out []int64)
	// VarianceEstimate returns an (empirical) estimate of the variance of
	// Estimate for a typical element, used by the OLS post-processing.
	VarianceEstimate() float64
	// SpaceBytes reports the size under the 4-byte-word convention.
	SpaceBytes() int64
}

func checkDims(w, d int) {
	if w < 1 || d < 1 {
		panic(fmt.Sprintf("freqsketch: invalid dimensions w=%d d=%d", w, d))
	}
}

// CountMin is the Count-Min sketch: d rows of w counters with pairwise
// independent row hashes. Estimates are biased upward in the strict
// turnstile model (the min over rows never underestimates), with error at
// most εn with probability 1−δ for w = O(1/ε), d = O(log 1/δ).
type CountMin struct {
	w, d   int
	seed   uint64
	rows   [][]int64
	hashes []*xhash.Bucket
}

// NewCountMin builds a w×d Count-Min sketch seeded deterministically.
func NewCountMin(w, d int, seed uint64) *CountMin {
	checkDims(w, d)
	rng := xhash.NewSplitMix64(seed)
	cm := &CountMin{w: w, d: d, seed: seed}
	for i := 0; i < d; i++ {
		cm.rows = append(cm.rows, make([]int64, w))
		cm.hashes = append(cm.hashes, xhash.NewBucket(rng, 2, w))
	}
	return cm
}

// Width returns w.
func (cm *CountMin) Width() int { return cm.w }

// Depth returns d.
func (cm *CountMin) Depth() int { return cm.d }

// Add implements Sketch.
func (cm *CountMin) Add(x uint64, delta int64) {
	for i := 0; i < cm.d; i++ {
		cm.rows[i][cm.hashes[i].Hash(x)] += delta
	}
}

// Estimate implements Sketch: the minimum over rows.
func (cm *CountMin) Estimate(x uint64) int64 {
	est := cm.rows[0][cm.hashes[0].Hash(x)]
	for i := 1; i < cm.d; i++ {
		if v := cm.rows[i][cm.hashes[i].Hash(x)]; v < est {
			est = v
		}
	}
	return est
}

// EstimateBatch implements Sketch: the row loop is hoisted outside the
// element loop, so each row's hash coefficients and counter array stay
// hot across the whole batch.
func (cm *CountMin) EstimateBatch(xs []uint64, out []int64) {
	checkBatchLen(xs, out)
	row, h := cm.rows[0], cm.hashes[0]
	for j, x := range xs {
		out[j] = row[h.Hash(x)]
	}
	for i := 1; i < cm.d; i++ {
		row, h = cm.rows[i], cm.hashes[i]
		for j, x := range xs {
			if v := row[h.Hash(x)]; v < out[j] {
				out[j] = v
			}
		}
	}
}

// VarianceEstimate implements Sketch. The Count-Min estimator's noise for
// a typical element is the colliding mass n/w; its second moment is
// approximated, like the Count-Sketch's, by the row F₂ divided by w.
func (cm *CountMin) VarianceEstimate() float64 {
	return rowF2(cm.rows[0]) / float64(cm.w)
}

// SpaceBytes implements Sketch: the counter array plus hash coefficients.
func (cm *CountMin) SpaceBytes() int64 {
	words := int64(cm.w)*int64(cm.d) + 2
	for _, h := range cm.hashes {
		words += h.SpaceWords()
	}
	return words * core.WordBytes
}

// CountSketch is the Count-Sketch: d rows of w counters, a pairwise
// independent bucket hash and a 4-wise independent ±1 sign hash per row;
// the estimate is the median over rows of g_i(x)·C[i, h_i(x)]. Unlike
// Count-Min the estimator is unbiased — the property the paper's DCS
// analysis exploits, since summing log u unbiased estimators lets errors
// cancel (§3.1).
type CountSketch struct {
	w, d  int
	seed  uint64
	rows  [][]int64
	polys []*xhash.Poly // one 4-wise polynomial per row supplies bucket and sign
}

// NewCountSketch builds a w×d Count-Sketch seeded deterministically.
// d should be odd so the median is well defined on row estimates.
//
// Each row draws a single 4-wise independent polynomial; the low bit of
// its value is the ±1 sign and the remaining bits select the bucket.
// The (bucket, sign) pairs of any four distinct elements are jointly
// independent and uniform (up to O(2^−61) bias), which is what the
// Count-Sketch analysis needs, at half the hashing cost of separate
// bucket and sign functions.
func NewCountSketch(w, d int, seed uint64) *CountSketch {
	checkDims(w, d)
	rng := xhash.NewSplitMix64(seed)
	cs := &CountSketch{w: w, d: d, seed: seed}
	for i := 0; i < d; i++ {
		cs.rows = append(cs.rows, make([]int64, w))
		cs.polys = append(cs.polys, xhash.NewPoly(rng, 4))
	}
	return cs
}

// Width returns w.
func (cs *CountSketch) Width() int { return cs.w }

// Depth returns d.
func (cs *CountSketch) Depth() int { return cs.d }

// rowHash returns the bucket index and sign for x in row i.
func (cs *CountSketch) rowHash(i int, x uint64) (bucket int, sign int64) {
	v := cs.polys[i].Eval(x)
	sign = 1 - 2*int64(v&1) // low bit → ±1
	bucket = int((v >> 1) % uint64(cs.w))
	return bucket, sign
}

// Add implements Sketch.
func (cs *CountSketch) Add(x uint64, delta int64) {
	for i := 0; i < cs.d; i++ {
		b, g := cs.rowHash(i, x)
		cs.rows[i][b] += g * delta
	}
}

// Estimate implements Sketch: the median over rows of the signed counter.
// The median buffer lives on the stack (d never exceeds a few dozen in
// any configuration), so concurrent readers never share mutable state —
// the Safe wrappers issue queries under a shared lock.
func (cs *CountSketch) Estimate(x uint64) int64 {
	var buf [maxStackDepth]int64
	scratch := scratchFor(buf[:], cs.d)
	for i := 0; i < cs.d; i++ {
		b, g := cs.rowHash(i, x)
		scratch[i] = g * cs.rows[i][b]
	}
	return medianInPlace(scratch)
}

// EstimateBatch implements Sketch: rows are processed row-major into a
// d×len(xs) matrix (one polynomial's coefficients hot per row), then one
// median per element.
func (cs *CountSketch) EstimateBatch(xs []uint64, out []int64) {
	checkBatchLen(xs, out)
	d := cs.d
	scratch := make([]int64, d*len(xs))
	w := uint64(cs.w)
	for i := 0; i < d; i++ {
		row, p := cs.rows[i], cs.polys[i]
		for j, x := range xs {
			v := p.Eval(x)
			g := 1 - 2*int64(v&1)
			scratch[j*d+i] = g * row[(v>>1)%w]
		}
	}
	for j := range xs {
		out[j] = medianInPlace(scratch[j*d : (j+1)*d])
	}
}

// VarianceEstimate implements Sketch: the classic AMS observation that
// the sum of squared counters of one row estimates F₂, and a single-row
// Count-Sketch estimator has variance ≈ F₂/w. Using one row is the
// paper's recommendation (§3.2.4): the algorithm is insensitive to a
// common scaling of all variances.
func (cs *CountSketch) VarianceEstimate() float64 {
	return rowF2(cs.rows[0]) / float64(cs.w)
}

// SpaceBytes implements Sketch.
func (cs *CountSketch) SpaceBytes() int64 {
	words := int64(cs.w)*int64(cs.d) + 2
	for _, p := range cs.polys {
		words += p.SpaceWords()
	}
	return words * core.WordBytes
}

// RSS is the random subset-sum sketch of Gilbert et al. (VLDB 2002),
// realized in its paired-bucket form: each row hashes elements into 2w
// buckets by a pairwise independent hash; the buckets pair up into w
// random subset/complement pairs, and for an element landing in bucket h,
// C[h] − C[h^1] is an unbiased estimate of its frequency (the subset-sum
// minus the complement's sum cancels everything but x in expectation).
// The sketch takes the median across d rows. Its variance is Θ(F₂/w) per
// pair rather than per counter, needing w = O(1/ε²) for εn accuracy —
// which is why the paper implements it but drops it from the comparison.
type RSS struct {
	w, d   int
	seed   uint64
	rows   [][]int64 // each row has 2w buckets
	hashes []*xhash.Bucket
}

// NewRSS builds a random subset-sum sketch with w subset pairs per row
// and d rows.
func NewRSS(w, d int, seed uint64) *RSS {
	checkDims(w, d)
	rng := xhash.NewSplitMix64(seed)
	r := &RSS{w: w, d: d, seed: seed}
	for i := 0; i < d; i++ {
		r.rows = append(r.rows, make([]int64, 2*w))
		r.hashes = append(r.hashes, xhash.NewBucket(rng, 2, 2*w))
	}
	return r
}

// Add implements Sketch.
func (r *RSS) Add(x uint64, delta int64) {
	for i := 0; i < r.d; i++ {
		r.rows[i][r.hashes[i].Hash(x)] += delta
	}
}

// Estimate implements Sketch. As for CountSketch, the median buffer is
// stack-local so concurrent readers share no mutable state.
func (r *RSS) Estimate(x uint64) int64 {
	var buf [maxStackDepth]int64
	scratch := scratchFor(buf[:], r.d)
	for i := 0; i < r.d; i++ {
		h := r.hashes[i].Hash(x)
		scratch[i] = r.rows[i][h] - r.rows[i][h^1]
	}
	return medianInPlace(scratch)
}

// EstimateBatch implements Sketch.
func (r *RSS) EstimateBatch(xs []uint64, out []int64) {
	checkBatchLen(xs, out)
	d := r.d
	scratch := make([]int64, d*len(xs))
	for i := 0; i < d; i++ {
		row, h := r.rows[i], r.hashes[i]
		for j, x := range xs {
			b := h.Hash(x)
			scratch[j*d+i] = row[b] - row[b^1]
		}
	}
	for j := range xs {
		out[j] = medianInPlace(scratch[j*d : (j+1)*d])
	}
}

// VarianceEstimate implements Sketch.
func (r *RSS) VarianceEstimate() float64 {
	return rowF2(r.rows[0]) / float64(r.w)
}

// SpaceBytes implements Sketch.
func (r *RSS) SpaceBytes() int64 {
	words := 2*int64(r.w)*int64(r.d) + 4
	for _, m := range r.hashes {
		words += m.SpaceWords()
	}
	return words * core.WordBytes
}

// maxStackDepth is the largest d served by the stack-resident median
// buffer in Estimate; deeper sketches (never used by the experiments)
// fall back to an allocation.
const maxStackDepth = 32

// scratchFor returns a length-d median buffer backed by buf when it
// fits.
func scratchFor(buf []int64, d int) []int64 {
	if d <= len(buf) {
		return buf[:d]
	}
	return make([]int64, d)
}

// checkBatchLen validates the out buffer of an EstimateBatch call.
func checkBatchLen(xs []uint64, out []int64) {
	if len(out) != len(xs) {
		panic(fmt.Sprintf("freqsketch: EstimateBatch out length %d != batch length %d", len(out), len(xs)))
	}
}

// rowF2 returns the sum of squared counters of one row — the AMS
// estimator of the second frequency moment.
func rowF2(row []int64) float64 {
	var s float64
	for _, c := range row {
		f := float64(c)
		s += f * f
	}
	return s
}

// medianInPlace returns the median of xs, partially reordering it.
func medianInPlace(xs []int64) int64 {
	// Insertion-select for the tiny d used here (≤ 13 in all experiments).
	n := len(xs)
	for i := 0; i <= n/2; i++ {
		min := i
		for j := i + 1; j < n; j++ {
			if xs[j] < xs[min] {
				min = j
			}
		}
		xs[i], xs[min] = xs[min], xs[i]
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
