// Batched sketch updates. Add(x, δ) walks d rows per element, so a
// stream of per-item calls interleaves d unrelated hash evaluations and
// d scattered counter touches across rows that together far exceed the
// cache. AddBatch flips the loop nest to row-major over fixed-size
// chunks: for each row, hash a whole chunk through the row's polynomial
// (coefficients hoisted by xhash's EvalSlice) and then scatter into that
// single row, which for the widths used by the dyadic summaries often
// fits a near cache level. The chunk buffer lives on the stack — the
// sketches hold no batch-sized scratch, so SpaceBytes stays exactly the
// paper's accounting.
package freqsketch

import "streamquantiles/internal/xhash"

// batchChunk is the number of elements hashed per row pass. 4096 words
// is 32 KiB of stack — large enough to amortize the per-row setup,
// small enough to leave the row's counters cache-resident.
const batchChunk = 4096

// AddBatch implements Sketch.
func (cm *CountMin) AddBatch(xs []uint64, delta int64) {
	var hv [batchChunk]uint64
	for len(xs) > 0 {
		m := len(xs)
		if m > batchChunk {
			m = batchChunk
		}
		for i := 0; i < cm.d; i++ {
			cm.hashes[i].HashSlice(hv[:m], xs[:m])
			row := cm.rows[i]
			for _, b := range hv[:m] {
				row[b] += delta
			}
		}
		xs = xs[m:]
	}
}

// AddBatch implements Sketch.
func (cs *CountSketch) AddBatch(xs []uint64, delta int64) {
	var hv [batchChunk]uint64
	w := uint64(cs.w)
	rec := xhash.Reciprocal(w)
	for len(xs) > 0 {
		m := len(xs)
		if m > batchChunk {
			m = batchChunk
		}
		for i := 0; i < cs.d; i++ {
			cs.polys[i].EvalSlice(hv[:m], xs[:m])
			row := cs.rows[i]
			for _, v := range hv[:m] {
				g := 1 - 2*int64(v&1)
				row[xhash.ReduceMod(v>>1, w, rec)] += g * delta
			}
		}
		xs = xs[m:]
	}
}

// AddBatch implements Sketch.
func (r *RSS) AddBatch(xs []uint64, delta int64) {
	var hv [batchChunk]uint64
	for len(xs) > 0 {
		m := len(xs)
		if m > batchChunk {
			m = batchChunk
		}
		for i := 0; i < r.d; i++ {
			r.hashes[i].HashSlice(hv[:m], xs[:m])
			row := r.rows[i]
			for _, b := range hv[:m] {
				row[b] += delta
			}
		}
		xs = xs[m:]
	}
}
