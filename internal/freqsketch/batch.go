// Batched sketch updates. Add(x, δ) walks d rows per element, so a
// stream of per-item calls interleaves d unrelated hash evaluations and
// d scattered counter touches across rows that together far exceed the
// cache. AddBatch flips the loop nest to row-major over fixed-size
// chunks and runs a fused kernel per row pair: the input reduction into
// GF(2^61 − 1) happens once per chunk (shared by every row), the paired
// rows' Horner chains interleave (two independent 64×64 multiply chains
// in flight per element), and the bucket reduction plus counter scatter
// happen in the same loop — no intermediate hash-value buffer is
// written or re-read. Counter values are byte-identical to per-item
// Add: the kernels evaluate the same polynomials over the same field
// (see xhash.LazyMulFold for the lazy-reduction bound) and the sketches
// are linear. The chunk buffer lives on the stack — the sketches hold
// no batch-sized scratch, so SpaceBytes stays exactly the paper's
// accounting.
package freqsketch

import "streamquantiles/internal/xhash"

// batchChunk is the number of elements reduced per chunk pass. One
// 4096-word buffer is 32 KiB of stack — large enough to amortize the
// per-row coefficient setup, small enough to stay cache-resident across
// the d row passes that reuse it.
const batchChunk = 4096

// signedDelta applies the Count-Sketch sign convention branch-free:
// the low bit of the hash value selects ±delta via a two's-complement
// mask, the same value as (1 − 2·(v&1))·delta.
func signedDelta(v uint64, delta int64) int64 {
	m := -int64(v & 1)
	return (delta ^ m) - m
}

// reduceVals fills vs with the canonical field representatives of xs,
// hoisting the per-element mod-p reduction out of the per-row kernels
// (every row of every kernel evaluates at the same points).
func reduceVals(vs, xs []uint64) {
	for i, x := range xs {
		vs[i] = xhash.Mod61(x)
	}
}

// coefs4 splits a degree-4 coefficient slice into registers; ok is
// false for any other degree (the kernels then fall back to the generic
// slice path).
func coefs4(p *xhash.Poly) (c0, c1, c2, c3 uint64, ok bool) {
	c := p.Coefs()
	if len(c) != 4 {
		return 0, 0, 0, 0, false
	}
	return c[0], c[1], c[2], c[3], true
}

// coefs2 is coefs4's degree-2 (pairwise) counterpart.
func coefs2(p *xhash.Poly) (c0, c1 uint64, ok bool) {
	c := p.Coefs()
	if len(c) != 2 {
		return 0, 0, false
	}
	return c[0], c[1], true
}

// addPairBuckets scatters delta into two rows through two degree-2
// bucket hashes of shared width in one pass over the pre-reduced vs,
// two elements per iteration (the pairwise chains are one multiply
// deep, so four chains in flight keep the multiplier busy). Returns
// false (touching nothing) if either polynomial has a different degree.
func addPairBuckets(p, q *xhash.Poly, row0, row1 []int64, w, rec uint64, vs []uint64, delta int64) bool {
	a0, a1, ok := coefs2(p)
	if !ok {
		return false
	}
	b0, b1, ok := coefs2(q)
	if !ok {
		return false
	}
	i := 0
	for ; i+1 < len(vs); i += 2 {
		v0, v1 := vs[i], vs[i+1]
		h00 := xhash.Mod61(xhash.LazyMulFold(a1, v0) + a0)
		h10 := xhash.Mod61(xhash.LazyMulFold(b1, v0) + b0)
		h01 := xhash.Mod61(xhash.LazyMulFold(a1, v1) + a0)
		h11 := xhash.Mod61(xhash.LazyMulFold(b1, v1) + b0)
		row0[xhash.ReduceMod(h00, w, rec)] += delta
		row1[xhash.ReduceMod(h10, w, rec)] += delta
		row0[xhash.ReduceMod(h01, w, rec)] += delta
		row1[xhash.ReduceMod(h11, w, rec)] += delta
	}
	for ; i < len(vs); i++ {
		v := vs[i]
		h0 := xhash.Mod61(xhash.LazyMulFold(a1, v) + a0)
		h1 := xhash.Mod61(xhash.LazyMulFold(b1, v) + b0)
		row0[xhash.ReduceMod(h0, w, rec)] += delta
		row1[xhash.ReduceMod(h1, w, rec)] += delta
	}
	return true
}

// addOneBucket is addPairBuckets' odd-row tail: one row, four elements
// per iteration.
func addOneBucket(p *xhash.Poly, row []int64, w, rec uint64, vs []uint64, delta int64) bool {
	c0, c1, ok := coefs2(p)
	if !ok {
		return false
	}
	i := 0
	for ; i+3 < len(vs); i += 4 {
		h0 := xhash.Mod61(xhash.LazyMulFold(c1, vs[i]) + c0)
		h1 := xhash.Mod61(xhash.LazyMulFold(c1, vs[i+1]) + c0)
		h2 := xhash.Mod61(xhash.LazyMulFold(c1, vs[i+2]) + c0)
		h3 := xhash.Mod61(xhash.LazyMulFold(c1, vs[i+3]) + c0)
		row[xhash.ReduceMod(h0, w, rec)] += delta
		row[xhash.ReduceMod(h1, w, rec)] += delta
		row[xhash.ReduceMod(h2, w, rec)] += delta
		row[xhash.ReduceMod(h3, w, rec)] += delta
	}
	for ; i < len(vs); i++ {
		h := xhash.Mod61(xhash.LazyMulFold(c1, vs[i]) + c0)
		row[xhash.ReduceMod(h, w, rec)] += delta
	}
	return true
}

// addPairSigned is the Count-Sketch pair kernel: the hash value's low
// bit signs delta, the rest selects the bucket.
func addPairSigned(p, q *xhash.Poly, row0, row1 []int64, w, rec uint64, vs []uint64, delta int64) bool {
	a0, a1, a2, a3, ok := coefs4(p)
	if !ok {
		return false
	}
	b0, b1, b2, b3, ok := coefs4(q)
	if !ok {
		return false
	}
	i := 0
	for ; i+1 < len(vs); i += 2 {
		v0, v1 := vs[i], vs[i+1]
		s0 := xhash.LazyMulFold(a3, v0) + a2
		t0 := xhash.LazyMulFold(b3, v0) + b2
		s1 := xhash.LazyMulFold(a3, v1) + a2
		t1 := xhash.LazyMulFold(b3, v1) + b2
		s0 = xhash.LazyMulFold(s0, v0) + a1
		t0 = xhash.LazyMulFold(t0, v0) + b1
		s1 = xhash.LazyMulFold(s1, v1) + a1
		t1 = xhash.LazyMulFold(t1, v1) + b1
		h00 := xhash.Mod61(xhash.LazyMulFold(s0, v0) + a0)
		h10 := xhash.Mod61(xhash.LazyMulFold(t0, v0) + b0)
		h01 := xhash.Mod61(xhash.LazyMulFold(s1, v1) + a0)
		h11 := xhash.Mod61(xhash.LazyMulFold(t1, v1) + b0)
		row0[xhash.ReduceMod(h00>>1, w, rec)] += signedDelta(h00, delta)
		row1[xhash.ReduceMod(h10>>1, w, rec)] += signedDelta(h10, delta)
		row0[xhash.ReduceMod(h01>>1, w, rec)] += signedDelta(h01, delta)
		row1[xhash.ReduceMod(h11>>1, w, rec)] += signedDelta(h11, delta)
	}
	for ; i < len(vs); i++ {
		v := vs[i]
		s := xhash.LazyMulFold(a3, v) + a2
		t := xhash.LazyMulFold(b3, v) + b2
		s = xhash.LazyMulFold(s, v) + a1
		t = xhash.LazyMulFold(t, v) + b1
		h0 := xhash.Mod61(xhash.LazyMulFold(s, v) + a0)
		h1 := xhash.Mod61(xhash.LazyMulFold(t, v) + b0)
		row0[xhash.ReduceMod(h0>>1, w, rec)] += signedDelta(h0, delta)
		row1[xhash.ReduceMod(h1>>1, w, rec)] += signedDelta(h1, delta)
	}
	return true
}

// addOneSigned is addPairSigned's odd-row tail, two elements per
// iteration.
func addOneSigned(p *xhash.Poly, row []int64, w, rec uint64, vs []uint64, delta int64) bool {
	c0, c1, c2, c3, ok := coefs4(p)
	if !ok {
		return false
	}
	i := 0
	for ; i+1 < len(vs); i += 2 {
		v0, v1 := vs[i], vs[i+1]
		s := xhash.LazyMulFold(c3, v0) + c2
		t := xhash.LazyMulFold(c3, v1) + c2
		s = xhash.LazyMulFold(s, v0) + c1
		t = xhash.LazyMulFold(t, v1) + c1
		h0 := xhash.Mod61(xhash.LazyMulFold(s, v0) + c0)
		h1 := xhash.Mod61(xhash.LazyMulFold(t, v1) + c0)
		row[xhash.ReduceMod(h0>>1, w, rec)] += signedDelta(h0, delta)
		row[xhash.ReduceMod(h1>>1, w, rec)] += signedDelta(h1, delta)
	}
	for ; i < len(vs); i++ {
		v := vs[i]
		s := xhash.LazyMulFold(c3, v) + c2
		s = xhash.LazyMulFold(s, v) + c1
		h := xhash.Mod61(xhash.LazyMulFold(s, v) + c0)
		row[xhash.ReduceMod(h>>1, w, rec)] += signedDelta(h, delta)
	}
	return true
}

// bucketRows runs the bucket-hash scatter for all d rows of a
// CountMin-shaped sketch (also RSS) over one pre-reduced chunk, taking
// rows two at a time; hashes[i] must bucket into [0, len(rows[i])).
func bucketRows(hashes []*xhash.Bucket, rows [][]int64, vs []uint64, delta int64) {
	d := len(hashes)
	w := uint64(hashes[0].Width())
	rec := xhash.Reciprocal(w)
	i := 0
	for ; i+1 < d; i += 2 {
		if !addPairBuckets(hashes[i].HashPoly(), hashes[i+1].HashPoly(), rows[i], rows[i+1], w, rec, vs, delta) {
			hashSliceFallback(hashes[i], rows[i], vs, delta)
			hashSliceFallback(hashes[i+1], rows[i+1], vs, delta)
		}
	}
	if i < d {
		if !addOneBucket(hashes[i].HashPoly(), rows[i], w, rec, vs, delta) {
			hashSliceFallback(hashes[i], rows[i], vs, delta)
		}
	}
}

// hashSliceFallback covers non-degree-4 bucket polynomials (not built
// by the sketch constructors, but kept for robustness): per-element
// Hash on the already-reduced values — mod61 is idempotent, so the
// buckets match the fused kernels'.
func hashSliceFallback(h *xhash.Bucket, row []int64, vs []uint64, delta int64) {
	for _, v := range vs {
		row[h.Hash(v)] += delta
	}
}

// AddBatch implements Sketch.
func (cm *CountMin) AddBatch(xs []uint64, delta int64) {
	var vbuf [batchChunk]uint64
	for len(xs) > 0 {
		m := len(xs)
		if m > batchChunk {
			m = batchChunk
		}
		reduceVals(vbuf[:m], xs[:m])
		bucketRows(cm.hashes, cm.rows, vbuf[:m], delta)
		xs = xs[m:]
	}
}

// AddBatch implements Sketch.
func (cs *CountSketch) AddBatch(xs []uint64, delta int64) {
	var vbuf [batchChunk]uint64
	w := uint64(cs.w)
	rec := xhash.Reciprocal(w)
	for len(xs) > 0 {
		m := len(xs)
		if m > batchChunk {
			m = batchChunk
		}
		vs := vbuf[:m]
		reduceVals(vs, xs[:m])
		i := 0
		for ; i+1 < cs.d; i += 2 {
			if !addPairSigned(cs.polys[i], cs.polys[i+1], cs.rows[i], cs.rows[i+1], w, rec, vs, delta) {
				signedFallback(cs.polys[i], cs.rows[i], w, rec, vs, delta)
				signedFallback(cs.polys[i+1], cs.rows[i+1], w, rec, vs, delta)
			}
		}
		if i < cs.d {
			if !addOneSigned(cs.polys[i], cs.rows[i], w, rec, vs, delta) {
				signedFallback(cs.polys[i], cs.rows[i], w, rec, vs, delta)
			}
		}
		xs = xs[m:]
	}
}

// signedFallback covers non-degree-4 Count-Sketch polynomials.
func signedFallback(p *xhash.Poly, row []int64, w, rec uint64, vs []uint64, delta int64) {
	for _, v := range vs {
		h := p.Eval(v)
		row[xhash.ReduceMod(h>>1, w, rec)] += signedDelta(h, delta)
	}
}

// AddBatch implements Sketch.
func (r *RSS) AddBatch(xs []uint64, delta int64) {
	var vbuf [batchChunk]uint64
	for len(xs) > 0 {
		m := len(xs)
		if m > batchChunk {
			m = batchChunk
		}
		reduceVals(vbuf[:m], xs[:m])
		bucketRows(r.hashes, r.rows, vbuf[:m], delta)
		xs = xs[m:]
	}
}
