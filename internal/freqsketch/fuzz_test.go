package freqsketch

import (
	"errors"
	"testing"

	"streamquantiles/internal/core"
)

// FuzzDecode feeds mutated valid encodings to the three frequency-sketch
// decoders — the level sketches under every dyadic summary, so a decode
// weakness here is reachable from any dyadic checkpoint. Corrupt input
// must yield an ErrCorrupt-wrapped error, never a panic; input that
// still decodes must re-encode cleanly. `go test` runs the seed corpus
// (the CI pass); `go test -fuzz=FuzzDecode` explores further.
func FuzzDecode(f *testing.F) {
	for _, s := range codecAll(64, 4, 7) {
		for i := uint64(0); i < 500; i++ {
			s.Add(i%97, int64(i%5)-2)
		}
		blob, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob, uint16(0), byte(0), uint16(len(blob)))              // pristine
		f.Add(blob, uint16(len(blob)/2), byte(0x80), uint16(len(blob))) // counter bit flip
		f.Add(blob, uint16(9), byte(0xFF), uint16(len(blob)))           // mangled dimensions
		f.Add(blob, uint16(0), byte(0), uint16(len(blob)/2))            // truncation
	}
	f.Fuzz(func(t *testing.T, raw []byte, pos uint16, mask byte, cut uint16) {
		mut := append([]byte(nil), raw...)
		if int(cut) < len(mut) {
			mut = mut[:cut]
		}
		if len(mut) > 0 {
			mut[int(pos)%len(mut)] ^= mask
		}
		targets := map[string]interface {
			MarshalBinary() ([]byte, error)
			UnmarshalBinary([]byte) error
		}{
			"CountMin":    &CountMin{},
			"CountSketch": &CountSketch{},
			"RSS":         &RSS{},
		}
		for name, target := range targets {
			err := target.UnmarshalBinary(mut)
			if err != nil {
				if !errors.Is(err, core.ErrCorrupt) {
					t.Fatalf("%s: decode error does not wrap ErrCorrupt: %v", name, err)
				}
				continue
			}
			if _, err := target.MarshalBinary(); err != nil {
				t.Fatalf("%s: re-marshal after successful decode: %v", name, err)
			}
		}
	})
}
