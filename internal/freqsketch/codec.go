package freqsketch

import (
	"fmt"

	"streamquantiles/internal/core"
)

// The sketches are linear, so two instances built with the same
// dimensions and seed (hence identical hash functions) merge by adding
// their counter arrays — the mergeability that underpins distributed
// turnstile summaries. They serialize as (version, w, d, seed, rows):
// hash functions are reconstructed from the seed, never stored.

const (
	codecCountMin    = 0x01
	codecCountSketch = 0x02
	codecRSS         = 0x03
	codecVersion     = 1
)

func marshalCommon(dst []byte, kind byte, w, d int, seed uint64, rows [][]int64) []byte {
	e := core.EncoderFrom(dst)
	e.U64(codecVersion)
	e.U64(uint64(kind))
	e.U64(uint64(w))
	e.U64(uint64(d))
	e.U64(seed)
	for _, row := range rows {
		e.I64s(row)
	}
	return e.Bytes()
}

func unmarshalCommon(kind byte, data []byte) (w, d int, seed uint64, rows [][]int64, err error) {
	dec := core.NewDecoder(data)
	if v := dec.U64(); v != codecVersion && dec.Err() == nil {
		return 0, 0, 0, nil, core.Corruptf("freqsketch: unsupported encoding version %d", v)
	}
	if k := dec.U64(); k != uint64(kind) && dec.Err() == nil {
		return 0, 0, 0, nil, core.Corruptf("freqsketch: encoding is for sketch kind %d, want %d", k, kind)
	}
	w = int(dec.U64())
	d = int(dec.U64())
	seed = dec.U64()
	if dec.Err() == nil && (w < 1 || d < 1 || w > 1<<28 || d > 1<<10) {
		return 0, 0, 0, nil, core.Corruptf("freqsketch: implausible dimensions w=%d d=%d", w, d)
	}
	for i := 0; i < d && dec.Err() == nil; i++ {
		rows = append(rows, dec.I64s())
	}
	if err := dec.Err(); err != nil {
		return 0, 0, 0, nil, err
	}
	if dec.Remaining() != 0 {
		return 0, 0, 0, nil, core.Corruptf("freqsketch: %d trailing bytes", dec.Remaining())
	}
	return w, d, seed, rows, nil
}

func checkRows(rows [][]int64, want int) error {
	for i, row := range rows {
		if len(row) != want {
			return core.Corruptf("freqsketch: row %d has %d counters, want %d", i, len(row), want)
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (cm *CountMin) MarshalBinary() ([]byte, error) { return cm.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler: the same bytes as
// MarshalBinary, appended onto dst so pooled buffers can be reused.
func (cm *CountMin) AppendBinary(dst []byte) ([]byte, error) {
	return marshalCommon(dst, codecCountMin, cm.w, cm.d, cm.seed, cm.rows), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state.
func (cm *CountMin) UnmarshalBinary(data []byte) error {
	w, d, seed, rows, err := unmarshalCommon(codecCountMin, data)
	if err != nil {
		return err
	}
	if err := checkRows(rows, w); err != nil {
		return err
	}
	*cm = *NewCountMin(w, d, seed)
	for i := range rows {
		copy(cm.rows[i], rows[i])
	}
	return nil
}

// Merge adds other's counters into cm. Both sketches must share
// dimensions and seed (identical hash functions).
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.w != other.w || cm.d != other.d || cm.seed != other.seed {
		return fmt.Errorf("freqsketch: cannot merge CountMin(w=%d,d=%d,seed=%d) with (w=%d,d=%d,seed=%d)",
			cm.w, cm.d, cm.seed, other.w, other.d, other.seed)
	}
	for i := range cm.rows {
		for j := range cm.rows[i] {
			cm.rows[i][j] += other.rows[i][j]
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (cs *CountSketch) MarshalBinary() ([]byte, error) { return cs.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler.
func (cs *CountSketch) AppendBinary(dst []byte) ([]byte, error) {
	return marshalCommon(dst, codecCountSketch, cs.w, cs.d, cs.seed, cs.rows), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (cs *CountSketch) UnmarshalBinary(data []byte) error {
	w, d, seed, rows, err := unmarshalCommon(codecCountSketch, data)
	if err != nil {
		return err
	}
	if err := checkRows(rows, w); err != nil {
		return err
	}
	*cs = *NewCountSketch(w, d, seed)
	for i := range rows {
		copy(cs.rows[i], rows[i])
	}
	return nil
}

// Merge adds other's counters into cs; dimensions and seed must match.
func (cs *CountSketch) Merge(other *CountSketch) error {
	if cs.w != other.w || cs.d != other.d || cs.seed != other.seed {
		return fmt.Errorf("freqsketch: cannot merge mismatched CountSketch instances")
	}
	for i := range cs.rows {
		for j := range cs.rows[i] {
			cs.rows[i][j] += other.rows[i][j]
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *RSS) MarshalBinary() ([]byte, error) { return r.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler.
func (r *RSS) AppendBinary(dst []byte) ([]byte, error) {
	return marshalCommon(dst, codecRSS, r.w, r.d, r.seed, r.rows), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *RSS) UnmarshalBinary(data []byte) error {
	w, d, seed, rows, err := unmarshalCommon(codecRSS, data)
	if err != nil {
		return err
	}
	if err := checkRows(rows, 2*w); err != nil {
		return err
	}
	*r = *NewRSS(w, d, seed)
	for i := range rows {
		copy(r.rows[i], rows[i])
	}
	return nil
}

// Merge adds other's counters into r; dimensions and seed must match.
func (r *RSS) Merge(other *RSS) error {
	if r.w != other.w || r.d != other.d || r.seed != other.seed {
		return fmt.Errorf("freqsketch: cannot merge mismatched RSS instances")
	}
	for i := range r.rows {
		for j := range r.rows[i] {
			r.rows[i][j] += other.rows[i][j]
		}
	}
	return nil
}
