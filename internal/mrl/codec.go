package mrl

import "streamquantiles/internal/core"

const codecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler: the complete
// mid-stream state, RNG included, so restoring and continuing is
// indistinguishable from never stopping.
func (m *MRL99) MarshalBinary() ([]byte, error) { return m.AppendBinary(nil) }

// AppendBinary implements core.AppendMarshaler: the same bytes as
// MarshalBinary, appended onto dst so pooled buffers can be reused.
func (m *MRL99) AppendBinary(dst []byte) ([]byte, error) {
	e := core.EncoderFrom(dst)
	e.U64(codecVersion)
	e.F64(m.eps)
	e.I64(m.n)
	e.U64(m.rng.State())

	e.U64(uint64(len(m.bufs)))
	curIdx := -1
	for i, b := range m.bufs {
		if b == m.cur {
			curIdx = i
		}
		e.U64(uint64(b.level))
		e.I64(b.weight)
		e.Bool(b.full)
		e.U64s(b.data)
	}
	e.I64(int64(curIdx))
	e.I64(m.blockSize)
	e.I64(m.blockPos)
	e.I64(m.pickAt)
	e.U64(m.candidate)
	return e.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing the
// receiver's state.
func (m *MRL99) UnmarshalBinary(data []byte) error {
	dec := core.NewDecoder(data)
	if v := dec.U64(); v != codecVersion && dec.Err() == nil {
		return core.Corruptf("mrl: unsupported encoding version %d", v)
	}
	eps := dec.F64()
	n := dec.I64()
	rngState := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	// Positive-form comparisons so NaN (which fails every comparison) is
	// rejected rather than slipping through to New's panic; the footprint
	// bound keeps New's b pre-allocated buffers of k elements (which a
	// tiny hostile encoding would otherwise control) plausible.
	if !(eps > 0 && eps < 1) || n < 0 {
		return core.Corruptf("mrl: implausible encoded parameters eps=%v n=%d", eps, n)
	}
	// Positive form again: a denormal eps drives sizeParams through
	// 1/eps = +Inf into k = NaN, and NaN compares false with everything.
	if bf, kf := sizeParams(eps); !(bf*kf <= 1<<22) {
		return core.Corruptf("mrl: implausible eps %v: footprint %.0f elements", eps, bf*kf)
	}

	nm := New(eps, 0)
	nm.n = n
	nm.rng.Restore(rngState)
	count := dec.Len()
	if dec.Err() == nil && count != len(nm.bufs) {
		return core.Corruptf("mrl: encoded buffer count %d, want %d", count, len(nm.bufs))
	}
	for i := 0; i < count && dec.Err() == nil; i++ {
		b := nm.bufs[i]
		b.level = int(dec.U64())
		b.weight = dec.I64()
		b.full = dec.Bool()
		data := dec.U64s()
		b.data = append(b.data[:0], data...)
	}
	curIdx := int(dec.I64())
	nm.blockSize = dec.I64()
	nm.blockPos = dec.I64()
	nm.pickAt = dec.I64()
	nm.candidate = dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return core.Corruptf("mrl: %d trailing bytes", dec.Remaining())
	}
	if curIdx >= len(nm.bufs) {
		return core.Corruptf("mrl: current-buffer index %d out of range", curIdx)
	}
	if curIdx >= 0 {
		nm.cur = nm.bufs[curIdx]
	}
	*m = *nm
	return nil
}
