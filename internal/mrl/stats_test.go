package mrl

import (
	"math"
	"testing"

	"streamquantiles/internal/xhash"
)

// Statistical properties of the weighted COLLAPSE.

// TestCollapseRankUnbiased: the random offset makes the collapsed
// buffer's *rank estimates* unbiased — the property the offset buys over
// MRL98's deterministic selection. Averaged over offsets, the estimated
// rank of any probe value must equal its true rank in the represented
// multiset.
func TestCollapseRankUnbiased(t *testing.T) {
	const k = 8
	probes := []uint64{3, 11, 16, 21, 27}
	for _, probe := range probes {
		var sum float64
		const runs = 4000
		for seed := uint64(0); seed < runs; seed++ {
			rng := xhash.NewSplitMix64(seed)
			a := &buffer{level: 0, weight: 1, full: true}
			b := &buffer{level: 0, weight: 1, full: true}
			for i := uint64(0); i < 16; i++ {
				a.data = append(a.data, i)
				b.data = append(b.data, 16+i)
			}
			out := collapseGroup([]*buffer{a, b}, k, rng, &collapseScratch{})
			var est int64
			for _, v := range out.data {
				if v < probe {
					est += out.weight
				}
			}
			sum += float64(est)
		}
		mean := sum / runs
		want := float64(probe) // represented multiset is exactly 0..31
		if math.Abs(mean-want) > 0.35 {
			t.Errorf("probe %d: mean estimated rank %v, want %v", probe, mean, want)
		}
	}
}

// TestCollapsePreservesOrderStatistics: collapsing a sorted range keeps
// evenly spaced survivors.
func TestCollapsePreservesOrderStatistics(t *testing.T) {
	rng := xhash.NewSplitMix64(9)
	a := &buffer{level: 0, weight: 1, full: true}
	for i := uint64(0); i < 100; i++ {
		a.data = append(a.data, i*10)
	}
	b := &buffer{level: 0, weight: 1, full: true}
	for i := uint64(0); i < 100; i++ {
		b.data = append(b.data, i*10+5)
	}
	out := collapseGroup([]*buffer{a, b}, 50, rng, &collapseScratch{})
	if len(out.data) != 50 {
		t.Fatalf("collapsed size %d", len(out.data))
	}
	// Survivors must be ~evenly spaced over [0, 1000).
	for i := 1; i < len(out.data); i++ {
		gap := out.data[i] - out.data[i-1]
		if gap < 5 || gap > 50 {
			t.Fatalf("survivor gap %d at %d; selection not stride-like", gap, i)
		}
	}
}

// TestLowestGroupSelection: the collapse policy picks the lowest level,
// extending to the next when the lowest holds a single buffer.
func TestLowestGroupSelection(t *testing.T) {
	m := New(0.1, 1)
	for i, b := range m.bufs {
		b.full = true
		b.level = i // all distinct
		b.weight = 1 << i
		b.data = []uint64{1}
	}
	group := m.lowestGroup()
	if len(group) != 2 {
		t.Fatalf("group size %d, want 2 (lowest + next)", len(group))
	}
	if group[0].level != 0 || group[1].level != 1 {
		t.Errorf("group levels %d,%d", group[0].level, group[1].level)
	}

	// Now two buffers at the lowest level: group is exactly those.
	m2 := New(0.1, 2)
	for i, b := range m2.bufs {
		b.full = true
		b.level = i / 2 // pairs
		b.weight = 1
		b.data = []uint64{1}
	}
	group = m2.lowestGroup()
	if len(group) != 2 || group[0].level != 0 || group[1].level != 0 {
		t.Errorf("paired group wrong: %d buffers, level %d", len(group), group[0].level)
	}
}
