package mrl

import (
	"math"
	"testing"

	"streamquantiles/internal/core"
	"streamquantiles/internal/exact"
	"streamquantiles/internal/streamgen"
	"streamquantiles/internal/xhash"
)

func feed(m *MRL99, data []uint64) {
	for _, x := range data {
		m.Update(x)
	}
}

func TestParametersShape(t *testing.T) {
	m := New(0.01, 1)
	if m.BufferCount() < 3 {
		t.Errorf("b = %d too small", m.BufferCount())
	}
	// b·k should be Θ((1/ε)·log²(1/ε)): for ε = 0.01 that is ≈ 4400.
	bk := m.BufferCount() * m.BufferSize()
	if bk < 2000 || bk > 10000 {
		t.Errorf("b·k = %d outside the expected Θ((1/ε)log²(1/ε)) range", bk)
	}
}

func TestErrorWithinEpsAcrossSeeds(t *testing.T) {
	const n = 50000
	const eps = 0.02
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 50}, n)
	oracle := exact.New(data)
	for seed := uint64(1); seed <= 10; seed++ {
		m := New(eps, seed)
		feed(m, data)
		maxErr, _ := oracle.EvaluateSummary(m, eps)
		if maxErr > eps {
			t.Errorf("seed %d: max error %v exceeds ε=%v", seed, maxErr, eps)
		}
	}
}

func TestErrorAcrossWorkloads(t *testing.T) {
	const n = 40000
	const eps = 0.02
	for _, gen := range []streamgen.Generator{
		streamgen.Normal{Bits: 20, Sigma: 0.25, Seed: 2},
		streamgen.Sorted{Inner: streamgen.Uniform{Bits: 24, Seed: 3}},
		streamgen.MPCATLike{Seed: 4},
		streamgen.Zipf{Bits: 20, S: 1.3, Seed: 5},
	} {
		data := streamgen.Generate(gen, n)
		oracle := exact.New(data)
		m := New(eps, 6)
		feed(m, data)
		maxErr, _ := oracle.EvaluateSummary(m, eps)
		if maxErr > eps {
			t.Errorf("%s: max error %v exceeds ε", gen.Name(), maxErr)
		}
	}
}

func TestCollapseGroupWeightConservation(t *testing.T) {
	rng := xhash.NewSplitMix64(7)
	group := []*buffer{
		{level: 1, weight: 2, data: []uint64{1, 3, 5, 7}, full: true},
		{level: 1, weight: 2, data: []uint64{2, 4, 6, 8}, full: true},
	}
	out := collapseGroup(group, 4, rng, &collapseScratch{})
	if out.level != 2 {
		t.Errorf("collapsed level = %d, want 2", out.level)
	}
	if len(out.data) != 4 {
		t.Errorf("collapsed size = %d, want 4", len(out.data))
	}
	// Total represented weight must be conserved: 8 elements × weight 2.
	if got := out.weight * int64(len(out.data)); got != 16 {
		t.Errorf("represented weight %d, want 16", got)
	}
	// Output must be sorted and drawn from the inputs.
	for i := 1; i < len(out.data); i++ {
		if out.data[i] < out.data[i-1] {
			t.Fatal("collapsed output not sorted")
		}
	}
}

func TestCollapseGroupMixedWeights(t *testing.T) {
	rng := xhash.NewSplitMix64(8)
	group := []*buffer{
		{level: 1, weight: 2, data: []uint64{10, 20, 30, 40}, full: true},
		{level: 2, weight: 4, data: []uint64{15, 25, 35, 45}, full: true},
	}
	out := collapseGroup(group, 4, rng, &collapseScratch{})
	if got := out.weight * int64(len(out.data)); got != 24 {
		t.Errorf("represented weight %d, want 24", got)
	}
	if out.level != 3 {
		t.Errorf("collapsed level = %d, want 3", out.level)
	}
}

// TestCollapseGroupShortBuffers pins the short-buffer collapse
// arithmetic: Merge grafts partially-filled buffers (closed early,
// len < k), so the group total is not a multiple of k. A floor-rounded
// stride used to make the walk want more than k samples, and the
// output cap then silently dropped the TOP of the weighted sequence —
// here the old code kept only the first 8 of 11 weighted positions,
// never sampling values 10 and 11. The ceiled stride must span the
// sequence end to end while the retained mass stays within one stride
// of the total and never exceeds it.
func TestCollapseGroupShortBuffers(t *testing.T) {
	for seed := uint64(0); seed < 16; seed++ {
		rng := xhash.NewSplitMix64(seed)
		group := []*buffer{
			{level: 0, weight: 1, data: []uint64{1, 3, 5, 7, 9}, full: true},
			{level: 0, weight: 1, data: []uint64{2, 4, 6, 8, 10, 11}, full: true},
		}
		out := collapseGroup(group, 8, rng, &collapseScratch{})
		if len(out.data) > 8 {
			t.Fatalf("seed %d: collapsed size %d exceeds k", seed, len(out.data))
		}
		// total=11, k=8 -> stride=2: the last sampled position is at
		// least 8, so the top sample is at least the 9th smallest value.
		if top := out.data[len(out.data)-1]; top < 9 {
			t.Errorf("seed %d: top sample %d — upper tail truncated", seed, top)
		}
		got := out.weight * int64(len(out.data))
		if got > 11 || got <= 11-out.weight {
			t.Errorf("seed %d: represented weight %d, want (9, 11]", seed, got)
		}
	}
}

// TestMergeIntoPartialBuffer exercises the Merge path that creates
// short buffers in the first place: the target is mid-buffer when a
// full summary merges in, and rank accuracy must hold after further
// ingestion on the merged summary.
func TestMergeIntoPartialBuffer(t *testing.T) {
	const n, eps = 40000, 0.01
	data := streamgen.Generate(streamgen.Uniform{Bits: 14, Seed: 3}, n)
	for _, fill := range []int{1, 33, 300, 701, 2500} {
		donor := New(eps, 1)
		for _, x := range data[:3750] {
			donor.Update(x)
		}
		m := New(eps, 2)
		for _, x := range data[3750 : 3750+fill] {
			m.Update(x)
		}
		m.Merge(donor)
		for _, x := range data[3750+fill:] {
			m.Update(x)
		}
		if m.Count() != n {
			t.Fatalf("fill %d: count %d, want %d", fill, m.Count(), n)
		}
		o := exact.New(data)
		tol := int64(2 * eps * n)
		for _, phi := range []float64{0.25, 0.5, 0.75, 0.9, 0.98} {
			x := o.Quantile(phi)
			want := o.Rank(x)
			if d := m.Rank(x) - want; d < -tol || d > tol {
				t.Errorf("fill %d: Rank(%d) off by %d, tolerance %d", fill, x, d, tol)
			}
		}
	}
}

func TestCollapseOffsetRandomized(t *testing.T) {
	// Different RNG states must be able to produce different selections.
	distinct := map[uint64]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		rng := xhash.NewSplitMix64(seed)
		group := []*buffer{
			{level: 0, weight: 1, data: []uint64{1, 2, 3, 4, 5, 6, 7, 8}, full: true},
			{level: 0, weight: 1, data: []uint64{9, 10, 11, 12, 13, 14, 15, 16}, full: true},
		}
		out := collapseGroup(group, 8, rng, &collapseScratch{})
		distinct[out.data[0]] = true
	}
	if len(distinct) < 2 {
		t.Error("collapse offset appears deterministic across seeds")
	}
}

func TestSmallStreamExact(t *testing.T) {
	m := New(0.05, 9)
	for i := uint64(1); i <= 50; i++ {
		m.Update(i)
	}
	if q := m.Quantile(0.5); q < 23 || q > 28 {
		t.Errorf("median of 1..50 = %d", q)
	}
}

func TestCountAndEmptyPanic(t *testing.T) {
	m := New(0.1, 10)
	if m.Count() != 0 {
		t.Error("fresh summary has nonzero count")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile on empty summary did not panic")
			}
		}()
		m.Quantile(0.5)
	}()
}

func TestSpaceConstantInN(t *testing.T) {
	const eps = 0.01
	a := New(eps, 11)
	b := New(eps, 11)
	feed(a, streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 12}, 10000))
	feed(b, streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 13}, 300000))
	if a.SpaceBytes() != b.SpaceBytes() {
		t.Errorf("space changed with n: %d vs %d", a.SpaceBytes(), b.SpaceBytes())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	data := streamgen.Generate(streamgen.Uniform{Bits: 24, Seed: 14}, 30000)
	a := New(0.01, 42)
	b := New(0.01, 42)
	feed(a, data)
	feed(b, data)
	for _, phi := range core.EvenPhis(0.1) {
		if a.Quantile(phi) != b.Quantile(phi) {
			t.Fatal("same seed produced different quantiles")
		}
	}
}

func TestUnbiasedRank(t *testing.T) {
	const n = 30000
	data := streamgen.Generate(streamgen.Uniform{Bits: 20, Seed: 15}, n)
	oracle := exact.New(data)
	probe := uint64(1) << 19
	want := float64(oracle.Rank(probe))
	var sum float64
	const runs = 40
	for seed := uint64(0); seed < runs; seed++ {
		m := New(0.05, seed)
		feed(m, data)
		sum += float64(m.Rank(probe))
	}
	mean := sum / runs
	if math.Abs(mean-want) > 0.01*float64(n) {
		t.Errorf("mean estimated rank %v vs true %v: bias too large", mean, want)
	}
}

func TestBadEpsPanics(t *testing.T) {
	for _, eps := range []float64{0, 1, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", eps)
				}
			}()
			New(eps, 1)
		}()
	}
}

func TestLongStreamAccuracy(t *testing.T) {
	const eps = 0.05
	const n = 400000
	data := streamgen.Generate(streamgen.Normal{Bits: 24, Sigma: 0.15, Seed: 16}, n)
	m := New(eps, 17)
	feed(m, data)
	oracle := exact.New(data)
	maxErr, _ := oracle.EvaluateSummary(m, eps)
	if maxErr > eps {
		t.Errorf("long-stream max error %v exceeds ε", maxErr)
	}
	if m.activeLevel() == 0 {
		t.Error("sampling never engaged on a long stream")
	}
}

func BenchmarkUpdate(b *testing.B) {
	m := New(0.001, 1)
	data := streamgen.Generate(streamgen.Uniform{Bits: 32, Seed: 1}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(data[i&(1<<16-1)])
	}
}
