package mrl

import (
	"fmt"
	"math"
	"slices"

	"streamquantiles/internal/core"
)

// UpdateBatch implements core.BatchCashRegister by skipping whole
// sampling blocks, exactly as randalg's batch path: the block cursor
// advances by chunks, the sampled candidate is read by offset, and the
// RNG is consumed only at block completions and buffer starts — the
// per-item draw sequence. State is byte-identical to per-item Update.
func (m *MRL99) UpdateBatch(xs []uint64) {
	i := 0
	for i < len(xs) {
		counted := 0
		if m.cur == nil {
			// startBuffer reads n (the sampling schedule), so count the
			// element that opens the buffer before calling it.
			m.n++
			m.startBuffer()
			counted = 1
		}
		take := int(m.blockSize - m.blockPos)
		if take > len(xs)-i {
			take = len(xs) - i
		}
		m.n += int64(take - counted)
		if off := m.pickAt - m.blockPos; off >= 0 && off < int64(take) {
			m.candidate = xs[i+int(off)]
		}
		m.blockPos += int64(take)
		i += take
		if m.blockPos == m.blockSize {
			m.cur.data = append(m.cur.data, m.candidate)
			m.blockPos = 0
			m.pickAt = int64(m.rng.Uint64n(uint64(m.blockSize)))
			if len(m.cur.data) == m.k {
				slices.Sort(m.cur.data)
				m.cur.full = true
				m.cur = nil
			}
		}
	}
}

// checkCompatible validates a merge partner: both summaries must have
// been built with bit-identical eps (and therefore identical b and k).
func (m *MRL99) checkCompatible(other *MRL99) {
	if math.Float64bits(other.eps) != math.Float64bits(m.eps) {
		panic("mrl: merging summaries with different eps")
	}
}

// Merge folds other into m in the mergeable-summary sense: both partial
// buffers close out (m's in place, other's into a copy), other's
// buffers join m's buffer set as sorted full clones, and COLLAPSE runs
// until at most b buffers remain full, after which the slot list is
// rebuilt to exactly b entries. other is left unchanged.
func (m *MRL99) Merge(other *MRL99) {
	m.checkCompatible(other)
	if m.cur != nil && len(m.cur.data) > 0 {
		slices.Sort(m.cur.data)
		m.cur.full = true
	}
	m.cur = nil

	for _, b := range other.bufs {
		if len(b.data) == 0 {
			continue
		}
		nb := &buffer{level: b.level, weight: b.weight, data: slices.Clone(b.data), full: true}
		if !b.full {
			slices.Sort(nb.data) // other's partially filled buffer
		}
		if nb.weight == 0 {
			nb.weight = int64(1) << nb.level
		}
		m.bufs = append(m.bufs, nb)
	}
	m.n += other.n

	for m.fullCount() > m.b {
		m.collapse()
	}
	m.compactSlots()
}

func (m *MRL99) fullCount() int {
	c := 0
	for _, b := range m.bufs {
		if b.full {
			c++
		}
	}
	return c
}

// compactSlots rebuilds the slot list to exactly b entries: every full
// buffer, then existing empty slots, padded with fresh empties.
func (m *MRL99) compactSlots() {
	kept := make([]*buffer, 0, m.b)
	for _, b := range m.bufs {
		if b.full && len(kept) < m.b {
			kept = append(kept, b)
		}
	}
	for _, b := range m.bufs {
		if !b.full && len(kept) < m.b {
			b.data = b.data[:0]
			b.level = 0
			b.weight = 0
			kept = append(kept, b)
		}
	}
	for len(kept) < m.b {
		kept = append(kept, &buffer{data: make([]uint64, 0, m.k)})
	}
	m.bufs = kept
}

// MergeSummary implements core.Mergeable. It leaves other unchanged.
func (m *MRL99) MergeSummary(other core.Summary) error {
	o, ok := other.(*MRL99)
	if !ok {
		return fmt.Errorf("mrl: cannot merge a %T", other)
	}
	if math.Float64bits(o.eps) != math.Float64bits(m.eps) {
		return fmt.Errorf("mrl: cannot merge summaries with eps %v and %v", m.eps, o.eps)
	}
	m.Merge(o)
	return nil
}
