// Package mrl implements MRL99, the randomized quantile algorithm of
// Manku, Rajagopalan and Lindsay (SIGMOD 1999): the NEW/COLLAPSE buffer
// framework of their 1998 deterministic algorithm driven by non-uniform
// random sampling, giving O((1/ε)·log²(1/ε)) space without prior
// knowledge of the stream length.
//
// The summary keeps b buffers of capacity k. NEW fills an empty buffer
// with k elements sampled one-per-2^l from the stream, where the sampling
// level l rises as the stream grows (the same schedule as the paper's
// simplified Random algorithm, which MRL99 inspired). When no buffer is
// empty, COLLAPSE merges all buffers at the lowest occupied level into a
// single buffer: conceptually each element is replicated by its buffer's
// weight, and the output keeps the k elements at positions
// offset + i·(W/k) of the weighted merged sequence, with a uniformly
// random offset — the randomized selection that makes the estimate
// unbiased.
//
// Parameters are set from ε in the closed form b = ⌈log₂(1/ε)⌉ + 1 and
// k = ⌈(1/ε)·log₂²(1/ε)/b⌉, which tracks the b·k = Θ((1/ε)·log²(1/ε))
// optimum of the MRL99 constraint optimization; the journal paper notes
// (§1.2.1) that the fine-tuned parameter choices of the original offer
// only a minor advantage over this shape.
package mrl

import (
	"fmt"
	"math"
	"slices"

	"streamquantiles/internal/core"
	"streamquantiles/internal/xhash"
)

// buffer is one weighted sample buffer.
type buffer struct {
	level  int   // sampling/collapse depth, determines default weight 2^level
	weight int64 // per-element weight
	data   []uint64
	full   bool
}

// MRL99 is the randomized Manku–Rajagopalan–Lindsay summary.
type MRL99 struct {
	eps float64
	b   int
	k   int
	n   int64

	bufs []*buffer
	cur  *buffer

	blockSize int64
	blockPos  int64
	pickAt    int64
	candidate uint64

	rng *xhash.SplitMix64
}

// sizeParams computes the buffer count b and buffer size k for eps in
// floating point, so callers — the codec in particular — can veto an
// implausible footprint before any allocation happens. (Converting an
// out-of-range float to int is undefined in Go, so the check must run
// on the float values.)
func sizeParams(eps float64) (bf, kf float64) {
	lg := math.Log2(1 / eps)
	if lg < 1 {
		lg = 1
	}
	bf = math.Ceil(lg) + 1
	if bf < 3 {
		bf = 3
	}
	kf = math.Ceil(lg * lg / (eps * bf))
	if kf < 4 {
		kf = 4
	}
	return bf, kf
}

// New returns an empty MRL99 summary with error parameter eps, seeded
// deterministically from seed.
func New(eps float64, seed uint64) *MRL99 {
	if math.IsNaN(eps) || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("mrl: error parameter %v outside (0, 1)", eps))
	}
	bf, kf := sizeParams(eps)
	b, k := int(bf), int(kf)
	m := &MRL99{
		eps:  eps,
		b:    b,
		k:    k,
		bufs: make([]*buffer, 0, b),
		rng:  xhash.NewSplitMix64(seed),
	}
	for i := 0; i < b; i++ {
		m.bufs = append(m.bufs, &buffer{data: make([]uint64, 0, k)})
	}
	return m
}

// Eps returns the error parameter.
func (m *MRL99) Eps() float64 { return m.eps }

// BufferCount returns b.
func (m *MRL99) BufferCount() int { return m.b }

// BufferSize returns k.
func (m *MRL99) BufferSize() int { return m.k }

// Count implements core.Summary.
func (m *MRL99) Count() int64 { return m.n }

// activeLevel mirrors the sampling schedule of the Random algorithm: keep
// the first ~k·2^(b−2) elements exactly, then sample geometrically.
func (m *MRL99) activeLevel() int {
	den := float64(m.k) * math.Pow(2, float64(m.b-2))
	l := int(math.Ceil(math.Log2(float64(m.n+1) / den)))
	if l < 0 {
		l = 0
	}
	return l
}

// Update implements core.CashRegister.
func (m *MRL99) Update(x uint64) {
	m.n++
	if m.cur == nil {
		m.startBuffer()
	}
	if m.blockPos == m.pickAt {
		m.candidate = x
	}
	m.blockPos++
	if m.blockPos == m.blockSize {
		m.cur.data = append(m.cur.data, m.candidate)
		m.blockPos = 0
		m.pickAt = int64(m.rng.Uint64n(uint64(m.blockSize)))
		if len(m.cur.data) == m.k {
			slices.Sort(m.cur.data)
			m.cur.full = true
			m.cur = nil
		}
	}
}

func (m *MRL99) startBuffer() {
	b := m.emptyBuffer()
	if b == nil {
		m.collapse()
		b = m.emptyBuffer()
	}
	lv := m.activeLevel()
	b.level = lv
	b.weight = int64(1) << lv
	m.cur = b
	m.blockSize = int64(1) << lv
	m.blockPos = 0
	m.pickAt = int64(m.rng.Uint64n(uint64(m.blockSize)))
}

func (m *MRL99) emptyBuffer() *buffer {
	for _, b := range m.bufs {
		if !b.full && b != m.cur {
			return b
		}
	}
	return nil
}

// collapse merges the buffers at the lowest occupied level (at least
// two; if the lowest level holds a single buffer the next level joins the
// group) into one buffer at one level above the group's maximum.
func (m *MRL99) collapse() {
	group := m.lowestGroup()
	if len(group) < 2 {
		//lint:ignore SQ003 corruption guard: collapse only runs once every buffer is full, so this is unreachable
		panic("mrl: collapse with fewer than two buffers")
	}
	out := collapseGroup(group, m.k, m.rng)

	// Store the result in the first group buffer; empty the rest.
	first := group[0]
	first.data = append(first.data[:0], out.data...)
	first.level = out.level
	first.weight = out.weight
	first.full = true
	for _, g := range group[1:] {
		g.data = g.data[:0]
		g.full = false
		g.level = 0
		g.weight = 0
	}
}

// lowestGroup returns all full buffers at the lowest occupied level,
// extended to the next level when the lowest holds only one buffer.
func (m *MRL99) lowestGroup() []*buffer {
	full := make([]*buffer, 0, len(m.bufs))
	for _, b := range m.bufs {
		if b.full {
			full = append(full, b)
		}
	}
	slices.SortStableFunc(full, func(a, b *buffer) int { return a.level - b.level })
	if len(full) < 2 {
		return full
	}
	end := 1
	for end < len(full) && full[end].level == full[0].level {
		end++
	}
	if end == 1 {
		// Single buffer at the lowest level: include the next level too.
		lvl := full[1].level
		end = 2
		for end < len(full) && full[end].level == lvl {
			end++
		}
	}
	return full[:end]
}

// collapsed is the output of a COLLAPSE operation.
type collapsed struct {
	level  int
	weight int64
	data   []uint64
}

// collapseGroup performs the weighted MRL COLLAPSE with a random offset:
// the merged, weight-replicated sequence of all group elements is sampled
// at positions offset + i·(W/k) without materializing the replication.
func collapseGroup(group []*buffer, k int, rng *xhash.SplitMix64) collapsed {
	var total int64
	maxLevel := 0
	for _, g := range group {
		total += g.weight * int64(len(g.data))
		if g.level > maxLevel {
			maxLevel = g.level
		}
	}
	stride := total / int64(k)
	if stride < 1 {
		stride = 1
	}
	offset := int64(rng.Uint64n(uint64(stride)))

	// k-way merge over the sorted group buffers, accumulating weight.
	idx := make([]int, len(group))
	out := make([]uint64, 0, k)
	var cum int64
	next := offset
	for {
		// Find the group buffer with the smallest current element.
		best := -1
		for gi, g := range group {
			if idx[gi] >= len(g.data) {
				continue
			}
			if best < 0 || g.data[idx[gi]] < group[best].data[idx[best]] {
				best = gi
			}
		}
		if best < 0 {
			break
		}
		g := group[best]
		v := g.data[idx[best]]
		idx[best]++
		lo, hi := cum, cum+g.weight // v occupies weighted positions [lo, hi)
		cum = hi
		for next >= lo && next < hi && len(out) < k {
			out = append(out, v)
			next += stride
		}
	}
	w := total / int64(len(out))
	if w < 1 {
		w = 1
	}
	return collapsed{level: maxLevel + 1, weight: w, data: out}
}

// samples collects retained elements with their weights, sorted by value.
func (m *MRL99) samples() []core.WeightedValue {
	var out []core.WeightedValue
	for _, b := range m.bufs {
		if len(b.data) == 0 {
			continue
		}
		w := b.weight
		if w == 0 {
			w = int64(1) << b.level
		}
		for _, v := range b.data {
			out = append(out, core.WeightedValue{V: v, W: w})
		}
	}
	core.SortWeighted(out)
	return out
}

// Rank implements core.Summary.
func (m *MRL99) Rank(x uint64) int64 {
	return core.WeightedRank(m.samples(), x)
}

// Quantile implements core.Summary.
func (m *MRL99) Quantile(phi float64) uint64 {
	if m.n == 0 {
		panic(core.ErrEmpty)
	}
	return core.WeightedQuantile(m.samples(), phi)
}

// QuantileBatch implements core.QuantileBatcher: the retained samples are
// collected and sorted once for the whole batch.
func (m *MRL99) QuantileBatch(phis []float64) []uint64 {
	if m.n == 0 {
		panic(core.ErrEmpty)
	}
	return core.WeightedQuantiles(m.samples(), phis)
}

// RankBatch implements core.QuantileBatcher.
func (m *MRL99) RankBatch(xs []uint64) []int64 {
	return core.WeightedRanks(m.samples(), xs)
}

// AppendQuerySnapshot implements core.Snapshotter.
func (m *MRL99) AppendQuerySnapshot(qs *core.QuerySnapshot) {
	core.AppendWeightedSnapshot(qs, m.samples())
}

// SpaceBytes implements core.Summary: b pre-allocated buffers of k words
// plus per-buffer metadata and scalar state.
func (m *MRL99) SpaceBytes() int64 {
	var words int64
	for _, b := range m.bufs {
		c := cap(b.data)
		if c < m.k {
			c = m.k
		}
		words += int64(c) + 3
	}
	words += 10
	return words * core.WordBytes
}
